// Payment-network scenario: the workload the paper's introduction motivates
// ("a common payment scenario, e.g., Visa, requires reaching 20,000 TPS").
// Drives a sharded Porygon deployment with an open-loop transfer stream at
// a configurable rate and reports sustained throughput and latency.
//
//   ./example_payment_network [offered_tps] [--workload=<spec>]

#include <cstdio>
#include <cstdlib>
#include <memory>

#include "bench_util.h"
#include "core/system.h"
#include "workload/generator.h"

int main(int argc, char** argv) {
  using namespace porygon;
  bench::Args args;
  if (Status parsed = args.Parse(argc, argv); !parsed.ok()) {
    std::fprintf(stderr, "%s\n", parsed.ToString().c_str());
    return 2;
  }
  double offered_tps = 2000.0;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]).rfind("--", 0) != 0) {
      offered_tps = std::atof(argv[i]);
      break;
    }
  }

  core::SystemOptions options;
  options.params.shard_bits = 3;  // 8 shards.
  options.params.witness_threshold = 2;
  options.params.execution_threshold = 2;
  options.params.block_tx_limit = 2000;
  options.num_storage_nodes = 2;
  options.num_stateless_nodes = 100;
  options.oc_size = 10;
  options.blocks_per_shard_round = 2;
  options.seed = 7;

  core::PorygonSystem system(options);

  // Mostly-domestic payments: 10% cross-shard, mildly skewed senders.
  // --workload=<spec> swaps in any other traffic model.
  workload::Spec spec;
  spec.num_accounts = 500'000;
  spec.cross_shard_ratio = 0.1;
  spec.zipf_s = 0.6;
  spec.amount_max = 500;
  spec.seed = 99;
  spec = args.WorkloadOr(spec);
  spec.shard_bits = options.params.shard_bits;
  system.CreateAccountsLazy(spec.num_accounts, 1'000'000);
  std::unique_ptr<workload::TrafficModel> generator = spec.BuildModel();
  std::unique_ptr<workload::ArrivalProcess> arrival = spec.BuildArrival();

  std::printf("offering ~%.0f TPS to an 8-shard, 100-node deployment...\n",
              offered_tps);
  const int kRounds = 12;
  const double kEstRoundSeconds = 5.0;
  for (int r = 0; r < kRounds; ++r) {
    size_t n = arrival->CountFor(system.sim_seconds(), kEstRoundSeconds,
                                 offered_tps);
    system.SubmitBatch(generator->Batch(n));
    system.Run(1);
  }

  const core::SystemMetrics m = system.metrics();
  double duration = system.sim_seconds();
  std::printf("\nsimulated time:        %.1f s\n", duration);
  std::printf("sustained throughput:  %.0f TPS\n", m.Tps(duration));
  std::printf("block interval:        %.2f s\n", m.BlockLatency().mean);
  std::printf("tx commit latency:     %.2f s\n", m.CommitLatency().mean);
  std::printf("user-perceived:        %.2f s (p99 %.2f s)\n",
              m.UserLatency().mean, m.UserLatency().p99);
  std::printf("conflict discards:     %lu\n",
              static_cast<unsigned long>(m.discarded_txs()));
  std::printf("invalid (nonce/funds): %lu\n",
              static_cast<unsigned long>(m.failed_txs()));
  return 0;
}
