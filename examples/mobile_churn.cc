// Mobile-churn scenario: resource-limited devices joining and leaving (the
// population Porygon targets — the paper's stateless nodes are provisioned
// like smartphones: 1 MB/s, ~5 MB storage). Compares Porygon against the
// Blockene-style baseline under shrinking session lengths, reproducing the
// Fig 8(d) story at example scale.
//
//   ./example_mobile_churn

#include <cstdio>

#include "baselines/blockene.h"
#include "core/system.h"
#include "workload/generator.h"

namespace {
double RunPorygon(double mean_session_s) {
  using namespace porygon;
  core::SystemOptions options;
  options.params.shard_bits = 1;
  options.params.witness_threshold = 2;
  options.params.execution_threshold = 2;
  options.params.block_tx_limit = 500;
  options.num_storage_nodes = 2;
  options.num_stateless_nodes = 40;
  options.oc_size = 6;
  options.mean_session_s = mean_session_s;
  options.seed = 5;

  core::PorygonSystem system(options);
  system.CreateAccounts(100'000, 1'000'000);
  workload::WorkloadGenerator gen({.num_accounts = 100'000,
                                   .shard_bits = 1,
                                   .cross_shard_ratio = 0.1,
                                   .seed = 4});
  for (int r = 0; r < 12; ++r) {
    system.SubmitBatch(gen.Batch(2000));
    system.Run(1);
  }
  return system.metrics().Tps(system.sim_seconds());
}

double RunBlockene(double mean_session_s) {
  using namespace porygon;
  baselines::BlockeneOptions options;
  options.num_stateless_nodes = 40;
  options.committee_size = 10;
  options.committee_tenure_rounds = 50;
  options.block_tx_limit = 1000;
  options.mean_session_s = mean_session_s;
  options.seed = 5;

  baselines::BlockeneSystem system(options);
  system.CreateAccounts(100'000, 1'000'000);
  workload::WorkloadGenerator gen(
      {.num_accounts = 100'000, .shard_bits = 0, .seed = 4});
  for (int r = 0; r < 12; ++r) {
    for (const auto& t : gen.Batch(1000)) system.SubmitTransaction(t);
    system.Run(1);
  }
  return system.metrics().Tps(system.sim_seconds());
}
}  // namespace

int main() {
  std::printf("Throughput under churn (mean node session length):\n\n");
  std::printf("%-14s%-16s%-16s\n", "session", "porygon_tps", "blockene_tps");
  for (double session_s : {20.0, 60.0, 0.0}) {
    double porygon = RunPorygon(session_s);
    double blockene = RunBlockene(session_s);
    char label[32];
    if (session_s == 0) {
      std::snprintf(label, sizeof(label), "infinite");
    } else {
      std::snprintf(label, sizeof(label), "%.0f s", session_s);
    }
    std::printf("%-14s%-16.0f%-16.0f\n", label, porygon, blockene);
  }
  std::printf(
      "\nPorygon's ECs live 3 rounds, so departures cost a node-round;\n"
      "Blockene's 50-block committees stall whole rounds when members "
      "leave.\n");
  return 0;
}
