// Quickstart: stand up a small Porygon network (2 storage nodes, 26
// stateless nodes, 2 shards), submit transfers, run a few rounds, and
// inspect the committed chain and state.
//
//   ./example_quickstart
//   ./example_quickstart --trace-out=quickstart.trace.json
//   ./example_quickstart --faults=loss:0.02,jitter:300,crash:0:6,recover:0:20
//   ./example_quickstart --adversary=stateless:equivocate,alpha:0.25
//
// The second form records sim-time lifecycle spans for the submitted
// transactions and writes Chrome trace_event JSON — open the file at
// https://ui.perfetto.dev to see the pipeline. Deterministic: re-running
// with the same seed produces a byte-identical file.
//
// The third form runs the same deployment under a fault plan (message
// loss / duplication / jitter / scheduled crashes; grammar in
// net::FaultPlan::Parse). Faults draw from their own seeded RNG streams,
// so a given --faults spec is as reproducible as a clean run. Storage
// nodes occupy the lowest node ids, so "crash:0:6" kills every stateless
// node's initial primary storage six sim-seconds in — watch the chain
// keep growing through the failover.
//
// The fourth form corrupts a fraction of the nodes with an *active*
// Byzantine strategy (grammar in core::AdversarySpec::Parse) instead of
// crash faults: equivocating voters, forged witness proofs, tampered
// execution results, censoring or tampering storage. Honest nodes detect
// and reject the forgeries (core.rejected{reason} counters, equivocation
// evidence) and commit the same chain a clean run of the seed commits.

#include <cstdio>
#include <string>

#include "bench_util.h"
#include "core/system.h"
#include "net/fault.h"

int main(int argc, char** argv) {
  using namespace porygon;

  const std::string trace_path = bench::TraceOutArg(argc, argv);
  const std::string fault_spec = bench::FaultsArg(argc, argv);
  const std::string adversary_spec = bench::AdversaryArg(argc, argv);

  // 1. Configure a small deployment. Thresholds are scaled down to the
  // committee sizes a 26-node network can form.
  core::SystemOptions options;
  options.params.shard_bits = 1;           // 2 shards.
  options.params.witness_threshold = 2;    // Tw
  options.params.execution_threshold = 2;  // Te
  options.params.block_tx_limit = 100;
  options.num_storage_nodes = 2;
  options.num_stateless_nodes = 26;
  options.oc_size = 4;
  options.seed = 7;
  options.trace.enabled = !trace_path.empty();

  if (!adversary_spec.empty()) {
    Result<core::AdversarySpec> spec =
        core::AdversarySpec::Parse(adversary_spec);
    if (!spec.ok()) {
      std::fprintf(stderr, "bad --adversary spec: %s\n",
                   spec.status().ToString().c_str());
      return 2;
    }
    Status valid_with = [&] {
      core::SystemOptions probe = options;
      probe.adversary = *spec;
      return probe.Validate();
    }();
    if (!valid_with.ok()) {
      std::fprintf(stderr, "bad --adversary spec: %s\n",
                   valid_with.ToString().c_str());
      return 2;
    }
    options.adversary = *spec;
    std::printf("adversary:    %s\n", options.adversary.ToString().c_str());
  }

  core::PorygonSystem system(options);

  if (!fault_spec.empty()) {
    Result<net::FaultPlan> plan = net::FaultPlan::Parse(fault_spec);
    if (!plan.ok()) {
      std::fprintf(stderr, "bad --faults spec: %s\n",
                   plan.status().ToString().c_str());
      return 2;
    }
    Status injected = system.InjectFaults(*plan);
    if (!injected.ok()) {
      std::fprintf(stderr, "fault injection failed: %s\n",
                   injected.ToString().c_str());
      return 2;
    }
    std::printf("faults:       %s\n", fault_spec.c_str());
  }

  // 2. Fund accounts. Account ids shard by their lowest bit here: even ids
  // live in shard 0, odd ids in shard 1.
  system.CreateAccounts(/*count=*/100, /*balance=*/10'000);

  // 3. Submit transfers: an intra-shard one (2 -> 4, both even) and a
  // cross-shard one (6 -> 5, crossing into shard 1). Distinct senders: the
  // OC gives cross-shard transactions priority, so an intra-shard transfer
  // touching an account claimed by a same-round cross-shard transfer would
  // be discarded as a conflict (§IV-D2).
  tx::Transaction intra;
  intra.from = 2;
  intra.to = 4;
  intra.amount = 250;
  intra.nonce = 0;  // Client-side nonces are consecutive per sender.
  Status accepted = system.SubmitTransaction(intra);
  std::printf("submit intra: %s\n", accepted.ToString().c_str());

  // Resubmitting the same transfer is rejected up front.
  std::printf("resubmit:     %s\n",
              system.SubmitTransaction(intra).ToString().c_str());

  tx::Transaction cross;
  cross.from = 6;
  cross.to = 5;
  cross.amount = 100;
  cross.nonce = 0;
  system.SubmitTransaction(cross);

  // 4. Run the protocol. Intra-shard transactions commit 3 rounds after
  // witnessing; cross-shard ones need 5 (Single-Shard Execution +
  // Multi-Shard Update).
  system.Run(/*rounds=*/10);

  // 5. Inspect the results.
  const core::SystemMetrics m = system.metrics();
  std::printf("committed blocks:        %lu\n",
              static_cast<unsigned long>(m.committed_blocks()));
  std::printf("intra-shard txs:         %lu\n",
              static_cast<unsigned long>(m.committed_intra_txs()));
  std::printf("cross-shard txs:         %lu\n",
              static_cast<unsigned long>(m.committed_cross_txs()));
  std::printf("replay mismatches:       %lu (0 = all roots verified)\n",
              static_cast<unsigned long>(m.replay_mismatches()));

  if (!fault_spec.empty()) {
    auto counter = [&](const char* name) {
      const obs::Counter* c = m.registry()->FindCounter(name, {});
      return static_cast<unsigned long>(c == nullptr ? 0 : c->value());
    };
    std::printf("failover rotations:      %lu\n",
                counter("core.failover.rotations"));
    std::printf("failover retransmits:    %lu\n",
                counter("core.failover.retransmits"));
    std::printf("storage rejoins:         %lu\n",
                counter("core.storage_rejoins"));
  }

  if (!adversary_spec.empty()) {
    std::printf("adversarial actions:     %lu\n",
                static_cast<unsigned long>(system.adversary()->actions()));
    std::printf("misbehavior evidence:    %lu\n",
                static_cast<unsigned long>(system.adversary()->evidence()));
    std::printf("equivocation records:    %zu\n",
                system.equivocation_evidence().size());
  }

  const state::ShardedState& st = system.canonical_state();
  std::printf("account 2 balance: %lu (sent 250)\n",
              static_cast<unsigned long>(st.GetOrDefault(2).balance));
  std::printf("account 4 balance: %lu (received 250)\n",
              static_cast<unsigned long>(st.GetOrDefault(4).balance));
  std::printf("account 6 balance: %lu (sent 100 cross-shard)\n",
              static_cast<unsigned long>(st.GetOrDefault(6).balance));
  std::printf("account 5 balance: %lu (received 100 cross-shard)\n",
              static_cast<unsigned long>(st.GetOrDefault(5).balance));

  std::printf("chain height: %zu, tip state root: %s\n",
              system.chain().size() - 1,
              crypto::HashToHex(system.chain().back().state_root).c_str());

  // 6. Optional: export the distributed trace for Perfetto.
  if (!trace_path.empty() && bench::WriteTraceJson(&system, trace_path)) {
    std::printf("trace: %s (%zu spans; open at https://ui.perfetto.dev)\n",
                trace_path.c_str(), system.tracer()->span_count());
  }
  return 0;
}
