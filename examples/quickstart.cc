// Quickstart: stand up a small Porygon network (2 storage nodes, 26
// stateless nodes, 2 shards), submit transfers, run a few rounds, and
// inspect the committed chain and state.
//
//   ./example_quickstart
//   ./example_quickstart --trace-out=quickstart.trace.json
//   ./example_quickstart --faults=loss:0.02,jitter:300,crash:0:6,recover:0:20
//   ./example_quickstart --adversary=stateless:equivocate,alpha:0.25
//   ./example_quickstart --workload=zipf:0.99,accounts:1000000
//
// The second form records sim-time lifecycle spans for the submitted
// transactions and writes Chrome trace_event JSON — open the file at
// https://ui.perfetto.dev to see the pipeline. Deterministic: re-running
// with the same seed produces a byte-identical file.
//
// The third form runs the same deployment under a fault plan (message
// loss / duplication / jitter / scheduled crashes; grammar in
// net::FaultPlan::Parse). Faults draw from their own seeded RNG streams,
// so a given --faults spec is as reproducible as a clean run. Storage
// nodes occupy the lowest node ids, so "crash:0:6" kills every stateless
// node's initial primary storage six sim-seconds in — watch the chain
// keep growing through the failover.
//
// The fourth form corrupts a fraction of the nodes with an *active*
// Byzantine strategy (grammar in core::AdversarySpec::Parse) instead of
// crash faults: equivocating voters, forged witness proofs, tampered
// execution results, censoring or tampering storage. Honest nodes detect
// and reject the forgeries (core.rejected{reason} counters, equivocation
// evidence) and commit the same chain a clean run of the seed commits.
//
// The fifth form replaces the two hand-written transfers with a generated
// stream from any workload::Spec (grammar in workload/traffic.h): Zipfian
// skew, flash crowds, contract-like calls — over lazily funded account
// spaces, so accounts:1000000 starts instantly.

#include <cstdio>
#include <memory>
#include <string>

#include "bench_util.h"
#include "core/system.h"
#include "net/fault.h"

int main(int argc, char** argv) {
  using namespace porygon;

  bench::Args args;
  if (Status parsed = args.Parse(argc, argv); !parsed.ok()) {
    std::fprintf(stderr, "%s\n", parsed.ToString().c_str());
    return 2;
  }

  // 1. Configure a small deployment. Thresholds are scaled down to the
  // committee sizes a 26-node network can form.
  core::SystemOptions options;
  options.params.shard_bits = 1;           // 2 shards.
  options.params.witness_threshold = 2;    // Tw
  options.params.execution_threshold = 2;  // Te
  options.params.block_tx_limit = 100;
  options.num_storage_nodes = 2;
  options.num_stateless_nodes = 26;
  options.oc_size = 4;
  options.seed = 7;

  if (Status applied = args.ApplyOptions(&options); !applied.ok()) {
    std::fprintf(stderr, "bad --adversary spec: %s\n",
                 applied.ToString().c_str());
    return 2;
  }
  if (args.has_adversary()) {
    std::printf("adversary:    %s\n", options.adversary.ToString().c_str());
  }

  core::PorygonSystem system(options);

  if (Status injected = args.ApplyFaults(&system); !injected.ok()) {
    std::fprintf(stderr, "fault injection failed: %s\n",
                 injected.ToString().c_str());
    return 2;
  }

  if (args.has_workload()) {
    // Generated stream: fund the whole account space lazily (O(1) even for
    // accounts:1000000) and drive a few saturated rounds from the model.
    workload::Spec spec = args.WorkloadOr({});
    spec.shard_bits = options.params.shard_bits;
    std::printf("workload:     %s\n", spec.ToString().c_str());
    system.CreateAccountsLazy(spec.num_accounts, /*balance=*/1'000'000);
    std::unique_ptr<workload::TrafficModel> model = spec.BuildModel();
    std::unique_ptr<workload::ArrivalProcess> arrival = spec.BuildArrival();
    for (int r = 0; r < 10; ++r) {
      const size_t n =
          arrival->CountFor(system.sim_seconds(), /*len_s=*/1.0,
                            /*base_tps=*/100.0);
      system.SubmitBatch(model->Batch(n));
      system.Run(1);
    }
  } else {
    // 2. Fund accounts. Account ids shard by their lowest bit here: even
    // ids live in shard 0, odd ids in shard 1.
    system.CreateAccounts(/*count=*/100, /*balance=*/10'000);

    // 3. Submit transfers: an intra-shard one (2 -> 4, both even) and a
    // cross-shard one (6 -> 5, crossing into shard 1). Distinct senders:
    // the OC gives cross-shard transactions priority, so an intra-shard
    // transfer touching an account claimed by a same-round cross-shard
    // transfer would be discarded as a conflict (§IV-D2).
    tx::Transaction intra;
    intra.from = 2;
    intra.to = 4;
    intra.amount = 250;
    intra.nonce = 0;  // Client-side nonces are consecutive per sender.
    Status accepted = system.SubmitTransaction(intra);
    std::printf("submit intra: %s\n", accepted.ToString().c_str());

    // Resubmitting the same transfer is rejected up front.
    std::printf("resubmit:     %s\n",
                system.SubmitTransaction(intra).ToString().c_str());

    tx::Transaction cross;
    cross.from = 6;
    cross.to = 5;
    cross.amount = 100;
    cross.nonce = 0;
    system.SubmitTransaction(cross);

    // 4. Run the protocol. Intra-shard transactions commit 3 rounds after
    // witnessing; cross-shard ones need 5 (Single-Shard Execution +
    // Multi-Shard Update).
    system.Run(/*rounds=*/10);
  }

  // 5. Inspect the results.
  const core::SystemMetrics m = system.metrics();
  std::printf("committed blocks:        %lu\n",
              static_cast<unsigned long>(m.committed_blocks()));
  std::printf("intra-shard txs:         %lu\n",
              static_cast<unsigned long>(m.committed_intra_txs()));
  std::printf("cross-shard txs:         %lu\n",
              static_cast<unsigned long>(m.committed_cross_txs()));
  std::printf("replay mismatches:       %lu (0 = all roots verified)\n",
              static_cast<unsigned long>(m.replay_mismatches()));

  if (args.has_faults()) {
    auto counter = [&](const char* name) {
      const obs::Counter* c = m.registry()->FindCounter(name, {});
      return static_cast<unsigned long>(c == nullptr ? 0 : c->value());
    };
    std::printf("failover rotations:      %lu\n",
                counter("core.failover.rotations"));
    std::printf("failover retransmits:    %lu\n",
                counter("core.failover.retransmits"));
    std::printf("storage rejoins:         %lu\n",
                counter("core.storage_rejoins"));
  }

  if (args.has_adversary()) {
    std::printf("adversarial actions:     %lu\n",
                static_cast<unsigned long>(system.adversary()->actions()));
    std::printf("misbehavior evidence:    %lu\n",
                static_cast<unsigned long>(system.adversary()->evidence()));
    std::printf("equivocation records:    %zu\n",
                system.equivocation_evidence().size());
  }

  if (args.has_workload()) {
    std::printf("committed txs:           %lu\n",
                static_cast<unsigned long>(m.committed_txs()));
    std::printf("conflict discards:       %lu\n",
                static_cast<unsigned long>(m.discarded_txs()));
    std::printf("accounts materialized:   %zu (of %lu declared)\n",
                system.canonical_state().TotalAccountCount(),
                static_cast<unsigned long>(
                    system.canonical_state().implicit_max_id()));
  } else {
    const state::ShardedState& st = system.canonical_state();
    std::printf("account 2 balance: %lu (sent 250)\n",
                static_cast<unsigned long>(st.GetOrDefault(2).balance));
    std::printf("account 4 balance: %lu (received 250)\n",
                static_cast<unsigned long>(st.GetOrDefault(4).balance));
    std::printf("account 6 balance: %lu (sent 100 cross-shard)\n",
                static_cast<unsigned long>(st.GetOrDefault(6).balance));
    std::printf("account 5 balance: %lu (received 100 cross-shard)\n",
                static_cast<unsigned long>(st.GetOrDefault(5).balance));
  }

  std::printf("chain height: %zu, tip state root: %s\n",
              system.chain().size() - 1,
              crypto::HashToHex(system.chain().back().state_root).c_str());

  // 6. Optional: export the distributed trace for Perfetto.
  if (!args.trace_out().empty() &&
      bench::WriteTraceJson(&system, args.trace_out())) {
    std::printf("trace: %s (%zu spans; open at https://ui.perfetto.dev)\n",
                args.trace_out().c_str(), system.tracer()->span_count());
  }
  return 0;
}
