// Stateless audit: what a light client (or a newly joined stateless node)
// can verify with ~nothing stored locally. Demonstrates the storage-
// consensus separation primitives directly: Merkle proofs for account
// state against committed shard roots, absence proofs, and stateless
// re-execution via PartialState.
//
//   ./example_stateless_audit

#include <cstdio>

#include "core/execution.h"
#include "state/sharded_state.h"
#include "state/view.h"

int main() {
  using namespace porygon;

  // A storage node's view of the world: the full sharded state.
  state::ShardedState full(/*shard_bits=*/2);  // 4 shards.
  for (uint64_t id = 1; id <= 1000; ++id) {
    full.PutAccount(id, {1'000 + id, 0});
  }
  crypto::Hash256 root0 = full.ShardRoot(0);
  std::printf("shard 0 root: %s\n", crypto::HashToHex(root0).c_str());

  // --- A light client verifies a balance claim -----------------------------
  // The storage node claims account 8 (shard 0) holds 1008 and ships a
  // Merkle path. The client checks it against the committed shard root —
  // 32 bytes of trusted data, no state.
  state::Account claimed{1'008, 0};
  state::MerkleProof proof = full.ProveAccount(8);
  bool ok = state::ShardedState::VerifyAccount(root0, 8, claimed, proof);
  std::printf("balance proof for account 8: %s\n", ok ? "VALID" : "INVALID");

  // A lying storage node inflates the balance; the proof no longer checks.
  state::Account lie{999'999, 0};
  bool caught = state::ShardedState::VerifyAccount(root0, 8, lie, proof);
  std::printf("inflated-balance proof:      %s\n",
              caught ? "VALID (?!)" : "REJECTED");

  // Absence is provable too: account 2000 was never created.
  bool absent = state::ShardedState::VerifyAbsence(
      root0, 2'000, full.ProveAccount(2'000));
  std::printf("absence proof for 2000:      %s\n",
              absent ? "VALID" : "INVALID");

  // --- Stateless re-execution ----------------------------------------------
  // An auditor replays a block's transfers against downloaded proofs only,
  // and reproduces the exact post-state root the committee committed.
  state::PartialState partial(2, /*own_shard=*/0, root0);
  for (uint64_t id : {4ull, 8ull, 12ull, 16ull}) {
    auto acc = full.GetAccount(id);
    (void)partial.AddOwnAccount(id, acc.ok(),
                                acc.ok() ? *acc : state::Account{},
                                full.ProveAccount(id));
  }

  core::ExecutionInput input;
  input.shard = 0;
  tx::Transaction t1;
  t1.from = 4;
  t1.to = 8;
  t1.amount = 100;
  t1.nonce = 0;
  tx::Transaction t2;
  t2.from = 12;
  t2.to = 16;
  t2.amount = 50;
  t2.nonce = 0;
  input.intra_shard = {t1, t2};

  auto audited = core::ShardExecutor::Execute(&partial, input);

  // The "committee" (full replica) executes the same block.
  auto committed = core::ShardExecutor::Execute(&full, input);

  std::printf("auditor root:   %s\n",
              crypto::HashToHex(audited.shard_root).c_str());
  std::printf("committee root: %s\n",
              crypto::HashToHex(committed.shard_root).c_str());
  std::printf("stateless replay %s the committed root\n",
              audited.shard_root == committed.shard_root ? "MATCHES"
                                                         : "DIVERGES FROM");
  return 0;
}
