
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/baselines_test.cc" "tests/CMakeFiles/porygon_tests.dir/baselines_test.cc.o" "gcc" "tests/CMakeFiles/porygon_tests.dir/baselines_test.cc.o.d"
  "/root/repo/tests/common_test.cc" "tests/CMakeFiles/porygon_tests.dir/common_test.cc.o" "gcc" "tests/CMakeFiles/porygon_tests.dir/common_test.cc.o.d"
  "/root/repo/tests/consensus_test.cc" "tests/CMakeFiles/porygon_tests.dir/consensus_test.cc.o" "gcc" "tests/CMakeFiles/porygon_tests.dir/consensus_test.cc.o.d"
  "/root/repo/tests/core_committee_test.cc" "tests/CMakeFiles/porygon_tests.dir/core_committee_test.cc.o" "gcc" "tests/CMakeFiles/porygon_tests.dir/core_committee_test.cc.o.d"
  "/root/repo/tests/core_coordinator_test.cc" "tests/CMakeFiles/porygon_tests.dir/core_coordinator_test.cc.o" "gcc" "tests/CMakeFiles/porygon_tests.dir/core_coordinator_test.cc.o.d"
  "/root/repo/tests/core_execution_test.cc" "tests/CMakeFiles/porygon_tests.dir/core_execution_test.cc.o" "gcc" "tests/CMakeFiles/porygon_tests.dir/core_execution_test.cc.o.d"
  "/root/repo/tests/core_messages_test.cc" "tests/CMakeFiles/porygon_tests.dir/core_messages_test.cc.o" "gcc" "tests/CMakeFiles/porygon_tests.dir/core_messages_test.cc.o.d"
  "/root/repo/tests/crypto_ed25519_test.cc" "tests/CMakeFiles/porygon_tests.dir/crypto_ed25519_test.cc.o" "gcc" "tests/CMakeFiles/porygon_tests.dir/crypto_ed25519_test.cc.o.d"
  "/root/repo/tests/crypto_hash_test.cc" "tests/CMakeFiles/porygon_tests.dir/crypto_hash_test.cc.o" "gcc" "tests/CMakeFiles/porygon_tests.dir/crypto_hash_test.cc.o.d"
  "/root/repo/tests/fault_injection_test.cc" "tests/CMakeFiles/porygon_tests.dir/fault_injection_test.cc.o" "gcc" "tests/CMakeFiles/porygon_tests.dir/fault_injection_test.cc.o.d"
  "/root/repo/tests/net_test.cc" "tests/CMakeFiles/porygon_tests.dir/net_test.cc.o" "gcc" "tests/CMakeFiles/porygon_tests.dir/net_test.cc.o.d"
  "/root/repo/tests/state_test.cc" "tests/CMakeFiles/porygon_tests.dir/state_test.cc.o" "gcc" "tests/CMakeFiles/porygon_tests.dir/state_test.cc.o.d"
  "/root/repo/tests/state_view_test.cc" "tests/CMakeFiles/porygon_tests.dir/state_view_test.cc.o" "gcc" "tests/CMakeFiles/porygon_tests.dir/state_view_test.cc.o.d"
  "/root/repo/tests/storage_batch_test.cc" "tests/CMakeFiles/porygon_tests.dir/storage_batch_test.cc.o" "gcc" "tests/CMakeFiles/porygon_tests.dir/storage_batch_test.cc.o.d"
  "/root/repo/tests/storage_db_test.cc" "tests/CMakeFiles/porygon_tests.dir/storage_db_test.cc.o" "gcc" "tests/CMakeFiles/porygon_tests.dir/storage_db_test.cc.o.d"
  "/root/repo/tests/storage_extra_test.cc" "tests/CMakeFiles/porygon_tests.dir/storage_extra_test.cc.o" "gcc" "tests/CMakeFiles/porygon_tests.dir/storage_extra_test.cc.o.d"
  "/root/repo/tests/storage_memtable_test.cc" "tests/CMakeFiles/porygon_tests.dir/storage_memtable_test.cc.o" "gcc" "tests/CMakeFiles/porygon_tests.dir/storage_memtable_test.cc.o.d"
  "/root/repo/tests/system_extra_test.cc" "tests/CMakeFiles/porygon_tests.dir/system_extra_test.cc.o" "gcc" "tests/CMakeFiles/porygon_tests.dir/system_extra_test.cc.o.d"
  "/root/repo/tests/system_integration_test.cc" "tests/CMakeFiles/porygon_tests.dir/system_integration_test.cc.o" "gcc" "tests/CMakeFiles/porygon_tests.dir/system_integration_test.cc.o.d"
  "/root/repo/tests/tx_blocks_test.cc" "tests/CMakeFiles/porygon_tests.dir/tx_blocks_test.cc.o" "gcc" "tests/CMakeFiles/porygon_tests.dir/tx_blocks_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/porygon.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
