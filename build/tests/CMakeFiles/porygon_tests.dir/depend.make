# Empty dependencies file for porygon_tests.
# This may be replaced when dependencies are built.
