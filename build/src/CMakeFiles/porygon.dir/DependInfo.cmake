
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/blockene.cc" "src/CMakeFiles/porygon.dir/baselines/blockene.cc.o" "gcc" "src/CMakeFiles/porygon.dir/baselines/blockene.cc.o.d"
  "/root/repo/src/baselines/byshard.cc" "src/CMakeFiles/porygon.dir/baselines/byshard.cc.o" "gcc" "src/CMakeFiles/porygon.dir/baselines/byshard.cc.o.d"
  "/root/repo/src/common/bytes.cc" "src/CMakeFiles/porygon.dir/common/bytes.cc.o" "gcc" "src/CMakeFiles/porygon.dir/common/bytes.cc.o.d"
  "/root/repo/src/common/codec.cc" "src/CMakeFiles/porygon.dir/common/codec.cc.o" "gcc" "src/CMakeFiles/porygon.dir/common/codec.cc.o.d"
  "/root/repo/src/common/crc32.cc" "src/CMakeFiles/porygon.dir/common/crc32.cc.o" "gcc" "src/CMakeFiles/porygon.dir/common/crc32.cc.o.d"
  "/root/repo/src/common/log.cc" "src/CMakeFiles/porygon.dir/common/log.cc.o" "gcc" "src/CMakeFiles/porygon.dir/common/log.cc.o.d"
  "/root/repo/src/common/rng.cc" "src/CMakeFiles/porygon.dir/common/rng.cc.o" "gcc" "src/CMakeFiles/porygon.dir/common/rng.cc.o.d"
  "/root/repo/src/common/status.cc" "src/CMakeFiles/porygon.dir/common/status.cc.o" "gcc" "src/CMakeFiles/porygon.dir/common/status.cc.o.d"
  "/root/repo/src/consensus/ba_star.cc" "src/CMakeFiles/porygon.dir/consensus/ba_star.cc.o" "gcc" "src/CMakeFiles/porygon.dir/consensus/ba_star.cc.o.d"
  "/root/repo/src/core/committee.cc" "src/CMakeFiles/porygon.dir/core/committee.cc.o" "gcc" "src/CMakeFiles/porygon.dir/core/committee.cc.o.d"
  "/root/repo/src/core/coordinator.cc" "src/CMakeFiles/porygon.dir/core/coordinator.cc.o" "gcc" "src/CMakeFiles/porygon.dir/core/coordinator.cc.o.d"
  "/root/repo/src/core/execution.cc" "src/CMakeFiles/porygon.dir/core/execution.cc.o" "gcc" "src/CMakeFiles/porygon.dir/core/execution.cc.o.d"
  "/root/repo/src/core/messages.cc" "src/CMakeFiles/porygon.dir/core/messages.cc.o" "gcc" "src/CMakeFiles/porygon.dir/core/messages.cc.o.d"
  "/root/repo/src/core/pipeline.cc" "src/CMakeFiles/porygon.dir/core/pipeline.cc.o" "gcc" "src/CMakeFiles/porygon.dir/core/pipeline.cc.o.d"
  "/root/repo/src/core/stateless_node.cc" "src/CMakeFiles/porygon.dir/core/stateless_node.cc.o" "gcc" "src/CMakeFiles/porygon.dir/core/stateless_node.cc.o.d"
  "/root/repo/src/core/storage_node.cc" "src/CMakeFiles/porygon.dir/core/storage_node.cc.o" "gcc" "src/CMakeFiles/porygon.dir/core/storage_node.cc.o.d"
  "/root/repo/src/core/system.cc" "src/CMakeFiles/porygon.dir/core/system.cc.o" "gcc" "src/CMakeFiles/porygon.dir/core/system.cc.o.d"
  "/root/repo/src/crypto/ed25519.cc" "src/CMakeFiles/porygon.dir/crypto/ed25519.cc.o" "gcc" "src/CMakeFiles/porygon.dir/crypto/ed25519.cc.o.d"
  "/root/repo/src/crypto/fe25519.cc" "src/CMakeFiles/porygon.dir/crypto/fe25519.cc.o" "gcc" "src/CMakeFiles/porygon.dir/crypto/fe25519.cc.o.d"
  "/root/repo/src/crypto/merkle.cc" "src/CMakeFiles/porygon.dir/crypto/merkle.cc.o" "gcc" "src/CMakeFiles/porygon.dir/crypto/merkle.cc.o.d"
  "/root/repo/src/crypto/provider.cc" "src/CMakeFiles/porygon.dir/crypto/provider.cc.o" "gcc" "src/CMakeFiles/porygon.dir/crypto/provider.cc.o.d"
  "/root/repo/src/crypto/sc25519.cc" "src/CMakeFiles/porygon.dir/crypto/sc25519.cc.o" "gcc" "src/CMakeFiles/porygon.dir/crypto/sc25519.cc.o.d"
  "/root/repo/src/crypto/sha256.cc" "src/CMakeFiles/porygon.dir/crypto/sha256.cc.o" "gcc" "src/CMakeFiles/porygon.dir/crypto/sha256.cc.o.d"
  "/root/repo/src/crypto/sha512.cc" "src/CMakeFiles/porygon.dir/crypto/sha512.cc.o" "gcc" "src/CMakeFiles/porygon.dir/crypto/sha512.cc.o.d"
  "/root/repo/src/crypto/vrf.cc" "src/CMakeFiles/porygon.dir/crypto/vrf.cc.o" "gcc" "src/CMakeFiles/porygon.dir/crypto/vrf.cc.o.d"
  "/root/repo/src/net/event_queue.cc" "src/CMakeFiles/porygon.dir/net/event_queue.cc.o" "gcc" "src/CMakeFiles/porygon.dir/net/event_queue.cc.o.d"
  "/root/repo/src/net/network.cc" "src/CMakeFiles/porygon.dir/net/network.cc.o" "gcc" "src/CMakeFiles/porygon.dir/net/network.cc.o.d"
  "/root/repo/src/simulation/model.cc" "src/CMakeFiles/porygon.dir/simulation/model.cc.o" "gcc" "src/CMakeFiles/porygon.dir/simulation/model.cc.o.d"
  "/root/repo/src/state/account.cc" "src/CMakeFiles/porygon.dir/state/account.cc.o" "gcc" "src/CMakeFiles/porygon.dir/state/account.cc.o.d"
  "/root/repo/src/state/sharded_state.cc" "src/CMakeFiles/porygon.dir/state/sharded_state.cc.o" "gcc" "src/CMakeFiles/porygon.dir/state/sharded_state.cc.o.d"
  "/root/repo/src/state/smt.cc" "src/CMakeFiles/porygon.dir/state/smt.cc.o" "gcc" "src/CMakeFiles/porygon.dir/state/smt.cc.o.d"
  "/root/repo/src/state/view.cc" "src/CMakeFiles/porygon.dir/state/view.cc.o" "gcc" "src/CMakeFiles/porygon.dir/state/view.cc.o.d"
  "/root/repo/src/storage/arena.cc" "src/CMakeFiles/porygon.dir/storage/arena.cc.o" "gcc" "src/CMakeFiles/porygon.dir/storage/arena.cc.o.d"
  "/root/repo/src/storage/bloom.cc" "src/CMakeFiles/porygon.dir/storage/bloom.cc.o" "gcc" "src/CMakeFiles/porygon.dir/storage/bloom.cc.o.d"
  "/root/repo/src/storage/db.cc" "src/CMakeFiles/porygon.dir/storage/db.cc.o" "gcc" "src/CMakeFiles/porygon.dir/storage/db.cc.o.d"
  "/root/repo/src/storage/env.cc" "src/CMakeFiles/porygon.dir/storage/env.cc.o" "gcc" "src/CMakeFiles/porygon.dir/storage/env.cc.o.d"
  "/root/repo/src/storage/memtable.cc" "src/CMakeFiles/porygon.dir/storage/memtable.cc.o" "gcc" "src/CMakeFiles/porygon.dir/storage/memtable.cc.o.d"
  "/root/repo/src/storage/sstable.cc" "src/CMakeFiles/porygon.dir/storage/sstable.cc.o" "gcc" "src/CMakeFiles/porygon.dir/storage/sstable.cc.o.d"
  "/root/repo/src/storage/wal.cc" "src/CMakeFiles/porygon.dir/storage/wal.cc.o" "gcc" "src/CMakeFiles/porygon.dir/storage/wal.cc.o.d"
  "/root/repo/src/tx/blocks.cc" "src/CMakeFiles/porygon.dir/tx/blocks.cc.o" "gcc" "src/CMakeFiles/porygon.dir/tx/blocks.cc.o.d"
  "/root/repo/src/tx/transaction.cc" "src/CMakeFiles/porygon.dir/tx/transaction.cc.o" "gcc" "src/CMakeFiles/porygon.dir/tx/transaction.cc.o.d"
  "/root/repo/src/tx/txpool.cc" "src/CMakeFiles/porygon.dir/tx/txpool.cc.o" "gcc" "src/CMakeFiles/porygon.dir/tx/txpool.cc.o.d"
  "/root/repo/src/workload/generator.cc" "src/CMakeFiles/porygon.dir/workload/generator.cc.o" "gcc" "src/CMakeFiles/porygon.dir/workload/generator.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
