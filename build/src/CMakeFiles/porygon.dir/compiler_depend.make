# Empty compiler generated dependencies file for porygon.
# This may be replaced when dependencies are built.
