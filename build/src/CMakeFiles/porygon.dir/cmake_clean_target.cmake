file(REMOVE_RECURSE
  "libporygon.a"
)
