# Empty compiler generated dependencies file for micro_consensus.
# This may be replaced when dependencies are built.
