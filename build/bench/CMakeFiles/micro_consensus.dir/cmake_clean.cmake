file(REMOVE_RECURSE
  "CMakeFiles/micro_consensus.dir/micro_consensus.cc.o"
  "CMakeFiles/micro_consensus.dir/micro_consensus.cc.o.d"
  "micro_consensus"
  "micro_consensus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_consensus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
