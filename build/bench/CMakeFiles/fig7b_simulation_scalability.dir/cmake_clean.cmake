file(REMOVE_RECURSE
  "CMakeFiles/fig7b_simulation_scalability.dir/fig7b_simulation_scalability.cc.o"
  "CMakeFiles/fig7b_simulation_scalability.dir/fig7b_simulation_scalability.cc.o.d"
  "fig7b_simulation_scalability"
  "fig7b_simulation_scalability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7b_simulation_scalability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
