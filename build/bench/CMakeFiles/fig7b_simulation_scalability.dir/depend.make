# Empty dependencies file for fig7b_simulation_scalability.
# This may be replaced when dependencies are built.
