file(REMOVE_RECURSE
  "CMakeFiles/fig8c_throughput_latency.dir/fig8c_throughput_latency.cc.o"
  "CMakeFiles/fig8c_throughput_latency.dir/fig8c_throughput_latency.cc.o.d"
  "fig8c_throughput_latency"
  "fig8c_throughput_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8c_throughput_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
