# Empty dependencies file for fig8c_throughput_latency.
# This may be replaced when dependencies are built.
