# Empty compiler generated dependencies file for micro_state.
# This may be replaced when dependencies are built.
