file(REMOVE_RECURSE
  "CMakeFiles/micro_state.dir/micro_state.cc.o"
  "CMakeFiles/micro_state.dir/micro_state.cc.o.d"
  "micro_state"
  "micro_state.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_state.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
