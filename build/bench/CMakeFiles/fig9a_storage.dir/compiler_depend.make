# Empty compiler generated dependencies file for fig9a_storage.
# This may be replaced when dependencies are built.
