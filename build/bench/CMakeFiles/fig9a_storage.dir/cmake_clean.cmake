file(REMOVE_RECURSE
  "CMakeFiles/fig9a_storage.dir/fig9a_storage.cc.o"
  "CMakeFiles/fig9a_storage.dir/fig9a_storage.cc.o.d"
  "fig9a_storage"
  "fig9a_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9a_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
