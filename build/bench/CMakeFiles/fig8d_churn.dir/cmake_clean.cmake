file(REMOVE_RECURSE
  "CMakeFiles/fig8d_churn.dir/fig8d_churn.cc.o"
  "CMakeFiles/fig8d_churn.dir/fig8d_churn.cc.o.d"
  "fig8d_churn"
  "fig8d_churn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8d_churn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
