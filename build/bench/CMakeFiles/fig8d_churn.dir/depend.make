# Empty dependencies file for fig8d_churn.
# This may be replaced when dependencies are built.
