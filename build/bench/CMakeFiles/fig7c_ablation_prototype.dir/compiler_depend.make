# Empty compiler generated dependencies file for fig7c_ablation_prototype.
# This may be replaced when dependencies are built.
