file(REMOVE_RECURSE
  "CMakeFiles/fig7c_ablation_prototype.dir/fig7c_ablation_prototype.cc.o"
  "CMakeFiles/fig7c_ablation_prototype.dir/fig7c_ablation_prototype.cc.o.d"
  "fig7c_ablation_prototype"
  "fig7c_ablation_prototype.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7c_ablation_prototype.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
