# Empty dependencies file for fig7a_prototype_scalability.
# This may be replaced when dependencies are built.
