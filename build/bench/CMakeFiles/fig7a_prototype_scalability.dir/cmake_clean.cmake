file(REMOVE_RECURSE
  "CMakeFiles/fig7a_prototype_scalability.dir/fig7a_prototype_scalability.cc.o"
  "CMakeFiles/fig7a_prototype_scalability.dir/fig7a_prototype_scalability.cc.o.d"
  "fig7a_prototype_scalability"
  "fig7a_prototype_scalability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7a_prototype_scalability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
