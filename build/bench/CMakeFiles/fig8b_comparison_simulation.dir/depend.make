# Empty dependencies file for fig8b_comparison_simulation.
# This may be replaced when dependencies are built.
