file(REMOVE_RECURSE
  "CMakeFiles/fig8b_comparison_simulation.dir/fig8b_comparison_simulation.cc.o"
  "CMakeFiles/fig8b_comparison_simulation.dir/fig8b_comparison_simulation.cc.o.d"
  "fig8b_comparison_simulation"
  "fig8b_comparison_simulation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8b_comparison_simulation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
