file(REMOVE_RECURSE
  "CMakeFiles/fig8a_comparison_prototype.dir/fig8a_comparison_prototype.cc.o"
  "CMakeFiles/fig8a_comparison_prototype.dir/fig8a_comparison_prototype.cc.o.d"
  "fig8a_comparison_prototype"
  "fig8a_comparison_prototype.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8a_comparison_prototype.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
