# Empty compiler generated dependencies file for fig8a_comparison_prototype.
# This may be replaced when dependencies are built.
