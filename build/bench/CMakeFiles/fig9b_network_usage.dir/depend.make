# Empty dependencies file for fig9b_network_usage.
# This may be replaced when dependencies are built.
