file(REMOVE_RECURSE
  "CMakeFiles/fig9b_network_usage.dir/fig9b_network_usage.cc.o"
  "CMakeFiles/fig9b_network_usage.dir/fig9b_network_usage.cc.o.d"
  "fig9b_network_usage"
  "fig9b_network_usage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9b_network_usage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
