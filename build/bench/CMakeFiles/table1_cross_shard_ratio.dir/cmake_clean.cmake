file(REMOVE_RECURSE
  "CMakeFiles/table1_cross_shard_ratio.dir/table1_cross_shard_ratio.cc.o"
  "CMakeFiles/table1_cross_shard_ratio.dir/table1_cross_shard_ratio.cc.o.d"
  "table1_cross_shard_ratio"
  "table1_cross_shard_ratio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_cross_shard_ratio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
