# Empty compiler generated dependencies file for table1_cross_shard_ratio.
# This may be replaced when dependencies are built.
