# Empty dependencies file for fig7d_ablation_simulation.
# This may be replaced when dependencies are built.
