file(REMOVE_RECURSE
  "CMakeFiles/fig7d_ablation_simulation.dir/fig7d_ablation_simulation.cc.o"
  "CMakeFiles/fig7d_ablation_simulation.dir/fig7d_ablation_simulation.cc.o.d"
  "fig7d_ablation_simulation"
  "fig7d_ablation_simulation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7d_ablation_simulation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
