file(REMOVE_RECURSE
  "CMakeFiles/example_stateless_audit.dir/stateless_audit.cc.o"
  "CMakeFiles/example_stateless_audit.dir/stateless_audit.cc.o.d"
  "example_stateless_audit"
  "example_stateless_audit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_stateless_audit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
