# Empty dependencies file for example_stateless_audit.
# This may be replaced when dependencies are built.
