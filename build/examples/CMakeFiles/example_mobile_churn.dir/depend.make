# Empty dependencies file for example_mobile_churn.
# This may be replaced when dependencies are built.
