file(REMOVE_RECURSE
  "CMakeFiles/example_mobile_churn.dir/mobile_churn.cc.o"
  "CMakeFiles/example_mobile_churn.dir/mobile_churn.cc.o.d"
  "example_mobile_churn"
  "example_mobile_churn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_mobile_churn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
