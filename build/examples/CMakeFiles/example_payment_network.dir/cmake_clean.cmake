file(REMOVE_RECURSE
  "CMakeFiles/example_payment_network.dir/payment_network.cc.o"
  "CMakeFiles/example_payment_network.dir/payment_network.cc.o.d"
  "example_payment_network"
  "example_payment_network.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_payment_network.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
