# Empty dependencies file for example_payment_network.
# This may be replaced when dependencies are built.
