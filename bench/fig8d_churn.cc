// Fig 8(d): throughput under node churn. The paper varies how long nodes
// stay in the network: Blockene's committees must survive 50 sequential
// blocks, so short sessions stall them into empty blocks; Porygon's EC
// members serve only 3 rounds, so it degrades gracefully.

#include "baselines/blockene.h"
#include "bench_util.h"

int main() {
  using namespace porygon;
  bench::PrintHeader(
      "Fig 8(d): throughput vs node participating time (Blockene's 50-block "
      "committees stall under churn; Porygon's 3-round ECs do not)");
  bench::PrintRow({"session_s", "porygon_tps", "blockene_tps",
                   "blockene_empty_rounds"});

  const int shard_bits = 2;  // 4 shards, 48 stateless nodes.

  for (double session_s : {15.0, 30.0, 60.0, 120.0, 0.0 /* = infinite */}) {
    double porygon_tps = 0;
    {
      core::SystemOptions opt;
      opt.params.shard_bits = shard_bits;
      opt.params.witness_threshold = 2;
      opt.params.execution_threshold = 2;
      opt.params.block_tx_limit = 1000;
      opt.num_storage_nodes = 2;
      opt.num_stateless_nodes = 48;
      opt.oc_size = 6;
      opt.blocks_per_shard_round = 2;
      opt.mean_session_s = session_s;
      opt.seed = 17;
      core::PorygonSystem sys(opt);
      sys.CreateAccounts(500'000, 1'000'000);
      workload::WorkloadGenerator gen({.num_accounts = 500'000,
                                       .shard_bits = shard_bits,
                                       .cross_shard_ratio = 0.1,
                                       .seed = 8});
      size_t per_round = opt.blocks_per_shard_round *
                         opt.params.block_tx_limit * size_t{1 << shard_bits};
      porygon_tps = bench::RunSaturated(&sys, &gen, 10, per_round).tps;
    }

    double blockene_tps = 0;
    uint64_t blockene_empty = 0;
    {
      baselines::BlockeneOptions opt;
      opt.num_stateless_nodes = 48;
      opt.committee_size = 10;
      opt.committee_tenure_rounds = 50;  // Paper: 50 blocks per committee.
      opt.block_tx_limit = 2000;
      opt.mean_session_s = session_s;
      opt.seed = 17;
      baselines::BlockeneSystem sys(opt);
      sys.CreateAccounts(500'000, 1'000'000);
      workload::WorkloadGenerator gen(
          {.num_accounts = 500'000, .shard_bits = 0, .seed = 8});
      blockene_tps = bench::DriveOpenLoopTps(&sys, &gen, 14, 2000);
      blockene_empty = sys.metrics().empty_rounds;
    }

    std::string label =
        session_s == 0 ? "infinite" : bench::FmtInt(session_s);
    bench::PrintRow({label, bench::FmtInt(porygon_tps),
                     bench::FmtInt(blockene_tps),
                     std::to_string(blockene_empty)});
  }
  return 0;
}
