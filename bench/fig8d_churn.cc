// Fig 8(d): throughput under node churn. The paper varies how long nodes
// stay in the network: Blockene's committees must survive 50 sequential
// blocks, so short sessions stall them into empty blocks; Porygon's EC
// members serve only 3 rounds, so it degrades gracefully.

#include <memory>

#include "baselines/blockene.h"
#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace porygon;
  bench::Args args;
  if (Status parsed = args.Parse(argc, argv); !parsed.ok()) {
    std::fprintf(stderr, "%s\n", parsed.ToString().c_str());
    return 2;
  }
  // Default traffic; --workload=<spec> swaps in any other model.
  workload::Spec base_spec;
  base_spec.num_accounts = 500'000;
  base_spec.cross_shard_ratio = 0.1;
  base_spec.seed = 8;
  base_spec = args.WorkloadOr(base_spec);

  bench::PrintHeader(
      "Fig 8(d): throughput vs node participating time (Blockene's 50-block "
      "committees stall under churn; Porygon's 3-round ECs do not)");
  bench::PrintRow({"session_s", "porygon_tps", "blockene_tps",
                   "blockene_empty_rounds"});

  const int shard_bits = 2;  // 4 shards, 48 stateless nodes.

  for (double session_s : {15.0, 30.0, 60.0, 120.0, 0.0 /* = infinite */}) {
    double porygon_tps = 0;
    {
      // The standard scaled topology (4 shards x 12 stateless nodes over
      // the two-node storage tier) instead of the hand-rolled counts; the
      // cross-cutting --dissemination= / --adversary= / --faults= specs
      // apply uniformly like every other bench driver.
      core::SystemOptions opt = bench::ScaledOptions(shard_bits, 12);
      opt.params.block_tx_limit = 1000;
      opt.oc_size = 6;
      opt.mean_session_s = session_s;
      opt.seed = 17;
      if (Status applied = args.ApplyOptions(&opt); !applied.ok()) {
        std::fprintf(stderr, "%s\n", applied.ToString().c_str());
        return 2;
      }
      core::PorygonSystem sys(opt);
      if (Status armed = args.ApplyFaults(&sys); !armed.ok()) {
        std::fprintf(stderr, "%s\n", armed.ToString().c_str());
        return 2;
      }
      sys.CreateAccountsLazy(base_spec.num_accounts, 1'000'000);
      workload::Spec spec = base_spec;
      spec.shard_bits = shard_bits;
      std::unique_ptr<workload::TrafficModel> gen = spec.BuildModel();
      size_t per_round = opt.blocks_per_shard_round *
                         opt.params.block_tx_limit * size_t{1 << shard_bits};
      porygon_tps = bench::RunSaturated(&sys, gen.get(), 10, per_round).tps;
    }

    double blockene_tps = 0;
    uint64_t blockene_empty = 0;
    {
      baselines::BlockeneOptions opt;
      opt.num_stateless_nodes = 48;
      opt.committee_size = 10;
      opt.committee_tenure_rounds = 50;  // Paper: 50 blocks per committee.
      opt.block_tx_limit = 2000;
      opt.mean_session_s = session_s;
      opt.seed = 17;
      baselines::BlockeneSystem sys(opt);
      sys.CreateAccounts(base_spec.num_accounts, 1'000'000);
      workload::Spec spec = base_spec;
      spec.shard_bits = 0;
      spec.cross_shard_ratio = -1.0;  // Blockene is unsharded.
      std::unique_ptr<workload::TrafficModel> gen = spec.BuildModel();
      blockene_tps = bench::DriveOpenLoopTps(&sys, gen.get(), 14, 2000);
      blockene_empty = sys.metrics().empty_rounds;
    }

    std::string label =
        session_s == 0 ? "infinite" : bench::FmtInt(session_s);
    bench::PrintRow({label, bench::FmtInt(porygon_tps),
                     bench::FmtInt(blockene_tps),
                     std::to_string(blockene_empty)});
  }
  return 0;
}
