// Fig 7(b): large-scale simulation scalability. The paper simulates up to
// 100,000 stateless nodes, growing shards 10 -> 50 (2,000 nodes each):
// throughput 8,310 -> 38,940 TPS, latency 7.8 -> 8.3 s, user-perceived
// latency 33 -> 35 s.

#include "bench_util.h"
#include "simulation/model.h"

int main() {
  using namespace porygon;
  bench::PrintHeader(
      "Fig 7(b): simulation scalability to 100k nodes (paper: 8,310->38,940 "
      "TPS; latency 7.8->8.3 s; user 33->35 s)");
  bench::PrintRow({"shards", "nodes", "TPS", "latency_s", "user_lat_s"});

  for (int shards : {10, 20, 30, 40, 50}) {
    sim::ModelConfig cfg;
    cfg.shards = shards;
    cfg.nodes_per_shard = 2000;
    cfg.num_nodes = shards * 2000;
    cfg.txs_per_block = 2000;
    cfg.blocks_per_shard_round = 1;
    cfg.cross_shard_ratio = 0.5;
    cfg.backlog_rounds = 10;
    auto r = sim::EstimatePorygon(cfg);
    bench::PrintRow({std::to_string(shards), std::to_string(cfg.num_nodes),
                     bench::FmtInt(r.tps), bench::Fmt(r.block_latency_s),
                     bench::Fmt(r.user_latency_s)});
  }
  return 0;
}
