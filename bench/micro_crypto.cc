// Substrate microbenchmarks: hashing, Ed25519, VRF sortition.

#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "crypto/ed25519.h"
#include "crypto/provider.h"
#include "crypto/sha256.h"
#include "crypto/sha512.h"
#include "crypto/vrf.h"

namespace {
using namespace porygon;
using namespace porygon::crypto;

void BM_Sha256(benchmark::State& state) {
  Rng rng(1);
  Bytes data = rng.NextBytes(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(Sha256::Hash(data));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Sha256)->Arg(64)->Arg(1024)->Arg(65536);

void BM_Sha512(benchmark::State& state) {
  Rng rng(2);
  Bytes data = rng.NextBytes(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(Sha512::Hash(data));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Sha512)->Arg(64)->Arg(65536);

void BM_Ed25519Sign(benchmark::State& state) {
  Rng rng(3);
  KeyPair kp = Ed25519GenerateKeyPair(&rng);
  Bytes msg = rng.NextBytes(112);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Ed25519Sign(kp.private_key, msg));
  }
}
BENCHMARK(BM_Ed25519Sign);

void BM_Ed25519Verify(benchmark::State& state) {
  Rng rng(4);
  KeyPair kp = Ed25519GenerateKeyPair(&rng);
  Bytes msg = rng.NextBytes(112);
  Signature sig = Ed25519Sign(kp.private_key, msg);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Ed25519Verify(kp.public_key, msg, sig));
  }
}
BENCHMARK(BM_Ed25519Verify);

void BM_VrfProveAndVerify(benchmark::State& state) {
  Rng rng(5);
  KeyPair kp = Ed25519GenerateKeyPair(&rng);
  Bytes input = rng.NextBytes(40);
  for (auto _ : state) {
    VrfProof p = VrfProve(kp.private_key, input);
    benchmark::DoNotOptimize(VrfVerify(kp.public_key, input, p));
  }
}
BENCHMARK(BM_VrfProveAndVerify);

void BM_FastProviderSign(benchmark::State& state) {
  Rng rng(6);
  FastProvider provider;
  KeyPair kp = provider.GenerateKeyPair(&rng);
  Bytes msg = rng.NextBytes(112);
  for (auto _ : state) {
    benchmark::DoNotOptimize(provider.Sign(kp.private_key, msg));
  }
}
BENCHMARK(BM_FastProviderSign);

}  // namespace

BENCHMARK_MAIN();
