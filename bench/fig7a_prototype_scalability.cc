// Fig 7(a): prototype scalability. The paper increases shards 10 -> 30
// (10 stateless nodes per shard, so 100 -> 300 nodes, 2 storage nodes) and
// reports linearly increasing throughput (7,240 -> 21,090 TPS), block
// creation latency rising only 4.5 -> 4.7 s, commit latency stable ~13 s,
// and user-perceived latency 20 -> 21 s.
//
// Shards here are powers of two (accounts shard by the last N bits), so the
// sweep is 8 / 16 / 32 shards at 10 nodes per shard. Accepts the shared
// cross-cutting flags; `--dissemination=tree` reruns the sweep with the
// aggregation-relay strategy to measure the fan-in fix.

#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace porygon;
  bench::Args args;
  if (Status st = args.Parse(argc, argv); !st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  bench::PrintHeader(
      "Fig 7(a): Porygon prototype scalability (paper: 7,240->21,090 TPS; "
      "block 4.5->4.7 s; commit ~13 s; user 20->21 s)");
  if (args.has_dissemination()) {
    std::printf("dissemination: %s\n",
                args.Dissemination().ToString().c_str());
  }
  // The critical-path columns diagnose the fan-in flattening (ROADMAP
  // item 1): at 32 shards the dominant edge is the OC leader's downlink.
  bench::PrintRow({"shards", "nodes", "TPS", "block_lat_s", "commit_lat_s",
                   "user_lat_s", "dominant_edge", "oc_dl_util"});

  for (int shard_bits : {3, 4, 5}) {
    const int shards = 1 << shard_bits;

    core::SystemOptions opt = bench::ScaledOptions(shard_bits);
    if (Status st = args.ApplyOptions(&opt); !st.ok()) {
      std::fprintf(stderr, "%s\n", st.ToString().c_str());
      return 1;
    }

    core::PorygonSystem sys(opt);
    if (Status st = args.ApplyFaults(&sys); !st.ok()) {
      std::fprintf(stderr, "%s\n", st.ToString().c_str());
      return 1;
    }
    const uint64_t accounts = 1'000'000;
    sys.CreateAccounts(accounts, 1'000'000);
    workload::WorkloadGenerator gen({.num_accounts = accounts,
                                     .shard_bits = shard_bits,
                                     .cross_shard_ratio = 0.1,
                                     .seed = 7});

    size_t per_round = opt.blocks_per_shard_round * opt.params.block_tx_limit *
                       static_cast<size_t>(shards);
    auto r = bench::RunSaturated(&sys, &gen, 8, per_round);
    bench::PrintRow({std::to_string(shards),
                     std::to_string(opt.num_stateless_nodes),
                     bench::FmtInt(r.tps), bench::Fmt(r.block_latency_s),
                     bench::Fmt(r.commit_latency_s),
                     bench::Fmt(r.user_latency_s), r.dominant_edge,
                     bench::Fmt(r.oc_downlink_util, 3)});
  }
  return 0;
}
