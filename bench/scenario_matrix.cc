// Scenario matrix: workload x --faults= x --adversary= sweep. Each cell
// stands up a fresh small Porygon deployment, drives it with the cell's
// traffic model and arrival process, and emits one JSON row: throughput,
// p50/p95/p99 user latency, conflict-discard rate, per-reason rejection
// counters, and adversary evidence. Rows carry only sim-derived values, so
// the row block is byte-identical for a given seed at any thread count;
// wall-clock provenance lives in the separate "bench" block.
//
//   ./scenario_matrix                          # default >= 9-cell sweep
//   ./scenario_matrix --out=matrix.json
//   ./scenario_matrix --rounds=2 --tps=200 --workload=zipf:0.99,...
//                                              # single-cell (smoke) mode
//
// In single-cell mode --faults=/--adversary= apply to that cell; in sweep
// mode the matrix supplies its own fault/adversary columns.

#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "workload/scenario.h"

int main(int argc, char** argv) {
  using namespace porygon;
  bench::Args args;
  args.Declare("--out=").Declare("--rounds=").Declare("--tps=");
  if (Status parsed = args.Parse(argc, argv); !parsed.ok()) {
    std::fprintf(stderr, "%s\n", parsed.ToString().c_str());
    return 2;
  }

  workload::ScenarioOptions opt;
  if (const std::string v = args.Value("--rounds="); !v.empty()) {
    opt.rounds = std::atoi(v.c_str());
  }
  if (const std::string v = args.Value("--tps="); !v.empty()) {
    opt.offered_tps = std::atof(v.c_str());
  }
  std::string out_path = args.Value("--out=");
  if (out_path.empty()) out_path = "scenario_matrix.json";

  std::vector<workload::ScenarioCell> cells;
  if (args.has_workload()) {
    workload::ScenarioCell cell;
    cell.workload = args.WorkloadOr({}).ToString();
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg.rfind("--faults=", 0) == 0) cell.faults = arg.substr(9);
      if (arg.rfind("--adversary=", 0) == 0) cell.adversary = arg.substr(12);
      if (arg.rfind("--dissemination=", 0) == 0) {
        cell.dissemination = arg.substr(16);
      }
    }
    cells.push_back(cell);
  } else {
    cells = workload::DefaultScenarioMatrix();
  }

  bench::PrintHeader("Scenario matrix: workload x faults x adversary");
  bench::PrintRow({"workload", "faults", "adversary", "tps", "p99_s"});

  bench::WallTimer timer;
  std::string rows;
  for (const auto& cell : cells) {
    Result<std::string> row = workload::RunScenarioCell(cell, opt);
    if (!row.ok()) {
      std::fprintf(stderr, "cell '%s' failed: %s\n", cell.workload.c_str(),
                   row.status().ToString().c_str());
      return 1;
    }
    if (!rows.empty()) rows += ",\n";
    rows += *row;
    // Console summary: the model clause, whether faults/adversary were on,
    // and the two headline numbers pulled back out of the row.
    auto field = [&](const char* key) {
      const std::string k = std::string("\"") + key + "\":";
      const size_t at = row->find(k);
      if (at == std::string::npos) return std::string("?");
      const size_t start = at + k.size();
      return row->substr(start, row->find_first_of(",}", start) - start);
    };
    bench::PrintRow({cell.workload.substr(0, cell.workload.find(',')),
                     cell.faults.empty() ? "-" : "on",
                     cell.adversary.empty() ? "-" : "on", field("tps"),
                     field("p99")});
  }

  char head[128];
  std::snprintf(head, sizeof(head),
                "{\"bench\":{\"wall_ms\":%.3f},\n\"rows\":[\n",
                timer.ElapsedMs());
  const std::string json = std::string(head) + rows + "\n]}\n";
  if (std::FILE* f = std::fopen(out_path.c_str(), "wb"); f != nullptr) {
    std::fwrite(json.data(), 1, json.size(), f);
    std::fclose(f);
    std::printf("  (matrix export: %s, %zu rows)\n", out_path.c_str(),
                cells.size());
  } else {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  return 0;
}
