// Fig 9(b): per-phase network usage of Porygon's stateless nodes versus a
// ByShard full node (10 shards / 100 nodes in the paper; 8 shards here).
// The paper reports each Porygon phase consuming 50-80% less bandwidth
// than the full node's per-round traffic, because the 3D design spreads
// work across phases and committees.

#include "baselines/byshard.h"
#include "bench_util.h"

int main() {
  using namespace porygon;
  bench::PrintHeader(
      "Fig 9(b): network usage per phase vs ByShard full node (paper: each "
      "phase 50-80% below the full node)");

  const int shard_bits = 3;

  core::SystemOptions opt;
  opt.params.shard_bits = shard_bits;
  opt.params.witness_threshold = 2;
  opt.params.execution_threshold = 2;
  opt.params.block_tx_limit = 1000;
  opt.num_storage_nodes = 2;
  opt.num_stateless_nodes = 100;
  opt.oc_size = 10;
  opt.blocks_per_shard_round = 1;
  opt.seed = 19;
  core::PorygonSystem sys(opt);
  sys.CreateAccounts(500'000, 1'000'000);
  workload::WorkloadGenerator gen({.num_accounts = 500'000,
                                   .shard_bits = shard_bits,
                                   .cross_shard_ratio = 0.1,
                                   .seed = 10});
  size_t per_round =
      opt.params.block_tx_limit * (size_t{1} << shard_bits);
  bench::RunSaturated(&sys, &gen, 8, per_round);
  auto phases = sys.StatelessPhaseTraffic();

  baselines::ByshardOptions bopt;
  bopt.shard_bits = shard_bits;
  bopt.nodes_per_shard = 12;
  bopt.block_tx_limit = 1000;
  bopt.seed = 19;
  baselines::ByshardSystem byshard(bopt);
  byshard.CreateAccounts(500'000, 1'000'000);
  workload::WorkloadGenerator bgen({.num_accounts = 500'000,
                                    .shard_bits = shard_bits,
                                    .cross_shard_ratio = 0.1,
                                    .seed = 10});
  for (int r = 0; r < 10; ++r) {
    for (const auto& t : bgen.Batch(per_round)) byshard.SubmitTransaction(t);
    byshard.Run(1);
  }
  double full_node = byshard.MeanNodeTrafficPerRound();

  const char* names[4] = {"Witness", "Ordering", "Execution", "Commit"};
  bench::PrintRow({"phase", "bytes/node/round", "vs_full_node"});
  for (int p = 0; p < 4; ++p) {
    double bytes = phases.count(p) ? phases[p] : 0;
    double pct = full_node > 0 ? 100.0 * (1.0 - bytes / full_node) : 0;
    bench::PrintRow({names[p], bench::FmtInt(bytes),
                     "-" + bench::Fmt(pct, 0) + "%"});
  }
  bench::PrintRow({"ByShard full node", bench::FmtInt(full_node), "baseline"});
  return 0;
}
