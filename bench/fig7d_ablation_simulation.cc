// Fig 7(d): optimization ablation at simulation scale — the same 1D -> 2D
// -> 3D staircase as Fig 7(c) but with large committees, showing that
// pipelining and sharding each contribute at scale.

#include "bench_util.h"
#include "simulation/model.h"

int main() {
  using namespace porygon;
  bench::PrintHeader(
      "Fig 7(d): optimization ablation, simulation (pipelining and shards "
      "each lift throughput)");
  bench::PrintRow({"configuration", "TPS", "latency_s"});

  sim::ModelConfig base;
  base.nodes_per_shard = 2000;
  base.txs_per_block = 2000;
  base.blocks_per_shard_round = 1;
  base.cross_shard_ratio = 0.5;

  {
    sim::ModelConfig cfg = base;
    cfg.pipelining = false;
    cfg.sharding = false;
    auto r = sim::EstimatePorygon(cfg);
    bench::PrintRow({"1D:Baseline", bench::FmtInt(r.tps),
                     bench::Fmt(r.block_latency_s)});
  }
  {
    sim::ModelConfig cfg = base;
    cfg.pipelining = true;
    cfg.sharding = false;
    auto r = sim::EstimatePorygon(cfg);
    bench::PrintRow({"2D:+Pipelining", bench::FmtInt(r.tps),
                     bench::Fmt(r.block_latency_s)});
  }
  for (int shards : {2, 5, 10}) {
    sim::ModelConfig cfg = base;
    cfg.shards = shards;
    auto r = sim::EstimatePorygon(cfg);
    bench::PrintRow({"3D:+" + std::to_string(shards) + " shards",
                     bench::FmtInt(r.tps), bench::Fmt(r.block_latency_s)});
  }
  return 0;
}
