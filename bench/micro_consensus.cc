// Consensus/committee microbenchmarks: BA* decision rounds and VRF
// sortition assignment/verification, at committee sizes used by the
// prototype experiments.

#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "common/rng.h"
#include "consensus/ba_star.h"
#include "core/committee.h"
#include "crypto/provider.h"

namespace {
using namespace porygon;
using namespace porygon::consensus;

// Full BA* decision among n members over an in-memory bus.
void BM_BaStarDecision(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  crypto::FastProvider provider;
  Rng rng(1);
  std::vector<crypto::KeyPair> keys;
  std::vector<crypto::PublicKey> members;
  for (int i = 0; i < n; ++i) {
    keys.push_back(provider.GenerateKeyPair(&rng));
    members.push_back(keys.back().public_key);
  }
  crypto::Hash256 value{};
  value[0] = 9;

  for (auto _ : state) {
    std::vector<Vote> bus;
    std::vector<std::unique_ptr<BaStar>> nodes;
    int decided = 0;
    for (int i = 0; i < n; ++i) {
      nodes.push_back(std::make_unique<BaStar>(
          &provider, keys[i], members,
          [&bus](const Vote& v) { bus.push_back(v); },
          [&decided](const DecisionCert&) { ++decided; }));
    }
    for (auto& node : nodes) node->Propose(1, value);
    while (!bus.empty()) {
      std::vector<Vote> batch = std::move(bus);
      bus.clear();
      for (const Vote& v : batch) {
        for (auto& node : nodes) node->OnVote(v);
      }
    }
    benchmark::DoNotOptimize(decided);
  }
}
BENCHMARK(BM_BaStarDecision)->Arg(4)->Arg(10)->Arg(30);

void BM_SortitionAssign(benchmark::State& state) {
  crypto::FastProvider provider;
  Rng rng(2);
  crypto::KeyPair kp = provider.GenerateKeyPair(&rng);
  crypto::Hash256 prev{};
  uint64_t round = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::Sortition::Assign(
        &provider, kp.private_key, ++round, prev, 0.1, 0.9, 4));
  }
}
BENCHMARK(BM_SortitionAssign);

void BM_SortitionVerify(benchmark::State& state) {
  crypto::FastProvider provider;
  Rng rng(3);
  crypto::KeyPair kp = provider.GenerateKeyPair(&rng);
  crypto::Hash256 prev{};
  auto assignment = core::Sortition::Assign(&provider, kp.private_key, 5,
                                            prev, 0.1, 0.9, 4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::Sortition::Verify(
        &provider, kp.public_key, 5, prev, 0.1, 0.9, 4, assignment));
  }
}
BENCHMARK(BM_SortitionVerify);

}  // namespace

BENCHMARK_MAIN();
