// Fig 7(c): dimension-by-dimension ablation on the prototype. The paper's
// bars: 1D baseline (2 storage + 10 stateless nodes, no pipelining or
// sharding) reaches 740 TPS; adding pipelining lifts it to 1,020 TPS;
// adding shards (10 more nodes each) scales further.
//
// Rows here: the 1D baseline is the Blockene-style sequential committee
// built on the same substrates; 2D is Porygon with a single shard
// (pipelining only); 3D adds 2 and 4 shards (powers of two).

#include "baselines/blockene.h"
#include "bench_util.h"

namespace {
porygon::bench::RunSummary RunPorygonShards(int shard_bits, int nodes) {
  using namespace porygon;
  core::SystemOptions opt;
  opt.params.shard_bits = shard_bits;
  opt.params.witness_threshold = 2;
  opt.params.execution_threshold = 2;
  opt.params.block_tx_limit = 2000;
  opt.params.storage_connections = 2;
  opt.num_storage_nodes = 2;
  opt.num_stateless_nodes = nodes;
  opt.oc_size = 4;
  opt.blocks_per_shard_round = 1;
  opt.seed = 11;
  core::PorygonSystem sys(opt);
  sys.CreateAccounts(500'000, 1'000'000);
  workload::WorkloadGenerator gen({.num_accounts = 500'000,
                                   .shard_bits = shard_bits,
                                   .cross_shard_ratio = 0.1,
                                   .seed = 3});
  size_t per_round =
      opt.params.block_tx_limit * (size_t{1} << shard_bits);
  return bench::RunSaturated(&sys, &gen, 8, per_round);
}
}  // namespace

int main() {
  using namespace porygon;
  bench::PrintHeader(
      "Fig 7(c): optimization ablation, prototype (paper: 1D 740 TPS -> "
      "+pipelining 1,020 TPS -> +2 shards -> +5 shards)");
  bench::PrintRow({"configuration", "nodes", "TPS"});

  {
    baselines::BlockeneOptions opt;
    opt.num_storage_nodes = 2;
    opt.num_stateless_nodes = 10;
    opt.committee_size = 10;
    opt.block_tx_limit = 2000;
    baselines::BlockeneSystem sys(opt);
    sys.CreateAccounts(500'000, 1'000'000);
    workload::WorkloadGenerator gen(
        {.num_accounts = 500'000, .shard_bits = 0, .seed = 3});
    double tps = bench::DriveOpenLoopTps(&sys, &gen, 10, 2000);
    bench::PrintRow({"1D:Baseline", "10", bench::FmtInt(tps)});
  }

  auto two_d = RunPorygonShards(/*shard_bits=*/0, /*nodes=*/13);
  bench::PrintRow({"2D:+Pipelining", "13", bench::FmtInt(two_d.tps)});

  auto three_d2 = RunPorygonShards(/*shard_bits=*/1, /*nodes=*/22);
  bench::PrintRow({"3D:+2 shards", "22", bench::FmtInt(three_d2.tps)});

  auto three_d4 = RunPorygonShards(/*shard_bits=*/2, /*nodes=*/40);
  bench::PrintRow({"3D:+4 shards", "40", bench::FmtInt(three_d4.tps)});
  return 0;
}
