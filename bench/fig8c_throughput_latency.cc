// Fig 8(c): throughput versus latency under varied submission rates
// (100 nodes; 10 shards for the sharded systems in the paper, 8 here).
// The paper observes Porygon sustaining the highest load: its latency
// starts higher (storage<->stateless hops) but stays moderate while its
// capacity exceeds ByShard's and Blockene's.
//
// Also writes the full metrics registry of the last (highest-load) Porygon
// run as JSON — per-phase network bytes, phase-duration histograms with
// p50/p95/p99, and storage-engine counters — to the first positional
// argument, defaulting to fig8c.metrics.json. With --trace-out=<file>, the
// last Porygon run additionally records distributed-tracing spans and
// exports them as Perfetto-loadable Chrome trace JSON. With
// --workload=<spec>, every system runs that traffic model instead of the
// default uniform 10%-cross-shard transfers (grammar in
// workload/traffic.h).

#include <memory>

#include "baselines/blockene.h"
#include "baselines/byshard.h"
#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace porygon;
  bench::Args args;
  if (Status parsed = args.Parse(argc, argv); !parsed.ok()) {
    std::fprintf(stderr, "%s\n", parsed.ToString().c_str());
    return 2;
  }

  bench::PrintHeader(
      "Fig 8(c): throughput vs latency under varied submission rates "
      "(100 nodes)");
  bench::PrintRow({"system", "offered_tps", "achieved_tps", "user_lat_s"});

  const int shard_bits = 3;  // 8 shards.
  const int rounds = 8;
  // Default traffic: the paper's uniform transfers over a million accounts
  // at a 10% controlled cross-shard ratio.
  workload::Spec base_spec;
  base_spec.num_accounts = 1'000'000;
  base_spec.cross_shard_ratio = 0.1;
  base_spec.seed = 6;
  base_spec = args.WorkloadOr(base_spec);
  if (args.has_workload()) {
    std::printf("  (workload: %s)\n", base_spec.ToString().c_str());
  }
  std::string metrics_path = "fig8c.metrics.json";
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]).rfind("--", 0) != 0) {
      metrics_path = argv[i];
      break;
    }
  }

  for (double offered : {500.0, 1000.0, 2000.0, 4000.0, 8000.0}) {
    const bool last = offered == 8000.0;
    core::SystemOptions opt;
    opt.params.shard_bits = shard_bits;
    opt.params.witness_threshold = 2;
    opt.params.execution_threshold = 2;
    opt.params.block_tx_limit = 2000;
    opt.num_storage_nodes = 2;
    opt.num_stateless_nodes = 100;
    opt.oc_size = 10;
    opt.blocks_per_shard_round = 2;
    opt.seed = 33;
    if (Status applied = args.ApplyOptions(&opt); !applied.ok()) {
      std::fprintf(stderr, "bad --adversary spec: %s\n",
                   applied.ToString().c_str());
      return 2;
    }
    opt.trace.enabled = last && !args.trace_out().empty();
    if (last && args.has_adversary()) {
      std::printf("  (adversary: %s)\n", opt.adversary.ToString().c_str());
    }
    core::PorygonSystem sys(opt);
    sys.CreateAccountsLazy(base_spec.num_accounts, 1'000'000);
    workload::Spec spec = base_spec;
    spec.shard_bits = shard_bits;
    std::unique_ptr<workload::TrafficModel> gen = spec.BuildModel();
    std::unique_ptr<workload::ArrivalProcess> arrival = spec.BuildArrival();
    bench::WallTimer timer;
    auto r = bench::RunOpenLoop(&sys, gen.get(), rounds, offered,
                                /*est_round_s=*/5.0, arrival.get());
    const double wall_ms = timer.ElapsedMs();
    bench::PrintRow({"Porygon", bench::FmtInt(offered), bench::FmtInt(r.tps),
                     bench::Fmt(r.user_latency_s)});
    bench::BenchStamp stamp;
    stamp.wall_ms = wall_ms;
    stamp.worker_threads = sys.task_pool()->thread_count();
    if (args.has_adversary()) {
      stamp.adversary_spec = opt.adversary.ToString();
      stamp.adversary_evidence = sys.adversary()->evidence();
    }
    if (last && bench::WriteMetricsJson(sys, metrics_path, &stamp)) {
      std::printf("  (metrics export: %s)\n", metrics_path.c_str());
    }
    if (last && !args.trace_out().empty() &&
        bench::WriteTraceJson(&sys, args.trace_out())) {
      std::printf("  (trace export: %s)\n", args.trace_out().c_str());
    }
  }

  for (double offered : {500.0, 1000.0, 2000.0, 4000.0}) {
    baselines::ByshardOptions opt;
    opt.shard_bits = shard_bits;
    opt.nodes_per_shard = 12;
    opt.block_tx_limit = 1000;
    opt.seed = 33;
    baselines::ByshardSystem sys(opt);
    sys.CreateAccounts(base_spec.num_accounts, 1'000'000);
    workload::Spec spec = base_spec;
    spec.shard_bits = shard_bits;
    std::unique_ptr<workload::TrafficModel> gen = spec.BuildModel();
    double tps = bench::DriveOpenLoopTps(
        &sys, gen.get(), 10, static_cast<size_t>(offered * 4.0));
    bench::PrintRow({"ByShard", bench::FmtInt(offered), bench::FmtInt(tps),
                     bench::Fmt(bench::MeanOf(sys.metrics().user_latencies_s))});
  }

  for (double offered : {250.0, 500.0, 1000.0}) {
    baselines::BlockeneOptions opt;
    opt.num_stateless_nodes = 100;
    opt.committee_size = 10;
    opt.block_tx_limit = 2000;
    opt.seed = 33;
    baselines::BlockeneSystem sys(opt);
    sys.CreateAccounts(base_spec.num_accounts, 1'000'000);
    workload::Spec spec = base_spec;
    spec.shard_bits = 0;
    spec.cross_shard_ratio = -1.0;  // Blockene is unsharded.
    std::unique_ptr<workload::TrafficModel> gen = spec.BuildModel();
    double tps = bench::DriveOpenLoopTps(
        &sys, gen.get(), 10, static_cast<size_t>(offered * 7.0));
    bench::PrintRow({"Blockene", bench::FmtInt(offered), bench::FmtInt(tps),
                     bench::Fmt(bench::MeanOf(sys.metrics().user_latencies_s))});
  }

  // Compute-runtime comparison: the highest-load Porygon configuration run
  // serial (worker_threads = 0) and with 8 pool workers. Simulated results
  // are byte-identical either way; only host wall-clock changes, and only
  // when real cores are available (see EXPERIMENTS.md).
  bench::PrintHeader(
      "Parallel compute runtime: same run, serial vs 8 worker threads");
  bench::PrintRow({"worker_threads", "wall_ms", "achieved_tps", "speedup"});
  double serial_ms = 0;
  for (int threads : {0, 8}) {
    core::SystemOptions opt;
    opt.params.shard_bits = shard_bits;
    opt.params.witness_threshold = 2;
    opt.params.execution_threshold = 2;
    opt.params.block_tx_limit = 2000;
    opt.num_storage_nodes = 2;
    opt.num_stateless_nodes = 100;
    opt.oc_size = 10;
    opt.blocks_per_shard_round = 2;
    opt.seed = 33;
    opt.worker_threads = threads;
    core::PorygonSystem sys(opt);
    sys.CreateAccountsLazy(base_spec.num_accounts, 1'000'000);
    workload::Spec spec = base_spec;
    spec.shard_bits = shard_bits;
    std::unique_ptr<workload::TrafficModel> gen = spec.BuildModel();
    bench::WallTimer timer;
    auto r = bench::RunOpenLoop(&sys, gen.get(), rounds, 8000.0,
                                /*est_round_s=*/5.0);
    const double wall_ms = timer.ElapsedMs();
    if (threads == 0) serial_ms = wall_ms;
    const double speedup = wall_ms > 0 ? serial_ms / wall_ms : 0;
    bench::PrintRow({bench::FmtInt(sys.task_pool()->thread_count()),
                     bench::FmtInt(wall_ms), bench::FmtInt(r.tps),
                     bench::Fmt(speedup, 2) + "x"});
  }
  return 0;
}
