// Fig 8(c): throughput versus latency under varied submission rates
// (100 nodes; 10 shards for the sharded systems in the paper, 8 here).
// The paper observes Porygon sustaining the highest load: its latency
// starts higher (storage<->stateless hops) but stays moderate while its
// capacity exceeds ByShard's and Blockene's.

#include "baselines/blockene.h"
#include "baselines/byshard.h"
#include "bench_util.h"

int main() {
  using namespace porygon;
  bench::PrintHeader(
      "Fig 8(c): throughput vs latency under varied submission rates "
      "(100 nodes)");
  bench::PrintRow({"system", "offered_tps", "achieved_tps", "user_lat_s"});

  const int shard_bits = 3;  // 8 shards.
  const int rounds = 8;

  for (double offered : {500.0, 1000.0, 2000.0, 4000.0, 8000.0}) {
    core::SystemOptions opt;
    opt.params.shard_bits = shard_bits;
    opt.params.witness_threshold = 2;
    opt.params.execution_threshold = 2;
    opt.params.block_tx_limit = 2000;
    opt.num_storage_nodes = 2;
    opt.num_stateless_nodes = 100;
    opt.oc_size = 10;
    opt.blocks_per_shard_round = 2;
    opt.seed = 33;
    core::PorygonSystem sys(opt);
    sys.CreateAccounts(1'000'000, 1'000'000);
    workload::WorkloadGenerator gen({.num_accounts = 1'000'000,
                                     .shard_bits = shard_bits,
                                     .cross_shard_ratio = 0.1,
                                     .seed = 6});
    // Open-loop: submit `offered` TPS worth of load per (estimated) round.
    const double est_round_s = 5.0;
    for (int r = 0; r < rounds + 4; ++r) {
      size_t n = static_cast<size_t>(offered * est_round_s);
      for (const auto& t : gen.Batch(n)) sys.SubmitTransaction(t);
      sys.Run(1);
    }
    const auto& m = sys.metrics();
    bench::PrintRow({"Porygon", bench::FmtInt(offered),
                     bench::FmtInt(m.Tps(sys.sim_seconds())),
                     bench::Fmt(core::SystemMetrics::Mean(
                         m.user_latencies_s))});
  }

  for (double offered : {500.0, 1000.0, 2000.0, 4000.0}) {
    baselines::ByshardOptions opt;
    opt.shard_bits = shard_bits;
    opt.nodes_per_shard = 12;
    opt.block_tx_limit = 1000;
    opt.seed = 33;
    baselines::ByshardSystem sys(opt);
    sys.CreateAccounts(1'000'000, 1'000'000);
    workload::WorkloadGenerator gen({.num_accounts = 1'000'000,
                                     .shard_bits = shard_bits,
                                     .cross_shard_ratio = 0.1,
                                     .seed = 6});
    const double est_round_s = 4.0;
    for (int r = 0; r < 10; ++r) {
      size_t n = static_cast<size_t>(offered * est_round_s);
      for (const auto& t : gen.Batch(n)) sys.SubmitTransaction(t);
      sys.Run(1);
    }
    const auto& m = sys.metrics();
    double mean_user = 0;
    if (!m.user_latencies_s.empty()) {
      for (double v : m.user_latencies_s) mean_user += v;
      mean_user /= m.user_latencies_s.size();
    }
    bench::PrintRow({"ByShard", bench::FmtInt(offered),
                     bench::FmtInt(m.Tps(sys.sim_seconds())),
                     bench::Fmt(mean_user)});
  }

  for (double offered : {250.0, 500.0, 1000.0}) {
    baselines::BlockeneOptions opt;
    opt.num_stateless_nodes = 100;
    opt.committee_size = 10;
    opt.block_tx_limit = 2000;
    opt.seed = 33;
    baselines::BlockeneSystem sys(opt);
    sys.CreateAccounts(1'000'000, 1'000'000);
    workload::WorkloadGenerator gen(
        {.num_accounts = 1'000'000, .shard_bits = 0, .seed = 6});
    const double est_round_s = 7.0;
    for (int r = 0; r < 10; ++r) {
      size_t n = static_cast<size_t>(offered * est_round_s);
      for (const auto& t : gen.Batch(n)) sys.SubmitTransaction(t);
      sys.Run(1);
    }
    const auto& m = sys.metrics();
    double mean_user = 0;
    if (!m.user_latencies_s.empty()) {
      for (double v : m.user_latencies_s) mean_user += v;
      mean_user /= m.user_latencies_s.size();
    }
    bench::PrintRow({"Blockene", bench::FmtInt(offered),
                     bench::FmtInt(m.Tps(sys.sim_seconds())),
                     bench::Fmt(mean_user)});
  }
  return 0;
}
