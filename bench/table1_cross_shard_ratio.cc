// Table I: performance under different cross-shard transaction ratios
// (10-shard simulation). Paper: TPS 9,179 -> 8,810 and latency 7.60 ->
// 7.89 s as the ratio grows 0.5 -> 1.0 — the lightweight coordination
// degrades gracefully.

#include "bench_util.h"
#include "simulation/model.h"

int main() {
  using namespace porygon;
  bench::PrintHeader(
      "Table I: cross-shard ratio sweep, 10 shards (paper: TPS 9,179->8,810;"
      " latency 7.60->7.89 s)");
  bench::PrintRow({"ratio", "TPS", "latency_s"});

  for (double ratio : {0.5, 0.7, 0.9, 0.95, 1.0}) {
    sim::ModelConfig cfg;
    cfg.shards = 10;
    cfg.nodes_per_shard = 2000;
    cfg.txs_per_block = 2450;  // Calibrated to the paper's Table I load.
    cfg.blocks_per_shard_round = 1;
    cfg.cross_shard_ratio = ratio;
    auto r = sim::EstimatePorygon(cfg);
    bench::PrintRow({bench::Fmt(ratio, 2), bench::FmtInt(r.tps),
                     bench::Fmt(r.block_latency_s, 2)});
  }
  return 0;
}
