// Fig 8(a): prototype throughput comparison as the network grows (paper:
// 50 -> 300 nodes; ByShard 2,260 -> 9,150 TPS, Blockene flat ~750 TPS,
// Porygon > 21,090 TPS at 300 nodes; 10 nodes per shard for the sharded
// systems).

#include <memory>

#include "baselines/blockene.h"
#include "baselines/byshard.h"
#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace porygon;
  bench::Args args;
  if (Status parsed = args.Parse(argc, argv); !parsed.ok()) {
    std::fprintf(stderr, "%s\n", parsed.ToString().c_str());
    return 2;
  }
  // Default traffic; --workload=<spec> swaps in any other model.
  workload::Spec base_spec;
  base_spec.num_accounts = 1'000'000;
  base_spec.cross_shard_ratio = 0.1;
  base_spec.seed = 5;
  base_spec = args.WorkloadOr(base_spec);

  bench::PrintHeader(
      "Fig 8(a): prototype comparison (paper at 300 nodes: Porygon 21,090 / "
      "ByShard 9,150 / Blockene ~750 TPS)");
  bench::PrintRow({"nodes", "porygon_tps", "byshard_tps", "blockene_tps"});

  for (int shard_bits : {2, 3, 4, 5}) {
    const int shards = 1 << shard_bits;
    const int nodes = shards * 10;

    double porygon_tps = 0;
    {
      core::SystemOptions opt;
      opt.params.shard_bits = shard_bits;
      opt.params.witness_threshold = 2;
      opt.params.execution_threshold = 2;
      opt.params.block_tx_limit = 2000;
      opt.params.storage_connections = 2;
      opt.num_storage_nodes = 2;
      opt.num_stateless_nodes = nodes;
      opt.oc_size = 8;
      opt.blocks_per_shard_round = 2;
      opt.seed = 21;
      core::PorygonSystem sys(opt);
      sys.CreateAccountsLazy(base_spec.num_accounts, 1'000'000);
      workload::Spec spec = base_spec;
      spec.shard_bits = shard_bits;
      std::unique_ptr<workload::TrafficModel> gen = spec.BuildModel();
      size_t per_round = opt.blocks_per_shard_round *
                         opt.params.block_tx_limit *
                         static_cast<size_t>(shards);
      porygon_tps = bench::RunSaturated(&sys, gen.get(), 8, per_round).tps;
    }

    double byshard_tps = 0;
    {
      baselines::ByshardOptions opt;
      opt.shard_bits = shard_bits;
      opt.nodes_per_shard = 10;
      opt.block_tx_limit = 1000;  // §VI: ~1,000-tx blocks in ByShard.
      opt.seed = 21;
      baselines::ByshardSystem sys(opt);
      sys.CreateAccounts(base_spec.num_accounts, 1'000'000);
      workload::Spec spec = base_spec;
      spec.shard_bits = shard_bits;
      std::unique_ptr<workload::TrafficModel> gen = spec.BuildModel();
      byshard_tps = bench::DriveOpenLoopTps(
          &sys, gen.get(), 10,
          opt.block_tx_limit * static_cast<size_t>(shards));
    }

    double blockene_tps = 0;
    {
      baselines::BlockeneOptions opt;
      opt.num_stateless_nodes = nodes;
      opt.committee_size = 10;
      opt.block_tx_limit = 2000;
      opt.seed = 21;
      baselines::BlockeneSystem sys(opt);
      sys.CreateAccounts(base_spec.num_accounts, 1'000'000);
      workload::Spec spec = base_spec;
      spec.shard_bits = 0;
      spec.cross_shard_ratio = -1.0;  // Blockene is unsharded.
      std::unique_ptr<workload::TrafficModel> gen = spec.BuildModel();
      blockene_tps =
          bench::DriveOpenLoopTps(&sys, gen.get(), 10, opt.block_tx_limit);
    }

    bench::PrintRow({std::to_string(nodes), bench::FmtInt(porygon_tps),
                     bench::FmtInt(byshard_tps),
                     bench::FmtInt(blockene_tps)});
  }
  return 0;
}
