// Chaos soak harness: long-horizon deterministic runs composing
// --workload= x --faults= x --adversary= x --dissemination= with
// epoch-based committee reconfiguration (--epoch-length=), continuously
// checked for safety (GlobalRoot identity against a same-seed reference
// run, chain integrity, evidence attribution) and liveness (bounded commit
// gap, bounded pool age) by workload::InvariantChecker. On any violation
// the harness prints a one-line `--replay='<spec>'` command that
// deterministically reproduces the failing run.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "common/status.h"
#include "workload/soak.h"

namespace {

bool MatchFlag(const char* arg, const char* prefix, std::string* value) {
  const size_t n = std::strlen(prefix);
  if (std::strncmp(arg, prefix, n) != 0) return false;
  *value = arg + n;
  return true;
}

void Usage(const char* prog) {
  std::fprintf(
      stderr,
      "usage: %s [flags]\n"
      "  --rounds=<n>          driver rounds (default 200)\n"
      "  --epoch-length=<n>    committee reconfiguration period; 0 disables"
      " (default 25)\n"
      "  --seed=<n>            system seed (default 1)\n"
      "  --nodes=<n>           stateless nodes (default 26)\n"
      "  --storages=<n>        storage nodes (default 2)\n"
      "  --oc=<n>              ordering-committee size (default 4)\n"
      "  --shard-bits=<n>      shards = 2^bits (default 1)\n"
      "  --tps=<f>             offered load (default 40)\n"
      "  --gap=<s>             max commit gap / liveness bound (default 60)\n"
      "  --workload=<spec>     workload::Spec grammar\n"
      "  --faults=<spec>       net::FaultPlan grammar\n"
      "  --adversary=<spec>    core::AdversarySpec grammar\n"
      "  --dissemination=<spec> net::DisseminationSpec grammar\n"
      "  --inject=<round>      test-only: perturb observed roots from this"
      " round (harness must catch it)\n"
      "  --threads=<n>         chaos-run worker threads (default 0)\n"
      "  --replay=<soakspec>   full SoakSpec string; overrides every flag"
      " above\n"
      "  --out=<file>          write the SoakReport JSON\n",
      prog);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace porygon;

  std::string clauses;
  std::string replay;
  std::string out_path;
  int threads = 0;
  const auto add = [&clauses](const char* key, const std::string& value) {
    if (!clauses.empty()) clauses += ';';
    clauses += std::string(key) + ":" + value;
  };
  for (int i = 1; i < argc; ++i) {
    std::string v;
    if (MatchFlag(argv[i], "--replay=", &v)) {
      replay = v;
    } else if (MatchFlag(argv[i], "--rounds=", &v)) {
      add("rounds", v);
    } else if (MatchFlag(argv[i], "--epoch-length=", &v)) {
      add("epoch", v);
    } else if (MatchFlag(argv[i], "--seed=", &v)) {
      add("seed", v);
    } else if (MatchFlag(argv[i], "--nodes=", &v)) {
      add("nodes", v);
    } else if (MatchFlag(argv[i], "--storages=", &v)) {
      add("storages", v);
    } else if (MatchFlag(argv[i], "--oc=", &v)) {
      add("oc", v);
    } else if (MatchFlag(argv[i], "--shard-bits=", &v)) {
      add("shardbits", v);
    } else if (MatchFlag(argv[i], "--tps=", &v)) {
      add("tps", v);
    } else if (MatchFlag(argv[i], "--gap=", &v)) {
      add("gap", v);
    } else if (MatchFlag(argv[i], "--workload=", &v)) {
      add("workload", v);
    } else if (MatchFlag(argv[i], "--faults=", &v)) {
      add("faults", v);
    } else if (MatchFlag(argv[i], "--adversary=", &v)) {
      add("adversary", v);
    } else if (MatchFlag(argv[i], "--dissemination=", &v)) {
      add("dissemination", v);
    } else if (MatchFlag(argv[i], "--inject=", &v)) {
      add("inject", v);
    } else if (MatchFlag(argv[i], "--threads=", &v)) {
      threads = std::atoi(v.c_str());
    } else if (MatchFlag(argv[i], "--out=", &v)) {
      out_path = v;
    } else {
      Usage(argv[0]);
      return 2;
    }
  }

  // --replay carries the complete failing configuration; every other spec
  // flag is ignored when it is present so the reproduction is exact.
  Result<workload::SoakSpec> parsed =
      workload::SoakSpec::Parse(replay.empty() ? clauses : replay);
  if (!parsed.ok()) {
    std::fprintf(stderr, "%s\n", parsed.status().ToString().c_str());
    return 2;
  }
  const workload::SoakSpec spec = std::move(parsed).value();
  std::printf("soak: %s (threads=%d)\n", spec.ToString().c_str(), threads);

  Result<workload::SoakReport> result = workload::RunSoak(spec, threads);
  if (!result.ok()) {
    std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
    return 2;
  }
  const workload::SoakReport& report = result.value();

  std::printf(
      "soak: %llu rounds, %llu epochs, %llu invariant checks, %llu txs, "
      "max commit gap %.3fs, %.1f tps\n",
      static_cast<unsigned long long>(report.rounds_completed),
      static_cast<unsigned long long>(report.epochs_completed),
      static_cast<unsigned long long>(report.invariant_checks),
      static_cast<unsigned long long>(report.committed_txs),
      report.max_commit_gap_s, report.tps);

  if (!out_path.empty()) {
    if (std::FILE* f = std::fopen(out_path.c_str(), "wb")) {
      const std::string json = report.ToJson();
      std::fwrite(json.data(), 1, json.size(), f);
      std::fclose(f);
    } else {
      std::fprintf(stderr, "soak: cannot write %s\n", out_path.c_str());
    }
  }

  if (!report.ok()) {
    for (const std::string& v : report.violations) {
      std::fprintf(stderr, "VIOLATION: %s\n", v.c_str());
    }
    std::fprintf(stderr, "REPLAY: %s --replay='%s'\n", argv[0],
                 report.replay_spec.c_str());
    return 1;
  }
  std::printf("OK: zero invariant violations\n");
  return 0;
}
