// Fig 8(b): throughput comparison in large-scale simulations as the node
// count grows 100 -> 1,000 (paper: Porygon 8,760 -> 57,220 TPS with the
// fastest growth; ByShard grows more slowly; Blockene stays flat).

#include "bench_util.h"
#include "simulation/model.h"

int main() {
  using namespace porygon;
  bench::PrintHeader(
      "Fig 8(b): simulation comparison 100->1,000 nodes (paper: Porygon "
      "8,760->57,220 TPS)");
  bench::PrintRow({"nodes", "porygon_tps", "byshard_tps", "blockene_tps"});

  for (int nodes : {100, 200, 400, 600, 800, 1000}) {
    const int shards = nodes / 10;  // 10 nodes per shard.

    sim::ModelConfig porygon;
    porygon.num_nodes = nodes;
    porygon.shards = shards;
    porygon.nodes_per_shard = 10;
    porygon.txs_per_block = 2000;
    porygon.blocks_per_shard_round = 1;
    porygon.cross_shard_ratio = 0.5;
    porygon.oc_size = 10;

    sim::ModelConfig byshard = porygon;
    byshard.txs_per_block = 1000;

    sim::ModelConfig blockene = porygon;
    blockene.txs_per_block = 2000;

    bench::PrintRow({std::to_string(nodes),
                     bench::FmtInt(sim::EstimatePorygon(porygon).tps),
                     bench::FmtInt(sim::EstimateByshard(byshard).tps),
                     bench::FmtInt(sim::EstimateBlockene(blockene).tps)});
  }
  return 0;
}
