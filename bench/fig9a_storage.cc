// Fig 9(a): storage consumption as block height grows (~1,000-tx blocks,
// 100 nodes). ByShard full nodes must keep complete block contents, so
// their footprint grows linearly with height; Porygon's stateless nodes
// keep only verification material (block header + committee keys) and stay
// flat (~5 MB in the paper's deployment).

#include "baselines/byshard.h"
#include "bench_util.h"

int main() {
  using namespace porygon;
  bench::PrintHeader(
      "Fig 9(a): storage vs block height (paper: ByShard grows; Porygon "
      "stateless nodes flat ~5 MB)");
  bench::PrintRow({"height", "byshard_node_bytes", "porygon_stateless_bytes"});

  const int shard_bits = 2;

  // ByShard: run in height increments, sampling a full node's disk.
  baselines::ByshardOptions bopt;
  bopt.shard_bits = shard_bits;
  bopt.nodes_per_shard = 10;
  bopt.block_tx_limit = 1000;
  bopt.seed = 12;
  baselines::ByshardSystem byshard(bopt);
  byshard.CreateAccounts(500'000, 1'000'000);
  workload::WorkloadGenerator bgen({.num_accounts = 500'000,
                                    .shard_bits = shard_bits,
                                    .cross_shard_ratio = 0.1,
                                    .seed = 9});

  // Porygon: same block budget; sample the max stateless-node footprint.
  core::SystemOptions popt;
  popt.params.shard_bits = shard_bits;
  popt.params.witness_threshold = 2;
  popt.params.execution_threshold = 2;
  popt.params.block_tx_limit = 1000;
  popt.num_storage_nodes = 2;
  popt.num_stateless_nodes = 100;
  popt.oc_size = 8;
  popt.blocks_per_shard_round = 1;
  popt.seed = 12;
  core::PorygonSystem porygon(popt);
  porygon.CreateAccounts(500'000, 1'000'000);
  workload::WorkloadGenerator pgen({.num_accounts = 500'000,
                                    .shard_bits = shard_bits,
                                    .cross_shard_ratio = 0.1,
                                    .seed = 9});

  for (int step = 1; step <= 6; ++step) {
    for (int r = 0; r < 4; ++r) {
      for (const auto& t : bgen.Batch(1000 * (1 << shard_bits))) {
        byshard.SubmitTransaction(t);
      }
      byshard.Run(1);
      porygon.SubmitBatch(pgen.Batch(1000 * (1 << shard_bits)));
      porygon.Run(1);
    }
    uint64_t porygon_max = 0;
    for (int i = 0; i < porygon.num_stateless_nodes(); ++i) {
      porygon_max = std::max(
          porygon_max, porygon.stateless_node(i)->StorageFootprintBytes());
    }
    bench::PrintRow({std::to_string(step * 4),
                     std::to_string(byshard.NodeStorageBytes(0)),
                     std::to_string(porygon_max)});
  }
  return 0;
}
