// State-substrate microbenchmarks: sparse Merkle tree single vs batched
// updates (the ablation motivating PutBatch), proofs, and the LSM engine.

#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "state/smt.h"
#include "storage/db.h"
#include "storage/env.h"

namespace {
using namespace porygon;
using namespace porygon::state;

void BM_SmtPutSingle(benchmark::State& state) {
  Rng rng(1);
  SparseMerkleTree tree;
  for (int i = 0; i < 10000; ++i) {
    tree.Put(rng.NextU64() % 1'000'000, ToBytes("init"));
  }
  uint64_t k = 0;
  for (auto _ : state) {
    tree.Put(k++ % 1'000'000, ToBytes("value"));
  }
}
BENCHMARK(BM_SmtPutSingle);

void BM_SmtPutBatch(benchmark::State& state) {
  // Batched path amortizes shared path levels: compare items/second here
  // against BM_SmtPutSingle.
  Rng rng(2);
  SparseMerkleTree tree;
  for (int i = 0; i < 10000; ++i) {
    tree.Put(rng.NextU64() % 1'000'000, ToBytes("init"));
  }
  const size_t batch = state.range(0);
  std::vector<std::pair<uint64_t, Bytes>> writes;
  for (size_t i = 0; i < batch; ++i) {
    writes.emplace_back(rng.NextU64() % 1'000'000, ToBytes("value"));
  }
  for (auto _ : state) {
    tree.PutBatch(writes);
  }
  state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_SmtPutBatch)->Arg(100)->Arg(1000)->Arg(8000);

void BM_SmtProveVerify(benchmark::State& state) {
  Rng rng(3);
  SparseMerkleTree tree;
  for (int i = 0; i < 10000; ++i) {
    tree.Put(i, ToBytes("v" + std::to_string(i)));
  }
  auto root = tree.Root();
  uint64_t k = 0;
  for (auto _ : state) {
    uint64_t key = k++ % 10000;
    auto proof = tree.Prove(key);
    benchmark::DoNotOptimize(SparseMerkleTree::Verify(
        root, key, ToBytes("v" + std::to_string(key)), proof));
  }
}
BENCHMARK(BM_SmtProveVerify);

void BM_DbPut(benchmark::State& state) {
  storage::MemEnv env;
  auto db = storage::Db::Open(&env, "db");
  Rng rng(4);
  uint64_t k = 0;
  for (auto _ : state) {
    std::string key = "key" + std::to_string(k++);
    (void)(*db)->Put(ToBytes(key), ToBytes("value-payload-16B"));
  }
}
BENCHMARK(BM_DbPut);

void BM_DbGet(benchmark::State& state) {
  storage::MemEnv env;
  auto db = storage::Db::Open(&env, "db");
  for (int i = 0; i < 20000; ++i) {
    (void)(*db)->Put(ToBytes("key" + std::to_string(i)), ToBytes("value"));
  }
  (void)(*db)->Flush();
  uint64_t k = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        (*db)->Get(ToBytes("key" + std::to_string(k++ % 20000))));
  }
}
BENCHMARK(BM_DbGet);

}  // namespace

BENCHMARK_MAIN();
