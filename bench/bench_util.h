#ifndef PORYGON_BENCH_BENCH_UTIL_H_
#define PORYGON_BENCH_BENCH_UTIL_H_

// Shared helpers for the figure/table reproduction harnesses. Each bench
// binary regenerates one table or figure from the paper's §VI and prints
// the same series, labelled with the paper's reported values where
// available so the shape comparison is immediate.

#include <cstdio>
#include <string>
#include <vector>

#include "core/system.h"
#include "workload/generator.h"

namespace porygon::bench {

inline void PrintHeader(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

inline void PrintRow(const std::vector<std::string>& cells) {
  for (const auto& c : cells) std::printf("%-18s", c.c_str());
  std::printf("\n");
}

inline std::string Fmt(double v, int digits = 1) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, v);
  return buf;
}

inline std::string FmtInt(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.0f", v);
  return buf;
}

/// Drives a Porygon prototype run under saturating load: before each round,
/// tops the mempool up so every shard can fill its blocks, then runs one
/// round. Returns the sustained TPS over the measured window.
struct PrototypeRun {
  double tps = 0;
  double block_latency_s = 0;
  double commit_latency_s = 0;
  double user_latency_s = 0;
};

inline PrototypeRun RunSaturated(core::PorygonSystem* sys,
                                 workload::WorkloadGenerator* gen,
                                 int rounds, size_t txs_per_round) {
  // Warmup fills the pipeline (first commits lag by the pipeline depth).
  const int warmup = 4;
  for (int r = 0; r < rounds + warmup; ++r) {
    for (const auto& t : gen->Batch(txs_per_round)) {
      sys->SubmitTransaction(t);
    }
    sys->Run(1);
  }
  const auto& m = sys->metrics();
  PrototypeRun out;
  double duration = sys->sim_seconds();
  out.tps = m.Tps(duration);
  out.block_latency_s = core::SystemMetrics::Mean(m.block_latencies_s);
  out.commit_latency_s = core::SystemMetrics::Mean(m.commit_latencies_s);
  out.user_latency_s = core::SystemMetrics::Mean(m.user_latencies_s);
  return out;
}

}  // namespace porygon::bench

#endif  // PORYGON_BENCH_BENCH_UTIL_H_
