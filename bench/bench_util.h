#ifndef PORYGON_BENCH_BENCH_UTIL_H_
#define PORYGON_BENCH_BENCH_UTIL_H_

// Shared helpers for the figure/table reproduction harnesses. Each bench
// binary regenerates one table or figure from the paper's §VI and prints
// the same series, labelled with the paper's reported values where
// available so the shape comparison is immediate.

#include <chrono>
#include <cstdio>
#include <optional>
#include <string>
#include <vector>

#include "core/system.h"
#include "net/dissemination.h"
#include "net/fault.h"
#include "net/topology.h"
#include "workload/generator.h"
#include "workload/traffic.h"

namespace porygon::bench {

/// One CLI parser for every bench/example binary. The cross-cutting spec
/// flags are accepted uniformly everywhere:
///
///   --workload=<spec>       workload::Spec::Parse clause grammar
///   --faults=<spec>         net::FaultPlan::Parse clause grammar
///   --adversary=<spec>      core::AdversarySpec::Parse clause grammar
///   --dissemination=<spec>  net::DisseminationSpec::Parse clause grammar
///   --trace-out=<file>      enable tracing, export Chrome JSON after run
///
/// Per-binary flags are declared with Declare("--rounds=") before Parse and
/// read back with Value(). Specs are validated eagerly, so a typo fails at
/// the command line instead of silently running the default scenario; any
/// undeclared `--flag` is an error instead of a silent ignore.
class Args {
 public:
  Args& Declare(const std::string& prefix) {
    declared_.emplace_back(prefix, "");
    return *this;
  }

  Status Parse(int argc, char** argv) {
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg.rfind("--", 0) != 0) continue;  // Positional args pass through.
      std::string value;
      if (Match(arg, "--workload=", &value)) {
        PORYGON_ASSIGN_OR_RETURN(workload_, workload::Spec::Parse(value));
      } else if (Match(arg, "--faults=", &value)) {
        PORYGON_ASSIGN_OR_RETURN(faults_, net::FaultPlan::Parse(value));
      } else if (Match(arg, "--adversary=", &value)) {
        PORYGON_ASSIGN_OR_RETURN(adversary_,
                                 core::AdversarySpec::Parse(value));
      } else if (Match(arg, "--dissemination=", &value)) {
        PORYGON_ASSIGN_OR_RETURN(dissemination_,
                                 net::DisseminationSpec::Parse(value));
      } else if (Match(arg, "--trace-out=", &value)) {
        trace_out_ = value;
      } else if (!MatchDeclared(arg)) {
        return Status::InvalidArgument("unknown flag: " + arg);
      }
    }
    return Status::Ok();
  }

  bool has_workload() const { return workload_.has_value(); }
  /// The parsed --workload spec, or `fallback` when the flag was absent.
  workload::Spec WorkloadOr(const workload::Spec& fallback) const {
    return workload_.value_or(fallback);
  }
  bool has_faults() const { return faults_.has_value(); }
  bool has_adversary() const { return adversary_.has_value(); }
  bool has_dissemination() const { return dissemination_.has_value(); }
  /// The parsed --dissemination spec; `direct` when the flag was absent.
  net::DisseminationSpec Dissemination() const {
    return dissemination_.value_or(net::DisseminationSpec{});
  }
  const std::string& trace_out() const { return trace_out_; }

  /// Value of a declared per-binary flag; empty when absent.
  std::string Value(const std::string& prefix) const {
    for (const auto& [p, v] : declared_) {
      if (p == prefix) return v;
    }
    return "";
  }

  /// Folds --adversary and --trace-out into `options` and re-validates, so
  /// a spec that is well-formed but infeasible for this deployment (e.g.
  /// corruption above the committee threshold) fails before construction.
  Status ApplyOptions(core::SystemOptions* options) const {
    if (!trace_out_.empty()) options->trace.enabled = true;
    if (dissemination_.has_value()) {
      options->dissemination = *dissemination_;
      PORYGON_RETURN_IF_ERROR(options->Validate());
    }
    if (adversary_.has_value()) {
      options->adversary = *adversary_;
      PORYGON_RETURN_IF_ERROR(options->Validate());
    }
    return Status::Ok();
  }

  /// Arms --faults against a constructed system (no-op when absent).
  Status ApplyFaults(core::PorygonSystem* system) const {
    if (!faults_.has_value()) return Status::Ok();
    return system->InjectFaults(*faults_);
  }

 private:
  static bool Match(const std::string& arg, const char* prefix,
                    std::string* value) {
    const std::string p(prefix);
    if (arg.rfind(p, 0) != 0) return false;
    *value = arg.substr(p.size());
    return true;
  }

  bool MatchDeclared(const std::string& arg) {
    for (auto& [prefix, value] : declared_) {
      if (arg.rfind(prefix, 0) == 0) {
        value = arg.substr(prefix.size());
        return true;
      }
    }
    return false;
  }

  std::vector<std::pair<std::string, std::string>> declared_;
  std::optional<workload::Spec> workload_;
  std::optional<net::FaultPlan> faults_;
  std::optional<core::AdversarySpec> adversary_;
  std::optional<net::DisseminationSpec> dissemination_;
  std::string trace_out_;
};

/// The standard scaled deployment every figure driver was hand-rolling:
/// `1 << shard_bits` shards at `nodes_per_shard` stateless nodes each over
/// a two-node storage tier, thresholds 2/2, 2000-tx blocks, two blocks per
/// shard round, seed 42. Drivers override individual fields after the call.
inline core::SystemOptions ScaledOptions(int shard_bits,
                                         int nodes_per_shard = 10) {
  const net::Topology topo = net::Topology::Scaled(shard_bits,
                                                   nodes_per_shard);
  core::SystemOptions opt;
  opt.params.shard_bits = shard_bits;
  opt.params.witness_threshold = 2;
  opt.params.execution_threshold = 2;
  opt.params.block_tx_limit = 2000;
  opt.params.storage_connections = 2;
  opt.params.storage_bps = topo.storage_bps();
  opt.params.stateless_bps = topo.stateless_bps();
  opt.num_storage_nodes = topo.storage_nodes();
  opt.num_stateless_nodes = topo.stateless_nodes();
  opt.oc_size = 10;
  opt.blocks_per_shard_round = 2;
  opt.seed = 42;
  return opt;
}

inline void PrintHeader(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

inline void PrintRow(const std::vector<std::string>& cells) {
  for (const auto& c : cells) std::printf("%-18s", c.c_str());
  std::printf("\n");
}

inline std::string Fmt(double v, int digits = 1) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, v);
  return buf;
}

inline std::string FmtInt(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.0f", v);
  return buf;
}

inline double MeanOf(const std::vector<double>& xs) {
  if (xs.empty()) return 0;
  double sum = 0;
  for (double v : xs) sum += v;
  return sum / static_cast<double>(xs.size());
}

/// Headline numbers for one Porygon run, read off the metrics facade and
/// the critical-path analyzer.
struct RunSummary {
  double tps = 0;
  double block_latency_s = 0;
  double commit_latency_s = 0;
  double user_latency_s = 0;
  double user_latency_p99_s = 0;
  uint64_t committed_txs = 0;
  /// Most frequent dominant latency segment / bottleneck edge across the
  /// run's round reports (e.g. "downlink_queue" / "oc_leader.downlink").
  std::string dominant_segment;
  std::string dominant_edge;
  /// Mean busy-time fraction of the OC leader's downlink per round window
  /// (0..1) — the fan-in bottleneck ROADMAP item 1 targets.
  double oc_downlink_util = 0;
  /// Per-message queueing delay (seconds) on uplinks / downlinks:
  /// p50/p95/p99 of net.queue_delay_seconds.
  obs::HistogramSummary queue_delay_up_s;
  obs::HistogramSummary queue_delay_down_s;
};

/// Reads the headline numbers for a finished run from the system's
/// metrics facade.
inline RunSummary Summarize(const core::PorygonSystem& sys) {
  const core::SystemMetrics m = sys.metrics();
  RunSummary out;
  out.tps = m.Tps(sys.sim_seconds());
  out.block_latency_s = m.BlockLatency().mean;
  out.commit_latency_s = m.CommitLatency().mean;
  out.user_latency_s = m.UserLatency().mean;
  out.user_latency_p99_s = m.UserLatency().p99;
  out.committed_txs = m.committed_txs();
  const obs::CriticalPathAnalyzer& cp = sys.critical_path();
  out.dominant_segment = cp.DominantSegmentMode();
  out.dominant_edge = cp.DominantEdgeMode();
  out.oc_downlink_util = cp.MeanUtilization("oc_leader.downlink");
  const obs::MetricsRegistry& reg = sys.metrics_registry();
  if (const obs::Histogram* h =
          reg.FindHistogram("net.queue_delay_seconds", {{"dir", "up"}})) {
    out.queue_delay_up_s = h->Summary();
  }
  if (const obs::Histogram* h =
          reg.FindHistogram("net.queue_delay_seconds", {{"dir", "down"}})) {
    out.queue_delay_down_s = h->Summary();
  }
  return out;
}

/// Drives a Porygon prototype run under saturating load: before each round,
/// tops the mempool up so every shard can fill its blocks, then runs one
/// round. Returns the sustained TPS over the measured window.
inline RunSummary RunSaturated(core::PorygonSystem* sys,
                               workload::TrafficModel* gen, int rounds,
                               size_t txs_per_round) {
  // Warmup fills the pipeline (first commits lag by the pipeline depth).
  const int warmup = 4;
  for (int r = 0; r < rounds + warmup; ++r) {
    sys->SubmitBatch(gen->Batch(txs_per_round));
    sys->Run(1);
  }
  return Summarize(*sys);
}

/// Drives a Porygon run open-loop: each round offers `offered_tps` worth
/// of transactions sized by the estimated round duration, regardless of
/// whether the system keeps up. With an `arrival` process, the per-round
/// offer follows its rate curve over sim time (mean stays `offered_tps`).
inline RunSummary RunOpenLoop(core::PorygonSystem* sys,
                              workload::TrafficModel* gen, int rounds,
                              double offered_tps, double est_round_s,
                              const workload::ArrivalProcess* arrival =
                                  nullptr) {
  const int warmup = 4;
  const size_t flat = static_cast<size_t>(offered_tps * est_round_s);
  for (int r = 0; r < rounds + warmup; ++r) {
    size_t n = flat;
    if (arrival != nullptr) {
      n = arrival->CountFor(sys->sim_seconds(), est_round_s, offered_tps);
    }
    sys->SubmitBatch(gen->Batch(n));
    sys->Run(1);
  }
  return Summarize(*sys);
}

/// Open-loop driver for the baseline systems (Blockene/ByShard), whose
/// SubmitTransaction still returns bool and whose metrics are plain
/// structs. Returns the achieved TPS.
template <typename System>
double DriveOpenLoopTps(System* sys, workload::TrafficModel* gen,
                        int rounds, size_t txs_per_round) {
  for (int r = 0; r < rounds; ++r) {
    for (const auto& t : gen->Batch(txs_per_round)) {
      (void)sys->SubmitTransaction(t);
    }
    sys->Run(1);
  }
  return sys->metrics().Tps(sys->sim_seconds());
}

/// Real (host) elapsed time for a bench section. Wall clock lives only in
/// bench binaries — simulation outputs stay wall-clock-free so same-seed
/// runs export byte-identical artifacts.
class WallTimer {
 public:
  WallTimer() : start_(std::chrono::steady_clock::now()) {}
  double ElapsedMs() const {
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

/// Host-side run provenance stamped next to a metrics export: how long the
/// run took in real time, how many pool worker threads it used, and — when
/// the run was adversarial — the canonical `--adversary=` spec plus the
/// evidence count honest nodes collected (so an archived JSON names the
/// attack it survived).
struct BenchStamp {
  double wall_ms = 0;
  int worker_threads = 0;
  std::string adversary_spec;
  uint64_t adversary_evidence = 0;
  /// Canonical `--dissemination=` spec of the run (empty = default direct),
  /// so an archived JSON names the message-flow strategy it measured.
  std::string dissemination_spec;
};

/// Dumps the system's full metrics registry as JSON to `path` (stdout on
/// failure is silent: benches treat the export as best-effort). With a
/// `stamp`, the registry JSON is wrapped in an envelope carrying the
/// wall-clock provenance plus the run's critical-path attribution:
/// {"bench": {...}, "critical_path": {...}, "metrics": {...}}. Only the
/// envelope's bench block varies run-to-run; the critical_path and
/// metrics blocks are sim-derived and stay byte-identical for a given
/// seed and config at any thread count.
inline bool WriteMetricsJson(const core::PorygonSystem& sys,
                             const std::string& path,
                             const BenchStamp* stamp = nullptr) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return false;
  std::string json = sys.metrics().ToJson();
  if (stamp != nullptr) {
    char head[384];
    std::string extra;
    if (!stamp->adversary_spec.empty()) {
      extra += ",\"adversary\":\"" + stamp->adversary_spec +
               "\",\"evidence\":" +
               std::to_string(stamp->adversary_evidence);
    }
    if (!stamp->dissemination_spec.empty()) {
      extra += ",\"dissemination\":\"" + stamp->dissemination_spec + "\"";
    }
    std::snprintf(head, sizeof(head),
                  "{\"bench\":{\"wall_ms\":%.3f,\"worker_threads\":%d%s},\n",
                  stamp->wall_ms, stamp->worker_threads, extra.c_str());
    const obs::CriticalPathAnalyzer& cp = sys.critical_path();
    const auto triple = [&sys](const char* dir) {
      obs::HistogramSummary q;
      if (const obs::Histogram* h = sys.metrics_registry().FindHistogram(
              "net.queue_delay_seconds", {{"dir", dir}})) {
        q = h->Summary();
      }
      char buf[128];
      std::snprintf(buf, sizeof(buf),
                    "{\"p50\":%.6g,\"p95\":%.6g,\"p99\":%.6g}", q.p50, q.p95,
                    q.p99);
      return std::string(buf);
    };
    char cp_head[128];
    std::snprintf(cp_head, sizeof(cp_head), "\"oc_downlink_util\":%.6g",
                  cp.MeanUtilization("oc_leader.downlink"));
    const std::string cp_block =
        "\"critical_path\":{\"dominant_segment\":\"" +
        cp.DominantSegmentMode() + "\",\"dominant_edge\":\"" +
        cp.DominantEdgeMode() + "\"," + cp_head +
        ",\"queue_delay_s\":{\"up\":" + triple("up") +
        ",\"down\":" + triple("down") + "}},\n";
    json = std::string(head) + cp_block + "\"metrics\":" + json + "}";
  }
  size_t written = std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  return written == json.size();
}

/// Dumps the system's span buffer as Chrome trace_event JSON to `path` —
/// open it at https://ui.perfetto.dev. Empty unless the run was configured
/// with SystemOptions::trace.enabled. Deterministic: same seed and config
/// produce byte-identical files.
inline bool WriteTraceJson(core::PorygonSystem* sys, const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return false;
  std::string json = sys->tracer()->ExportChromeJson();
  size_t written = std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  return written == json.size();
}

}  // namespace porygon::bench

#endif  // PORYGON_BENCH_BENCH_UTIL_H_
