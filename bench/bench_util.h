#ifndef PORYGON_BENCH_BENCH_UTIL_H_
#define PORYGON_BENCH_BENCH_UTIL_H_

// Shared helpers for the figure/table reproduction harnesses. Each bench
// binary regenerates one table or figure from the paper's §VI and prints
// the same series, labelled with the paper's reported values where
// available so the shape comparison is immediate.

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "core/system.h"
#include "workload/generator.h"

namespace porygon::bench {

inline void PrintHeader(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

inline void PrintRow(const std::vector<std::string>& cells) {
  for (const auto& c : cells) std::printf("%-18s", c.c_str());
  std::printf("\n");
}

inline std::string Fmt(double v, int digits = 1) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, v);
  return buf;
}

inline std::string FmtInt(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.0f", v);
  return buf;
}

inline double MeanOf(const std::vector<double>& xs) {
  if (xs.empty()) return 0;
  double sum = 0;
  for (double v : xs) sum += v;
  return sum / static_cast<double>(xs.size());
}

/// Headline numbers for one Porygon run, read off the metrics facade.
struct RunSummary {
  double tps = 0;
  double block_latency_s = 0;
  double commit_latency_s = 0;
  double user_latency_s = 0;
  double user_latency_p99_s = 0;
  uint64_t committed_txs = 0;
};

/// Reads the headline numbers for a finished run from the system's
/// metrics facade.
inline RunSummary Summarize(const core::PorygonSystem& sys) {
  const core::SystemMetrics m = sys.metrics();
  RunSummary out;
  out.tps = m.Tps(sys.sim_seconds());
  out.block_latency_s = m.BlockLatency().mean;
  out.commit_latency_s = m.CommitLatency().mean;
  out.user_latency_s = m.UserLatency().mean;
  out.user_latency_p99_s = m.UserLatency().p99;
  out.committed_txs = m.committed_txs();
  return out;
}

/// Drives a Porygon prototype run under saturating load: before each round,
/// tops the mempool up so every shard can fill its blocks, then runs one
/// round. Returns the sustained TPS over the measured window.
inline RunSummary RunSaturated(core::PorygonSystem* sys,
                               workload::WorkloadGenerator* gen, int rounds,
                               size_t txs_per_round) {
  // Warmup fills the pipeline (first commits lag by the pipeline depth).
  const int warmup = 4;
  for (int r = 0; r < rounds + warmup; ++r) {
    for (const auto& t : gen->Batch(txs_per_round)) {
      (void)sys->SubmitTransaction(t);
    }
    sys->Run(1);
  }
  return Summarize(*sys);
}

/// Drives a Porygon run open-loop: each round offers `offered_tps` worth
/// of transactions sized by the estimated round duration, regardless of
/// whether the system keeps up.
inline RunSummary RunOpenLoop(core::PorygonSystem* sys,
                              workload::WorkloadGenerator* gen, int rounds,
                              double offered_tps, double est_round_s) {
  const int warmup = 4;
  size_t n = static_cast<size_t>(offered_tps * est_round_s);
  for (int r = 0; r < rounds + warmup; ++r) {
    for (const auto& t : gen->Batch(n)) (void)sys->SubmitTransaction(t);
    sys->Run(1);
  }
  return Summarize(*sys);
}

/// Open-loop driver for the baseline systems (Blockene/ByShard), whose
/// SubmitTransaction still returns bool and whose metrics are plain
/// structs. Returns the achieved TPS.
template <typename System>
double DriveOpenLoopTps(System* sys, workload::WorkloadGenerator* gen,
                        int rounds, size_t txs_per_round) {
  for (int r = 0; r < rounds; ++r) {
    for (const auto& t : gen->Batch(txs_per_round)) {
      (void)sys->SubmitTransaction(t);
    }
    sys->Run(1);
  }
  return sys->metrics().Tps(sys->sim_seconds());
}

/// Real (host) elapsed time for a bench section. Wall clock lives only in
/// bench binaries — simulation outputs stay wall-clock-free so same-seed
/// runs export byte-identical artifacts.
class WallTimer {
 public:
  WallTimer() : start_(std::chrono::steady_clock::now()) {}
  double ElapsedMs() const {
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

/// Host-side run provenance stamped next to a metrics export: how long the
/// run took in real time, how many pool worker threads it used, and — when
/// the run was adversarial — the canonical `--adversary=` spec plus the
/// evidence count honest nodes collected (so an archived JSON names the
/// attack it survived).
struct BenchStamp {
  double wall_ms = 0;
  int worker_threads = 0;
  std::string adversary_spec;
  uint64_t adversary_evidence = 0;
};

/// Dumps the system's full metrics registry as JSON to `path` (stdout on
/// failure is silent: benches treat the export as best-effort). With a
/// `stamp`, the registry JSON is wrapped in an envelope carrying the
/// wall-clock provenance: {"bench": {...}, "metrics": {...}}. Only the
/// envelope's bench block varies run-to-run; the metrics block stays
/// byte-identical for a given seed and config at any thread count.
inline bool WriteMetricsJson(const core::PorygonSystem& sys,
                             const std::string& path,
                             const BenchStamp* stamp = nullptr) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return false;
  std::string json = sys.metrics().ToJson();
  if (stamp != nullptr) {
    char head[256];
    if (stamp->adversary_spec.empty()) {
      std::snprintf(head, sizeof(head),
                    "{\"bench\":{\"wall_ms\":%.3f,\"worker_threads\":%d},\n"
                    "\"metrics\":",
                    stamp->wall_ms, stamp->worker_threads);
    } else {
      std::snprintf(head, sizeof(head),
                    "{\"bench\":{\"wall_ms\":%.3f,\"worker_threads\":%d,"
                    "\"adversary\":\"%s\",\"evidence\":%llu},\n"
                    "\"metrics\":",
                    stamp->wall_ms, stamp->worker_threads,
                    stamp->adversary_spec.c_str(),
                    static_cast<unsigned long long>(stamp->adversary_evidence));
    }
    json = std::string(head) + json + "}";
  }
  size_t written = std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  return written == json.size();
}

/// Parses `--trace-out=<file>` from argv; empty string when absent. A
/// non-empty result means the harness should enable SystemOptions::trace
/// and export with WriteTraceJson after the run.
inline std::string FlagValueArg(int argc, char** argv,
                                const std::string& prefix) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind(prefix, 0) == 0) return arg.substr(prefix.size());
  }
  return "";
}

inline std::string TraceOutArg(int argc, char** argv) {
  return FlagValueArg(argc, argv, "--trace-out=");
}

/// Parses `--faults=<spec>` from argv; empty string when absent. The spec
/// grammar is net::FaultPlan::Parse's comma-separated clause list, e.g.
/// "loss:0.02,jitter:300,crash:0:6,recover:0:20".
inline std::string FaultsArg(int argc, char** argv) {
  return FlagValueArg(argc, argv, "--faults=");
}

/// Parses `--adversary=<spec>` from argv; empty string when absent. The
/// spec grammar is core::AdversarySpec::Parse's comma-separated clause
/// list, e.g. "stateless:equivocate,alpha:0.25" or
/// "storage:tamper-state,beta:0.5,seed:9".
inline std::string AdversaryArg(int argc, char** argv) {
  return FlagValueArg(argc, argv, "--adversary=");
}

/// Dumps the system's span buffer as Chrome trace_event JSON to `path` —
/// open it at https://ui.perfetto.dev. Empty unless the run was configured
/// with SystemOptions::trace.enabled. Deterministic: same seed and config
/// produce byte-identical files.
inline bool WriteTraceJson(core::PorygonSystem* sys, const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return false;
  std::string json = sys->tracer()->ExportChromeJson();
  size_t written = std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  return written == json.size();
}

}  // namespace porygon::bench

#endif  // PORYGON_BENCH_BENCH_UTIL_H_
