#!/usr/bin/env bash
# Tier-1 verification: configure, build, and run the test suite — first a
# plain build, then (unless PORYGON_SKIP_SANITIZERS=1) an ASan+UBSan build
# and a TSan build that runs the parallel-runtime and system tests with
# worker threads enabled (PORYGON_THREADS=4).
#
#   scripts/check.sh              # plain + sanitized
#   PORYGON_SKIP_SANITIZERS=1 scripts/check.sh
#
# Build trees live under build/ (plain, reused from a normal checkout),
# build-asan/, and build-tsan/ so configurations never share object files.
set -euo pipefail

cd "$(dirname "$0")/.."

run_suite() {
  local dir="$1"
  shift
  cmake -B "$dir" -S . "$@"
  cmake --build "$dir" -j "$(nproc)"
  ctest --test-dir "$dir" --output-on-failure
  # Fault suite, called out explicitly: crash/recover failover, censorship,
  # and same-seed determinism under an active FaultPlan must never rot.
  ctest --test-dir "$dir" -R FaultInjection --output-on-failure
  # Adversary suite, likewise: chain identity and evidence collection under
  # every Byzantine strategy at the paper's alpha/beta bounds.
  ctest --test-dir "$dir" -R Adversary --output-on-failure
  # Workload suite: traffic-model determinism, Zipf sanity, scenario rows.
  ctest --test-dir "$dir" -R Workload --output-on-failure
  # Critical-path suite: bandwidth-ledger queue/busy accounting, dominant
  # edge attribution, thread-invariant round reports, and the
  # trace-sampling timing invariant.
  ctest --test-dir "$dir" -R CriticalPath --output-on-failure
  # Dissemination suite: spec grammar, erasure k-of-n round trips,
  # tree-vs-direct safety, and Byzantine/crashed relay degradation.
  ctest --test-dir "$dir" -R 'Dissemination|Erasure' --output-on-failure
  # Scenario-matrix smoke cell: one small million-account cell end-to-end
  # through the real binary (spec parsing, lazy funding, JSON export).
  "$dir"/bench/scenario_matrix --rounds=2 --tps=200 \
    --workload=zipf:0.99,accounts:1000000 \
    --out="$dir"/scenario_smoke.json >/dev/null
  grep -q '"committed_txs":' "$dir"/scenario_smoke.json
  # Epoch + soak suites: committee reconfiguration determinism and the
  # chaos-harness spec/replay/invariant plumbing.
  ctest --test-dir "$dir" -R 'Epoch|Soak' --output-on-failure
  # Chaos-soak smoke: 200 rounds of faults + Byzantine adversary across 8
  # committee reconfigurations, with the clean-reference safety cross-check
  # and liveness bounds live the whole way. Must end violation-free.
  "$dir"/bench/soak --rounds=200 --epoch-length=25 --seed=1 --tps=2 \
    --faults='loss:0.02,dup:0.02,jitter:300' \
    --adversary='stateless:equivocate,storage:withhold' \
    --out="$dir"/soak_smoke.json | grep -q 'OK: zero invariant violations'
  grep -q '"violations":\[\]' "$dir"/soak_smoke.json
}

echo "== plain build + ctest =="
run_suite build

if [[ "${PORYGON_SKIP_SANITIZERS:-0}" != "1" ]]; then
  echo "== address,undefined sanitized build + ctest =="
  ASAN_OPTIONS="${ASAN_OPTIONS:-detect_leaks=1}" \
  UBSAN_OPTIONS="${UBSAN_OPTIONS:-halt_on_error=1:print_stacktrace=1}" \
    run_suite build-asan -DPORYGON_SANITIZE=address,undefined

  # TSan leg: the pool fan-outs (shard execution, batch crypto, compaction,
  # bloom builds) must be race-free with workers actually running, so force
  # a multi-threaded pool via PORYGON_THREADS for the runtime + system
  # suites. TSan is incompatible with ASan, hence the third build tree.
  echo "== thread sanitized build + runtime/system ctest =="
  cmake -B build-tsan -S . -DPORYGON_SANITIZE=thread
  cmake --build build-tsan -j "$(nproc)"
  PORYGON_THREADS=4 \
  TSAN_OPTIONS="${TSAN_OPTIONS:-halt_on_error=1}" \
    ctest --test-dir build-tsan --output-on-failure \
      -R 'TaskPool|VerifyBatch|ThreadInvariance|SystemIntegration|StorageDb|Db|Adversary|CriticalPath|Dissemination'
fi

echo "check.sh: all suites passed"
