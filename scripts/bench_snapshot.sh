#!/usr/bin/env bash
# Performance snapshot: runs the scenario matrix, the fig8c
# throughput/latency sweep, and a 200-round chaos soak (whose liveness
# stats land under "soak") and writes BENCH_<n>.json at the repo root,
# where <n> is one past the highest committed snapshot. If a previous
# snapshot exists, every matrix cell's simulated throughput is compared
# against it and the script FAILS LOUD on any cell regressing more than
# 20% — the perf trajectory is append-only and monotone-ish by
# construction.
#
#   scripts/bench_snapshot.sh             # uses build/ (configures if needed)
#   BUILD_DIR=build-foo scripts/bench_snapshot.sh
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${BUILD_DIR:-build}"

cmake -B "$BUILD_DIR" -S . >/dev/null
cmake --build "$BUILD_DIR" -j "$(nproc)" >/dev/null

# Next snapshot index: one past the highest BENCH_<n>.json present.
n=1
prev=""
for f in BENCH_*.json; do
  [[ -e "$f" ]] || continue
  idx="${f#BENCH_}"
  idx="${idx%.json}"
  [[ "$idx" =~ ^[0-9]+$ ]] || continue
  if (( idx >= n )); then
    n=$((idx + 1))
    prev="$f"
  fi
done
out="BENCH_${n}.json"

tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT

echo "== scenario matrix =="
"$BUILD_DIR"/bench/scenario_matrix --out="$tmp/matrix.json"

echo "== fig8c throughput/latency =="
"$BUILD_DIR"/bench/fig8c_throughput_latency "$tmp/fig8c.json"

echo "== chaos soak (liveness stats) =="
"$BUILD_DIR"/bench/soak --rounds=200 --epoch-length=25 --seed=1 --tps=2 \
  --faults='loss:0.02,dup:0.02,jitter:300' \
  --adversary='stateless:equivocate,storage:withhold' \
  --out="$tmp/soak.json"

python3 - "$tmp/matrix.json" "$tmp/fig8c.json" "$tmp/soak.json" "$out" "$prev" <<'PY'
import json, sys

matrix_path, fig8c_path, soak_path, out_path, prev_path = sys.argv[1:6]
matrix = json.load(open(matrix_path))
fig8c = json.load(open(fig8c_path))
soak = json.load(open(soak_path))

# The soak leg is a liveness snapshot, not a perf row: it must have run its
# full horizon violation-free before its stats are worth recording.
if soak.get("violations"):
    sys.exit(f"soak reported violations: {soak['violations']}")

# Critical-path attribution fields are part of the snapshot contract: every
# matrix row must carry the dominant segment/edge, the OC-leader downlink
# utilization, and per-direction queue-delay percentiles.
for row in matrix["rows"]:
    for field in ("dominant_segment", "dominant_edge", "oc_downlink_util",
                  "queue_delay_s", "dissemination"):
        if field not in row:
            sys.exit(f"matrix row {row.get('workload')!r} missing {field!r}")
    for direction in ("up", "down"):
        if direction not in row["queue_delay_s"]:
            sys.exit(f"matrix row {row.get('workload')!r} missing "
                     f"queue_delay_s[{direction!r}]")

snapshot = {
    "schema": 1,
    "scenario_matrix": matrix["rows"],
    "fig8c": fig8c,
    "soak": {k: soak[k] for k in ("rounds_completed", "epochs_completed",
                                  "invariant_checks", "committed_txs",
                                  "max_commit_gap_s", "tps")},
    "bench": {"matrix_wall_ms": matrix["bench"]["wall_ms"]},
}
with open(out_path, "w") as f:
    json.dump(snapshot, f, indent=1, sort_keys=True)
    f.write("\n")
print(f"wrote {out_path} ({len(matrix['rows'])} scenario rows)")

if not prev_path:
    sys.exit(0)

prev = json.load(open(prev_path))
def key(row):
    # Older snapshots predate the dissemination column; their rows all ran
    # the direct star.
    return (row["workload"], row["faults"], row["adversary"],
            row.get("dissemination", "direct"))
old = {key(r): r for r in prev.get("scenario_matrix", [])}
regressions = []
for row in matrix["rows"]:
    base = old.get(key(row))
    if base is None or base["tps"] <= 0:
        continue
    if row["tps"] < 0.8 * base["tps"]:
        regressions.append(
            f"  {key(row)}: tps {base['tps']:.1f} -> {row['tps']:.1f} "
            f"({100 * (1 - row['tps'] / base['tps']):.0f}% drop)")
if regressions:
    print(f"PERF REGRESSION vs {prev_path} (>20% tps drop):",
          file=sys.stderr)
    print("\n".join(regressions), file=sys.stderr)
    sys.exit(1)
print(f"no cell regressed >20% vs {prev_path}")
PY
