#ifndef PORYGON_WORKLOAD_TRAFFIC_H_
#define PORYGON_WORKLOAD_TRAFFIC_H_

#include <deque>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "state/account.h"
#include "tx/transaction.h"

namespace porygon::workload {

/// What a traffic source looks like to every driver (benches, examples,
/// the scenario matrix): a deterministic stream of executable transactions
/// plus a self-description for the bench JSON envelope. Implementations own
/// their RNG (seeded from their Spec), track client-side nonces so streams
/// are executable, and never touch global state — two models with the same
/// spec produce byte-identical streams on any thread count.
class TrafficModel {
 public:
  virtual ~TrafficModel() = default;

  /// Next transaction (submitted_at is stamped by the target system).
  virtual tx::Transaction Next() = 0;

  /// Convenience: `n` transactions via Next().
  virtual std::vector<tx::Transaction> Batch(size_t n);

  /// Deterministic JSON object describing this model's shape — embedded
  /// verbatim in bench envelopes and scenario-matrix rows.
  virtual std::string Describe() const = 0;
};

/// When transactions arrive, decoupled from what they contain. An arrival
/// process is a deterministic rate-multiplier curve over sim time with mean
/// ~1, so `offered_tps` in a driver stays the long-run average while the
/// instantaneous rate models constant, bursty on/off, diurnal, or
/// flash-crowd load.
class ArrivalProcess {
 public:
  virtual ~ArrivalProcess() = default;

  /// Rate multiplier at sim time `t_s` (seconds). Pure function of time —
  /// no internal state, so replaying a window yields the same counts.
  virtual double RateAt(double t_s) const = 0;

  /// Deterministic JSON object for the bench envelope.
  virtual std::string Describe() const = 0;

  /// Transactions to offer for the window [t_s, t_s + len_s) at a long-run
  /// average of `base_tps`: numerically integrates RateAt over the window.
  size_t CountFor(double t_s, double len_s, double base_tps) const;
};

/// Parsed `--workload=<spec>` clause list: which TrafficModel to build, its
/// parameters, and the arrival process shaping submission timing. Like
/// net::FaultPlan and core::AdversarySpec, a Spec is data — parsed from a
/// CLI string, built programmatically in tests, logged canonically, and
/// replayed.
struct Spec {
  enum class Model { kUniform, kZipf, kFlashCrowd, kContract };
  enum class Arrival { kConstant, kBursty, kDiurnal, kFlash };

  Model model = Model::kUniform;
  /// Total distinct account ids the stream may touch (ids 1..num_accounts).
  /// Models materialize nothing up front — pair with
  /// PorygonSystem::CreateAccountsLazy for O(1) setup at any account count.
  uint64_t num_accounts = 10'000;
  /// Shard bits of the target system (drives the uniform model's controlled
  /// cross-shard ratio). Not a CLI clause: drivers copy it from their
  /// SystemOptions after parsing.
  int shard_bits = 1;
  /// Uniform model: probability a transfer crosses shards (negative =
  /// natural ratio from uniform receivers).
  double cross_shard_ratio = -1.0;
  /// Zipf exponent: sender skew for `uniform` (0 = uniform draw), endpoint
  /// skew for `zipf`, contract-popularity skew for `contract`.
  double zipf_s = 0.0;
  uint64_t amount_min = 1;
  uint64_t amount_max = 100;
  uint64_t seed = 1;

  // --- flashcrowd parameters --------------------------------------------
  /// Accounts in the current hot set.
  uint64_t hot_size = 64;
  /// Fraction of traffic aimed at the hot set.
  double hot_fraction = 0.9;
  /// Transactions between hot-set rotations.
  uint64_t rotate_every = 20'000;

  // --- contract parameters ----------------------------------------------
  /// Accounts touched per contract call (1 contract + keys-1 user keys).
  uint32_t contract_keys = 4;
  /// Distinct contract accounts (ids 1..num_contracts, Zipf-popular).
  uint64_t num_contracts = 16;

  // --- arrival process ---------------------------------------------------
  Arrival arrival = Arrival::kConstant;
  double period_s = 60.0;  ///< bursty/diurnal cycle length.
  double duty = 0.25;      ///< bursty: fraction of the period spent "on".
  double peak = 4.0;       ///< bursty/diurnal/flash peak rate multiplier.
  double at_s = 20.0;      ///< flash: spike start (sim seconds).
  double dur_s = 10.0;     ///< flash: spike duration.

  /// Parses a CLI spec of comma-separated clauses. The first kind of clause
  /// names the model (default `uniform`):
  ///
  ///   uniform                     legacy uniform transfers (back-compat)
  ///   zipf[:<s>]                  Zipfian endpoint skew, exponent s (0.99)
  ///   flashcrowd[:<hot_size>]     rotating hot account sets
  ///   contract[:<keys>]           multi-key contract-like calls
  ///
  /// plus parameter clauses:
  ///
  ///   accounts:<n>   account-space size (default 10000)
  ///   cross:<f>      uniform: controlled cross-shard ratio
  ///   skew:<s>       Zipf exponent override (any model)
  ///   amount:<lo>:<hi>  transfer amounts (default 1:100)
  ///   hot:<f>        flashcrowd: hot-set traffic fraction (default 0.9)
  ///   rotate:<n>     flashcrowd: txs per hot-set rotation (default 20000)
  ///   contracts:<n>  contract: distinct contract accounts (default 16)
  ///   seed:<n>       model RNG seed (default 1)
  ///
  /// and arrival clauses:
  ///
  ///   arrival:<constant|bursty|diurnal|flash>   (default constant)
  ///   period:<s>  duty:<f>  peak:<x>  at:<s>  dur:<s>
  ///
  /// e.g. "zipf:0.99,accounts:1000000" or
  /// "flashcrowd:64,hot:0.9,rotate:20000,arrival:bursty,peak:4,duty:0.25".
  /// Returns kInvalidArgument naming the bad clause.
  static Result<Spec> Parse(const std::string& spec);

  /// Canonical round-trippable form (Parse(ToString()) == *this).
  std::string ToString() const;

  /// Builds the model this spec describes (never null).
  std::unique_ptr<TrafficModel> BuildModel() const;
  /// Builds the arrival process (never null; constant by default).
  std::unique_ptr<ArrivalProcess> BuildArrival() const;
};

/// Zipfian hot-account workload: both endpoints are drawn from a Zipf
/// distribution over the account space (rank 0 = account 1 is hottest), so
/// a small set of accounts carries most of the traffic and inter-transaction
/// conflicts concentrate — the regime where parallel execution engines
/// differentiate (Reddio parallel-EVM, PAPERS.md).
class ZipfTrafficModel : public TrafficModel {
 public:
  explicit ZipfTrafficModel(const Spec& spec);

  tx::Transaction Next() override;
  std::string Describe() const override;

 private:
  Spec spec_;
  Rng rng_;
  std::unordered_map<state::AccountId, uint64_t> nonces_;
};

/// Flash-crowd workload: a rotating hot set of `hot_size` accounts absorbs
/// `hot_fraction` of all receivers (an NFT mint / exchange listing pattern);
/// every `rotate_every` transactions the crowd moves to a fresh window of
/// the account space, so hot shards change over a run.
class FlashCrowdTrafficModel : public TrafficModel {
 public:
  explicit FlashCrowdTrafficModel(const Spec& spec);

  tx::Transaction Next() override;
  std::string Describe() const override;

  /// First account id of the hot set active for transaction ordinal `n`
  /// (exposed for tests; deterministic in `n` alone).
  state::AccountId HotBaseFor(uint64_t n) const;

 private:
  Spec spec_;
  Rng rng_;
  uint64_t emitted_ = 0;
  std::unordered_map<state::AccountId, uint64_t> nonces_;
};

/// Contract-like workload: each "call" touches one Zipf-popular contract
/// account plus `contract_keys - 1` uniform user keys, emitted as a burst
/// of deposits that all share the contract account (the declared
/// read/write set of each transfer is {from, to}, so a k-key call's
/// explicit read/write set is the union of its transfers' access sets:
/// the contract plus its users). Every call serializes on its contract —
/// maximal write contention on a few keys, the worst case for §IV-D2
/// conflict discards.
class ContractTrafficModel : public TrafficModel {
 public:
  explicit ContractTrafficModel(const Spec& spec);

  tx::Transaction Next() override;
  std::string Describe() const override;

 private:
  void GenerateCall();

  Spec spec_;
  Rng rng_;
  std::deque<tx::Transaction> queue_;  ///< Remaining transfers of the call.
  std::unordered_map<state::AccountId, uint64_t> nonces_;
};

/// Constant-rate arrival: multiplier 1 everywhere.
class ConstantArrival : public ArrivalProcess {
 public:
  double RateAt(double) const override { return 1.0; }
  std::string Describe() const override;
};

/// On/off square wave: rate `peak` for the first `duty` of each period,
/// then a reduced off-rate chosen so the long-run mean stays 1 (0 when
/// duty * peak >= 1).
class BurstyArrival : public ArrivalProcess {
 public:
  BurstyArrival(double period_s, double duty, double peak);
  double RateAt(double t_s) const override;
  std::string Describe() const override;

 private:
  double period_s_, duty_, peak_, off_rate_;
};

/// Sinusoidal day/night curve with mean 1: 1 + a*sin(2*pi*t/period), where
/// the amplitude a = min(peak - 1, 1) keeps the rate non-negative.
class DiurnalArrival : public ArrivalProcess {
 public:
  DiurnalArrival(double period_s, double peak);
  double RateAt(double t_s) const override;
  std::string Describe() const override;

 private:
  double period_s_, amplitude_;
};

/// Baseline 1 with a flash spike: rate `peak` during [at, at + dur).
class FlashArrival : public ArrivalProcess {
 public:
  FlashArrival(double at_s, double dur_s, double peak);
  double RateAt(double t_s) const override;
  std::string Describe() const override;

 private:
  double at_s_, dur_s_, peak_;
};

}  // namespace porygon::workload

#endif  // PORYGON_WORKLOAD_TRAFFIC_H_
