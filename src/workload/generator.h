#ifndef PORYGON_WORKLOAD_GENERATOR_H_
#define PORYGON_WORKLOAD_GENERATOR_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "common/rng.h"
#include "state/account.h"
#include "tx/transaction.h"
#include "workload/traffic.h"

namespace porygon::workload {

/// Transfer-workload parameters. The generators in the paper's evaluation
/// vary the submission rate (Fig 8c), the cross-shard ratio (Table I), and
/// account skew.
struct WorkloadOptions {
  uint64_t num_accounts = 10'000;
  int shard_bits = 1;
  /// Probability a transaction crosses shards. Negative = "natural": the
  /// receiver is a uniformly random account, so the ratio follows from the
  /// shard count ((2^N - 1) / 2^N for uniform accounts).
  double cross_shard_ratio = -1.0;
  /// Zipf exponent for sender selection (0 = uniform; ~0.9 mimics hot
  /// accounts).
  double zipf_s = 0.0;
  uint64_t amount_min = 1;
  uint64_t amount_max = 100;
  uint64_t seed = 1;
};

/// Deterministic transfer generator with client-side nonce tracking, so
/// generated sequences are executable (nonces are consecutive per sender).
/// Account ids are 1..num_accounts — fund them via CreateAccounts (or
/// lazily via CreateAccountsLazy) before running.
///
/// This is the `uniform` TrafficModel: Spec::BuildModel constructs it for
/// back-compat, and its stream is byte-identical to the pre-TrafficModel
/// generator for the same options.
class WorkloadGenerator : public TrafficModel {
 public:
  explicit WorkloadGenerator(const WorkloadOptions& options);

  tx::Transaction Next() override;
  std::string Describe() const override;

  const WorkloadOptions& options() const { return options_; }

 private:
  state::AccountId PickSender();
  state::AccountId PickReceiver(state::AccountId sender);

  WorkloadOptions options_;
  Rng rng_;
  std::unordered_map<state::AccountId, uint64_t> nonces_;
};

}  // namespace porygon::workload

#endif  // PORYGON_WORKLOAD_GENERATOR_H_
