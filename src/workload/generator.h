#ifndef PORYGON_WORKLOAD_GENERATOR_H_
#define PORYGON_WORKLOAD_GENERATOR_H_

#include <unordered_map>
#include <vector>

#include "common/rng.h"
#include "state/account.h"
#include "tx/transaction.h"

namespace porygon::workload {

/// Transfer-workload parameters. The generators in the paper's evaluation
/// vary the submission rate (Fig 8c), the cross-shard ratio (Table I), and
/// account skew.
struct WorkloadOptions {
  uint64_t num_accounts = 10'000;
  int shard_bits = 1;
  /// Probability a transaction crosses shards. Negative = "natural": the
  /// receiver is a uniformly random account, so the ratio follows from the
  /// shard count ((2^N - 1) / 2^N for uniform accounts).
  double cross_shard_ratio = -1.0;
  /// Zipf exponent for sender selection (0 = uniform; ~0.9 mimics hot
  /// accounts).
  double zipf_s = 0.0;
  uint64_t amount_min = 1;
  uint64_t amount_max = 100;
  uint64_t seed = 1;
};

/// Deterministic transfer generator with client-side nonce tracking, so
/// generated sequences are executable (nonces are consecutive per sender).
/// Account ids are 1..num_accounts — fund them via CreateAccounts before
/// running.
class WorkloadGenerator {
 public:
  explicit WorkloadGenerator(const WorkloadOptions& options);

  /// Next transaction (submitted_at is stamped by the target system).
  tx::Transaction Next();

  /// Convenience: `n` transactions.
  std::vector<tx::Transaction> Batch(size_t n);

  const WorkloadOptions& options() const { return options_; }

 private:
  state::AccountId PickSender();
  state::AccountId PickReceiver(state::AccountId sender);

  WorkloadOptions options_;
  Rng rng_;
  std::unordered_map<state::AccountId, uint64_t> nonces_;
};

}  // namespace porygon::workload

#endif  // PORYGON_WORKLOAD_GENERATOR_H_
