#ifndef PORYGON_WORKLOAD_SOAK_H_
#define PORYGON_WORKLOAD_SOAK_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "crypto/sha256.h"
#include "obs/metrics.h"

namespace porygon::core {
class PorygonSystem;
}  // namespace porygon::core

namespace porygon::workload {

/// Reusable safety / liveness assertions shared by the chaos-soak driver
/// (bench/soak.cc) and the fault-injection / adversary test suites. Every
/// Check* method returns OkStatus or a one-line violation description; a
/// failing check is also recorded in violations(), and every call (pass or
/// fail) increments the `soak.invariant_checks` counter when a registry was
/// supplied, so exports show how much scrutiny a run actually received.
class InvariantChecker {
 public:
  struct Options {
    /// Liveness: no consecutive commit-to-commit gap may exceed this.
    double max_commit_gap_s = 60.0;
    /// Liveness: ObserveRound rounds with pending pool work but no commit
    /// progress before the pool is declared starved. Sized well above the
    /// pipeline depth (3) plus fault-recovery stalls.
    int max_starved_rounds = 24;
  };

  InvariantChecker() : InvariantChecker(Options{}, nullptr) {}
  explicit InvariantChecker(Options options,
                            obs::MetricsRegistry* registry = nullptr);

  /// Safety: every chain link holds — prev_hash matches the predecessor's
  /// hash and each block's state_root aggregates its shard roots.
  Status CheckChainIntegrity(core::PorygonSystem& sys);
  /// Safety: storage replay detected no root mismatches.
  Status CheckNoReplayMismatches(core::PorygonSystem& sys);
  /// Safety: every equivocation-evidence record accuses a node some
  /// epoch's adversary placement actually corrupted — no divergent
  /// evidence against honest-all-along nodes.
  Status CheckEvidenceOnlyAgainstMalicious(core::PorygonSystem& sys);
  /// Liveness: the largest consecutive commit gap stays within bounds.
  Status CheckBoundedCommitGap(core::PorygonSystem& sys);
  /// Safety (cross-run): both systems committed the same chain
  /// (length and per-round block hashes).
  Status CheckSameChain(core::PorygonSystem& a, core::PorygonSystem& b);
  /// Safety (cross-run): an observed GlobalRoot matches the reference
  /// run's at the same round.
  Status CheckRootsMatch(const crypto::Hash256& observed,
                         const crypto::Hash256& reference, uint64_t round);
  /// Liveness probe, called once per driver round: commits must keep
  /// advancing while transaction-pool work is pending; a pool that ages
  /// `max_starved_rounds` rounds without any commit progress is starved.
  Status ObserveRound(core::PorygonSystem& sys);

  /// Records a driver-observed violation the Check* methods cannot see
  /// themselves (e.g. a round failing to commit before its deadline).
  Status Violation(std::string what);

  uint64_t checks() const { return checks_; }
  const std::vector<std::string>& violations() const { return violations_; }
  bool ok() const { return violations_.empty(); }

 private:
  Status Pass();

  Options options_;
  obs::Counter* checks_counter_ = nullptr;
  uint64_t checks_ = 0;
  std::vector<std::string> violations_;
  // ObserveRound state.
  uint64_t last_committed_txs_ = 0;
  int starved_rounds_ = 0;
};

/// One chaos-soak run, as data: every knob of the long-horizon driver in a
/// single replayable string. Clauses are ';'-separated `key:value` pairs so
/// the nested comma-grammar specs (workload / faults / adversary /
/// dissemination) embed verbatim:
///
///   rounds:<n>;epoch:<n>;seed:<n>;nodes:<n>;storages:<n>;oc:<n>;
///   shardbits:<n>;tps:<f>;gap:<s>;workload:<spec>;faults:<spec>;
///   adversary:<spec>;dissemination:<spec>;inject:<round>
///
/// Parse(ToString()) round-trips. The printed `--replay=` reproduction
/// command on a violation is exactly ToString() of the failing run.
struct SoakSpec {
  uint64_t rounds = 200;
  uint64_t epoch_length = 25;  ///< 0 disables epochs.
  uint64_t seed = 1;
  int num_stateless = 26;
  int num_storage = 2;
  int oc_size = 4;
  int shard_bits = 1;
  double offered_tps = 40.0;
  double max_commit_gap_s = 60.0;
  std::string workload;       ///< workload::Spec grammar; empty = uniform.
  std::string faults;         ///< net::FaultPlan grammar; empty = none.
  std::string adversary;      ///< core::AdversarySpec grammar; empty = honest.
  std::string dissemination;  ///< net::DisseminationSpec; empty = direct.
  /// Test-only safety-violation hook: from this round on the chaos run's
  /// observed GlobalRoot is perturbed before the reference comparison, so
  /// the checker must flag it and the replay path must reproduce it
  /// (0 = disabled). Proves the harness detects what it claims to detect.
  uint64_t inject_divergence_round = 0;

  static Result<SoakSpec> Parse(const std::string& spec);
  std::string ToString() const;
};

/// What a soak run reports back (and bench/soak.cc serializes as JSON).
struct SoakReport {
  uint64_t rounds_completed = 0;
  uint64_t epochs_completed = 0;  ///< `core.epochs` of the chaos run.
  uint64_t invariant_checks = 0;
  uint64_t committed_txs = 0;
  double max_commit_gap_s = 0;
  double sim_seconds = 0;
  double tps = 0;
  std::vector<std::string> violations;
  /// Non-empty exactly when violations is: pass to `--replay=` to
  /// deterministically reproduce the failing run.
  std::string replay_spec;

  bool ok() const { return violations.empty(); }
  std::string ToJson() const;
};

/// Runs the chaos soak: the spec's full deployment (faults + adversary +
/// dissemination + epoch churn) at `worker_threads`, in round-lockstep with
/// a same-spec reference deployment at 0 worker threads fed the identical
/// transaction stream. Each round both advance one commit and the checker
/// asserts GlobalRoot identity between them (catching any thread-count
/// divergence the moment it happens) plus liveness (bounded commit gap,
/// bounded pool age); terminal checks cover chain integrity, replay
/// mismatches, evidence attribution, and whole-chain identity. Stops at the
/// first violation and stamps the replay command into the report.
Result<SoakReport> RunSoak(const SoakSpec& spec, int worker_threads = 0);

}  // namespace porygon::workload

#endif  // PORYGON_WORKLOAD_SOAK_H_
