#include "workload/soak.h"

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <set>
#include <utility>

#include "core/system.h"
#include "net/fault.h"
#include "state/sharded_state.h"
#include "workload/traffic.h"

namespace porygon::workload {

namespace {

std::vector<std::string> SplitOn(const std::string& s, char sep) {
  std::vector<std::string> parts;
  size_t start = 0;
  while (start <= s.size()) {
    size_t pos = s.find(sep, start);
    if (pos == std::string::npos) {
      parts.push_back(s.substr(start));
      break;
    }
    parts.push_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return parts;
}

bool ParseU64(const std::string& s, uint64_t* out) {
  if (s.empty()) return false;
  char* end = nullptr;
  *out = std::strtoull(s.c_str(), &end, 10);
  return end != nullptr && *end == '\0';
}

bool ParseInt(const std::string& s, int* out) {
  uint64_t v = 0;
  if (!ParseU64(s, &v) || v > 1'000'000) return false;
  *out = static_cast<int>(v);
  return true;
}

bool ParseDouble(const std::string& s, double* out) {
  if (s.empty()) return false;
  char* end = nullptr;
  *out = std::strtod(s.c_str(), &end);
  return end != nullptr && *end == '\0';
}

std::string FormatF(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%g", v);
  return buf;
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    if (c == '\n') {
      out += "\\n";
      continue;
    }
    out += c;
  }
  return out;
}

uint64_t CounterOr0(const obs::MetricsRegistry& reg, const char* name) {
  const obs::Counter* c = reg.FindCounter(name, {});
  return c == nullptr ? 0 : c->value();
}

}  // namespace

// ---------------------------------------------------------------------------
// InvariantChecker
// ---------------------------------------------------------------------------

InvariantChecker::InvariantChecker(Options options,
                                   obs::MetricsRegistry* registry)
    : options_(options) {
  if (registry != nullptr) {
    checks_counter_ = registry->GetCounter("soak.invariant_checks");
  }
}

Status InvariantChecker::Pass() {
  ++checks_;
  if (checks_counter_ != nullptr) checks_counter_->Increment();
  return Status::Ok();
}

Status InvariantChecker::Violation(std::string what) {
  ++checks_;
  if (checks_counter_ != nullptr) checks_counter_->Increment();
  violations_.push_back(what);
  return Status::FailedPrecondition(std::move(what));
}

Status InvariantChecker::CheckChainIntegrity(core::PorygonSystem& sys) {
  const std::vector<tx::ProposalBlock>& chain = sys.chain();
  for (size_t i = 1; i < chain.size(); ++i) {
    if (chain[i].prev_hash != chain[i - 1].Hash()) {
      return Violation("chain integrity: block " + std::to_string(i) +
                       " prev_hash does not match predecessor");
    }
    if (!chain[i].shard_roots.empty() &&
        chain[i].state_root !=
            state::ShardedState::AggregateRoots(chain[i].shard_roots)) {
      return Violation("chain integrity: block " + std::to_string(i) +
                       " state_root does not aggregate its shard roots");
    }
  }
  return Pass();
}

Status InvariantChecker::CheckNoReplayMismatches(core::PorygonSystem& sys) {
  const uint64_t mismatches = sys.metrics().replay_mismatches();
  if (mismatches != 0) {
    return Violation("replay: " + std::to_string(mismatches) +
                     " storage replay root mismatch(es)");
  }
  return Pass();
}

Status InvariantChecker::CheckEvidenceOnlyAgainstMalicious(
    core::PorygonSystem& sys) {
  std::set<crypto::PublicKey> corruptible;
  for (int i = 0; i < sys.num_stateless_nodes(); ++i) {
    if (sys.stateless_node(i)->ever_malicious()) {
      corruptible.insert(sys.stateless_node(i)->public_key());
    }
  }
  for (const consensus::EquivocationEvidence& ev :
       sys.equivocation_evidence()) {
    if (corruptible.count(ev.first.voter) == 0) {
      return Violation(
          "evidence: equivocation recorded against a node no epoch's "
          "placement ever corrupted (instance " +
          std::to_string(ev.instance) + ")");
    }
  }
  return Pass();
}

Status InvariantChecker::CheckBoundedCommitGap(core::PorygonSystem& sys) {
  const obs::HistogramSummary gaps = sys.metrics().BlockLatency();
  if (gaps.count > 0 && gaps.max > options_.max_commit_gap_s) {
    return Violation("liveness: max commit gap " + FormatF(gaps.max) +
                     "s exceeds bound " + FormatF(options_.max_commit_gap_s) +
                     "s");
  }
  return Pass();
}

Status InvariantChecker::CheckSameChain(core::PorygonSystem& a,
                                        core::PorygonSystem& b) {
  if (a.chain().size() != b.chain().size()) {
    return Violation("divergence: chain lengths differ (" +
                     std::to_string(a.chain().size()) + " vs " +
                     std::to_string(b.chain().size()) + ")");
  }
  for (size_t i = 0; i < a.chain().size(); ++i) {
    if (a.chain()[i].Hash() != b.chain()[i].Hash()) {
      return Violation("divergence: block " + std::to_string(i) +
                       " differs between runs");
    }
  }
  return Pass();
}

Status InvariantChecker::CheckRootsMatch(const crypto::Hash256& observed,
                                         const crypto::Hash256& reference,
                                         uint64_t round) {
  if (observed != reference) {
    return Violation("divergence: GlobalRoot mismatch vs reference run at "
                     "round " +
                     std::to_string(round));
  }
  return Pass();
}

Status InvariantChecker::ObserveRound(core::PorygonSystem& sys) {
  const uint64_t committed = sys.metrics().committed_txs();
  size_t pending = 0;
  for (int i = 0; i < sys.num_storage_nodes(); ++i) {
    pending += sys.storage_node(i)->pool_pending();
  }
  if (committed > last_committed_txs_ || pending == 0) {
    last_committed_txs_ = committed;
    starved_rounds_ = 0;
    return Pass();
  }
  if (++starved_rounds_ > options_.max_starved_rounds) {
    return Violation("liveness: " + std::to_string(pending) +
                     " pooled transaction(s) aged " +
                     std::to_string(starved_rounds_) +
                     " rounds with no commit progress");
  }
  return Pass();
}

// ---------------------------------------------------------------------------
// SoakSpec
// ---------------------------------------------------------------------------

Result<SoakSpec> SoakSpec::Parse(const std::string& spec) {
  SoakSpec out;
  for (const std::string& clause : SplitOn(spec, ';')) {
    if (clause.empty()) continue;
    const size_t colon = clause.find(':');
    if (colon == std::string::npos) {
      return Status::InvalidArgument("bad soak clause: " + clause);
    }
    const std::string key = clause.substr(0, colon);
    const std::string value = clause.substr(colon + 1);
    auto bad = [&] {
      return Status::InvalidArgument("bad soak clause: " + clause);
    };
    if (key == "rounds") {
      if (!ParseU64(value, &out.rounds) || out.rounds == 0) return bad();
    } else if (key == "epoch") {
      if (!ParseU64(value, &out.epoch_length) || out.epoch_length == 1) {
        return bad();
      }
    } else if (key == "seed") {
      if (!ParseU64(value, &out.seed)) return bad();
    } else if (key == "nodes") {
      if (!ParseInt(value, &out.num_stateless) || out.num_stateless < 1) {
        return bad();
      }
    } else if (key == "storages") {
      if (!ParseInt(value, &out.num_storage) || out.num_storage < 1) {
        return bad();
      }
    } else if (key == "oc") {
      if (!ParseInt(value, &out.oc_size) || out.oc_size < 1) return bad();
    } else if (key == "shardbits") {
      if (!ParseInt(value, &out.shard_bits) || out.shard_bits > 8) {
        return bad();
      }
    } else if (key == "tps") {
      if (!ParseDouble(value, &out.offered_tps) || out.offered_tps < 0) {
        return bad();
      }
    } else if (key == "gap") {
      if (!ParseDouble(value, &out.max_commit_gap_s) ||
          out.max_commit_gap_s <= 0) {
        return bad();
      }
    } else if (key == "workload") {
      PORYGON_RETURN_IF_ERROR(Spec::Parse(value).status());
      out.workload = value;
    } else if (key == "faults") {
      PORYGON_RETURN_IF_ERROR(net::FaultPlan::Parse(value).status());
      out.faults = value;
    } else if (key == "adversary") {
      PORYGON_RETURN_IF_ERROR(core::AdversarySpec::Parse(value).status());
      out.adversary = value;
    } else if (key == "dissemination") {
      PORYGON_RETURN_IF_ERROR(
          net::DisseminationSpec::Parse(value).status());
      out.dissemination = value;
    } else if (key == "inject") {
      if (!ParseU64(value, &out.inject_divergence_round)) return bad();
    } else {
      return bad();
    }
  }
  return out;
}

std::string SoakSpec::ToString() const {
  std::string s = "rounds:" + std::to_string(rounds);
  s += ";epoch:" + std::to_string(epoch_length);
  s += ";seed:" + std::to_string(seed);
  s += ";nodes:" + std::to_string(num_stateless);
  s += ";storages:" + std::to_string(num_storage);
  s += ";oc:" + std::to_string(oc_size);
  s += ";shardbits:" + std::to_string(shard_bits);
  s += ";tps:" + FormatF(offered_tps);
  s += ";gap:" + FormatF(max_commit_gap_s);
  if (!workload.empty()) s += ";workload:" + workload;
  if (!faults.empty()) s += ";faults:" + faults;
  if (!adversary.empty()) s += ";adversary:" + adversary;
  if (!dissemination.empty()) s += ";dissemination:" + dissemination;
  if (inject_divergence_round > 0) {
    s += ";inject:" + std::to_string(inject_divergence_round);
  }
  return s;
}

// ---------------------------------------------------------------------------
// SoakReport
// ---------------------------------------------------------------------------

std::string SoakReport::ToJson() const {
  std::string out = "{";
  out += "\"rounds_completed\":" + std::to_string(rounds_completed);
  out += ",\"epochs_completed\":" + std::to_string(epochs_completed);
  out += ",\"invariant_checks\":" + std::to_string(invariant_checks);
  out += ",\"committed_txs\":" + std::to_string(committed_txs);
  out += ",\"max_commit_gap_s\":" + FormatF(max_commit_gap_s);
  out += ",\"sim_seconds\":" + FormatF(sim_seconds);
  out += ",\"tps\":" + FormatF(tps);
  out += ",\"violations\":[";
  for (size_t i = 0; i < violations.size(); ++i) {
    if (i > 0) out += ',';
    out += "\"" + JsonEscape(violations[i]) + "\"";
  }
  out += "]";
  out += ",\"replay\":\"" + JsonEscape(replay_spec) + "\"";
  out += "}";
  return out;
}

// ---------------------------------------------------------------------------
// RunSoak
// ---------------------------------------------------------------------------

namespace {

Result<std::unique_ptr<core::PorygonSystem>> BuildDeployment(
    const SoakSpec& spec, const Spec& wl, int worker_threads) {
  core::SystemOptions opt;
  opt.params.shard_bits = spec.shard_bits;
  opt.params.witness_threshold = 2;
  opt.params.execution_threshold = 2;
  opt.params.block_tx_limit = 50;
  opt.params.storage_connections = 2;
  opt.num_storage_nodes = spec.num_storage;
  opt.num_stateless_nodes = spec.num_stateless;
  opt.oc_size = spec.oc_size;
  opt.epoch_length = spec.epoch_length;
  opt.seed = spec.seed;
  opt.worker_threads = worker_threads;
  if (!spec.adversary.empty()) {
    PORYGON_ASSIGN_OR_RETURN(opt.adversary,
                             core::AdversarySpec::Parse(spec.adversary));
  }
  if (!spec.dissemination.empty()) {
    PORYGON_ASSIGN_OR_RETURN(
        opt.dissemination, net::DisseminationSpec::Parse(spec.dissemination));
  }
  PORYGON_RETURN_IF_ERROR(opt.Validate());
  auto sys = std::make_unique<core::PorygonSystem>(opt);
  if (!spec.faults.empty()) {
    PORYGON_ASSIGN_OR_RETURN(net::FaultPlan plan,
                             net::FaultPlan::Parse(spec.faults));
    PORYGON_RETURN_IF_ERROR(sys->InjectFaults(plan));
  }
  sys->CreateAccountsLazy(wl.num_accounts, 1'000'000);
  return sys;
}

}  // namespace

Result<SoakReport> RunSoak(const SoakSpec& spec, int worker_threads) {
  PORYGON_ASSIGN_OR_RETURN(
      Spec wl, Spec::Parse(spec.workload.empty() ? "uniform" : spec.workload));
  wl.shard_bits = spec.shard_bits;

  // The chaos deployment runs the requested thread count; the reference
  // deployment runs the same spec serially. Both consume the identical
  // transaction stream in round-lockstep, so any scheduling-dependent
  // divergence in the chaos run surfaces as a GlobalRoot mismatch the
  // round it happens instead of as a corrupt export hours later.
  PORYGON_ASSIGN_OR_RETURN(std::unique_ptr<core::PorygonSystem> chaos,
                           BuildDeployment(spec, wl, worker_threads));
  PORYGON_ASSIGN_OR_RETURN(std::unique_ptr<core::PorygonSystem> reference,
                           BuildDeployment(spec, wl, 0));

  InvariantChecker::Options check_opts;
  check_opts.max_commit_gap_s = spec.max_commit_gap_s;
  InvariantChecker checker(check_opts, chaos->metrics_registry());

  std::unique_ptr<TrafficModel> model = wl.BuildModel();
  std::unique_ptr<ArrivalProcess> arrival = wl.BuildArrival();
  // Rough round length (reconfig interval + jitter + phase slack) used only
  // to size per-round offered batches; the long-run average is corrected by
  // the arrival process integrating real sim time.
  const double est_round_s = 2.5;

  for (uint64_t r = 1; r <= spec.rounds; ++r) {
    const size_t n = arrival->CountFor(chaos->sim_seconds(), est_round_s,
                                       spec.offered_tps);
    const std::vector<tx::Transaction> batch = model->Batch(n);
    chaos->SubmitBatch(batch);
    reference->SubmitBatch(batch);

    const size_t chaos_before = chaos->chain().size();
    const net::SimTime deadline =
        net::FromSeconds(2.0 * spec.max_commit_gap_s);
    chaos->Run(1, chaos->events()->now() + deadline);
    reference->Run(1, reference->events()->now() + deadline);
    if (chaos->chain().size() == chaos_before) {
      checker.CheckBoundedCommitGap(*chaos);  // Record the gap that stalled.
      checker.Violation("liveness: round " + std::to_string(r) +
                        " did not commit within " +
                        FormatF(2.0 * spec.max_commit_gap_s) + "s");
      break;
    }

    crypto::Hash256 observed = chaos->canonical_state().GlobalRoot();
    if (spec.inject_divergence_round > 0 &&
        r >= spec.inject_divergence_round) {
      observed[0] ^= 0xff;  // Test-only hook: provoke a detectable fault.
    }
    const bool safe =
        checker
            .CheckRootsMatch(observed,
                             reference->canonical_state().GlobalRoot(), r)
            .ok();
    const bool live = checker.ObserveRound(*chaos).ok();
    if (!safe || !live) break;
  }

  // Terminal sweep: whole-run invariants that are cheap once rather than
  // per-round. Run even after an early stop — extra context for triage.
  checker.CheckBoundedCommitGap(*chaos);
  checker.CheckChainIntegrity(*chaos);
  checker.CheckNoReplayMismatches(*chaos);
  checker.CheckEvidenceOnlyAgainstMalicious(*chaos);
  checker.CheckSameChain(*chaos, *reference);

  const core::SystemMetrics m = chaos->metrics();
  SoakReport report;
  report.rounds_completed = m.committed_blocks();
  report.epochs_completed = CounterOr0(*chaos->metrics_registry(),
                                       "core.epochs");
  report.invariant_checks = checker.checks();
  report.committed_txs = m.committed_txs();
  report.max_commit_gap_s = m.BlockLatency().max;
  report.sim_seconds = chaos->sim_seconds();
  report.tps = m.Tps(report.sim_seconds);
  report.violations = checker.violations();
  if (!checker.ok()) report.replay_spec = spec.ToString();
  return report;
}

}  // namespace porygon::workload
