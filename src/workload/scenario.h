#ifndef PORYGON_WORKLOAD_SCENARIO_H_
#define PORYGON_WORKLOAD_SCENARIO_H_

#include <string>
#include <vector>

#include "common/status.h"

namespace porygon::workload {

/// One cell of the scenario matrix: a workload spec crossed with optional
/// fault-injection, adversary, and dissemination specs. Each spec uses its
/// subsystem's clause grammar (workload::Spec, net::FaultPlan,
/// core::AdversarySpec, net::DisseminationSpec); empty means "none" (for
/// dissemination: the default direct strategy).
struct ScenarioCell {
  std::string workload;
  std::string faults;
  std::string adversary;
  std::string dissemination;
};

/// Deployment shape and load shared by every cell of one matrix run.
struct ScenarioOptions {
  int shard_bits = 2;
  int num_storage_nodes = 2;
  int num_stateless_nodes = 40;
  int oc_size = 8;
  int block_tx_limit = 1000;
  int rounds = 6;
  double offered_tps = 800.0;
  double est_round_s = 5.0;
  uint64_t system_seed = 21;
  uint64_t account_balance = 1'000'000;
  /// Compute-pool workers (0 = serial; PORYGON_THREADS still overrides).
  /// Rows must be byte-identical across values of this knob.
  int worker_threads = 0;
};

/// Runs one cell against a fresh deployment and returns its JSON row:
/// the three canonical specs, the model/arrival self-descriptions, and the
/// sim-derived results (throughput, p50/p95/p99 user latency, conflict
/// discards, per-reason rejection counters, adversary evidence). Rows
/// contain no wall-clock or thread-count values, so a cell is
/// byte-identical for a given seed at any PORYGON_THREADS — the property
/// scenario-matrix thread-invariance tests pin.
/// Fails (kInvalidArgument) if any spec does not parse or the adversary is
/// infeasible for the deployment shape.
Result<std::string> RunScenarioCell(const ScenarioCell& cell,
                                    const ScenarioOptions& opt);

/// The default sweep: every workload family crossed with clean / faulty /
/// adversarial operation (>= 9 cells).
std::vector<ScenarioCell> DefaultScenarioMatrix();

}  // namespace porygon::workload

#endif  // PORYGON_WORKLOAD_SCENARIO_H_
