#include "workload/traffic.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "workload/generator.h"

namespace porygon::workload {

namespace {

std::string FmtF(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%g", v);
  return buf;
}

std::string FmtU(uint64_t v) { return std::to_string(v); }

/// Splits "a,b,c" into clauses; "key:rest" into (key, rest).
std::vector<std::string> SplitClauses(const std::string& spec) {
  std::vector<std::string> out;
  size_t start = 0;
  while (start <= spec.size()) {
    size_t comma = spec.find(',', start);
    if (comma == std::string::npos) comma = spec.size();
    if (comma > start) out.push_back(spec.substr(start, comma - start));
    start = comma + 1;
  }
  return out;
}

Status BadClause(const std::string& clause, const char* why) {
  return Status::InvalidArgument("workload clause '" + clause + "': " + why);
}

bool ParseF(const std::string& s, double* out) {
  if (s.empty()) return false;
  char* end = nullptr;
  *out = std::strtod(s.c_str(), &end);
  return end != nullptr && *end == '\0';
}

bool ParseU(const std::string& s, uint64_t* out) {
  if (s.empty()) return false;
  char* end = nullptr;
  *out = std::strtoull(s.c_str(), &end, 10);
  return end != nullptr && *end == '\0';
}

const char* ModelName(Spec::Model m) {
  switch (m) {
    case Spec::Model::kUniform: return "uniform";
    case Spec::Model::kZipf: return "zipf";
    case Spec::Model::kFlashCrowd: return "flashcrowd";
    case Spec::Model::kContract: return "contract";
  }
  return "uniform";
}

const char* ArrivalName(Spec::Arrival a) {
  switch (a) {
    case Spec::Arrival::kConstant: return "constant";
    case Spec::Arrival::kBursty: return "bursty";
    case Spec::Arrival::kDiurnal: return "diurnal";
    case Spec::Arrival::kFlash: return "flash";
  }
  return "constant";
}

}  // namespace

std::vector<tx::Transaction> TrafficModel::Batch(size_t n) {
  std::vector<tx::Transaction> out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) out.push_back(Next());
  return out;
}

size_t ArrivalProcess::CountFor(double t_s, double len_s,
                                double base_tps) const {
  if (len_s <= 0 || base_tps <= 0) return 0;
  // Midpoint rule over a fixed grid: deterministic, and fine-grained enough
  // that on/off edges land within 1/16 of a window.
  constexpr int kSteps = 16;
  const double h = len_s / kSteps;
  double total = 0;
  for (int i = 0; i < kSteps; ++i) {
    total += RateAt(t_s + (i + 0.5) * h) * h * base_tps;
  }
  return static_cast<size_t>(total + 0.5);
}

Result<Spec> Spec::Parse(const std::string& spec) {
  Spec out;
  bool model_named = false;
  for (const std::string& clause : SplitClauses(spec)) {
    const size_t colon = clause.find(':');
    const std::string key = clause.substr(0, colon);
    const std::string rest =
        colon == std::string::npos ? "" : clause.substr(colon + 1);
    auto name_model = [&](Model m) -> Status {
      if (model_named) return BadClause(clause, "second model clause");
      model_named = true;
      out.model = m;
      return Status::Ok();
    };
    if (key == "uniform") {
      PORYGON_RETURN_IF_ERROR(name_model(Model::kUniform));
      if (!rest.empty()) return BadClause(clause, "uniform takes no value");
    } else if (key == "zipf") {
      PORYGON_RETURN_IF_ERROR(name_model(Model::kZipf));
      out.zipf_s = 0.99;
      if (!rest.empty() && (!ParseF(rest, &out.zipf_s) || out.zipf_s <= 0)) {
        return BadClause(clause, "exponent must be a positive number");
      }
    } else if (key == "flashcrowd") {
      PORYGON_RETURN_IF_ERROR(name_model(Model::kFlashCrowd));
      if (!rest.empty() &&
          (!ParseU(rest, &out.hot_size) || out.hot_size == 0)) {
        return BadClause(clause, "hot-set size must be a positive integer");
      }
    } else if (key == "contract") {
      PORYGON_RETURN_IF_ERROR(name_model(Model::kContract));
      if (out.zipf_s == 0) out.zipf_s = 0.8;  // Popular contracts by default.
      uint64_t keys = 0;
      if (!rest.empty()) {
        if (!ParseU(rest, &keys) || keys < 2 || keys > 64) {
          return BadClause(clause, "keys per call must be in [2,64]");
        }
        out.contract_keys = static_cast<uint32_t>(keys);
      }
    } else if (key == "accounts") {
      if (!ParseU(rest, &out.num_accounts) || out.num_accounts < 2) {
        return BadClause(clause, "expected an integer >= 2");
      }
    } else if (key == "cross") {
      if (!ParseF(rest, &out.cross_shard_ratio) || out.cross_shard_ratio > 1) {
        return BadClause(clause, "expected a ratio in [0,1] (or negative "
                                 "for natural)");
      }
    } else if (key == "skew") {
      if (!ParseF(rest, &out.zipf_s) || out.zipf_s < 0) {
        return BadClause(clause, "expected a non-negative exponent");
      }
    } else if (key == "amount") {
      const size_t colon2 = rest.find(':');
      if (colon2 == std::string::npos ||
          !ParseU(rest.substr(0, colon2), &out.amount_min) ||
          !ParseU(rest.substr(colon2 + 1), &out.amount_max) ||
          out.amount_min < 1 || out.amount_max < out.amount_min) {
        return BadClause(clause, "expected amount:<lo>:<hi> with 1<=lo<=hi");
      }
    } else if (key == "hot") {
      if (!ParseF(rest, &out.hot_fraction) || out.hot_fraction < 0 ||
          out.hot_fraction > 1) {
        return BadClause(clause, "expected a fraction in [0,1]");
      }
    } else if (key == "rotate") {
      if (!ParseU(rest, &out.rotate_every) || out.rotate_every == 0) {
        return BadClause(clause, "expected a positive integer");
      }
    } else if (key == "contracts") {
      if (!ParseU(rest, &out.num_contracts) || out.num_contracts == 0) {
        return BadClause(clause, "expected a positive integer");
      }
    } else if (key == "seed") {
      if (!ParseU(rest, &out.seed)) {
        return BadClause(clause, "expected an integer");
      }
    } else if (key == "arrival") {
      if (rest == "constant") {
        out.arrival = Arrival::kConstant;
      } else if (rest == "bursty") {
        out.arrival = Arrival::kBursty;
      } else if (rest == "diurnal") {
        out.arrival = Arrival::kDiurnal;
      } else if (rest == "flash") {
        out.arrival = Arrival::kFlash;
      } else {
        return BadClause(clause,
                         "expected constant, bursty, diurnal, or flash");
      }
    } else if (key == "period") {
      if (!ParseF(rest, &out.period_s) || out.period_s <= 0) {
        return BadClause(clause, "expected a positive duration (seconds)");
      }
    } else if (key == "duty") {
      if (!ParseF(rest, &out.duty) || out.duty <= 0 || out.duty >= 1) {
        return BadClause(clause, "expected a fraction in (0,1)");
      }
    } else if (key == "peak") {
      if (!ParseF(rest, &out.peak) || out.peak < 1) {
        return BadClause(clause, "expected a multiplier >= 1");
      }
    } else if (key == "at") {
      if (!ParseF(rest, &out.at_s) || out.at_s < 0) {
        return BadClause(clause, "expected a non-negative time (seconds)");
      }
    } else if (key == "dur") {
      if (!ParseF(rest, &out.dur_s) || out.dur_s <= 0) {
        return BadClause(clause, "expected a positive duration (seconds)");
      }
    } else {
      return BadClause(clause, "unknown clause");
    }
  }
  if (out.model == Model::kContract &&
      out.num_contracts >= out.num_accounts) {
    return Status::InvalidArgument(
        "workload: contracts must be < accounts (contract ids occupy the "
        "bottom of the account space)");
  }
  if (out.model == Model::kFlashCrowd && out.hot_size >= out.num_accounts) {
    return Status::InvalidArgument("workload: hot-set size must be < accounts");
  }
  return out;
}

std::string Spec::ToString() const {
  std::string s;
  switch (model) {
    case Model::kUniform: s = "uniform"; break;
    case Model::kZipf: s = "zipf:" + FmtF(zipf_s); break;
    case Model::kFlashCrowd: s = "flashcrowd:" + FmtU(hot_size); break;
    case Model::kContract:
      s = "contract:" + FmtU(contract_keys);
      break;
  }
  s += ",accounts:" + FmtU(num_accounts);
  if (model == Model::kUniform && cross_shard_ratio >= 0) {
    s += ",cross:" + FmtF(cross_shard_ratio);
  }
  if (model != Model::kZipf && zipf_s > 0) s += ",skew:" + FmtF(zipf_s);
  if (amount_min != 1 || amount_max != 100) {
    s += ",amount:" + FmtU(amount_min) + ":" + FmtU(amount_max);
  }
  if (model == Model::kFlashCrowd) {
    s += ",hot:" + FmtF(hot_fraction) + ",rotate:" + FmtU(rotate_every);
  }
  if (model == Model::kContract) s += ",contracts:" + FmtU(num_contracts);
  switch (arrival) {
    case Arrival::kConstant:
      break;
    case Arrival::kBursty:
      s += ",arrival:bursty,period:" + FmtF(period_s) + ",duty:" +
           FmtF(duty) + ",peak:" + FmtF(peak);
      break;
    case Arrival::kDiurnal:
      s += ",arrival:diurnal,period:" + FmtF(period_s) + ",peak:" + FmtF(peak);
      break;
    case Arrival::kFlash:
      s += ",arrival:flash,at:" + FmtF(at_s) + ",dur:" + FmtF(dur_s) +
           ",peak:" + FmtF(peak);
      break;
  }
  s += ",seed:" + FmtU(seed);
  return s;
}

std::unique_ptr<TrafficModel> Spec::BuildModel() const {
  switch (model) {
    case Model::kUniform: {
      WorkloadOptions opt;
      opt.num_accounts = num_accounts;
      opt.shard_bits = shard_bits;
      opt.cross_shard_ratio = cross_shard_ratio;
      opt.zipf_s = zipf_s;
      opt.amount_min = amount_min;
      opt.amount_max = amount_max;
      opt.seed = seed;
      return std::make_unique<WorkloadGenerator>(opt);
    }
    case Model::kZipf:
      return std::make_unique<ZipfTrafficModel>(*this);
    case Model::kFlashCrowd:
      return std::make_unique<FlashCrowdTrafficModel>(*this);
    case Model::kContract:
      return std::make_unique<ContractTrafficModel>(*this);
  }
  return std::make_unique<ZipfTrafficModel>(*this);
}

std::unique_ptr<ArrivalProcess> Spec::BuildArrival() const {
  switch (arrival) {
    case Arrival::kConstant:
      return std::make_unique<ConstantArrival>();
    case Arrival::kBursty:
      return std::make_unique<BurstyArrival>(period_s, duty, peak);
    case Arrival::kDiurnal:
      return std::make_unique<DiurnalArrival>(period_s, peak);
    case Arrival::kFlash:
      return std::make_unique<FlashArrival>(at_s, dur_s, peak);
  }
  return std::make_unique<ConstantArrival>();
}

// --- ZipfTrafficModel ------------------------------------------------------

ZipfTrafficModel::ZipfTrafficModel(const Spec& spec)
    : spec_(spec), rng_(spec.seed) {
  if (spec_.zipf_s <= 0) spec_.zipf_s = 0.99;
}

tx::Transaction ZipfTrafficModel::Next() {
  const uint64_t n = spec_.num_accounts;
  tx::Transaction t;
  t.from = 1 + rng_.NextZipf(n, spec_.zipf_s);
  for (int tries = 0; tries < 64; ++tries) {
    state::AccountId r = 1 + rng_.NextZipf(n, spec_.zipf_s);
    if (r != t.from) {
      t.to = r;
      break;
    }
  }
  if (t.to == 0) t.to = t.from == 1 ? 2 : 1;
  t.amount = rng_.NextInRange(spec_.amount_min, spec_.amount_max);
  t.nonce = nonces_[t.from]++;
  return t;
}

std::string ZipfTrafficModel::Describe() const {
  return "{\"model\":\"zipf\",\"s\":" + FmtF(spec_.zipf_s) +
         ",\"accounts\":" + FmtU(spec_.num_accounts) +
         ",\"seed\":" + FmtU(spec_.seed) + "}";
}

// --- FlashCrowdTrafficModel ------------------------------------------------

FlashCrowdTrafficModel::FlashCrowdTrafficModel(const Spec& spec)
    : spec_(spec), rng_(spec.seed) {}

state::AccountId FlashCrowdTrafficModel::HotBaseFor(uint64_t n) const {
  const uint64_t epoch = n / spec_.rotate_every;
  const uint64_t span = spec_.num_accounts - spec_.hot_size;
  // Large odd stride walks the account space without revisiting quickly.
  return 1 + (epoch * (spec_.hot_size * 17 + 1)) % (span + 1);
}

tx::Transaction FlashCrowdTrafficModel::Next() {
  const uint64_t n = spec_.num_accounts;
  const state::AccountId hot_base = HotBaseFor(emitted_);
  ++emitted_;
  tx::Transaction t;
  t.from = 1 + rng_.NextBelow(n);
  const bool hot = rng_.NextBernoulli(spec_.hot_fraction);
  for (int tries = 0; tries < 64; ++tries) {
    state::AccountId r = hot ? hot_base + rng_.NextBelow(spec_.hot_size)
                             : 1 + rng_.NextBelow(n);
    if (r != t.from) {
      t.to = r;
      break;
    }
  }
  if (t.to == 0) t.to = t.from == 1 ? 2 : 1;
  t.amount = rng_.NextInRange(spec_.amount_min, spec_.amount_max);
  t.nonce = nonces_[t.from]++;
  return t;
}

std::string FlashCrowdTrafficModel::Describe() const {
  return "{\"model\":\"flashcrowd\",\"hot_size\":" + FmtU(spec_.hot_size) +
         ",\"hot_fraction\":" + FmtF(spec_.hot_fraction) +
         ",\"rotate_every\":" + FmtU(spec_.rotate_every) +
         ",\"accounts\":" + FmtU(spec_.num_accounts) +
         ",\"seed\":" + FmtU(spec_.seed) + "}";
}

// --- ContractTrafficModel --------------------------------------------------

ContractTrafficModel::ContractTrafficModel(const Spec& spec)
    : spec_(spec), rng_(spec.seed) {
  if (spec_.zipf_s <= 0) spec_.zipf_s = 0.8;
}

void ContractTrafficModel::GenerateCall() {
  // Contract ids occupy [1, num_contracts]; user keys the rest of the space.
  // Every transfer of a call deposits into the call's contract: the
  // contract never spends, so its client-side nonce never diverges when a
  // conflicting transfer is discarded, and a call's contention comes purely
  // from its shared write target (the §IV-D2 conflict-discard regime).
  const state::AccountId contract =
      1 + rng_.NextZipf(spec_.num_contracts, spec_.zipf_s);
  const uint64_t user_span = spec_.num_accounts - spec_.num_contracts;
  for (uint32_t i = 0; i + 1 < spec_.contract_keys; ++i) {
    state::AccountId user =
        spec_.num_contracts + 1 + rng_.NextBelow(user_span);
    tx::Transaction t;
    t.from = user;
    t.to = contract;
    t.amount = rng_.NextInRange(spec_.amount_min, spec_.amount_max);
    t.nonce = nonces_[t.from]++;
    queue_.push_back(t);
  }
}

tx::Transaction ContractTrafficModel::Next() {
  if (queue_.empty()) GenerateCall();
  tx::Transaction t = queue_.front();
  queue_.pop_front();
  return t;
}

std::string ContractTrafficModel::Describe() const {
  return "{\"model\":\"contract\",\"keys_per_call\":" +
         FmtU(spec_.contract_keys) +
         ",\"contracts\":" + FmtU(spec_.num_contracts) +
         ",\"contract_skew\":" + FmtF(spec_.zipf_s) +
         ",\"accounts\":" + FmtU(spec_.num_accounts) +
         ",\"seed\":" + FmtU(spec_.seed) + "}";
}

// --- Arrival processes -----------------------------------------------------

std::string ConstantArrival::Describe() const {
  return "{\"arrival\":\"constant\"}";
}

BurstyArrival::BurstyArrival(double period_s, double duty, double peak)
    : period_s_(period_s), duty_(duty), peak_(peak) {
  // Off-rate keeps the long-run mean at 1 while the on-window runs at
  // `peak`; saturating at 0 when the bursts alone exceed the mean budget.
  const double off = (1.0 - duty_ * peak_) / (1.0 - duty_);
  off_rate_ = off > 0 ? off : 0;
}

double BurstyArrival::RateAt(double t_s) const {
  const double phase = std::fmod(t_s, period_s_);
  return phase < duty_ * period_s_ ? peak_ : off_rate_;
}

std::string BurstyArrival::Describe() const {
  return "{\"arrival\":\"bursty\",\"period_s\":" + FmtF(period_s_) +
         ",\"duty\":" + FmtF(duty_) + ",\"peak\":" + FmtF(peak_) + "}";
}

DiurnalArrival::DiurnalArrival(double period_s, double peak)
    : period_s_(period_s),
      amplitude_(peak - 1 < 1 ? (peak - 1 > 0 ? peak - 1 : 0) : 1) {}

double DiurnalArrival::RateAt(double t_s) const {
  constexpr double kTau = 6.283185307179586;
  return 1.0 + amplitude_ * std::sin(kTau * t_s / period_s_);
}

std::string DiurnalArrival::Describe() const {
  return "{\"arrival\":\"diurnal\",\"period_s\":" + FmtF(period_s_) +
         ",\"amplitude\":" + FmtF(amplitude_) + "}";
}

FlashArrival::FlashArrival(double at_s, double dur_s, double peak)
    : at_s_(at_s), dur_s_(dur_s), peak_(peak) {}

double FlashArrival::RateAt(double t_s) const {
  return (t_s >= at_s_ && t_s < at_s_ + dur_s_) ? peak_ : 1.0;
}

std::string FlashArrival::Describe() const {
  return "{\"arrival\":\"flash\",\"at_s\":" + FmtF(at_s_) +
         ",\"dur_s\":" + FmtF(dur_s_) + ",\"peak\":" + FmtF(peak_) + "}";
}

}  // namespace porygon::workload
