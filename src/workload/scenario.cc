#include "workload/scenario.h"

#include <cstdio>
#include <memory>

#include "core/system.h"
#include "net/fault.h"
#include "workload/traffic.h"

namespace porygon::workload {

namespace {

std::string F(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

std::string U(uint64_t v) { return std::to_string(v); }

uint64_t RejectedCount(const obs::MetricsRegistry& reg, const char* reason) {
  const obs::Counter* c =
      reg.FindCounter("porygon.rejected_txs", {{"reason", reason}});
  return c == nullptr ? 0 : c->value();
}

}  // namespace

Result<std::string> RunScenarioCell(const ScenarioCell& cell,
                                    const ScenarioOptions& opt) {
  PORYGON_ASSIGN_OR_RETURN(Spec spec, Spec::Parse(cell.workload));
  spec.shard_bits = opt.shard_bits;

  core::SystemOptions sys_opt;
  sys_opt.params.shard_bits = opt.shard_bits;
  sys_opt.params.witness_threshold = 2;
  sys_opt.params.execution_threshold = 2;
  sys_opt.params.block_tx_limit = opt.block_tx_limit;
  sys_opt.num_storage_nodes = opt.num_storage_nodes;
  sys_opt.num_stateless_nodes = opt.num_stateless_nodes;
  sys_opt.oc_size = opt.oc_size;
  sys_opt.seed = opt.system_seed;
  sys_opt.worker_threads = opt.worker_threads;
  if (!cell.adversary.empty()) {
    PORYGON_ASSIGN_OR_RETURN(sys_opt.adversary,
                             core::AdversarySpec::Parse(cell.adversary));
    PORYGON_RETURN_IF_ERROR(sys_opt.Validate());
  }
  if (!cell.dissemination.empty()) {
    PORYGON_ASSIGN_OR_RETURN(
        sys_opt.dissemination,
        net::DisseminationSpec::Parse(cell.dissemination));
    PORYGON_RETURN_IF_ERROR(sys_opt.Validate());
  }

  core::PorygonSystem sys(sys_opt);
  if (!cell.faults.empty()) {
    PORYGON_ASSIGN_OR_RETURN(net::FaultPlan plan,
                             net::FaultPlan::Parse(cell.faults));
    PORYGON_RETURN_IF_ERROR(sys.InjectFaults(plan));
  }
  sys.CreateAccountsLazy(spec.num_accounts, opt.account_balance);

  std::unique_ptr<TrafficModel> model = spec.BuildModel();
  std::unique_ptr<ArrivalProcess> arrival = spec.BuildArrival();
  const int warmup = 4;
  for (int r = 0; r < opt.rounds + warmup; ++r) {
    const size_t n = arrival->CountFor(sys.sim_seconds(), opt.est_round_s,
                                       opt.offered_tps);
    sys.SubmitBatch(model->Batch(n));
    sys.Run(1);
  }

  const core::SystemMetrics m = sys.metrics();
  const obs::HistogramSummary lat = m.UserLatency();
  const uint64_t committed = m.committed_txs();
  const uint64_t discarded = m.discarded_txs();
  const double conflict_rate =
      committed + discarded > 0
          ? static_cast<double>(discarded) /
                static_cast<double>(committed + discarded)
          : 0.0;
  const obs::MetricsRegistry& reg = *sys.metrics_registry();

  std::string row = "{";
  row += "\"workload\":\"" + spec.ToString() + "\"";
  row += ",\"faults\":\"" + cell.faults + "\"";
  row += ",\"adversary\":\"" +
         (cell.adversary.empty() ? std::string()
                                 : sys_opt.adversary.ToString()) +
         "\"";
  row += ",\"dissemination\":\"" + sys_opt.dissemination.ToString() + "\"";
  row += ",\"model\":" + model->Describe();
  row += ",\"arrival\":" + arrival->Describe();
  row += ",\"rounds\":" + std::to_string(opt.rounds);
  row += ",\"offered_tps\":" + F(opt.offered_tps);
  row += ",\"committed_txs\":" + U(committed);
  row += ",\"tps\":" + F(m.Tps(sys.sim_seconds()));
  row += ",\"latency_s\":{\"mean\":" + F(lat.mean) +
         ",\"p50\":" + F(lat.p50) + ",\"p95\":" + F(lat.p95) +
         ",\"p99\":" + F(lat.p99) + "}";
  row += ",\"discarded_txs\":" + U(discarded);
  row += ",\"failed_txs\":" + U(m.failed_txs());
  row += ",\"conflict_rate\":" + F(conflict_rate);
  row += ",\"rejected\":{\"duplicate\":" + U(RejectedCount(reg, "duplicate")) +
         ",\"invalid\":" + U(RejectedCount(reg, "invalid")) +
         ",\"unavailable\":" + U(RejectedCount(reg, "unavailable")) + "}";
  row += ",\"replay_mismatches\":" + U(m.replay_mismatches());
  row += ",\"evidence\":" +
         U(cell.adversary.empty() ? 0 : sys.adversary()->evidence());
  // Critical-path attribution: the run's modal dominant segment/edge, the
  // OC-leader downlink utilization, and per-direction queue-delay
  // percentiles — all sim-derived, byte-identical per seed at any thread
  // count like every other field in the row.
  const obs::CriticalPathAnalyzer& cp = sys.critical_path();
  row += ",\"dominant_segment\":\"" + cp.DominantSegmentMode() + "\"";
  row += ",\"dominant_edge\":\"" + cp.DominantEdgeMode() + "\"";
  row += ",\"oc_downlink_util\":" +
         F(cp.MeanUtilization("oc_leader.downlink"));
  const auto queue_triple = [&reg](const char* dir) {
    obs::HistogramSummary q;
    if (const obs::Histogram* h =
            reg.FindHistogram("net.queue_delay_seconds", {{"dir", dir}})) {
      q = h->Summary();
    }
    return "{\"p50\":" + F(q.p50) + ",\"p95\":" + F(q.p95) +
           ",\"p99\":" + F(q.p99) + "}";
  };
  row += ",\"queue_delay_s\":{\"up\":" + queue_triple("up") +
         ",\"down\":" + queue_triple("down") + "}";
  row += "}";
  return row;
}

std::vector<ScenarioCell> DefaultScenarioMatrix() {
  // Every workload family under clean, faulty, and adversarial operation.
  // Account spaces differ per family so the matrix exercises both small
  // (contended) and million-account (lazily funded) regimes.
  const std::string uniform = "uniform,accounts:20000,cross:0.2,seed:11";
  const std::string zipf = "zipf:0.99,accounts:1000000,seed:11";
  const std::string flash =
      "flashcrowd:64,accounts:100000,hot:0.9,rotate:2000,"
      "arrival:bursty,period:20,duty:0.25,peak:4,seed:11";
  const std::string contract =
      "contract:4,accounts:50000,contracts:16,seed:11";
  const std::string faults = "loss:0.02,jitter:300,seed:5";
  const std::string adversary = "stateless:equivocate,alpha:0.2,seed:9";
  std::vector<ScenarioCell> cells;
  for (const std::string& w : {uniform, zipf, flash, contract}) {
    cells.push_back({w, "", ""});
    cells.push_back({w, faults, ""});
    cells.push_back({w, "", adversary});
  }
  // Tree dissemination rides the matrix too: the aggregation-relay
  // strategy under the two headline workloads, clean and adversarial, so
  // snapshots track both strategies' throughput over time.
  cells.push_back({uniform, "", "", "tree"});
  cells.push_back({zipf, "", "", "tree"});
  cells.push_back({uniform, "", adversary, "tree"});
  return cells;
}

}  // namespace porygon::workload
