#include "workload/generator.h"

#include <cstdio>

namespace porygon::workload {

WorkloadGenerator::WorkloadGenerator(const WorkloadOptions& options)
    : options_(options), rng_(options.seed) {}

state::AccountId WorkloadGenerator::PickSender() {
  if (options_.zipf_s > 0) {
    return 1 + rng_.NextZipf(options_.num_accounts, options_.zipf_s);
  }
  return 1 + rng_.NextBelow(options_.num_accounts);
}

state::AccountId WorkloadGenerator::PickReceiver(state::AccountId sender) {
  const int bits = options_.shard_bits;
  if (options_.cross_shard_ratio < 0 || bits == 0) {
    // Natural: any other account.
    for (int tries = 0; tries < 64; ++tries) {
      state::AccountId r = 1 + rng_.NextBelow(options_.num_accounts);
      if (r != sender) return r;
    }
    return sender == 1 ? 2 : 1;
  }
  const bool want_cross = rng_.NextBernoulli(options_.cross_shard_ratio);
  const uint32_t sender_shard = state::ShardOfAccount(sender, bits);
  for (int tries = 0; tries < 256; ++tries) {
    state::AccountId r = 1 + rng_.NextBelow(options_.num_accounts);
    if (r == sender) continue;
    bool cross = state::ShardOfAccount(r, bits) != sender_shard;
    if (cross == want_cross) return r;
  }
  return sender == 1 ? 2 : 1;  // Degenerate account spaces.
}

tx::Transaction WorkloadGenerator::Next() {
  tx::Transaction t;
  t.from = PickSender();
  t.to = PickReceiver(t.from);
  t.amount = rng_.NextInRange(options_.amount_min, options_.amount_max);
  t.nonce = nonces_[t.from]++;
  return t;
}

std::string WorkloadGenerator::Describe() const {
  std::string s = "{\"model\":\"uniform\",\"accounts\":" +
                  std::to_string(options_.num_accounts);
  if (options_.cross_shard_ratio >= 0) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%g", options_.cross_shard_ratio);
    s += ",\"cross\":";
    s += buf;
  }
  if (options_.zipf_s > 0) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%g", options_.zipf_s);
    s += ",\"s\":";
    s += buf;
  }
  s += ",\"seed\":" + std::to_string(options_.seed) + "}";
  return s;
}

}  // namespace porygon::workload
