#include "storage/sstable.h"

#include <algorithm>

#include "common/codec.h"
#include "common/crc32.h"

namespace porygon::storage {

namespace {
constexpr size_t kFooterSize = 8 * 5 + 4 + 8;  // 5 u64 + crc + magic.
}

SstableBuilder::SstableBuilder(Env* env, std::string path)
    : env_(env), path_(std::move(path)) {
  auto file = env_->NewWritableFile(path_);
  if (!file.ok()) {
    open_status_ = file.status();
  } else {
    file_ = std::move(file).value();
    open_status_ = Status::Ok();
  }
}

Status SstableBuilder::Add(ByteView key, uint64_t sequence, ValueType type,
                           ByteView value) {
  PORYGON_RETURN_IF_ERROR(open_status_);
  if (!last_key_.empty() || entry_count_ > 0) {
    if (!(ByteView(last_key_) < key)) {
      return Status::InvalidArgument("keys must be added in increasing order");
    }
  }

  // Sparse index entry at the start of each group.
  if (entry_count_ % kIndexInterval == 0) {
    Encoder idx;
    idx.PutBytes(key);
    idx.PutU64(offset_);
    index_.insert(index_.end(), idx.buffer().begin(), idx.buffer().end());
  }

  Encoder rec;
  rec.PutBytes(key);
  rec.PutU8(static_cast<uint8_t>(type));
  rec.PutU64(sequence);
  rec.PutBytes(value);
  PORYGON_RETURN_IF_ERROR(file_->Append(rec.buffer()));
  offset_ += rec.size();

  bloom_.Add(key);
  last_key_ = key.ToBytes();
  ++entry_count_;
  return Status::Ok();
}

Status SstableBuilder::Finish() {
  PORYGON_RETURN_IF_ERROR(open_status_);
  const uint64_t index_off = offset_;
  PORYGON_RETURN_IF_ERROR(file_->Append(index_));
  offset_ += index_.size();

  Bytes bloom = bloom_.Finish();
  const uint64_t bloom_off = offset_;
  PORYGON_RETURN_IF_ERROR(file_->Append(bloom));
  offset_ += bloom.size();

  Encoder footer;
  footer.PutU64(index_off);
  footer.PutU64(index_.size());
  footer.PutU64(bloom_off);
  footer.PutU64(bloom.size());
  footer.PutU64(entry_count_);
  footer.PutU32(Crc32cMask(Crc32c(footer.buffer())));
  footer.PutU64(kMagic);
  PORYGON_RETURN_IF_ERROR(file_->Append(footer.buffer()));
  offset_ += footer.size();

  PORYGON_RETURN_IF_ERROR(file_->Sync());
  return file_->Close();
}

Result<std::unique_ptr<SstableReader>> SstableReader::Open(
    Env* env, const std::string& path) {
  PORYGON_ASSIGN_OR_RETURN(auto file, env->NewRandomAccessFile(path));
  PORYGON_ASSIGN_OR_RETURN(uint64_t size, file->Size());
  if (size < kFooterSize) return Status::Corruption("sstable too small");

  Bytes footer_raw;
  PORYGON_RETURN_IF_ERROR(file->Read(size - kFooterSize, kFooterSize,
                                     &footer_raw));
  if (footer_raw.size() != kFooterSize) {
    return Status::Corruption("short footer read");
  }
  Decoder dec(footer_raw);
  PORYGON_ASSIGN_OR_RETURN(uint64_t index_off, dec.GetU64());
  PORYGON_ASSIGN_OR_RETURN(uint64_t index_len, dec.GetU64());
  PORYGON_ASSIGN_OR_RETURN(uint64_t bloom_off, dec.GetU64());
  PORYGON_ASSIGN_OR_RETURN(uint64_t bloom_len, dec.GetU64());
  PORYGON_ASSIGN_OR_RETURN(uint64_t entry_count, dec.GetU64());
  PORYGON_ASSIGN_OR_RETURN(uint32_t crc, dec.GetU32());
  PORYGON_ASSIGN_OR_RETURN(uint64_t magic, dec.GetU64());
  if (magic != SstableBuilder::kMagic) {
    return Status::Corruption("bad sstable magic");
  }
  uint32_t expected =
      Crc32cMask(Crc32c(ByteView(footer_raw.data(), 8 * 5)));
  if (crc != expected) return Status::Corruption("footer crc mismatch");

  auto reader = std::unique_ptr<SstableReader>(new SstableReader());
  reader->index_offset_ = index_off;
  reader->entry_count_ = entry_count;

  Bytes index_raw;
  PORYGON_RETURN_IF_ERROR(file->Read(index_off, index_len, &index_raw));
  if (index_raw.size() != index_len) {
    return Status::Corruption("short index read");
  }
  Decoder idx(index_raw);
  while (!idx.Done()) {
    PORYGON_ASSIGN_OR_RETURN(Bytes key, idx.GetBytes());
    PORYGON_ASSIGN_OR_RETURN(uint64_t off, idx.GetU64());
    reader->index_entries_.emplace_back(std::move(key), off);
  }

  PORYGON_RETURN_IF_ERROR(file->Read(bloom_off, bloom_len,
                                     &reader->bloom_raw_));
  if (reader->bloom_raw_.size() != bloom_len) {
    return Status::Corruption("short bloom read");
  }
  reader->file_ = std::move(file);
  return reader;
}

Status SstableReader::ParseEntry(const Bytes& data, size_t* offset,
                                 Entry* out) {
  Decoder dec(ByteView(data.data() + *offset, data.size() - *offset));
  size_t before = dec.remaining();
  PORYGON_ASSIGN_OR_RETURN(out->key, dec.GetBytes());
  PORYGON_ASSIGN_OR_RETURN(uint8_t type, dec.GetU8());
  if (type > 1) return Status::Corruption("bad value type");
  out->type = static_cast<ValueType>(type);
  PORYGON_ASSIGN_OR_RETURN(out->sequence, dec.GetU64());
  PORYGON_ASSIGN_OR_RETURN(out->value, dec.GetBytes());
  *offset += before - dec.remaining();
  return Status::Ok();
}

Result<Bytes> SstableReader::Get(ByteView key, bool* found_tombstone) const {
  *found_tombstone = false;
  if (index_entries_.empty()) return Status::NotFound("empty table");

  BloomFilterReader bloom(bloom_raw_);
  if (bloom_checks_ != nullptr) bloom_checks_->Increment();
  if (!bloom.MayContain(key)) {
    if (bloom_negatives_ != nullptr) bloom_negatives_->Increment();
    return Status::NotFound("bloom miss");
  }

  // Binary search for the last index group whose first key <= key.
  auto it = std::upper_bound(
      index_entries_.begin(), index_entries_.end(), key,
      [](ByteView k, const std::pair<Bytes, uint64_t>& e) {
        return k.Compare(ByteView(e.first)) < 0;
      });
  if (it == index_entries_.begin()) return Status::NotFound("below first key");
  --it;

  uint64_t start = it->second;
  uint64_t end = (it + 1 == index_entries_.end()) ? index_offset_
                                                  : (it + 1)->second;
  Bytes group;
  PORYGON_RETURN_IF_ERROR(file_->Read(start, end - start, &group));
  if (group.size() != end - start) return Status::Corruption("short group");

  size_t off = 0;
  Entry entry;
  while (off < group.size()) {
    PORYGON_RETURN_IF_ERROR(ParseEntry(group, &off, &entry));
    int c = ByteView(entry.key).Compare(key);
    if (c == 0) {
      if (entry.type == ValueType::kDeletion) {
        *found_tombstone = true;
        return Status::NotFound("tombstone");
      }
      return entry.value;
    }
    if (c > 0) break;  // Sorted: key is absent.
  }
  return Status::NotFound("key absent from sstable");
}

Status SstableReader::ForEach(
    const std::function<bool(const Entry&)>& fn) const {
  Bytes data;
  PORYGON_RETURN_IF_ERROR(file_->Read(0, index_offset_, &data));
  if (data.size() != index_offset_) {
    return Status::Corruption("short data read");
  }
  size_t off = 0;
  Entry entry;
  while (off < data.size()) {
    PORYGON_RETURN_IF_ERROR(ParseEntry(data, &off, &entry));
    if (!fn(entry)) break;
  }
  return Status::Ok();
}

}  // namespace porygon::storage
