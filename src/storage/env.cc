#include "storage/env.h"

#include <cstdio>
#include <filesystem>
#include <map>
#include <memory>
#include <mutex>
#include <set>

namespace porygon::storage {

namespace fs = std::filesystem;

// ---------------------------------------------------------------------------
// POSIX Env
// ---------------------------------------------------------------------------

namespace {

class PosixWritableFile : public WritableFile {
 public:
  explicit PosixWritableFile(std::FILE* f) : f_(f) {}
  ~PosixWritableFile() override {
    if (f_ != nullptr) std::fclose(f_);
  }

  Status Append(ByteView data) override {
    if (f_ == nullptr) return Status::FailedPrecondition("file closed");
    if (std::fwrite(data.data(), 1, data.size(), f_) != data.size()) {
      return Status::Internal("short write");
    }
    return Status::Ok();
  }

  Status Sync() override {
    if (f_ == nullptr) return Status::FailedPrecondition("file closed");
    if (std::fflush(f_) != 0) return Status::Internal("fflush failed");
    return Status::Ok();
  }

  Status Close() override {
    if (f_ == nullptr) return Status::Ok();
    int rc = std::fclose(f_);
    f_ = nullptr;
    return rc == 0 ? Status::Ok() : Status::Internal("fclose failed");
  }

 private:
  std::FILE* f_;
};

class PosixRandomAccessFile : public RandomAccessFile {
 public:
  explicit PosixRandomAccessFile(std::string path) : path_(std::move(path)) {}

  Status Read(uint64_t offset, size_t n, Bytes* out) const override {
    std::FILE* f = std::fopen(path_.c_str(), "rb");
    if (f == nullptr) return Status::NotFound("open failed: " + path_);
    if (std::fseek(f, static_cast<long>(offset), SEEK_SET) != 0) {
      std::fclose(f);
      return Status::Internal("seek failed");
    }
    out->resize(n);
    size_t got = std::fread(out->data(), 1, n, f);
    std::fclose(f);
    out->resize(got);
    return Status::Ok();
  }

  Result<uint64_t> Size() const override {
    std::error_code ec;
    auto size = fs::file_size(path_, ec);
    if (ec) return Status::NotFound("stat failed: " + path_);
    return static_cast<uint64_t>(size);
  }

 private:
  std::string path_;
};

class PosixEnv : public Env {
 public:
  Result<std::unique_ptr<WritableFile>> NewWritableFile(
      const std::string& path) override {
    std::FILE* f = std::fopen(path.c_str(), "wb");
    if (f == nullptr) return Status::Internal("open for write failed: " + path);
    return std::unique_ptr<WritableFile>(new PosixWritableFile(f));
  }

  Result<std::unique_ptr<RandomAccessFile>> NewRandomAccessFile(
      const std::string& path) override {
    if (!fs::exists(path)) return Status::NotFound("no such file: " + path);
    return std::unique_ptr<RandomAccessFile>(new PosixRandomAccessFile(path));
  }

  Result<Bytes> ReadFile(const std::string& path) override {
    std::FILE* f = std::fopen(path.c_str(), "rb");
    if (f == nullptr) return Status::NotFound("open failed: " + path);
    Bytes out;
    uint8_t buf[1 << 16];
    size_t got;
    while ((got = std::fread(buf, 1, sizeof(buf), f)) > 0) {
      out.insert(out.end(), buf, buf + got);
    }
    std::fclose(f);
    return out;
  }

  bool FileExists(const std::string& path) override { return fs::exists(path); }

  Status RemoveFile(const std::string& path) override {
    std::error_code ec;
    fs::remove(path, ec);
    return ec ? Status::Internal("remove failed: " + path) : Status::Ok();
  }

  Status RenameFile(const std::string& from, const std::string& to) override {
    std::error_code ec;
    fs::rename(from, to, ec);
    return ec ? Status::Internal("rename failed") : Status::Ok();
  }

  Status CreateDirIfMissing(const std::string& path) override {
    std::error_code ec;
    fs::create_directories(path, ec);
    return ec ? Status::Internal("mkdir failed: " + path) : Status::Ok();
  }

  Result<std::vector<std::string>> ListDir(const std::string& dir) override {
    std::error_code ec;
    std::vector<std::string> names;
    for (const auto& entry : fs::directory_iterator(dir, ec)) {
      names.push_back(entry.path().filename().string());
    }
    if (ec) return Status::NotFound("listdir failed: " + dir);
    return names;
  }
};

}  // namespace

Env* Env::Default() {
  static PosixEnv* env = new PosixEnv();  // Never destroyed (trivial state).
  return env;
}

// ---------------------------------------------------------------------------
// In-memory Env
// ---------------------------------------------------------------------------

struct MemEnv::Impl {
  mutable std::mutex mu;
  std::map<std::string, std::shared_ptr<Bytes>> files;
  std::set<std::string> dirs;
};

namespace {

class MemWritableFile : public WritableFile {
 public:
  explicit MemWritableFile(std::shared_ptr<Bytes> target)
      : target_(std::move(target)) {}

  Status Append(ByteView data) override {
    target_->insert(target_->end(), data.begin(), data.end());
    return Status::Ok();
  }
  Status Sync() override { return Status::Ok(); }
  Status Close() override { return Status::Ok(); }

 private:
  std::shared_ptr<Bytes> target_;
};

class MemRandomAccessFile : public RandomAccessFile {
 public:
  explicit MemRandomAccessFile(std::shared_ptr<Bytes> data)
      : data_(std::move(data)) {}

  Status Read(uint64_t offset, size_t n, Bytes* out) const override {
    if (offset >= data_->size()) {
      out->clear();
      return Status::Ok();
    }
    size_t avail = data_->size() - offset;
    size_t take = std::min(n, avail);
    out->assign(data_->begin() + offset, data_->begin() + offset + take);
    return Status::Ok();
  }

  Result<uint64_t> Size() const override {
    return static_cast<uint64_t>(data_->size());
  }

 private:
  std::shared_ptr<Bytes> data_;
};

// Directory prefix of a path ('' if none).
std::string DirOf(const std::string& path) {
  auto pos = path.rfind('/');
  return pos == std::string::npos ? std::string() : path.substr(0, pos);
}

}  // namespace

MemEnv::MemEnv() : impl_(new Impl()) {}
MemEnv::~MemEnv() = default;

Result<std::unique_ptr<WritableFile>> MemEnv::NewWritableFile(
    const std::string& path) {
  std::lock_guard<std::mutex> lock(impl_->mu);
  auto data = std::make_shared<Bytes>();
  impl_->files[path] = data;
  return std::unique_ptr<WritableFile>(new MemWritableFile(std::move(data)));
}

Result<std::unique_ptr<RandomAccessFile>> MemEnv::NewRandomAccessFile(
    const std::string& path) {
  std::lock_guard<std::mutex> lock(impl_->mu);
  auto it = impl_->files.find(path);
  if (it == impl_->files.end()) return Status::NotFound("no such file: " + path);
  return std::unique_ptr<RandomAccessFile>(new MemRandomAccessFile(it->second));
}

Result<Bytes> MemEnv::ReadFile(const std::string& path) {
  std::lock_guard<std::mutex> lock(impl_->mu);
  auto it = impl_->files.find(path);
  if (it == impl_->files.end()) return Status::NotFound("no such file: " + path);
  return *it->second;
}

bool MemEnv::FileExists(const std::string& path) {
  std::lock_guard<std::mutex> lock(impl_->mu);
  return impl_->files.count(path) > 0;
}

Status MemEnv::RemoveFile(const std::string& path) {
  std::lock_guard<std::mutex> lock(impl_->mu);
  impl_->files.erase(path);
  return Status::Ok();
}

Status MemEnv::RenameFile(const std::string& from, const std::string& to) {
  std::lock_guard<std::mutex> lock(impl_->mu);
  auto it = impl_->files.find(from);
  if (it == impl_->files.end()) return Status::NotFound("no such file: " + from);
  impl_->files[to] = it->second;
  impl_->files.erase(it);
  return Status::Ok();
}

Status MemEnv::CreateDirIfMissing(const std::string& path) {
  std::lock_guard<std::mutex> lock(impl_->mu);
  impl_->dirs.insert(path);
  return Status::Ok();
}

Result<std::vector<std::string>> MemEnv::ListDir(const std::string& dir) {
  std::lock_guard<std::mutex> lock(impl_->mu);
  std::vector<std::string> names;
  for (const auto& [path, data] : impl_->files) {
    if (DirOf(path) == dir) {
      names.push_back(path.substr(dir.empty() ? 0 : dir.size() + 1));
    }
  }
  return names;
}

uint64_t MemEnv::TotalBytes() const {
  std::lock_guard<std::mutex> lock(impl_->mu);
  uint64_t total = 0;
  for (const auto& [path, data] : impl_->files) total += data->size();
  return total;
}

}  // namespace porygon::storage
