#ifndef PORYGON_STORAGE_MEMTABLE_H_
#define PORYGON_STORAGE_MEMTABLE_H_

#include <cstdint>
#include <memory>

#include "common/bytes.h"
#include "common/rng.h"
#include "common/status.h"
#include "storage/arena.h"

namespace porygon::storage {

/// Entry type tag stored with every version of a key.
enum class ValueType : uint8_t {
  kDeletion = 0,
  kValue = 1,
};

/// In-memory write buffer: a skiplist over internal keys
/// (user_key ascending, sequence number descending), arena-allocated.
/// Each mutation appends a new version; Get returns the version with the
/// highest sequence number, honouring tombstones.
class MemTable {
 public:
  MemTable();
  ~MemTable();

  MemTable(const MemTable&) = delete;
  MemTable& operator=(const MemTable&) = delete;

  /// Inserts a (key, value) version tagged with `sequence`.
  void Add(uint64_t sequence, ValueType type, ByteView key, ByteView value);

  /// Looks up the newest version of `key`. Returns:
  ///   - OK with the value if a live version exists,
  ///   - NotFound (via `found_tombstone=true`) if the newest version is a
  ///     deletion,
  ///   - NotFound with `found_tombstone=false` if the key is absent entirely
  ///     (caller should consult older tables).
  Result<Bytes> Get(ByteView key, bool* found_tombstone) const;

  /// Approximate memory footprint for flush triggering.
  size_t ApproximateMemoryUsage() const;

  /// Number of entries (versions, not distinct keys).
  size_t EntryCount() const { return entries_; }

  /// Ordered forward iteration over all versions (for flush and merge).
  class Iterator {
   public:
    explicit Iterator(const MemTable* table);
    bool Valid() const;
    void SeekToFirst();
    /// Positions at the first internal key with user key >= `key`.
    void Seek(ByteView key);
    void Next();
    ByteView key() const;        ///< User key.
    ByteView value() const;      ///< Value bytes (empty for deletions).
    uint64_t sequence() const;
    ValueType type() const;

   private:
    friend class MemTable;
    const void* node_;           // SkipNode*
    const MemTable* table_;
  };

  Iterator NewIterator() const { return Iterator(this); }

 private:
  friend class Iterator;
  struct SkipNode;

  static constexpr int kMaxHeight = 12;

  int RandomHeight();
  // Finds the first node >= the given internal key, filling prev[] when
  // requested (insert path).
  SkipNode* FindGreaterOrEqual(ByteView key, uint64_t sequence,
                               SkipNode** prev) const;
  static int CompareInternal(ByteView key_a, uint64_t seq_a, ByteView key_b,
                             uint64_t seq_b);

  Arena arena_;
  SkipNode* head_;
  int max_height_ = 1;
  size_t entries_ = 0;
  Rng rng_;
};

}  // namespace porygon::storage

#endif  // PORYGON_STORAGE_MEMTABLE_H_
