#include "storage/memtable.h"

#include <cstring>

namespace porygon::storage {

// Skiplist node. Key/value bytes live in the arena right after the node.
// Ordering: user key ascending, then sequence number *descending* so the
// newest version of a key is encountered first.
struct MemTable::SkipNode {
  const uint8_t* key_data;
  uint32_t key_size;
  const uint8_t* value_data;
  uint32_t value_size;
  uint64_t sequence;
  ValueType type;
  int height;
  SkipNode* next[1];  // Over-allocated to `height`.

  ByteView key() const { return ByteView(key_data, key_size); }
  ByteView value() const { return ByteView(value_data, value_size); }
};

MemTable::MemTable() : rng_(0x5EED5EED) {
  size_t node_bytes =
      sizeof(SkipNode) + (kMaxHeight - 1) * sizeof(SkipNode*);
  head_ = reinterpret_cast<SkipNode*>(arena_.Allocate(node_bytes));
  head_->key_data = nullptr;
  head_->key_size = 0;
  head_->value_data = nullptr;
  head_->value_size = 0;
  head_->sequence = 0;
  head_->type = ValueType::kValue;
  head_->height = kMaxHeight;
  for (int i = 0; i < kMaxHeight; ++i) head_->next[i] = nullptr;
}

MemTable::~MemTable() = default;

int MemTable::RandomHeight() {
  // Geometric distribution with p = 1/4.
  int height = 1;
  while (height < kMaxHeight && (rng_.NextU64() & 3) == 0) ++height;
  return height;
}

int MemTable::CompareInternal(ByteView key_a, uint64_t seq_a, ByteView key_b,
                              uint64_t seq_b) {
  int c = key_a.Compare(key_b);
  if (c != 0) return c;
  // Same user key: higher sequence sorts first.
  if (seq_a > seq_b) return -1;
  if (seq_a < seq_b) return 1;
  return 0;
}

MemTable::SkipNode* MemTable::FindGreaterOrEqual(ByteView key,
                                                 uint64_t sequence,
                                                 SkipNode** prev) const {
  SkipNode* x = head_;
  int level = max_height_ - 1;
  while (true) {
    SkipNode* next = x->next[level];
    bool advance =
        next != nullptr &&
        CompareInternal(next->key(), next->sequence, key, sequence) < 0;
    if (advance) {
      x = next;
    } else {
      if (prev != nullptr) prev[level] = x;
      if (level == 0) return next;
      --level;
    }
  }
}

void MemTable::Add(uint64_t sequence, ValueType type, ByteView key,
                   ByteView value) {
  int height = RandomHeight();
  size_t node_bytes = sizeof(SkipNode) + (height - 1) * sizeof(SkipNode*);
  SkipNode* node = reinterpret_cast<SkipNode*>(arena_.Allocate(node_bytes));

  char* key_mem = arena_.Allocate(key.size() > 0 ? key.size() : 1);
  if (!key.empty()) std::memcpy(key_mem, key.data(), key.size());
  char* value_mem = arena_.Allocate(value.size() > 0 ? value.size() : 1);
  if (!value.empty()) std::memcpy(value_mem, value.data(), value.size());

  node->key_data = reinterpret_cast<const uint8_t*>(key_mem);
  node->key_size = static_cast<uint32_t>(key.size());
  node->value_data = reinterpret_cast<const uint8_t*>(value_mem);
  node->value_size = static_cast<uint32_t>(value.size());
  node->sequence = sequence;
  node->type = type;
  node->height = height;

  SkipNode* prev[kMaxHeight];
  for (int i = 0; i < kMaxHeight; ++i) prev[i] = head_;
  FindGreaterOrEqual(key, sequence, prev);

  if (height > max_height_) max_height_ = height;

  for (int i = 0; i < height; ++i) {
    node->next[i] = prev[i]->next[i];
    prev[i]->next[i] = node;
  }
  ++entries_;
}

Result<Bytes> MemTable::Get(ByteView key, bool* found_tombstone) const {
  *found_tombstone = false;
  // Seek with the maximum sequence so we land on the newest version.
  SkipNode* node =
      FindGreaterOrEqual(key, ~uint64_t{0}, nullptr);
  if (node == nullptr || !(node->key() == key)) {
    return Status::NotFound("key absent from memtable");
  }
  if (node->type == ValueType::kDeletion) {
    *found_tombstone = true;
    return Status::NotFound("tombstone");
  }
  return node->value().ToBytes();
}

size_t MemTable::ApproximateMemoryUsage() const {
  return arena_.MemoryUsage();
}

MemTable::Iterator::Iterator(const MemTable* table)
    : node_(nullptr), table_(table) {}

bool MemTable::Iterator::Valid() const { return node_ != nullptr; }

void MemTable::Iterator::SeekToFirst() {
  node_ = table_->head_->next[0];
}

void MemTable::Iterator::Seek(ByteView key) {
  node_ = table_->FindGreaterOrEqual(key, ~uint64_t{0}, nullptr);
}

void MemTable::Iterator::Next() {
  node_ = static_cast<const SkipNode*>(node_)->next[0];
}

ByteView MemTable::Iterator::key() const {
  return static_cast<const SkipNode*>(node_)->key();
}

ByteView MemTable::Iterator::value() const {
  return static_cast<const SkipNode*>(node_)->value();
}

uint64_t MemTable::Iterator::sequence() const {
  return static_cast<const SkipNode*>(node_)->sequence;
}

ValueType MemTable::Iterator::type() const {
  return static_cast<const SkipNode*>(node_)->type;
}

}  // namespace porygon::storage
