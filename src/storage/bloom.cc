#include "storage/bloom.h"

namespace porygon::storage {

uint64_t BloomHash(ByteView key) {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (uint8_t b : key) {
    h ^= b;
    h *= 0x100000001b3ULL;
  }
  // Final avalanche (splitmix-style) to decorrelate the double-hash probes.
  h ^= h >> 33;
  h *= 0xff51afd7ed558ccdULL;
  h ^= h >> 33;
  return h;
}

BloomFilterBuilder::BloomFilterBuilder(int bits_per_key)
    : bits_per_key_(bits_per_key) {}

void BloomFilterBuilder::Add(ByteView key) {
  key_hashes_.push_back(BloomHash(key));
}

Bytes BloomFilterBuilder::Finish() {
  // k = bits_per_key * ln(2), clamped to [1, 30].
  int k = static_cast<int>(bits_per_key_ * 0.69);
  if (k < 1) k = 1;
  if (k > 30) k = 30;

  size_t bits = key_hashes_.size() * static_cast<size_t>(bits_per_key_);
  if (bits < 64) bits = 64;
  size_t bytes = (bits + 7) / 8;
  bits = bytes * 8;

  Bytes out(bytes + 1, 0);
  for (uint64_t h : key_hashes_) {
    uint64_t delta = (h >> 33) | (h << 31);  // Second hash via rotation.
    for (int i = 0; i < k; ++i) {
      uint64_t bit = h % bits;
      out[bit / 8] |= static_cast<uint8_t>(1u << (bit % 8));
      h += delta;
    }
  }
  out[bytes] = static_cast<uint8_t>(k);
  return out;
}

bool BloomFilterReader::MayContain(ByteView key) const {
  if (data_.size() < 2) return true;  // Degenerate filter: cannot exclude.
  size_t bytes = data_.size() - 1;
  size_t bits = bytes * 8;
  int k = data_[bytes];
  if (k <= 0 || k > 30) return true;

  uint64_t h = BloomHash(key);
  uint64_t delta = (h >> 33) | (h << 31);
  for (int i = 0; i < k; ++i) {
    uint64_t bit = h % bits;
    if ((data_[bit / 8] & (1u << (bit % 8))) == 0) return false;
    h += delta;
  }
  return true;
}

}  // namespace porygon::storage
