#include "storage/bloom.h"

#include <algorithm>

#include "runtime/task_pool.h"

namespace porygon::storage {

uint64_t BloomHash(ByteView key) {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (uint8_t b : key) {
    h ^= b;
    h *= 0x100000001b3ULL;
  }
  // Final avalanche (splitmix-style) to decorrelate the double-hash probes.
  h ^= h >> 33;
  h *= 0xff51afd7ed558ccdULL;
  h ^= h >> 33;
  return h;
}

BloomFilterBuilder::BloomFilterBuilder(int bits_per_key)
    : bits_per_key_(bits_per_key) {}

void BloomFilterBuilder::Add(ByteView key) {
  key_hashes_.push_back(BloomHash(key));
}

size_t BloomFilterBuilder::PartitionCount(size_t keys) {
  // ~8K hashes per task; one task for small filters, capped fan-out for
  // huge ones. Depends only on the key count so the task schedule (and any
  // counter fed from it) is identical for every thread configuration.
  constexpr size_t kKeysPerTask = 8192;
  constexpr size_t kMaxTasks = 16;
  const size_t parts = (keys + kKeysPerTask - 1) / kKeysPerTask;
  return std::max<size_t>(1, std::min(parts, kMaxTasks));
}

Bytes BloomFilterBuilder::Finish() {
  // k = bits_per_key * ln(2), clamped to [1, 30].
  int k = static_cast<int>(bits_per_key_ * 0.69);
  if (k < 1) k = 1;
  if (k > 30) k = 30;

  size_t bits = key_hashes_.size() * static_cast<size_t>(bits_per_key_);
  if (bits < 64) bits = 64;
  size_t bytes = (bits + 7) / 8;
  bits = bytes * 8;

  auto set_bits = [&](Bytes* dst, size_t begin, size_t end) {
    for (size_t j = begin; j < end; ++j) {
      uint64_t h = key_hashes_[j];
      uint64_t delta = (h >> 33) | (h << 31);  // Second hash via rotation.
      for (int i = 0; i < k; ++i) {
        uint64_t bit = h % bits;
        (*dst)[bit / 8] |= static_cast<uint8_t>(1u << (bit % 8));
        h += delta;
      }
    }
  };

  Bytes out(bytes + 1, 0);
  const size_t parts = PartitionCount(key_hashes_.size());
  if (pool_ == nullptr || parts <= 1) {
    set_bits(&out, 0, key_hashes_.size());
  } else {
    // Each slice sets bits in its own array; OR-merge on the caller. The
    // result is bit-for-bit the serial filter.
    const size_t per = (key_hashes_.size() + parts - 1) / parts;
    std::vector<Bytes> local(parts);
    pool_->ParallelFor(parts, [&](size_t p) {
      local[p].assign(bytes, 0);
      const size_t begin = p * per;
      const size_t end = std::min(begin + per, key_hashes_.size());
      set_bits(&local[p], begin, end);
    });
    for (const Bytes& l : local) {
      for (size_t b = 0; b < bytes; ++b) out[b] |= l[b];
    }
  }
  out[bytes] = static_cast<uint8_t>(k);
  return out;
}

bool BloomFilterReader::MayContain(ByteView key) const {
  if (data_.size() < 2) return true;  // Degenerate filter: cannot exclude.
  size_t bytes = data_.size() - 1;
  size_t bits = bytes * 8;
  int k = data_[bytes];
  if (k <= 0 || k > 30) return true;

  uint64_t h = BloomHash(key);
  uint64_t delta = (h >> 33) | (h << 31);
  for (int i = 0; i < k; ++i) {
    uint64_t bit = h % bits;
    if ((data_[bit / 8] & (1u << (bit % 8))) == 0) return false;
    h += delta;
  }
  return true;
}

}  // namespace porygon::storage
