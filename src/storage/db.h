#ifndef PORYGON_STORAGE_DB_H_
#define PORYGON_STORAGE_DB_H_

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/status.h"
#include "obs/metrics.h"
#include "storage/env.h"
#include "storage/memtable.h"
#include "storage/sstable.h"
#include "storage/wal.h"

namespace porygon::runtime {
class TaskPool;
}  // namespace porygon::runtime

namespace porygon::storage {

struct DbOptions {
  /// Flush the memtable to an L0 SSTable beyond this footprint.
  size_t write_buffer_size = 1 << 20;
  /// Merge L0 into the single L1 sorted run at this many L0 tables.
  int l0_compaction_trigger = 4;
  /// fsync the WAL on every write (off in simulations; MemEnv is lossless).
  bool sync_writes = false;
  /// Optional registry receiving engine counters (db.wal_bytes, db.flushes,
  /// db.compactions, db.bloom_checks, ...). Series carry a {node:
  /// metrics_node} label so multiple Db instances stay distinguishable.
  obs::MetricsRegistry* metrics = nullptr;
  std::string metrics_node;
  /// Optional compute pool: SSTable compaction extraction and bloom-filter
  /// builds fan out on it at the sim-time of the triggering event. All
  /// on-disk bytes are identical with or without a pool (and for any thread
  /// count) — see src/runtime/task_pool.h for the determinism contract.
  runtime::TaskPool* pool = nullptr;
};

/// Embedded LSM key/value store: the per-storage-node database that replaces
/// the paper's MySQL instance. Two-level layout (L0 overlapping tables +
/// one L1 sorted run), WAL-backed crash recovery, bloom-filtered reads.
///
/// Not internally synchronized: each simulated storage node owns one Db and
/// the discrete-event engine serializes accesses.
class Db {
 public:
  /// Opens (and recovers) a database rooted at `dir` inside `env`.
  static Result<std::unique_ptr<Db>> Open(Env* env, const std::string& dir,
                                          const DbOptions& options = {});

  ~Db();
  Db(const Db&) = delete;
  Db& operator=(const Db&) = delete;

  Status Put(ByteView key, ByteView value);
  Status Delete(ByteView key);
  Result<Bytes> Get(ByteView key) const;

  /// An ordered group of mutations applied atomically: either every
  /// operation is durable (single WAL append) or none is. Storage nodes use
  /// this to apply a committed block's state changes as one unit.
  class WriteBatch {
   public:
    void Put(ByteView key, ByteView value);
    void Delete(ByteView key);
    size_t size() const { return ops_.size(); }
    void Clear() { ops_.clear(); }

   private:
    friend class Db;
    struct Op {
      ValueType type;
      Bytes key;
      Bytes value;
    };
    std::vector<Op> ops_;
  };

  /// Applies `batch` atomically (one WAL record covering all mutations).
  Status Write(const WriteBatch& batch);

  /// Invokes `fn(key, value)` for every live key in [start, end) in order.
  /// An empty `end` means "to the last key".
  Status Scan(ByteView start, ByteView end,
              const std::function<void(ByteView, ByteView)>& fn) const;

  /// Forces a memtable flush (testing and checkpointing).
  Status Flush();

  /// Merges everything into L1 (testing and space reclamation).
  Status CompactAll();

  struct Stats {
    size_t memtable_entries = 0;
    size_t memtable_bytes = 0;
    int l0_tables = 0;
    bool has_l1 = 0;
    uint64_t table_bytes = 0;  ///< Total SSTable data bytes.
    uint64_t sequence = 0;
  };
  Stats GetStats() const;

 private:
  Db(Env* env, std::string dir, DbOptions options);

  /// Hands the bloom counters to a freshly opened table reader and refreshes
  /// the db.l0_tables gauge; no-ops without a registry.
  void AttachTableMetrics(SstableReader* reader) const;
  void UpdateTableGauge();

  // Volatile wall-clock accounting around pool fan-outs (no-ops without a
  // pool or registry).
  uint64_t PoolWallUs() const;
  void RecordPoolWall(obs::Gauge* gauge, uint64_t wall_before) const;

  Status Recover();
  Status FlushLocked();
  Status MaybeCompact();
  Status WriteManifest() const;
  std::string TablePath(uint64_t number) const;
  std::string WalPath() const { return dir_ + "/wal.log"; }
  std::string ManifestPath() const { return dir_ + "/MANIFEST"; }

  // Collects the newest version of every key in [start,end) across all
  // sources into `out` (tombstones included).
  Status CollectRange(
      ByteView start, ByteView end,
      std::map<Bytes, std::pair<uint64_t, std::pair<ValueType, Bytes>>>* out)
      const;

  Env* env_;
  std::string dir_;
  DbOptions options_;

  std::unique_ptr<MemTable> memtable_;
  std::unique_ptr<WalWriter> wal_;
  uint64_t sequence_ = 0;
  uint64_t next_table_number_ = 1;

  struct TableHandle {
    uint64_t number;
    std::unique_ptr<SstableReader> reader;
  };
  std::vector<TableHandle> l0_;  // Oldest first; search newest first.
  std::unique_ptr<TableHandle> l1_;

  // Engine counters, resolved once in the constructor (null when
  // options_.metrics is unset).
  obs::Counter* wal_bytes_ = nullptr;
  obs::Counter* wal_records_ = nullptr;
  obs::Counter* flushes_ = nullptr;
  obs::Counter* compactions_ = nullptr;
  obs::Counter* bloom_checks_ = nullptr;
  obs::Counter* bloom_negatives_ = nullptr;
  obs::Gauge* l0_gauge_ = nullptr;
  // Pool instrumentation: deterministic task counts per phase, plus the
  // volatile (never-exported) per-phase wall-clock gauges.
  obs::Counter* runtime_compact_tasks_ = nullptr;
  obs::Counter* runtime_bloom_tasks_ = nullptr;
  obs::Gauge* runtime_compact_wall_us_ = nullptr;
  obs::Gauge* runtime_bloom_wall_us_ = nullptr;
};

}  // namespace porygon::storage

#endif  // PORYGON_STORAGE_DB_H_
