#ifndef PORYGON_STORAGE_WAL_H_
#define PORYGON_STORAGE_WAL_H_

#include <functional>
#include <memory>
#include <string>

#include "common/bytes.h"
#include "common/status.h"
#include "obs/metrics.h"
#include "storage/env.h"
#include "storage/memtable.h"

namespace porygon::storage {

/// Write-ahead log. Each record is
///   u32 masked-crc | u32 length | payload
/// where the payload encodes either one mutation:
///   u64 sequence | u8 type (0/1) | varint klen | key | varint vlen | value
/// or an atomic batch (type 2):
///   u64 first_sequence | u8 2 | varint count | {u8 type | key | value}*
/// Replay stops cleanly at the first torn/corrupt record, which is the
/// correct crash-recovery semantic (that record — and for batches, the
/// whole batch — never committed).
class WalWriter {
 public:
  static Result<std::unique_ptr<WalWriter>> Open(Env* env,
                                                 const std::string& path);

  Status AddRecord(uint64_t sequence, ValueType type, ByteView key,
                   ByteView value);

  /// One mutation inside an atomic batch.
  struct Op {
    ValueType type;
    ByteView key;
    ByteView value;
  };
  /// Appends an atomic batch as a single framed record: a crash either
  /// preserves the whole batch or none of it.
  Status AddBatchRecord(uint64_t first_sequence, const std::vector<Op>& ops);

  Status Sync();

  /// Mirrors append volume into registry counters (framed bytes written and
  /// records appended). Either pointer may be null; the Db re-attaches these
  /// after every WAL rotation.
  void set_metrics(obs::Counter* bytes, obs::Counter* records) {
    bytes_counter_ = bytes;
    records_counter_ = records;
  }

 private:
  explicit WalWriter(std::unique_ptr<WritableFile> file)
      : file_(std::move(file)) {}
  std::unique_ptr<WritableFile> file_;
  obs::Counter* bytes_counter_ = nullptr;
  obs::Counter* records_counter_ = nullptr;
};

/// One recovered mutation.
struct WalRecord {
  uint64_t sequence;
  ValueType type;
  Bytes key;
  Bytes value;
};

/// Replays `path`, invoking `fn` for each intact record in order. Returns
/// the highest sequence seen (0 if none). Missing file yields 0 records.
Result<uint64_t> WalReplay(Env* env, const std::string& path,
                           const std::function<void(const WalRecord&)>& fn);

}  // namespace porygon::storage

#endif  // PORYGON_STORAGE_WAL_H_
