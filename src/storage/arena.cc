#include "storage/arena.h"

namespace porygon::storage {

char* Arena::Allocate(size_t bytes) {
  // Keep allocations 8-byte aligned.
  bytes = (bytes + 7) & ~size_t{7};
  if (bytes > alloc_remaining_) {
    if (bytes > kBlockSize / 4) {
      // Large allocation gets its own block, preserving the current one.
      return AllocateNewBlock(bytes);
    }
    char* block = AllocateNewBlock(kBlockSize);
    alloc_ptr_ = block;
    alloc_remaining_ = kBlockSize;
  }
  char* result = alloc_ptr_;
  alloc_ptr_ += bytes;
  alloc_remaining_ -= bytes;
  return result;
}

char* Arena::AllocateNewBlock(size_t bytes) {
  blocks_.emplace_back(new char[bytes]);
  memory_usage_ += bytes + sizeof(char*);
  return blocks_.back().get();
}

}  // namespace porygon::storage
