#ifndef PORYGON_STORAGE_ARENA_H_
#define PORYGON_STORAGE_ARENA_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

namespace porygon::storage {

/// Bump allocator backing the memtable skiplist. Nodes and keys live until
/// the memtable is flushed and destroyed, so individual frees are never
/// needed and allocation is a pointer increment.
class Arena {
 public:
  Arena() = default;
  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Returns `bytes` of uninitialized memory (8-byte aligned).
  char* Allocate(size_t bytes);

  /// Total memory footprint, used for flush triggering.
  size_t MemoryUsage() const { return memory_usage_; }

 private:
  static constexpr size_t kBlockSize = 64 * 1024;

  char* AllocateNewBlock(size_t bytes);

  std::vector<std::unique_ptr<char[]>> blocks_;
  char* alloc_ptr_ = nullptr;
  size_t alloc_remaining_ = 0;
  size_t memory_usage_ = 0;
};

}  // namespace porygon::storage

#endif  // PORYGON_STORAGE_ARENA_H_
