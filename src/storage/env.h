#ifndef PORYGON_STORAGE_ENV_H_
#define PORYGON_STORAGE_ENV_H_

#include <memory>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/status.h"

namespace porygon::storage {

/// Append-only file handle.
class WritableFile {
 public:
  virtual ~WritableFile() = default;
  virtual Status Append(ByteView data) = 0;
  virtual Status Sync() = 0;
  virtual Status Close() = 0;
};

/// Positional-read file handle (SSTables).
class RandomAccessFile {
 public:
  virtual ~RandomAccessFile() = default;
  /// Reads up to `n` bytes at `offset`; short reads only at EOF.
  virtual Status Read(uint64_t offset, size_t n, Bytes* out) const = 0;
  virtual Result<uint64_t> Size() const = 0;
};

/// File-system abstraction in the LevelDB/RocksDB tradition. The database is
/// written against `Env` so that unit tests and the many storage-node
/// instances inside a simulation run on the in-memory implementation, while
/// examples that want durability use the POSIX one.
class Env {
 public:
  virtual ~Env() = default;

  virtual Result<std::unique_ptr<WritableFile>> NewWritableFile(
      const std::string& path) = 0;
  virtual Result<std::unique_ptr<RandomAccessFile>> NewRandomAccessFile(
      const std::string& path) = 0;
  /// Reads a whole file (WAL replay, MANIFEST).
  virtual Result<Bytes> ReadFile(const std::string& path) = 0;
  virtual bool FileExists(const std::string& path) = 0;
  virtual Status RemoveFile(const std::string& path) = 0;
  /// Atomically replaces `to` with `from`.
  virtual Status RenameFile(const std::string& from, const std::string& to) = 0;
  virtual Status CreateDirIfMissing(const std::string& path) = 0;
  /// Lists file names (not paths) directly under `dir`.
  virtual Result<std::vector<std::string>> ListDir(const std::string& dir) = 0;

  /// Process-wide POSIX environment.
  static Env* Default();
};

/// Fully in-memory Env; each instance is an isolated namespace. Used by
/// every storage node in simulations and by most tests.
class MemEnv : public Env {
 public:
  MemEnv();
  ~MemEnv() override;

  Result<std::unique_ptr<WritableFile>> NewWritableFile(
      const std::string& path) override;
  Result<std::unique_ptr<RandomAccessFile>> NewRandomAccessFile(
      const std::string& path) override;
  Result<Bytes> ReadFile(const std::string& path) override;
  bool FileExists(const std::string& path) override;
  Status RemoveFile(const std::string& path) override;
  Status RenameFile(const std::string& from, const std::string& to) override;
  Status CreateDirIfMissing(const std::string& path) override;
  Result<std::vector<std::string>> ListDir(const std::string& dir) override;

  /// Total bytes held across all files (storage-consumption accounting for
  /// Fig 9a).
  uint64_t TotalBytes() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace porygon::storage

#endif  // PORYGON_STORAGE_ENV_H_
