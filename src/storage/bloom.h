#ifndef PORYGON_STORAGE_BLOOM_H_
#define PORYGON_STORAGE_BLOOM_H_

#include <cstdint>

#include "common/bytes.h"

namespace porygon::runtime {
class TaskPool;
}  // namespace porygon::runtime

namespace porygon::storage {

/// Double-hashing Bloom filter over byte keys, serialized into SSTables so
/// point lookups can skip tables that cannot contain a key.
class BloomFilterBuilder {
 public:
  /// `bits_per_key` trades space for false-positive rate (10 ≈ 1%).
  explicit BloomFilterBuilder(int bits_per_key = 10);

  void Add(ByteView key);

  /// Serializes the filter (bit array + k in the last byte).
  ///
  /// With a pool attached, bit-setting fans out: the key hashes are split
  /// into `PartitionCount(keys)` slices, each slice ORs into its own local
  /// bit array, and the slices are OR-merged on the caller. OR is
  /// commutative, so the serialized bytes are identical to the serial
  /// build for any thread count.
  Bytes Finish();

  /// Fans Finish() out on `pool` (nullptr = serial build).
  void set_pool(runtime::TaskPool* pool) { pool_ = pool; }

  /// Number of pool tasks Finish() uses for `keys` hashes. Pure function of
  /// the key count (never of the thread count), so task counters derived
  /// from it stay deterministic.
  static size_t PartitionCount(size_t keys);

 private:
  int bits_per_key_;
  std::vector<uint64_t> key_hashes_;
  runtime::TaskPool* pool_ = nullptr;
};

/// Read-side view over a serialized filter.
class BloomFilterReader {
 public:
  /// `data` must outlive the reader.
  explicit BloomFilterReader(ByteView data) : data_(data) {}

  /// False means definitely absent; true means possibly present.
  bool MayContain(ByteView key) const;

 private:
  ByteView data_;
};

/// 64-bit FNV-1a style hash used by both sides of the filter.
uint64_t BloomHash(ByteView key);

}  // namespace porygon::storage

#endif  // PORYGON_STORAGE_BLOOM_H_
