#include "storage/wal.h"

#include "common/codec.h"
#include "common/crc32.h"

namespace porygon::storage {

Result<std::unique_ptr<WalWriter>> WalWriter::Open(Env* env,
                                                   const std::string& path) {
  PORYGON_ASSIGN_OR_RETURN(auto file, env->NewWritableFile(path));
  return std::unique_ptr<WalWriter>(new WalWriter(std::move(file)));
}

Status WalWriter::AddRecord(uint64_t sequence, ValueType type, ByteView key,
                            ByteView value) {
  Encoder payload;
  payload.PutU64(sequence);
  payload.PutU8(static_cast<uint8_t>(type));
  payload.PutBytes(key);
  payload.PutBytes(value);

  Encoder frame;
  frame.PutU32(Crc32cMask(Crc32c(payload.buffer())));
  frame.PutU32(static_cast<uint32_t>(payload.size()));
  frame.PutFixed(payload.buffer());
  if (bytes_counter_ != nullptr) bytes_counter_->Add(frame.size());
  if (records_counter_ != nullptr) records_counter_->Increment();
  return file_->Append(frame.buffer());
}

Status WalWriter::AddBatchRecord(uint64_t first_sequence,
                                 const std::vector<Op>& ops) {
  Encoder payload;
  payload.PutU64(first_sequence);
  payload.PutU8(2);  // Batch marker.
  payload.PutVarint(ops.size());
  for (const Op& op : ops) {
    payload.PutU8(static_cast<uint8_t>(op.type));
    payload.PutBytes(op.key);
    payload.PutBytes(op.value);
  }

  Encoder frame;
  frame.PutU32(Crc32cMask(Crc32c(payload.buffer())));
  frame.PutU32(static_cast<uint32_t>(payload.size()));
  frame.PutFixed(payload.buffer());
  if (bytes_counter_ != nullptr) bytes_counter_->Add(frame.size());
  if (records_counter_ != nullptr) records_counter_->Increment();
  return file_->Append(frame.buffer());
}

Status WalWriter::Sync() { return file_->Sync(); }

Result<uint64_t> WalReplay(Env* env, const std::string& path,
                           const std::function<void(const WalRecord&)>& fn) {
  if (!env->FileExists(path)) return uint64_t{0};
  PORYGON_ASSIGN_OR_RETURN(Bytes data, env->ReadFile(path));

  uint64_t max_sequence = 0;
  size_t off = 0;
  while (off + 8 <= data.size()) {
    uint32_t crc = LoadLittleEndian32(data.data() + off);
    uint32_t len = LoadLittleEndian32(data.data() + off + 4);
    if (off + 8 + len > data.size()) break;  // Torn tail record.
    ByteView payload(data.data() + off + 8, len);
    if (Crc32cMask(Crc32c(payload)) != crc) break;  // Corrupt: stop replay.

    Decoder dec(payload);
    auto seq = dec.GetU64();
    auto type = dec.GetU8();
    if (!seq.ok() || !type.ok() || *type > 2) break;

    if (*type == 2) {
      // Atomic batch: parse every sub-op before emitting any of them.
      auto count = dec.GetVarint();
      if (!count.ok()) break;
      std::vector<WalRecord> batch;
      bool bad = false;
      uint64_t next_seq = *seq;
      for (uint64_t i = 0; i < *count; ++i) {
        auto op_type = dec.GetU8();
        auto key = dec.GetBytes();
        auto value = dec.GetBytes();
        if (!op_type.ok() || !key.ok() || !value.ok() || *op_type > 1) {
          bad = true;
          break;
        }
        WalRecord rec;
        rec.sequence = next_seq++;
        rec.type = static_cast<ValueType>(*op_type);
        rec.key = std::move(*key);
        rec.value = std::move(*value);
        batch.push_back(std::move(rec));
      }
      if (bad) break;
      for (const WalRecord& rec : batch) {
        max_sequence = std::max(max_sequence, rec.sequence);
        fn(rec);
      }
      off += 8 + len;
      continue;
    }

    WalRecord rec;
    auto key = dec.GetBytes();
    auto value = dec.GetBytes();
    if (!key.ok() || !value.ok()) break;
    rec.sequence = *seq;
    rec.type = static_cast<ValueType>(*type);
    rec.key = std::move(*key);
    rec.value = std::move(*value);
    max_sequence = std::max(max_sequence, rec.sequence);
    fn(rec);
    off += 8 + len;
  }
  return max_sequence;
}

}  // namespace porygon::storage
