#ifndef PORYGON_STORAGE_SSTABLE_H_
#define PORYGON_STORAGE_SSTABLE_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/status.h"
#include "obs/metrics.h"
#include "storage/bloom.h"
#include "storage/env.h"
#include "storage/memtable.h"

namespace porygon::storage {

/// On-disk sorted-run format.
///
///   [data section]   entry*: varint klen | key | u8 type | u64 seq |
///                            varint vlen | value
///   [index section]  sparse index, one record per kIndexInterval entries:
///                    varint klen | key | u64 file offset
///   [bloom section]  serialized BloomFilter over user keys
///   [footer]         u64 index_off | u64 index_len | u64 bloom_off |
///                    u64 bloom_len | u64 entry_count | u32 crc(footer) |
///                    u64 magic
///
/// Entries are unique per user key within one table (the builder is fed a
/// deduplicated stream — newest version wins), sorted ascending.
class SstableBuilder {
 public:
  static constexpr int kIndexInterval = 16;
  static constexpr uint64_t kMagic = 0x706f7279676f6e31ULL;  // "porygon1"

  SstableBuilder(Env* env, std::string path);

  /// Adds the next entry; keys must arrive in strictly increasing order.
  Status Add(ByteView key, uint64_t sequence, ValueType type, ByteView value);

  /// Writes index/bloom/footer and closes the file.
  Status Finish();

  /// Fans the bloom-filter build inside Finish() out on `pool` (nullptr =
  /// serial; output bytes are identical either way).
  void set_pool(runtime::TaskPool* pool) { bloom_.set_pool(pool); }

  size_t entries_added() const { return entry_count_; }
  uint64_t file_size() const { return offset_; }

 private:
  Env* env_;
  std::string path_;
  std::unique_ptr<WritableFile> file_;
  Status open_status_;
  uint64_t offset_ = 0;
  size_t entry_count_ = 0;
  Bytes index_;
  BloomFilterBuilder bloom_;
  Bytes last_key_;
};

/// Immutable reader over a finished SSTable. Loads index + bloom into memory
/// at open; data is read on demand in index-group granules.
class SstableReader {
 public:
  struct Entry {
    Bytes key;
    Bytes value;
    uint64_t sequence;
    ValueType type;
  };

  static Result<std::unique_ptr<SstableReader>> Open(Env* env,
                                                     const std::string& path);

  /// Point lookup: the (single) version of `key` within this table.
  /// `found_tombstone` semantics match MemTable::Get.
  Result<Bytes> Get(ByteView key, bool* found_tombstone) const;

  /// Streams every entry in key order. `fn` returns false to stop early.
  Status ForEach(const std::function<bool(const Entry&)>& fn) const;

  size_t entry_count() const { return entry_count_; }
  uint64_t data_size() const { return index_offset_; }

  /// Mirrors bloom-filter effectiveness into registry counters (lookups
  /// consulting the filter, and lookups it short-circuited). Either pointer
  /// may be null. The hit rate is `1 - negatives / checks`.
  void set_bloom_metrics(obs::Counter* checks, obs::Counter* negatives) {
    bloom_checks_ = checks;
    bloom_negatives_ = negatives;
  }

 private:
  SstableReader() = default;

  // Parses one entry at `*offset` within `data`, advancing the offset.
  static Status ParseEntry(const Bytes& data, size_t* offset, Entry* out);

  std::unique_ptr<RandomAccessFile> file_;
  obs::Counter* bloom_checks_ = nullptr;
  obs::Counter* bloom_negatives_ = nullptr;
  uint64_t index_offset_ = 0;
  size_t entry_count_ = 0;
  Bytes bloom_raw_;
  // Decoded sparse index: (first key of group, file offset) per group.
  std::vector<std::pair<Bytes, uint64_t>> index_entries_;
};

}  // namespace porygon::storage

#endif  // PORYGON_STORAGE_SSTABLE_H_
