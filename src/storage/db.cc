#include "storage/db.h"

#include <algorithm>

#include "common/codec.h"
#include "common/log.h"
#include "runtime/task_pool.h"

namespace porygon::storage {

namespace {
std::string TableFileName(uint64_t number) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%06llu.sst",
                static_cast<unsigned long long>(number));
  return buf;
}
}  // namespace

Db::Db(Env* env, std::string dir, DbOptions options)
    : env_(env), dir_(std::move(dir)), options_(std::move(options)),
      memtable_(new MemTable()) {
  if (options_.metrics != nullptr) {
    obs::Labels labels;
    if (!options_.metrics_node.empty()) {
      labels.emplace_back("node", options_.metrics_node);
    }
    wal_bytes_ = options_.metrics->GetCounter("db.wal_bytes", labels);
    wal_records_ = options_.metrics->GetCounter("db.wal_records", labels);
    flushes_ = options_.metrics->GetCounter("db.flushes", labels);
    compactions_ = options_.metrics->GetCounter("db.compactions", labels);
    bloom_checks_ = options_.metrics->GetCounter("db.bloom_checks", labels);
    bloom_negatives_ =
        options_.metrics->GetCounter("db.bloom_negatives", labels);
    l0_gauge_ = options_.metrics->GetGauge("db.l0_tables", labels);
    // Pool phases aggregate across nodes (no node label), matching the
    // system-level runtime.tasks series. Task counts are deterministic;
    // wall time is volatile and excluded from exports.
    runtime_compact_tasks_ =
        options_.metrics->GetCounter("runtime.tasks", {{"phase", "compact"}});
    runtime_bloom_tasks_ =
        options_.metrics->GetCounter("runtime.tasks", {{"phase", "bloom"}});
    runtime_compact_wall_us_ = options_.metrics->GetVolatileGauge(
        "runtime.wall_us", {{"phase", "compact"}});
    runtime_bloom_wall_us_ = options_.metrics->GetVolatileGauge(
        "runtime.wall_us", {{"phase", "bloom"}});
  }
}

uint64_t Db::PoolWallUs() const {
  return options_.pool != nullptr ? options_.pool->wall_us() : 0;
}

void Db::RecordPoolWall(obs::Gauge* gauge, uint64_t wall_before) const {
  if (gauge != nullptr && options_.pool != nullptr) {
    gauge->Add(static_cast<double>(options_.pool->wall_us() - wall_before));
  }
}

void Db::AttachTableMetrics(SstableReader* reader) const {
  reader->set_bloom_metrics(bloom_checks_, bloom_negatives_);
}

void Db::UpdateTableGauge() {
  if (l0_gauge_ != nullptr) {
    l0_gauge_->Set(static_cast<double>(l0_.size()));
  }
}

Db::~Db() = default;

Result<std::unique_ptr<Db>> Db::Open(Env* env, const std::string& dir,
                                     const DbOptions& options) {
  PORYGON_RETURN_IF_ERROR(env->CreateDirIfMissing(dir));
  std::unique_ptr<Db> db(new Db(env, dir, options));
  PORYGON_RETURN_IF_ERROR(db->Recover());
  return db;
}

std::string Db::TablePath(uint64_t number) const {
  return dir_ + "/" + TableFileName(number);
}

Status Db::Recover() {
  // 1. Load the manifest (if any): level + table number per line.
  if (env_->FileExists(ManifestPath())) {
    PORYGON_ASSIGN_OR_RETURN(Bytes manifest, env_->ReadFile(ManifestPath()));
    Decoder dec(manifest);
    PORYGON_ASSIGN_OR_RETURN(uint64_t manifest_seq, dec.GetVarint());
    sequence_ = std::max(sequence_, manifest_seq);
    PORYGON_ASSIGN_OR_RETURN(uint64_t count, dec.GetVarint());
    for (uint64_t i = 0; i < count; ++i) {
      PORYGON_ASSIGN_OR_RETURN(uint64_t level, dec.GetVarint());
      PORYGON_ASSIGN_OR_RETURN(uint64_t number, dec.GetVarint());
      PORYGON_ASSIGN_OR_RETURN(auto reader,
                               SstableReader::Open(env_, TablePath(number)));
      AttachTableMetrics(reader.get());
      auto handle = std::make_unique<TableHandle>();
      handle->number = number;
      handle->reader = std::move(reader);
      next_table_number_ = std::max(next_table_number_, number + 1);
      if (level == 0) {
        l0_.push_back(std::move(*handle));
      } else {
        l1_ = std::move(handle);
      }
    }
  }

  // 2. Replay the WAL into a fresh memtable.
  PORYGON_ASSIGN_OR_RETURN(
      uint64_t max_seq,
      WalReplay(env_, WalPath(), [this](const WalRecord& rec) {
        memtable_->Add(rec.sequence, rec.type, rec.key, rec.value);
      }));
  sequence_ = std::max(sequence_, max_seq);

  // 3. Reopen the WAL for appending. MemEnv truncates on NewWritableFile, so
  // preserve replayed-but-unflushed data by flushing first when non-empty.
  if (memtable_->EntryCount() > 0) {
    PORYGON_RETURN_IF_ERROR(FlushLocked());
  }
  PORYGON_ASSIGN_OR_RETURN(wal_, WalWriter::Open(env_, WalPath()));
  wal_->set_metrics(wal_bytes_, wal_records_);
  UpdateTableGauge();
  return Status::Ok();
}

Status Db::WriteManifest() const {
  Encoder enc;
  enc.PutVarint(sequence_);  // Highest sequence covered by tables.
  uint64_t count = l0_.size() + (l1_ ? 1 : 0);
  enc.PutVarint(count);
  for (const auto& t : l0_) {
    enc.PutVarint(0);
    enc.PutVarint(t.number);
  }
  if (l1_) {
    enc.PutVarint(1);
    enc.PutVarint(l1_->number);
  }
  const std::string tmp = ManifestPath() + ".tmp";
  PORYGON_ASSIGN_OR_RETURN(auto file, env_->NewWritableFile(tmp));
  PORYGON_RETURN_IF_ERROR(file->Append(enc.buffer()));
  PORYGON_RETURN_IF_ERROR(file->Sync());
  PORYGON_RETURN_IF_ERROR(file->Close());
  return env_->RenameFile(tmp, ManifestPath());
}

Status Db::Put(ByteView key, ByteView value) {
  ++sequence_;
  PORYGON_RETURN_IF_ERROR(
      wal_->AddRecord(sequence_, ValueType::kValue, key, value));
  if (options_.sync_writes) PORYGON_RETURN_IF_ERROR(wal_->Sync());
  memtable_->Add(sequence_, ValueType::kValue, key, value);
  if (memtable_->ApproximateMemoryUsage() > options_.write_buffer_size) {
    PORYGON_RETURN_IF_ERROR(Flush());
  }
  return Status::Ok();
}

Status Db::Delete(ByteView key) {
  ++sequence_;
  PORYGON_RETURN_IF_ERROR(
      wal_->AddRecord(sequence_, ValueType::kDeletion, key, ByteView()));
  if (options_.sync_writes) PORYGON_RETURN_IF_ERROR(wal_->Sync());
  memtable_->Add(sequence_, ValueType::kDeletion, key, ByteView());
  if (memtable_->ApproximateMemoryUsage() > options_.write_buffer_size) {
    PORYGON_RETURN_IF_ERROR(Flush());
  }
  return Status::Ok();
}

void Db::WriteBatch::Put(ByteView key, ByteView value) {
  ops_.push_back({ValueType::kValue, key.ToBytes(), value.ToBytes()});
}

void Db::WriteBatch::Delete(ByteView key) {
  ops_.push_back({ValueType::kDeletion, key.ToBytes(), Bytes()});
}

Status Db::Write(const WriteBatch& batch) {
  if (batch.ops_.empty()) return Status::Ok();
  std::vector<WalWriter::Op> wal_ops;
  wal_ops.reserve(batch.ops_.size());
  for (const auto& op : batch.ops_) {
    wal_ops.push_back({op.type, op.key, op.value});
  }
  uint64_t first = sequence_ + 1;
  PORYGON_RETURN_IF_ERROR(wal_->AddBatchRecord(first, wal_ops));
  if (options_.sync_writes) PORYGON_RETURN_IF_ERROR(wal_->Sync());
  for (const auto& op : batch.ops_) {
    ++sequence_;
    memtable_->Add(sequence_, op.type, op.key, op.value);
  }
  if (memtable_->ApproximateMemoryUsage() > options_.write_buffer_size) {
    PORYGON_RETURN_IF_ERROR(Flush());
  }
  return Status::Ok();
}

Result<Bytes> Db::Get(ByteView key) const {
  bool tombstone = false;
  // Memtable first (newest data).
  auto from_mem = memtable_->Get(key, &tombstone);
  if (from_mem.ok()) return from_mem;
  if (tombstone) return Status::NotFound("deleted");

  // L0 newest-to-oldest.
  for (auto it = l0_.rbegin(); it != l0_.rend(); ++it) {
    auto r = it->reader->Get(key, &tombstone);
    if (r.ok()) return r;
    if (tombstone) return Status::NotFound("deleted");
    if (!r.status().IsNotFound()) return r.status();
  }

  // L1 last.
  if (l1_) {
    auto r = l1_->reader->Get(key, &tombstone);
    if (r.ok()) return r;
    if (tombstone) return Status::NotFound("deleted");
    if (!r.status().IsNotFound()) return r.status();
  }
  return Status::NotFound("key absent");
}

Status Db::CollectRange(
    ByteView start, ByteView end,
    std::map<Bytes, std::pair<uint64_t, std::pair<ValueType, Bytes>>>* out)
    const {
  auto in_range = [&](ByteView key) {
    if (!start.empty() && key.Compare(start) < 0) return false;
    if (!end.empty() && key.Compare(end) >= 0) return false;
    return true;
  };
  auto consider = [&](ByteView key, uint64_t seq, ValueType type,
                      ByteView value) {
    if (!in_range(key)) return;
    Bytes k = key.ToBytes();
    auto it = out->find(k);
    if (it == out->end() || it->second.first < seq) {
      (*out)[std::move(k)] = {seq, {type, value.ToBytes()}};
    }
  };

  // Order of application does not matter: sequence numbers arbitrate.
  if (l1_) {
    PORYGON_RETURN_IF_ERROR(
        l1_->reader->ForEach([&](const SstableReader::Entry& e) {
          consider(e.key, e.sequence, e.type, e.value);
          return true;
        }));
  }
  for (const auto& t : l0_) {
    PORYGON_RETURN_IF_ERROR(
        t.reader->ForEach([&](const SstableReader::Entry& e) {
          consider(e.key, e.sequence, e.type, e.value);
          return true;
        }));
  }
  auto it = memtable_->NewIterator();
  it.SeekToFirst();
  while (it.Valid()) {
    consider(it.key(), it.sequence(), it.type(), it.value());
    it.Next();
  }
  return Status::Ok();
}

Status Db::Scan(ByteView start, ByteView end,
                const std::function<void(ByteView, ByteView)>& fn) const {
  std::map<Bytes, std::pair<uint64_t, std::pair<ValueType, Bytes>>> merged;
  PORYGON_RETURN_IF_ERROR(CollectRange(start, end, &merged));
  for (const auto& [key, versioned] : merged) {
    if (versioned.second.first == ValueType::kValue) {
      fn(key, versioned.second.second);
    }
  }
  return Status::Ok();
}

Status Db::FlushLocked() {
  if (memtable_->EntryCount() == 0) return Status::Ok();
  if (flushes_ != nullptr) flushes_->Increment();

  uint64_t number = next_table_number_++;
  SstableBuilder builder(env_, TablePath(number));
  builder.set_pool(options_.pool);
  // The memtable orders same-key versions newest-first; emit only the first.
  Bytes last_key;
  bool have_last = false;
  auto it = memtable_->NewIterator();
  it.SeekToFirst();
  while (it.Valid()) {
    ByteView key = it.key();
    if (!have_last || !(ByteView(last_key) == key)) {
      PORYGON_RETURN_IF_ERROR(
          builder.Add(key, it.sequence(), it.type(), it.value()));
      last_key = key.ToBytes();
      have_last = true;
    }
    it.Next();
  }
  const uint64_t wall_before = PoolWallUs();
  PORYGON_RETURN_IF_ERROR(builder.Finish());
  RecordPoolWall(runtime_bloom_wall_us_, wall_before);
  if (runtime_bloom_tasks_ != nullptr) {
    runtime_bloom_tasks_->Add(
        BloomFilterBuilder::PartitionCount(builder.entries_added()));
  }

  PORYGON_ASSIGN_OR_RETURN(auto reader,
                           SstableReader::Open(env_, TablePath(number)));
  AttachTableMetrics(reader.get());
  l0_.push_back(TableHandle{number, std::move(reader)});
  UpdateTableGauge();
  PORYGON_RETURN_IF_ERROR(WriteManifest());

  // The flushed data is durable; start a fresh memtable and WAL.
  memtable_ = std::make_unique<MemTable>();
  PORYGON_ASSIGN_OR_RETURN(wal_, WalWriter::Open(env_, WalPath()));
  wal_->set_metrics(wal_bytes_, wal_records_);
  return MaybeCompact();
}

Status Db::Flush() { return FlushLocked(); }

Status Db::MaybeCompact() {
  if (static_cast<int>(l0_.size()) < options_.l0_compaction_trigger) {
    return Status::Ok();
  }
  return CompactAll();
}

Status Db::CompactAll() {
  if (l0_.empty() && !l1_) return Status::Ok();
  if (compactions_ != nullptr) compactions_->Increment();

  // Extract every table's entries, fanning out one task per table when a
  // pool is attached — readers are immutable and disjoint, and MemEnv
  // serves finished tables lock-free, so concurrent ForEach is safe. The
  // newest-wins merge stays serial: sequence numbers arbitrate, so the
  // merged map is identical regardless of extraction order.
  std::vector<const SstableReader*> tables;
  if (l1_) tables.push_back(l1_->reader.get());
  for (const auto& t : l0_) tables.push_back(t.reader.get());
  std::vector<std::vector<SstableReader::Entry>> extracted(tables.size());
  std::vector<Status> extract_status(tables.size(), Status::Ok());
  auto extract = [&](size_t i) {
    extract_status[i] =
        tables[i]->ForEach([&](const SstableReader::Entry& e) {
          extracted[i].push_back(e);
          return true;
        });
  };
  const uint64_t wall_before = PoolWallUs();
  if (options_.pool != nullptr) {
    options_.pool->ParallelFor(tables.size(), extract);
  } else {
    for (size_t i = 0; i < tables.size(); ++i) extract(i);
  }
  RecordPoolWall(runtime_compact_wall_us_, wall_before);
  if (runtime_compact_tasks_ != nullptr) {
    runtime_compact_tasks_->Add(tables.size());
  }
  for (const Status& s : extract_status) PORYGON_RETURN_IF_ERROR(s);

  // Merge newest-wins across all tables; a full compaction may drop
  // tombstones because nothing older remains underneath.
  std::map<Bytes, std::pair<uint64_t, std::pair<ValueType, Bytes>>> merged;
  for (const auto& entries : extracted) {
    for (const SstableReader::Entry& e : entries) {
      auto it = merged.find(e.key);
      if (it == merged.end() || it->second.first < e.sequence) {
        merged[e.key] = {e.sequence, {e.type, e.value}};
      }
    }
  }

  uint64_t number = next_table_number_++;
  SstableBuilder builder(env_, TablePath(number));
  builder.set_pool(options_.pool);
  for (const auto& [key, versioned] : merged) {
    if (versioned.second.first == ValueType::kDeletion) continue;
    PORYGON_RETURN_IF_ERROR(builder.Add(key, versioned.first,
                                        ValueType::kValue,
                                        versioned.second.second));
  }
  const uint64_t bloom_wall_before = PoolWallUs();
  PORYGON_RETURN_IF_ERROR(builder.Finish());
  RecordPoolWall(runtime_bloom_wall_us_, bloom_wall_before);
  if (runtime_bloom_tasks_ != nullptr) {
    runtime_bloom_tasks_->Add(
        BloomFilterBuilder::PartitionCount(builder.entries_added()));
  }

  std::vector<uint64_t> obsolete;
  for (const auto& t : l0_) obsolete.push_back(t.number);
  if (l1_) obsolete.push_back(l1_->number);
  l0_.clear();

  PORYGON_ASSIGN_OR_RETURN(auto reader,
                           SstableReader::Open(env_, TablePath(number)));
  AttachTableMetrics(reader.get());
  l1_ = std::make_unique<TableHandle>();
  l1_->number = number;
  l1_->reader = std::move(reader);
  UpdateTableGauge();
  PORYGON_RETURN_IF_ERROR(WriteManifest());

  for (uint64_t n : obsolete) {
    PORYGON_RETURN_IF_ERROR(env_->RemoveFile(TablePath(n)));
  }
  return Status::Ok();
}

Db::Stats Db::GetStats() const {
  Stats s;
  s.memtable_entries = memtable_->EntryCount();
  s.memtable_bytes = memtable_->ApproximateMemoryUsage();
  s.l0_tables = static_cast<int>(l0_.size());
  s.has_l1 = l1_ != nullptr;
  for (const auto& t : l0_) s.table_bytes += t.reader->data_size();
  if (l1_) s.table_bytes += l1_->reader->data_size();
  s.sequence = sequence_;
  return s;
}

}  // namespace porygon::storage
