#include "crypto/vrf.h"

namespace porygon::crypto {

namespace {
constexpr std::string_view kDomain = "porygon.vrf.v1";

Bytes DomainSeparate(ByteView input) {
  Bytes msg(kDomain.begin(), kDomain.end());
  msg.insert(msg.end(), input.begin(), input.end());
  return msg;
}
}  // namespace

VrfProof VrfProve(const PrivateKey& seed, ByteView input) {
  Bytes msg = DomainSeparate(input);
  VrfProof p;
  p.proof = Ed25519Sign(seed, msg);
  p.output = Sha256::Hash(ByteView(p.proof.data(), p.proof.size()));
  return p;
}

bool VrfVerify(const PublicKey& pub, ByteView input, const VrfProof& proof) {
  Bytes msg = DomainSeparate(input);
  if (!Ed25519Verify(pub, msg, proof.proof)) return false;
  return Sha256::Hash(ByteView(proof.proof.data(), proof.proof.size())) ==
         proof.output;
}

double VrfOutputToUnit(const Hash256& output) {
  // 53 uniform bits into [0, 1).
  uint64_t v = HashPrefixU64(output) >> 11;
  return static_cast<double>(v) * 0x1.0p-53;
}

uint32_t VrfOutputLastBits(const Hash256& output, int n) {
  if (n <= 0) return 0;
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= uint32_t{output[output.size() - 1 - i]} << (8 * i);
  }
  return v & ((uint32_t{1} << n) - 1);
}

}  // namespace porygon::crypto
