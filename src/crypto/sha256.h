#ifndef PORYGON_CRYPTO_SHA256_H_
#define PORYGON_CRYPTO_SHA256_H_

#include <array>
#include <cstdint>

#include "common/bytes.h"

namespace porygon::crypto {

/// 32-byte digest used for block hashes, transaction ids, Merkle nodes, and
/// VRF outputs.
using Hash256 = std::array<uint8_t, 32>;

/// Incremental SHA-256 (FIPS 180-4).
class Sha256 {
 public:
  Sha256();

  /// Absorbs more input; may be called repeatedly.
  void Update(ByteView data);

  /// Produces the digest. The object must not be used after Finish().
  Hash256 Finish();

  /// One-shot convenience.
  static Hash256 Hash(ByteView data);

  /// Hash of the concatenation of two inputs (Merkle inner nodes).
  static Hash256 HashPair(ByteView a, ByteView b);

 private:
  void Compress(const uint8_t block[64]);

  uint32_t state_[8];
  uint64_t length_ = 0;  // Total bytes absorbed.
  uint8_t buffer_[64];
  size_t buffered_ = 0;
};

/// Lexicographic comparison/formatting helpers for digests.
std::string HashToHex(const Hash256& h);
bool HashLess(const Hash256& a, const Hash256& b);

/// Interprets the first 8 bytes of `h` as a big-endian integer; used to
/// compare VRF outputs against sortition thresholds.
uint64_t HashPrefixU64(const Hash256& h);

/// All-zero digest constant (genesis parent links).
Hash256 ZeroHash();

}  // namespace porygon::crypto

#endif  // PORYGON_CRYPTO_SHA256_H_
