#include "crypto/provider.h"

#include <cstring>

#include "crypto/sha256.h"
#include "runtime/task_pool.h"

namespace porygon::crypto {

std::vector<uint8_t> CryptoProvider::VerifyBatch(
    const std::vector<VerifyJob>& jobs) {
  std::vector<uint8_t> ok(jobs.size(), 0);
  auto one = [&](size_t i) {
    const VerifyJob& j = jobs[i];
    ok[i] = Verify(j.pub, ByteView(j.message.data(), j.message.size()), j.sig)
                ? 1
                : 0;
  };
  if (pool_ == nullptr) {
    for (size_t i = 0; i < jobs.size(); ++i) one(i);
  } else {
    pool_->ParallelFor(jobs.size(), one);
  }
  return ok;
}

std::vector<uint8_t> CryptoProvider::VerifyProofBatch(
    const std::vector<ProofVerifyJob>& jobs) {
  std::vector<uint8_t> ok(jobs.size(), 0);
  auto one = [&](size_t i) {
    const ProofVerifyJob& j = jobs[i];
    ok[i] =
        VerifyProof(j.pub, ByteView(j.input.data(), j.input.size()), j.proof)
            ? 1
            : 0;
  };
  if (pool_ == nullptr) {
    for (size_t i = 0; i < jobs.size(); ++i) one(i);
  } else {
    pool_->ParallelFor(jobs.size(), one);
  }
  return ok;
}

KeyPair Ed25519Provider::GenerateKeyPair(Rng* rng) {
  return Ed25519GenerateKeyPair(rng);
}

Signature Ed25519Provider::Sign(const PrivateKey& priv, ByteView message) {
  return Ed25519Sign(priv, message);
}

bool Ed25519Provider::Verify(const PublicKey& pub, ByteView message,
                             const Signature& sig) {
  return Ed25519Verify(pub, message, sig);
}

VrfProof Ed25519Provider::Prove(const PrivateKey& priv, ByteView input) {
  return VrfProve(priv, input);
}

bool Ed25519Provider::VerifyProof(const PublicKey& pub, ByteView input,
                                  const VrfProof& proof) {
  return VrfVerify(pub, input, proof);
}

size_t FastProvider::KeyHash::operator()(const PublicKey& k) const {
  uint64_t v;
  std::memcpy(&v, k.data(), sizeof(v));
  return static_cast<size_t>(v);
}

namespace {
Signature FastTag(const PrivateKey& priv, ByteView message) {
  Sha256 h;
  h.Update(ByteView(priv.data(), priv.size()));
  h.Update(message);
  Hash256 tag = h.Finish();
  Signature sig;
  std::memcpy(sig.data(), tag.data(), 32);
  // Second half binds the tag again under a tweaked prefix so that the
  // signature is 64 bytes like Ed25519 (sizes drive the bandwidth model).
  Sha256 h2;
  const uint8_t tweak = 0x5a;
  h2.Update(ByteView(&tweak, 1));
  h2.Update(ByteView(tag.data(), tag.size()));
  Hash256 tag2 = h2.Finish();
  std::memcpy(sig.data() + 32, tag2.data(), 32);
  return sig;
}
}  // namespace

KeyPair FastProvider::GenerateKeyPair(Rng* rng) {
  PrivateKey seed;
  Bytes random = rng->NextBytes(seed.size());
  std::memcpy(seed.data(), random.data(), seed.size());
  // Public key is a hash of the seed: unique, unlinkable, and 32 bytes.
  Hash256 pub_hash = Sha256::Hash(ByteView(seed.data(), seed.size()));
  PublicKey pub;
  std::memcpy(pub.data(), pub_hash.data(), 32);
  {
    std::lock_guard<std::mutex> lock(mu_);
    registry_[pub] = seed;
  }
  return KeyPair{seed, pub};
}

Signature FastProvider::Sign(const PrivateKey& priv, ByteView message) {
  return FastTag(priv, message);
}

bool FastProvider::Verify(const PublicKey& pub, ByteView message,
                          const Signature& sig) {
  PrivateKey priv;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = registry_.find(pub);
    if (it == registry_.end()) return false;
    priv = it->second;
  }
  return FastTag(priv, message) == sig;
}

VrfProof FastProvider::Prove(const PrivateKey& priv, ByteView input) {
  Bytes msg = ToBytes("porygon.vrf.v1");
  msg.insert(msg.end(), input.begin(), input.end());
  VrfProof p;
  p.proof = FastTag(priv, msg);
  p.output = Sha256::Hash(ByteView(p.proof.data(), p.proof.size()));
  return p;
}

bool FastProvider::VerifyProof(const PublicKey& pub, ByteView input,
                               const VrfProof& proof) {
  Bytes msg = ToBytes("porygon.vrf.v1");
  msg.insert(msg.end(), input.begin(), input.end());
  if (!Verify(pub, msg, proof.proof)) return false;
  return Sha256::Hash(ByteView(proof.proof.data(), proof.proof.size())) ==
         proof.output;
}

}  // namespace porygon::crypto
