#ifndef PORYGON_CRYPTO_PROVIDER_H_
#define PORYGON_CRYPTO_PROVIDER_H_

#include <memory>
#include <mutex>
#include <unordered_map>

#include "common/bytes.h"
#include "crypto/ed25519.h"
#include "crypto/vrf.h"

namespace porygon::crypto {

/// Abstract signing/verification backend. The protocol engine is written
/// against this interface so that:
///   - prototype-scale runs and all tests use real Ed25519 (`Ed25519Provider`)
///   - large simulations swap in `FastProvider`, whose tags are SHA-256 MACs
///     resolved through an in-process key registry. The fast backend keeps
///     the exact message/signature sizes (64-byte tags) so the network cost
///     model is unchanged; only CPU cost differs.
class CryptoProvider {
 public:
  virtual ~CryptoProvider() = default;

  /// Creates an identity; the provider may record it for verification.
  virtual KeyPair GenerateKeyPair(Rng* rng) = 0;

  virtual Signature Sign(const PrivateKey& priv, ByteView message) = 0;
  virtual bool Verify(const PublicKey& pub, ByteView message,
                      const Signature& sig) = 0;

  /// VRF evaluation/verification consistent with Sign/Verify.
  virtual VrfProof Prove(const PrivateKey& priv, ByteView input) = 0;
  virtual bool VerifyProof(const PublicKey& pub, ByteView input,
                           const VrfProof& proof) = 0;
};

/// Real Ed25519 + hash-based VRF.
class Ed25519Provider : public CryptoProvider {
 public:
  KeyPair GenerateKeyPair(Rng* rng) override;
  Signature Sign(const PrivateKey& priv, ByteView message) override;
  bool Verify(const PublicKey& pub, ByteView message,
              const Signature& sig) override;
  VrfProof Prove(const PrivateKey& priv, ByteView input) override;
  bool VerifyProof(const PublicKey& pub, ByteView input,
                   const VrfProof& proof) override;
};

/// Simulation-only backend: tag = SHA-256(priv || message) replicated to 64
/// bytes; verification looks the private key up from the public key in a
/// registry. Honest-node simulations never forge, so this preserves protocol
/// behaviour while cutting CPU cost by ~three orders of magnitude.
class FastProvider : public CryptoProvider {
 public:
  KeyPair GenerateKeyPair(Rng* rng) override;
  Signature Sign(const PrivateKey& priv, ByteView message) override;
  bool Verify(const PublicKey& pub, ByteView message,
              const Signature& sig) override;
  VrfProof Prove(const PrivateKey& priv, ByteView input) override;
  bool VerifyProof(const PublicKey& pub, ByteView input,
                   const VrfProof& proof) override;

 private:
  struct KeyHash {
    size_t operator()(const PublicKey& k) const;
  };

  std::mutex mu_;
  std::unordered_map<PublicKey, PrivateKey, KeyHash> registry_;
};

}  // namespace porygon::crypto

#endif  // PORYGON_CRYPTO_PROVIDER_H_
