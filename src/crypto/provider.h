#ifndef PORYGON_CRYPTO_PROVIDER_H_
#define PORYGON_CRYPTO_PROVIDER_H_

#include <memory>
#include <mutex>
#include <unordered_map>

#include <vector>

#include "common/bytes.h"
#include "crypto/ed25519.h"
#include "crypto/vrf.h"

namespace porygon::runtime {
class TaskPool;
}  // namespace porygon::runtime

namespace porygon::crypto {

/// Abstract signing/verification backend. The protocol engine is written
/// against this interface so that:
///   - prototype-scale runs and all tests use real Ed25519 (`Ed25519Provider`)
///   - large simulations swap in `FastProvider`, whose tags are SHA-256 MACs
///     resolved through an in-process key registry. The fast backend keeps
///     the exact message/signature sizes (64-byte tags) so the network cost
///     model is unchanged; only CPU cost differs.
class CryptoProvider {
 public:
  virtual ~CryptoProvider() = default;

  /// Creates an identity; the provider may record it for verification.
  virtual KeyPair GenerateKeyPair(Rng* rng) = 0;

  virtual Signature Sign(const PrivateKey& priv, ByteView message) = 0;
  virtual bool Verify(const PublicKey& pub, ByteView message,
                      const Signature& sig) = 0;

  /// VRF evaluation/verification consistent with Sign/Verify.
  virtual VrfProof Prove(const PrivateKey& priv, ByteView input) = 0;
  virtual bool VerifyProof(const PublicKey& pub, ByteView input,
                           const VrfProof& proof) = 0;

  // --- Batch verification --------------------------------------------------
  // Independent verifications fan out on the attached TaskPool; results come
  // back in job order, so callers observe exactly what a serial loop over
  // Verify/VerifyProof would produce (byte-identical for any thread count).
  // Jobs own their message bytes: callers may batch across messages that go
  // out of scope before the batch runs.
  struct VerifyJob {
    PublicKey pub;
    Bytes message;
    Signature sig;
  };
  struct ProofVerifyJob {
    PublicKey pub;
    Bytes input;
    VrfProof proof;
  };

  /// One result byte per job (1 = valid), in job order. Runs serially when
  /// no pool is attached. Elements use uint8_t, not bool: parallel writers
  /// need one addressable byte per index.
  std::vector<uint8_t> VerifyBatch(const std::vector<VerifyJob>& jobs);
  std::vector<uint8_t> VerifyProofBatch(
      const std::vector<ProofVerifyJob>& jobs);

  /// Attaches the pool batch entry points fan out on (nullptr = serial).
  /// Implementations' Verify/VerifyProof must be safe to call concurrently
  /// once a pool is attached (both shipped providers are).
  void SetTaskPool(runtime::TaskPool* pool) { pool_ = pool; }
  runtime::TaskPool* task_pool() const { return pool_; }

 private:
  runtime::TaskPool* pool_ = nullptr;
};

/// Real Ed25519 + hash-based VRF.
class Ed25519Provider : public CryptoProvider {
 public:
  KeyPair GenerateKeyPair(Rng* rng) override;
  Signature Sign(const PrivateKey& priv, ByteView message) override;
  bool Verify(const PublicKey& pub, ByteView message,
              const Signature& sig) override;
  VrfProof Prove(const PrivateKey& priv, ByteView input) override;
  bool VerifyProof(const PublicKey& pub, ByteView input,
                   const VrfProof& proof) override;
};

/// Simulation-only backend: tag = SHA-256(priv || message) replicated to 64
/// bytes; verification looks the private key up from the public key in a
/// registry. Honest-node simulations never forge, so this preserves protocol
/// behaviour while cutting CPU cost by ~three orders of magnitude.
class FastProvider : public CryptoProvider {
 public:
  KeyPair GenerateKeyPair(Rng* rng) override;
  Signature Sign(const PrivateKey& priv, ByteView message) override;
  bool Verify(const PublicKey& pub, ByteView message,
              const Signature& sig) override;
  VrfProof Prove(const PrivateKey& priv, ByteView input) override;
  bool VerifyProof(const PublicKey& pub, ByteView input,
                   const VrfProof& proof) override;

 private:
  struct KeyHash {
    size_t operator()(const PublicKey& k) const;
  };

  std::mutex mu_;
  std::unordered_map<PublicKey, PrivateKey, KeyHash> registry_;
};

}  // namespace porygon::crypto

#endif  // PORYGON_CRYPTO_PROVIDER_H_
