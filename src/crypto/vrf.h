#ifndef PORYGON_CRYPTO_VRF_H_
#define PORYGON_CRYPTO_VRF_H_

#include "common/bytes.h"
#include "crypto/ed25519.h"
#include "crypto/sha256.h"

namespace porygon::crypto {

/// Verifiable Random Function built from deterministic Ed25519 signatures,
/// following Algorand's construction: the proof is Sig_sk(input) and the
/// output is H(proof). Anyone can recompute the output from the proof and
/// check it against the public key.
///
/// Caveat (documented per the paper's §IV-B3 committee formation): an honest
/// signer's output is unique and unpredictable, which is all the committee
/// sortition in Porygon requires; a fully unbiased VRF for adversarial
/// provers would need ECVRF, which is out of scope for this simulator.
struct VrfProof {
  Signature proof;   ///< Ed25519 signature over the domain-separated input.
  Hash256 output;    ///< SHA-256 of the proof; the sortition value.
};

/// Evaluates the VRF on `input` (domain-separated).
VrfProof VrfProve(const PrivateKey& seed, ByteView input);

/// Checks that `proof` is a valid VRF proof for (pub, input) and that
/// `output` equals H(proof).
bool VrfVerify(const PublicKey& pub, ByteView input, const VrfProof& proof);

/// Maps a VRF output to a uniform value in [0, 1) for threshold comparisons
/// (committee selection: "smallest values form the Ordering Committee").
double VrfOutputToUnit(const Hash256& output);

/// Last `n` bits of the VRF output, used to assign a node to one of 2^n
/// Execution Sub-Committees (shards), mirroring account sharding.
uint32_t VrfOutputLastBits(const Hash256& output, int n);

}  // namespace porygon::crypto

#endif  // PORYGON_CRYPTO_VRF_H_
