#ifndef PORYGON_CRYPTO_SC25519_H_
#define PORYGON_CRYPTO_SC25519_H_

#include <array>
#include <cstdint>

#include "common/bytes.h"

namespace porygon::crypto {

/// Scalar modulo the Ed25519 group order
/// l = 2^252 + 27742317777372353535851937790883648493, stored as a canonical
/// 32-byte little-endian value. Arithmetic goes through a small schoolbook
/// bignum; scalars are tiny and operations per signature are few, so
/// simplicity wins over speed here.
using Scalar = std::array<uint8_t, 32>;

/// Reduces a 64-byte little-endian value mod l (RFC 8032 "sc_reduce").
Scalar ScReduce64(const uint8_t in[64]);

/// Reduces a 32-byte little-endian value mod l.
Scalar ScReduce32(const uint8_t in[32]);

/// (a * b + c) mod l (RFC 8032 "sc_muladd").
Scalar ScMulAdd(const Scalar& a, const Scalar& b, const Scalar& c);

/// True iff the 32-byte little-endian value is strictly below l (i.e. it is a
/// canonical scalar). Verification rejects non-canonical S to rule out
/// signature malleability.
bool ScIsCanonical(const uint8_t in[32]);

/// True iff the scalar is zero.
bool ScIsZero(const Scalar& s);

/// The scalar 1 (convenience: ScMulAdd(ScalarOne(), a, b) computes a+b).
Scalar ScalarOne();

}  // namespace porygon::crypto

#endif  // PORYGON_CRYPTO_SC25519_H_
