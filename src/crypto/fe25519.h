#ifndef PORYGON_CRYPTO_FE25519_H_
#define PORYGON_CRYPTO_FE25519_H_

#include <array>
#include <cstdint>

namespace porygon::crypto {

/// Field element of GF(2^255 - 19), represented as five 51-bit limbs in
/// little-endian order (value = sum v[i] * 2^(51*i)). Operations keep limbs
/// below 2^54 so that 128-bit accumulators cannot overflow during
/// multiplication. This implementation favours auditable simplicity over
/// constant-time execution: Porygon is a protocol simulator, not a wallet,
/// so side-channel resistance is explicitly out of scope (documented in
/// README).
struct Fe25519 {
  uint64_t v[5];
};

/// Additive identity.
Fe25519 FeZero();
/// Multiplicative identity.
Fe25519 FeOne();
/// Small constant (for 121665/121666 etc.).
Fe25519 FeFromU64(uint64_t x);

Fe25519 FeAdd(const Fe25519& a, const Fe25519& b);
Fe25519 FeSub(const Fe25519& a, const Fe25519& b);
Fe25519 FeNeg(const Fe25519& a);
Fe25519 FeMul(const Fe25519& a, const Fe25519& b);
Fe25519 FeSquare(const Fe25519& a);

/// a^(2^255 - 21) — the multiplicative inverse (Fermat). FeInvert(0) == 0.
Fe25519 FeInvert(const Fe25519& a);

/// Generic square-and-multiply with a 255-bit little-endian exponent.
Fe25519 FePow(const Fe25519& base, const std::array<uint8_t, 32>& exp_le);

/// a^((p-5)/8) — the core of the square-root computation used by point
/// decompression.
Fe25519 FePowPMinus5Div8(const Fe25519& a);

/// Canonical little-endian encoding (fully reduced below p).
std::array<uint8_t, 32> FeToBytes(const Fe25519& a);

/// Loads 32 little-endian bytes, ignoring the top bit (the Ed25519 sign bit).
/// Values >= p are accepted and treated mod p.
Fe25519 FeFromBytes(const uint8_t bytes[32]);

/// True iff the canonical encoding is all zero.
bool FeIsZero(const Fe25519& a);
/// Parity of the canonical value (lsb of the encoding) — the Ed25519 "sign".
bool FeIsNegative(const Fe25519& a);
/// Canonical equality.
bool FeEqual(const Fe25519& a, const Fe25519& b);

/// sqrt(-1) mod p, computed once as 2^((p-1)/4).
const Fe25519& FeSqrtM1();

/// The twisted-Edwards constant d = -121665/121666 mod p.
const Fe25519& FeEdwardsD();

}  // namespace porygon::crypto

#endif  // PORYGON_CRYPTO_FE25519_H_
