#include "crypto/ed25519.h"

#include <cstring>
#include <optional>

#include "crypto/fe25519.h"
#include "crypto/sc25519.h"
#include "crypto/sha512.h"

namespace porygon::crypto {

namespace {

// Point on the twisted Edwards curve -x^2 + y^2 = 1 + d x^2 y^2 in extended
// coordinates: x = X/Z, y = Y/Z, T = XY/Z.
struct GePoint {
  Fe25519 x, y, z, t;
};

GePoint GeIdentity() {
  return GePoint{FeZero(), FeOne(), FeOne(), FeZero()};
}

// Unified addition (add-2008-hwcd-3 with a = -1). Complete on Ed25519
// because -1 is square and d is non-square mod p, so it also serves as the
// doubling formula.
GePoint GeAdd(const GePoint& p, const GePoint& q) {
  static const Fe25519 k2d = FeAdd(FeEdwardsD(), FeEdwardsD());
  Fe25519 a = FeMul(FeSub(p.y, p.x), FeSub(q.y, q.x));
  Fe25519 b = FeMul(FeAdd(p.y, p.x), FeAdd(q.y, q.x));
  Fe25519 c = FeMul(FeMul(p.t, k2d), q.t);
  Fe25519 d = FeMul(FeAdd(p.z, p.z), q.z);
  Fe25519 e = FeSub(b, a);
  Fe25519 f = FeSub(d, c);
  Fe25519 g = FeAdd(d, c);
  Fe25519 h = FeAdd(b, a);
  GePoint r;
  r.x = FeMul(e, f);
  r.y = FeMul(g, h);
  r.t = FeMul(e, h);
  r.z = FeMul(f, g);
  return r;
}

GePoint GeNeg(const GePoint& p) {
  GePoint r;
  r.x = FeNeg(p.x);
  r.y = p.y;
  r.z = p.z;
  r.t = FeNeg(p.t);
  return r;
}

// MSB-first double-and-add. Not constant time (see fe25519.h rationale).
GePoint GeScalarMul(const Scalar& s, const GePoint& p) {
  GePoint acc = GeIdentity();
  bool started = false;
  for (int byte = 31; byte >= 0; --byte) {
    for (int bit = 7; bit >= 0; --bit) {
      if (started) acc = GeAdd(acc, acc);
      if ((s[byte] >> bit) & 1) {
        acc = GeAdd(acc, p);
        started = true;
      }
    }
  }
  return acc;
}

std::array<uint8_t, 32> GeEncode(const GePoint& p) {
  Fe25519 zinv = FeInvert(p.z);
  Fe25519 x = FeMul(p.x, zinv);
  Fe25519 y = FeMul(p.y, zinv);
  auto out = FeToBytes(y);
  if (FeIsNegative(x)) out[31] |= 0x80;
  return out;
}

// Decompresses a point; empty optional if the encoding is not on the curve.
std::optional<GePoint> GeDecode(const uint8_t bytes[32]) {
  Fe25519 y = FeFromBytes(bytes);
  bool sign = (bytes[31] & 0x80) != 0;

  // x^2 = (y^2 - 1) / (d y^2 + 1). Compute the candidate square root via
  // x = u v^3 (u v^7)^((p-5)/8) where u = y^2-1, v = d y^2+1.
  Fe25519 y2 = FeSquare(y);
  Fe25519 u = FeSub(y2, FeOne());
  Fe25519 v = FeAdd(FeMul(FeEdwardsD(), y2), FeOne());

  Fe25519 v3 = FeMul(FeSquare(v), v);
  Fe25519 v7 = FeMul(FeSquare(v3), v);
  Fe25519 x = FeMul(FeMul(u, v3), FePowPMinus5Div8(FeMul(u, v7)));

  Fe25519 vx2 = FeMul(v, FeSquare(x));
  if (!FeEqual(vx2, u)) {
    if (FeEqual(vx2, FeNeg(u))) {
      x = FeMul(x, FeSqrtM1());
    } else {
      return std::nullopt;  // Not a quadratic residue: invalid point.
    }
  }
  if (FeIsZero(x) && sign) return std::nullopt;  // -0 is not canonical.
  if (FeIsNegative(x) != sign) x = FeNeg(x);

  GePoint p;
  p.x = x;
  p.y = y;
  p.z = FeOne();
  p.t = FeMul(x, y);
  return p;
}

// The standard base point: y = 4/5, even x.
const GePoint& GeBase() {
  static const GePoint kBase = [] {
    Fe25519 y = FeMul(FeFromU64(4), FeInvert(FeFromU64(5)));
    auto enc = FeToBytes(y);  // Sign bit 0 selects the even-x root.
    auto p = GeDecode(enc.data());
    return *p;  // The base point always decodes.
  }();
  return kBase;
}

// Clamps the lower half of the SHA-512 key expansion per RFC 8032.
Scalar ClampScalar(const uint8_t h[32]) {
  Scalar a;
  std::memcpy(a.data(), h, 32);
  a[0] &= 0xf8;
  a[31] &= 0x7f;
  a[31] |= 0x40;
  return a;
}

}  // namespace

PublicKey Ed25519DerivePublicKey(const PrivateKey& seed) {
  Hash512 h = Sha512::Hash(ByteView(seed.data(), seed.size()));
  Scalar a = ClampScalar(h.data());
  return GeEncode(GeScalarMul(a, GeBase()));
}

KeyPair Ed25519KeyPairFromSeed(const PrivateKey& seed) {
  return KeyPair{seed, Ed25519DerivePublicKey(seed)};
}

KeyPair Ed25519GenerateKeyPair(Rng* rng) {
  PrivateKey seed;
  Bytes random = rng->NextBytes(seed.size());
  std::memcpy(seed.data(), random.data(), seed.size());
  return Ed25519KeyPairFromSeed(seed);
}

Signature Ed25519Sign(const PrivateKey& seed, ByteView message) {
  Hash512 h = Sha512::Hash(ByteView(seed.data(), seed.size()));
  Scalar a = ClampScalar(h.data());
  PublicKey pub = GeEncode(GeScalarMul(a, GeBase()));

  // r = H(prefix || M) mod l, deterministic nonce.
  Sha512 hr;
  hr.Update(ByteView(h.data() + 32, 32));
  hr.Update(message);
  Hash512 r64 = hr.Finish();
  Scalar r = ScReduce64(r64.data());

  auto r_enc = GeEncode(GeScalarMul(r, GeBase()));

  // k = H(R || A || M) mod l.
  Sha512 hk;
  hk.Update(ByteView(r_enc.data(), r_enc.size()));
  hk.Update(ByteView(pub.data(), pub.size()));
  hk.Update(message);
  Hash512 k64 = hk.Finish();
  Scalar k = ScReduce64(k64.data());

  Scalar s = ScMulAdd(k, a, r);

  Signature sig;
  std::memcpy(sig.data(), r_enc.data(), 32);
  std::memcpy(sig.data() + 32, s.data(), 32);
  return sig;
}

bool Ed25519Verify(const PublicKey& pub, ByteView message,
                   const Signature& sig) {
  if (!ScIsCanonical(sig.data() + 32)) return false;

  auto a_point = GeDecode(pub.data());
  if (!a_point) return false;
  auto r_point = GeDecode(sig.data());
  if (!r_point) return false;

  Sha512 hk;
  hk.Update(ByteView(sig.data(), 32));
  hk.Update(ByteView(pub.data(), pub.size()));
  hk.Update(message);
  Hash512 k64 = hk.Finish();
  Scalar k = ScReduce64(k64.data());

  Scalar s;
  std::memcpy(s.data(), sig.data() + 32, 32);

  // Check [S]B == R + [k]A, i.e. [S]B + [k](-A) == R.
  GePoint sb = GeScalarMul(s, GeBase());
  GePoint ka = GeScalarMul(k, GeNeg(*a_point));
  GePoint check = GeAdd(sb, ka);
  return GeEncode(check) == GeEncode(*r_point);
}

namespace ed25519_internal {
bool BasePointHasExpectedOrder() {
  // [l]B must be the identity; [1]B must not be.
  const uint8_t l_le[32] = {0xed, 0xd3, 0xf5, 0x5c, 0x1a, 0x63, 0x12, 0x58,
                            0xd6, 0x9c, 0xf7, 0xa2, 0xde, 0xf9, 0xde, 0x14,
                            0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,
                            0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x10};
  Scalar l;
  std::memcpy(l.data(), l_le, 32);
  GePoint lb = GeScalarMul(l, GeBase());
  auto enc = GeEncode(lb);
  auto id = GeEncode(GeIdentity());
  return enc == id;
}
}  // namespace ed25519_internal

}  // namespace porygon::crypto
