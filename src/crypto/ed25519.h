#ifndef PORYGON_CRYPTO_ED25519_H_
#define PORYGON_CRYPTO_ED25519_H_

#include <array>
#include <cstdint>

#include "common/bytes.h"
#include "common/rng.h"
#include "common/status.h"

namespace porygon::crypto {

/// 32-byte Ed25519 seed (the RFC 8032 private key).
using PrivateKey = std::array<uint8_t, 32>;
/// 32-byte compressed public point.
using PublicKey = std::array<uint8_t, 32>;
/// 64-byte signature (R || S).
using Signature = std::array<uint8_t, 64>;

/// A node identity: seed plus derived public key.
struct KeyPair {
  PrivateKey private_key;
  PublicKey public_key;
};

/// Derives the public key for `seed` per RFC 8032.
PublicKey Ed25519DerivePublicKey(const PrivateKey& seed);

/// Deterministic keypair from an explicit 32-byte seed.
KeyPair Ed25519KeyPairFromSeed(const PrivateKey& seed);

/// Keypair with a seed drawn from `rng` (tests/simulations only; not a CSPRNG).
KeyPair Ed25519GenerateKeyPair(Rng* rng);

/// Signs `message` with the expanded seed (RFC 8032 Ed25519, no context).
Signature Ed25519Sign(const PrivateKey& seed, ByteView message);

/// Verifies `sig` over `message` under `pub`. Rejects non-canonical S
/// (malleability) and undecodable points.
bool Ed25519Verify(const PublicKey& pub, ByteView message,
                   const Signature& sig);

namespace ed25519_internal {
/// Exposed for tests: group-level sanity checks without going through
/// sign/verify (e.g. that the base point has order l).
bool BasePointHasExpectedOrder();
}  // namespace ed25519_internal

}  // namespace porygon::crypto

#endif  // PORYGON_CRYPTO_ED25519_H_
