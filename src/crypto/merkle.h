#ifndef PORYGON_CRYPTO_MERKLE_H_
#define PORYGON_CRYPTO_MERKLE_H_

#include <vector>

#include "crypto/sha256.h"

namespace porygon::crypto {

/// Merkle root over an ordered list of hashes (binary; odd nodes pair with
/// themselves). Empty list hashes to ZeroHash(). Used for transaction-block
/// tx roots and for aggregating shard subtree roots into the global state
/// root.
Hash256 ComputeMerkleRoot(const std::vector<Hash256>& leaves);

/// Audit path for leaf `index` within `leaves` (bottom-up sibling list).
std::vector<Hash256> ComputeMerklePath(const std::vector<Hash256>& leaves,
                                       size_t index);

/// Verifies that `leaf` at `index` is under `root` given `path`.
bool VerifyMerklePath(const Hash256& root, const Hash256& leaf, size_t index,
                      const std::vector<Hash256>& path);

}  // namespace porygon::crypto

#endif  // PORYGON_CRYPTO_MERKLE_H_
