#ifndef PORYGON_CRYPTO_SHA512_H_
#define PORYGON_CRYPTO_SHA512_H_

#include <array>
#include <cstdint>

#include "common/bytes.h"

namespace porygon::crypto {

using Hash512 = std::array<uint8_t, 64>;

/// Incremental SHA-512 (FIPS 180-4). Needed by Ed25519 (RFC 8032 uses
/// SHA-512 for key expansion and the challenge hash).
class Sha512 {
 public:
  Sha512();

  void Update(ByteView data);
  Hash512 Finish();

  static Hash512 Hash(ByteView data);

 private:
  void Compress(const uint8_t block[128]);

  uint64_t state_[8];
  uint64_t length_ = 0;  // Total bytes absorbed (< 2^61, ample here).
  uint8_t buffer_[128];
  size_t buffered_ = 0;
};

}  // namespace porygon::crypto

#endif  // PORYGON_CRYPTO_SHA512_H_
