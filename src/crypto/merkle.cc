#include "crypto/merkle.h"

namespace porygon::crypto {

namespace {
Hash256 Pair(const Hash256& a, const Hash256& b) {
  return Sha256::HashPair(ByteView(a.data(), a.size()),
                          ByteView(b.data(), b.size()));
}
}  // namespace

Hash256 ComputeMerkleRoot(const std::vector<Hash256>& leaves) {
  if (leaves.empty()) return ZeroHash();
  std::vector<Hash256> level = leaves;
  while (level.size() > 1) {
    std::vector<Hash256> next;
    next.reserve((level.size() + 1) / 2);
    for (size_t i = 0; i + 1 < level.size(); i += 2) {
      next.push_back(Pair(level[i], level[i + 1]));
    }
    if (level.size() % 2 == 1) {
      next.push_back(Pair(level.back(), level.back()));
    }
    level = std::move(next);
  }
  return level[0];
}

std::vector<Hash256> ComputeMerklePath(const std::vector<Hash256>& leaves,
                                       size_t index) {
  std::vector<Hash256> path;
  if (leaves.empty() || index >= leaves.size()) return path;
  std::vector<Hash256> level = leaves;
  size_t pos = index;
  while (level.size() > 1) {
    size_t sibling = (pos % 2 == 0) ? pos + 1 : pos - 1;
    if (sibling >= level.size()) sibling = pos;  // Odd self-pairing.
    path.push_back(level[sibling]);

    std::vector<Hash256> next;
    next.reserve((level.size() + 1) / 2);
    for (size_t i = 0; i + 1 < level.size(); i += 2) {
      next.push_back(Pair(level[i], level[i + 1]));
    }
    if (level.size() % 2 == 1) {
      next.push_back(Pair(level.back(), level.back()));
    }
    level = std::move(next);
    pos /= 2;
  }
  return path;
}

bool VerifyMerklePath(const Hash256& root, const Hash256& leaf, size_t index,
                      const std::vector<Hash256>& path) {
  Hash256 hash = leaf;
  size_t pos = index;
  for (const Hash256& sibling : path) {
    hash = (pos % 2 == 0) ? Pair(hash, sibling) : Pair(sibling, hash);
    pos /= 2;
  }
  return hash == root;
}

}  // namespace porygon::crypto
