#include "crypto/sc25519.h"

#include <cstring>

namespace porygon::crypto {

namespace {

// 544-bit accumulator as 17 x u32 limbs, little-endian: enough for the
// product of two 256-bit scalars plus an addend.
struct Big {
  uint32_t w[17];
};

Big BigZero() {
  Big b;
  std::memset(b.w, 0, sizeof(b.w));
  return b;
}

Big BigFromBytes(const uint8_t* bytes, size_t n) {
  Big b = BigZero();
  for (size_t i = 0; i < n && i < 4 * 17; ++i) {
    b.w[i / 4] |= uint32_t{bytes[i]} << (8 * (i % 4));
  }
  return b;
}

// l as a Big.
const Big& GroupOrder() {
  static const Big kL = [] {
    // l = 2^252 + 0x14def9dea2f79cd65812631a5cf5d3ed.
    const uint8_t le[32] = {0xed, 0xd3, 0xf5, 0x5c, 0x1a, 0x63, 0x12, 0x58,
                            0xd6, 0x9c, 0xf7, 0xa2, 0xde, 0xf9, 0xde, 0x14,
                            0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,
                            0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x10};
    return BigFromBytes(le, 32);
  }();
  return kL;
}

int BigCompare(const Big& a, const Big& b) {
  for (int i = 16; i >= 0; --i) {
    if (a.w[i] > b.w[i]) return 1;
    if (a.w[i] < b.w[i]) return -1;
  }
  return 0;
}

void BigSub(Big* a, const Big& b) {
  uint64_t borrow = 0;
  for (int i = 0; i < 17; ++i) {
    uint64_t d = uint64_t{a->w[i]} - b.w[i] - borrow;
    a->w[i] = static_cast<uint32_t>(d);
    borrow = (d >> 32) & 1;
  }
}

// a <<= 1.
void BigShiftLeft1(Big* a) {
  uint32_t carry = 0;
  for (int i = 0; i < 17; ++i) {
    uint32_t next = a->w[i] >> 31;
    a->w[i] = (a->w[i] << 1) | carry;
    carry = next;
  }
}

int BigBitLength(const Big& a) {
  for (int i = 16; i >= 0; --i) {
    if (a.w[i] != 0) {
      int bits = 32 * i;
      uint32_t v = a.w[i];
      while (v) {
        ++bits;
        v >>= 1;
      }
      return bits;
    }
  }
  return 0;
}

bool BigBit(const Big& a, int bit) {
  return (a.w[bit / 32] >> (bit % 32)) & 1;
}

// a mod l via binary long division (shift-subtract from the MSB down).
Big BigModL(const Big& a) {
  const Big& l = GroupOrder();
  Big rem = BigZero();
  for (int bit = BigBitLength(a) - 1; bit >= 0; --bit) {
    BigShiftLeft1(&rem);
    if (BigBit(a, bit)) rem.w[0] |= 1;
    if (BigCompare(rem, l) >= 0) BigSub(&rem, l);
  }
  return rem;
}

Big BigMul(const Big& a, const Big& b) {
  // Inputs are < 2^256, so only the low 8 limbs of each participate and the
  // 17-limb result cannot overflow.
  Big r = BigZero();
  for (int i = 0; i < 8; ++i) {
    uint64_t carry = 0;
    for (int j = 0; j < 8; ++j) {
      uint64_t cur = uint64_t{a.w[i]} * b.w[j] + r.w[i + j] + carry;
      r.w[i + j] = static_cast<uint32_t>(cur);
      carry = cur >> 32;
    }
    int k = i + 8;
    while (carry != 0 && k < 17) {
      uint64_t cur = uint64_t{r.w[k]} + carry;
      r.w[k] = static_cast<uint32_t>(cur);
      carry = cur >> 32;
      ++k;
    }
  }
  return r;
}

Big BigAdd(const Big& a, const Big& b) {
  Big r;
  uint64_t carry = 0;
  for (int i = 0; i < 17; ++i) {
    uint64_t cur = uint64_t{a.w[i]} + b.w[i] + carry;
    r.w[i] = static_cast<uint32_t>(cur);
    carry = cur >> 32;
  }
  return r;
}

Scalar BigToScalar(const Big& a) {
  Scalar s;
  for (int i = 0; i < 32; ++i) {
    s[i] = static_cast<uint8_t>(a.w[i / 4] >> (8 * (i % 4)));
  }
  return s;
}

}  // namespace

Scalar ScReduce64(const uint8_t in[64]) {
  return BigToScalar(BigModL(BigFromBytes(in, 64)));
}

Scalar ScReduce32(const uint8_t in[32]) {
  return BigToScalar(BigModL(BigFromBytes(in, 32)));
}

Scalar ScMulAdd(const Scalar& a, const Scalar& b, const Scalar& c) {
  Big prod = BigMul(BigFromBytes(a.data(), 32), BigFromBytes(b.data(), 32));
  Big sum = BigAdd(prod, BigFromBytes(c.data(), 32));
  return BigToScalar(BigModL(sum));
}

bool ScIsCanonical(const uint8_t in[32]) {
  Big v = BigFromBytes(in, 32);
  return BigCompare(v, GroupOrder()) < 0;
}

Scalar ScalarOne() {
  Scalar s{};
  s[0] = 1;
  return s;
}

bool ScIsZero(const Scalar& s) {
  uint8_t acc = 0;
  for (uint8_t b : s) acc |= b;
  return acc == 0;
}

}  // namespace porygon::crypto
