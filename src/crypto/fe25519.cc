#include "crypto/fe25519.h"

#include <cstring>

namespace porygon::crypto {

namespace {
using U128 = unsigned __int128;

constexpr uint64_t kMask51 = (uint64_t{1} << 51) - 1;

// Propagates carries so every limb ends below 2^51 (plus a possibly tiny
// excess in limb 0 after the wrap, fixed by a second pass).
void Carry(Fe25519* f) {
  for (int pass = 0; pass < 2; ++pass) {
    uint64_t c = 0;
    for (int i = 0; i < 5; ++i) {
      f->v[i] += c;
      c = f->v[i] >> 51;
      f->v[i] &= kMask51;
    }
    f->v[0] += c * 19;
  }
}
}  // namespace

Fe25519 FeZero() { return Fe25519{{0, 0, 0, 0, 0}}; }
Fe25519 FeOne() { return Fe25519{{1, 0, 0, 0, 0}}; }

Fe25519 FeFromU64(uint64_t x) {
  Fe25519 f{{x & kMask51, x >> 51, 0, 0, 0}};
  return f;
}

Fe25519 FeAdd(const Fe25519& a, const Fe25519& b) {
  Fe25519 r;
  for (int i = 0; i < 5; ++i) r.v[i] = a.v[i] + b.v[i];
  Carry(&r);
  return r;
}

Fe25519 FeSub(const Fe25519& a, const Fe25519& b) {
  // a + 2p - b keeps limbs non-negative: 2p has limbs (2^52-38, 2^52-2, ...).
  Fe25519 r;
  r.v[0] = a.v[0] + ((uint64_t{1} << 52) - 38) - b.v[0];
  for (int i = 1; i < 5; ++i) {
    r.v[i] = a.v[i] + ((uint64_t{1} << 52) - 2) - b.v[i];
  }
  Carry(&r);
  return r;
}

Fe25519 FeNeg(const Fe25519& a) { return FeSub(FeZero(), a); }

Fe25519 FeMul(const Fe25519& a, const Fe25519& b) {
  const uint64_t a0 = a.v[0], a1 = a.v[1], a2 = a.v[2], a3 = a.v[3],
                 a4 = a.v[4];
  const uint64_t b0 = b.v[0], b1 = b.v[1], b2 = b.v[2], b3 = b.v[3],
                 b4 = b.v[4];

  U128 t0 = (U128)a0 * b0 +
            (U128)19 * ((U128)a1 * b4 + (U128)a2 * b3 + (U128)a3 * b2 +
                        (U128)a4 * b1);
  U128 t1 = (U128)a0 * b1 + (U128)a1 * b0 +
            (U128)19 * ((U128)a2 * b4 + (U128)a3 * b3 + (U128)a4 * b2);
  U128 t2 = (U128)a0 * b2 + (U128)a1 * b1 + (U128)a2 * b0 +
            (U128)19 * ((U128)a3 * b4 + (U128)a4 * b3);
  U128 t3 = (U128)a0 * b3 + (U128)a1 * b2 + (U128)a2 * b1 + (U128)a3 * b0 +
            (U128)19 * ((U128)a4 * b4);
  U128 t4 = (U128)a0 * b4 + (U128)a1 * b3 + (U128)a2 * b2 + (U128)a3 * b1 +
            (U128)a4 * b0;

  Fe25519 r;
  uint64_t c;
  r.v[0] = (uint64_t)t0 & kMask51;
  c = (uint64_t)(t0 >> 51);
  t1 += c;
  r.v[1] = (uint64_t)t1 & kMask51;
  c = (uint64_t)(t1 >> 51);
  t2 += c;
  r.v[2] = (uint64_t)t2 & kMask51;
  c = (uint64_t)(t2 >> 51);
  t3 += c;
  r.v[3] = (uint64_t)t3 & kMask51;
  c = (uint64_t)(t3 >> 51);
  t4 += c;
  r.v[4] = (uint64_t)t4 & kMask51;
  c = (uint64_t)(t4 >> 51);
  r.v[0] += c * 19;
  Carry(&r);
  return r;
}

Fe25519 FeSquare(const Fe25519& a) { return FeMul(a, a); }

Fe25519 FePow(const Fe25519& base, const std::array<uint8_t, 32>& exp_le) {
  Fe25519 result = FeOne();
  bool started = false;
  for (int byte = 31; byte >= 0; --byte) {
    for (int bit = 7; bit >= 0; --bit) {
      if (started) result = FeSquare(result);
      if ((exp_le[byte] >> bit) & 1) {
        if (started) {
          result = FeMul(result, base);
        } else {
          result = base;
          started = true;
        }
      }
    }
  }
  return started ? result : FeOne();
}

namespace {
// Little-endian byte arrays for the exponents we need; all share the pattern
// "mostly 0xff" so they are built rather than transcribed.
std::array<uint8_t, 32> ExpPMinus2() {
  std::array<uint8_t, 32> e;
  e.fill(0xff);
  e[0] = 0xeb;  // p - 2 = 2^255 - 21.
  e[31] = 0x7f;
  return e;
}

std::array<uint8_t, 32> ExpPMinus5Div8() {
  // (p - 5) / 8 = 2^252 - 3.
  std::array<uint8_t, 32> e;
  e.fill(0xff);
  e[0] = 0xfd;
  e[31] = 0x0f;
  return e;
}

std::array<uint8_t, 32> ExpPMinus1Div4() {
  // (p - 1) / 4 = 2^253 - 5.
  std::array<uint8_t, 32> e;
  e.fill(0xff);
  e[0] = 0xfb;
  e[31] = 0x1f;
  return e;
}
}  // namespace

Fe25519 FeInvert(const Fe25519& a) { return FePow(a, ExpPMinus2()); }

Fe25519 FePowPMinus5Div8(const Fe25519& a) {
  return FePow(a, ExpPMinus5Div8());
}

std::array<uint8_t, 32> FeToBytes(const Fe25519& a) {
  Fe25519 t = a;
  Carry(&t);
  // Pack limbs into a 256-bit integer (4 x u64), then reduce below p with at
  // most three conditional subtractions.
  uint64_t w[4];
  w[0] = t.v[0] | (t.v[1] << 51);
  w[1] = (t.v[1] >> 13) | (t.v[2] << 38);
  w[2] = (t.v[2] >> 26) | (t.v[3] << 25);
  w[3] = (t.v[3] >> 39) | (t.v[4] << 12);
  // p = 2^255 - 19 as 4 x u64 little-endian words.
  const uint64_t kP[4] = {0xffffffffffffffedULL, 0xffffffffffffffffULL,
                          0xffffffffffffffffULL, 0x7fffffffffffffffULL};
  auto geq_p = [&]() {
    for (int i = 3; i >= 0; --i) {
      if (w[i] > kP[i]) return true;
      if (w[i] < kP[i]) return false;
    }
    return true;  // equal
  };
  auto sub_p = [&]() {
    unsigned __int128 borrow = 0;
    for (int i = 0; i < 4; ++i) {
      unsigned __int128 d =
          (unsigned __int128)w[i] - kP[i] - (uint64_t)borrow;
      w[i] = (uint64_t)d;
      borrow = (d >> 64) & 1;
    }
  };
  for (int i = 0; i < 3 && geq_p(); ++i) sub_p();

  std::array<uint8_t, 32> out;
  for (int i = 0; i < 4; ++i) {
    for (int j = 0; j < 8; ++j) {
      out[8 * i + j] = (uint8_t)(w[i] >> (8 * j));
    }
  }
  return out;
}

Fe25519 FeFromBytes(const uint8_t bytes[32]) {
  uint64_t w[4];
  for (int i = 0; i < 4; ++i) {
    w[i] = 0;
    for (int j = 7; j >= 0; --j) {
      w[i] = (w[i] << 8) | bytes[8 * i + j];
    }
  }
  w[3] &= 0x7fffffffffffffffULL;  // Drop the sign bit.
  Fe25519 f;
  f.v[0] = w[0] & kMask51;
  f.v[1] = ((w[0] >> 51) | (w[1] << 13)) & kMask51;
  f.v[2] = ((w[1] >> 38) | (w[2] << 26)) & kMask51;
  f.v[3] = ((w[2] >> 25) | (w[3] << 39)) & kMask51;
  f.v[4] = (w[3] >> 12) & kMask51;
  return f;
}

bool FeIsZero(const Fe25519& a) {
  auto b = FeToBytes(a);
  uint8_t acc = 0;
  for (uint8_t x : b) acc |= x;
  return acc == 0;
}

bool FeIsNegative(const Fe25519& a) { return FeToBytes(a)[0] & 1; }

bool FeEqual(const Fe25519& a, const Fe25519& b) {
  return FeToBytes(a) == FeToBytes(b);
}

const Fe25519& FeSqrtM1() {
  static const Fe25519 kSqrtM1 = FePow(FeFromU64(2), ExpPMinus1Div4());
  return kSqrtM1;
}

const Fe25519& FeEdwardsD() {
  static const Fe25519 kD =
      FeMul(FeNeg(FeFromU64(121665)), FeInvert(FeFromU64(121666)));
  return kD;
}

}  // namespace porygon::crypto
