#ifndef PORYGON_STATE_ACCOUNT_H_
#define PORYGON_STATE_ACCOUNT_H_

#include <cstdint>

#include "common/bytes.h"
#include "common/status.h"

namespace porygon::state {

/// Account identifier. The paper shards accounts by the last N digits of
/// their IDs; we use the last N *bits* of this 64-bit id.
using AccountId = uint64_t;

/// Account-based state: balance plus a nonce for replay protection
/// ("duplicate transactions ... are abandoned", §IV-C1(c)).
struct Account {
  uint64_t balance = 0;
  uint64_t nonce = 0;

  bool operator==(const Account&) const = default;
};

/// Shard index of an account under 2^n_bits shards.
inline uint32_t ShardOfAccount(AccountId id, int n_bits) {
  if (n_bits <= 0) return 0;
  return static_cast<uint32_t>(id & ((uint64_t{1} << n_bits) - 1));
}

/// 16-byte little-endian encoding (balance | nonce).
Bytes EncodeAccount(const Account& account);
Result<Account> DecodeAccount(ByteView data);

/// Canonical 8-byte little-endian key for the state tree / storage engine.
Bytes AccountKey(AccountId id);
Result<AccountId> DecodeAccountKey(ByteView data);

}  // namespace porygon::state

#endif  // PORYGON_STATE_ACCOUNT_H_
