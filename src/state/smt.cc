#include "state/smt.h"

#include <cstring>

#include "common/codec.h"

namespace porygon::state {

using crypto::Hash256;
using crypto::Sha256;

namespace {
// Domain tags keep leaf and inner hashes from colliding.
constexpr uint8_t kLeafTag = 0x00;
constexpr uint8_t kInnerTag = 0x01;
constexpr uint8_t kEmptyTag = 0x02;

Hash256 InnerHash(const Hash256& left, const Hash256& right) {
  Sha256 h;
  h.Update(ByteView(&kInnerTag, 1));
  h.Update(ByteView(left.data(), left.size()));
  h.Update(ByteView(right.data(), right.size()));
  return h.Finish();
}
}  // namespace

Bytes MerkleProof::Encode() const {
  Bytes out;
  out.reserve(siblings.size() * 32);
  for (const auto& s : siblings) out.insert(out.end(), s.begin(), s.end());
  return out;
}

Result<MerkleProof> MerkleProof::Decode(ByteView data) {
  if (data.size() % 32 != 0) {
    return Status::Corruption("proof length not a multiple of 32");
  }
  MerkleProof p;
  p.siblings.resize(data.size() / 32);
  for (size_t i = 0; i < p.siblings.size(); ++i) {
    std::memcpy(p.siblings[i].data(), data.data() + 32 * i, 32);
  }
  return p;
}

Hash256 SparseMerkleTree::LeafHash(uint64_t key, ByteView value) {
  if (value.empty()) return Defaults()[kDepth];
  Encoder enc;
  enc.PutU64(key);
  Sha256 h;
  h.Update(ByteView(&kLeafTag, 1));
  h.Update(enc.buffer());
  h.Update(value);
  return h.Finish();
}

const std::array<Hash256, SparseMerkleTree::kDepth + 1>&
SparseMerkleTree::Defaults() {
  static const std::array<Hash256, kDepth + 1>* defaults = [] {
    auto* d = new std::array<Hash256, kDepth + 1>();
    (*d)[kDepth] = Sha256::Hash(ByteView(&kEmptyTag, 1));
    for (int level = kDepth - 1; level >= 0; --level) {
      (*d)[level] = InnerHash((*d)[level + 1], (*d)[level + 1]);
    }
    return d;
  }();
  return *defaults;
}

SparseMerkleTree::SparseMerkleTree() : nodes_(kDepth + 1) {}

Hash256 SparseMerkleTree::NodeAt(int level, uint64_t prefix) const {
  auto it = nodes_[level].find(prefix);
  if (it != nodes_[level].end()) return it->second;
  return Defaults()[level];
}

void SparseMerkleTree::Put(uint64_t key, ByteView value) {
  if (value.empty()) {
    leaves_.erase(key);
  } else {
    leaves_[key] = value.ToBytes();
  }

  Hash256 hash = LeafHash(key, value);
  uint64_t prefix = key;
  for (int level = kDepth; level >= 0; --level) {
    if (hash == Defaults()[level]) {
      nodes_[level].erase(prefix);
    } else {
      nodes_[level][prefix] = hash;
    }
    if (level == 0) break;
    uint64_t sibling = prefix ^ 1;
    Hash256 sibling_hash = NodeAt(level, sibling);
    hash = (prefix & 1) ? InnerHash(sibling_hash, hash)
                        : InnerHash(hash, sibling_hash);
    prefix >>= 1;
  }
}

void SparseMerkleTree::PutBatch(
    const std::vector<std::pair<uint64_t, Bytes>>& writes) {
  if (writes.empty()) return;
  // Apply leaves; collect the dirty frontier.
  std::unordered_map<uint64_t, Hash256> dirty;
  for (const auto& [key, value] : writes) {
    if (value.empty()) {
      leaves_.erase(key);
    } else {
      leaves_[key] = value;
    }
    dirty[key] = LeafHash(key, value);
  }
  // Rehash level by level toward the root; each dirty node pulls its
  // sibling from the dirty set first, then the stored tree.
  for (int level = kDepth; level >= 1; --level) {
    std::unordered_map<uint64_t, Hash256> parent_dirty;
    for (const auto& [prefix, hash] : dirty) {
      if (hash == Defaults()[level]) {
        nodes_[level].erase(prefix);
      } else {
        nodes_[level][prefix] = hash;
      }
    }
    for (const auto& [prefix, hash] : dirty) {
      uint64_t parent = prefix >> 1;
      if (parent_dirty.count(parent) > 0) continue;  // Sibling handled it.
      uint64_t sibling = prefix ^ 1;
      auto sib_it = dirty.find(sibling);
      Hash256 sibling_hash =
          sib_it != dirty.end() ? sib_it->second : NodeAt(level, sibling);
      parent_dirty[parent] = (prefix & 1)
                                 ? InnerHash(sibling_hash, hash)
                                 : InnerHash(hash, sibling_hash);
    }
    dirty = std::move(parent_dirty);
  }
  // dirty now holds the root (level 0).
  for (const auto& [prefix, hash] : dirty) {
    if (hash == Defaults()[0]) {
      nodes_[0].erase(prefix);
    } else {
      nodes_[0][prefix] = hash;
    }
  }
}

Status SparseMerkleTree::InjectProof(uint64_t key, ByteView value,
                                     const MerkleProof& proof,
                                     const crypto::Hash256& expected_root) {
  if (proof.siblings.size() != kDepth) {
    return Status::InvalidArgument("proof has wrong depth");
  }
  // First verify; only then mutate.
  if (!Verify(expected_root, key, value, proof)) {
    return Status::PermissionDenied("proof does not match root");
  }
  if (!value.empty()) {
    leaves_[key] = value.ToBytes();
  }
  Hash256 hash = LeafHash(key, value);
  uint64_t prefix = key;
  for (int level = kDepth; level >= 1; --level) {
    if (hash != Defaults()[level]) nodes_[level][prefix] = hash;
    const Hash256& sibling = proof.siblings[level - 1];
    if (sibling != Defaults()[level]) nodes_[level][prefix ^ 1] = sibling;
    hash = (prefix & 1) ? InnerHash(sibling, hash) : InnerHash(hash, sibling);
    prefix >>= 1;
  }
  nodes_[0][0] = hash;
  return Status::Ok();
}

Result<Bytes> SparseMerkleTree::Get(uint64_t key) const {
  auto it = leaves_.find(key);
  if (it == leaves_.end()) return Status::NotFound("no such leaf");
  return it->second;
}

Hash256 SparseMerkleTree::Root() const { return NodeAt(0, 0); }

MerkleProof SparseMerkleTree::Prove(uint64_t key) const {
  MerkleProof proof;
  proof.siblings.resize(kDepth);
  uint64_t prefix = key;
  // Collect siblings leaf-up, then store root-adjacent first.
  for (int level = kDepth; level >= 1; --level) {
    proof.siblings[level - 1] = NodeAt(level, prefix ^ 1);
    prefix >>= 1;
  }
  return proof;
}

bool SparseMerkleTree::Verify(const Hash256& root, uint64_t key,
                              ByteView value, const MerkleProof& proof) {
  if (proof.siblings.size() != kDepth) return false;
  Hash256 hash = LeafHash(key, value);
  uint64_t prefix = key;
  for (int level = kDepth; level >= 1; --level) {
    const Hash256& sibling = proof.siblings[level - 1];
    hash = (prefix & 1) ? InnerHash(sibling, hash) : InnerHash(hash, sibling);
    prefix >>= 1;
  }
  return hash == root;
}

void SparseMerkleTree::ForEach(
    const std::function<void(uint64_t, ByteView)>& fn) const {
  for (const auto& [key, value] : leaves_) fn(key, value);
}

}  // namespace porygon::state
