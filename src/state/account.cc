#include "state/account.h"

#include "common/codec.h"

namespace porygon::state {

Bytes EncodeAccount(const Account& account) {
  Encoder enc;
  enc.PutU64(account.balance);
  enc.PutU64(account.nonce);
  return enc.TakeBuffer();
}

Result<Account> DecodeAccount(ByteView data) {
  Decoder dec(data);
  Account account;
  PORYGON_ASSIGN_OR_RETURN(account.balance, dec.GetU64());
  PORYGON_ASSIGN_OR_RETURN(account.nonce, dec.GetU64());
  if (!dec.Done()) return Status::Corruption("trailing bytes after account");
  return account;
}

Bytes AccountKey(AccountId id) {
  Encoder enc;
  enc.PutU64(id);
  return enc.TakeBuffer();
}

Result<AccountId> DecodeAccountKey(ByteView data) {
  Decoder dec(data);
  PORYGON_ASSIGN_OR_RETURN(AccountId id, dec.GetU64());
  if (!dec.Done()) return Status::Corruption("trailing bytes after key");
  return id;
}

}  // namespace porygon::state
