#ifndef PORYGON_STATE_SHARDED_STATE_H_
#define PORYGON_STATE_SHARDED_STATE_H_

#include <vector>

#include "common/bytes.h"
#include "common/status.h"
#include "state/account.h"
#include "state/smt.h"
#include "state/view.h"

namespace porygon::state {

/// The global blockchain state as the paper structures it: accounts are
/// partitioned into 2^N shards by the last N bits of their IDs, each shard
/// owns a Merkle subtree, and the on-chain state root is the Merkle
/// aggregation of the shard subtree roots (the OC "aggregates these states,
/// calculates the latest state tree root", §IV-D2).
class ShardedState : public StateView {
 public:
  explicit ShardedState(int shard_bits);

  int shard_bits() const { return shard_bits_; }
  int shard_count() const { return 1 << shard_bits_; }
  uint32_t ShardOf(AccountId id) const override {
    return ShardOfAccount(id, shard_bits_);
  }

  /// Writes an account (routes to its shard's subtree).
  void PutAccount(AccountId id, const Account& account);
  /// Batched writes into one shard's subtree (single path-rehash pass).
  void PutAccountBatch(
      uint32_t shard,
      const std::vector<std::pair<AccountId, Account>>& ws) override;
  /// Removes an account.
  void DeleteAccount(AccountId id);
  /// Reads an account; NotFound if absent.
  Result<Account> GetAccount(AccountId id) const;
  /// Reads an account, defaulting when absent: a zero account (transfers to
  /// fresh accounts create them), or the declared implicit balance for ids
  /// covered by SetImplicitAccounts.
  Account GetOrDefault(AccountId id) const override;

  /// Root of one shard's subtree.
  crypto::Hash256 ShardRoot(uint32_t shard) const override;
  /// Global root over all shard roots (binary Merkle over 2^N leaves).
  crypto::Hash256 GlobalRoot() const;
  /// Recomputes the global root from externally supplied shard roots — what
  /// the OC does with roots signed by ESCs, without holding any state.
  static crypto::Hash256 AggregateRoots(
      const std::vector<crypto::Hash256>& shard_roots);

  /// Membership proof for an account within its shard subtree.
  MerkleProof ProveAccount(AccountId id) const;
  /// Stateless verification against a shard root.
  static bool VerifyAccount(const crypto::Hash256& shard_root, AccountId id,
                            const Account& account, const MerkleProof& proof);
  /// Stateless absence verification.
  static bool VerifyAbsence(const crypto::Hash256& shard_root, AccountId id,
                            const MerkleProof& proof);

  /// Number of accounts in a shard / overall.
  size_t ShardAccountCount(uint32_t shard) const;
  size_t TotalAccountCount() const;

  /// Direct subtree access (ESCs operate on one shard's subtree).
  const SparseMerkleTree& Shard(uint32_t shard) const {
    return shards_[shard];
  }

 private:
  int shard_bits_;
  std::vector<SparseMerkleTree> shards_;
};

}  // namespace porygon::state

#endif  // PORYGON_STATE_SHARDED_STATE_H_
