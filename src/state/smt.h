#ifndef PORYGON_STATE_SMT_H_
#define PORYGON_STATE_SMT_H_

#include <array>
#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "common/bytes.h"
#include "common/status.h"
#include "crypto/sha256.h"

namespace porygon::state {

/// Membership/absence proof: one sibling hash per level, root-adjacent first.
struct MerkleProof {
  std::vector<crypto::Hash256> siblings;  // Depth entries.
  /// Serialized size in bytes, for the bandwidth model (storage nodes ship
  /// proofs alongside states, §IV-C1(c)).
  size_t WireSize() const { return siblings.size() * sizeof(crypto::Hash256); }

  Bytes Encode() const;
  static Result<MerkleProof> Decode(ByteView data);
};

/// Sparse Merkle tree of fixed depth over 64-bit keys. Absent keys hash to a
/// per-level default, so the tree is O(occupied keys) in memory while proofs
/// behave as if all 2^64 leaves existed. Leaf hash = H(key_le || value);
/// inner = H(left || right).
///
/// This is the authenticated index over accounts that storage nodes maintain
/// and stateless nodes verify: Get/Update with Merkle paths, root
/// computation, and per-update incremental rehashing (depth hashes per
/// write).
class SparseMerkleTree {
 public:
  static constexpr int kDepth = 64;

  SparseMerkleTree();

  /// Sets `key` to `value` (empty value deletes the leaf).
  void Put(uint64_t key, ByteView value);
  void Delete(uint64_t key) { Put(key, ByteView()); }

  /// Applies many writes and rehashes each affected tree path once,
  /// level by level. For a block of k updates this costs
  /// O(k + distinct-path-nodes) hashes instead of O(k * depth) — the
  /// difference between microseconds and milliseconds per committed block
  /// (see bench/micro_merkle). Last write wins for duplicate keys.
  void PutBatch(const std::vector<std::pair<uint64_t, Bytes>>& writes);

  /// Returns the value (NotFound if absent).
  Result<Bytes> Get(uint64_t key) const;

  /// Current root hash.
  crypto::Hash256 Root() const;

  /// Proof for `key` (valid for both membership and absence).
  MerkleProof Prove(uint64_t key) const;

  /// Verifies that `value` (empty = absent) is the value of `key` under
  /// `root`. Static: verification needs no tree, only the proof — this is
  /// what stateless nodes run.
  static bool Verify(const crypto::Hash256& root, uint64_t key, ByteView value,
                     const MerkleProof& proof);

  /// Builds a *partial* tree from a proof: verifies (key, value, proof)
  /// against `expected_root`, then stores the leaf, every node on its path,
  /// and every sibling hash. After injecting proofs for all accounts a
  /// block touches, a stateless node can PutBatch updated values and read
  /// the correct new Root() without ever holding the full state — this is
  /// the Execution Phase of a stateless ESC member (§IV-C1(c)).
  Status InjectProof(uint64_t key, ByteView value, const MerkleProof& proof,
                     const crypto::Hash256& expected_root);

  /// Number of live leaves.
  size_t LeafCount() const { return leaves_.size(); }

  /// Iterates live (key, value) pairs in unspecified order.
  void ForEach(const std::function<void(uint64_t, ByteView)>& fn) const;

 private:
  static crypto::Hash256 LeafHash(uint64_t key, ByteView value);
  static const std::array<crypto::Hash256, kDepth + 1>& Defaults();

  // Node hash at (level, prefix); falls back to the level default.
  crypto::Hash256 NodeAt(int level, uint64_t prefix) const;

  // nodes_[level] maps prefix -> hash for non-default nodes. Level 0 is the
  // root (prefix 0), level kDepth are leaves (prefix == key).
  std::vector<std::unordered_map<uint64_t, crypto::Hash256>> nodes_;
  std::unordered_map<uint64_t, Bytes> leaves_;
};

}  // namespace porygon::state

#endif  // PORYGON_STATE_SMT_H_
