#ifndef PORYGON_STATE_VIEW_H_
#define PORYGON_STATE_VIEW_H_

#include <unordered_map>
#include <vector>

#include "state/account.h"
#include "state/smt.h"

namespace porygon::state {

/// What the shard executor needs from "state": reads, batched writes into
/// one shard, and that shard's Merkle root. Two implementations:
///   - `ShardedState` — the full materialized state (storage nodes, tests)
///   - `PartialState` — a stateless node's view reconstructed from Merkle
///     proofs downloaded during the Execution Phase.
class StateView {
 public:
  virtual ~StateView() = default;

  virtual uint32_t ShardOf(AccountId id) const = 0;
  virtual Account GetOrDefault(AccountId id) const = 0;
  virtual void PutAccountBatch(
      uint32_t shard, const std::vector<std::pair<AccountId, Account>>& ws) = 0;
  virtual crypto::Hash256 ShardRoot(uint32_t shard) const = 0;

  /// Declares ids [1, max_id] implicitly funded with `balance`: GetOrDefault
  /// reports that balance for absent ids in range, but no leaf exists until
  /// an id is first written — Merkle roots, membership/absence proofs, and
  /// GetAccount (NotFound) are unchanged for untouched accounts. Every view
  /// of the same state must carry the same declaration or roots diverge on
  /// first touch.
  void SetImplicitAccounts(uint64_t max_id, uint64_t balance) {
    implicit_max_id_ = max_id;
    implicit_balance_ = balance;
  }
  uint64_t implicit_max_id() const { return implicit_max_id_; }
  uint64_t implicit_balance() const { return implicit_balance_; }

 protected:
  /// The value GetOrDefault yields for an id with no materialized leaf.
  Account DefaultFor(AccountId id) const {
    if (id >= 1 && id <= implicit_max_id_) {
      return Account{implicit_balance_, 0};
    }
    return Account{};
  }

 private:
  uint64_t implicit_max_id_ = 0;
  uint64_t implicit_balance_ = 0;
};

/// A stateless ESC member's materialized view for one Execution Phase:
/// a partial subtree of its own shard (built from verified proofs) plus
/// read-only foreign-account values (verified against the other shards'
/// roots). Writes only touch the own-shard partial subtree; the recomputed
/// root is exactly what a full replica would produce.
class PartialState : public StateView {
 public:
  /// `shard_bits` and `own_shard` fix the address space; `own_root` is the
  /// subtree root from the committed proposal block that proofs must match.
  PartialState(int shard_bits, uint32_t own_shard,
               const crypto::Hash256& own_root);

  /// Adds an own-shard account (present or absent) with its proof.
  /// Fails (PermissionDenied) if the proof does not verify — the member
  /// must re-download from another storage node (Lemma 1 redundancy).
  Status AddOwnAccount(AccountId id, bool present, const Account& value,
                       const MerkleProof& proof);

  /// Adds a foreign account value verified against that shard's root.
  Status AddForeignAccount(AccountId id, bool present, const Account& value,
                           const MerkleProof& proof,
                           const crypto::Hash256& foreign_root);

  // StateView:
  uint32_t ShardOf(AccountId id) const override;
  Account GetOrDefault(AccountId id) const override;
  void PutAccountBatch(
      uint32_t shard,
      const std::vector<std::pair<AccountId, Account>>& ws) override;
  crypto::Hash256 ShardRoot(uint32_t shard) const override;

 private:
  int shard_bits_;
  uint32_t own_shard_;
  crypto::Hash256 own_root_;
  SparseMerkleTree partial_;
  bool any_injected_ = false;
  std::unordered_map<AccountId, Account> foreign_;
  std::unordered_map<AccountId, Account> own_overlay_;  // Post-write values.
};

}  // namespace porygon::state

#endif  // PORYGON_STATE_VIEW_H_
