#include "state/sharded_state.h"

namespace porygon::state {

using crypto::Hash256;
using crypto::Sha256;

ShardedState::ShardedState(int shard_bits)
    : shard_bits_(shard_bits), shards_(size_t{1} << shard_bits) {}

void ShardedState::PutAccount(AccountId id, const Account& account) {
  shards_[ShardOf(id)].Put(id, EncodeAccount(account));
}

void ShardedState::PutAccountBatch(
    uint32_t shard, const std::vector<std::pair<AccountId, Account>>& ws) {
  std::vector<std::pair<uint64_t, Bytes>> writes;
  writes.reserve(ws.size());
  for (const auto& [id, account] : ws) {
    if (ShardOf(id) != shard) continue;
    writes.emplace_back(id, EncodeAccount(account));
  }
  shards_[shard].PutBatch(writes);
}

void ShardedState::DeleteAccount(AccountId id) {
  shards_[ShardOf(id)].Delete(id);
}

Result<Account> ShardedState::GetAccount(AccountId id) const {
  PORYGON_ASSIGN_OR_RETURN(Bytes raw, shards_[ShardOf(id)].Get(id));
  return DecodeAccount(raw);
}

Account ShardedState::GetOrDefault(AccountId id) const {
  auto r = GetAccount(id);
  return r.ok() ? *r : DefaultFor(id);
}

Hash256 ShardedState::ShardRoot(uint32_t shard) const {
  return shards_[shard].Root();
}

Hash256 ShardedState::GlobalRoot() const {
  std::vector<Hash256> roots;
  roots.reserve(shards_.size());
  for (const auto& shard : shards_) roots.push_back(shard.Root());
  return AggregateRoots(roots);
}

Hash256 ShardedState::AggregateRoots(const std::vector<Hash256>& shard_roots) {
  if (shard_roots.empty()) return crypto::ZeroHash();
  std::vector<Hash256> level = shard_roots;
  while (level.size() > 1) {
    std::vector<Hash256> next;
    next.reserve((level.size() + 1) / 2);
    for (size_t i = 0; i + 1 < level.size(); i += 2) {
      next.push_back(Sha256::HashPair(
          ByteView(level[i].data(), level[i].size()),
          ByteView(level[i + 1].data(), level[i + 1].size())));
    }
    if (level.size() % 2 == 1) {
      // Odd node promotes by pairing with itself.
      const Hash256& last = level.back();
      next.push_back(Sha256::HashPair(ByteView(last.data(), last.size()),
                                      ByteView(last.data(), last.size())));
    }
    level = std::move(next);
  }
  return level[0];
}

MerkleProof ShardedState::ProveAccount(AccountId id) const {
  return shards_[ShardOf(id)].Prove(id);
}

bool ShardedState::VerifyAccount(const Hash256& shard_root, AccountId id,
                                 const Account& account,
                                 const MerkleProof& proof) {
  return SparseMerkleTree::Verify(shard_root, id, EncodeAccount(account),
                                  proof);
}

bool ShardedState::VerifyAbsence(const Hash256& shard_root, AccountId id,
                                 const MerkleProof& proof) {
  return SparseMerkleTree::Verify(shard_root, id, ByteView(), proof);
}

size_t ShardedState::ShardAccountCount(uint32_t shard) const {
  return shards_[shard].LeafCount();
}

size_t ShardedState::TotalAccountCount() const {
  size_t total = 0;
  for (const auto& shard : shards_) total += shard.LeafCount();
  return total;
}

}  // namespace porygon::state
