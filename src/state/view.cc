#include "state/view.h"

namespace porygon::state {

PartialState::PartialState(int shard_bits, uint32_t own_shard,
                           const crypto::Hash256& own_root)
    : shard_bits_(shard_bits), own_shard_(own_shard), own_root_(own_root) {}

Status PartialState::AddOwnAccount(AccountId id, bool present,
                                   const Account& value,
                                   const MerkleProof& proof) {
  if (ShardOf(id) != own_shard_) {
    return Status::InvalidArgument("account not in own shard");
  }
  Bytes encoded = present ? EncodeAccount(value) : Bytes();
  PORYGON_RETURN_IF_ERROR(
      partial_.InjectProof(id, encoded, proof, own_root_));
  any_injected_ = true;
  return Status::Ok();
}

Status PartialState::AddForeignAccount(AccountId id, bool present,
                                       const Account& value,
                                       const MerkleProof& proof,
                                       const crypto::Hash256& foreign_root) {
  Bytes encoded = present ? EncodeAccount(value) : Bytes();
  if (!SparseMerkleTree::Verify(foreign_root, id, encoded, proof)) {
    return Status::PermissionDenied("foreign proof does not match root");
  }
  if (present) foreign_[id] = value;
  return Status::Ok();
}

uint32_t PartialState::ShardOf(AccountId id) const {
  return ShardOfAccount(id, shard_bits_);
}

Account PartialState::GetOrDefault(AccountId id) const {
  if (ShardOf(id) == own_shard_) {
    auto ov = own_overlay_.find(id);
    if (ov != own_overlay_.end()) return ov->second;
    auto raw = partial_.Get(id);
    if (!raw.ok()) return DefaultFor(id);
    auto decoded = DecodeAccount(*raw);
    return decoded.ok() ? *decoded : DefaultFor(id);
  }
  auto it = foreign_.find(id);
  return it != foreign_.end() ? it->second : DefaultFor(id);
}

void PartialState::PutAccountBatch(
    uint32_t shard, const std::vector<std::pair<AccountId, Account>>& ws) {
  if (shard != own_shard_) return;  // Stateless: never writes foreign shards.
  std::vector<std::pair<uint64_t, Bytes>> writes;
  writes.reserve(ws.size());
  for (const auto& [id, account] : ws) {
    if (ShardOf(id) != own_shard_) continue;
    writes.emplace_back(id, EncodeAccount(account));
    own_overlay_[id] = account;
  }
  partial_.PutBatch(writes);
}

crypto::Hash256 PartialState::ShardRoot(uint32_t shard) const {
  if (shard != own_shard_) return crypto::ZeroHash();
  // Before any proof is injected the partial tree is empty, which only
  // matches the global empty root; report the declared root instead.
  if (!any_injected_) return own_root_;
  return partial_.Root();
}

}  // namespace porygon::state
