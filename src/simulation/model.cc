#include "simulation/model.h"

#include <algorithm>
#include <cmath>

namespace porygon::sim {

namespace {
/// Cross-shard coordination overheads, fitted against Table I: conflicts
/// and lock contention discard a small fraction of offered transactions,
/// and the Multi-Shard Update adds a latency penalty that grows with the
/// cross-shard ratio.
constexpr double kDiscardPerRatio = 0.08;
constexpr double kCrossLatencyPenaltyS = 0.58;
}  // namespace

ModelResult EstimatePorygon(const ModelConfig& cfg) {
  ModelResult r;
  const int shards = cfg.effective_shards();
  const double blocks = static_cast<double>(cfg.blocks_per_shard_round);
  const double txs_per_shard = blocks * cfg.txs_per_block;

  // --- Per-phase traffic per participating stateless node ----------------
  // Witness: download full blocks of the shard, upload one proof each.
  const double witness_bytes =
      blocks * (cfg.header_bytes + cfg.txs_per_block * cfg.tx_bytes) +
      blocks * cfg.witness_proof_bytes;
  // Ordering (OC member): headers + witness proofs per block, plus access
  // summaries for cross-shard transactions (pre-recorded states), plus two
  // BA vote rounds.
  const double bundle_bytes =
      shards * blocks *
          (cfg.header_bytes + cfg.witness_threshold * cfg.witness_proof_bytes +
           cfg.cross_shard_ratio * cfg.txs_per_block *
               cfg.access_summary_bytes) +
      2.0 * cfg.oc_size * cfg.vote_bytes / 64.0;  // Votes fan in via relays.
  // Execution: download states + proofs for the accounts the shard's batch
  // touches (~1.5 unique accounts per transaction), plus the update list U,
  // upload root + S set.
  const double exec_accounts = txs_per_shard * 1.5;
  const double exec_bytes =
      exec_accounts * cfg.state_bytes_per_account +
      cfg.cross_shard_ratio * txs_per_shard * 2 * cfg.update_entry_bytes +
      96 + cfg.cross_shard_ratio * txs_per_shard * cfg.update_entry_bytes;
  // Commit: the proposal block (block-id lists + U + roots).
  const double commit_bytes =
      shards * (blocks * 32 + 32) +
      cfg.cross_shard_ratio * txs_per_shard * cfg.update_entry_bytes;

  const double t_witness = witness_bytes / cfg.node_bps + cfg.latency_s;
  const double t_order = bundle_bytes / cfg.node_bps + 4 * cfg.latency_s;
  const double t_exec = exec_bytes / cfg.node_bps + 2 * cfg.latency_s;
  const double t_commit = commit_bytes / cfg.node_bps + cfg.latency_s;

  // Pipelined: committees work concurrently, so the round is gated by the
  // slowest phase. 1D (no pipelining): one committee performs all phases
  // back to back.
  const double phase_time =
      cfg.pipelining ? std::max({t_witness, t_order, t_exec, t_commit})
                     : (t_witness + t_order + t_exec + t_commit);
  r.round_s = cfg.reconfig_s + cfg.reconfig_jitter_s / 2 + phase_time;

  // --- Throughput ---------------------------------------------------------
  const double discard = kDiscardPerRatio * std::max(0.0, cfg.cross_shard_ratio);
  double capacity = shards * txs_per_shard * (1.0 - discard) / r.round_s;
  if (!cfg.pipelining) {
    // Sequential phases also serialize batches: only one batch is in
    // flight, and witnessing the next cannot overlap ordering/execution.
    capacity = txs_per_shard * (1.0 - discard) / r.round_s * shards;
  }
  r.tps = cfg.offered_tps > 0 ? std::min(cfg.offered_tps, capacity)
                              : capacity;

  // --- Latencies -----------------------------------------------------------
  // Intra-shard: witness + 3 rounds to commit (§IV-D2); cross-shard: +2.
  const double intra = 3 * r.round_s;
  const double cross = 5 * r.round_s + kCrossLatencyPenaltyS;
  r.block_latency_s = intra + cfg.cross_shard_ratio * kCrossLatencyPenaltyS;
  r.commit_latency_s =
      (1 - cfg.cross_shard_ratio) * intra + cfg.cross_shard_ratio * cross;
  r.user_latency_s = r.commit_latency_s + cfg.backlog_rounds * r.round_s;

  r.phase_bytes = {witness_bytes, bundle_bytes, exec_bytes, commit_bytes};
  return r;
}

ModelResult EstimateBlockene(const ModelConfig& cfg) {
  // One committee does everything sequentially over the whole batch.
  ModelConfig flat = cfg;
  flat.pipelining = false;
  flat.sharding = false;
  flat.cross_shard_ratio = 0;  // No shards, no cross-shard traffic.
  ModelResult r = EstimatePorygon(flat);
  // Blockene's committee additionally re-downloads states during both the
  // ordering and execution stages (no witness-phase reuse), lengthening the
  // round. Model that as one extra execution phase.
  const double exec_extra = r.phase_bytes[2] / cfg.node_bps;
  r.round_s += exec_extra;
  const double capacity =
      flat.blocks_per_shard_round * flat.txs_per_block / r.round_s;
  r.tps = cfg.offered_tps > 0 ? std::min(cfg.offered_tps, capacity)
                              : capacity;
  r.block_latency_s = r.round_s;  // Commit happens within the round.
  r.commit_latency_s = r.round_s;
  r.user_latency_s = r.round_s + cfg.backlog_rounds * r.round_s;
  return r;
}

ModelResult EstimateByshard(const ModelConfig& cfg) {
  ModelResult r;
  const double block_bytes =
      cfg.header_bytes + cfg.txs_per_block * cfg.tx_bytes;
  // The dominant cost for "lightweight ByShard" (nodes capped at Porygon's
  // 1 MB/s): the shard leader replicates the complete block to every member
  // over its own uplink, which serializes. Members additionally exchange
  // two vote rounds, and cross-shard transactions add two-phase traffic.
  const double leader_upload_s =
      (cfg.nodes_per_shard - 1) * block_bytes / cfg.node_bps;
  const double per_node_bytes =
      block_bytes +
      2.0 * cfg.nodes_per_shard * cfg.vote_bytes / 64.0 +
      cfg.cross_shard_ratio * cfg.txs_per_block *
          (cfg.tx_bytes + 2 * cfg.update_entry_bytes);
  const double t_round = leader_upload_s +
                         per_node_bytes / cfg.node_bps + 4 * cfg.latency_s;
  r.round_s = cfg.reconfig_s + t_round;

  const double capacity =
      cfg.shards * cfg.txs_per_block / r.round_s *
      (1.0 - 0.05 * cfg.cross_shard_ratio);
  r.tps = cfg.offered_tps > 0 ? std::min(cfg.offered_tps, capacity)
                              : capacity;
  // Intra commits in one consensus round; cross needs the second phase in
  // the receiver shard's next block.
  r.block_latency_s = r.round_s;
  r.commit_latency_s =
      (1 - cfg.cross_shard_ratio) * r.round_s + cfg.cross_shard_ratio * 2 *
      r.round_s;
  r.user_latency_s = r.commit_latency_s + cfg.backlog_rounds * r.round_s;
  r.phase_bytes = {0, per_node_bytes, 0, 0};
  return r;
}

}  // namespace porygon::sim
