#ifndef PORYGON_SIMULATION_MODEL_H_
#define PORYGON_SIMULATION_MODEL_H_

#include <array>
#include <cstddef>
#include <cstdint>

namespace porygon::sim {

/// Large-scale simulation in the spirit of the paper's Python simulations
/// (§VI): up to 100,000 nodes, "specifically focused on the design of 3D
/// parallelism, omitting the intricate engineering aspects of distributed
/// architecture". Committee-level cost model: per-phase times follow from
/// message sizes, per-node bandwidth (1 MB/s), the fixed 2 s + jitter
/// committee-formation interval, and the 0.5 ms storage<->stateless
/// latency — the same inputs the paper fixes.
struct ModelConfig {
  // Scale.
  int num_nodes = 100'000;
  int shards = 10;
  int nodes_per_shard = 2'000;

  // Workload shape.
  size_t txs_per_block = 2'000;
  size_t blocks_per_shard_round = 1;
  double cross_shard_ratio = 0.5;
  /// Offered load (TPS); caps throughput when below capacity. <= 0 means
  /// saturating load.
  double offered_tps = -1;
  /// Mempool backlog expressed in rounds (drives user-perceived latency).
  double backlog_rounds = 9.0;

  // Resources (paper defaults).
  double node_bps = 1e6;
  double latency_s = 0.0005;
  double reconfig_s = 2.0;
  double reconfig_jitter_s = 0.1;

  // Message sizes (bytes).
  double tx_bytes = 112;
  double header_bytes = 52;
  double witness_proof_bytes = 96;
  double access_summary_bytes = 16;   // Compressed cross-tx access entries.
  double state_bytes_per_account = 145;  // Value + batched multiproof share.
  double update_entry_bytes = 24;
  double vote_bytes = 150;
  int witness_threshold = 10;
  int oc_size = 2'000;

  // Dimension toggles (ablations, Fig 7c/7d).
  bool pipelining = true;   // Off: phases run sequentially per round.
  bool sharding = true;     // Off: a single execution committee.

  int effective_shards() const { return sharding ? shards : 1; }
};

/// Outputs matching the paper's reported series.
struct ModelResult {
  double tps = 0;
  double round_s = 0;             ///< Proposal-block interval.
  double block_latency_s = 0;     ///< Reported "latency" (≈ intra commit).
  double commit_latency_s = 0;    ///< Ratio-weighted tx commit latency.
  double user_latency_s = 0;      ///< Submission -> confirmation.
  /// Per stateless node per round, bytes: Witness, Ordering, Execution,
  /// Commit.
  std::array<double, 4> phase_bytes{};
};

/// Porygon under the full 3D design (§IV), honouring the dimension toggles.
ModelResult EstimatePorygon(const ModelConfig& config);

/// Blockene-style 1D stateless baseline: one committee, sequential phases.
ModelResult EstimateBlockene(const ModelConfig& config);

/// ByShard-style sharded full-node baseline: per-shard BFT + block
/// replication; nodes store everything.
ModelResult EstimateByshard(const ModelConfig& config);

}  // namespace porygon::sim

#endif  // PORYGON_SIMULATION_MODEL_H_
