#ifndef PORYGON_TX_BLOCKS_H_
#define PORYGON_TX_BLOCKS_H_

#include <cstdint>
#include <vector>

#include "common/bytes.h"
#include "common/status.h"
#include "crypto/ed25519.h"
#include "crypto/sha256.h"
#include "state/account.h"
#include "tx/transaction.h"

namespace porygon::tx {

using BlockId = crypto::Hash256;

/// Header of a transaction block (the unit storage nodes package and
/// stateless nodes witness, §IV-B2). Headers circulate separately from the
/// body: the OC orders blocks from headers + witness proofs alone.
struct TransactionBlockHeader {
  uint32_t creator_storage_node = 0;  ///< Packing storage node.
  uint64_t round_created = 0;
  uint32_t shard = 0;                 ///< Shard its transactions execute in.
  uint32_t tx_count = 0;
  crypto::Hash256 tx_root{};          ///< Merkle root over tx ids.

  BlockId Id() const;
  Bytes Encode() const;
  static Result<TransactionBlockHeader> Decode(ByteView data);
  /// Wire footprint of a header (fixed fields + root).
  size_t WireSize() const { return Encode().size(); }
};

/// Full transaction block: header plus the transaction bodies. The wire
/// size scales with tx_count * Transaction::kWireSize — this is the bulk
/// traffic that the Witness Phase shoulders so the OC never downloads it.
struct TransactionBlock {
  TransactionBlockHeader header;
  std::vector<Transaction> transactions;

  /// Recomputes header.tx_root and header.tx_count from `transactions`.
  void SealHeader();
  /// True iff the body matches the sealed header.
  bool BodyMatchesHeader() const;

  size_t WireSize() const {
    return header.WireSize() + transactions.size() * Transaction::kWireSize;
  }

  Bytes Encode() const;
  static Result<TransactionBlock> Decode(ByteView data);
};

/// A witness proof: one committee member's signature on a transaction-block
/// header, attesting it could download the full body (§IV-C1(a)).
struct WitnessProof {
  BlockId block_id{};
  crypto::PublicKey witness{};
  crypto::Signature signature{};

  static constexpr size_t kWireSize = 32 + 32 + 64;

  Bytes Encode() const;
  static Result<WitnessProof> Decode(ByteView data);
};

/// Per-shard list of state updates distributed by the OC during
/// Multi-Shard Update (the list U in §IV-D2).
struct StateUpdate {
  state::AccountId account = 0;
  state::Account value{};

  bool operator==(const StateUpdate&) const = default;
};

/// Proposal block: the small block the Ordering Committee agrees on each
/// round (Fig 3). It chains by prev_hash, lists witnessed transaction
/// blocks per shard (L), carries the cross-shard update lists (U) and the
/// shard subtree roots plus aggregated state root (T).
struct ProposalBlock {
  uint64_t height = 0;
  crypto::Hash256 prev_hash{};
  uint64_t round = 0;
  crypto::PublicKey leader{};
  /// L[d]: ordered transaction-block ids for shard d.
  std::vector<std::vector<BlockId>> shard_tx_blocks;
  /// U[d]: state updates shard d must apply (cross-shard commits).
  std::vector<std::vector<StateUpdate>> shard_updates;
  /// Conflict-discarded transactions (kept in their blocks for integrity,
  /// "while including them in the block for integrity, and notes their
  /// indexes", §IV-D2).
  std::vector<TxId> discarded;
  /// T: subtree root per shard, as agreed this round.
  std::vector<crypto::Hash256> shard_roots;
  /// Aggregated global state root.
  crypto::Hash256 state_root{};
  /// Committee-selection thresholds for the next round (§IV-B3).
  double ordering_threshold = 0.0;
  double execution_threshold = 0.0;

  crypto::Hash256 Hash() const;
  Bytes Encode() const;
  static Result<ProposalBlock> Decode(ByteView data);
  size_t WireSize() const { return Encode().size(); }
};

}  // namespace porygon::tx

#endif  // PORYGON_TX_BLOCKS_H_
