#include "tx/transaction.h"

#include <cstring>

namespace porygon::tx {

namespace {
Bytes EncodeBody(const Transaction& t) {
  Encoder enc;
  enc.PutU64(t.from);
  enc.PutU64(t.to);
  enc.PutU64(t.amount);
  enc.PutU64(t.nonce);
  enc.PutU64(t.submitted_at);
  return enc.TakeBuffer();
}
}  // namespace

TxId Transaction::Id() const {
  return crypto::Sha256::Hash(EncodeBody(*this));
}

Bytes Transaction::Encode() const {
  Bytes out = EncodeBody(*this);
  out.insert(out.end(), signature.begin(), signature.end());
  return out;
}

Result<Transaction> Transaction::Decode(ByteView data) {
  Decoder dec(data);
  PORYGON_ASSIGN_OR_RETURN(Transaction t, [&]() -> Result<Transaction> {
    return DecodeFrom(&dec);
  }());
  if (!dec.Done()) return Status::Corruption("trailing bytes after tx");
  return t;
}

Result<Transaction> Transaction::DecodeFrom(Decoder* dec) {
  Transaction t;
  PORYGON_ASSIGN_OR_RETURN(t.from, dec->GetU64());
  PORYGON_ASSIGN_OR_RETURN(t.to, dec->GetU64());
  PORYGON_ASSIGN_OR_RETURN(t.amount, dec->GetU64());
  PORYGON_ASSIGN_OR_RETURN(t.nonce, dec->GetU64());
  PORYGON_ASSIGN_OR_RETURN(t.submitted_at, dec->GetU64());
  PORYGON_ASSIGN_OR_RETURN(Bytes sig, dec->GetFixed(t.signature.size()));
  std::memcpy(t.signature.data(), sig.data(), t.signature.size());
  return t;
}

bool Transaction::operator==(const Transaction& other) const {
  return from == other.from && to == other.to && amount == other.amount &&
         nonce == other.nonce && submitted_at == other.submitted_at &&
         signature == other.signature;
}

}  // namespace porygon::tx
