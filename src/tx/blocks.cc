#include "tx/blocks.h"

#include <cstring>

#include "common/codec.h"
#include "common/wire.h"
#include "crypto/merkle.h"

namespace porygon::tx {

using crypto::Hash256;

namespace {
void PutHash(Encoder* enc, const Hash256& h) {
  enc->PutFixed(ByteView(h.data(), h.size()));
}

Result<Hash256> GetHash(Decoder* dec) {
  PORYGON_ASSIGN_OR_RETURN(Bytes raw, dec->GetFixed(32));
  Hash256 h;
  std::memcpy(h.data(), raw.data(), 32);
  return h;
}

void PutKey(Encoder* enc, const crypto::PublicKey& k) {
  enc->PutFixed(ByteView(k.data(), k.size()));
}

Result<crypto::PublicKey> GetKey(Decoder* dec) {
  PORYGON_ASSIGN_OR_RETURN(Bytes raw, dec->GetFixed(32));
  crypto::PublicKey k;
  std::memcpy(k.data(), raw.data(), 32);
  return k;
}

// doubles are stored as fixed bit patterns to keep hashing deterministic.
void PutDouble(Encoder* enc, double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, 8);
  enc->PutU64(bits);
}

Result<double> GetDouble(Decoder* dec) {
  PORYGON_ASSIGN_OR_RETURN(uint64_t bits, dec->GetU64());
  double v;
  std::memcpy(&v, &bits, 8);
  return v;
}
}  // namespace

Bytes TransactionBlockHeader::Encode() const {
  Encoder enc;
  enc.PutU32(creator_storage_node);
  enc.PutU64(round_created);
  enc.PutU32(shard);
  enc.PutU32(tx_count);
  PutHash(&enc, tx_root);
  return enc.TakeBuffer();
}

Result<TransactionBlockHeader> TransactionBlockHeader::Decode(ByteView data) {
  Decoder dec(data);
  TransactionBlockHeader h;
  PORYGON_ASSIGN_OR_RETURN(h.creator_storage_node, dec.GetU32());
  PORYGON_ASSIGN_OR_RETURN(h.round_created, dec.GetU64());
  PORYGON_ASSIGN_OR_RETURN(h.shard, dec.GetU32());
  PORYGON_ASSIGN_OR_RETURN(h.tx_count, dec.GetU32());
  PORYGON_ASSIGN_OR_RETURN(h.tx_root, GetHash(&dec));
  if (!dec.Done()) return Status::Corruption("trailing header bytes");
  return h;
}

BlockId TransactionBlockHeader::Id() const {
  return crypto::Sha256::Hash(Encode());
}

void TransactionBlock::SealHeader() {
  std::vector<Hash256> ids;
  ids.reserve(transactions.size());
  for (const auto& t : transactions) ids.push_back(t.Id());
  header.tx_root = crypto::ComputeMerkleRoot(ids);
  header.tx_count = static_cast<uint32_t>(transactions.size());
}

bool TransactionBlock::BodyMatchesHeader() const {
  if (transactions.size() != header.tx_count) return false;
  std::vector<Hash256> ids;
  ids.reserve(transactions.size());
  for (const auto& t : transactions) ids.push_back(t.Id());
  return crypto::ComputeMerkleRoot(ids) == header.tx_root;
}

Bytes TransactionBlock::Encode() const {
  wire::Writer w;
  w.Blob(header.Encode()).Varint(transactions.size());
  for (const auto& t : transactions) w.Raw(t.Encode());
  return w.Take();
}

Result<TransactionBlock> TransactionBlock::Decode(ByteView data) {
  TransactionBlock block;
  wire::Reader r(data);
  ByteView header_raw;
  uint64_t count = 0;
  // Borrowed-view header read: relay/chunk reassembly paths decode bodies
  // out of buffers they already own, so the nested header needs no copy.
  r.BlobView(&header_raw).Varint(&count);
  PORYGON_RETURN_IF_ERROR(r.status());
  PORYGON_ASSIGN_OR_RETURN(block.header,
                           TransactionBlockHeader::Decode(header_raw));
  block.transactions.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    PORYGON_ASSIGN_OR_RETURN(Transaction t,
                             Transaction::DecodeFrom(r.decoder()));
    block.transactions.push_back(std::move(t));
  }
  PORYGON_RETURN_IF_ERROR(r.Finish("block"));
  return block;
}

Bytes WitnessProof::Encode() const {
  Encoder enc;
  PutHash(&enc, block_id);
  PutKey(&enc, witness);
  enc.PutFixed(ByteView(signature.data(), signature.size()));
  return enc.TakeBuffer();
}

Result<WitnessProof> WitnessProof::Decode(ByteView data) {
  Decoder dec(data);
  WitnessProof p;
  PORYGON_ASSIGN_OR_RETURN(p.block_id, GetHash(&dec));
  PORYGON_ASSIGN_OR_RETURN(p.witness, GetKey(&dec));
  PORYGON_ASSIGN_OR_RETURN(Bytes sig, dec.GetFixed(64));
  std::memcpy(p.signature.data(), sig.data(), 64);
  if (!dec.Done()) return Status::Corruption("trailing proof bytes");
  return p;
}

Bytes ProposalBlock::Encode() const {
  Encoder enc;
  enc.PutU64(height);
  PutHash(&enc, prev_hash);
  enc.PutU64(round);
  PutKey(&enc, leader);

  enc.PutVarint(shard_tx_blocks.size());
  for (const auto& list : shard_tx_blocks) {
    enc.PutVarint(list.size());
    for (const auto& id : list) PutHash(&enc, id);
  }

  enc.PutVarint(shard_updates.size());
  for (const auto& list : shard_updates) {
    enc.PutVarint(list.size());
    for (const auto& u : list) {
      // Varint-coded: update lists (U) are the bulk of a proposal block
      // under cross-shard load.
      enc.PutVarint(u.account);
      enc.PutVarint(u.value.balance);
      enc.PutVarint(u.value.nonce);
    }
  }

  enc.PutVarint(discarded.size());
  for (const auto& id : discarded) PutHash(&enc, id);

  enc.PutVarint(shard_roots.size());
  for (const auto& r : shard_roots) PutHash(&enc, r);
  PutHash(&enc, state_root);
  PutDouble(&enc, ordering_threshold);
  PutDouble(&enc, execution_threshold);
  return enc.TakeBuffer();
}

Result<ProposalBlock> ProposalBlock::Decode(ByteView data) {
  Decoder dec(data);
  ProposalBlock b;
  PORYGON_ASSIGN_OR_RETURN(b.height, dec.GetU64());
  PORYGON_ASSIGN_OR_RETURN(b.prev_hash, GetHash(&dec));
  PORYGON_ASSIGN_OR_RETURN(b.round, dec.GetU64());
  PORYGON_ASSIGN_OR_RETURN(b.leader, GetKey(&dec));

  PORYGON_ASSIGN_OR_RETURN(uint64_t n_shards, dec.GetVarint());
  b.shard_tx_blocks.resize(n_shards);
  for (auto& list : b.shard_tx_blocks) {
    PORYGON_ASSIGN_OR_RETURN(uint64_t n, dec.GetVarint());
    list.resize(n);
    for (auto& id : list) {
      PORYGON_ASSIGN_OR_RETURN(id, GetHash(&dec));
    }
  }

  PORYGON_ASSIGN_OR_RETURN(uint64_t n_update_shards, dec.GetVarint());
  b.shard_updates.resize(n_update_shards);
  for (auto& list : b.shard_updates) {
    PORYGON_ASSIGN_OR_RETURN(uint64_t n, dec.GetVarint());
    list.resize(n);
    for (auto& u : list) {
      PORYGON_ASSIGN_OR_RETURN(u.account, dec.GetVarint());
      PORYGON_ASSIGN_OR_RETURN(u.value.balance, dec.GetVarint());
      PORYGON_ASSIGN_OR_RETURN(u.value.nonce, dec.GetVarint());
    }
  }

  PORYGON_ASSIGN_OR_RETURN(uint64_t n_disc, dec.GetVarint());
  b.discarded.resize(n_disc);
  for (auto& id : b.discarded) {
    PORYGON_ASSIGN_OR_RETURN(id, GetHash(&dec));
  }

  PORYGON_ASSIGN_OR_RETURN(uint64_t n_roots, dec.GetVarint());
  b.shard_roots.resize(n_roots);
  for (auto& r : b.shard_roots) {
    PORYGON_ASSIGN_OR_RETURN(r, GetHash(&dec));
  }
  PORYGON_ASSIGN_OR_RETURN(b.state_root, GetHash(&dec));
  PORYGON_ASSIGN_OR_RETURN(b.ordering_threshold, GetDouble(&dec));
  PORYGON_ASSIGN_OR_RETURN(b.execution_threshold, GetDouble(&dec));
  if (!dec.Done()) return Status::Corruption("trailing proposal bytes");
  return b;
}

Hash256 ProposalBlock::Hash() const { return crypto::Sha256::Hash(Encode()); }

}  // namespace porygon::tx
