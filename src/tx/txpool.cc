#include "tx/txpool.h"

#include <cstring>

namespace porygon::tx {

size_t TxPool::IdHash::operator()(const TxId& id) const {
  size_t v;
  std::memcpy(&v, id.data(), sizeof(v));
  return v;
}

TxPool::TxPool(int shard_bits)
    : shard_bits_(shard_bits), queues_(size_t{1} << shard_bits) {}

bool TxPool::Add(const Transaction& transaction) {
  TxId id = transaction.Id();
  if (!seen_.insert(id).second) return false;
  uint32_t shard = state::ShardOfAccount(transaction.from, shard_bits_);
  queues_[shard].push_back(transaction);
  return true;
}

TransactionBlock TxPool::PackBlock(uint32_t shard, size_t max_count,
                                   uint32_t creator, uint64_t round) {
  TransactionBlock block;
  block.header.creator_storage_node = creator;
  block.header.round_created = round;
  block.header.shard = shard;
  auto& queue = queues_[shard];
  while (!queue.empty() && block.transactions.size() < max_count) {
    block.transactions.push_back(std::move(queue.front()));
    queue.pop_front();
  }
  block.SealHeader();
  return block;
}

size_t TxPool::PendingTotal() const {
  size_t total = 0;
  for (const auto& q : queues_) total += q.size();
  return total;
}

}  // namespace porygon::tx
