#ifndef PORYGON_TX_TRANSACTION_H_
#define PORYGON_TX_TRANSACTION_H_

#include <cstdint>
#include <vector>

#include "common/bytes.h"
#include "common/codec.h"
#include "common/status.h"
#include "crypto/ed25519.h"
#include "crypto/sha256.h"
#include "state/account.h"

namespace porygon::tx {

using TxId = crypto::Hash256;

/// A value transfer in the account model. The paper's transactions are
/// ~112 bytes on the wire; our encoding matches that budget (5 x u64 body +
/// 64-byte signature + framing).
struct Transaction {
  state::AccountId from = 0;
  state::AccountId to = 0;
  uint64_t amount = 0;
  /// Sender nonce; execution rejects replays/duplicates (§IV-C1(c)).
  uint64_t nonce = 0;
  /// Client submission time (µs, virtual) — drives user-perceived latency.
  uint64_t submitted_at = 0;
  crypto::Signature signature{};

  /// Hash of the body (everything but the signature).
  TxId Id() const;

  /// Declared read/write set, the paper's "accessed states ... pre-recorded
  /// using software tools": a transfer touches exactly {from, to}.
  std::vector<state::AccountId> AccessedAccounts() const { return {from, to}; }

  /// Cross-shard iff the two accounts map to different shards.
  bool IsCrossShard(int shard_bits) const {
    return state::ShardOfAccount(from, shard_bits) !=
           state::ShardOfAccount(to, shard_bits);
  }

  /// Wire footprint charged by the bandwidth model.
  static constexpr size_t kWireSize = 112;

  Bytes Encode() const;
  static Result<Transaction> Decode(ByteView data);
  /// Decodes from a Decoder positioned at a transaction (for block bodies).
  static Result<Transaction> DecodeFrom(Decoder* dec);

  bool operator==(const Transaction& other) const;
};

}  // namespace porygon::tx

#endif  // PORYGON_TX_TRANSACTION_H_
