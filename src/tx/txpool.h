#ifndef PORYGON_TX_TXPOOL_H_
#define PORYGON_TX_TXPOOL_H_

#include <deque>
#include <unordered_set>
#include <vector>

#include "tx/blocks.h"
#include "tx/transaction.h"

namespace porygon::tx {

/// Per-storage-node mempool. Transactions are bucketed by the shard of
/// their *initiating* account (cross-shard transactions execute first in the
/// sender's shard, §IV-D2), deduplicated by id, and drained FIFO into
/// transaction blocks.
class TxPool {
 public:
  explicit TxPool(int shard_bits);

  /// Adds a transaction; duplicates (same id) are ignored. Returns whether
  /// it was admitted.
  bool Add(const Transaction& transaction);

  /// Drains up to `max_count` transactions of `shard` into a block. Returns
  /// a sealed block (possibly with fewer transactions, or zero).
  TransactionBlock PackBlock(uint32_t shard, size_t max_count,
                             uint32_t creator, uint64_t round);

  size_t PendingInShard(uint32_t shard) const {
    return queues_[shard].size();
  }
  size_t PendingTotal() const;

 private:
  struct IdHash {
    size_t operator()(const TxId& id) const;
  };

  int shard_bits_;
  std::vector<std::deque<Transaction>> queues_;
  std::unordered_set<TxId, IdHash> seen_;
};

}  // namespace porygon::tx

#endif  // PORYGON_TX_TXPOOL_H_
