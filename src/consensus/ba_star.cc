#include "consensus/ba_star.h"

#include <algorithm>
#include <cstring>
#include <string>

#include "common/codec.h"

namespace porygon::consensus {

Bytes Vote::SigningBytes() const {
  Encoder enc;
  enc.PutString("porygon.vote");
  enc.PutU64(instance);
  enc.PutU32(step);
  enc.PutU8(kind);
  enc.PutFixed(ByteView(value.data(), value.size()));
  return enc.TakeBuffer();
}

Bytes Vote::Encode() const {
  Encoder enc;
  enc.PutU64(instance);
  enc.PutU32(step);
  enc.PutU8(kind);
  enc.PutFixed(ByteView(value.data(), value.size()));
  enc.PutFixed(ByteView(voter.data(), voter.size()));
  enc.PutFixed(ByteView(signature.data(), signature.size()));
  return enc.TakeBuffer();
}

Result<Vote> Vote::Decode(ByteView data) {
  Decoder dec(data);
  Vote v;
  PORYGON_ASSIGN_OR_RETURN(v.instance, dec.GetU64());
  PORYGON_ASSIGN_OR_RETURN(v.step, dec.GetU32());
  PORYGON_ASSIGN_OR_RETURN(v.kind, dec.GetU8());
  if (v.kind > Vote::kCert) return Status::Corruption("bad vote kind");
  PORYGON_ASSIGN_OR_RETURN(Bytes value, dec.GetFixed(32));
  std::memcpy(v.value.data(), value.data(), 32);
  PORYGON_ASSIGN_OR_RETURN(Bytes voter, dec.GetFixed(32));
  std::memcpy(v.voter.data(), voter.data(), 32);
  PORYGON_ASSIGN_OR_RETURN(Bytes sig, dec.GetFixed(64));
  std::memcpy(v.signature.data(), sig.data(), 64);
  if (!dec.Done()) return Status::Corruption("trailing vote bytes");
  return v;
}

size_t DecisionCert::WireSize() const {
  // instance + value + votes.
  return 8 + 32 + votes.size() * (8 + 4 + 1 + 32 + 32 + 64);
}

Bytes DecisionCert::Encode() const {
  Encoder enc;
  enc.PutU64(instance);
  enc.PutFixed(ByteView(value.data(), value.size()));
  enc.PutU32(static_cast<uint32_t>(votes.size()));
  for (const Vote& v : votes) {
    enc.PutU64(v.instance);
    enc.PutU32(v.step);
    enc.PutU8(v.kind);
    enc.PutFixed(ByteView(v.value.data(), v.value.size()));
    enc.PutFixed(ByteView(v.voter.data(), v.voter.size()));
    enc.PutFixed(ByteView(v.signature.data(), v.signature.size()));
  }
  return enc.TakeBuffer();
}

Result<DecisionCert> DecisionCert::Decode(ByteView data) {
  Decoder dec(data);
  DecisionCert cert;
  PORYGON_ASSIGN_OR_RETURN(cert.instance, dec.GetU64());
  PORYGON_ASSIGN_OR_RETURN(Bytes value, dec.GetFixed(32));
  std::memcpy(cert.value.data(), value.data(), 32);
  PORYGON_ASSIGN_OR_RETURN(uint32_t n, dec.GetU32());
  if (n > 4096) return Status::Corruption("oversized cert");
  cert.votes.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    Vote v;
    PORYGON_ASSIGN_OR_RETURN(v.instance, dec.GetU64());
    PORYGON_ASSIGN_OR_RETURN(v.step, dec.GetU32());
    PORYGON_ASSIGN_OR_RETURN(v.kind, dec.GetU8());
    if (v.kind > Vote::kCert) return Status::Corruption("bad vote kind");
    PORYGON_ASSIGN_OR_RETURN(Bytes vv, dec.GetFixed(32));
    std::memcpy(v.value.data(), vv.data(), 32);
    PORYGON_ASSIGN_OR_RETURN(Bytes voter, dec.GetFixed(32));
    std::memcpy(v.voter.data(), voter.data(), 32);
    PORYGON_ASSIGN_OR_RETURN(Bytes sig, dec.GetFixed(64));
    std::memcpy(v.signature.data(), sig.data(), 64);
    cert.votes.push_back(std::move(v));
  }
  if (!dec.Done()) return Status::Corruption("trailing cert bytes");
  return cert;
}

bool BaStar::Key::operator<(const Key& o) const {
  if (step != o.step) return step < o.step;
  if (kind != o.kind) return kind < o.kind;
  return std::memcmp(value.data(), o.value.data(), value.size()) < 0;
}

BaStar::BaStar(crypto::CryptoProvider* provider, crypto::KeyPair identity,
               std::vector<crypto::PublicKey> committee,
               VoteBroadcast broadcast, Decision on_decision)
    : provider_(provider),
      identity_(std::move(identity)),
      committee_(std::move(committee)),
      broadcast_(std::move(broadcast)),
      on_decision_(std::move(on_decision)) {}

bool BaStar::IsMember(const crypto::PublicKey& key) const {
  return std::find(committee_.begin(), committee_.end(), key) !=
         committee_.end();
}

void BaStar::Propose(uint64_t instance, const crypto::Hash256& proposal) {
  if (started_) return;
  started_ = true;
  instance_ = instance;
  proposal_ = proposal;
  if (instruments_.instances != nullptr) instruments_.instances->Increment();
  if (tracer_ != nullptr && tracer_->enabled()) {
    trace_span_ = tracer_->BeginSpan(trace_ctx_, "ba_star", trace_node_);
  }
  CastVote(Vote::kSoft, proposal_);
}

void BaStar::CastVote(uint8_t kind, const crypto::Hash256& value) {
  Vote v;
  v.instance = instance_;
  v.step = step_;
  v.kind = kind;
  v.value = value;
  v.voter = identity_.public_key;
  v.signature = provider_->Sign(identity_.private_key, v.SigningBytes());
  if (instruments_.votes_cast != nullptr) instruments_.votes_cast->Increment();
  Count(v);          // Count our own vote.
  broadcast_(v);     // Ship to the committee.
}

void BaStar::OnVote(const Vote& vote) {
  if (!started_ || decided_) return;
  if (vote.instance != instance_) return;
  if (vote.kind > Vote::kCert) return;
  if (!IsMember(vote.voter)) return;
  if (!provider_->Verify(vote.voter, vote.SigningBytes(), vote.signature)) {
    return;
  }
  if (instruments_.votes_received != nullptr) {
    instruments_.votes_received->Increment();
  }
  Count(vote);
}

void BaStar::OnVotes(const std::vector<Vote>& votes) {
  if (votes.empty() || !started_ || decided_) return;
  // Signature verification is pure, so it batches ahead of counting (one
  // pool fan-out); membership/instance filters run first so only plausible
  // votes are verified. Counting stays strictly in input order, with the
  // serial loop's checks re-evaluated per vote — a quorum reached mid-batch
  // stops later votes from counting, exactly as serial OnVote calls would.
  constexpr size_t kNoJob = static_cast<size_t>(-1);
  std::vector<crypto::CryptoProvider::VerifyJob> jobs;
  std::vector<size_t> job_of(votes.size(), kNoJob);
  for (size_t i = 0; i < votes.size(); ++i) {
    const Vote& v = votes[i];
    if (v.instance != instance_ || v.kind > Vote::kCert ||
        !IsMember(v.voter)) {
      continue;
    }
    job_of[i] = jobs.size();
    jobs.push_back({v.voter, v.SigningBytes(), v.signature});
  }
  if (instruments_.registry != nullptr && !jobs.empty()) {
    instruments_.registry
        ->GetCounter("runtime.tasks", {{"phase", "verify"}})
        ->Add(jobs.size());
  }
  const std::vector<uint8_t> ok = provider_->VerifyBatch(jobs);
  for (size_t i = 0; i < votes.size(); ++i) {
    if (decided_) return;
    if (job_of[i] == kNoJob || ok[job_of[i]] == 0) continue;
    if (instruments_.votes_received != nullptr) {
      instruments_.votes_received->Increment();
    }
    Count(votes[i]);
  }
}

void BaStar::Count(const Vote& vote) {
  // Step synchronization: a valid vote from a later step means the rest of
  // the committee timed out past us (our copy of their earlier traffic was
  // lost or withheld). Steps only ever advance on local timers, so without
  // this fast-forward a delivery-skewed committee holds a permanent step
  // offset and no step ever assembles a same-step quorum — the instance
  // livelocks. Jump to the leader step and re-vote the strongest value
  // there (the same choice OnTimeout would make).
  if (vote.step > step_ && !decided_) {
    step_ = vote.step;
    cert_voted_ = false;
    if (instruments_.registry != nullptr) {
      instruments_.registry->GetCounter("consensus.step_syncs")->Increment();
    }
    crypto::Hash256 best = proposal_;
    size_t best_count = 0;
    for (const auto& [key, supporters] : tally_) {
      if (key.kind == Vote::kSoft && supporters.size() > best_count) {
        best_count = supporters.size();
        best = key.value;
      }
    }
    CastVote(Vote::kSoft, best);
    if (decided_) return;  // Our own catch-up vote completed a quorum.
  }
  // First vote per (voter, step, kind) wins: equivocation is inert for
  // the tally. But a *conflicting* second vote passed the same signature
  // and membership checks as the first, so the pair is attributable
  // misbehavior — record it as evidence before discarding.
  auto& seen = voted_[{vote.step, vote.kind}];
  if (!seen.insert(vote.voter).second) {
    RecordEquivocation(vote);
    return;
  }

  Key key{vote.step, vote.kind, vote.value};
  auto& supporters = tally_[key];
  supporters.insert(vote.voter);
  vote_store_[key].push_back(vote);

  const size_t quorum = QuorumSize();
  if (supporters.size() < quorum) return;

  if (vote.kind == Vote::kSoft && vote.step == step_ && !cert_voted_) {
    cert_voted_ = true;
    CastVote(Vote::kCert, vote.value);
    return;
  }
  if (vote.kind == Vote::kCert && !decided_) {
    decided_ = true;
    decision_value_ = vote.value;
    if (instruments_.decisions != nullptr) instruments_.decisions->Increment();
    if (tracer_ != nullptr && trace_span_ != 0) {
      tracer_->EndSpan(trace_span_);
      trace_span_ = 0;
    }
    DecisionCert cert;
    cert.instance = instance_;
    cert.value = vote.value;
    cert.votes = vote_store_[key];
    on_decision_(cert);
  }
}

void BaStar::RecordEquivocation(const Vote& second) {
  // Look up the vote that won (same voter, step, kind). A same-value
  // duplicate — e.g. our own broadcast echoed back through a relay — is
  // benign and produces no evidence.
  const Vote* first = nullptr;
  for (const auto& [key, votes] : vote_store_) {
    if (key.step != second.step || key.kind != second.kind) continue;
    for (const Vote& v : votes) {
      if (v.voter == second.voter) {
        first = &v;
        break;
      }
    }
    if (first != nullptr) break;
  }
  if (first == nullptr || first->value == second.value) return;
  if (!evidenced_.emplace(second.step, second.kind, second.voter).second) {
    return;
  }
  EquivocationEvidence ev;
  ev.instance = instance_;
  ev.step = second.step;
  ev.kind = second.kind;
  ev.first = *first;
  ev.second = second;
  evidence_.push_back(ev);
  if (evidence_sink_) evidence_sink_(evidence_.back());
}

bool BaStar::AdoptCert(const DecisionCert& cert) {
  if (!started_ || decided_) return false;
  if (cert.instance != instance_) return false;
  std::set<crypto::PublicKey> voters;
  for (const Vote& v : cert.votes) {
    if (v.instance != instance_ || v.kind != Vote::kCert) return false;
    if (v.value != cert.value) return false;
    if (!IsMember(v.voter)) return false;
    if (!voters.insert(v.voter).second) return false;  // Duplicate voter.
    if (!provider_->Verify(v.voter, v.SigningBytes(), v.signature)) {
      return false;
    }
  }
  if (voters.size() < QuorumSize()) return false;
  decided_ = true;
  decision_value_ = cert.value;
  if (instruments_.decisions != nullptr) instruments_.decisions->Increment();
  if (instruments_.registry != nullptr) {
    instruments_.registry->GetCounter("consensus.cert_adoptions")->Increment();
  }
  if (tracer_ != nullptr && trace_span_ != 0) {
    tracer_->EndSpan(trace_span_);
    trace_span_ = 0;
  }
  on_decision_(cert);
  return true;
}

void BaStar::OnTimeout() {
  if (!started_ || decided_) return;
  if (instruments_.timeouts != nullptr) instruments_.timeouts->Increment();
  if (instruments_.registry != nullptr) {
    // Label by the delay this step waited, so exports show the schedule.
    instruments_.registry
        ->GetCounter("consensus.timeouts",
                     {{"delay_us", std::to_string(NextTimeoutDelay())}})
        ->Increment();
  }
  ++step_;
  cert_voted_ = false;
  // Re-vote the value with the strongest soft support seen so far (our own
  // proposal if nothing stronger).
  crypto::Hash256 best = proposal_;
  size_t best_count = 0;
  for (const auto& [key, supporters] : tally_) {
    if (key.kind == Vote::kSoft && supporters.size() > best_count) {
      best_count = supporters.size();
      best = key.value;
    }
  }
  CastVote(Vote::kSoft, best);
}

}  // namespace porygon::consensus
