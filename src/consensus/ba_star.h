#ifndef PORYGON_CONSENSUS_BA_STAR_H_
#define PORYGON_CONSENSUS_BA_STAR_H_

#include <cstdint>
#include <functional>
#include <map>
#include <set>
#include <tuple>
#include <vector>

#include "common/bytes.h"
#include "common/status.h"
#include "crypto/provider.h"
#include "crypto/sha256.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace porygon::consensus {

/// One committee vote. BA★ (Gilad et al., used by Blockene and Porygon's
/// OC) proceeds in two vote kinds per step: soft votes (graded consensus)
/// then cert votes; 2/3 of the committee certifying a value decides it. The
/// same structure serves the ByShard baseline's Tendermint-style engine
/// (prevote/precommit map to soft/cert).
struct Vote {
  uint64_t instance = 0;  ///< Consensus instance (round).
  uint32_t step = 0;      ///< Retry step within the instance.
  uint8_t kind = 0;       ///< 0 = soft, 1 = cert.
  crypto::Hash256 value{};
  crypto::PublicKey voter{};
  crypto::Signature signature{};

  static constexpr uint8_t kSoft = 0;
  static constexpr uint8_t kCert = 1;

  Bytes Encode() const;
  static Result<Vote> Decode(ByteView data);
  /// The signed portion (everything but voter + signature).
  Bytes SigningBytes() const;
};

/// Attributable proof that one committee member cast two conflicting
/// votes for the same (instance, step, kind). Both votes carry valid
/// signatures over different values, so the pair is self-certifying:
/// anyone holding the committee membership can verify the misbehavior
/// without trusting the reporter.
struct EquivocationEvidence {
  uint64_t instance = 0;
  uint32_t step = 0;
  uint8_t kind = 0;
  Vote first;   ///< The vote that was counted (first-vote-wins).
  Vote second;  ///< The conflicting vote that was rejected.
};

/// A decision certificate: the cert votes that crossed the threshold.
/// Anyone can verify it against the committee membership — this is what
/// lets messages "be verified ... even if the lifecycle of this committee
/// has ended" (§IV-B1).
struct DecisionCert {
  uint64_t instance = 0;
  crypto::Hash256 value{};
  std::vector<Vote> votes;

  size_t WireSize() const;
  Bytes Encode() const;
  static Result<DecisionCert> Decode(ByteView data);
};

/// Message-driven BA★ instance for one committee and one decision.
///
/// Happy path: each member soft-votes the leader proposal it saw; on a 2/3
/// soft quorum for v it cert-votes v; on a 2/3 cert quorum it decides v and
/// emits the certificate. `OnTimeout` implements the retry step: members
/// re-soft-vote their best-known value at a higher step, which converges
/// once the network stabilizes (honest-majority assumption per Lemma 1).
///
/// Votes are verified (signature + membership) before counting; equivocating
/// voters have only their first vote per (step, kind) counted, and the
/// conflicting pair is recorded as EquivocationEvidence (first-vote-wins
/// *plus evidence*): both votes passed signature + membership checks, so
/// a conflicting second value is attributable misbehavior, not noise.
class BaStar {
 public:
  using VoteBroadcast = std::function<void(const Vote&)>;
  using Decision = std::function<void(const DecisionCert&)>;
  using EvidenceSink = std::function<void(const EquivocationEvidence&)>;

  BaStar(crypto::CryptoProvider* provider, crypto::KeyPair identity,
         std::vector<crypto::PublicKey> committee, VoteBroadcast broadcast,
         Decision on_decision);

  /// Registry counters an embedding system can hand every BA★ instance it
  /// creates. All pointers optional; null entries are skipped.
  struct Instruments {
    obs::Counter* instances = nullptr;       ///< Propose() calls.
    obs::Counter* votes_cast = nullptr;      ///< Own soft+cert votes sent.
    obs::Counter* votes_received = nullptr;  ///< Verified peer votes.
    obs::Counter* timeouts = nullptr;        ///< Retry steps taken.
    obs::Counter* decisions = nullptr;       ///< Certificates emitted.
    /// When set, each retry step also increments a per-delay series
    /// `consensus.timeouts{delay_us=...}` so exports show the backoff
    /// schedule actually taken.
    obs::MetricsRegistry* registry = nullptr;
  };
  void set_instruments(const Instruments& instruments) {
    instruments_ = instruments;
  }

  /// Optional distributed tracing: this instance records a "ba_star" span
  /// (Propose -> decision) into `ctx`'s trace, attributed to `node`. Each
  /// committee member's instance contributes its own span, so the round
  /// lane shows consensus progress per node.
  void set_trace(obs::Tracer* tracer, const obs::TraceContext& ctx,
                 std::string node) {
    tracer_ = tracer;
    trace_ctx_ = ctx;
    trace_node_ = std::move(node);
  }

  /// Configures the retry backoff: step r waits min(base_us << r, cap_us)
  /// before OnTimeout fires again. Defaults keep a flat schedule (cap ==
  /// base) so drivers that poll at a fixed cadence are unaffected.
  void set_backoff(int64_t base_us, int64_t cap_us) {
    backoff_base_us_ = base_us;
    backoff_cap_us_ = cap_us < base_us ? base_us : cap_us;
  }

  /// Delay the timeout driver should wait before the next OnTimeout, given
  /// the current retry step: min(base << step, cap). Exposed so embedding
  /// actors can schedule without duplicating the doubling rule.
  int64_t NextTimeoutDelay() const {
    const int shift = step_ > 6 ? 6 : static_cast<int>(step_);
    const int64_t raw = backoff_base_us_ << shift;
    return raw > backoff_cap_us_ ? backoff_cap_us_ : raw;
  }

  /// Called once per newly detected equivocation (deduped per voter,
  /// step, kind). Evidence also accumulates in `evidence()` regardless.
  void set_evidence_sink(EvidenceSink sink) { evidence_sink_ = std::move(sink); }

  /// Equivocation evidence collected by this instance, in detection order.
  const std::vector<EquivocationEvidence>& evidence() const {
    return evidence_;
  }

  /// Starts the instance by soft-voting `proposal` at step 0.
  void Propose(uint64_t instance, const crypto::Hash256& proposal);

  /// Feeds a vote received from the network (self-votes are internal).
  void OnVote(const Vote& vote);

  /// Feeds a batch of buffered votes: signature checks fan out in one
  /// CryptoProvider::VerifyBatch call, then votes are counted in input
  /// order — observationally identical to a serial OnVote loop (including
  /// the early exit once a quorum decides mid-batch).
  void OnVotes(const std::vector<Vote>& votes);

  /// Advances to the next step, re-voting the value with the most soft
  /// support (fallback for lossy/adversarial schedules).
  void OnTimeout();

  /// Adopts a transferable decision certificate: verifies the cert as a
  /// unit (a cert-quorum of distinct committee signatures over the same
  /// value) and decides on it directly. Certs deliberately bypass the
  /// per-vote equivocation dedup — an equivocator whose salted cert vote
  /// reached us first has burned its (step, cert) slot in the tally, so a
  /// valid quorum that includes that voter's honest vote could never be
  /// re-assembled vote-by-vote. Returns true if the cert was adopted.
  bool AdoptCert(const DecisionCert& cert);

  bool decided() const { return decided_; }
  const crypto::Hash256& decision() const { return decision_value_; }
  uint64_t instance() const { return instance_; }
  uint32_t step() const { return step_; }
  /// Votes needed for a quorum: floor(2n/3) + 1.
  size_t QuorumSize() const { return committee_.size() * 2 / 3 + 1; }

 private:
  void CastVote(uint8_t kind, const crypto::Hash256& value);
  void Count(const Vote& vote);
  void RecordEquivocation(const Vote& second);
  bool IsMember(const crypto::PublicKey& key) const;

  crypto::CryptoProvider* provider_;
  crypto::KeyPair identity_;
  Instruments instruments_;
  obs::Tracer* tracer_ = nullptr;
  obs::TraceContext trace_ctx_;
  std::string trace_node_;
  uint64_t trace_span_ = 0;
  std::vector<crypto::PublicKey> committee_;
  VoteBroadcast broadcast_;
  Decision on_decision_;

  uint64_t instance_ = 0;
  uint32_t step_ = 0;
  int64_t backoff_base_us_ = 1'700'000;
  int64_t backoff_cap_us_ = 1'700'000;
  bool started_ = false;
  bool cert_voted_ = false;
  bool decided_ = false;
  crypto::Hash256 proposal_{};
  crypto::Hash256 decision_value_{};

  struct Key {
    uint32_t step;
    uint8_t kind;
    crypto::Hash256 value;
    bool operator<(const Key& o) const;
  };
  // (step, kind, value) -> voters counted; and voter dedupe per (step,kind).
  std::map<Key, std::set<crypto::PublicKey>> tally_;
  std::map<std::pair<uint32_t, uint8_t>, std::set<crypto::PublicKey>> voted_;
  std::map<Key, std::vector<Vote>> vote_store_;  // For certificates.

  EvidenceSink evidence_sink_;
  std::vector<EquivocationEvidence> evidence_;
  // One evidence record per (voter, step, kind): re-broadcasts of the
  // same conflicting vote do not re-report.
  std::set<std::tuple<uint32_t, uint8_t, crypto::PublicKey>> evidenced_;
};

}  // namespace porygon::consensus

#endif  // PORYGON_CONSENSUS_BA_STAR_H_
