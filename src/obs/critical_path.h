#ifndef PORYGON_OBS_CRITICAL_PATH_H_
#define PORYGON_OBS_CRITICAL_PATH_H_

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "net/sim_time.h"
#include "obs/trace.h"

namespace porygon::obs {

/// One direction of one (role-aggregated) link during one round window.
/// `link` is "role.uplink" or "role.downlink" (e.g. "oc_leader.downlink").
/// The round driver builds these by differencing net::LinkActivity
/// snapshots taken at round start and commit, carrying the *per-node
/// mean* of each role per direction: quorum thresholds mask straggling
/// members, and a max would inflate multi-node roles by order statistics
/// alone. Singleton roles (oc_leader) pass through exactly.
struct LinkWindow {
  std::string link;
  uint64_t bytes = 0;
  net::SimTime queue_us = 0;  ///< Queueing delay accumulated in the window.
  net::SimTime busy_us = 0;   ///< Transmission time accumulated in-window.
};

/// Sim-time phase boundaries of one round (0 = never observed). The same
/// boundaries the round trace lane records as spans; kept as plain marks
/// so the analyzer works with tracing off.
struct RoundMarks {
  uint64_t round = 0;
  net::SimTime start = 0;
  net::SimTime witness_end = 0;  ///< First block of the batch crossed Tw.
  net::SimTime decision = 0;     ///< Leader's BA* ordering decision.
  net::SimTime commit = 0;       ///< Proposal block applied at storage.
};

/// Decomposition of one committed round's latency. Segment values are raw
/// accumulated sim-time microseconds: queue/busy segments sum over every
/// message on the worst link, so a deeply oversubscribed link can exceed
/// the wall window — that excess is exactly the backlog signal the
/// dominant-segment attribution keys on. Shares and utilizations are
/// integer per-mille of the round window, clamped to 1000, so every field
/// (and the JSON) is float-free and byte-deterministic.
struct RoundReport {
  RoundMarks marks;
  net::SimTime window_us = 0;  ///< commit - start (the wall window).

  // Latency segments (see DESIGN.md "Bandwidth ledger & critical path").
  net::SimTime compute_us = 0;        ///< Execution-phase overlap in-window.
  net::SimTime serialization_us = 0;  ///< Busy time of the dominant edge.
  net::SimTime uplink_queue_us = 0;   ///< Worst uplink queueing delay.
  net::SimTime propagation_us = 0;    ///< Hop latency along the commit chain.
  net::SimTime downlink_queue_us = 0; ///< Worst downlink queueing delay.
  net::SimTime consensus_wait_us = 0; ///< Witness end -> ordering decision.

  /// Largest segment above, by raw value ("downlink_queue", ...); ties
  /// break in the field-declaration order above.
  std::string dominant_segment;
  /// Most utilized link this window — largest busy time, accumulated
  /// queueing delay breaking ties — e.g. "oc_leader.downlink", and its
  /// busy-time share of the window (per-mille, clamped) — the utilization
  /// figure of the bottleneck.
  std::string dominant_edge;
  uint32_t dominant_edge_share_pm = 0;

  /// Every link window, sorted by link name, each with its utilization
  /// (busy/window, per-mille, clamped to 1000).
  std::vector<LinkWindow> links;
  std::vector<uint32_t> link_util_pm;  ///< Parallel to `links`.

  /// Deterministic single-line JSON (integers and fixed strings only).
  std::string ToJson() const;
};

/// Per-round critical-path analyzer: collects phase marks as the round
/// driver observes them, then decomposes the round window into latency
/// segments when the round commits, attributing the dominant edge from
/// the bandwidth-ledger windows it is handed. Purely sim-time-driven, so
/// reports are byte-identical for a given seed at any thread count.
///
/// Reports are bounded: after `max_reports` rounds, further commits are
/// analyzed but not retained (dropped_reports() counts them).
class CriticalPathAnalyzer {
 public:
  /// Propagation segment model: the commit chain crosses `hops`
  /// store-and-forward hops, each paying the base one-way latency.
  void SetPropagationModel(net::SimTime one_way_latency_us, int hops) {
    latency_us_ = one_way_latency_us;
    hops_ = hops;
  }
  void set_max_reports(size_t n) { max_reports_ = n; }

  void BeginRound(uint64_t round, net::SimTime start);
  void MarkWitnessEnd(uint64_t round, net::SimTime t);
  void MarkDecision(uint64_t round, net::SimTime t);
  /// Execution-phase interval for `exec_round` (the listing executed while
  /// a later round's window is open — the pipeline overlaps them).
  void MarkExecStart(uint64_t exec_round, net::SimTime t);
  void MarkExecEnd(uint64_t exec_round, net::SimTime t);

  /// Closes round `round` at `commit`, decomposes its window against the
  /// link ledger deltas, and returns the retained report (nullptr once
  /// past max_reports, or for a round BeginRound never saw).
  const RoundReport* CommitRound(uint64_t round, net::SimTime commit,
                                 std::vector<LinkWindow> links);

  const std::vector<RoundReport>& reports() const { return reports_; }
  const RoundReport* latest() const {
    return reports_.empty() ? nullptr : &reports_.back();
  }
  uint64_t dropped_reports() const { return dropped_reports_; }

  /// All retained reports as {"rounds":[...]} — one deterministic blob.
  std::string ReportsJson() const;

  /// Most frequent dominant_segment / dominant_edge across retained
  /// reports (lexicographically smallest on ties; "" with no reports).
  std::string DominantSegmentMode() const;
  std::string DominantEdgeMode() const;
  /// Mean utilization (busy/window, 0..1) of `link` over the reports that
  /// saw it; 0 when never seen.
  double MeanUtilization(const std::string& link) const;

  /// Extracts marks for `round` from a recorded span set (the round trace
  /// lane): the node-"system" phase spans "round" (start/end), "witness"
  /// (end), "ordering" (end); per-node instant events on the same lane
  /// (individual signatures, votes) are skipped. Lets tools
  /// rebuild reports from an exported trace; the live analyzer uses direct
  /// marks so it works with tracing off. Spans from other rounds are
  /// ignored.
  static RoundMarks MarksFromSpans(const std::vector<Span>& spans,
                                   uint64_t round);

 private:
  struct ExecInterval {
    net::SimTime start = 0;
    net::SimTime end = 0;  ///< 0 while still open.
  };

  net::SimTime latency_us_ = 500;
  int hops_ = 8;
  size_t max_reports_ = 4096;
  uint64_t dropped_reports_ = 0;
  std::map<uint64_t, RoundMarks> pending_;        // Rounds begun, not committed.
  std::map<uint64_t, ExecInterval> exec_intervals_;  // By exec round.
  std::vector<RoundReport> reports_;
};

}  // namespace porygon::obs

#endif  // PORYGON_OBS_CRITICAL_PATH_H_
