#ifndef PORYGON_OBS_METRICS_H_
#define PORYGON_OBS_METRICS_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace porygon::obs {

/// Instrument labels: (key, value) pairs, e.g. {{"phase", "witness"}}.
/// Registries canonicalize label order, so callers may pass them unsorted.
using Labels = std::vector<std::pair<std::string, std::string>>;

/// Monotone event counter. Plain accumulator: deterministic given a
/// deterministic event order, which is what keeps same-seed exports
/// byte-identical.
class Counter {
 public:
  void Increment() { ++value_; }
  void Add(uint64_t delta) { value_ += delta; }
  uint64_t value() const { return value_; }

 private:
  uint64_t value_ = 0;
};

/// Last-value instrument for levels that move both ways (queue depths,
/// table counts).
class Gauge {
 public:
  void Set(double v) { value_ = v; }
  void Add(double delta) { value_ += delta; }
  double value() const { return value_; }

 private:
  double value_ = 0;
};

/// Point-in-time digest of a histogram (what experiment tables print).
struct HistogramSummary {
  uint64_t count = 0;
  double mean = 0;
  double p50 = 0;
  double p95 = 0;
  double p99 = 0;
  double min = 0;
  double max = 0;
};

/// Fixed-bucket histogram. Buckets are cumulative-style upper bounds
/// (value v lands in the first bucket with v <= bound; larger values land
/// in the implicit overflow bucket). Percentiles interpolate linearly
/// inside the selected bucket and clamp to the observed [min, max], so a
/// histogram fed a single value reports that value for every percentile.
class Histogram {
 public:
  /// `bounds` must be strictly increasing and non-empty.
  explicit Histogram(std::vector<double> bounds);

  void Observe(double v);

  /// `p` in [0, 100].
  double Percentile(double p) const;
  HistogramSummary Summary() const;

  uint64_t count() const { return count_; }
  double sum() const { return sum_; }
  double mean() const { return count_ > 0 ? sum_ / count_ : 0; }
  double min() const { return count_ > 0 ? min_ : 0; }
  double max() const { return count_ > 0 ? max_ : 0; }
  const std::vector<double>& bounds() const { return bounds_; }
  /// bounds().size() + 1 entries; the last is the overflow bucket.
  const std::vector<uint64_t>& bucket_counts() const { return counts_; }

  /// Default bounds for second-scale protocol latencies (100 ms .. 10 min).
  static std::vector<double> LatencyBuckets();

 private:
  std::vector<double> bounds_;
  std::vector<uint64_t> counts_;
  uint64_t count_ = 0;
  double sum_ = 0;
  double min_ = 0;
  double max_ = 0;
};

/// Owns named instruments. Lookup creates on first use; instruments have
/// stable addresses for the registry's lifetime, so hot paths resolve a
/// pointer once and increment through it. Iteration order is the canonical
/// (name, sorted labels) order regardless of creation order — exporters
/// inherit determinism from that.
///
/// Not internally synchronized (the discrete-event engine serializes all
/// accesses, like every other subsystem here).
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter* GetCounter(const std::string& name, const Labels& labels = {});
  Gauge* GetGauge(const std::string& name, const Labels& labels = {});
  /// A gauge excluded from Visit/ExportJson/ExportCsv: for values that are
  /// real but nondeterministic (wall-clock timings), which must never leak
  /// into the byte-identical same-seed exports. Read it back with
  /// FindVolatileGauge or VisitVolatileGauges.
  Gauge* GetVolatileGauge(const std::string& name, const Labels& labels = {});
  /// `bounds` applies only on first creation of this (name, labels) series.
  Histogram* GetHistogram(const std::string& name,
                          const std::vector<double>& bounds,
                          const Labels& labels = {});
  /// Histogram with the default latency buckets.
  Histogram* GetHistogram(const std::string& name, const Labels& labels = {});

  const Counter* FindCounter(const std::string& name,
                             const Labels& labels = {}) const;
  const Gauge* FindGauge(const std::string& name,
                         const Labels& labels = {}) const;
  const Gauge* FindVolatileGauge(const std::string& name,
                                 const Labels& labels = {}) const;
  const Histogram* FindHistogram(const std::string& name,
                                 const Labels& labels = {}) const;

  /// Value of a counter, or 0 when the series was never created (an
  /// instrumented path that never ran).
  uint64_t CounterValue(const std::string& name,
                        const Labels& labels = {}) const;

  void VisitCounters(
      const std::function<void(const std::string& name, const Labels& labels,
                               const Counter& counter)>& fn) const;
  void VisitGauges(
      const std::function<void(const std::string& name, const Labels& labels,
                               const Gauge& gauge)>& fn) const;
  void VisitHistograms(
      const std::function<void(const std::string& name, const Labels& labels,
                               const Histogram& histogram)>& fn) const;
  /// Volatile gauges only (never visited by VisitGauges or the exporters).
  void VisitVolatileGauges(
      const std::function<void(const std::string& name, const Labels& labels,
                               const Gauge& gauge)>& fn) const;

  size_t size() const {
    return counters_.size() + gauges_.size() + histograms_.size();
  }

 private:
  template <typename T>
  struct Series {
    std::string name;
    Labels labels;  // Sorted by key.
    std::unique_ptr<T> instrument;
  };

  static std::string CanonicalKey(const std::string& name,
                                  const Labels& labels);
  static Labels SortedLabels(const Labels& labels);

  std::map<std::string, Series<Counter>> counters_;
  std::map<std::string, Series<Gauge>> gauges_;
  std::map<std::string, Series<Gauge>> volatile_gauges_;
  std::map<std::string, Series<Histogram>> histograms_;
};

/// RAII phase scope over simulated (or any) time: records the elapsed time
/// into a histogram when the scope ends. The clock is injected so actors
/// time phases in sim seconds, keeping observations deterministic.
///
/// Movable (lives in maps keyed by round); a moved-from timer is disarmed.
class PhaseTimer {
 public:
  using Clock = std::function<double()>;

  PhaseTimer() = default;
  PhaseTimer(Histogram* histogram, Clock clock);
  PhaseTimer(PhaseTimer&& other) noexcept;
  PhaseTimer& operator=(PhaseTimer&& other) noexcept;
  PhaseTimer(const PhaseTimer&) = delete;
  PhaseTimer& operator=(const PhaseTimer&) = delete;
  ~PhaseTimer();

  /// Observes the elapsed time now (instead of at destruction) and disarms.
  /// Returns the elapsed seconds (0 if already stopped or cancelled).
  double Stop();

  /// Disarms without observing (the phase never completed).
  void Cancel() { armed_ = false; }

  bool armed() const { return armed_; }

 private:
  Histogram* histogram_ = nullptr;
  Clock clock_;
  double start_ = 0;
  bool armed_ = false;
};

}  // namespace porygon::obs

#endif  // PORYGON_OBS_METRICS_H_
