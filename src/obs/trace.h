#ifndef PORYGON_OBS_TRACE_H_
#define PORYGON_OBS_TRACE_H_

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "net/sim_time.h"

namespace porygon::obs {

/// Propagated trace identity: which causal tree a piece of work belongs to
/// (`trace_id`) and which span caused it (`parent_span`). Rides on message
/// envelopes (net::Message::trace) the way real systems carry trace headers,
/// so spans recorded on different simulated nodes stitch into one tree. A
/// zero trace id means "not traced" and makes every tracing call a no-op.
struct TraceContext {
  uint64_t trace_id = 0;
  uint64_t parent_span = 0;

  bool active() const { return trace_id != 0; }
};

/// One finished (or instant) span: a named sim-time interval attributed to a
/// node, linked to its parent within a trace. `start == end` marks an
/// instant event (a decision, a vote) rather than a duration.
struct Span {
  uint64_t trace_id = 0;
  uint64_t span_id = 0;
  uint64_t parent_span = 0;
  std::string name;
  std::string node;
  net::SimTime start = 0;
  net::SimTime end = 0;
};

/// Sim-time distributed tracer.
///
/// Two lanes of traces share one tracer:
///   - *Round lanes* (`RoundContext`): one always-on trace per protocol
///     round, holding the pipeline-phase spans (witness, ordering, BA*,
///     execution, commit) plus per-node consensus/execution spans. Round
///     lanes are how pipeline bubbles are found.
///   - *Transaction traces* (`NewTransactionTrace`): per-transaction
///     lifecycle trees (submit → witness → ordering → SSE → MSU → commit),
///     sampled — only the first `sample_transactions` submissions get a
///     trace — so a saturated run doesn't drown in per-tx spans.
///
/// Spans are stamped with simulator time via the injected clock, ids are
/// handed out by monotone counters, and the export sorts canonically, so a
/// same-seed run produces byte-identical trace JSON (the same discipline as
/// obs/export.cc). The buffer is bounded: once `max_spans` spans are
/// recorded, further spans are counted in `dropped_spans()` and discarded.
///
/// A default-constructed tracer is disabled; every recording entry point
/// checks one inline bool first, so the disabled cost is near zero.
class Tracer {
 public:
  struct Options {
    bool enabled = false;
    /// Transaction traces granted per run (first come, first sampled).
    uint64_t sample_transactions = 16;
    /// Hard cap on buffered spans (round lanes + transaction traces).
    size_t max_spans = 1 << 16;
  };
  using Clock = std::function<net::SimTime()>;

  Tracer() = default;
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// Arms (or re-arms) the tracer. Passing options.enabled == false keeps
  /// it disabled regardless of the clock.
  void Configure(const Options& options, Clock clock);

  bool enabled() const { return enabled_; }
  net::SimTime now() const { return clock_ ? clock_() : 0; }

  /// Allocates a transaction trace, or an inactive context when disabled or
  /// past the sampling budget. Trace ids are 1-based and sequential.
  TraceContext NewTransactionTrace();

  /// The always-on lane for a protocol round (inactive when disabled).
  TraceContext RoundContext(uint64_t round) const;

  /// The always-on lane for injected faults and failover events (inactive
  /// when disabled). Exported as the "faults" process, so fault timelines
  /// sit beside the round lanes they perturb.
  TraceContext FaultContext() const {
    return enabled_ ? TraceContext{kFaultTraceId, 0} : TraceContext{};
  }

  /// The always-on lane for adversarial actions and the honest protocol's
  /// detections of them (inactive when disabled). Exported as the
  /// "adversary" process, so attack and evidence instants line up against
  /// the round lanes they target.
  TraceContext AdversaryContext() const {
    return enabled_ ? TraceContext{kAdversaryTraceId, 0} : TraceContext{};
  }

  /// Context for children of span `span_id` within `ctx`'s trace.
  static TraceContext ChildOf(const TraceContext& ctx, uint64_t span_id) {
    return TraceContext{ctx.trace_id, span_id};
  }

  /// Opens a span starting now. Returns its span id, or 0 when the span was
  /// not recorded (disabled, inactive context, or buffer full).
  uint64_t BeginSpan(const TraceContext& ctx, const char* name,
                     const std::string& node);
  /// Closes an open span at the current sim time. Unknown/0 ids are ignored.
  void EndSpan(uint64_t span_id);

  /// Records a completed span with explicit sim-time endpoints (used when a
  /// phase boundary is only known in retrospect). Returns the span id or 0.
  uint64_t RecordSpan(const TraceContext& ctx, const char* name,
                      const std::string& node, net::SimTime start,
                      net::SimTime end);

  /// Records an instant event (zero-duration span) at the current sim time.
  uint64_t Instant(const TraceContext& ctx, const char* name,
                   const std::string& node) {
    net::SimTime t = now();
    return RecordSpan(ctx, name, node, t, t);
  }

  /// Records one sample of a named counter track at the current sim time
  /// (exported as a Chrome "C" event under the "counters" process, which
  /// Perfetto renders as a stepped graph). Values are integers by contract
  /// — callers quantize (e.g. per-mille utilization) so the export stays
  /// float-free and byte-deterministic. No-op when disabled; samples share
  /// the max_spans budget (overflow counts into dropped_spans()).
  void RecordCounterSample(const std::string& track, int64_t value);

  /// One counter-track sample (see RecordCounterSample).
  struct CounterSample {
    std::string track;
    net::SimTime t = 0;
    int64_t value = 0;
  };

  /// Finished spans, in recording order. Open spans are not included.
  const std::vector<Span>& spans() const { return spans_; }
  /// Counter samples, in recording order.
  const std::vector<CounterSample>& counter_samples() const {
    return counter_samples_;
  }
  size_t span_count() const { return spans_.size(); }
  uint64_t dropped_spans() const { return dropped_spans_; }
  /// Transaction traces allocated so far (<= sample_transactions).
  uint64_t sampled_transactions() const { return next_tx_trace_; }

  /// Serializes every finished span as Chrome trace_event JSON (the format
  /// Perfetto and chrome://tracing load): one "X" complete event per span
  /// ("i" instant events for zero-duration spans), pid = trace, tid = node,
  /// with process_name/thread_name metadata naming both. Timestamps are the
  /// integer sim-time microseconds, events appear in canonical
  /// (trace, start, span id) order, and no floating-point values are
  /// emitted, so identical span sets produce byte-identical output.
  std::string ExportChromeJson() const;

  /// Base for round-lane trace ids; rounds live far above any plausible
  /// transaction-sample budget so the id spaces never collide.
  static constexpr uint64_t kRoundTraceBase = 1'000'000'000;
  /// Fixed id of the fault lane, above every plausible round id.
  static constexpr uint64_t kFaultTraceId = 2'000'000'000;
  /// Fixed id of the adversary lane, above the fault lane.
  static constexpr uint64_t kAdversaryTraceId = 3'000'000'000;
  /// Fixed id (pid) of the counter-track process, above every lane.
  static constexpr uint64_t kCounterTraceId = 4'000'000'000;

 private:
  struct OpenSpan {
    uint64_t trace_id = 0;
    uint64_t parent_span = 0;
    std::string name;
    std::string node;
    net::SimTime start = 0;
  };

  bool enabled_ = false;
  Options options_;
  Clock clock_;
  uint64_t next_tx_trace_ = 0;
  uint64_t next_span_ = 0;
  uint64_t dropped_spans_ = 0;
  std::vector<Span> spans_;
  std::vector<CounterSample> counter_samples_;
  std::unordered_map<uint64_t, OpenSpan> open_;
};

}  // namespace porygon::obs

#endif  // PORYGON_OBS_TRACE_H_
