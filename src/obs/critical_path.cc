#include "obs/critical_path.h"

#include <algorithm>

namespace porygon::obs {

namespace {

std::string U64(uint64_t v) { return std::to_string(v); }
std::string I64(int64_t v) { return std::to_string(v); }

bool EndsWith(const std::string& s, const char* suffix) {
  const std::string suf(suffix);
  return s.size() >= suf.size() &&
         s.compare(s.size() - suf.size(), suf.size(), suf) == 0;
}

uint32_t PerMille(net::SimTime part, net::SimTime whole) {
  if (whole <= 0) return 0;
  if (part <= 0) return 0;
  const uint64_t pm = static_cast<uint64_t>(part) * 1000 /
                      static_cast<uint64_t>(whole);
  return pm > 1000 ? 1000u : static_cast<uint32_t>(pm);
}

}  // namespace

std::string RoundReport::ToJson() const {
  std::string out = "{";
  out += "\"round\":" + U64(marks.round);
  out += ",\"start_us\":" + I64(marks.start);
  out += ",\"witness_end_us\":" + I64(marks.witness_end);
  out += ",\"decision_us\":" + I64(marks.decision);
  out += ",\"commit_us\":" + I64(marks.commit);
  out += ",\"window_us\":" + I64(window_us);
  out += ",\"segments\":{";
  out += "\"compute_us\":" + I64(compute_us);
  out += ",\"serialization_us\":" + I64(serialization_us);
  out += ",\"uplink_queue_us\":" + I64(uplink_queue_us);
  out += ",\"propagation_us\":" + I64(propagation_us);
  out += ",\"downlink_queue_us\":" + I64(downlink_queue_us);
  out += ",\"consensus_wait_us\":" + I64(consensus_wait_us);
  out += "}";
  out += ",\"dominant_segment\":\"" + dominant_segment + "\"";
  out += ",\"dominant_edge\":\"" + dominant_edge + "\"";
  out += ",\"dominant_edge_share_pm\":" + U64(dominant_edge_share_pm);
  out += ",\"links\":[";
  for (size_t i = 0; i < links.size(); ++i) {
    if (i > 0) out += ",";
    out += "{\"link\":\"" + links[i].link + "\"";
    out += ",\"bytes\":" + U64(links[i].bytes);
    out += ",\"queue_us\":" + I64(links[i].queue_us);
    out += ",\"busy_us\":" + I64(links[i].busy_us);
    out += ",\"util_pm\":" + U64(i < link_util_pm.size() ? link_util_pm[i] : 0);
    out += "}";
  }
  out += "]}";
  return out;
}

void CriticalPathAnalyzer::BeginRound(uint64_t round, net::SimTime start) {
  RoundMarks marks;
  marks.round = round;
  marks.start = start;
  pending_[round] = marks;
}

void CriticalPathAnalyzer::MarkWitnessEnd(uint64_t round, net::SimTime t) {
  auto it = pending_.find(round);
  if (it != pending_.end() && it->second.witness_end == 0) {
    it->second.witness_end = t;
  }
}

void CriticalPathAnalyzer::MarkDecision(uint64_t round, net::SimTime t) {
  auto it = pending_.find(round);
  if (it != pending_.end() && it->second.decision == 0) {
    it->second.decision = t;
  }
}

void CriticalPathAnalyzer::MarkExecStart(uint64_t exec_round, net::SimTime t) {
  auto it = exec_intervals_.find(exec_round);
  if (it == exec_intervals_.end()) {
    exec_intervals_[exec_round] = ExecInterval{t, 0};
  }
}

void CriticalPathAnalyzer::MarkExecEnd(uint64_t exec_round, net::SimTime t) {
  auto it = exec_intervals_.find(exec_round);
  if (it != exec_intervals_.end() && it->second.end == 0) {
    it->second.end = t;
  }
}

const RoundReport* CriticalPathAnalyzer::CommitRound(
    uint64_t round, net::SimTime commit, std::vector<LinkWindow> links) {
  auto it = pending_.find(round);
  if (it == pending_.end()) return nullptr;
  RoundReport rep;
  rep.marks = it->second;
  pending_.erase(it);
  rep.marks.commit = commit;
  rep.window_us = commit > rep.marks.start ? commit - rep.marks.start : 0;

  // Consensus wait: the witnessed batch sitting in BA* until the leader's
  // ordering decision.
  if (rep.marks.decision > rep.marks.witness_end &&
      rep.marks.witness_end > 0) {
    rep.consensus_wait_us = rep.marks.decision - rep.marks.witness_end;
  }

  // Compute: execution-phase time overlapping this window. The pipeline
  // executes listing r-1 while round r's window is open, so this is the
  // execution work the window actually contains. Open intervals (no end
  // mark yet) are clipped at the commit.
  for (const auto& [exec_round, iv] : exec_intervals_) {
    const net::SimTime end = iv.end > 0 ? iv.end : commit;
    const net::SimTime lo = std::max(iv.start, rep.marks.start);
    const net::SimTime hi = std::min(end, commit);
    if (hi > lo) rep.compute_us += hi - lo;
  }
  // Bound memory: closed intervals older than the metric lookback.
  while (!exec_intervals_.empty() &&
         exec_intervals_.begin()->first + 8 < round &&
         exec_intervals_.begin()->second.end != 0) {
    exec_intervals_.erase(exec_intervals_.begin());
  }

  std::sort(links.begin(), links.end(),
            [](const LinkWindow& a, const LinkWindow& b) {
              return a.link < b.link;
            });

  // Queue segments: the worst (deepest-backlog) link per direction. The
  // dominant edge is the most *utilized* link — largest busy time — with
  // accumulated queueing delay as the tie-break. Busy time is the primary
  // key because summed queueing delay scales with message count: a 1%-
  // utilized link crossed by thousands of tiny messages can out-sum a
  // saturated link carrying the round's actual payload, and widening the
  // former would not move the commit. Ties (e.g. committee members that
  // receive the same broadcasts as their leader) fall to whoever queued
  // longer — the link the round actually waited on.
  const LinkWindow* dominant = nullptr;
  for (const LinkWindow& lw : links) {
    if (EndsWith(lw.link, ".uplink")) {
      rep.uplink_queue_us = std::max(rep.uplink_queue_us, lw.queue_us);
    } else if (EndsWith(lw.link, ".downlink")) {
      rep.downlink_queue_us = std::max(rep.downlink_queue_us, lw.queue_us);
    }
    if (dominant == nullptr || lw.busy_us > dominant->busy_us ||
        (lw.busy_us == dominant->busy_us &&
         lw.queue_us > dominant->queue_us)) {
      dominant = &lw;
    }
  }
  if (dominant != nullptr) {
    rep.dominant_edge = dominant->link;
    rep.serialization_us = dominant->busy_us;
    rep.dominant_edge_share_pm = PerMille(dominant->busy_us, rep.window_us);
  }
  rep.propagation_us = latency_us_ * hops_;

  rep.link_util_pm.reserve(links.size());
  for (const LinkWindow& lw : links) {
    rep.link_util_pm.push_back(PerMille(lw.busy_us, rep.window_us));
  }
  rep.links = std::move(links);

  // Dominant segment: argmax by raw value; ties break in declaration
  // order, so the attribution is total and deterministic.
  const std::pair<const char*, net::SimTime> segments[] = {
      {"compute", rep.compute_us},
      {"serialization", rep.serialization_us},
      {"uplink_queue", rep.uplink_queue_us},
      {"propagation", rep.propagation_us},
      {"downlink_queue", rep.downlink_queue_us},
      {"consensus_wait", rep.consensus_wait_us},
  };
  const char* best = segments[0].first;
  net::SimTime best_v = segments[0].second;
  for (const auto& [name, v] : segments) {
    if (v > best_v) {
      best = name;
      best_v = v;
    }
  }
  rep.dominant_segment = best;

  if (reports_.size() >= max_reports_) {
    ++dropped_reports_;
    return nullptr;
  }
  reports_.push_back(std::move(rep));
  return &reports_.back();
}

std::string CriticalPathAnalyzer::ReportsJson() const {
  std::string out = "{\"rounds\":[";
  for (size_t i = 0; i < reports_.size(); ++i) {
    if (i > 0) out += ",";
    out += "\n";
    out += reports_[i].ToJson();
  }
  out += reports_.empty() ? "]}\n" : "\n]}\n";
  return out;
}

namespace {
std::string ModeOf(const std::vector<RoundReport>& reports,
                   std::string RoundReport::*field) {
  std::map<std::string, uint64_t> counts;
  for (const RoundReport& r : reports) {
    if (!(r.*field).empty()) ++counts[r.*field];
  }
  std::string best;
  uint64_t best_n = 0;
  for (const auto& [name, n] : counts) {
    if (n > best_n) {  // Ascending map order: first max wins ties.
      best = name;
      best_n = n;
    }
  }
  return best;
}
}  // namespace

std::string CriticalPathAnalyzer::DominantSegmentMode() const {
  return ModeOf(reports_, &RoundReport::dominant_segment);
}

std::string CriticalPathAnalyzer::DominantEdgeMode() const {
  return ModeOf(reports_, &RoundReport::dominant_edge);
}

double CriticalPathAnalyzer::MeanUtilization(const std::string& link) const {
  uint64_t sum_pm = 0;
  uint64_t seen = 0;
  for (const RoundReport& r : reports_) {
    for (size_t i = 0; i < r.links.size(); ++i) {
      if (r.links[i].link == link) {
        sum_pm += i < r.link_util_pm.size() ? r.link_util_pm[i] : 0;
        ++seen;
        break;
      }
    }
  }
  return seen == 0 ? 0.0
                   : static_cast<double>(sum_pm) /
                         (1000.0 * static_cast<double>(seen));
}

RoundMarks CriticalPathAnalyzer::MarksFromSpans(const std::vector<Span>& spans,
                                                uint64_t round) {
  RoundMarks marks;
  marks.round = round;
  const uint64_t trace_id = Tracer::kRoundTraceBase + round;
  for (const Span& s : spans) {
    if (s.trace_id != trace_id) continue;
    // The lane also carries per-node instant events (individual witness
    // signatures, BA* votes); the phase boundaries are the spans the round
    // driver records as node "system".
    if (s.node != "system") continue;
    if (s.name == "round") {
      marks.start = s.start;
      marks.commit = s.end;
    } else if (s.name == "witness" && marks.witness_end == 0) {
      marks.witness_end = s.end;
    } else if (s.name == "ordering" && marks.decision == 0) {
      marks.decision = s.end;
    }
  }
  return marks;
}

}  // namespace porygon::obs
