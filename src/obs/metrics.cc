#include "obs/metrics.h"

#include <algorithm>

namespace porygon::obs {

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  counts_.assign(bounds_.size() + 1, 0);
}

void Histogram::Observe(double v) {
  size_t i = 0;
  while (i < bounds_.size() && v > bounds_[i]) ++i;
  ++counts_[i];
  sum_ += v;
  if (count_ == 0) {
    min_ = v;
    max_ = v;
  } else {
    min_ = std::min(min_, v);
    max_ = std::max(max_, v);
  }
  ++count_;
}

double Histogram::Percentile(double p) const {
  if (count_ == 0) return 0;
  if (p <= 0) return min_;
  if (p >= 100) return max_;
  // Rank of the target observation (1-based, fractional).
  double rank = p / 100.0 * static_cast<double>(count_);
  if (rank < 1) rank = 1;
  uint64_t cumulative = 0;
  for (size_t i = 0; i < counts_.size(); ++i) {
    if (counts_[i] == 0) continue;
    uint64_t next = cumulative + counts_[i];
    if (static_cast<double>(next) >= rank) {
      double lower = i == 0 ? 0 : bounds_[i - 1];
      double upper = i < bounds_.size() ? bounds_[i] : max_;
      // Interpolate linearly within the bucket by the fraction of its
      // population below the target rank.
      double frac = (rank - static_cast<double>(cumulative)) /
                    static_cast<double>(counts_[i]);
      double v = lower + frac * (upper - lower);
      return std::min(std::max(v, min_), max_);
    }
    cumulative = next;
  }
  return max_;
}

HistogramSummary Histogram::Summary() const {
  HistogramSummary s;
  s.count = count_;
  s.mean = mean();
  s.p50 = Percentile(50);
  s.p95 = Percentile(95);
  s.p99 = Percentile(99);
  s.min = min();
  s.max = max();
  return s;
}

std::vector<double> Histogram::LatencyBuckets() {
  return {0.1, 0.25, 0.5, 1,  2,  3,  4,  5,   7.5, 10,
          15,  20,   30,  45, 60, 90, 120, 180, 300, 600};
}

Labels MetricsRegistry::SortedLabels(const Labels& labels) {
  Labels sorted = labels;
  std::sort(sorted.begin(), sorted.end());
  return sorted;
}

std::string MetricsRegistry::CanonicalKey(const std::string& name,
                                          const Labels& labels) {
  std::string key = name;
  key.push_back('|');
  for (size_t i = 0; i < labels.size(); ++i) {
    if (i > 0) key.push_back(',');
    key += labels[i].first;
    key.push_back('=');
    key += labels[i].second;
  }
  return key;
}

Counter* MetricsRegistry::GetCounter(const std::string& name,
                                     const Labels& labels) {
  Labels sorted = SortedLabels(labels);
  auto [it, inserted] = counters_.try_emplace(CanonicalKey(name, sorted));
  if (inserted) {
    it->second.name = name;
    it->second.labels = std::move(sorted);
    it->second.instrument = std::make_unique<Counter>();
  }
  return it->second.instrument.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name,
                                 const Labels& labels) {
  Labels sorted = SortedLabels(labels);
  auto [it, inserted] = gauges_.try_emplace(CanonicalKey(name, sorted));
  if (inserted) {
    it->second.name = name;
    it->second.labels = std::move(sorted);
    it->second.instrument = std::make_unique<Gauge>();
  }
  return it->second.instrument.get();
}

Gauge* MetricsRegistry::GetVolatileGauge(const std::string& name,
                                         const Labels& labels) {
  Labels sorted = SortedLabels(labels);
  auto [it, inserted] =
      volatile_gauges_.try_emplace(CanonicalKey(name, sorted));
  if (inserted) {
    it->second.name = name;
    it->second.labels = std::move(sorted);
    it->second.instrument = std::make_unique<Gauge>();
  }
  return it->second.instrument.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name,
                                         const std::vector<double>& bounds,
                                         const Labels& labels) {
  Labels sorted = SortedLabels(labels);
  auto [it, inserted] = histograms_.try_emplace(CanonicalKey(name, sorted));
  if (inserted) {
    it->second.name = name;
    it->second.labels = std::move(sorted);
    it->second.instrument = std::make_unique<Histogram>(bounds);
  }
  return it->second.instrument.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name,
                                         const Labels& labels) {
  return GetHistogram(name, Histogram::LatencyBuckets(), labels);
}

const Counter* MetricsRegistry::FindCounter(const std::string& name,
                                            const Labels& labels) const {
  auto it = counters_.find(CanonicalKey(name, SortedLabels(labels)));
  return it == counters_.end() ? nullptr : it->second.instrument.get();
}

const Gauge* MetricsRegistry::FindGauge(const std::string& name,
                                        const Labels& labels) const {
  auto it = gauges_.find(CanonicalKey(name, SortedLabels(labels)));
  return it == gauges_.end() ? nullptr : it->second.instrument.get();
}

const Gauge* MetricsRegistry::FindVolatileGauge(const std::string& name,
                                                const Labels& labels) const {
  auto it = volatile_gauges_.find(CanonicalKey(name, SortedLabels(labels)));
  return it == volatile_gauges_.end() ? nullptr
                                      : it->second.instrument.get();
}

const Histogram* MetricsRegistry::FindHistogram(const std::string& name,
                                                const Labels& labels) const {
  auto it = histograms_.find(CanonicalKey(name, SortedLabels(labels)));
  return it == histograms_.end() ? nullptr : it->second.instrument.get();
}

uint64_t MetricsRegistry::CounterValue(const std::string& name,
                                       const Labels& labels) const {
  const Counter* c = FindCounter(name, labels);
  return c != nullptr ? c->value() : 0;
}

void MetricsRegistry::VisitCounters(
    const std::function<void(const std::string&, const Labels&,
                             const Counter&)>& fn) const {
  for (const auto& [key, series] : counters_) {
    fn(series.name, series.labels, *series.instrument);
  }
}

void MetricsRegistry::VisitGauges(
    const std::function<void(const std::string&, const Labels&, const Gauge&)>&
        fn) const {
  for (const auto& [key, series] : gauges_) {
    fn(series.name, series.labels, *series.instrument);
  }
}

void MetricsRegistry::VisitVolatileGauges(
    const std::function<void(const std::string&, const Labels&, const Gauge&)>&
        fn) const {
  for (const auto& [key, series] : volatile_gauges_) {
    fn(series.name, series.labels, *series.instrument);
  }
}

void MetricsRegistry::VisitHistograms(
    const std::function<void(const std::string&, const Labels&,
                             const Histogram&)>& fn) const {
  for (const auto& [key, series] : histograms_) {
    fn(series.name, series.labels, *series.instrument);
  }
}

PhaseTimer::PhaseTimer(Histogram* histogram, Clock clock)
    : histogram_(histogram),
      clock_(std::move(clock)),
      start_(clock_ ? clock_() : 0),
      armed_(histogram_ != nullptr && clock_ != nullptr) {}

PhaseTimer::PhaseTimer(PhaseTimer&& other) noexcept
    : histogram_(other.histogram_),
      clock_(std::move(other.clock_)),
      start_(other.start_),
      armed_(other.armed_) {
  other.armed_ = false;
}

PhaseTimer& PhaseTimer::operator=(PhaseTimer&& other) noexcept {
  if (this != &other) {
    if (armed_) Stop();
    histogram_ = other.histogram_;
    clock_ = std::move(other.clock_);
    start_ = other.start_;
    armed_ = other.armed_;
    other.armed_ = false;
  }
  return *this;
}

PhaseTimer::~PhaseTimer() {
  if (armed_) Stop();
}

double PhaseTimer::Stop() {
  if (!armed_) return 0;
  armed_ = false;
  double elapsed = clock_() - start_;
  histogram_->Observe(elapsed);
  return elapsed;
}

}  // namespace porygon::obs
