#ifndef PORYGON_OBS_EXPORT_H_
#define PORYGON_OBS_EXPORT_H_

#include <string>

#include "obs/metrics.h"

namespace porygon::obs {

/// Serializes every series in the registry as one JSON document:
///
///   {
///     "counters":   [{"name": ..., "labels": {...}, "value": N}, ...],
///     "gauges":     [{"name": ..., "labels": {...}, "value": X}, ...],
///     "histograms": [{"name": ..., "labels": {...}, "count": N,
///                     "sum": X, "min": X, "max": X,
///                     "p50": X, "p95": X, "p99": X,
///                     "buckets": [{"le": bound, "count": N}, ...,
///                                 {"le": "inf", "count": N}]}, ...]
///   }
///
/// Series appear in canonical (name, sorted labels) order and doubles are
/// printed with "%.17g", so identical registry contents produce
/// byte-identical output — the property the determinism tests pin down.
std::string ExportJson(const MetricsRegistry& registry);

/// Flat CSV form of the same data: `type,name,labels,field,value` with
/// labels joined as "k=v|k=v". Histograms emit one row per summary field
/// (count/sum/min/max/p50/p95/p99) plus one per bucket (field "le=BOUND").
std::string ExportCsv(const MetricsRegistry& registry);

}  // namespace porygon::obs

#endif  // PORYGON_OBS_EXPORT_H_
