#include "obs/trace.h"

#include <algorithm>
#include <cstdio>
#include <map>
#include <set>
#include <utility>

namespace porygon::obs {
namespace {

std::string FormatU64(uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%llu", static_cast<unsigned long long>(v));
  return buf;
}

std::string FormatI64(int64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
  return buf;
}

// Span/node names are identifiers we mint ourselves, but escape anyway so
// the output is always valid JSON.
std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

}  // namespace

void Tracer::Configure(const Options& options, Clock clock) {
  options_ = options;
  clock_ = std::move(clock);
  enabled_ = options_.enabled && clock_ != nullptr;
}

TraceContext Tracer::NewTransactionTrace() {
  if (!enabled_ || next_tx_trace_ >= options_.sample_transactions) return {};
  return TraceContext{++next_tx_trace_, 0};
}

TraceContext Tracer::RoundContext(uint64_t round) const {
  if (!enabled_) return {};
  return TraceContext{kRoundTraceBase + round, 0};
}

uint64_t Tracer::BeginSpan(const TraceContext& ctx, const char* name,
                           const std::string& node) {
  if (!enabled_ || !ctx.active()) return 0;
  if (spans_.size() + open_.size() >= options_.max_spans) {
    ++dropped_spans_;
    return 0;
  }
  uint64_t id = ++next_span_;
  open_.emplace(id, OpenSpan{ctx.trace_id, ctx.parent_span, name, node,
                             now()});
  return id;
}

void Tracer::EndSpan(uint64_t span_id) {
  if (span_id == 0) return;
  auto it = open_.find(span_id);
  if (it == open_.end()) return;
  Span s;
  s.trace_id = it->second.trace_id;
  s.span_id = span_id;
  s.parent_span = it->second.parent_span;
  s.name = std::move(it->second.name);
  s.node = std::move(it->second.node);
  s.start = it->second.start;
  s.end = now();
  open_.erase(it);
  spans_.push_back(std::move(s));
}

uint64_t Tracer::RecordSpan(const TraceContext& ctx, const char* name,
                            const std::string& node, net::SimTime start,
                            net::SimTime end) {
  if (!enabled_ || !ctx.active()) return 0;
  if (spans_.size() + open_.size() >= options_.max_spans) {
    ++dropped_spans_;
    return 0;
  }
  Span s;
  s.trace_id = ctx.trace_id;
  s.span_id = ++next_span_;
  s.parent_span = ctx.parent_span;
  s.name = name;
  s.node = node;
  s.start = start;
  s.end = end < start ? start : end;
  spans_.push_back(std::move(s));
  return spans_.back().span_id;
}

void Tracer::RecordCounterSample(const std::string& track, int64_t value) {
  if (!enabled_) return;
  if (spans_.size() + open_.size() + counter_samples_.size() >=
      options_.max_spans) {
    ++dropped_spans_;
    return;
  }
  counter_samples_.push_back(CounterSample{track, now(), value});
}

std::string Tracer::ExportChromeJson() const {
  // Canonical event order: (trace, start, span id). Span ids are assigned in
  // event order, which is deterministic for a deterministic simulation, so
  // the sort (and therefore the bytes) is a pure function of the run.
  std::vector<const Span*> ordered;
  ordered.reserve(spans_.size());
  for (const Span& s : spans_) ordered.push_back(&s);
  std::sort(ordered.begin(), ordered.end(), [](const Span* a, const Span* b) {
    if (a->trace_id != b->trace_id) return a->trace_id < b->trace_id;
    if (a->start != b->start) return a->start < b->start;
    return a->span_id < b->span_id;
  });

  // pid = trace id, tid = node. Chrome tids are numbers; map node labels to
  // dense ids in sorted-name order and name both via metadata events.
  std::map<std::string, uint64_t> node_tid;
  for (const Span& s : spans_) node_tid.emplace(s.node, 0);
  std::vector<std::string> tid_node(node_tid.size() + 1);
  uint64_t next_tid = 1;
  for (auto& [node, tid] : node_tid) {
    tid = next_tid++;
    tid_node[tid] = node;
  }

  std::set<uint64_t> pids;
  std::set<std::pair<uint64_t, uint64_t>> pid_tids;
  for (const Span* s : ordered) {
    pids.insert(s->trace_id);
    pid_tids.insert({s->trace_id, node_tid[s->node]});
  }

  auto trace_name = [](uint64_t trace_id) -> std::string {
    if (trace_id == kAdversaryTraceId) return "adversary";
    if (trace_id == kFaultTraceId) return "faults";
    if (trace_id >= kRoundTraceBase) {
      return "round " + FormatU64(trace_id - kRoundTraceBase);
    }
    return "tx " + FormatU64(trace_id);
  };

  std::string out = "{\"traceEvents\":[";
  bool first = true;
  auto comma = [&] {
    if (!first) out.push_back(',');
    first = false;
    out += "\n";
  };

  for (uint64_t pid : pids) {
    comma();
    out += "{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":" +
           FormatU64(pid) + ",\"tid\":0,\"args\":{\"name\":\"" +
           JsonEscape(trace_name(pid)) + "\"}}";
  }
  for (const auto& [pid, tid] : pid_tids) {
    const std::string& node = tid_node[tid];
    comma();
    out += "{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":" +
           FormatU64(pid) + ",\"tid\":" + FormatU64(tid) +
           ",\"args\":{\"name\":\"" + JsonEscape(node) + "\"}}";
  }

  for (const Span* s : ordered) {
    comma();
    const bool instant = s->end == s->start;
    out += "{\"ph\":\"";
    out += instant ? "i" : "X";
    out += "\",\"name\":\"" + JsonEscape(s->name) + "\",\"cat\":\"";
    if (s->trace_id == kAdversaryTraceId) {
      out += "adversary";
    } else if (s->trace_id == kFaultTraceId) {
      out += "fault";
    } else if (s->trace_id >= kRoundTraceBase) {
      out += "round";
    } else {
      out += "tx";
    }
    out += "\",\"pid\":" + FormatU64(s->trace_id) +
           ",\"tid\":" + FormatU64(node_tid.at(s->node)) +
           ",\"ts\":" + FormatI64(s->start);
    if (instant) {
      out += ",\"s\":\"t\"";
    } else {
      out += ",\"dur\":" + FormatI64(s->end - s->start);
    }
    out += ",\"args\":{\"span\":" + FormatU64(s->span_id) +
           ",\"parent\":" + FormatU64(s->parent_span) + "}}";
  }
  // Counter tracks: one "C" event per sample under the "counters" process.
  // Canonical (track, time, recording index) order; values are integers by
  // the RecordCounterSample contract, so the bytes stay deterministic.
  if (!counter_samples_.empty()) {
    std::vector<size_t> order(counter_samples_.size());
    for (size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::sort(order.begin(), order.end(), [this](size_t a, size_t b) {
      const CounterSample& ca = counter_samples_[a];
      const CounterSample& cb = counter_samples_[b];
      if (ca.track != cb.track) return ca.track < cb.track;
      if (ca.t != cb.t) return ca.t < cb.t;
      return a < b;
    });
    comma();
    out += "{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":" +
           FormatU64(kCounterTraceId) +
           ",\"tid\":0,\"args\":{\"name\":\"counters\"}}";
    for (size_t i : order) {
      const CounterSample& c = counter_samples_[i];
      comma();
      out += "{\"ph\":\"C\",\"name\":\"" + JsonEscape(c.track) +
             "\",\"pid\":" + FormatU64(kCounterTraceId) +
             ",\"tid\":0,\"ts\":" + FormatI64(c.t) +
             ",\"args\":{\"value\":" + FormatI64(c.value) + "}}";
    }
  }
  out += first ? "]}\n" : "\n]}\n";
  return out;
}

}  // namespace porygon::obs
