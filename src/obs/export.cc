#include "obs/export.h"

#include <cstdio>

namespace porygon::obs {
namespace {

std::string FormatDouble(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

std::string FormatU64(uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%llu", static_cast<unsigned long long>(v));
  return buf;
}

// Instrument names/labels here are identifiers we mint ourselves, but escape
// anyway so the output is always valid JSON.
std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

std::string JsonLabels(const Labels& labels) {
  std::string out = "{";
  for (size_t i = 0; i < labels.size(); ++i) {
    if (i > 0) out.push_back(',');
    out += "\"" + JsonEscape(labels[i].first) + "\":\"" +
           JsonEscape(labels[i].second) + "\"";
  }
  out.push_back('}');
  return out;
}

std::string CsvLabels(const Labels& labels) {
  std::string out;
  for (size_t i = 0; i < labels.size(); ++i) {
    if (i > 0) out.push_back('|');
    out += labels[i].first + "=" + labels[i].second;
  }
  return out;
}

}  // namespace

std::string ExportJson(const MetricsRegistry& registry) {
  std::string out = "{\n  \"counters\": [";
  bool first = true;
  registry.VisitCounters([&](const std::string& name, const Labels& labels,
                             const Counter& c) {
    if (!first) out.push_back(',');
    first = false;
    out += "\n    {\"name\":\"" + JsonEscape(name) +
           "\",\"labels\":" + JsonLabels(labels) +
           ",\"value\":" + FormatU64(c.value()) + "}";
  });
  out += first ? "],\n" : "\n  ],\n";

  out += "  \"gauges\": [";
  first = true;
  registry.VisitGauges(
      [&](const std::string& name, const Labels& labels, const Gauge& g) {
        if (!first) out.push_back(',');
        first = false;
        out += "\n    {\"name\":\"" + JsonEscape(name) +
               "\",\"labels\":" + JsonLabels(labels) +
               ",\"value\":" + FormatDouble(g.value()) + "}";
      });
  out += first ? "],\n" : "\n  ],\n";

  out += "  \"histograms\": [";
  first = true;
  registry.VisitHistograms([&](const std::string& name, const Labels& labels,
                               const Histogram& h) {
    if (!first) out.push_back(',');
    first = false;
    HistogramSummary s = h.Summary();
    out += "\n    {\"name\":\"" + JsonEscape(name) +
           "\",\"labels\":" + JsonLabels(labels) +
           ",\"count\":" + FormatU64(s.count) +
           ",\"sum\":" + FormatDouble(h.sum()) +
           ",\"min\":" + FormatDouble(s.min) +
           ",\"max\":" + FormatDouble(s.max) +
           ",\"p50\":" + FormatDouble(s.p50) +
           ",\"p95\":" + FormatDouble(s.p95) +
           ",\"p99\":" + FormatDouble(s.p99) + ",\"buckets\":[";
    const auto& bounds = h.bounds();
    const auto& counts = h.bucket_counts();
    for (size_t i = 0; i < counts.size(); ++i) {
      if (i > 0) out.push_back(',');
      if (i < bounds.size()) {
        out += "{\"le\":" + FormatDouble(bounds[i]) +
               ",\"count\":" + FormatU64(counts[i]) + "}";
      } else {
        out += "{\"le\":\"inf\",\"count\":" + FormatU64(counts[i]) + "}";
      }
    }
    out += "]}";
  });
  out += first ? "]\n" : "\n  ]\n";
  out += "}\n";
  return out;
}

std::string ExportCsv(const MetricsRegistry& registry) {
  std::string out = "type,name,labels,field,value\n";
  registry.VisitCounters([&](const std::string& name, const Labels& labels,
                             const Counter& c) {
    out += "counter," + name + "," + CsvLabels(labels) +
           ",value," + FormatU64(c.value()) + "\n";
  });
  registry.VisitGauges(
      [&](const std::string& name, const Labels& labels, const Gauge& g) {
        out += "gauge," + name + "," + CsvLabels(labels) +
               ",value," + FormatDouble(g.value()) + "\n";
      });
  registry.VisitHistograms([&](const std::string& name, const Labels& labels,
                               const Histogram& h) {
    const std::string prefix = "histogram," + name + "," + CsvLabels(labels);
    HistogramSummary s = h.Summary();
    out += prefix + ",count," + FormatU64(s.count) + "\n";
    out += prefix + ",sum," + FormatDouble(h.sum()) + "\n";
    out += prefix + ",min," + FormatDouble(s.min) + "\n";
    out += prefix + ",max," + FormatDouble(s.max) + "\n";
    out += prefix + ",p50," + FormatDouble(s.p50) + "\n";
    out += prefix + ",p95," + FormatDouble(s.p95) + "\n";
    out += prefix + ",p99," + FormatDouble(s.p99) + "\n";
    const auto& bounds = h.bounds();
    const auto& counts = h.bucket_counts();
    for (size_t i = 0; i < counts.size(); ++i) {
      std::string le = i < bounds.size() ? FormatDouble(bounds[i]) : "inf";
      out += prefix + ",le=" + le + "," + FormatU64(counts[i]) + "\n";
    }
  });
  return out;
}

}  // namespace porygon::obs
