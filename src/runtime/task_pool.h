#ifndef PORYGON_RUNTIME_TASK_POOL_H_
#define PORYGON_RUNTIME_TASK_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace porygon::runtime {

// A small fork-join worker pool for fanning deterministic compute out of the
// single-threaded event loop. The pool never runs free-floating tasks: every
// ParallelFor call blocks the caller until all indices have completed, so
// from the event loop's point of view the work is synchronous and the sim
// clock is untouched. Determinism contract for submitted bodies:
//
//   * a body for index i may only read shared inputs and write state that is
//     disjoint per index (e.g. out[i], a per-shard subtree);
//   * bodies must not touch the RNG, the sim clock, the event queue, the
//     Logger, or the Tracer;
//   * any cross-index merge happens on the caller thread afterwards, in
//     index order.
//
// Under this contract the observable result is byte-identical whether the
// pool has 0 workers (serial fallback on the caller thread) or N.
class TaskPool {
 public:
  // Creates a pool with `threads` workers. 0 means no workers: ParallelFor
  // degenerates to a plain serial loop on the caller thread, running the
  // exact same per-index body.
  explicit TaskPool(int threads = 0);
  ~TaskPool();

  TaskPool(const TaskPool&) = delete;
  TaskPool& operator=(const TaskPool&) = delete;

  int thread_count() const { return static_cast<int>(workers_.size()); }

  // Runs body(i) for every i in [0, n), blocking until all complete.
  // Indices are claimed dynamically, so bodies may run in any order and on
  // any thread — the body must be safe under the contract above. Exceptions
  // thrown by bodies are not supported (the codebase is exception-free).
  void ParallelFor(size_t n, const std::function<void(size_t)>& body);

  // Cumulative bookkeeping, maintained by the calling thread (reading it is
  // only meaningful from the event-loop thread). tasks_run counts indices
  // executed; wall_us is real elapsed time inside ParallelFor. Wall time is
  // inherently nondeterministic and must never reach a deterministic export.
  uint64_t tasks_run() const { return tasks_run_; }
  uint64_t wall_us() const { return wall_us_; }

  // Resolves a requested thread count against the PORYGON_THREADS
  // environment variable (which wins when set to a valid non-negative
  // integer). Negative requests are treated as 0.
  static int ResolveThreads(int requested);

 private:
  struct Batch {
    size_t n = 0;
    const std::function<void(size_t)>* body = nullptr;
    std::atomic<size_t> next{0};
    std::atomic<size_t> done{0};
    std::atomic<int> active{0};  // Workers currently inside the batch.
  };

  void WorkerLoop();
  static void RunIndices(Batch* batch);

  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  Batch* batch_ = nullptr;  // Guarded by mu_; non-null while a batch runs.
  uint64_t batch_seq_ = 0;  // Guarded by mu_; bumped per ParallelFor.
  bool stop_ = false;       // Guarded by mu_.

  uint64_t tasks_run_ = 0;  // Caller-thread only.
  uint64_t wall_us_ = 0;    // Caller-thread only.
};

// Runs fn(i) for every i in [0, n) on the pool and returns the results in
// index order. `fn` must obey the TaskPool determinism contract. `pool` may
// be null (serial).
template <typename T, typename Fn>
std::vector<T> ParallelMap(TaskPool* pool, size_t n, Fn&& fn) {
  std::vector<T> out(n);
  if (pool == nullptr) {
    for (size_t i = 0; i < n; ++i) out[i] = fn(i);
    return out;
  }
  pool->ParallelFor(n, [&](size_t i) { out[i] = fn(i); });
  return out;
}

}  // namespace porygon::runtime

#endif  // PORYGON_RUNTIME_TASK_POOL_H_
