#include "runtime/task_pool.h"

#include <chrono>
#include <cstdlib>

namespace porygon::runtime {

TaskPool::TaskPool(int threads) {
  if (threads < 0) threads = 0;
  workers_.reserve(static_cast<size_t>(threads));
  for (int t = 0; t < threads; ++t) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

TaskPool::~TaskPool() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void TaskPool::RunIndices(Batch* batch) {
  for (;;) {
    size_t i = batch->next.fetch_add(1, std::memory_order_relaxed);
    if (i >= batch->n) break;
    (*batch->body)(i);
    batch->done.fetch_add(1, std::memory_order_acq_rel);
  }
}

void TaskPool::WorkerLoop() {
  uint64_t seen_seq = 0;
  for (;;) {
    Batch* batch = nullptr;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [&] {
        return stop_ || (batch_ != nullptr && batch_seq_ != seen_seq);
      });
      if (stop_) return;
      batch = batch_;
      seen_seq = batch_seq_;
      batch->active.fetch_add(1, std::memory_order_relaxed);
    }
    RunIndices(batch);
    {
      // Exit under the lock so the caller's completion wait cannot miss the
      // notification; once active drops to 0 with all indices done, the
      // caller may destroy the (stack-allocated) batch.
      std::unique_lock<std::mutex> lock(mu_);
      batch->active.fetch_sub(1, std::memory_order_acq_rel);
    }
    done_cv_.notify_all();
  }
}

void TaskPool::ParallelFor(size_t n, const std::function<void(size_t)>& body) {
  if (n == 0) return;
  const auto start = std::chrono::steady_clock::now();
  if (workers_.empty()) {
    // Serial fallback: same per-index body, caller thread, index order.
    for (size_t i = 0; i < n; ++i) body(i);
  } else {
    Batch batch;
    batch.n = n;
    batch.body = &body;
    {
      std::unique_lock<std::mutex> lock(mu_);
      batch_ = &batch;
      ++batch_seq_;
    }
    work_cv_.notify_all();
    // The caller participates too, then blocks until every index has
    // finished and every worker has stepped out of the batch.
    RunIndices(&batch);
    {
      std::unique_lock<std::mutex> lock(mu_);
      done_cv_.wait(lock, [&] {
        return batch.done.load(std::memory_order_acquire) == batch.n &&
               batch.active.load(std::memory_order_acquire) == 0;
      });
      batch_ = nullptr;
    }
  }
  tasks_run_ += n;
  wall_us_ += static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - start)
          .count());
}

int TaskPool::ResolveThreads(int requested) {
  if (requested < 0) requested = 0;
  const char* env = std::getenv("PORYGON_THREADS");
  if (env != nullptr && *env != '\0') {
    char* end = nullptr;
    long v = std::strtol(env, &end, 10);
    if (end != nullptr && *end == '\0' && v >= 0 && v <= 1024) {
      return static_cast<int>(v);
    }
  }
  return requested;
}

}  // namespace porygon::runtime
