#ifndef PORYGON_CORE_COMMITTEE_H_
#define PORYGON_CORE_COMMITTEE_H_

#include <cstdint>
#include <vector>

#include "common/bytes.h"
#include "crypto/provider.h"
#include "crypto/sha256.h"
#include "crypto/vrf.h"

namespace porygon::core {

/// A node's role for one round, derived solely from its own VRF output and
/// the thresholds published in the latest proposal block (§IV-B3): every
/// node can assess its membership without coordination.
enum class Role {
  kOrdering,   ///< Ordering Committee (runs Ordering + Commit phases).
  kExecution,  ///< New Execution Committee member (Witness now, Execute in 2).
  kIdle,       ///< Not selected this round.
};

struct Assignment {
  Role role = Role::kIdle;
  /// ESC shard for execution members (last N bits of the VRF output).
  uint32_t shard = 0;
  /// Sortition value in [0,1); the smallest OC value is the round leader.
  double sortition = 1.0;
  crypto::VrfProof proof;
};

/// Pure committee-formation logic shared by every stateless node.
class Sortition {
 public:
  /// Seed for round `round` after proposal block `prev_hash` — all nodes
  /// evaluate their VRF on this same input.
  static Bytes SeedFor(uint64_t round, const crypto::Hash256& prev_hash);

  /// Evaluates this node's VRF and derives its assignment from thresholds.
  /// `ordering_threshold` and `execution_threshold` are cumulative-fraction
  /// cutoffs: sortition < ord → OC; < ord+exec → EC (shard by last bits).
  static Assignment Assign(crypto::CryptoProvider* provider,
                           const crypto::PrivateKey& key, uint64_t round,
                           const crypto::Hash256& prev_hash,
                           double ordering_threshold,
                           double execution_threshold, int shard_bits);

  /// Validates a claimed assignment (role + shard + sortition) against the
  /// proof — what peers and storage nodes run before accepting messages
  /// from a self-selected committee member.
  static bool Verify(crypto::CryptoProvider* provider,
                     const crypto::PublicKey& pub, uint64_t round,
                     const crypto::Hash256& prev_hash,
                     double ordering_threshold, double execution_threshold,
                     int shard_bits, const Assignment& claimed);
};

}  // namespace porygon::core

#endif  // PORYGON_CORE_COMMITTEE_H_
