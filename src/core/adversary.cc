#include "core/adversary.h"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <utility>

namespace porygon::core {

namespace {

std::vector<std::string> SplitOn(const std::string& s, char sep) {
  std::vector<std::string> parts;
  size_t start = 0;
  while (start <= s.size()) {
    size_t pos = s.find(sep, start);
    if (pos == std::string::npos) {
      parts.push_back(s.substr(start));
      break;
    }
    parts.push_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return parts;
}

bool ParseDouble(const std::string& s, double* out) {
  if (s.empty()) return false;
  char* end = nullptr;
  *out = std::strtod(s.c_str(), &end);
  return end != nullptr && *end == '\0';
}

bool ParseU64(const std::string& s, uint64_t* out) {
  if (s.empty()) return false;
  char* end = nullptr;
  *out = std::strtoull(s.c_str(), &end, 10);
  return end != nullptr && *end == '\0';
}

bool StatelessStrategyFromName(const std::string& name, AdvStrategy* out) {
  if (name == "silent") *out = AdvStrategy::kSilent;
  else if (name == "equivocate") *out = AdvStrategy::kEquivocate;
  else if (name == "forge-witness") *out = AdvStrategy::kForgeWitness;
  else if (name == "tamper-exec") *out = AdvStrategy::kTamperExec;
  else return false;
  return true;
}

bool StorageStrategyFromName(const std::string& name, AdvStrategy* out) {
  if (name == "withhold") *out = AdvStrategy::kWithhold;
  else if (name == "censor") *out = AdvStrategy::kCensor;
  else if (name == "tamper-state") *out = AdvStrategy::kTamperState;
  else if (name == "stale-reply") *out = AdvStrategy::kStaleReply;
  else return false;
  return true;
}

std::string FormatFraction(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%g", v);
  return buf;
}

}  // namespace

const char* AdvStrategyName(AdvStrategy s) {
  switch (s) {
    case AdvStrategy::kHonest: return "honest";
    case AdvStrategy::kSilent: return "silent";
    case AdvStrategy::kEquivocate: return "equivocate";
    case AdvStrategy::kForgeWitness: return "forge-witness";
    case AdvStrategy::kTamperExec: return "tamper-exec";
    case AdvStrategy::kWithhold: return "withhold";
    case AdvStrategy::kCensor: return "censor";
    case AdvStrategy::kTamperState: return "tamper-state";
    case AdvStrategy::kStaleReply: return "stale-reply";
  }
  return "honest";
}

bool IsStatelessStrategy(AdvStrategy s) {
  return s == AdvStrategy::kSilent || s == AdvStrategy::kEquivocate ||
         s == AdvStrategy::kForgeWitness || s == AdvStrategy::kTamperExec;
}

bool IsStorageStrategy(AdvStrategy s) {
  return s == AdvStrategy::kWithhold || s == AdvStrategy::kCensor ||
         s == AdvStrategy::kTamperState || s == AdvStrategy::kStaleReply;
}

Result<AdversarySpec> AdversarySpec::Parse(const std::string& spec) {
  AdversarySpec out;
  bool have_alpha = false;
  bool have_beta = false;
  for (const std::string& clause : SplitOn(spec, ',')) {
    if (clause.empty()) continue;
    std::vector<std::string> f = SplitOn(clause, ':');
    const std::string& key = f[0];
    auto bad = [&] {
      return Status::InvalidArgument("bad adversary clause: " + clause);
    };
    if (key == "stateless" && f.size() == 2) {
      if (!StatelessStrategyFromName(f[1], &out.stateless)) return bad();
    } else if (key == "storage" && f.size() == 2) {
      if (!StorageStrategyFromName(f[1], &out.storage)) return bad();
    } else if (key == "alpha" && f.size() == 2) {
      if (!ParseDouble(f[1], &out.alpha) || out.alpha < 0 || out.alpha > 1) {
        return bad();
      }
      have_alpha = true;
    } else if (key == "beta" && f.size() == 2) {
      if (!ParseDouble(f[1], &out.beta) || out.beta < 0 || out.beta > 1) {
        return bad();
      }
      have_beta = true;
    } else if (key == "seed" && f.size() == 2) {
      if (!ParseU64(f[1], &out.seed)) return bad();
    } else {
      return bad();
    }
  }
  // A strategy clause without an explicit fraction runs at the paper's
  // corruption bound (§III-B): α = 1/4, β = 1/2.
  if (out.stateless != AdvStrategy::kHonest && !have_alpha) out.alpha = 0.25;
  if (out.storage != AdvStrategy::kHonest && !have_beta) out.beta = 0.5;
  return out;
}

std::string AdversarySpec::ToString() const {
  std::string s;
  auto append = [&s](const std::string& clause) {
    if (!s.empty()) s += ',';
    s += clause;
  };
  if (stateless != AdvStrategy::kHonest) {
    append(std::string("stateless:") + AdvStrategyName(stateless));
    append("alpha:" + FormatFraction(alpha));
  }
  if (storage != AdvStrategy::kHonest) {
    append(std::string("storage:") + AdvStrategyName(storage));
    append("beta:" + FormatFraction(beta));
  }
  append("seed:" + std::to_string(seed));
  return s;
}

AdversaryController::AdversaryController(AdversarySpec spec,
                                         obs::MetricsRegistry* registry,
                                         obs::Tracer* tracer)
    : spec_(spec), tracer_(tracer) {
  if (registry == nullptr) return;
  // Evidence counters are registered unconditionally: the detection
  // paths are always on, and a clean run exporting zeros is itself a
  // meaningful statement.
  evidence_equivocation_ =
      registry->GetCounter("adversary.evidence", {{"type", "equivocation"}});
  evidence_relay_equivocation_ = registry->GetCounter(
      "adversary.evidence", {{"type", "relay_equivocation"}});
  evidence_divergent_exec_ = registry->GetCounter(
      "adversary.evidence", {{"type", "divergent_exec_result"}});
  if (spec_.stateless != AdvStrategy::kHonest) {
    stateless_actions_ = registry->GetCounter(
        "adversary.actions", {{"strategy", AdvStrategyName(spec_.stateless)}});
  }
  if (spec_.storage != AdvStrategy::kHonest) {
    storage_actions_ = registry->GetCounter(
        "adversary.actions", {{"strategy", AdvStrategyName(spec_.storage)}});
  }
}

std::vector<AdvStrategy> AdversaryController::PlaceStorage(int count) const {
  std::vector<AdvStrategy> out(static_cast<size_t>(count),
                               AdvStrategy::kHonest);
  if (spec_.storage == AdvStrategy::kHonest) return out;
  // Lowest indices first: storage 0 is every stateless node's initial
  // primary, so this is the most damaging placement of the budget.
  int corrupted = static_cast<int>(static_cast<double>(count) * spec_.beta);
  for (int i = 0; i < corrupted && i < count; ++i) out[i] = spec_.storage;
  return out;
}

std::vector<AdvStrategy> AdversaryController::PlaceStateless(
    const std::vector<int>& order, int oc_size, int leader_idx,
    uint64_t epoch) const {
  std::vector<AdvStrategy> out(order.size(), AdvStrategy::kHonest);
  if (spec_.stateless == AdvStrategy::kHonest || order.empty()) return out;
  const int budget =
      static_cast<int>(static_cast<double>(order.size()) * spec_.alpha);
  // The OC gets its proportional share of the corruption budget first —
  // that is where equivocation and tampered-result attacks bite. The
  // leader is exempt so the honest proposal stream (and thus the chain)
  // is byte-comparable against the adversary-free run.
  const int oc_budget = std::min(
      budget, static_cast<int>(static_cast<double>(oc_size) * spec_.alpha));
  int placed = 0;
  for (int i = 0; i < oc_size && i < static_cast<int>(order.size()) &&
                  placed < oc_budget;
       ++i) {
    if (order[i] == leader_idx) continue;
    out[static_cast<size_t>(order[i])] = spec_.stateless;
    ++placed;
  }
  // Remainder lands uniformly on non-OC nodes via the spec's private
  // placement stream (partial Fisher-Yates) — independent of the system
  // RNG, so enabling an adversary never re-deals protocol randomness.
  // The epoch ordinal is folded in so every committee reconfiguration
  // re-deals placement; epoch 0 keeps the historical genesis stream.
  std::vector<int> rest(order.begin() + std::min<size_t>(oc_size, order.size()),
                        order.end());
  Rng rng(spec_.seed ^ 0x5e1ec700u ^ (epoch * 0x9e3779b97f4a7c15ull));
  for (size_t i = 0; i < rest.size() && placed < budget; ++i) {
    size_t j = i + rng.NextBelow(rest.size() - i);
    std::swap(rest[i], rest[j]);
    out[static_cast<size_t>(rest[i])] = spec_.stateless;
    ++placed;
  }
  return out;
}

crypto::Hash256 AdversaryController::ForgedValue(const std::string& domain,
                                                 uint64_t a, uint64_t b,
                                                 uint64_t c) const {
  // Pure hashing (no RNG): forged content computed inside message
  // handlers must be invariant to worker-thread scheduling.
  crypto::Sha256 h;
  const std::string tag = "porygon.adversary." + domain;
  h.Update(std::string_view(tag));
  uint8_t buf[32];
  const uint64_t words[4] = {a, b, c, spec_.seed};
  for (int w = 0; w < 4; ++w) StoreLittleEndian64(buf + w * 8, words[w]);
  h.Update(ByteView(buf, sizeof(buf)));
  return h.Finish();
}

crypto::Signature AdversaryController::ForgedSignature(
    const std::string& domain, uint64_t a, uint64_t b) const {
  crypto::Hash256 lo = ForgedValue(domain, a, b, 0);
  crypto::Hash256 hi = ForgedValue(domain, a, b, 1);
  crypto::Signature sig;
  std::memcpy(sig.data(), lo.data(), 32);
  std::memcpy(sig.data() + 32, hi.data(), 32);
  return sig;
}

void AdversaryController::NoteAction(AdvStrategy strategy, const char* what,
                                     const std::string& node, bool trace) {
  ++actions_;
  obs::Counter* counter =
      IsStorageStrategy(strategy) ? storage_actions_ : stateless_actions_;
  if (counter != nullptr) counter->Increment();
  if (trace && tracer_ != nullptr && tracer_->enabled()) {
    tracer_->Instant(tracer_->AdversaryContext(), what, node);
  }
}

void AdversaryController::NoteEvidence(const char* type,
                                       const std::string& node) {
  ++evidence_;
  obs::Counter* counter = evidence_divergent_exec_;
  if (std::strcmp(type, "equivocation") == 0) {
    counter = evidence_equivocation_;
  } else if (std::strcmp(type, "relay_equivocation") == 0) {
    counter = evidence_relay_equivocation_;
  }
  if (counter != nullptr) counter->Increment();
  if (tracer_ != nullptr && tracer_->enabled()) {
    tracer_->Instant(tracer_->AdversaryContext(), type, node);
  }
}

}  // namespace porygon::core
