#ifndef PORYGON_CORE_MESSAGES_H_
#define PORYGON_CORE_MESSAGES_H_

#include <cstdint>
#include <vector>

#include "common/bytes.h"
#include "common/status.h"
#include "consensus/ba_star.h"
#include "core/committee.h"
#include "net/network.h"
#include "obs/trace.h"
#include "state/account.h"
#include "tx/blocks.h"
#include "tx/transaction.h"

namespace porygon::core {

/// Protocol message kinds. Values double as traffic-accounting buckets
/// (Fig 9b groups them into phases).
enum MsgKind : uint16_t {
  kMsgSubmitTx = 1,       ///< client -> storage: one transaction.
  kMsgTxBlock = 2,        ///< storage -> EC member: full transaction block.
  kMsgWitnessUpload = 3,  ///< EC member -> storage: witness proof.
  kMsgWitnessBundle = 4,  ///< storage -> OC member: witnessed headers+proofs.
  kMsgRelay = 5,          ///< stateless -> storage: routed inner message.
  kMsgProposal = 6,       ///< OC leader -> OC members: proposal block.
  kMsgVote = 7,           ///< OC member -> OC members: BA* vote.
  kMsgExecRequest = 8,    ///< storage -> ESC member: per-shard exec inputs.
  kMsgStateRequest = 9,   ///< ESC member -> storage: account list.
  kMsgStateResponse = 10, ///< storage -> ESC member: accounts (+proof bytes).
  kMsgExecResult = 11,    ///< ESC member -> OC: signed execution results.
  kMsgCommit = 12,        ///< OC leader -> storage: committed block + cert.
  kMsgNewRound = 13,      ///< storage -> stateless: round start.
  kMsgRoleAnnounce = 14,  ///< stateless -> storage: my role this round.
  kMsgGossip = 15,        ///< storage <-> storage: replication.
  kMsgResync = 16,        ///< stateless -> storage: chain-tip catch-up ask.
  // Tree-dissemination kinds (net::DisseminationMode::kTree only; a direct
  // run never sends them, keeping its byte stream identical to builds that
  // predate the strategy layer).
  kMsgBodyChunk = 17,     ///< storage/EC peer: erasure-coded body chunk.
  kMsgAggWitness = 18,    ///< relay -> OC leader: merged witnessed blocks.
  kMsgAggExecResult = 19, ///< relay -> OC: batched exec-result votes.
  kMsgVoteCert = 20,      ///< vote relay -> OC: compact bitmap vote cert.
  kMsgRelayAck = 21,      ///< storage -> sender: relay-delivery digest ack.
  kMsgDecisionCert = 22,  ///< OC member -> OC members: transferable cert.
};

/// Maps a message kind to the pipeline phase whose budget it spends
/// (Fig 9b): 0 = Witness, 1 = Ordering, 2 = Execution, 3 = Commit,
/// -1 = other (client traffic, gossip).
int PhaseOfKind(uint16_t kind);

/// Stable export-label name for a message kind ("tx_block", "vote", ...);
/// unknown kinds map to "unknown".
const char* MsgKindName(uint16_t kind);

/// Stable export-label name for a PhaseOfKind() result ("witness",
/// "ordering", "execution", "commit"; -1 maps to "other").
const char* PhaseLabelName(int phase);

/// A stateless node announcing its self-selected role for a round, with the
/// VRF proof that storage nodes and peers verify (§IV-B3).
struct RoleAnnounce {
  uint64_t round = 0;
  uint8_t role = 0;  ///< Mirrors core::Role.
  uint32_t shard = 0;
  double sortition = 1.0;
  crypto::PublicKey node_key{};
  crypto::VrfProof proof{};
  net::NodeId node_id = net::kInvalidNode;  ///< Sim address for replies.

  Bytes Encode() const;
  static Result<RoleAnnounce> Decode(ByteView data);
};

/// Chain-tip catch-up request (stateless -> storage): sent by the failover
/// watchdog after rotating primaries, and by recovery probes. The storage
/// node answers with a kMsgNewRound carrying its committed tip; the
/// receiver's stale-round check makes the reply idempotent.
struct ResyncRequest {
  uint64_t round = 0;  ///< The requester's current round (diagnostics).

  Bytes Encode() const;
  static Result<ResyncRequest> Decode(ByteView data);
};

/// Witness proof upload (EC member -> storage node).
struct WitnessUpload {
  uint64_t round = 0;
  uint32_t shard = 0;
  tx::WitnessProof proof{};

  Bytes Encode() const;
  static Result<WitnessUpload> Decode(ByteView data);
};

/// Compact per-transaction access summary the OC uses for conflict
/// filtering without downloading bodies (the paper's pre-recorded accessed
/// states, stored in witnessed transaction blocks).
struct TxAccess {
  tx::TxId id{};
  state::AccountId from = 0;
  state::AccountId to = 0;
  uint64_t amount = 0;   ///< Carried so ESC-side reconstruction is possible.
  uint64_t nonce = 0;
  uint64_t submitted_at = 0;
};

/// One witnessed block as shipped to the OC: header, witness proofs, and
/// access summaries. Wire cost: header + proofs + ~48 B per transaction —
/// never the 112 B bodies.
struct WitnessedBlock {
  tx::TransactionBlockHeader header{};
  std::vector<tx::WitnessProof> proofs;
  std::vector<TxAccess> accesses;

  size_t WireSize() const;
  Bytes Encode() const;
  static Result<WitnessedBlock> Decode(ByteView data);
};

/// Bundle of witnessed blocks for one batch round (storage -> OC member).
struct WitnessBundle {
  uint64_t batch_round = 0;
  std::vector<WitnessedBlock> blocks;

  size_t WireSize() const;
  Bytes Encode() const;
  static Result<WitnessBundle> Decode(ByteView data);
};

/// Per-shard execution assignment derived from a committed proposal block
/// (storage -> ESC member). Blocks are referenced by id: the ESC witnessed
/// the bodies already.
struct ExecRequest {
  uint64_t round = 0;   ///< Round of the proposal block (B_r).
  uint32_t shard = 0;
  std::vector<tx::BlockId> block_ids;          ///< L_r[shard].
  std::vector<tx::StateUpdate> updates;        ///< U_r[shard].
  std::vector<tx::TxId> discarded;             ///< Conflict-discarded txs.
  crypto::Hash256 shard_root{};                ///< T_r[shard] to start from.
  /// All shard roots T_r (foreign-account proofs verify against these).
  std::vector<crypto::Hash256> all_roots;
  /// This shard's ESC member addresses; a member's rank decides whether it
  /// ships the full S set or only an attestation (bandwidth optimization on
  /// the result fan-in to the OC).
  std::vector<net::NodeId> members;

  Bytes Encode() const;
  static Result<ExecRequest> Decode(ByteView data);
};

/// State download request (ESC member -> storage).
struct StateRequest {
  uint64_t round = 0;
  uint32_t shard = 0;
  std::vector<state::AccountId> accounts;

  Bytes Encode() const;
  static Result<StateRequest> Decode(ByteView data);
};

/// State download response: account values; `proof_bytes` charges the
/// Merkle paths to the bandwidth model (full SMT proofs are materialized
/// only when Params.verify_state_proofs is set — see PorygonSystem).
struct StateResponse {
  uint64_t round = 0;
  uint32_t shard = 0;
  struct Entry {
    state::AccountId account = 0;
    bool present = false;
    state::Account value{};
  };
  std::vector<Entry> entries;
  uint64_t proof_bytes = 0;
  /// Serialized MerkleProofs aligned with `entries`; materialized only in
  /// faithful mode (Params/SystemOptions verify_state_proofs), otherwise
  /// empty with `proof_bytes` charging the modeled multiproof size.
  std::vector<Bytes> proofs;

  size_t WireSize() const;
  Bytes Encode() const;
  static Result<StateResponse> Decode(ByteView data);
};

/// Signed execution result (ESC member -> OC members): the new subtree root
/// T and the cross-shard update set S for one batch.
struct ExecResultMsg {
  uint64_t exec_round = 0;   ///< Round whose proposal drove the execution.
  uint32_t shard = 0;
  crypto::Hash256 new_root{};
  /// Hash of the canonical S-set encoding; what Te-consistency counts.
  crypto::Hash256 s_hash{};
  /// Full payload carried only by the shard's lowest-ranked members; other
  /// members send 150-byte attestations (root + s_hash + signature), so the
  /// OC's downlink is not multiplied by the committee size.
  bool full = false;
  std::vector<tx::StateUpdate> s_set;
  uint32_t intra_applied = 0;
  uint32_t cross_pre_executed = 0;
  crypto::PublicKey signer{};
  crypto::Signature signature{};

  /// Computes s_hash from s_set.
  static crypto::Hash256 HashSSet(const std::vector<tx::StateUpdate>& s);

  /// Bytes covered by the signature.
  Bytes SigningBytes() const;
  Bytes Encode() const;
  static Result<ExecResultMsg> Decode(ByteView data);
};

/// Relay envelope for stateless-to-stateless routing via storage nodes.
struct Relay {
  /// 0 = single destination (dest), 1 = all OC members of `round`,
  /// 2 = all EC members of (`round`, `shard`).
  uint8_t target = 0;
  uint64_t round = 0;
  uint32_t shard = 0;
  net::NodeId dest = net::kInvalidNode;
  uint16_t inner_kind = 0;
  Bytes inner;
  /// Trace context of the sender, restored onto the forwarded message so a
  /// trace survives the storage hop. Encoded as an optional tail only when
  /// active: with tracing off the wire bytes (and thus all modeled timing)
  /// are identical to an untraced build.
  obs::TraceContext trace;

  static constexpr uint8_t kToNode = 0;
  static constexpr uint8_t kToOrderingCommittee = 1;
  static constexpr uint8_t kToShardCommittee = 2;

  Bytes Encode() const;
  static Result<Relay> Decode(ByteView data);
};

/// One erasure-coded chunk of a transaction-block body (tree mode). The
/// packaging storage node seeds chunk i of n to EC member i % |EC|; members
/// exchange chunks over the shard mesh and reconstruct once any k arrive
/// (common/erasure.h), so no single link carries |EC| full copies.
struct BodyChunk {
  uint64_t round = 0;
  uint32_t shard = 0;
  tx::TransactionBlockHeader header{};  ///< Identifies + validates the body.
  uint16_t index = 0;                   ///< Chunk index in [0, n).
  uint16_t k = 0;
  uint16_t n = 0;
  /// The shard's EC member addresses, so receivers can forward their seed
  /// chunks peer-to-peer without waiting for an ExecRequest roster.
  std::vector<net::NodeId> peers;
  Bytes payload;

  size_t WireSize() const;
  Bytes Encode() const;
  static Result<BodyChunk> Decode(ByteView data);
};

/// Per-shard witness aggregate (tree mode): the elected relay merges the m
/// storage nodes' witnessed blocks for one shard — deduplicating headers and
/// unioning proofs — and ships one message to the OC leader, replacing m
/// full WitnessBundle copies on the leader's downlink.
struct AggregatedWitness {
  uint64_t batch_round = 0;
  uint32_t shard = 0;
  net::NodeId aggregator = net::kInvalidNode;
  std::vector<WitnessedBlock> blocks;

  size_t WireSize() const;
  Bytes Encode() const;
  static Result<AggregatedWitness> Decode(ByteView data);
};

/// Aggregated execution result (tree mode): one shard's exec-result votes
/// for a single (root, S-hash) outcome, batch-verified by the relay and
/// re-verified by receivers. Replaces |ESC| individual ExecResultMsg
/// broadcasts on every OC downlink with one message carrying the payload
/// once plus 96-byte (signer, signature) attestation pairs.
struct AggregatedExecResult {
  uint64_t exec_round = 0;
  uint32_t shard = 0;
  crypto::Hash256 new_root{};
  crypto::Hash256 s_hash{};
  uint32_t intra_applied = 0;
  uint32_t cross_pre_executed = 0;
  bool has_payload = false;
  std::vector<tx::StateUpdate> s_set;
  net::NodeId aggregator = net::kInvalidNode;
  std::vector<crypto::PublicKey> signers;
  std::vector<crypto::Signature> signatures;  ///< Aligned with `signers`.

  /// The per-member ExecResultMsg signing payload these signatures cover.
  Bytes MemberSigningBytes() const;

  size_t WireSize() const;
  Bytes Encode() const;
  static Result<AggregatedExecResult> Decode(ByteView data);
};

/// Compact BA* vote certificate (tree mode): all votes for one
/// (instance, step, kind, value) cell, with voters named by a bitmap over
/// the OC committee's canonical key order instead of 32-byte keys per vote.
/// ToVotes() reconstructs the exact consensus::Vote sequence, so BA* counts
/// them through its normal batch-verified OnVotes path.
struct CompactVoteCert {
  uint64_t instance = 0;
  uint32_t step = 0;
  uint8_t kind = 0;  ///< consensus::Vote::kSoft / kCert.
  crypto::Hash256 value{};
  uint64_t bitmap = 0;  ///< Bit i set = committee[i] voted (oc_size <= 64).
  std::vector<crypto::Signature> signatures;  ///< Ascending set-bit order.

  /// Votes in ascending committee order; empty if the bitmap popcount
  /// disagrees with `signatures` or indexes past the committee.
  std::vector<consensus::Vote> ToVotes(
      const std::vector<crypto::PublicKey>& committee) const;

  size_t WireSize() const;
  Bytes Encode() const;
  static Result<CompactVoteCert> Decode(ByteView data);
};

/// Delivery acknowledgement for tree-mode relays (storage -> sender): in
/// direct mode a committee broadcast echoes back to its in-committee sender
/// as a full copy, which doubles as the failover layer's delivery signal;
/// tree mode suppresses the echo and sends this 40-byte digest instead.
struct RelayAck {
  uint64_t round = 0;
  crypto::Hash256 digest{};  ///< SHA-256 of the acked relay payload.

  Bytes Encode() const;
  static Result<RelayAck> Decode(ByteView data);
};

}  // namespace porygon::core

#endif  // PORYGON_CORE_MESSAGES_H_
