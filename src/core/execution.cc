#include "core/execution.h"

#include <map>

namespace porygon::core {

using state::Account;
using state::AccountId;
using state::ShardedState;
using tx::StateUpdate;
using tx::Transaction;

bool ShardExecutor::IsValidTransfer(const Account& sender,
                                    const Transaction& t) {
  return t.nonce == sender.nonce && sender.balance >= t.amount;
}

ExecutionResult ShardExecutor::Execute(state::StateView* state,
                                       const ExecutionInput& input) {
  ExecutionResult result;
  const uint32_t shard = input.shard;

  // All reads/writes go through an overlay; committed writes flush in one
  // batched Merkle update at the end (see SparseMerkleTree::PutBatch).
  std::map<AccountId, Account> overlay;
  auto read = [&](AccountId id) -> Account {
    auto it = overlay.find(id);
    return it != overlay.end() ? it->second : state->GetOrDefault(id);
  };

  // (1) Apply the OC's cross-shard update list U for this shard: these are
  // already-agreed final values (Multi-Shard Update, §IV-D2(b)).
  for (const StateUpdate& u : input.updates) {
    if (state->ShardOf(u.account) != shard) continue;  // Defensive.
    overlay[u.account] = u.value;
  }

  // (2) Intra-shard transactions, sequentially and deterministically.
  for (const Transaction& t : input.intra_shard) {
    if (state->ShardOf(t.from) != shard) {
      result.failed.push_back({t.Id(), TxFailure::kWrongShard});
      continue;
    }
    Account sender = read(t.from);
    if (t.nonce != sender.nonce) {
      result.failed.push_back({t.Id(), TxFailure::kBadNonce});
      continue;
    }
    if (sender.balance < t.amount) {
      result.failed.push_back({t.Id(), TxFailure::kInsufficientBalance});
      continue;
    }
    sender.balance -= t.amount;
    sender.nonce += 1;
    Account receiver = read(t.to);
    receiver.balance += t.amount;
    overlay[t.from] = sender;
    overlay[t.to] = receiver;
    ++result.intra_applied;
  }

  // Flush committed writes (updates + intra effects) into the subtree.
  {
    std::vector<std::pair<AccountId, Account>> writes;
    writes.reserve(overlay.size());
    for (const auto& [id, account] : overlay) {
      if (state->ShardOf(id) == shard) writes.emplace_back(id, account);
    }
    state->PutAccountBatch(shard, writes);
  }

  // (3) Cross-shard pre-execution (Single-Shard Execution, §IV-D2(a)):
  // compute results against a scratch overlay (so same-round transactions
  // in this shard compose), return updated pairs without touching any
  // subtree. The OC has excluded cross-shard conflicts *between* shards, so
  // reading foreign-account values from the downloaded snapshot is safe;
  // conflicts *within* the shard and round are resolved here sequentially
  // ("they can be handled by each ESC independently", §IV-D2).
  std::map<AccountId, Account> scratch;
  auto read_scratch = [&](AccountId id) -> Account {
    auto it = scratch.find(id);
    if (it != scratch.end()) return it->second;
    auto it2 = overlay.find(id);
    return it2 != overlay.end() ? it2->second : state->GetOrDefault(id);
  };
  for (const Transaction& t : input.cross_shard) {
    if (state->ShardOf(t.from) != shard) {
      result.failed.push_back({t.Id(), TxFailure::kWrongShard});
      continue;
    }
    Account sender = read_scratch(t.from);
    if (t.nonce != sender.nonce) {
      result.failed.push_back({t.Id(), TxFailure::kBadNonce});
      continue;
    }
    if (sender.balance < t.amount) {
      result.failed.push_back({t.Id(), TxFailure::kInsufficientBalance});
      continue;
    }
    sender.balance -= t.amount;
    sender.nonce += 1;
    Account receiver = read_scratch(t.to);
    receiver.balance += t.amount;
    scratch[t.from] = sender;
    scratch[t.to] = receiver;
    ++result.cross_pre_executed;
  }
  // Deterministic order (sorted by account id), final value per account.
  for (const auto& [account, value] : scratch) {
    result.cross_updates.push_back({account, value});
  }

  result.shard_root = state->ShardRoot(shard);
  return result;
}

}  // namespace porygon::core
