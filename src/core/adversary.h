#ifndef PORYGON_CORE_ADVERSARY_H_
#define PORYGON_CORE_ADVERSARY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "crypto/provider.h"
#include "crypto/sha256.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace porygon::core {

/// Per-node adversary strategy. The paper's §III-B model bounds the
/// *fraction* of corrupted nodes (α ≤ 1/4 stateless, β ≤ 1/2 storage);
/// this enum names *how* a corrupted node misbehaves. kHonest is the
/// absence of a strategy, so actors can hold an AdvStrategy directly.
enum class AdvStrategy : uint8_t {
  kHonest = 0,
  // Stateless-node strategies.
  kSilent,        ///< Drops every protocol message (legacy Byzantine-silent).
  kEquivocate,    ///< Casts conflicting BA* votes for the same (step, kind).
  kForgeWitness,  ///< Uploads forged / garbage-signed witness proofs.
  kTamperExec,    ///< Broadcasts tampered execution results.
  // Storage-node strategies.
  kWithhold,      ///< Withholds block bodies, relays, and gossip (legacy).
  kCensor,        ///< Drops routed stateless->OC relay traffic.
  kTamperState,   ///< Corrupts state-read replies (values, not proofs).
  kStaleReply,    ///< Answers resyncs with the genesis tip.
};

/// Stable lowercase name used in the `--adversary=` grammar and as the
/// `strategy` label on `adversary.actions` counters.
const char* AdvStrategyName(AdvStrategy s);

bool IsStatelessStrategy(AdvStrategy s);
bool IsStorageStrategy(AdvStrategy s);

/// Declarative description of one run's active adversary. Like
/// net::FaultPlan, a spec is data: parsed from a CLI string, built
/// programmatically in tests, logged, and replayed. All adversarial
/// randomness derives from the spec's own seed, never from the system
/// RNG, so same system seed + same spec replays byte-identically.
struct AdversarySpec {
  AdvStrategy stateless = AdvStrategy::kHonest;
  AdvStrategy storage = AdvStrategy::kHonest;
  /// Fraction of stateless nodes corrupted with `stateless`. The paper's
  /// bound is α ≤ 1/4; SystemOptions::Validate rejects larger values.
  double alpha = 0.0;
  /// Fraction of storage nodes corrupted with `storage` (β ≤ 1/2).
  double beta = 0.0;
  /// Seed for the adversary's private RNG streams (placement, nothing
  /// else — forged *content* is pure hashing so thread-pool scheduling
  /// can never reorder draws).
  uint64_t seed = 0xadbu;

  bool empty() const {
    return stateless == AdvStrategy::kHonest &&
           storage == AdvStrategy::kHonest;
  }

  /// Parses a CLI spec of comma-separated clauses:
  ///
  ///   stateless:<silent|equivocate|forge-witness|tamper-exec>
  ///   storage:<withhold|censor|tamper-state|stale-reply>
  ///   alpha:<f>   corrupted stateless fraction (default 0.25 when a
  ///               stateless strategy is named)
  ///   beta:<f>    corrupted storage fraction (default 0.5 when a
  ///               storage strategy is named)
  ///   seed:<n>    adversary RNG seed
  ///
  /// e.g. "stateless:equivocate,alpha:0.25" or
  /// "storage:tamper-state,beta:0.5,seed:9". Returns kInvalidArgument
  /// naming the bad clause.
  static Result<AdversarySpec> Parse(const std::string& spec);

  /// Canonical round-trippable form (Parse(ToString()) == *this).
  std::string ToString() const;
};

/// Owns one run's adversarial state: which nodes are corrupted, the
/// forged-content hash domain, and the `adversary.*` observability
/// surface (action/evidence counters + the Perfetto adversary lane).
/// Constructed by PorygonSystem before any actors; inert when the spec
/// is empty.
class AdversaryController {
 public:
  AdversaryController(AdversarySpec spec, obs::MetricsRegistry* registry,
                      obs::Tracer* tracer);

  AdversaryController(const AdversaryController&) = delete;
  AdversaryController& operator=(const AdversaryController&) = delete;

  const AdversarySpec& spec() const { return spec_; }
  bool active() const { return !spec_.empty(); }

  /// Strategy for each storage node index in [0, count): the lowest
  /// floor(beta * count) indices are corrupted. Lowest-first is the
  /// worst case — storage 0 is every stateless node's initial primary.
  std::vector<AdvStrategy> PlaceStorage(int count) const;

  /// Strategy per stateless node index. `order` is the node indices
  /// sorted ascending by sortition for the draw in force (genesis, or an
  /// epoch boundary's re-draw — see PorygonSystem::ReconfigureEpoch; the
  /// first oc_size entries form the ordering committee); `leader_idx` is
  /// never corrupted so the honest-leader chain is byte-comparable to the
  /// clean run. The OC share of the budget (floor(alpha * oc_size))
  /// corrupts the lowest-sorted non-leader OC members; the remainder is
  /// spread over non-OC nodes by the spec's private placement RNG.
  /// `epoch` is mixed into that private stream so each reconfiguration
  /// re-deals placement (epoch 0 reproduces the genesis placement of
  /// builds that predate epochs); the budget bounds (alpha, the leader
  /// exemption) hold for every epoch value.
  std::vector<AdvStrategy> PlaceStateless(const std::vector<int>& order,
                                          int oc_size, int leader_idx,
                                          uint64_t epoch = 0) const;

  /// Deterministic forged content: a hash over a domain tag, up to three
  /// ordinals, and the spec seed. Pure function — safe to call from
  /// worker-threaded message handlers without perturbing any RNG.
  crypto::Hash256 ForgedValue(const std::string& domain, uint64_t a = 0,
                              uint64_t b = 0, uint64_t c = 0) const;

  /// 64-byte garbage signature from two ForgedValue halves. Never valid
  /// under any registered key.
  crypto::Signature ForgedSignature(const std::string& domain, uint64_t a = 0,
                                    uint64_t b = 0) const;

  /// Records one adversarial action: increments
  /// `adversary.actions{strategy}` and (if `trace`) drops an instant
  /// into the adversary trace lane. High-frequency strategies (silent,
  /// censor) pass trace=false to keep the bounded span buffer for
  /// lower-rate, higher-signal events.
  void NoteAction(AdvStrategy strategy, const char* what,
                  const std::string& node, bool trace = true);

  /// Records one piece of protocol-side evidence of misbehavior
  /// (`type` is "equivocation", "relay_equivocation", or
  /// "divergent_exec_result"): increments `adversary.evidence{type}` plus
  /// the adversary lane. Called by the *honest* detection paths, so it
  /// stays live even when this controller is inactive (count is then
  /// provably zero).
  void NoteEvidence(const char* type, const std::string& node);

  uint64_t actions() const { return actions_; }
  uint64_t evidence() const { return evidence_; }

 private:
  AdversarySpec spec_;
  obs::Tracer* tracer_;

  uint64_t actions_ = 0;
  uint64_t evidence_ = 0;

  obs::Counter* stateless_actions_ = nullptr;
  obs::Counter* storage_actions_ = nullptr;
  obs::Counter* evidence_equivocation_ = nullptr;
  obs::Counter* evidence_relay_equivocation_ = nullptr;
  obs::Counter* evidence_divergent_exec_ = nullptr;
};

}  // namespace porygon::core

#endif  // PORYGON_CORE_ADVERSARY_H_
