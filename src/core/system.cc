#include "core/system.h"

#include <algorithm>
#include <cstdlib>
#include <set>

#include "common/codec.h"
#include "common/log.h"
#include "net/fault.h"
#include "net/topology.h"
#include "obs/export.h"

namespace porygon::core {

namespace {
std::string IdKey(const crypto::Hash256& h) {
  return std::string(reinterpret_cast<const char*>(h.data()), h.size());
}

/// Read-only snapshot wrapper: own-shard reads/writes hit the live state,
/// foreign reads come from a pre-captured snapshot so every shard's
/// cross-shard pre-execution observes the same pre-round values (each real
/// ESC downloads the same committed snapshot).
class SnapshotForeignView : public state::StateView {
 public:
  SnapshotForeignView(state::ShardedState* base, uint32_t own_shard,
                      std::unordered_map<state::AccountId, state::Account>
                          foreign_snapshot)
      : base_(base),
        own_shard_(own_shard),
        foreign_(std::move(foreign_snapshot)) {}

  uint32_t ShardOf(state::AccountId id) const override {
    return base_->ShardOf(id);
  }
  state::Account GetOrDefault(state::AccountId id) const override {
    if (base_->ShardOf(id) == own_shard_) return base_->GetOrDefault(id);
    auto it = foreign_.find(id);
    return it != foreign_.end() ? it->second : state::Account{};
  }
  void PutAccountBatch(
      uint32_t shard,
      const std::vector<std::pair<state::AccountId, state::Account>>& ws)
      override {
    if (shard == own_shard_) base_->PutAccountBatch(shard, ws);
  }
  crypto::Hash256 ShardRoot(uint32_t shard) const override {
    return base_->ShardRoot(shard);
  }

 private:
  state::ShardedState* base_;
  uint32_t own_shard_;
  std::unordered_map<state::AccountId, state::Account> foreign_;
};
}  // namespace

Status SystemOptions::Validate() const {
  auto fraction = [](double v) { return v >= 0.0 && v <= 1.0; };
  if (num_storage_nodes < 1) {
    return Status::InvalidArgument("num_storage_nodes must be >= 1");
  }
  if (num_stateless_nodes < 1) {
    return Status::InvalidArgument("num_stateless_nodes must be >= 1");
  }
  if (oc_size < 1) return Status::InvalidArgument("oc_size must be >= 1");
  if (oc_size > num_stateless_nodes) {
    return Status::InvalidArgument("oc_size exceeds num_stateless_nodes");
  }
  if (blocks_per_shard_round < 1) {
    return Status::InvalidArgument("blocks_per_shard_round must be >= 1");
  }
  if (epoch_length == 1) {
    return Status::InvalidArgument(
        "epoch_length must be 0 (disabled) or >= 2");
  }
  if (!fraction(malicious_storage_fraction)) {
    return Status::InvalidArgument(
        "malicious_storage_fraction outside [0,1]");
  }
  if (malicious_storage_fraction > 0.5) {
    return Status::InvalidArgument(
        "malicious_storage_fraction exceeds the paper's beta bound (1/2)");
  }
  if (!fraction(malicious_stateless_fraction)) {
    return Status::InvalidArgument(
        "malicious_stateless_fraction outside [0,1]");
  }
  if (malicious_stateless_fraction > 0.25) {
    return Status::InvalidArgument(
        "malicious_stateless_fraction exceeds the paper's alpha bound (1/4)");
  }
  if (adversary.stateless != AdvStrategy::kHonest &&
      !IsStatelessStrategy(adversary.stateless)) {
    return Status::InvalidArgument(
        "adversary.stateless is not a stateless strategy");
  }
  if (adversary.storage != AdvStrategy::kHonest &&
      !IsStorageStrategy(adversary.storage)) {
    return Status::InvalidArgument(
        "adversary.storage is not a storage strategy");
  }
  if (adversary.alpha < 0 || adversary.alpha > 0.25) {
    return Status::InvalidArgument(
        "adversary.alpha outside the paper's bound [0,1/4]");
  }
  if (adversary.beta < 0 || adversary.beta > 0.5) {
    return Status::InvalidArgument(
        "adversary.beta outside the paper's bound [0,1/2]");
  }
  if (!adversary.empty() && (malicious_storage_fraction > 0 ||
                             malicious_stateless_fraction > 0)) {
    return Status::InvalidArgument(
        "adversary spec and legacy malicious fractions are mutually "
        "exclusive");
  }
  if (mean_session_s < 0) {
    return Status::InvalidArgument("mean_session_s must be >= 0");
  }
  if (worker_threads < 0) {
    return Status::InvalidArgument("worker_threads must be >= 0");
  }
  if (params.shard_bits < 0 || params.shard_bits > 20) {
    return Status::InvalidArgument("shard_bits outside [0,20]");
  }
  if (!fraction(params.ordering_fraction)) {
    return Status::InvalidArgument("ordering_fraction outside [0,1]");
  }
  if (!fraction(params.execution_fraction)) {
    return Status::InvalidArgument("execution_fraction outside [0,1]");
  }
  if (params.witness_threshold < 1) {
    return Status::InvalidArgument("witness_threshold must be >= 1");
  }
  if (params.execution_threshold < 1) {
    return Status::InvalidArgument("execution_threshold must be >= 1");
  }
  if (params.block_tx_limit < 1) {
    return Status::InvalidArgument("block_tx_limit must be >= 1");
  }
  if (params.storage_connections < 1) {
    return Status::InvalidArgument("storage_connections must be >= 1");
  }
  if (params.consensus_backoff_cap_us < 1) {
    return Status::InvalidArgument("consensus_backoff_cap_us must be >= 1");
  }
  if (params.storage_timeout_us < 1) {
    return Status::InvalidArgument("storage_timeout_us must be >= 1");
  }
  if (params.storage_backoff_cap_us < params.storage_timeout_us) {
    return Status::InvalidArgument(
        "storage_backoff_cap_us below storage_timeout_us");
  }
  if (params.storage_failover_strikes < 1) {
    return Status::InvalidArgument("storage_failover_strikes must be >= 1");
  }
  if (params.storage_retry_limit < 1) {
    return Status::InvalidArgument("storage_retry_limit must be >= 1");
  }
  if (params.storage_watchdog_us < 1) {
    return Status::InvalidArgument("storage_watchdog_us must be >= 1");
  }
  if (params.storage_resync_budget < 0) {
    return Status::InvalidArgument("storage_resync_budget must be >= 0");
  }
  if (params.storage_probe_us < 1) {
    return Status::InvalidArgument("storage_probe_us must be >= 1");
  }
  if (params.storage_probe_limit < 0) {
    return Status::InvalidArgument("storage_probe_limit must be >= 0");
  }
  PORYGON_RETURN_IF_ERROR(dissemination.Validate());
  if (dissemination.tree() && oc_size > 64) {
    // CompactVoteCert names voters with a 64-bit committee bitmap.
    return Status::InvalidArgument(
        "tree dissemination requires oc_size <= 64");
  }
  return Status::Ok();
}

uint64_t SystemMetrics::CounterOr0(const char* name,
                                   const obs::Labels& labels) const {
  return registry_ != nullptr ? registry_->CounterValue(name, labels) : 0;
}

obs::HistogramSummary SystemMetrics::SummaryOf(
    const char* name, const obs::Labels& labels) const {
  if (registry_ == nullptr) return {};
  const obs::Histogram* h = registry_->FindHistogram(name, labels);
  return h != nullptr ? h->Summary() : obs::HistogramSummary{};
}

uint64_t SystemMetrics::committed_intra_txs() const {
  return CounterOr0("porygon.committed_txs", {{"scope", "intra"}});
}
uint64_t SystemMetrics::committed_cross_txs() const {
  return CounterOr0("porygon.committed_txs", {{"scope", "cross"}});
}
uint64_t SystemMetrics::discarded_txs() const {
  return CounterOr0("porygon.discarded_txs", {});
}
uint64_t SystemMetrics::failed_txs() const {
  return CounterOr0("porygon.failed_txs", {});
}
uint64_t SystemMetrics::committed_blocks() const {
  return CounterOr0("porygon.committed_blocks", {});
}
uint64_t SystemMetrics::empty_rounds() const {
  return CounterOr0("porygon.empty_rounds", {});
}
uint64_t SystemMetrics::replay_mismatches() const {
  return CounterOr0("porygon.replay_mismatches", {});
}

obs::HistogramSummary SystemMetrics::BlockLatency() const {
  return SummaryOf("porygon.latency_seconds", {{"kind", "block"}});
}
obs::HistogramSummary SystemMetrics::CommitLatency() const {
  return SummaryOf("porygon.latency_seconds", {{"kind", "commit"}});
}
obs::HistogramSummary SystemMetrics::UserLatency() const {
  return SummaryOf("porygon.latency_seconds", {{"kind", "user"}});
}
obs::HistogramSummary SystemMetrics::PhaseDuration(Phase phase) const {
  return SummaryOf("porygon.phase_seconds",
                   {{"phase", PhaseLabelName(static_cast<int>(phase))}});
}

std::string SystemMetrics::ToJson() const {
  return registry_ != nullptr ? obs::ExportJson(*registry_) : "{}";
}
std::string SystemMetrics::ToCsv() const {
  return registry_ != nullptr ? obs::ExportCsv(*registry_) : "";
}

PorygonSystem::PorygonSystem(const SystemOptions& options)
    : options_(options), rng_(options.seed) {
  if (Status valid = options_.Validate(); !valid.ok()) {
    PORYGON_LOG(kError) << "invalid SystemOptions: " << valid.ToString();
    std::abort();
  }

  // Resolve every hot-path instrument up front: actors record through these
  // pointers, never through registry lookups.
  obs_.submitted_txs = metrics_registry_.GetCounter("porygon.submitted_txs");
  obs_.rejected_duplicate = metrics_registry_.GetCounter(
      "porygon.rejected_txs", {{"reason", "duplicate"}});
  obs_.rejected_invalid = metrics_registry_.GetCounter(
      "porygon.rejected_txs", {{"reason", "invalid"}});
  obs_.committed_intra = metrics_registry_.GetCounter(
      "porygon.committed_txs", {{"scope", "intra"}});
  obs_.committed_cross = metrics_registry_.GetCounter(
      "porygon.committed_txs", {{"scope", "cross"}});
  obs_.discarded_txs = metrics_registry_.GetCounter("porygon.discarded_txs");
  obs_.failed_txs = metrics_registry_.GetCounter("porygon.failed_txs");
  obs_.committed_blocks =
      metrics_registry_.GetCounter("porygon.committed_blocks");
  obs_.empty_rounds = metrics_registry_.GetCounter("porygon.empty_rounds");
  obs_.replay_mismatches =
      metrics_registry_.GetCounter("porygon.replay_mismatches");
  obs_.gossip_dedup_hits =
      metrics_registry_.GetCounter("core.gossip_dedup_hits");
  obs_.exec_cache_hits = metrics_registry_.GetCounter("core.exec_cache_hits");
  obs_.exec_cache_misses =
      metrics_registry_.GetCounter("core.exec_cache_misses");
  obs_.block_latency = metrics_registry_.GetHistogram(
      "porygon.latency_seconds", {{"kind", "block"}});
  obs_.commit_latency = metrics_registry_.GetHistogram(
      "porygon.latency_seconds", {{"kind", "commit"}});
  obs_.user_latency = metrics_registry_.GetHistogram(
      "porygon.latency_seconds", {{"kind", "user"}});
  obs_.phase_witness = metrics_registry_.GetHistogram(
      "porygon.phase_seconds", {{"phase", PhaseLabelName(0)}});
  obs_.phase_ordering = metrics_registry_.GetHistogram(
      "porygon.phase_seconds", {{"phase", PhaseLabelName(1)}});
  obs_.phase_execution = metrics_registry_.GetHistogram(
      "porygon.phase_seconds", {{"phase", PhaseLabelName(2)}});
  obs_.phase_commit = metrics_registry_.GetHistogram(
      "porygon.phase_seconds", {{"phase", PhaseLabelName(3)}});
  obs_.consensus.instances =
      metrics_registry_.GetCounter("consensus.instances");
  obs_.consensus.votes_cast =
      metrics_registry_.GetCounter("consensus.votes_cast");
  obs_.consensus.votes_received =
      metrics_registry_.GetCounter("consensus.votes_received");
  obs_.consensus.timeouts = metrics_registry_.GetCounter("consensus.timeouts");
  obs_.consensus.decisions =
      metrics_registry_.GetCounter("consensus.decisions");
  obs_.consensus.registry = &metrics_registry_;
  obs_.rejected_unavailable = metrics_registry_.GetCounter(
      "porygon.rejected_txs", {{"reason", "unavailable"}});
  // Protocol-side hardening: every rejection of a forged/tampered/stale
  // input lands in a reason-labelled series, so adversarial runs show
  // exactly which defenses fired.
  auto rejected = [this](const char* reason) {
    return metrics_registry_.GetCounter("core.rejected", {{"reason", reason}});
  };
  obs_.rejected_bad_witness_sig = rejected("bad_witness_sig");
  obs_.rejected_unknown_witness = rejected("unknown_witness");
  obs_.rejected_unknown_block = rejected("unknown_block");
  obs_.rejected_bad_exec_sig = rejected("bad_exec_sig");
  obs_.rejected_unknown_signer = rejected("unknown_signer");
  obs_.rejected_s_hash_mismatch = rejected("s_hash_mismatch");
  obs_.rejected_bad_state_proof = rejected("bad_state_proof");
  obs_.rejected_stale_round = rejected("stale_round");
  obs_.rejected_bad_shard = rejected("bad_shard");
  obs_.rejected_unlocked_update = rejected("unlocked_update");
  obs_.failover_timeouts =
      metrics_registry_.GetCounter("core.failover.request_timeouts");
  obs_.failover_retransmits =
      metrics_registry_.GetCounter("core.failover.retransmits");
  obs_.failover_rotations =
      metrics_registry_.GetCounter("core.failover.rotations");
  obs_.failover_resyncs =
      metrics_registry_.GetCounter("core.failover.resyncs");
  obs_.failover_readoptions =
      metrics_registry_.GetCounter("core.failover.readoptions");
  obs_.failover_requeued_txs =
      metrics_registry_.GetCounter("core.failover.requeued_txs");
  obs_.storage_rejoins = metrics_registry_.GetCounter("core.storage_rejoins");
  obs_.epochs = metrics_registry_.GetCounter("core.epochs");
  // Compute-pool fan-out. Task counts are index counts — deterministic for
  // any thread configuration; wall time is volatile (kept off the exports).
  obs_.runtime_exec_tasks =
      metrics_registry_.GetCounter("runtime.tasks", {{"phase", "exec"}});
  obs_.runtime_accounts_tasks =
      metrics_registry_.GetCounter("runtime.tasks", {{"phase", "accounts"}});
  obs_.runtime_verify_tasks =
      metrics_registry_.GetCounter("runtime.tasks", {{"phase", "verify"}});
  obs_.runtime_exec_wall_us =
      metrics_registry_.GetVolatileGauge("runtime.wall_us",
                                         {{"phase", "exec"}});
  obs_.runtime_accounts_wall_us =
      metrics_registry_.GetVolatileGauge("runtime.wall_us",
                                         {{"phase", "accounts"}});
  obs_.runtime_verify_wall_us =
      metrics_registry_.GetVolatileGauge("runtime.wall_us",
                                         {{"phase", "verify"}});

  tracer_.Configure(options_.trace, [this] { return events_.now(); });
  events_.EnableMetrics(&metrics_registry_);
  // Stamp PORYGON_LOG lines with virtual time for the life of this system
  // (cleared in the destructor; last-constructed system wins if several
  // coexist, which only affects log cosmetics).
  Logger::SetClock([this] { return sim_seconds(); });

  network_ = std::make_unique<net::SimNetwork>(&events_, rng_.Fork());
  network_->EnableMetrics(
      &metrics_registry_,
      [](uint16_t kind) { return std::string(MsgKindName(kind)); },
      [](uint16_t kind) {
        return std::string(PhaseLabelName(PhaseOfKind(kind)));
      });
  network_->SetLatency(options_.params.latency_us,
                       options_.params.latency_jitter_us);
  // Compute pool for shard execution, batch verification, and storage
  // maintenance (see runtime/task_pool.h for the determinism contract).
  pool_ = std::make_unique<runtime::TaskPool>(
      runtime::TaskPool::ResolveThreads(options_.worker_threads));
  if (options_.use_ed25519) {
    provider_ = std::make_unique<crypto::Ed25519Provider>();
  } else {
    provider_ = std::make_unique<crypto::FastProvider>();
  }
  provider_->SetTaskPool(pool_.get());
  exec_state_ =
      std::make_unique<state::ShardedState>(options_.params.shard_bits);

  // --- Adversary ----------------------------------------------------------
  // The legacy fraction knobs are just the silent/withhold strategies of
  // the framework; synthesize the equivalent spec so one mechanism places
  // and drives every corrupted node. The synthesized seed tracks the
  // system seed so legacy runs still re-deal placement per seed.
  AdversarySpec effective_adversary = options_.adversary;
  if (effective_adversary.empty() &&
      (options_.malicious_stateless_fraction > 0 ||
       options_.malicious_storage_fraction > 0)) {
    if (options_.malicious_stateless_fraction > 0) {
      effective_adversary.stateless = AdvStrategy::kSilent;
      effective_adversary.alpha = options_.malicious_stateless_fraction;
    }
    if (options_.malicious_storage_fraction > 0) {
      effective_adversary.storage = AdvStrategy::kWithhold;
      effective_adversary.beta = options_.malicious_storage_fraction;
    }
    effective_adversary.seed = options_.seed;
  }
  adversary_ = std::make_unique<AdversaryController>(
      effective_adversary, &metrics_registry_, &tracer_);

  // --- Nodes --------------------------------------------------------------
  // One Topology materializes every node (storage first, then stateless);
  // the actor loops below attach behavior to the prebuilt ids.
  const net::Topology::Built built =
      net::Topology()
          .WithStorage(options_.num_storage_nodes, options_.params.storage_bps)
          .WithStateless(options_.num_stateless_nodes,
                         options_.params.stateless_bps)
          .Materialize(network_.get());

  // --- Storage nodes ------------------------------------------------------
  const std::vector<AdvStrategy> storage_strategies =
      adversary_->PlaceStorage(options_.num_storage_nodes);
  for (int i = 0; i < options_.num_storage_nodes; ++i) {
    net::NodeId nid = built.storage_ids[static_cast<size_t>(i)];
    auto actor = std::make_unique<StorageNodeActor>(this, i, nid,
                                                    storage_strategies[i]);
    StorageNodeActor* raw = actor.get();
    network_->SetHandler(nid,
                         [raw](const net::Message& m) { raw->HandleMessage(m); });
    storage_nodes_.push_back(std::move(actor));
  }

  // --- Stateless nodes ----------------------------------------------------
  // Genesis sortition decides the stable Ordering Committee: the oc_size
  // lowest values (the paper lets the OC outlive rotating ECs, §IV-C2).
  struct Draft {
    crypto::KeyPair keys;
    double genesis_sortition;
  };
  std::vector<Draft> drafts;
  for (int i = 0; i < options_.num_stateless_nodes; ++i) {
    Draft d;
    d.keys = provider_->GenerateKeyPair(&rng_);
    auto a = Sortition::Assign(provider_.get(), d.keys.private_key, 0,
                               crypto::ZeroHash(), 1.0, 0.0, 0);
    d.genesis_sortition = a.sortition;
    stateless_keys_.insert(d.keys.public_key);
    drafts.push_back(std::move(d));
  }
  std::vector<int> order(drafts.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = static_cast<int>(i);
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    return drafts[a].genesis_sortition < drafts[b].genesis_sortition;
  });
  std::set<int> oc_set;
  for (int i = 0;
       i < static_cast<int>(order.size()) &&
       static_cast<int>(oc_set.size()) < options_.oc_size;
       ++i) {
    oc_set.insert(order[i]);
  }

  // Leader: the lowest genesis sortition (always an OC member). Chosen
  // before adversary placement and exempt from it, so the honest-leader
  // proposal stream — and thus the committed chain — of an adversarial
  // run is byte-comparable to the adversary-free run with the same seed.
  const int leader_idx = order.empty() ? 0 : order[0];
  const std::vector<AdvStrategy> stateless_strategies =
      adversary_->PlaceStateless(order, options_.oc_size, leader_idx);

  for (int i = 0; i < options_.num_stateless_nodes; ++i) {
    net::NodeId nid = built.stateless_ids[static_cast<size_t>(i)];
    // m random storage connections (with one honest among them whp).
    std::vector<net::NodeId> conns;
    int m = std::min(options_.params.storage_connections,
                     options_.num_storage_nodes);
    std::set<int> chosen;
    while (static_cast<int>(chosen.size()) < m) {
      chosen.insert(
          static_cast<int>(rng_.NextBelow(options_.num_storage_nodes)));
    }
    // Connection order is the draw order (ascending storage index, fixed by
    // the seeded chooser above). No honesty oracle: an unresponsive primary
    // is detected and rotated away from at runtime (storage-link failover).
    for (int s : chosen) conns.push_back(storage_nodes_[s]->net_id());

    bool in_oc = oc_set.count(i) > 0;
    auto actor = std::make_unique<StatelessNodeActor>(
        this, i, nid, drafts[i].keys, std::move(conns),
        stateless_strategies[i], in_oc);
    StatelessNodeActor* raw = actor.get();
    network_->SetHandler(nid,
                         [raw](const net::Message& m) { raw->HandleMessage(m); });
    if (in_oc) {
      oc_keys_.push_back(drafts[i].keys.public_key);
      oc_net_ids_.push_back(nid);
    }
    stateless_nodes_.push_back(std::move(actor));
  }

  leader_net_id_ = stateless_nodes_[leader_idx]->net_id();

  // Bandwidth-ledger roles, before any traffic flows: the OC leader's
  // links are where the fan-in bottleneck lives (ROADMAP item 1), so it
  // gets its own role; storage and non-OC stateless keep their class
  // names. Roles refine the net.* counter labels and name the link
  // windows the critical-path analyzer attributes ("oc_leader.downlink").
  for (net::NodeId nid : oc_net_ids_) {
    network_->SetNodeRole(nid, nid == leader_net_id_ ? "oc_leader" : "oc");
  }
  // Propagation segment: base one-way latency times the store-and-forward
  // hops on the commit chain (round start -> block -> witness upload ->
  // bundle relay x2 -> proposal relay x2 -> vote -> commit).
  critical_path_.SetPropagationModel(options_.params.latency_us, 8);

  genesis_.height = 0;
  genesis_.round = 0;
  genesis_.shard_tx_blocks.assign(options_.params.shard_count(), {});
  genesis_.shard_updates.assign(options_.params.shard_count(), {});
}

PorygonSystem::~PorygonSystem() {
  // Executions still in flight at teardown never completed; do not record
  // their partial durations.
  for (auto& [round, timer] : exec_timers_) timer.Cancel();
  // The log clock captures this system's event queue; detach before it dies.
  Logger::SetClock(nullptr);
}

const StatelessNodeActor* PorygonSystem::StatelessByNetId(
    net::NodeId id) const {
  for (const auto& node : stateless_nodes_) {
    if (node->net_id() == id) return node.get();
  }
  return nullptr;
}

void PorygonSystem::CreateAccounts(uint64_t count, uint64_t balance) {
  // Batched per shard: one Merkle path-rehash pass per shard instead of one
  // per account (million-account benches set up in seconds).
  std::vector<std::vector<std::pair<state::AccountId, state::Account>>> by_shard(
      options_.params.shard_count());
  for (uint64_t i = 0; i < count; ++i) {
    state::AccountId id = next_account_hint_ + i;
    by_shard[exec_state_->ShardOf(id)].emplace_back(
        id, state::Account{balance, 0});
  }
  // Shard subtrees are disjoint, so the per-shard rehash passes fan out on
  // the compute pool (byte-identical roots for any thread count).
  const int shards = options_.params.shard_count();
  const uint64_t wall_before = pool_->wall_us();
  pool_->ParallelFor(static_cast<size_t>(shards), [&](size_t d) {
    exec_state_->PutAccountBatch(static_cast<uint32_t>(d), by_shard[d]);
  });
  obs_.runtime_accounts_tasks->Add(static_cast<uint64_t>(shards));
  obs_.runtime_accounts_wall_us->Add(
      static_cast<double>(pool_->wall_us() - wall_before));
  next_account_hint_ += count;
}

void PorygonSystem::CreateAccountsLazy(uint64_t count, uint64_t balance) {
  // O(1): record the declaration on the canonical state; stateless nodes
  // mirror it into their proof-built PartialState each Execution Phase (the
  // declaration is part of genesis config, not per-round state). Leaves
  // materialize on first write, so roots and absence proofs for untouched
  // ids are identical to a freshly created state.
  exec_state_->SetImplicitAccounts(count, balance);
  if (next_account_hint_ <= count) next_account_hint_ = count + 1;
}

Status PorygonSystem::AdmitStamped(const tx::Transaction& t) {
  if (t.from == 0 || t.to == 0) {
    return Status::InvalidArgument("transaction endpoints must be non-zero");
  }
  if (t.from == t.to) {
    return Status::InvalidArgument("self-transfers are not allowed");
  }
  // Deterministic home storage node by tx id; clients talk to storage
  // directly (client-side bandwidth is out of the model). A crashed home is
  // skipped the way a real client would retry the next endpoint: advance
  // deterministically until a live node is found.
  const int n = static_cast<int>(storage_nodes_.size());
  int home = static_cast<int>(crypto::HashPrefixU64(t.Id()) % n);
  int probed = 0;
  while (probed < n &&
         network_->IsCrashed(storage_nodes_[home]->net_id())) {
    home = (home + 1) % n;
    ++probed;
  }
  if (probed == n) {
    return Status::Unavailable("all storage nodes are down");
  }
  if (!storage_nodes_[home]->pool_.Add(t)) {
    return Status::AlreadyExists("duplicate transaction");
  }
  if (tracer_.enabled()) TraceSubmit(t);
  return Status::Ok();
}

Status PorygonSystem::SubmitTransaction(tx::Transaction t) {
  t.submitted_at = static_cast<uint64_t>(events_.now());
  Status s = AdmitStamped(t);
  switch (s.code()) {
    case StatusCode::kOk:
      obs_.submitted_txs->Increment();
      break;
    case StatusCode::kAlreadyExists:
      obs_.rejected_duplicate->Increment();
      break;
    case StatusCode::kUnavailable:
      obs_.rejected_unavailable->Increment();
      break;
    default:
      obs_.rejected_invalid->Increment();
      break;
  }
  return s;
}

std::vector<Status> PorygonSystem::SubmitBatch(
    const std::vector<tx::Transaction>& batch) {
  std::vector<Status> statuses;
  statuses.reserve(batch.size());
  const uint64_t now = static_cast<uint64_t>(events_.now());
  uint64_t admitted = 0, duplicate = 0, unavailable = 0, invalid = 0;
  for (tx::Transaction t : batch) {
    t.submitted_at = now;
    Status s = AdmitStamped(t);
    switch (s.code()) {
      case StatusCode::kOk: ++admitted; break;
      case StatusCode::kAlreadyExists: ++duplicate; break;
      case StatusCode::kUnavailable: ++unavailable; break;
      default: ++invalid; break;
    }
    statuses.push_back(std::move(s));
  }
  // One metrics flush for the whole batch.
  if (admitted) obs_.submitted_txs->Add(admitted);
  if (duplicate) obs_.rejected_duplicate->Add(duplicate);
  if (unavailable) obs_.rejected_unavailable->Add(unavailable);
  if (invalid) obs_.rejected_invalid->Add(invalid);
  return statuses;
}

void PorygonSystem::RecordEquivocationEvidence(
    const consensus::EquivocationEvidence& ev) {
  // Bounded: an adversary re-equivocating every round must not grow this
  // without limit. (Each BA★ instance already dedupes per voter/step/kind,
  // so the cap is generous.)
  constexpr size_t kMaxEvidence = 4096;
  if (equivocation_evidence_.size() >= kMaxEvidence) return;
  equivocation_evidence_.push_back(ev);
}

void PorygonSystem::RegisterAnnounce(const RoleAnnounce& announce) {
  RoundRegistry& reg = registry_[announce.round];
  if (static_cast<Role>(announce.role) == Role::kExecution) {
    auto& members = reg.ec_by_shard[announce.shard];
    if (std::find(members.begin(), members.end(), announce.node_id) ==
        members.end()) {
      members.push_back(announce.node_id);
    }
  } else if (static_cast<Role>(announce.role) == Role::kOrdering) {
    // Epoch-boundary OC announces (per-round EC announces never carry
    // kOrdering — the genesis OC is implicit).
    auto& members = reg.oc_members;
    if (std::find(members.begin(), members.end(), announce.node_id) ==
        members.end()) {
      members.push_back(announce.node_id);
    }
  }
  // Bound memory.
  while (!registry_.empty() && registry_.begin()->first + 6 < announce.round) {
    registry_.erase(registry_.begin());
  }
}

const PorygonSystem::RoundRegistry* PorygonSystem::RegistryFor(
    uint64_t round) const {
  auto it = registry_.find(round);
  return it == registry_.end() ? nullptr : &it->second;
}

ExecutionInput PorygonSystem::BuildExecutionInput(
    const tx::ProposalBlock& based_on, uint32_t shard) const {
  ExecutionInput input;
  input.shard = shard;
  if (shard < based_on.shard_updates.size()) {
    input.updates = based_on.shard_updates[shard];
  }
  std::set<std::string> discarded;
  for (const auto& id : based_on.discarded) discarded.insert(IdKey(id));
  if (shard < based_on.shard_tx_blocks.size()) {
    for (const auto& id : based_on.shard_tx_blocks[shard]) {
      auto stored = block_store_.find(IdKey(id));
      if (stored == block_store_.end()) continue;
      for (const auto& t : stored->second.block.transactions) {
        if (discarded.count(IdKey(t.Id())) > 0) continue;
        if (t.IsCrossShard(options_.params.shard_bits)) {
          input.cross_shard.push_back(t);
        } else {
          input.intra_shard.push_back(t);
        }
      }
    }
  }
  return input;
}

void PorygonSystem::AdvanceExecState(uint64_t exec_round) {
  // Applies the inputs of proposal block B_{exec_round} to the canonical
  // state, recording per-shard results. This equals what every honest ESC
  // computes for that proposal (determinism, Lemma 3).
  if (exec_round < 1 || exec_round >= chain_.size()) return;
  if (exec_cache_.count(exec_round) > 0) return;
  const tx::ProposalBlock& basis = chain_[exec_round];
  const int shards = options_.params.shard_count();

  // Pre-capture foreign-account values for cross-shard pre-execution so all
  // shards observe the same snapshot.
  std::vector<ExecutionInput> inputs;
  std::unordered_map<state::AccountId, state::Account> snapshot;
  for (int d = 0; d < shards; ++d) {
    inputs.push_back(BuildExecutionInput(basis, d));
    for (const auto& t : inputs.back().cross_shard) {
      snapshot[t.from] = exec_state_->GetOrDefault(t.from);
      snapshot[t.to] = exec_state_->GetOrDefault(t.to);
    }
  }

  // Fan the per-shard executions out on the compute pool: each body writes
  // only its own shard's subtree (SnapshotForeignView confines writes, and
  // foreign reads come from the per-body snapshot copy), and each result
  // lands in its own slot. The cross-shard merge below runs on the caller
  // in index order, so the cache is identical for any thread count.
  std::vector<ExecutionResult> results(shards);
  const uint64_t wall_before = pool_->wall_us();
  pool_->ParallelFor(static_cast<size_t>(shards), [&](size_t d) {
    SnapshotForeignView view(exec_state_.get(), static_cast<uint32_t>(d),
                             snapshot);
    results[d] = ShardExecutor::Execute(&view, inputs[d]);
  });
  obs_.runtime_exec_tasks->Add(static_cast<uint64_t>(shards));
  obs_.runtime_exec_wall_us->Add(
      static_cast<double>(pool_->wall_us() - wall_before));

  CachedExec cache;
  cache.roots.resize(shards);
  cache.s_sets.resize(shards);
  cache.intra_applied.resize(shards);
  cache.cross_pre.resize(shards);
  cache.failed.resize(shards);
  for (int d = 0; d < shards; ++d) {
    ExecutionResult& r = results[d];
    cache.roots[d] = r.shard_root;
    cache.s_sets[d] = std::move(r.cross_updates);
    cache.intra_applied[d] = r.intra_applied;
    cache.cross_pre[d] = r.cross_pre_executed;
    cache.failed[d] = static_cast<uint32_t>(r.failed.size());
    for (const auto& f : r.failed) {
      cache.failed_ids.insert(IdKey(f.id));
    }
  }
  exec_cache_[exec_round] = std::move(cache);
  // Bound memory.
  while (!exec_cache_.empty() &&
         exec_cache_.begin()->first + 8 < exec_round) {
    exec_cache_.erase(exec_cache_.begin());
  }
}

void PorygonSystem::ReconfigureEpoch(uint64_t round) {
  // Re-run VRF sortition over the committed tip — the §III-B committee
  // re-formation. Pure function of (tip hash, node keys, adversary spec):
  // nothing is drawn from rng_, so enabling epochs perturbs no other
  // randomness and exports stay byte-identical across thread counts.
  const crypto::Hash256 tip = chain_.back().Hash();
  const size_t n = stateless_nodes_.size();
  std::vector<Assignment> draws(n);
  std::vector<int> order(n);
  for (size_t i = 0; i < n; ++i) {
    draws[i] = Sortition::Assign(provider_.get(),
                                 stateless_nodes_[i]->keys_.private_key,
                                 round, tip, 1.0, 0.0, 0);
    order[i] = static_cast<int>(i);
  }
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    return draws[a].sortition < draws[b].sortition;
  });
  std::set<int> new_oc;
  for (size_t i = 0; i < order.size() &&
                     static_cast<int>(new_oc.size()) < options_.oc_size;
       ++i) {
    new_oc.insert(order[i]);
  }
  const int leader_idx = order[0];
  StatelessNodeActor* new_leader = stateless_nodes_[leader_idx].get();

  StatelessNodeActor* old_leader = nullptr;
  for (auto& node : stateless_nodes_) {
    if (node->net_id() == leader_net_id_) {
      old_leader = node.get();
      break;
    }
  }

  // Re-deal adversary placement for the new membership: same α budget and
  // placement rules, keyed by the epoch ordinal, with the incoming leader
  // exempt (the honest proposal stream stays comparable to the clean run).
  const uint64_t epoch = round / options_.epoch_length;
  const std::vector<AdvStrategy> strategies =
      adversary_->PlaceStateless(order, options_.oc_size, leader_idx, epoch);
  for (size_t i = 0; i < n; ++i) {
    stateless_nodes_[i]->strategy_ = strategies[i];
    if (strategies[i] != AdvStrategy::kHonest) {
      stateless_nodes_[i]->ever_malicious_ = true;
    }
  }

  // Leadership hand-off, captured before membership churn: the outgoing
  // leader's coordinator carries the locked S-sets and retry bookkeeping
  // still in flight across the boundary, and its bundle / exec-result
  // pools cover batches witnessed under the previous committee that the
  // incoming leader must still list (pipeline depth 3).
  std::unique_ptr<CrossShardCoordinator> handoff;
  std::map<uint64_t, std::map<std::string, WitnessedBlock>> handoff_bundles;
  std::map<std::pair<uint64_t, uint32_t>, StatelessNodeActor::PendingExec>
      handoff_results;
  const bool leader_changed =
      old_leader != nullptr && old_leader != new_leader;
  if (leader_changed) {
    handoff = std::move(old_leader->coordinator_);
    handoff_bundles = old_leader->bundles_;
    handoff_results = old_leader->exec_results_;
  }

  // Membership churn. Retiring members shed their OC scratch (their
  // in_oc_ guards then drop stale committee traffic); joiners get fresh
  // scratch plus a coordinator — the hand-off one for a fresh leader.
  for (size_t i = 0; i < n; ++i) {
    StatelessNodeActor* node = stateless_nodes_[i].get();
    const bool member = new_oc.count(static_cast<int>(i)) > 0;
    if (node->in_oc_ && !member) {
      node->RetireFromOc();
      network_->SetNodeRole(node->net_id(), "stateless");
    } else if (!node->in_oc_ && member) {
      std::unique_ptr<CrossShardCoordinator> coord;
      if (node == new_leader) coord = std::move(handoff);
      node->JoinOc(std::move(coord));
    }
  }
  if (handoff != nullptr) {
    // The incoming leader was already an OC member: swap the hand-off
    // coordinator in for its own (the locked S-sets live only there).
    new_leader->coordinator_ = std::move(handoff);
    new_leader->coordinator_->EnableTracing(&tracer_,
                                            new_leader->TraceName());
    new_leader->coordinator_->set_rejected_counter(
        obs_.rejected_unlocked_update);
  }
  if (leader_changed) {
    new_leader->AdoptOcHandoff(handoff_bundles, handoff_results);
    if (old_leader->in_oc_ && old_leader->coordinator_ == nullptr) {
      // The demoted leader stays a plain member: restore the
      // every-member-owns-a-coordinator construction invariant.
      old_leader->coordinator_ = std::make_unique<CrossShardCoordinator>(
          options_.params.shard_bits,
          options_.params.cross_shard_retry_rounds);
      old_leader->coordinator_->EnableTracing(&tracer_,
                                              old_leader->TraceName());
      old_leader->coordinator_->set_rejected_counter(
          obs_.rejected_unlocked_update);
    }
  }

  // Canonical committee ordering (ascending node index — the CompactVoteCert
  // bitmap and BA* quorum math both key off this order), leader identity,
  // and bandwidth-ledger role labels.
  oc_keys_.clear();
  oc_net_ids_.clear();
  for (size_t i = 0; i < n; ++i) {
    if (new_oc.count(static_cast<int>(i)) == 0) continue;
    oc_keys_.push_back(stateless_nodes_[i]->keys_.public_key);
    oc_net_ids_.push_back(stateless_nodes_[i]->net_id());
  }
  leader_net_id_ = new_leader->net_id();
  for (net::NodeId nid : oc_net_ids_) {
    network_->SetNodeRole(nid, nid == leader_net_id_ ? "oc_leader" : "oc");
  }

  // Every member of the new committee re-announces kOrdering over the
  // network: storage nodes verify the sortition proof against the same tip
  // and record the membership (and the modeled wire traffic lands in this
  // round's critical-path window).
  for (size_t i = 0; i < n; ++i) {
    if (new_oc.count(static_cast<int>(i)) == 0) continue;
    StatelessNodeActor* node = stateless_nodes_[i].get();
    RoleAnnounce announce;
    announce.round = round;
    announce.role = static_cast<uint8_t>(Role::kOrdering);
    announce.shard = draws[i].shard;
    announce.sortition = draws[i].sortition;
    announce.node_key = node->keys_.public_key;
    announce.proof = draws[i].proof;
    announce.node_id = node->net_id();
    node->SendToAllStorages(kMsgRoleAnnounce, announce.Encode());
  }
  obs_.epochs->Increment();
}

void PorygonSystem::StartRound(uint64_t round) {
  round_start_times_[round] = events_.now();
  critical_path_.BeginRound(round, events_.now());
  // Snapshot the bandwidth ledger so the commit can difference the window,
  // and re-base the windowed high-watermarks (event-queue depth, per-role
  // in-flight) to this round.
  {
    std::vector<net::LinkActivity> baseline(network_->node_count());
    for (net::NodeId n = 0; n < network_->node_count(); ++n) {
      baseline[n] = network_->ActivityFor(n);
    }
    window_baseline_[round] = std::move(baseline);
  }
  events_.ResetDepthHighWatermark();
  network_->ResetInflightHighWatermarks();
  if (tracer_.enabled()) {
    // Open this round's lane: a "round" span covering start -> commit, with
    // the witness phase as its first child (closed by RecordWitnessReached).
    obs::TraceContext lane = tracer_.RoundContext(round);
    round_spans_[round] = tracer_.BeginSpan(lane, "round", "system");
    witness_spans_[round] =
        tracer_.BeginSpan(RoundLane(round), "witness", "system");
  }
  // Epoch boundary: re-draw the committee before any of this round's work
  // is distributed (the new OC must be in place for witness bundles and
  // proposals of round `round`), and after the ledger snapshot above so
  // the re-announce traffic is attributed to this round's window.
  if (options_.epoch_length > 0 && round > 0 &&
      round % options_.epoch_length == 0) {
    ReconfigureEpoch(round);
  }
  // Advance the canonical state. Fast mode leads by one round (results are
  // pre-computed for adopting ESCs); faithful mode lags so state requests
  // during this round serve the snapshot the executing ESC must see.
  if (options_.faithful_execution) {
    if (round >= 2) AdvanceExecState(round - 2);
  } else {
    AdvanceExecState(round - 1);
  }
  // Tree mode: label this round's base witness-relay election "relay" so
  // the bandwidth ledger and critical-path reports attribute their links
  // separately (observability only — senders re-run the election with
  // strike/crash skips, so a degraded round may route past these nodes).
  if (tree_mode()) {
    for (net::NodeId prev : labeled_relays_) {
      // An epoch boundary may have just promoted last round's relay into
      // the OC; only reset nodes still wearing the relay label.
      if (network_->RoleName(prev) == "relay") {
        network_->SetNodeRole(prev, "stateless");
      }
    }
    labeled_relays_.clear();
    if (const RoundRegistry* reg = RegistryFor(round - 1)) {
      for (const auto& [shard, members] : reg->ec_by_shard) {
        net::NodeId relay =
            net::Dissemination::AggregatorFor(members, round - 1, 0);
        // Never clobber the OC labels — an OC member moonlighting as a
        // relay keeps its (rarer, more load-bearing) committee role.
        if (relay == net::kInvalidNode ||
            network_->RoleName(relay) != "stateless") {
          continue;
        }
        network_->SetNodeRole(relay, "relay");
        labeled_relays_.push_back(relay);
      }
    }
  }
  for (auto& storage : storage_nodes_) {
    // A crashed storage node neither announces the round nor packages
    // blocks; it catches up through OnRejoin when recovered.
    if (network_->IsCrashed(storage->net_id())) continue;
    storage->OnRoundStart(round);
  }
}

void PorygonSystem::OnBlockCommitted(const tx::ProposalBlock& block,
                                     net::SimTime when) {
  if (commit_times_.count(block.round) > 0) return;  // First receipt wins.
  commit_times_[block.round] = when;
  if (chain_.size() != block.round) {
    // Out-of-order commit (should not happen with a single leader).
    PORYGON_LOG(kWarn) << "out-of-order commit of round " << block.round;
    return;
  }
  chain_.push_back(block);
  ++committed_rounds_;
  obs_.committed_blocks->Increment();

  bool empty = true;
  for (const auto& list : block.shard_tx_blocks) {
    if (!list.empty()) empty = false;
  }
  if (empty) obs_.empty_rounds->Increment();

  if (block.round >= 1 && commit_times_.count(block.round - 1) > 0) {
    obs_.block_latency->Observe(
        net::ToSeconds(when - commit_times_[block.round - 1]));
  }
  obs_.discarded_txs->Add(block.discarded.size());

  // Commit phase: the leader's ordering decision to the block landing back
  // at storage.
  auto decided = decision_times_.find(block.round);
  if (decided != decision_times_.end()) {
    obs_.phase_commit->Observe(net::ToSeconds(when - decided->second));
    if (tracer_.enabled()) {
      tracer_.RecordSpan(RoundLane(block.round), "commit", "system",
                         decided->second, when);
    }
    decision_times_.erase(decided);
  }
  // Close this round's lane.
  if (auto rs = round_spans_.find(block.round); rs != round_spans_.end()) {
    tracer_.EndSpan(rs->second);
    round_spans_.erase(rs);
  }

  // Critical-path decomposition: difference the ledger against the
  // round-start snapshot, attribute the window, publish utilizations.
  if (auto base = window_baseline_.find(block.round);
      base != window_baseline_.end()) {
    const obs::RoundReport* report = critical_path_.CommitRound(
        block.round, when, LinkWindowsSince(base->second));
    window_baseline_.erase(base);
    if (report != nullptr) {
      for (size_t i = 0; i < report->links.size(); ++i) {
        const uint32_t util_pm = report->link_util_pm[i];
        UtilGauge(report->links[i].link)->Set(static_cast<double>(util_pm));
        if (tracer_.enabled()) {
          tracer_.RecordCounterSample("util_pm." + report->links[i].link,
                                      static_cast<int64_t>(util_pm));
        }
      }
    }
  }
  // Bound memory: drop snapshots of rounds that will never commit in order.
  while (!window_baseline_.empty() &&
         window_baseline_.begin()->first + 8 < block.round) {
    window_baseline_.erase(window_baseline_.begin());
  }

  // Replay verification: committed roots must match the canonical replay
  // of the inputs that produced them (exec round = block.round - 2).
  if (block.round >= 2) {
    auto cached = exec_cache_.find(block.round - 2);
    if (cached != exec_cache_.end()) {
      for (size_t d = 0; d < block.shard_roots.size() &&
                         d < cached->second.roots.size();
           ++d) {
        // A shard without accepted results keeps its previous root, which
        // is also consistent; only flag mismatches on changed roots.
        const auto& prev_roots = chain_[block.round - 1].shard_roots;
        bool unchanged = d < prev_roots.size() &&
                         block.shard_roots[d] == prev_roots[d];
        if (!unchanged && block.shard_roots[d] != cached->second.roots[d]) {
          obs_.replay_mismatches->Increment();
        }
      }
    }
  }

  AccountCommittedBatch(block);

  // Prune transaction blocks that can no longer be referenced (metrics look
  // back at most 4 rounds; executions at most 2).
  if (block.round > 8) {
    for (auto it = block_store_.begin(); it != block_store_.end();) {
      if (it->second.batch_round + 8 < block.round) {
        it = block_store_.erase(it);
      } else {
        ++it;
      }
    }
  }

  MaybeScheduleNextRound();
}

void PorygonSystem::MaybeScheduleNextRound() {
  // Schedule the next round after the reconfiguration interval plus jitter
  // ("a fixed interval of 2 seconds plus random numerical values", §VI).
  if (round_scheduled_) return;
  if (static_cast<int>(committed_rounds_) >= target_rounds_) return;
  if (chain_.empty()) return;
  round_scheduled_ = true;
  net::SimTime jitter = static_cast<net::SimTime>(
      rng_.NextBelow(options_.params.reconfig_interval_us / 10 + 1));
  uint64_t next = chain_.back().round + 1;
  events_.ScheduleAfter(options_.params.reconfig_interval_us + jitter,
                        [this, next] {
                          round_scheduled_ = false;
                          StartRound(next);
                        });
}

void PorygonSystem::AccountCommittedBatch(const tx::ProposalBlock& block) {
  const uint64_t r = block.round;
  const double now_s = net::ToSeconds(events_.now());
  const bool tracing = tracer_.enabled();

  // Intra-shard transactions of the blocks listed in L_{r-2} finalize now
  // (their execution roots are committed in B_r): batch witnessed at round
  // r-3, commit at r (+3 rounds, §IV-D2).
  auto account_list = [&](const tx::ProposalBlock& listing, bool want_cross,
                          uint64_t exec_round) {
    std::set<std::string> discarded;
    for (const auto& id : listing.discarded) discarded.insert(IdKey(id));
    const std::set<std::string>* failed = nullptr;
    auto cached = exec_cache_.find(exec_round);
    if (cached != exec_cache_.end()) failed = &cached->second.failed_ids;

    for (const auto& shard_list : listing.shard_tx_blocks) {
      for (const auto& block_id : shard_list) {
        auto stored = block_store_.find(IdKey(block_id));
        if (stored == block_store_.end()) continue;
        for (const auto& t : stored->second.block.transactions) {
          if (t.IsCrossShard(options_.params.shard_bits) != want_cross) {
            continue;
          }
          std::string tid = IdKey(t.Id());
          if (discarded.count(tid) > 0) continue;
          if (failed != nullptr && failed->count(tid) > 0) {
            obs_.failed_txs->Increment();
            if (tracing) TraceTxFinal(tid, want_cross, true, listing.round);
            continue;
          }
          if (want_cross) {
            obs_.committed_cross->Increment();
          } else {
            obs_.committed_intra->Increment();
          }
          if (tracing) TraceTxFinal(tid, want_cross, false, listing.round);
          obs_.user_latency->Observe(
              now_s - net::ToSeconds(static_cast<net::SimTime>(
                          t.submitted_at)));
          auto ws = round_start_times_.find(
              stored->second.block.header.round_created);
          if (ws != round_start_times_.end()) {
            obs_.commit_latency->Observe(now_s - net::ToSeconds(ws->second));
          }
        }
      }
    }
  };

  if (r >= 2 && chain_.size() > r - 2) {
    account_list(chain_[r - 2], /*want_cross=*/false, /*exec_round=*/r - 2);
  }
  if (r >= 4 && chain_.size() > r - 4) {
    account_list(chain_[r - 4], /*want_cross=*/true, /*exec_round=*/r - 4);
  }
  // Listings older than r-4 have had both their intra and cross commits.
  while (!traced_by_listing_.empty() &&
         traced_by_listing_.begin()->first + 4 < r) {
    traced_by_listing_.erase(traced_by_listing_.begin());
  }
}

void PorygonSystem::Run(int rounds, net::SimTime max_sim_time) {
  if (!started_) {
    started_ = true;
    // Seal genesis with the funded state.
    genesis_.shard_roots.clear();
    for (int d = 0; d < options_.params.shard_count(); ++d) {
      genesis_.shard_roots.push_back(exec_state_->ShardRoot(d));
    }
    genesis_.state_root = exec_state_->GlobalRoot();
    genesis_.ordering_threshold = options_.params.ordering_fraction;
    genesis_.execution_threshold = options_.params.execution_fraction;
    chain_.push_back(genesis_);
    commit_times_[0] = events_.now();
    round_scheduled_ = true;
    events_.ScheduleAfter(options_.params.reconfig_interval_us, [this] {
      round_scheduled_ = false;
      StartRound(1);
    });
  }
  target_rounds_ = static_cast<int>(committed_rounds_) + rounds;
  MaybeScheduleNextRound();

  while (static_cast<int>(committed_rounds_) < target_rounds_ &&
         events_.now() <= max_sim_time) {
    if (!events_.RunNext()) break;  // Queue drained: the protocol stalled.
  }
}

Status PorygonSystem::InjectFaults(const net::FaultPlan& plan) {
  if (fault_injector_ != nullptr) {
    return Status::FailedPrecondition("a fault plan is already active");
  }
  if (plan.empty()) {
    return Status::InvalidArgument("fault plan is empty");
  }
  fault_injector_ = std::make_unique<net::FaultInjector>(
      plan, network_.get(), &metrics_registry_, &tracer_,
      [this](net::NodeId node, bool crashed) {
        if (crashed) {
          CrashNode(node);
        } else {
          RecoverNode(node);
        }
      });
  return Status::Ok();
}

void PorygonSystem::CrashNode(net::NodeId node) {
  network_->SetCrashed(node, true);
}

void PorygonSystem::RecoverNode(net::NodeId node) {
  network_->SetCrashed(node, false);
  // Storage nodes rejoin: fresh per-round bookkeeping plus an immediate
  // catch-up on the committed tip (the shared block store / canonical state
  // stand in for its durable replica, which survived the crash).
  for (auto& storage : storage_nodes_) {
    if (storage->net_id() != node) continue;
    obs_.storage_rejoins->Increment();
    const uint64_t tip = chain_.empty() ? 0 : chain_.back().round;
    storage->OnRejoin(tip + 1);
    break;
  }
}

size_t PorygonSystem::RegisteredEcMembers(uint64_t round) const {
  auto it = registry_.find(round);
  if (it == registry_.end()) return 0;
  size_t n = 0;
  for (const auto& [shard, members] : it->second.ec_by_shard) {
    n += members.size();
  }
  return n;
}

size_t PorygonSystem::RegisteredOcMembers(uint64_t round) const {
  auto it = registry_.find(round);
  return it == registry_.end() ? 0 : it->second.oc_members.size();
}

std::vector<obs::LinkWindow> PorygonSystem::LinkWindowsSince(
    const std::vector<net::LinkActivity>& baseline) const {
  // One window per role and direction, carrying the per-node mean of that
  // role. The mean — not the max — is the committee's representative link:
  // quorum thresholds mask straggling members, and max-of-N inflates
  // multi-node roles by pure order statistics, which would let a random
  // committee member outrank the leader's structurally identical link.
  // Singleton roles (oc_leader) pass through exactly. Integer division
  // keeps the windows byte-deterministic.
  struct RoleSum {
    obs::LinkWindow sum;
    uint64_t nodes = 0;
  };
  std::map<std::string, RoleSum> sums;
  const auto add = [&sums](obs::LinkWindow lw) {
    RoleSum& rs = sums[lw.link];
    rs.sum.link = lw.link;
    rs.sum.bytes += lw.bytes;
    rs.sum.queue_us += lw.queue_us;
    rs.sum.busy_us += lw.busy_us;
    ++rs.nodes;
  };
  const size_t n = std::min(baseline.size(), network_->node_count());
  for (net::NodeId nid = 0; nid < n; ++nid) {
    const net::LinkActivity& cur = network_->ActivityFor(nid);
    const net::LinkActivity& base = baseline[nid];
    const std::string& role = network_->RoleName(nid);
    add(obs::LinkWindow{role + ".uplink", cur.bytes_up - base.bytes_up,
                        cur.queue_up_us - base.queue_up_us,
                        cur.busy_up_us - base.busy_up_us});
    add(obs::LinkWindow{role + ".downlink", cur.bytes_down - base.bytes_down,
                        cur.queue_down_us - base.queue_down_us,
                        cur.busy_down_us - base.busy_down_us});
  }
  std::vector<obs::LinkWindow> out;
  out.reserve(sums.size());
  for (auto& [link, rs] : sums) {
    (void)link;
    obs::LinkWindow lw = std::move(rs.sum);
    lw.bytes /= rs.nodes;
    lw.queue_us /= static_cast<net::SimTime>(rs.nodes);
    lw.busy_us /= static_cast<net::SimTime>(rs.nodes);
    out.push_back(std::move(lw));
  }
  return out;
}

obs::Gauge* PorygonSystem::UtilGauge(const std::string& link) {
  auto it = util_gauges_.find(link);
  if (it != util_gauges_.end()) return it->second;
  obs::Gauge* g = metrics_registry_.GetGauge("net.link_utilization_pm",
                                             {{"link", link}});
  util_gauges_.emplace(link, g);
  return g;
}

void PorygonSystem::RecordWitnessReached(uint64_t batch_round) {
  // One sample per batch round: the first block of the batch to cross Tw
  // marks the end of the witness phase for that round.
  if (!witness_recorded_.insert(batch_round).second) return;
  critical_path_.MarkWitnessEnd(batch_round, events_.now());
  if (auto ws = witness_spans_.find(batch_round); ws != witness_spans_.end()) {
    tracer_.EndSpan(ws->second);
    witness_spans_.erase(ws);
  }
  auto started = round_start_times_.find(batch_round);
  if (started == round_start_times_.end()) return;
  obs_.phase_witness->Observe(
      net::ToSeconds(events_.now() - started->second));
  // Bound memory.
  while (!witness_recorded_.empty() &&
         *witness_recorded_.begin() + 16 < batch_round) {
    witness_recorded_.erase(witness_recorded_.begin());
  }
}

void PorygonSystem::RecordOrderingDecision(uint64_t round) {
  if (decision_times_.count(round) > 0) return;
  decision_times_[round] = events_.now();
  critical_path_.MarkDecision(round, events_.now());
  auto started = round_start_times_.find(round);
  if (started != round_start_times_.end()) {
    obs_.phase_ordering->Observe(
        net::ToSeconds(events_.now() - started->second));
    if (tracer_.enabled()) {
      tracer_.RecordSpan(RoundLane(round), "ordering", "system",
                         started->second, events_.now());
    }
  }
}

void PorygonSystem::NoteExecPhaseStart(uint64_t exec_round) {
  // First storage node to fan out exec requests starts the clock; the timer
  // observes into the execution histogram when NoteExecPhaseEnd erases it.
  exec_timers_.try_emplace(
      exec_round,
      obs::PhaseTimer(obs_.phase_execution,
                      [this] { return sim_seconds(); }));
  critical_path_.MarkExecStart(exec_round, events_.now());
  if (tracer_.enabled() && exec_spans_.count(exec_round) == 0) {
    exec_spans_[exec_round] =
        tracer_.BeginSpan(RoundLane(exec_round), "execution", "system");
  }
}

void PorygonSystem::NoteExecPhaseEnd(uint64_t exec_round) {
  auto it = exec_timers_.find(exec_round);
  if (it == exec_timers_.end()) return;
  critical_path_.MarkExecEnd(exec_round, events_.now());
  it->second.Stop();
  exec_timers_.erase(it);
  if (auto es = exec_spans_.find(exec_round); es != exec_spans_.end()) {
    tracer_.EndSpan(es->second);
    exec_spans_.erase(es);
  }
  if (tracer_.enabled()) TraceListingExecuted(exec_round);
}

obs::TraceContext PorygonSystem::RoundLane(uint64_t round) {
  obs::TraceContext lane = tracer_.RoundContext(round);
  auto it = round_spans_.find(round);
  if (it != round_spans_.end()) lane.parent_span = it->second;
  return lane;
}

void PorygonSystem::TraceSubmit(const tx::Transaction& t) {
  obs::TraceContext ctx = tracer_.NewTransactionTrace();
  if (!ctx.active()) return;  // Sampling budget exhausted.
  TxTraceState st;
  st.ctx = ctx;
  st.root_span = tracer_.BeginSpan(ctx, "tx", "client");
  st.prev_end = events_.now();
  traced_txs_[IdKey(t.Id())] = std::move(st);
}

void PorygonSystem::TraceTxPackaged(const tx::Transaction& t,
                                    const std::string& node) {
  auto it = traced_txs_.find(IdKey(t.Id()));
  if (it == traced_txs_.end() || it->second.stage != 0) return;
  TxTraceState& st = it->second;
  const net::SimTime now = events_.now();
  tracer_.RecordSpan(obs::Tracer::ChildOf(st.ctx, st.root_span), "submit",
                     node, st.prev_end, now);
  st.prev_end = now;
  st.stage = 1;
}

void PorygonSystem::TraceBlockWitnessed(const tx::BlockId& block_id,
                                        const std::string& node) {
  if (traced_txs_.empty()) return;
  auto stored = block_store_.find(IdKey(block_id));
  if (stored == block_store_.end()) return;
  const net::SimTime now = events_.now();
  for (const auto& t : stored->second.block.transactions) {
    auto it = traced_txs_.find(IdKey(t.Id()));
    if (it == traced_txs_.end() || it->second.stage != 1) continue;
    TxTraceState& st = it->second;
    tracer_.RecordSpan(obs::Tracer::ChildOf(st.ctx, st.root_span), "witness",
                       node, st.prev_end, now);
    st.prev_end = now;
    st.stage = 2;
  }
}

void PorygonSystem::TraceTxOrdered(const tx::TxId& id, uint64_t listing_round,
                                   bool accepted, const std::string& node) {
  std::string tid = IdKey(id);
  auto it = traced_txs_.find(tid);
  if (it == traced_txs_.end()) return;
  TxTraceState& st = it->second;
  const net::SimTime now = events_.now();
  obs::TraceContext child = obs::Tracer::ChildOf(st.ctx, st.root_span);
  if (!accepted) {
    // Conflict-discarded: terminal for this attempt (clients resubmit).
    tracer_.RecordSpan(child, "discarded", node, st.prev_end, now);
    tracer_.EndSpan(st.root_span);
    traced_txs_.erase(it);
    return;
  }
  if (st.stage != 2) return;
  tracer_.RecordSpan(child, "ordering", node, st.prev_end, now);
  st.prev_end = now;
  st.stage = 3;
  traced_by_listing_[listing_round].push_back(std::move(tid));
}

void PorygonSystem::TraceListingExecuted(uint64_t exec_round) {
  auto listed = traced_by_listing_.find(exec_round);
  if (listed == traced_by_listing_.end()) return;
  const net::SimTime now = events_.now();
  for (const std::string& tid : listed->second) {
    auto it = traced_txs_.find(tid);
    if (it == traced_txs_.end() || it->second.stage != 3) continue;
    TxTraceState& st = it->second;
    tracer_.RecordSpan(obs::Tracer::ChildOf(st.ctx, st.root_span), "sse",
                       "oc", st.prev_end, now);
    st.prev_end = now;
    st.stage = 4;
  }
}

void PorygonSystem::TraceTxFinal(const std::string& tid, bool cross,
                                 bool failed, uint64_t listing_round) {
  auto it = traced_txs_.find(tid);
  if (it == traced_txs_.end()) return;
  TxTraceState& st = it->second;
  const net::SimTime now = events_.now();
  obs::TraceContext child = obs::Tracer::ChildOf(st.ctx, st.root_span);
  if (failed) {
    tracer_.RecordSpan(child, "failed", "oc", st.prev_end, now);
  } else if (cross) {
    // The Multi-Shard Update ships with proposal L+2; its commit marks the
    // hand-off from "msu" to final commit certification.
    net::SimTime msu_end = now;
    auto shipped = commit_times_.find(listing_round + 2);
    if (shipped != commit_times_.end() && shipped->second > st.prev_end &&
        shipped->second < now) {
      msu_end = shipped->second;
    }
    tracer_.RecordSpan(child, "msu", "oc", st.prev_end, msu_end);
    tracer_.RecordSpan(child, "commit", "oc", msu_end, now);
  } else {
    tracer_.RecordSpan(child, "commit", "oc", st.prev_end, now);
  }
  tracer_.EndSpan(st.root_span);
  traced_txs_.erase(it);
}

net::SimTime PorygonSystem::DrawSessionEnd() {
  return events_.now() +
         net::FromSeconds(rng_.NextExponential(options_.mean_session_s));
}

std::map<int, double> PorygonSystem::StatelessPhaseTraffic() const {
  // Derived entirely from the registry's labelled net counters: sum the
  // stateless class's sent+received bytes per phase, averaged per node per
  // committed round. Equivalent to the former per-node TrafficStats sweep.
  std::map<int, double> per_phase;
  auto phase_of_label = [](const std::string& label) {
    for (int p = -1; p <= 3; ++p) {
      if (label == PhaseLabelName(p)) return p;
    }
    return -1;
  };
  auto accumulate = [&](const std::string& name, const obs::Labels& labels,
                        const obs::Counter& counter) {
    if (name != "net.sent_bytes" && name != "net.recv_bytes") return;
    std::string node_class, phase_label;
    for (const auto& [key, value] : labels) {
      if (key == "class") node_class = value;
      if (key == "phase") phase_label = value;
    }
    if (node_class != "stateless") return;
    per_phase[phase_of_label(phase_label)] +=
        static_cast<double>(counter.value());
  };
  metrics_registry_.VisitCounters(accumulate);

  uint64_t rounds = committed_rounds_ > 0 ? committed_rounds_ : 1;
  size_t nodes = stateless_nodes_.size() > 0 ? stateless_nodes_.size() : 1;
  for (auto& [phase, bytes] : per_phase) {
    bytes /= static_cast<double>(rounds) * static_cast<double>(nodes);
  }
  return per_phase;
}

}  // namespace porygon::core
