#ifndef PORYGON_CORE_SYSTEM_H_
#define PORYGON_CORE_SYSTEM_H_

#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <tuple>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "consensus/ba_star.h"
#include "core/adversary.h"
#include "core/committee.h"
#include "core/coordinator.h"
#include "core/execution.h"
#include "core/messages.h"
#include "core/params.h"
#include "core/pipeline.h"
#include "crypto/provider.h"
#include "net/dissemination.h"
#include "net/network.h"
#include "obs/critical_path.h"
#include "obs/metrics.h"
#include "runtime/task_pool.h"
#include "state/sharded_state.h"
#include "storage/db.h"
#include "storage/env.h"
#include "tx/blocks.h"
#include "tx/txpool.h"

namespace porygon::net {
struct FaultPlan;
class FaultInjector;
}  // namespace porygon::net

namespace porygon::core {

class PorygonSystem;

/// Construction-time options beyond protocol Params.
struct SystemOptions {
  Params params;
  int num_storage_nodes = 2;
  int num_stateless_nodes = 100;
  /// Fixed Ordering Committee size, drawn from the lowest genesis-VRF
  /// sortition values. The paper lets the OC outlive ECs (§IV-C2); this
  /// implementation keeps one OC for the run and rotates ECs every round.
  int oc_size = 10;
  /// Transaction blocks each storage node packages per shard per round.
  size_t blocks_per_shard_round = 2;
  /// Epoch length in rounds; 0 disables epochs (the historical single
  /// static committee assignment — byte-identical to builds that predate
  /// them). When > 0, every `epoch_length`-th round start re-runs VRF
  /// sortition over the committed tip to re-draw the OC (and its leader),
  /// re-deals adversary placement for the new membership, migrates the
  /// coordinator's in-flight locked S-sets to the new leader, and has the
  /// new members re-announce their roles over the network — §III-B's
  /// periodic committee re-formation. Must be 0 or >= 2.
  uint64_t epoch_length = 0;
  /// Deterministic seed for keys, topology, jitter, adversary placement.
  uint64_t seed = 1;
  /// Worker threads for the compute pool (shard execution, batch signature
  /// verification, compaction, bloom builds). 0 = serial on the event-loop
  /// thread; the PORYGON_THREADS environment variable overrides when set.
  /// Results are byte-identical for any value (see runtime/task_pool.h).
  int worker_threads = 0;
  /// Real Ed25519 instead of the fast MAC backend (slow; small tests only).
  bool use_ed25519 = false;
  /// Faithful mode: storage nodes materialize real Merkle proofs in state
  /// responses and every ESC member independently rebuilds a PartialState
  /// and executes. Off: one representative execution per (round, shard) is
  /// computed and shared (identical by determinism), with network costs
  /// still charged per member.
  bool faithful_execution = false;
  /// Modeled multiproof cost per account when proofs are not materialized.
  size_t state_proof_bytes_per_account = 128;
  /// Fraction of storage nodes that withhold transaction bodies
  /// (data-availability attack, Challenge 2). Bounded by the paper's
  /// β ≤ 1/2. Legacy shorthand for `adversary` with storage:withhold.
  double malicious_storage_fraction = 0.0;
  /// Fraction of stateless nodes that stay silent (crash-style faults).
  /// Bounded by the paper's α ≤ 1/4. Legacy shorthand for `adversary`
  /// with stateless:silent.
  double malicious_stateless_fraction = 0.0;
  /// Active Byzantine adversary for this run (see core/adversary.h);
  /// empty = honest. Mutually exclusive with the legacy fractions above,
  /// which are converted into the equivalent silent/withhold spec.
  AdversarySpec adversary;
  /// Message-flow shaping for the run (see net/dissemination.h): `direct`
  /// is the legacy leader-centric star and is byte-identical to builds
  /// that predate the strategy layer; `tree` routes witness bundles,
  /// exec-result votes, and BA* votes through per-shard aggregation
  /// relays and erasure-codes body propagation across each EC.
  net::DisseminationSpec dissemination;
  /// Mean stateless-node session length in seconds (0 = nodes never
  /// leave) — churn experiments (Fig 8d). Expired nodes skip a round to
  /// "rejoin", then resume with a fresh session. Porygon tolerates this
  /// well because EC lifecycles are only 3 rounds; the Blockene baseline's
  /// 50-block committees stall instead. The stable OC (long-lived per
  /// §IV-C2) is exempt.
  double mean_session_s = 0;
  /// Sim-time distributed tracing (off by default; see obs/trace.h). When
  /// `trace.enabled`, the run records lifecycle spans for the first
  /// `trace.sample_transactions` submitted transactions plus always-on
  /// per-round pipeline lanes, exportable as Chrome trace_event JSON via
  /// PorygonSystem::tracer()->ExportChromeJson() (loads in Perfetto).
  obs::Tracer::Options trace;

  /// Rejects nonsense configurations (negative counts, fractions outside
  /// [0,1], an OC larger than the stateless population, ...) with
  /// kInvalidArgument naming the offending field. The PorygonSystem
  /// constructor calls this and aborts on failure.
  Status Validate() const;
};

/// Everything the experiments measure: a read-only facade over the
/// system's MetricsRegistry. Actors record through the registry; this class
/// only derives values at call time, so it is cheap to copy (one pointer)
/// and valid for as long as the owning PorygonSystem lives.
class SystemMetrics {
 public:
  explicit SystemMetrics(const obs::MetricsRegistry* registry)
      : registry_(registry) {}

  uint64_t committed_intra_txs() const;
  uint64_t committed_cross_txs() const;
  uint64_t committed_txs() const {
    return committed_intra_txs() + committed_cross_txs();
  }
  uint64_t discarded_txs() const;
  uint64_t failed_txs() const;
  uint64_t committed_blocks() const;
  uint64_t empty_rounds() const;
  /// Root mismatches detected during storage replay (0 in honest runs).
  uint64_t replay_mismatches() const;

  double Tps(double duration_s) const {
    return duration_s > 0
               ? static_cast<double>(committed_txs()) / duration_s
               : 0;
  }

  /// Consecutive commit-to-commit gaps (seconds).
  obs::HistogramSummary BlockLatency() const;
  /// Witness-to-commit per transaction (seconds).
  obs::HistogramSummary CommitLatency() const;
  /// Submission-to-commit per transaction (seconds).
  obs::HistogramSummary UserLatency() const;
  /// Duration of one pipeline phase per round (seconds).
  obs::HistogramSummary PhaseDuration(Phase phase) const;

  /// Full registry export (see obs/export.h for the formats).
  std::string ToJson() const;
  std::string ToCsv() const;

  /// Escape hatch for series without a dedicated accessor.
  const obs::MetricsRegistry* registry() const { return registry_; }

 private:
  uint64_t CounterOr0(const char* name, const obs::Labels& labels) const;
  obs::HistogramSummary SummaryOf(const char* name,
                                  const obs::Labels& labels) const;

  const obs::MetricsRegistry* registry_;
};

/// A storage node: holds the full state and the block store, packages
/// transaction blocks, routes stateless-node traffic, collects witness
/// proofs, serves state downloads, and applies committed blocks (§IV-B1).
class StorageNodeActor {
 public:
  StorageNodeActor(PorygonSystem* system, int index, net::NodeId net_id,
                   AdvStrategy strategy);

  void HandleMessage(const net::Message& msg);
  /// Round r has started: notify primaries; then (after a grace period)
  /// package blocks for batch r, push the witness bundle of batch r-1 to
  /// OC members, and push exec requests from B_{r-1}.
  void OnRoundStart(uint64_t round);
  /// The deferred part of OnRoundStart (blocks/bundles/exec requests).
  void DistributeRoundWork(uint64_t round);
  /// Called after a crash -> recover cycle: the node is back on the
  /// network and will catch up on the current round (fresh per-round
  /// bookkeeping; durable state survived in db_/block store).
  void OnRejoin(uint64_t round);

  int index() const { return index_; }
  net::NodeId net_id() const { return net_id_; }
  bool malicious() const { return strategy_ != AdvStrategy::kHonest; }
  AdvStrategy strategy() const { return strategy_; }
  uint64_t db_bytes() const;
  /// Diagnostics: blocks that reached Tw in batch `round`.
  size_t WitnessedInBatch(uint64_t round) const {
    auto it = witnessed_by_batch_.find(round);
    return it == witnessed_by_batch_.end() ? 0 : it->second.size();
  }
  size_t pool_pending() const { return pool_.PendingTotal(); }

 private:
  friend class PorygonSystem;

  void OnSubmitTx(const net::Message& msg);
  void OnWitnessUpload(const net::Message& msg, bool from_gossip);
  void OnRelay(const net::Message& msg);
  void OnStateRequest(const net::Message& msg);
  void OnResync(const net::Message& msg);
  void OnCommit(const net::Message& msg, bool from_gossip);
  void OnRoleAnnounce(const net::Message& msg, bool from_gossip);
  void OnGossip(const net::Message& msg);

  void GossipToPeers(uint16_t inner_kind, const Bytes& payload,
                     size_t wire_size);

  /// Node label on trace spans (only built when tracing is enabled).
  std::string TraceName() const { return "storage" + std::to_string(index_); }

  // Strategy predicates: kWithhold is the legacy data-availability
  // adversary (bodies withheld, relays dropped, gossip suppressed);
  // the other strategies each misbehave on exactly one surface.
  bool withholds_bodies() const { return strategy_ == AdvStrategy::kWithhold; }
  bool suppresses_gossip() const {
    return strategy_ == AdvStrategy::kWithhold;
  }
  bool drops_relays() const {
    return strategy_ == AdvStrategy::kWithhold ||
           strategy_ == AdvStrategy::kCensor;
  }
  bool tampers_state() const { return strategy_ == AdvStrategy::kTamperState; }
  bool stale_replies() const { return strategy_ == AdvStrategy::kStaleReply; }

  PorygonSystem* system_;
  int index_;
  net::NodeId net_id_;
  AdvStrategy strategy_;

  tx::TxPool pool_;
  std::unique_ptr<storage::MemEnv> env_;
  std::unique_ptr<storage::Db> db_;

  // Witness bookkeeping: block id -> distinct proofs; per-batch witnessed
  // block ids (reached Tw).
  struct WitnessState {
    std::map<crypto::PublicKey, tx::WitnessProof> proofs;
    bool announced_to_oc = false;
  };
  std::unordered_map<std::string, WitnessState> witness_state_;
  std::map<uint64_t, std::vector<tx::BlockId>> witnessed_by_batch_;

  // Deduplication of gossiped payloads.
  std::unordered_set<std::string> gossip_seen_;

  // Blocks offered this round, per shard (serves late role announcements).
  uint64_t last_distributed_round_ = 0;
  std::map<uint32_t, std::vector<std::string>> offered_blocks_;

  // Blocks we packaged whose ids have not yet appeared in a committed
  // listing (block-id key -> batch round). Normally pruned by OnCommit;
  // whatever survives a crash -> rejoin cycle is orphaned (its witness
  // bundle died with us) and its transactions are re-queued into the pool.
  std::map<std::string, uint64_t> unlisted_blocks_;

  // --- Tree dissemination (storage side) ---------------------------------
  // Sub-bundles handed to witness relays, settled against the committed
  // listing of `listing_round` in OnCommit: an aggregate that dropped any
  // of our offered blocks strikes its relay; a clean listing resets. A
  // relay with >= DisseminationSpec::relay_strikes strikes is skipped at
  // election time, and with every candidate struck or crashed the sender
  // degrades to the legacy direct bundle push.
  struct RelayAudit {
    uint64_t listing_round = 0;
    net::NodeId relay = net::kInvalidNode;
    std::vector<std::string> block_ids;
  };
  std::vector<RelayAudit> pending_relay_audit_;
  std::map<net::NodeId, int> relay_strikes_;
};

/// A stateless node: ~5 MB footprint, joins committees by VRF, witnesses,
/// orders (if OC), executes (ESC), and votes.
class StatelessNodeActor {
 public:
  StatelessNodeActor(PorygonSystem* system, int index, net::NodeId net_id,
                     crypto::KeyPair keys, std::vector<net::NodeId> storages,
                     AdvStrategy strategy, bool in_oc);

  void HandleMessage(const net::Message& msg);
  /// Storage primary told us a new round started (B_{r-1} attached).
  void OnNewRound(const tx::ProposalBlock& prev_block, uint64_t round);

  int index() const { return index_; }
  net::NodeId net_id() const { return net_id_; }
  const crypto::PublicKey& public_key() const { return keys_.public_key; }
  /// The storage node this stateless node downloads bundles/blocks from.
  /// Starts as the first connection; the runtime failover logic rotates it
  /// when the current primary goes silent (see RotatePrimary).
  net::NodeId primary_storage() const {
    return storages_.empty() ? net::kInvalidNode : storages_[primary_idx_];
  }
  /// Diagnostics: index into the connection list currently used as primary.
  size_t primary_index() const { return primary_idx_; }
  bool in_oc() const { return in_oc_; }
  bool malicious() const { return strategy_ != AdvStrategy::kHonest; }
  /// True if any epoch's placement ever corrupted this node. Evidence
  /// records outlive re-deals, so "evidence only against malicious nodes"
  /// must be judged against the whole history, not the current strategy.
  bool ever_malicious() const { return ever_malicious_; }
  AdvStrategy strategy() const { return strategy_; }
  /// Modeled storage footprint in bytes (Fig 9a): latest proposal block,
  /// committee public keys, and transiently-held witnessed block bodies.
  uint64_t StorageFootprintBytes() const;
  /// Diagnostics: merged witnessed blocks this OC member holds for batch r.
  size_t BundleSizeFor(uint64_t round) const {
    auto it = bundles_.find(round);
    return it == bundles_.end() ? 0 : it->second.size();
  }
  uint64_t current_round() const { return current_round_; }

 private:
  friend class PorygonSystem;

  // --- EC paths ---------------------------------------------------------
  void OnTxBlock(const net::Message& msg);
  void OnExecRequest(const net::Message& msg);
  void OnStateResponse(const net::Message& msg);
  /// Faithful-mode cross-check of a storage state reply: every entry's
  /// Merkle proof must verify against the committed roots the exec
  /// request carried. A tampering storage node fails this (proofs attest
  /// the true values), triggering a re-request from another connection.
  bool VerifyStateResponse(const StateResponse& resp) const;
  void RunExecution();

  // --- Tree-dissemination paths (net::DisseminationMode::kTree only) -----
  /// Erasure-coded body chunk: store, forward our seed chunk to the next k
  /// mesh peers, and reconstruct + witness once k+1 chunks arrived.
  void OnBodyChunk(const net::Message& msg);
  /// Shared tail of OnTxBlock / chunk reassembly: verify the body against
  /// its header, hold it, and upload witness proofs to all connections.
  void WitnessBody(tx::TransactionBlock block, uint64_t round,
                   obs::TraceContext trace);
  /// Relay-side attestation pool: flushed as one AggregatedExecResult to
  /// every OC member once enough distinct signers agree on one key.
  void CollectExecAttestation(const ExecResultMsg& result);
  /// Elected vote relay for a BA* instance (rotates; never the leader;
  /// kInvalidNode for committees too small to benefit).
  net::NodeId VoteRelayFor(uint64_t instance) const;
  /// Sends a vote to the elected relay (tree mode) or broadcasts it
  /// (direct mode, degraded relay, or relay self-election).
  void RouteVote(const consensus::Vote& v, obs::TraceContext lane);
  /// Vote-relay pool: emits one CompactVoteCert per (instance, step, kind,
  /// value) the moment it reaches quorum.
  void CollectVote(const consensus::Vote& v);
  /// Witness aggregate: as the elected relay, merge storage sub-bundles
  /// and flush one aggregate to the leader; as the leader, merge into
  /// bundles_ (detecting relay equivocation) and maybe propose.
  void OnAggWitness(const net::Message& msg);
  /// Flushes this node's merged witness aggregate for (batch, shard) to
  /// the OC leader (deadline event or all-senders-arrived trigger).
  void FlushWitnessAgg(uint64_t batch_round, uint32_t shard);
  /// Batched exec-result attestations (relay -> OC member).
  void OnAggExecResult(const net::Message& msg);
  /// Compact BA* vote certificate (vote relay -> OC member).
  void OnVoteCert(const net::Message& msg);
  /// Tree-mode delivery ack replacing the suppressed broadcast echo.
  void OnRelayAck(const net::Message& msg);

  // --- OC paths ---------------------------------------------------------
  void OnWitnessBundle(const net::Message& msg);
  void OnProposal(const net::Message& msg);
  void OnVote(const net::Message& msg);
  void OnDecisionCert(const net::Message& msg);
  void OnExecResult(const net::Message& msg);
  void MaybePropose();
  void BroadcastToOc(uint16_t kind, const Bytes& payload,
                     obs::TraceContext trace = {});
  void StartConsensus(const tx::ProposalBlock& proposal);
  void OnDecision(const consensus::DecisionCert& cert);
  /// (Re)broadcasts the stored decision cert to the committee; the leader
  /// also (re)publishes the committed block to storage. Called on first
  /// decision and again from the timeout driver while the round is open.
  void PublishDecision();

  void SendToPrimary(uint16_t kind, Bytes payload, size_t wire_size = 0,
                     obs::TraceContext trace = {});
  void SendToAllStorages(uint16_t kind, const Bytes& payload,
                         size_t wire_size = 0, obs::TraceContext trace = {});

  // --- Epoch reconfiguration (driven by PorygonSystem::ReconfigureEpoch) --
  struct PendingExec;  // Defined in the OC-state section below.
  /// Drops out of the ordering committee: clears every piece of OC scratch
  /// (consensus instance, vote buffers, bundles, exec-result pools, relay
  /// aggregation state) and releases the coordinator. EC-side state
  /// (held blocks, a pending exec task, the current assignment) survives —
  /// a drafted-out member may still owe an earlier cohort its execution.
  void RetireFromOc();
  /// Joins the ordering committee: fresh OC scratch plus a coordinator —
  /// `handoff` (the outgoing leader's, with its locked S-sets and retry
  /// bookkeeping in flight across the boundary) when this node is the
  /// incoming leader, or a newly-built one otherwise. ReconfigureEpoch
  /// sends the kOrdering re-announce separately.
  void JoinOc(std::unique_ptr<CrossShardCoordinator> handoff);
  /// Leader-to-leader state hand-off across an epoch boundary: merges the
  /// outgoing leader's witnessed bundles and exec-result pools so the
  /// incoming leader can still propose listings for batches witnessed —
  /// and results produced — under the previous committee.
  void AdoptOcHandoff(
      const std::map<uint64_t, std::map<std::string, WitnessedBlock>>&
          bundles,
      const std::map<std::pair<uint64_t, uint32_t>, PendingExec>& results);

  // --- Storage-link failover (runtime health model) -----------------------
  // Storage-bound requests (relays, state requests) carry a per-request
  // sim-time deadline. A deadline firing with no traffic heard from the
  // primary since the send counts a strike and retransmits with exponential
  // backoff; enough strikes rotate the primary through the connection list.
  // A round watchdog covers full stalls between requests, and a probe chain
  // readopts the preferred primary once it answers again.
  void TrackRequest(uint16_t kind, const Bytes& payload, size_t wire_size,
                    obs::TraceContext trace);
  void OnRequestDeadline(uint64_t req_id);
  void RotatePrimary();
  void NoteHeardFrom(net::NodeId from);
  void NoteEcho(const net::Message& msg);
  void OnWatchdog();
  void SendProbe();
  void SendResync(net::NodeId target);

  /// Node label on trace spans (only built when tracing is enabled).
  std::string TraceName() const { return "node" + std::to_string(index_); }

  PorygonSystem* system_;
  int index_;
  net::NodeId net_id_;
  crypto::KeyPair keys_;
  std::vector<net::NodeId> storages_;  // m connections; [0] is primary.
  AdvStrategy strategy_;
  bool ever_malicious_ = false;
  bool in_oc_;

  uint64_t current_round_ = 0;
  net::SimTime session_end_ = net::kSimTimeNever;  // Churn (Fig 8d).

  // --- Storage-link failover state ---------------------------------------
  struct PendingReq {
    uint16_t kind = 0;
    Bytes payload;
    size_t wire_size = 0;
    obs::TraceContext trace;
    /// For OC-broadcast relays: the inner (kind, payload) the primary must
    /// echo back to us (OnRelay forwards to every OC member, sender
    /// included). Receiving the echo is positive proof of delivery.
    uint16_t echo_kind = 0;
    Bytes echo_payload;
    uint64_t round = 0;         ///< Round the request was issued in.
    size_t target_idx = 0;      ///< Connection the last send went to.
    net::SimTime sent_at = 0;   ///< Last (re)transmission time.
    int attempts = 0;           ///< Deadline firings so far.
  };
  size_t primary_idx_ = 0;    ///< Current primary (index into storages_).
  size_t preferred_idx_ = 0;  ///< Probe/readoption target after rotation.
  int primary_strikes_ = 0;   ///< Consecutive silent-primary deadline hits.
  /// Times the preferred primary was rotated away from. After the second
  /// failure (it was readopted and struck out again) it is never probed
  /// again: a live-but-useless (censoring) node must not oscillate.
  int preferred_failures_ = 0;
  uint64_t next_req_id_ = 1;
  std::map<uint64_t, PendingReq> pending_reqs_;
  std::vector<net::SimTime> heard_at_;  ///< Last traffic per connection.
  net::SimTime last_new_round_at_ = 0;
  int resync_budget_ = 0;        ///< Watchdog rotations left this stretch.
  bool watchdog_armed_ = false;  ///< A watchdog event chain is live.
  /// Connection index the watchdog last resynced during the current stall
  /// (-1 once a fresh round arrives). Lets the watchdog distinguish "this
  /// primary never got a chance to answer a resync" (try it before
  /// rotating — per-request strikes may have just moved us to a live
  /// storage node) from "we already asked this one and it did not help"
  /// (rotate). Without it the watchdog rotates unconditionally, which can
  /// resonate with strike-based rotations and bounce the node back onto a
  /// dead primary every window until the budget dies.
  int watchdog_resynced_idx_ = -1;
  bool probe_chain_active_ = false;
  bool probe_inflight_ = false;  ///< Readopt only on a probe answer.
  int probes_left_ = 0;
  crypto::Hash256 prev_hash_{};
  tx::ProposalBlock last_block_;
  std::optional<Assignment> assignment_;  // EC role for current round.

  // Witnessed blocks held between Witness and Execution phases, keyed by
  // block id: bodies + access lists (pruned after execution).
  struct HeldBlock {
    tx::TransactionBlockHeader header;
    std::vector<tx::Transaction> txs;
    uint64_t witnessed_round = 0;
  };
  std::map<std::string, HeldBlock> held_blocks_;

  // Execution-phase scratch (ESC member).
  struct ExecTask {
    ExecRequest request;
    uint64_t started_round = 0;
    bool state_requested = false;
    std::optional<StateResponse> state;
    uint64_t trace_span = 0;  ///< Open "exec" span (0 = untraced).
    /// Accounts the state request asked for (re-requests after a failed
    /// proof cross-check reuse the same set).
    std::vector<state::AccountId> state_accounts;
    int state_retries = 0;  ///< Re-requests issued after bad replies.
  };
  std::optional<ExecTask> exec_task_;

  // --- OC state (only used when in_oc_) ----------------------------------
  struct PendingExec {
    std::map<std::string, int> result_votes;            // Result key -> count.
    std::map<std::string, ExecResultMsg> payloads;      // Result key -> data.
    std::set<crypto::PublicKey> voters;
  };
  // Merged witnessed blocks per batch round (id -> block).
  std::map<uint64_t, std::map<std::string, WitnessedBlock>> bundles_;
  // Exec results per (exec round, shard).
  std::map<std::pair<uint64_t, uint32_t>, PendingExec> exec_results_;
  std::unique_ptr<consensus::BaStar> ba_;
  std::vector<consensus::Vote> pending_votes_;  // Early votes pre-proposal.
  std::unique_ptr<CrossShardCoordinator> coordinator_;  // Leader only.
  bool proposed_this_round_ = false;
  tx::ProposalBlock pending_proposal_;  // Leader's own proposal content.
  std::map<std::string, tx::ProposalBlock> proposals_seen_;  // By hash.
  std::optional<crypto::Hash256> decided_hash_;
  // The deciding cert-quorum, kept for retransmission: while the round
  // stays open the timeout driver re-sends it (and the leader re-sends the
  // commit), so lost hand-offs cannot strand a partially-decided committee.
  std::optional<consensus::DecisionCert> decided_cert_;

  // --- Tree dissemination state (kTree only; empty in direct runs) --------
  // EC-side chunk reassembly, by block id: chunks received so far plus the
  // header to validate the reconstruction against. Pruned on round change.
  struct ChunkState {
    tx::TransactionBlockHeader header{};
    uint16_t k = 0;
    uint16_t n = 0;
    std::vector<std::optional<Bytes>> chunks;
    size_t have = 0;
    bool done = false;       ///< Reconstructed (or arrived whole).
    bool forwarded = false;  ///< Our seed chunk went to the mesh peers.
  };
  std::map<std::string, ChunkState> chunk_state_;
  // Witness-relay scratch (this node elected for a shard): merged blocks
  // per (batch round, shard), flushed to the leader when all storage
  // sub-bundles arrived or the deadline event fires.
  struct WitnessAgg {
    std::map<std::string, WitnessedBlock> blocks;  // By block id.
    std::set<net::NodeId> senders;
    bool flushed = false;
    bool deadline_armed = false;
  };
  std::map<std::pair<uint64_t, uint32_t>, WitnessAgg> witness_agg_;
  // Leader-side relay-equivocation detection: first aggregate hash seen
  // per (batch round, shard, aggregator).
  std::map<std::tuple<uint64_t, uint32_t, net::NodeId>, crypto::Hash256>
      agg_seen_;
  // Exec-result attestation relay scratch: attestations per result key
  // (root || s_hash) for (exec round, shard); a key flushes once when it
  // reaches the aggregation target.
  struct ExecAgg {
    std::map<std::string, std::vector<ExecResultMsg>> by_key;
    std::set<std::string> flushed_keys;
  };
  std::map<std::pair<uint64_t, uint32_t>, ExecAgg> exec_agg_;
  // Vote-relay scratch: votes per (instance, step, kind, value), emitted
  // as one CompactVoteCert at quorum.
  struct VoteAgg {
    std::vector<consensus::Vote> votes;
    std::set<crypto::PublicKey> voters;
    bool emitted = false;
  };
  std::map<std::tuple<uint64_t, uint32_t, uint8_t, std::string>, VoteAgg>
      vote_agg_;
  // Degradation latch: a BA* step timeout firing in tree mode means the
  // vote relay may be eating votes — this node's later votes go direct.
  bool vote_relay_direct_ = false;
};

/// Builds and drives a full Porygon deployment over the discrete-event
/// network: storage nodes, stateless nodes, clients, rounds, and metrics.
class PorygonSystem {
 public:
  explicit PorygonSystem(const SystemOptions& options);
  ~PorygonSystem();

  PorygonSystem(const PorygonSystem&) = delete;
  PorygonSystem& operator=(const PorygonSystem&) = delete;

  /// Creates `count` funded accounts (balance each) spread over shards.
  void CreateAccounts(uint64_t count, uint64_t balance);

  /// Declares ids [1, count] funded with `balance` without materializing
  /// any Merkle leaves: O(1), so million-account benches start instantly.
  /// An account's leaf appears on its first write; reads of untouched ids
  /// see the declared balance through every state view (canonical and the
  /// stateless nodes' proof-built partial views alike, so faithful
  /// execution stays byte-identical to the fast path). Call once, before
  /// Run(); ids above `next account hint` are reserved like CreateAccounts.
  void CreateAccountsLazy(uint64_t count, uint64_t balance);

  /// Client-submits a transaction to a deterministic storage node at the
  /// current virtual time. Returns kInvalidArgument for malformed
  /// transactions (missing endpoints, self-transfers) and kAlreadyExists
  /// for mempool duplicates.
  Status SubmitTransaction(tx::Transaction t);

  /// Submits a batch with one timestamp read and one metrics flush for the
  /// whole vector; statuses[i] is SubmitTransaction's status for batch[i].
  std::vector<Status> SubmitBatch(const std::vector<tx::Transaction>& batch);

  /// Starts the protocol (genesis block, first round) and runs until
  /// `rounds` proposal blocks have committed (or `max_sim_time` passes).
  void Run(int rounds, net::SimTime max_sim_time = net::kSimTimeNever);

  /// Arms a deterministic fault-injection plan against this deployment's
  /// network (loss/duplication/delay/partitions via the SimNetwork fault
  /// hook; scheduled crashes and recoveries routed through the storage
  /// rejoin path below). Call before or between Run() segments; at most one
  /// plan may be active per system. Returns kFailedPrecondition on a second
  /// call and kInvalidArgument for an empty plan.
  Status InjectFaults(const net::FaultPlan& plan);

  /// Crash semantics for storage nodes: the network drops their traffic
  /// while crashed; recovery puts them back and has them catch up on the
  /// committed tip (OnRejoin). Stateless ids only toggle the network flag.
  void CrashNode(net::NodeId node);
  void RecoverNode(net::NodeId node);

  SystemMetrics metrics() const { return SystemMetrics(&metrics_registry_); }
  /// The registry every layer of this deployment records into (network,
  /// consensus, storage engines, pipeline actors).
  obs::MetricsRegistry* metrics_registry() { return &metrics_registry_; }
  const obs::MetricsRegistry& metrics_registry() const {
    return metrics_registry_;
  }
  /// The deployment's tracer (inert unless SystemOptions::trace.enabled).
  /// Call tracer()->ExportChromeJson() after Run() for a Perfetto-loadable
  /// trace of the sampled transactions and the per-round pipeline lanes.
  obs::Tracer* tracer() { return &tracer_; }
  const obs::Tracer& tracer() const { return tracer_; }
  /// Per-round commit-latency decompositions over the bandwidth ledger
  /// (always on — pure sim-time arithmetic). One RoundReport per committed
  /// round: latency segments, the dominant edge (e.g. "oc_leader.downlink")
  /// with its utilization share, and per-role link windows. Byte-identical
  /// JSON for a given seed at any thread count.
  const obs::CriticalPathAnalyzer& critical_path() const {
    return critical_path_;
  }
  const std::vector<tx::ProposalBlock>& chain() const { return chain_; }
  const state::ShardedState& canonical_state() const { return *exec_state_; }
  net::SimNetwork* network() { return network_.get(); }
  net::EventQueue* events() { return &events_; }
  const SystemOptions& options() const { return options_; }
  const Params& params() const { return options_.params; }
  crypto::CryptoProvider* provider() { return provider_.get(); }
  /// The deployment's adversary controller (never null; inert — and its
  /// action counters zero — when no adversary is configured).
  AdversaryController* adversary() { return adversary_.get(); }
  /// Equivocation evidence reported by honest OC members' BA★ instances,
  /// in detection order (bounded; empty in honest runs).
  const std::vector<consensus::EquivocationEvidence>& equivocation_evidence()
      const {
    return equivocation_evidence_;
  }
  /// The deployment's compute pool (never null; 0-worker pools run serial).
  runtime::TaskPool* task_pool() { return pool_.get(); }
  double sim_seconds() const { return net::ToSeconds(events_.now()); }

  StorageNodeActor* storage_node(int i) { return storage_nodes_[i].get(); }
  StatelessNodeActor* stateless_node(int i) {
    return stateless_nodes_[i].get();
  }
  /// Stateless node by simulated network address (nullptr if unknown).
  const StatelessNodeActor* StatelessByNetId(net::NodeId id) const;
  int num_storage_nodes() const {
    return static_cast<int>(storage_nodes_.size());
  }
  int num_stateless_nodes() const {
    return static_cast<int>(stateless_nodes_.size());
  }

  /// Aggregate traffic of stateless nodes per pipeline phase (Fig 9b),
  /// bytes per node per committed round, averaged.
  std::map<int, double> StatelessPhaseTraffic() const;

  /// Draws the end time of a fresh node session (churn model).
  net::SimTime DrawSessionEnd();

  /// Registered EC members for `round` (diagnostics).
  size_t RegisteredEcMembers(uint64_t round) const;
  /// OC members whose epoch re-announce registered for `round`
  /// (diagnostics; non-zero only at epoch boundaries).
  size_t RegisteredOcMembers(uint64_t round) const;

 private:
  friend class StorageNodeActor;
  friend class StatelessNodeActor;

  // --- Shared infrastructure accessed by actors --------------------------
  struct StoredBlock {
    tx::TransactionBlock block;
    uint64_t batch_round;
  };

  // Block store shared by honest storage nodes (replication elided).
  std::unordered_map<std::string, StoredBlock> block_store_;

  // Canonical execution state (honest storage nodes replicate identically;
  // kept once). Advanced each round by applying proposal-block inputs.
  std::unique_ptr<state::ShardedState> exec_state_;

  // Execution-result cache per exec round: per-shard results, computed once
  // when the state advances (fast mode) or verified against (faithful).
  struct CachedExec {
    std::vector<crypto::Hash256> roots;
    std::vector<std::vector<tx::StateUpdate>> s_sets;
    std::vector<uint32_t> intra_applied;
    std::vector<uint32_t> cross_pre;
    std::vector<uint32_t> failed;
    std::set<std::string> failed_ids;
  };
  std::map<uint64_t, CachedExec> exec_cache_;

  // Committee registry (as known to storage nodes via announcements; kept
  // centrally because honest storage nodes converge on it within a hop).
  struct RoundRegistry {
    std::vector<net::NodeId> oc_members;
    std::map<uint32_t, std::vector<net::NodeId>> ec_by_shard;
  };
  std::map<uint64_t, RoundRegistry> registry_;

  void RegisterAnnounce(const RoleAnnounce& announce);
  const RoundRegistry* RegistryFor(uint64_t round) const;

  /// Appends one equivocation-evidence record (called from honest OC
  /// members' BA★ evidence sinks; bounded so a vote-spamming adversary
  /// cannot grow memory without limit).
  void RecordEquivocationEvidence(const consensus::EquivocationEvidence& ev);

  // --- Observability -----------------------------------------------------
  // Phase-duration recording: witness when blocks reach Tw, ordering at the
  // leader's BA* decision, commit from decision to block application,
  // execution via a PhaseTimer spanning exec-request fan-out to the first
  // result back at the leader. All in sim time; actors call these hooks.
  void RecordWitnessReached(uint64_t batch_round);
  void RecordOrderingDecision(uint64_t round);
  void NoteExecPhaseStart(uint64_t exec_round);
  void NoteExecPhaseEnd(uint64_t exec_round);

  // --- Distributed tracing ------------------------------------------------
  // Sampled transactions carry a TxTraceState through the pipeline: a root
  // "tx" span plus a chain of consecutive child spans (submit -> witness ->
  // ordering -> sse [-> msu] -> commit), each starting where the previous
  // one ended (`prev_end`), so the tree renders nested and non-overlapping.
  // `stage` makes the hooks idempotent: gossip delivers witness thresholds
  // and commits to every storage node, but only the first call advances.
  // All hooks are no-ops when the transaction is not traced; actors guard
  // calls with tracer_.enabled() so the disabled cost is one inline bool.
  struct TxTraceState {
    obs::TraceContext ctx;
    uint64_t root_span = 0;
    net::SimTime prev_end = 0;
    int stage = 0;  // 0 submitted, 1 packaged, 2 witnessed, 3 ordered, 4 sse.
  };
  /// Round-lane context: spans parented under the open "round" span.
  obs::TraceContext RoundLane(uint64_t round);
  /// Admission core shared by SubmitTransaction/SubmitBatch: `t` is already
  /// stamped; touches no counters (callers aggregate per call/batch).
  Status AdmitStamped(const tx::Transaction& t);
  void TraceSubmit(const tx::Transaction& t);
  void TraceTxPackaged(const tx::Transaction& t, const std::string& node);
  void TraceBlockWitnessed(const tx::BlockId& block_id,
                           const std::string& node);
  void TraceTxOrdered(const tx::TxId& id, uint64_t listing_round,
                      bool accepted, const std::string& node);
  void TraceListingExecuted(uint64_t exec_round);
  void TraceTxFinal(const std::string& tid, bool cross, bool failed,
                    uint64_t listing_round);

  /// Hot-path instrument pointers, resolved once at construction so actors
  /// record without registry lookups.
  struct Instruments {
    obs::Counter* submitted_txs = nullptr;
    obs::Counter* rejected_duplicate = nullptr;
    obs::Counter* rejected_invalid = nullptr;
    obs::Counter* committed_intra = nullptr;
    obs::Counter* committed_cross = nullptr;
    obs::Counter* discarded_txs = nullptr;
    obs::Counter* failed_txs = nullptr;
    obs::Counter* committed_blocks = nullptr;
    obs::Counter* empty_rounds = nullptr;
    obs::Counter* replay_mismatches = nullptr;
    obs::Counter* gossip_dedup_hits = nullptr;
    obs::Counter* exec_cache_hits = nullptr;
    obs::Counter* exec_cache_misses = nullptr;
    obs::Counter* rejected_unavailable = nullptr;
    // Protocol-side hardening: reason-labelled `core.rejected{reason}`
    // rejections of forged / tampered / stale inputs. All zero in honest
    // runs except stale_round (benign duplicate deliveries) and
    // unknown_block (witness uploads racing a rejoin requeue).
    obs::Counter* rejected_bad_witness_sig = nullptr;
    obs::Counter* rejected_unknown_witness = nullptr;
    obs::Counter* rejected_unknown_block = nullptr;
    obs::Counter* rejected_bad_exec_sig = nullptr;
    obs::Counter* rejected_unknown_signer = nullptr;
    obs::Counter* rejected_s_hash_mismatch = nullptr;
    obs::Counter* rejected_bad_state_proof = nullptr;
    obs::Counter* rejected_stale_round = nullptr;
    obs::Counter* rejected_bad_shard = nullptr;
    obs::Counter* rejected_unlocked_update = nullptr;
    // Storage-link failover (stateless-node health model).
    obs::Counter* failover_timeouts = nullptr;
    obs::Counter* failover_retransmits = nullptr;
    obs::Counter* failover_rotations = nullptr;
    obs::Counter* failover_resyncs = nullptr;
    obs::Counter* failover_readoptions = nullptr;
    obs::Counter* failover_requeued_txs = nullptr;
    obs::Counter* storage_rejoins = nullptr;
    /// Completed committee reconfigurations (`core.epochs`); 0 when
    /// epoch_length is 0.
    obs::Counter* epochs = nullptr;
    // Compute-pool fan-out (index counts: deterministic for any thread
    // count). Wall-clock time lives in volatile gauges, off the exports.
    obs::Counter* runtime_exec_tasks = nullptr;
    obs::Counter* runtime_accounts_tasks = nullptr;
    obs::Counter* runtime_verify_tasks = nullptr;
    // Volatile (never exported), one per phase.
    obs::Gauge* runtime_exec_wall_us = nullptr;
    obs::Gauge* runtime_accounts_wall_us = nullptr;
    obs::Gauge* runtime_verify_wall_us = nullptr;
    obs::Histogram* block_latency = nullptr;
    obs::Histogram* commit_latency = nullptr;
    obs::Histogram* user_latency = nullptr;
    obs::Histogram* phase_witness = nullptr;
    obs::Histogram* phase_ordering = nullptr;
    obs::Histogram* phase_execution = nullptr;
    obs::Histogram* phase_commit = nullptr;
    consensus::BaStar::Instruments consensus;
  };

  // --- Critical-path analysis --------------------------------------------
  // The bandwidth-ledger side of the analyzer: StartRound snapshots every
  // node's cumulative net::LinkActivity; OnBlockCommitted differences the
  // snapshots into per-role LinkWindows (keeping the busiest node per role
  // and direction — the critical path runs through the worst link), feeds
  // CommitRound, and publishes the per-link utilization as windowed
  // net.link_utilization_pm gauges plus Perfetto counter-track samples.
  std::vector<obs::LinkWindow> LinkWindowsSince(
      const std::vector<net::LinkActivity>& baseline) const;
  obs::Gauge* UtilGauge(const std::string& link);

  // --- Round driving -----------------------------------------------------
  void StartRound(uint64_t round);
  /// Epoch boundary (round % epoch_length == 0, round > 0): re-runs VRF
  /// sortition over the committed tip to re-draw the OC and its leader,
  /// re-deals adversary placement for the new membership (leader exempt,
  /// same α budget), migrates the outgoing leader's coordinator state and
  /// witnessed-bundle pools to the incoming leader, rebuilds the canonical
  /// oc_keys_/oc_net_ids_ vote-cert ordering, relabels node roles for link
  /// attribution, and has every new member re-announce kOrdering to the
  /// storage layer. Pure function of (chain tip, node keys, adversary
  /// spec): draws nothing from rng_, so exports stay byte-identical across
  /// thread counts. Called by StartRound before work distribution.
  void ReconfigureEpoch(uint64_t round);
  void MaybeScheduleNextRound();
  void OnBlockCommitted(const tx::ProposalBlock& block, net::SimTime when);
  void AdvanceExecState(uint64_t exec_round);
  ExecutionInput BuildExecutionInput(const tx::ProposalBlock& based_on,
                                     uint32_t shard) const;
  void AccountCommittedBatch(const tx::ProposalBlock& committed);

  tx::ProposalBlock genesis_;
  std::vector<tx::ProposalBlock> chain_;
  std::map<uint64_t, net::SimTime> round_start_times_;
  std::map<uint64_t, net::SimTime> commit_times_;
  uint64_t committed_rounds_ = 0;
  int target_rounds_ = 0;
  bool started_ = false;
  bool round_scheduled_ = false;

  SystemOptions options_;
  Rng rng_;
  // Declared before the network and actors: they cache pointers into the
  // registry and must be destroyed first.
  obs::MetricsRegistry metrics_registry_;
  Instruments obs_;
  // Tracer is declared with the registry (before the network and actors,
  // which cache the pointer) and clocked off events_ — both outlive nothing
  // that records into them.
  obs::Tracer tracer_;
  // Declared after the registry and tracer (it caches counter pointers
  // and the tracer) and before the actors that consult it.
  std::unique_ptr<AdversaryController> adversary_;
  // Registered stateless identities: witness proofs and exec results
  // from keys outside this set are rejected before signature checks.
  std::set<crypto::PublicKey> stateless_keys_;
  std::vector<consensus::EquivocationEvidence> equivocation_evidence_;
  std::unordered_map<std::string, TxTraceState> traced_txs_;  // By tx id.
  // Listing round -> traced tx ids listed there (drives sse/commit spans).
  std::map<uint64_t, std::vector<std::string>> traced_by_listing_;
  std::map<uint64_t, uint64_t> round_spans_;    // Open "round" lane spans.
  std::map<uint64_t, uint64_t> witness_spans_;  // Open witness-phase spans.
  std::map<uint64_t, uint64_t> exec_spans_;     // Open execution-phase spans.
  std::set<uint64_t> witness_recorded_;  // Batch rounds with a Tw sample.
  std::map<uint64_t, net::SimTime> decision_times_;
  std::map<uint64_t, obs::PhaseTimer> exec_timers_;
  obs::CriticalPathAnalyzer critical_path_;
  // Ledger snapshots at round start (differenced at commit), by round.
  std::map<uint64_t, std::vector<net::LinkActivity>> window_baseline_;
  std::map<std::string, obs::Gauge*> util_gauges_;  // By link name.
  net::EventQueue events_;
  std::unique_ptr<net::SimNetwork> network_;
  // Owns the active FaultPlan's hook into network_; declared after it so
  // the injector (which clears the hook in its dtor) is destroyed first.
  std::unique_ptr<net::FaultInjector> fault_injector_;
  // Declared before the provider and actors, which hold pointers into it
  // (batch verification, storage-engine maintenance) — destroyed after them.
  std::unique_ptr<runtime::TaskPool> pool_;
  std::unique_ptr<crypto::CryptoProvider> provider_;
  std::vector<std::unique_ptr<StorageNodeActor>> storage_nodes_;
  std::vector<std::unique_ptr<StatelessNodeActor>> stateless_nodes_;
  net::NodeId leader_net_id_ = net::kInvalidNode;
  std::vector<crypto::PublicKey> oc_keys_;
  std::vector<net::NodeId> oc_net_ids_;
  // Tree mode: nodes currently labeled "relay" for critical-path / link
  // attribution (base witness-relay election for the round; observability
  // only — senders re-run the election with strike/crash skips).
  std::vector<net::NodeId> labeled_relays_;
  uint64_t next_account_hint_ = 1;

 public:
  /// True when the run disseminates via aggregation relay trees.
  bool tree_mode() const { return options_.dissemination.tree(); }
  const net::DisseminationSpec& dissemination() const {
    return options_.dissemination;
  }
};

}  // namespace porygon::core

#endif  // PORYGON_CORE_SYSTEM_H_
