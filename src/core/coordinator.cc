#include "core/coordinator.h"

#include <unordered_set>

namespace porygon::core {

using state::AccountId;
using state::ShardOfAccount;
using tx::StateUpdate;
using tx::Transaction;

CrossShardCoordinator::CrossShardCoordinator(int shard_bits, int retry_rounds)
    : shard_bits_(shard_bits), retry_rounds_(retry_rounds) {}

CrossShardCoordinator::FilterResult CrossShardCoordinator::FilterAndLock(
    uint64_t round, const std::vector<Transaction>& txs) {
  FilterResult result;
  // Accounts claimed by cross-shard transactions accepted this round.
  // Cross-shard transactions get priority (they span shards, so the OC is
  // the only place their conflicts can be seen); intra-shard transactions
  // are then admitted unless they touch a locked or claimed account.
  // Intra-vs-intra conflicts are NOT filtered: "conflicts within the same
  // shard and in the same round ... can be handled by each ESC
  // independently" (§IV-D2). Without the cross-first pass, an intra
  // transaction could modify an account that a concurrent cross-shard
  // transaction pre-executed against, and the later Multi-Shard Update
  // would clobber the intra effect (a lost update).
  std::unordered_set<AccountId> round_claims;

  auto is_blocked = [&](const Transaction& t) {
    for (AccountId a : t.AccessedAccounts()) {
      if (locks_.count(a) > 0 || round_claims.count(a) > 0) return true;
    }
    return false;
  };

  for (const Transaction& t : txs) {
    if (!t.IsCrossShard(shard_bits_)) continue;
    if (is_blocked(t)) {
      result.discarded.push_back(t.Id());
      continue;
    }
    for (AccountId a : t.AccessedAccounts()) round_claims.insert(a);
    result.accepted_cross.push_back(t);
  }
  for (const Transaction& t : txs) {
    if (t.IsCrossShard(shard_bits_)) continue;
    if (is_blocked(t)) {
      result.discarded.push_back(t.Id());
      continue;
    }
    result.accepted_intra.push_back(t);
  }

  // Lock the accounts of accepted cross-shard transactions until their
  // Multi-Shard Update commits.
  if (!result.accepted_cross.empty()) {
    InFlightBatch batch;
    batch.round = round;
    batch.updates.assign(shard_count(), {});
    batch.shard_done.assign(shard_count(), false);
    for (const Transaction& t : result.accepted_cross) {
      for (AccountId a : t.AccessedAccounts()) {
        if (locks_.emplace(a, round).second) {
          batch.locked_accounts.push_back(a);
        }
      }
    }
    if (tracing()) {
      batch.sse_span = tracer_->BeginSpan(tracer_->RoundContext(round),
                                          "sse", trace_node_);
    }
    in_flight_[round] = std::move(batch);
  }
  return result;
}

std::vector<std::vector<StateUpdate>> CrossShardCoordinator::BuildUpdateList(
    uint64_t round, const std::vector<std::vector<StateUpdate>>& s_sets,
    const std::vector<StateUpdate>& old_values) {
  std::vector<std::vector<StateUpdate>> per_shard(shard_count());
  auto it = in_flight_.find(round);
  // An S set may only touch accounts this batch locked at ordering time
  // (honest cross-shard pre-execution writes exactly the accepted
  // transactions' accounts). Anything else — including every update when
  // no batch was locked at all — is a forged or replayed write aimed at
  // the Multi-Shard Update path; drop it before it can reach a proposal.
  // Defense in depth behind the exec-result vote threshold.
  std::unordered_set<AccountId> locked;
  if (it != in_flight_.end()) {
    locked.insert(it->second.locked_accounts.begin(),
                  it->second.locked_accounts.end());
  }
  for (const auto& shard_set : s_sets) {
    for (const StateUpdate& u : shard_set) {
      if (locked.count(u.account) == 0) {
        if (rejected_unlocked_ != nullptr) rejected_unlocked_->Increment();
        continue;
      }
      per_shard[ShardOfAccount(u.account, shard_bits_)].push_back(u);
    }
  }
  if (it != in_flight_.end()) {
    it->second.updates = per_shard;
    it->second.old_values = old_values;
    // Shards with no updates to apply are trivially done.
    for (int d = 0; d < shard_count(); ++d) {
      if (per_shard[d].empty()) it->second.shard_done[d] = true;
    }
    // Optimistic unlock: once U is built into a proposal block, every ESC
    // applies U *before* executing newly ordered transactions (see
    // ShardExecutor::Execute step 1), so later transactions observe the
    // cross-shard results and no longer conflict. Holding locks through
    // the Multi-Shard Update would roughly double the lock window and,
    // with it, the conflict-discard rate — Table I's mild degradation
    // requires the short window. Failed shards still retry/roll back via
    // the pending-update bookkeeping below.
    ReleaseLocks(it->second);
    it->second.locked_accounts.clear();
    if (tracing()) {
      tracer_->EndSpan(it->second.sse_span);
      it->second.sse_span = 0;
      it->second.msu_span = tracer_->BeginSpan(
          tracer_->RoundContext(round), "msu", trace_node_);
    }
  }
  return per_shard;
}

CrossShardCoordinator::UpdateOutcome
CrossShardCoordinator::OnShardUpdateResult(uint64_t round, uint32_t shard,
                                           bool success) {
  UpdateOutcome outcome;
  auto it = in_flight_.find(round);
  if (it == in_flight_.end()) return outcome;  // Unknown/already resolved.
  InFlightBatch& batch = it->second;

  if (success) {
    batch.shard_done[shard] = true;
    bool all_done = true;
    for (bool done : batch.shard_done) all_done &= done;
    if (all_done) {
      ReleaseLocks(batch);
      if (tracer_ != nullptr) tracer_->EndSpan(batch.msu_span);
      in_flight_.erase(it);
      outcome.resolved = true;
    }
    return outcome;
  }

  // Failure: retry in following rounds; roll back after the budget.
  ++batch.failed_rounds;
  if (batch.failed_rounds <= retry_rounds_) return outcome;

  outcome.resolved = true;
  outcome.rolled_back = true;
  outcome.compensation.assign(shard_count(), {});
  for (const StateUpdate& old : batch.old_values) {
    outcome.compensation[ShardOfAccount(old.account, shard_bits_)].push_back(
        old);
  }
  ReleaseLocks(batch);
  if (tracing()) {
    tracer_->Instant(tracer_->RoundContext(batch.round), "msu_rollback",
                     trace_node_);
    tracer_->EndSpan(batch.msu_span);
  }
  in_flight_.erase(it);
  return outcome;
}

std::vector<StateUpdate> CrossShardCoordinator::PendingUpdatesFor(
    uint32_t shard, uint64_t current_round) const {
  std::vector<StateUpdate> pending;
  for (const auto& [round, batch] : in_flight_) {
    if (batch.updates.empty()) continue;  // S sets not yet received.
    // The first application is in U_{round+2}; its feedback arrives while
    // building B_{round+4}. Re-send only once that opportunity has passed.
    if (current_round < round + 4) continue;
    if (!batch.shard_done[shard]) {
      pending.insert(pending.end(), batch.updates[shard].begin(),
                     batch.updates[shard].end());
    }
  }
  return pending;
}

void CrossShardCoordinator::ReleaseLocks(const InFlightBatch& batch) {
  for (AccountId a : batch.locked_accounts) locks_.erase(a);
}

}  // namespace porygon::core
