#include <algorithm>
#include <unordered_set>

#include "common/codec.h"
#include "common/erasure.h"
#include "common/log.h"
#include "core/system.h"
#include "crypto/sha256.h"

namespace porygon::core {

namespace {
std::string IdKey(const crypto::Hash256& h) {
  return std::string(reinterpret_cast<const char*>(h.data()), h.size());
}

Bytes WitnessSigningBytes(const tx::TransactionBlockHeader& header) {
  Bytes out = ToBytes("porygon.witness");
  Bytes enc = header.Encode();
  out.insert(out.end(), enc.begin(), enc.end());
  return out;
}
}  // namespace

StorageNodeActor::StorageNodeActor(PorygonSystem* system, int index,
                                   net::NodeId net_id, AdvStrategy strategy)
    : system_(system),
      index_(index),
      net_id_(net_id),
      strategy_(strategy),
      pool_(system->params().shard_bits),
      env_(new storage::MemEnv()) {
  storage::DbOptions db_options;
  db_options.metrics = system->metrics_registry();
  db_options.metrics_node = std::to_string(index);
  db_options.pool = system->task_pool();
  auto db = storage::Db::Open(env_.get(), "db", db_options);
  db_ = std::move(db).value();
}

uint64_t StorageNodeActor::db_bytes() const { return env_->TotalBytes(); }

void StorageNodeActor::HandleMessage(const net::Message& msg) {
  switch (msg.kind) {
    case kMsgSubmitTx:
      OnSubmitTx(msg);
      break;
    case kMsgWitnessUpload:
      OnWitnessUpload(msg, /*from_gossip=*/false);
      break;
    case kMsgRelay:
      OnRelay(msg);
      break;
    case kMsgStateRequest:
      OnStateRequest(msg);
      break;
    case kMsgResync:
      OnResync(msg);
      break;
    case kMsgCommit:
      OnCommit(msg, /*from_gossip=*/false);
      break;
    case kMsgRoleAnnounce:
      OnRoleAnnounce(msg, /*from_gossip=*/false);
      break;
    case kMsgGossip:
      OnGossip(msg);
      break;
    default:
      break;
  }
}

void StorageNodeActor::OnSubmitTx(const net::Message& msg) {
  auto t = tx::Transaction::Decode(msg.payload);
  if (!t.ok()) return;
  pool_.Add(*t);
}

void StorageNodeActor::OnRoundStart(uint64_t round) {
  const Params& p = system_->params();
  net::SimNetwork* net = system_->network();

  // 1. Tell our primary stateless nodes the round has started, attaching
  // the committed proposal block B_{r-1}.
  const tx::ProposalBlock& prev = system_->chain().back();
  Bytes prev_enc = prev.Encode();
  const bool tracing = system_->tracer()->enabled();
  for (const auto& node : system_->stateless_nodes_) {
    if (node->primary_storage() != net_id_) continue;
    net::Message m;
    m.from = net_id_;
    m.to = node->net_id();
    m.kind = kMsgNewRound;
    if (tracing) m.trace = system_->tracer()->RoundContext(round);
    m.payload = prev_enc;
    // OC members track the full proposal block; everyone else only needs
    // the compact header (hash, round, thresholds) to run sortition —
    // execution inputs arrive separately as per-shard ExecRequests ("both
    // the list and the state tree are not completely sent to each shard",
    // §IV-D2). The payload stays complete for implementation convenience;
    // the bandwidth model charges what the node actually downloads. Tree
    // mode charges the compact header for OC members too: they already
    // hold the decided block from consensus, so the round-start push only
    // needs the digest confirming which tip the storage node committed.
    m.wire_size = node->in_oc() && !system_->tree_mode() ? prev_enc.size()
                                                         : 256;
    net->Send(std::move(m));
  }

  // 2. After a short grace period (role announcements propagate), package
  // and distribute transaction blocks and push bundles / exec requests.
  system_->events()->ScheduleAfter(net::FromMillis(200), [this, round] {
    DistributeRoundWork(round);
  });
}

void StorageNodeActor::GossipToPeers(uint16_t inner_kind, const Bytes& payload,
                                     size_t wire_size) {
  net::SimNetwork* net = system_->network();
  Encoder enc;
  enc.PutU16(inner_kind);
  enc.PutBytes(payload);
  Bytes wrapped = enc.TakeBuffer();
  for (const auto& peer : system_->storage_nodes_) {
    if (peer->net_id() == net_id_) continue;
    net::Message m;
    m.from = net_id_;
    m.to = peer->net_id();
    m.kind = kMsgGossip;
    m.payload = wrapped;
    m.wire_size = wire_size + 8;
    net->Send(std::move(m));
  }
}

void StorageNodeActor::OnGossip(const net::Message& msg) {
  Decoder dec(msg.payload);
  auto kind = dec.GetU16();
  auto inner = dec.GetBytes();
  if (!kind.ok() || !inner.ok()) return;

  net::Message unwrapped;
  unwrapped.from = msg.from;
  unwrapped.to = msg.to;
  unwrapped.kind = *kind;
  unwrapped.payload = std::move(*inner);
  unwrapped.wire_size = msg.wire_size;
  switch (*kind) {
    case kMsgWitnessUpload:
      OnWitnessUpload(unwrapped, /*from_gossip=*/true);
      break;
    case kMsgCommit:
      OnCommit(unwrapped, /*from_gossip=*/true);
      break;
    case kMsgRoleAnnounce:
      OnRoleAnnounce(unwrapped, /*from_gossip=*/true);
      break;
    default:
      break;
  }
}

void StorageNodeActor::OnRoleAnnounce(const net::Message& msg,
                                      bool from_gossip) {
  auto a = RoleAnnounce::Decode(msg.payload);
  if (!a.ok()) return;
  // Verify the sortition proof before accepting the claimed role.
  Assignment claimed;
  claimed.role = static_cast<Role>(a->role);
  claimed.shard = a->shard;
  claimed.sortition = a->sortition;
  claimed.proof = a->proof;
  // Per-round EC announces draw against the execution thresholds;
  // epoch-boundary OC announces (ReconfigureEpoch) against the ordering
  // thresholds with no shard bits.
  const bool ordering = static_cast<Role>(a->role) == Role::kOrdering;
  if (!Sortition::Verify(system_->provider(), a->node_key, a->round,
                         system_->chain().back().Hash(),
                         ordering ? 1.0 : 0.0, ordering ? 0.0 : 1.0,
                         ordering ? 0 : system_->params().shard_bits,
                         claimed)) {
    // Announcements referencing an older tip can fail the hash check during
    // handoff; tolerate only exact-match proofs.
    return;
  }
  system_->RegisterAnnounce(*a);
  // If this node's shard blocks were already distributed this round, the
  // announcement simply arrived after the grace period (large proposal
  // blocks delay NewRound); ship the blocks to it directly.
  if (static_cast<Role>(a->role) == Role::kExecution &&
      a->round == last_distributed_round_ && !withholds_bodies()) {
    auto it = offered_blocks_.find(a->shard);
    if (it != offered_blocks_.end()) {
      for (const auto& block_id : it->second) {
        auto stored = system_->block_store_.find(block_id);
        if (stored == system_->block_store_.end()) continue;
        tx::TransactionBlock outgoing;
        outgoing.header = stored->second.block.header;
        outgoing.transactions = stored->second.block.transactions;
        net::Message m;
        m.from = net_id_;
        m.to = a->node_id;
        m.kind = kMsgTxBlock;
        if (system_->tracer()->enabled()) {
          m.trace = system_->tracer()->RoundContext(a->round);
        }
        m.payload = outgoing.Encode();
        m.wire_size = outgoing.WireSize();
        system_->network()->Send(std::move(m));
      }
    }
  }
  if (!from_gossip && !suppresses_gossip()) {
    std::string key = "ra" + std::to_string(a->round) +
                      std::string(reinterpret_cast<const char*>(
                                      a->node_key.data()),
                                  32);
    if (gossip_seen_.insert(key).second) {
      GossipToPeers(kMsgRoleAnnounce, msg.payload, msg.payload.size());
    } else {
      system_->obs_.gossip_dedup_hits->Increment();
    }
  }
}

void StorageNodeActor::DistributeRoundWork(uint64_t round) {
  // The grace-period event may outlive a crash that happened meanwhile; a
  // down node distributes nothing (it rejoins through OnRejoin).
  if (system_->network()->IsCrashed(net_id_)) return;
  const Params& p = system_->params();
  const SystemOptions& opt = system_->options();
  net::SimNetwork* net = system_->network();
  const auto* reg = system_->RegistryFor(round);
  obs::Tracer* tracer = system_->tracer();
  const bool tracing = tracer->enabled();

  // --- Package new transaction blocks for batch `round` ------------------
  size_t quota = opt.blocks_per_shard_round / system_->num_storage_nodes();
  if (static_cast<size_t>(index_) <
      opt.blocks_per_shard_round % system_->num_storage_nodes()) {
    ++quota;
  }
  // Every storage node drains its own mempool: nobody else can package the
  // transactions submitted to it.
  if (quota == 0) quota = 1;
  std::vector<tx::TransactionBlock> fresh;
  for (int shard = 0; shard < p.shard_count(); ++shard) {
    for (size_t b = 0; b < quota; ++b) {
      if (pool_.PendingInShard(shard) == 0) break;
      tx::TransactionBlock block = pool_.PackBlock(
          shard, p.block_tx_limit, static_cast<uint32_t>(index_), round);
      if (block.transactions.empty()) break;
      system_->block_store_[IdKey(block.header.Id())] =
          PorygonSystem::StoredBlock{block, round};
      unlisted_blocks_[IdKey(block.header.Id())] = round;
      if (tracing) {
        // Sampled transactions close their "submit" (mempool wait) span.
        for (const auto& t : block.transactions) {
          system_->TraceTxPackaged(t, TraceName());
        }
      }
      fresh.push_back(std::move(block));
    }
  }

  // --- Send blocks to this round's EC members (witness phase). Blocks that
  // missed Tw in their own round are re-offered to the next round's EC —
  // the Cross-Batch Witness path (§IV-C2).
  std::vector<const tx::TransactionBlock*> to_offer;
  for (const auto& b : fresh) {
    to_offer.push_back(
        &system_->block_store_[IdKey(b.header.Id())].block);
  }
  for (auto& [key, stored] : system_->block_store_) {
    if (stored.batch_round + 1 == round &&
        stored.block.header.creator_storage_node ==
            static_cast<uint32_t>(index_) &&
        witness_state_.find(key) != witness_state_.end() &&
        witness_state_[key].proofs.size() <
            static_cast<size_t>(p.witness_threshold)) {
      stored.batch_round = round;  // Rolls into the next batch.
      to_offer.push_back(&stored.block);
    }
  }
  last_distributed_round_ = round;
  offered_blocks_.clear();
  for (const tx::TransactionBlock* block : to_offer) {
    offered_blocks_[block->header.shard].push_back(
        IdKey(block->header.Id()));
  }
  if (reg != nullptr) {
    const net::DisseminationSpec& diss = system_->dissemination();
    for (const tx::TransactionBlock* block : to_offer) {
      uint32_t shard = block->header.shard;
      auto it = reg->ec_by_shard.find(shard);
      if (it == reg->ec_by_shard.end()) continue;
      const std::vector<net::NodeId>& members = it->second;
      // Tree mode: erasure-code the body across the EC instead of shipping
      // |EC| full copies. One chunk per member (n = |EC|, any chunk_k
      // reconstruct); each member forwards its seed chunk to the next
      // chunk_k peers, so our uplink carries |EC|/k bodies instead of
      // |EC|. Small committees (no headroom over k) keep the direct ship.
      const size_t min_members = static_cast<size_t>(
          std::max(diss.chunk_n, diss.chunk_k + 2));
      if (diss.tree() && members.size() >= min_members &&
          members.size() <= erasure::kMaxChunks) {
        const int k = diss.chunk_k;
        const int n = static_cast<int>(members.size());
        std::vector<Bytes> chunks;
        if (withholds_bodies()) {
          // Header-only chunks: receivers can never gather k payloads, the
          // exact tree-mode analogue of the bodyless direct ship.
          system_->adversary()->NoteAction(strategy_, "withhold_body",
                                           TraceName(), /*trace=*/false);
        } else {
          auto encoded = erasure::Encode(block->Encode(), k, n);
          if (encoded.ok()) chunks = std::move(*encoded);
        }
        for (size_t j = 0; j < members.size(); ++j) {
          BodyChunk c;
          c.round = round;
          c.shard = shard;
          c.header = block->header;
          c.index = static_cast<uint16_t>(j);
          c.k = static_cast<uint16_t>(k);
          c.n = static_cast<uint16_t>(n);
          c.peers = members;
          if (!chunks.empty()) c.payload = chunks[j];
          net::Message m;
          m.from = net_id_;
          m.to = members[j];
          m.kind = kMsgBodyChunk;
          if (tracing) m.trace = tracer->RoundContext(round);
          m.wire_size = c.WireSize();
          m.payload = c.Encode();
          net->Send(std::move(m));
        }
        continue;
      }
      // A withholding storage node ships headers with no bodies: members
      // cannot witness what they cannot download (Challenge 2).
      tx::TransactionBlock outgoing;
      outgoing.header = block->header;
      if (withholds_bodies()) {
        system_->adversary()->NoteAction(strategy_, "withhold_body",
                                         TraceName(), /*trace=*/false);
      } else {
        outgoing.transactions = block->transactions;
      }
      Bytes enc = outgoing.Encode();
      for (net::NodeId member : members) {
        net::Message m;
        m.from = net_id_;
        m.to = member;
        m.kind = kMsgTxBlock;
        if (tracing) m.trace = tracer->RoundContext(round);
        m.payload = enc;
        m.wire_size = outgoing.WireSize();
        net->Send(std::move(m));
      }
    }
  }

  // --- Push the witnessed bundle of batch round-1 to OC members we serve.
  if (round >= 1) {
    WitnessBundle bundle;
    bundle.batch_round = round - 1;
    auto wit = witnessed_by_batch_.find(round - 1);
    if (wit != witnessed_by_batch_.end()) {
      for (const auto& id : wit->second) {
        auto stored = system_->block_store_.find(IdKey(id));
        auto wstate = witness_state_.find(IdKey(id));
        if (stored == system_->block_store_.end() ||
            wstate == witness_state_.end()) {
          continue;
        }
        WitnessedBlock wb;
        wb.header = stored->second.block.header;
        for (const auto& [pk, proof] : wstate->second.proofs) {
          wb.proofs.push_back(proof);
        }
        for (const auto& t : stored->second.block.transactions) {
          wb.accesses.push_back(TxAccess{t.Id(), t.from, t.to, t.amount,
                                         t.nonce, t.submitted_at});
        }
        bundle.blocks.push_back(std::move(wb));
      }
    }
    // Orphan recovery: our packaged blocks that reached Tw in an earlier
    // batch but never made a committed listing — their bundle window passed
    // while the OC members' primary was unreachable — ride the current
    // bundle (the OC merges by block id, so re-offers are idempotent). The
    // stored value is the batch of the last push; waiting two rounds before
    // re-pushing leaves a normal listing time to commit and prune.
    for (auto& [key, last_push] : unlisted_blocks_) {
      if (last_push + 2 > round) continue;
      auto stored = system_->block_store_.find(key);
      auto wstate = witness_state_.find(key);
      if (stored == system_->block_store_.end() ||
          wstate == witness_state_.end() ||
          wstate->second.proofs.size() <
              static_cast<size_t>(p.witness_threshold)) {
        continue;
      }
      WitnessedBlock wb;
      wb.header = stored->second.block.header;
      for (const auto& [pk, proof] : wstate->second.proofs) {
        wb.proofs.push_back(proof);
      }
      for (const auto& t : stored->second.block.transactions) {
        wb.accesses.push_back(TxAccess{t.Id(), t.from, t.to, t.amount,
                                       t.nonce, t.submitted_at});
      }
      bundle.blocks.push_back(std::move(wb));
      last_push = round - 1;  // Joins batch round-1's listing window.
    }
    // Tree mode: hand the bundle to per-shard aggregation relays instead
    // of pushing a full copy onto every served OC member's downlink. The
    // election is the same arithmetic every honest node runs
    // (Dissemination::AggregatorFor over the batch's EC), refined with a
    // skip-scan past crashed and struck relays; if any shard has no viable
    // relay left, the whole bundle degrades to the legacy direct push.
    bool tree_routed = false;
    if (system_->tree_mode() && !bundle.blocks.empty()) {
      const int strike_limit = system_->dissemination().relay_strikes;
      const auto* batch_reg = system_->RegistryFor(round - 1);
      auto elect = [&](const std::vector<net::NodeId>& members)
          -> net::NodeId {
        if (members.size() < 2) return net::kInvalidNode;
        int base = net::Dissemination::AggregatorIndex(members.size(),
                                                       round - 1, 0);
        if (base < 0) return net::kInvalidNode;
        for (size_t off = 0; off < members.size(); ++off) {
          net::NodeId cand =
              members[(static_cast<size_t>(base) + off) % members.size()];
          auto struck = relay_strikes_.find(cand);
          if (struck != relay_strikes_.end() &&
              struck->second >= strike_limit) {
            continue;
          }
          if (net->IsCrashed(cand)) continue;
          return cand;
        }
        return net::kInvalidNode;
      };
      if (batch_reg != nullptr) {
        std::map<uint32_t, std::vector<WitnessedBlock>> by_shard;
        for (const auto& wb : bundle.blocks) {
          by_shard[wb.header.shard].push_back(wb);
        }
        std::map<uint32_t, net::NodeId> relays;
        tree_routed = true;
        for (const auto& [shard, blocks] : by_shard) {
          auto mem = batch_reg->ec_by_shard.find(shard);
          net::NodeId relay = mem == batch_reg->ec_by_shard.end()
                                  ? net::kInvalidNode
                                  : elect(mem->second);
          if (relay == net::kInvalidNode) {
            tree_routed = false;
            break;
          }
          relays[shard] = relay;
        }
        if (tree_routed) {
          for (auto& [shard, blocks] : by_shard) {
            AggregatedWitness sub;
            sub.batch_round = round - 1;
            sub.shard = shard;
            sub.aggregator = net_id_;
            sub.blocks = std::move(blocks);
            RelayAudit audit;
            audit.listing_round = round;
            audit.relay = relays[shard];
            for (const auto& wb : sub.blocks) {
              audit.block_ids.push_back(IdKey(wb.header.Id()));
            }
            pending_relay_audit_.push_back(std::move(audit));
            net::Message m;
            m.from = net_id_;
            m.to = relays[shard];
            m.kind = kMsgAggWitness;
            if (tracing) m.trace = tracer->RoundContext(round - 1);
            m.wire_size = sub.WireSize();
            m.payload = sub.Encode();
            net->Send(std::move(m));
          }
        }
      }
    }
    if (!tree_routed) {
      Bytes enc = bundle.Encode();
      for (net::NodeId oc : system_->oc_net_ids_) {
        // Only the member's primary storage node ships the bundle.
        const auto* member = system_->StatelessByNetId(oc);
        if (member == nullptr || member->primary_storage() != net_id_) {
          continue;
        }
        net::Message m;
        m.from = net_id_;
        m.to = oc;
        m.kind = kMsgWitnessBundle;
        if (tracing) m.trace = tracer->RoundContext(round - 1);
        m.payload = enc;
        m.wire_size = bundle.WireSize();
        net->Send(std::move(m));
      }
    }
  }

  // --- Push execution requests derived from B_{r-1} to the ESCs formed at
  // round r-2 (they witnessed the bodies they are about to execute).
  if (round >= 2 && system_->chain().size() > round - 1) {
    const tx::ProposalBlock& basis = system_->chain()[round - 1];
    const auto* exec_reg = system_->RegistryFor(round - 2);
    bool exec_requests_sent = false;
    if (exec_reg != nullptr && !basis.shard_tx_blocks.empty()) {
      for (int shard = 0; shard < p.shard_count(); ++shard) {
        ExecRequest req;
        req.round = round - 1;
        req.shard = shard;
        if (shard < static_cast<int>(basis.shard_tx_blocks.size())) {
          req.block_ids = basis.shard_tx_blocks[shard];
        }
        if (shard < static_cast<int>(basis.shard_updates.size())) {
          req.updates = basis.shard_updates[shard];
        }
        req.discarded = basis.discarded;
        if (shard < static_cast<int>(basis.shard_roots.size())) {
          req.shard_root = basis.shard_roots[shard];
        }
        req.all_roots = basis.shard_roots;
        if (req.block_ids.empty() && req.updates.empty()) continue;
        auto it = exec_reg->ec_by_shard.find(shard);
        if (it == exec_reg->ec_by_shard.end()) continue;
        req.members = it->second;
        Bytes enc = req.Encode();
        for (net::NodeId member : it->second) {
          const auto* node = system_->StatelessByNetId(member);
          if (node == nullptr || node->primary_storage() != net_id_) continue;
          net::Message m;
          m.from = net_id_;
          m.to = member;
          m.kind = kMsgExecRequest;
          if (tracing) m.trace = tracer->RoundContext(req.round);
          m.payload = enc;
          m.wire_size = enc.size();
          net->Send(std::move(m));
          exec_requests_sent = true;
        }
      }
    }
    if (exec_requests_sent) system_->NoteExecPhaseStart(round - 1);
  }
}

void StorageNodeActor::OnWitnessUpload(const net::Message& msg,
                                       bool from_gossip) {
  auto up = WitnessUpload::Decode(msg.payload);
  if (!up.ok()) return;
  const std::string key = IdKey(up->proof.block_id);
  auto stored = system_->block_store_.find(key);
  if (stored == system_->block_store_.end()) {
    // No such block: a proof over a ghost id (or, benignly, an upload for a
    // block this node pruned/erased around a crash window).
    system_->obs_.rejected_unknown_block->Increment();
    return;
  }

  // Identity check: only registered stateless nodes can witness.
  if (system_->stateless_keys_.count(up->proof.witness) == 0) {
    system_->obs_.rejected_unknown_witness->Increment();
    return;
  }

  // Verify the witness signature over the block header.
  Bytes signing = WitnessSigningBytes(stored->second.block.header);
  if (!system_->provider()->Verify(up->proof.witness, signing,
                                   up->proof.signature)) {
    system_->obs_.rejected_bad_witness_sig->Increment();
    return;
  }

  WitnessState& w = witness_state_[key];
  bool inserted = w.proofs.emplace(up->proof.witness, up->proof).second;
  if (!inserted) return;

  if (w.proofs.size() ==
      static_cast<size_t>(system_->params().witness_threshold)) {
    // Eligible for ordering: joins the batch of the round it completed in.
    uint64_t batch = std::max(stored->second.batch_round, up->round);
    witnessed_by_batch_[batch].push_back(up->proof.block_id);
    system_->RecordWitnessReached(batch);
    if (system_->tracer()->enabled()) {
      system_->TraceBlockWitnessed(up->proof.block_id, TraceName());
    }
  }

  if (!from_gossip && !suppresses_gossip()) {
    std::string gossip_key =
        "wu" + key +
        std::string(reinterpret_cast<const char*>(up->proof.witness.data()),
                    32);
    if (gossip_seen_.insert(gossip_key).second) {
      GossipToPeers(kMsgWitnessUpload, msg.payload, msg.payload.size());
    } else {
      system_->obs_.gossip_dedup_hits->Increment();
    }
  }
}

void StorageNodeActor::OnRelay(const net::Message& msg) {
  auto relay = Relay::Decode(msg.payload);
  if (!relay.ok()) return;
  if (drops_relays()) {
    // Withholding and censoring storage both drop routed traffic; the
    // sender's failover layer retries through its other connections.
    system_->adversary()->NoteAction(strategy_, "censor_relay", TraceName(),
                                     /*trace=*/false);
    return;
  }
  net::SimNetwork* net = system_->network();

  auto forward = [&](net::NodeId dest) {
    net::Message m;
    m.from = net_id_;
    m.to = dest;
    m.kind = relay->inner_kind;
    m.trace = relay->trace;  // The sender's trace survives the storage hop.
    m.payload = relay->inner;
    m.wire_size = relay->inner.size();
    net->Send(std::move(m));
  };

  switch (relay->target) {
    case Relay::kToNode:
      if (relay->dest != net::kInvalidNode) forward(relay->dest);
      break;
    case Relay::kToOrderingCommittee: {
      // Tree mode: an in-committee sender does not need its own broadcast
      // echoed back as a full copy — suppress it and answer with a 40-byte
      // digest ack instead, which the failover layer accepts as the same
      // proof of delivery.
      const bool ack_sender =
          system_->tree_mode() &&
          std::find(system_->oc_net_ids_.begin(), system_->oc_net_ids_.end(),
                    msg.from) != system_->oc_net_ids_.end();
      for (net::NodeId oc : system_->oc_net_ids_) {
        if (ack_sender && oc == msg.from) continue;
        forward(oc);
      }
      if (ack_sender) {
        RelayAck ack;
        ack.round = relay->round;
        ack.digest = crypto::Sha256::Hash(msg.payload);
        net::Message m;
        m.from = net_id_;
        m.to = msg.from;
        m.kind = kMsgRelayAck;
        m.wire_size = 40;
        m.payload = ack.Encode();
        net->Send(std::move(m));
      }
      break;
    }
    case Relay::kToShardCommittee: {
      const auto* reg = system_->RegistryFor(relay->round);
      if (reg == nullptr) break;
      auto it = reg->ec_by_shard.find(relay->shard);
      if (it == reg->ec_by_shard.end()) break;
      for (net::NodeId member : it->second) forward(member);
      break;
    }
    default:
      break;
  }
}

void StorageNodeActor::OnStateRequest(const net::Message& msg) {
  auto req = StateRequest::Decode(msg.payload);
  if (!req.ok()) return;
  if (system_->tracer()->enabled() && msg.trace.active()) {
    system_->tracer()->Instant(msg.trace, "state_read", TraceName());
  }

  const SystemOptions& opt = system_->options();
  StateResponse resp;
  resp.round = req->round;
  resp.shard = req->shard;
  const state::ShardedState& st = system_->canonical_state();
  for (state::AccountId id : req->accounts) {
    StateResponse::Entry e;
    e.account = id;
    auto acc = st.GetAccount(id);
    e.present = acc.ok();
    if (acc.ok()) e.value = *acc;
    resp.entries.push_back(e);
    if (opt.faithful_execution) {
      state::MerkleProof proof = st.ProveAccount(id);
      resp.proof_bytes += proof.WireSize();
      resp.proofs.push_back(proof.Encode());
    } else {
      resp.proof_bytes += opt.state_proof_bytes_per_account;
    }
    if (tampers_state()) {
      // Doctor the entry *after* proving: the proof commits to the true
      // value, so the mismatch is exactly what the stateless node's
      // cross-check (VerifyStateResponse) catches. The perturbation is a
      // pure hash of (round, account) — deterministic and non-zero.
      StateResponse::Entry& doctored = resp.entries.back();
      doctored.value.balance +=
          1 + crypto::HashPrefixU64(system_->adversary()->ForgedValue(
                  "state", req->round, id)) %
                  997;
      doctored.present = true;
    }
  }
  if (tampers_state() && !req->accounts.empty()) {
    system_->adversary()->NoteAction(strategy_, "tamper_state", TraceName());
  }

  net::Message m;
  m.from = net_id_;
  m.to = msg.from;
  m.kind = kMsgStateResponse;
  m.payload = resp.Encode();
  m.wire_size = resp.WireSize();
  system_->network()->Send(std::move(m));
}

void StorageNodeActor::OnResync(const net::Message& msg) {
  auto req = ResyncRequest::Decode(msg.payload);
  if (!req.ok()) return;
  // Reply with our committed tip as a NewRound. The receiver's stale-round
  // check makes this idempotent; a node that fell behind catches up. Like
  // state serving, this answers even on malicious nodes (withholding the
  // tip would be instantly detectable; the modeled attacks are on bodies or
  // on freshness: a stale-replying node always answers with genesis, which
  // the receiver's stale-round check rejects and counts).
  if (stale_replies()) {
    system_->adversary()->NoteAction(strategy_, "stale_reply", TraceName());
  }
  const tx::ProposalBlock& tip =
      stale_replies() ? system_->chain().front() : system_->chain().back();
  Bytes enc = tip.Encode();
  net::Message m;
  m.from = net_id_;
  m.to = msg.from;
  m.kind = kMsgNewRound;
  const StatelessNodeActor* node = system_->StatelessByNetId(msg.from);
  m.wire_size = node != nullptr && node->in_oc() && !system_->tree_mode()
                    ? enc.size()
                    : 256;
  m.payload = std::move(enc);
  system_->network()->Send(std::move(m));
}

void StorageNodeActor::OnRejoin(uint64_t round) {
  PORYGON_LOG(kInfo) << "storage" << index_ << " rejoining at round "
                     << round;
  // Per-round offer bookkeeping is stale after the outage; rebuilt when the
  // next round distributes. Durable state (db_, pool, the shared block
  // store) survived the crash, so catching up is joining the current round.
  offered_blocks_.clear();
  last_distributed_round_ = 0;

  // We missed every commit during the outage, so first settle
  // unlisted_blocks_ against the chain, then re-queue the transactions of
  // blocks that genuinely never made a listing — their witness bundle died
  // with us. Re-queuing is replay-safe: anything that somehow committed
  // anyway fails the nonce check at execution.
  for (const auto& committed : system_->chain()) {
    for (const auto& shard_list : committed.shard_tx_blocks) {
      for (const auto& id : shard_list) unlisted_blocks_.erase(IdKey(id));
    }
  }
  for (auto it = unlisted_blocks_.begin(); it != unlisted_blocks_.end();) {
    auto stored = system_->block_store_.find(it->first);
    // Blocks pruned from the store are past the pipeline's lookback and
    // unrecoverable; blocks of the still-in-flight batch may yet be listed.
    if (stored == system_->block_store_.end()) {
      it = unlisted_blocks_.erase(it);
      continue;
    }
    if (stored->second.batch_round + 1 >= round) {
      ++it;
      continue;
    }
    // Blocks that already reached Tw stay put: the bundle push re-offers
    // them to the OC directly (see DistributeRoundWork). Re-queuing those
    // too would list the same transactions under two block ids.
    auto wstate = witness_state_.find(it->first);
    if (wstate != witness_state_.end() &&
        wstate->second.proofs.size() >=
            static_cast<size_t>(system_->params().witness_threshold)) {
      ++it;
      continue;
    }
    uint64_t requeued = 0;
    for (const auto& t : stored->second.block.transactions) {
      if (pool_.Add(t)) ++requeued;
    }
    if (requeued > 0) system_->obs_.failover_requeued_txs->Add(requeued);
    system_->block_store_.erase(stored);
    it = unlisted_blocks_.erase(it);
  }

  if (round > 0 && round == system_->chain().back().round + 1) {
    OnRoundStart(round);
  }
}

void StorageNodeActor::OnCommit(const net::Message& msg, bool from_gossip) {
  auto block = tx::ProposalBlock::Decode(msg.payload);
  if (!block.ok()) return;
  std::string key = "cm" + std::to_string(block->round);
  if (!gossip_seen_.insert(key).second) {
    system_->obs_.gossip_dedup_hits->Increment();
    return;
  }

  // Persist the proposal block (storage nodes keep the chain).
  (void)db_->Put(ToBytes("block/" + std::to_string(block->round)),
                 msg.payload);
  if (system_->tracer()->enabled()) {
    system_->tracer()->Instant(system_->tracer()->RoundContext(block->round),
                               "apply_block", TraceName());
  }

  // Our packaged blocks that made this listing are no longer orphan
  // candidates.
  for (const auto& shard_list : block->shard_tx_blocks) {
    for (const auto& id : shard_list) unlisted_blocks_.erase(IdKey(id));
  }

  // Tree mode: settle witness-relay audits against this listing. A relay
  // whose aggregate dropped any of the blocks we offered it collects a
  // strike (enough strikes and the election skips it); a clean listing
  // resets. Audits whose window passed during an outage are dropped
  // unjudged — we cannot tell a withholding relay from our own absence.
  if (system_->tree_mode() && !pending_relay_audit_.empty()) {
    std::unordered_set<std::string> listed;
    for (const auto& shard_list : block->shard_tx_blocks) {
      for (const auto& id : shard_list) listed.insert(IdKey(id));
    }
    for (auto it = pending_relay_audit_.begin();
         it != pending_relay_audit_.end();) {
      if (it->listing_round > block->round) {
        ++it;
        continue;
      }
      if (it->listing_round == block->round) {
        bool all_listed = true;
        for (const auto& id : it->block_ids) {
          if (listed.count(id) == 0) {
            all_listed = false;
            break;
          }
        }
        if (all_listed) {
          relay_strikes_[it->relay] = 0;
        } else {
          ++relay_strikes_[it->relay];
        }
      }
      it = pending_relay_audit_.erase(it);
    }
  }

  system_->OnBlockCommitted(*block, system_->events()->now());

  if (!from_gossip && !suppresses_gossip()) {
    GossipToPeers(kMsgCommit, msg.payload, msg.payload.size());
  }
}

}  // namespace porygon::core
