#include "core/committee.h"

#include "common/codec.h"

namespace porygon::core {

Bytes Sortition::SeedFor(uint64_t round, const crypto::Hash256& prev_hash) {
  Encoder enc;
  enc.PutString("porygon.sortition");
  enc.PutU64(round);
  enc.PutFixed(ByteView(prev_hash.data(), prev_hash.size()));
  return enc.TakeBuffer();
}

namespace {
Assignment Derive(const crypto::VrfProof& proof, double ordering_threshold,
                  double execution_threshold, int shard_bits) {
  Assignment a;
  a.proof = proof;
  a.sortition = crypto::VrfOutputToUnit(proof.output);
  if (a.sortition < ordering_threshold) {
    a.role = Role::kOrdering;
  } else if (a.sortition < ordering_threshold + execution_threshold) {
    a.role = Role::kExecution;
    a.shard = crypto::VrfOutputLastBits(proof.output, shard_bits);
  } else {
    a.role = Role::kIdle;
  }
  return a;
}
}  // namespace

Assignment Sortition::Assign(crypto::CryptoProvider* provider,
                             const crypto::PrivateKey& key, uint64_t round,
                             const crypto::Hash256& prev_hash,
                             double ordering_threshold,
                             double execution_threshold, int shard_bits) {
  Bytes seed = SeedFor(round, prev_hash);
  crypto::VrfProof proof = provider->Prove(key, seed);
  return Derive(proof, ordering_threshold, execution_threshold, shard_bits);
}

bool Sortition::Verify(crypto::CryptoProvider* provider,
                       const crypto::PublicKey& pub, uint64_t round,
                       const crypto::Hash256& prev_hash,
                       double ordering_threshold, double execution_threshold,
                       int shard_bits, const Assignment& claimed) {
  Bytes seed = SeedFor(round, prev_hash);
  if (!provider->VerifyProof(pub, seed, claimed.proof)) return false;
  Assignment expected = Derive(claimed.proof, ordering_threshold,
                               execution_threshold, shard_bits);
  return expected.role == claimed.role && expected.shard == claimed.shard &&
         expected.sortition == claimed.sortition;
}

}  // namespace porygon::core
