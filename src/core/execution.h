#ifndef PORYGON_CORE_EXECUTION_H_
#define PORYGON_CORE_EXECUTION_H_

#include <cstdint>
#include <vector>

#include "crypto/sha256.h"
#include "state/sharded_state.h"
#include "state/view.h"
#include "tx/blocks.h"
#include "tx/transaction.h"

namespace porygon::core {

/// Why a transaction was abandoned rather than applied. Failed transactions
/// stay recorded in their block for integrity (§IV-C1(c)).
enum class TxFailure {
  kInsufficientBalance,
  kBadNonce,       ///< Replay or out-of-order nonce.
  kWrongShard,     ///< Sender does not belong to the executing shard.
};

struct FailedTx {
  tx::TxId id;
  TxFailure reason;
};

/// Inputs for one ESC's Execution Phase in one round (§IV-D2 step 3/5):
/// the shard's intra-shard sub-list, the cross-shard transactions it must
/// pre-execute (its accounts initiate them), and the update list U from the
/// OC for cross-shard commits.
struct ExecutionInput {
  uint32_t shard = 0;
  std::vector<tx::Transaction> intra_shard;
  std::vector<tx::Transaction> cross_shard;
  std::vector<tx::StateUpdate> updates;
};

/// Outputs returned to the OC: the new subtree root T', the updated
/// key-value pairs S from cross-shard pre-execution (not yet applied to any
/// subtree), and failure accounting.
struct ExecutionResult {
  crypto::Hash256 shard_root{};
  std::vector<tx::StateUpdate> cross_updates;
  uint32_t intra_applied = 0;
  uint32_t cross_pre_executed = 0;
  std::vector<FailedTx> failed;
};

/// Deterministic shard executor. Every honest ESC member runs this over the
/// same inputs and must produce bit-identical results (Lemma 3 relies on the
/// execution process being deterministic).
///
/// Transfer semantics: valid iff tx.nonce == sender.nonce and
/// sender.balance >= amount; apply debits sender, bumps its nonce, credits
/// receiver (creating it if absent).
class ShardExecutor {
 public:
  /// Executes in order: (1) OC update list U, (2) intra-shard transactions,
  /// (3) cross-shard pre-execution (reads state, emits S, mutates nothing).
  /// `state` is the executing members' materialized view (downloaded from
  /// storage nodes); only the `input.shard` subtree is mutated, except that
  /// cross-shard pre-execution may *read* foreign accounts.
  static ExecutionResult Execute(state::StateView* state,
                                 const ExecutionInput& input);

  /// Validity check without side effects.
  static bool IsValidTransfer(const state::Account& sender,
                              const tx::Transaction& t);
};

}  // namespace porygon::core

#endif  // PORYGON_CORE_EXECUTION_H_
