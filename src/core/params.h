#ifndef PORYGON_CORE_PARAMS_H_
#define PORYGON_CORE_PARAMS_H_

#include <cstddef>
#include <cstdint>

namespace porygon::core {

/// System-wide protocol parameters (paper §III, §VI "Implementation and
/// Setup"). Defaults reproduce the prototype configuration: 1 MB/s stateless
/// nodes, ~2,000-tx transaction blocks, Tw = 10 witness signatures.
struct Params {
  // --- Sharding ---------------------------------------------------------
  /// Accounts and ESCs shard by the last `shard_bits` bits; 2^shard_bits
  /// shards.
  int shard_bits = 1;

  // --- Committees -------------------------------------------------------
  /// Fraction of the stateless pool whose VRF values select them into the
  /// Ordering Committee each round (smallest values, §IV-B3).
  double ordering_fraction = 0.1;
  /// Fraction selected into the round's new Execution Committee.
  double execution_fraction = 0.6;
  /// Witness threshold Tw: proofs required before a transaction block is
  /// eligible for ordering (> upper bound of corrupted members; prototype
  /// uses 10).
  int witness_threshold = 10;
  /// Execution threshold Te: identical signed roots required per shard
  /// (> number of malicious members).
  int execution_threshold = 3;
  /// EC lifetime in rounds (witness, cross-batch witness, execute).
  int pipeline_depth = 3;

  // --- Blocks & transactions --------------------------------------------
  /// Max transactions per transaction block (prototype: ~2,000).
  size_t block_tx_limit = 2000;
  /// Rounds a cross-shard transaction may stay uncommitted before the OC
  /// triggers a rollback (§IV-D2: "e.g., two rounds").
  int cross_shard_retry_rounds = 2;

  // --- Network -----------------------------------------------------------
  /// Stateless-node bandwidth (bytes/s); paper: 1 MB/s.
  double stateless_bps = 1e6;
  /// Storage-node bandwidth (well-provisioned servers).
  double storage_bps = 100e6;
  /// Base one-way latency between storage and stateless nodes (µs);
  /// paper simulation: 0.5 ms.
  int64_t latency_us = 500;
  /// Uniform jitter added to latency (µs).
  int64_t latency_jitter_us = 100;
  /// Storage connections per stateless node (m = 20, §V).
  int storage_connections = 20;

  // --- Round pacing ------------------------------------------------------
  /// Committee (re)formation interval: the paper's simulation models this as
  /// "a fixed interval of 2 seconds plus random numerical values".
  int64_t reconfig_interval_us = 2'000'000;
  /// Per-phase budget within a round (prototype: phases average 1.7 s).
  int64_t phase_interval_us = 1'700'000;
  /// BA* retry backoff cap: retry r waits min(phase_interval_us << r, cap).
  int64_t consensus_backoff_cap_us = 6'800'000;

  // --- Storage-link failover (runtime health model, §IV-B Challenge 1) ----
  /// Per-request deadline on storage-bound traffic (relays, state
  /// requests): if the primary stays silent past it, the request is
  /// retransmitted and a strike is recorded. Sized above the worst healthy
  /// commit -> next-NewRound gap so quiet-but-live primaries don't strike.
  int64_t storage_timeout_us = 2'500'000;
  /// Retransmission backoff cap (deadline k waits
  /// min(storage_timeout_us << k, cap)).
  int64_t storage_backoff_cap_us = 10'000'000;
  /// Consecutive silent-primary strikes before rotating to the next
  /// connected storage node.
  int storage_failover_strikes = 3;
  /// Deadline firings per tracked request before it is abandoned (bounds
  /// the event chain so a dead system drains its queue).
  int storage_retry_limit = 5;
  /// Round watchdog: with no fresh NewRound for this long, rotate the
  /// primary and ask the new one for the chain tip (kMsgResync).
  int64_t storage_watchdog_us = 8'000'000;
  /// Watchdog rotations+resyncs allowed per silent stretch (refilled on
  /// every fresh NewRound; bounds the watchdog event chain).
  int storage_resync_budget = 3;
  /// Recovery probing: after rotating away from the preferred (original)
  /// primary, probe it at this interval and readopt it if it answers.
  int64_t storage_probe_us = 4'000'000;
  /// Probes per rotation before giving up on readoption.
  int storage_probe_limit = 4;

  // --- Adversary (§III-B) -------------------------------------------------
  /// Fraction of malicious stateless nodes (α = 1/4).
  double malicious_stateless_fraction = 0.0;
  /// Fraction of malicious storage nodes (β = 1/2 max).
  double malicious_storage_fraction = 0.0;

  int shard_count() const { return 1 << shard_bits; }
};

}  // namespace porygon::core

#endif  // PORYGON_CORE_PARAMS_H_
