#include <algorithm>
#include <cstring>

#include "common/codec.h"
#include "common/erasure.h"
#include "common/log.h"
#include "core/system.h"
#include "crypto/sha256.h"
#include "state/view.h"

namespace porygon::core {

namespace {
std::string IdKey(const crypto::Hash256& h) {
  return std::string(reinterpret_cast<const char*>(h.data()), h.size());
}

Bytes WitnessSigningBytes(const tx::TransactionBlockHeader& header) {
  Bytes out = ToBytes("porygon.witness");
  Bytes enc = header.Encode();
  out.insert(out.end(), enc.begin(), enc.end());
  return out;
}

tx::Transaction FromAccess(const TxAccess& a) {
  tx::Transaction t;
  t.from = a.from;
  t.to = a.to;
  t.amount = a.amount;
  t.nonce = a.nonce;
  t.submitted_at = a.submitted_at;
  return t;
}
}  // namespace

StatelessNodeActor::StatelessNodeActor(PorygonSystem* system, int index,
                                       net::NodeId net_id,
                                       crypto::KeyPair keys,
                                       std::vector<net::NodeId> storages,
                                       AdvStrategy strategy, bool in_oc)
    : system_(system),
      index_(index),
      net_id_(net_id),
      keys_(std::move(keys)),
      storages_(std::move(storages)),
      strategy_(strategy),
      ever_malicious_(strategy != AdvStrategy::kHonest),
      in_oc_(in_oc) {
  heard_at_.assign(storages_.size(), 0);
  // Arm the round watchdog from birth: a node whose very first NewRound is
  // lost would otherwise never learn a round started and stay dark forever
  // (the watchdog was only re-armed by OnNewRound). Budgeted, so the chain
  // still dies off in a genuinely stalled system and the queue can drain.
  resync_budget_ = system_->params().storage_resync_budget;
  watchdog_armed_ = true;
  system_->events()->ScheduleAfter(system_->params().storage_watchdog_us,
                                   [this] { OnWatchdog(); });
  if (in_oc_) {
    coordinator_ = std::make_unique<CrossShardCoordinator>(
        system_->params().shard_bits,
        system_->params().cross_shard_retry_rounds);
    coordinator_->EnableTracing(system_->tracer(), TraceName());
    coordinator_->set_rejected_counter(
        system_->obs_.rejected_unlocked_update);
  }
}

uint64_t StatelessNodeActor::StorageFootprintBytes() const {
  // Latest proposal block + committee public keys + transiently-held
  // witnessed blocks (pruned after their execution round).
  uint64_t bytes = last_block_.WireSize();
  bytes += system_->oc_keys_.size() * 32;
  bytes += 32 * system_->num_stateless_nodes();  // Identity registry.
  for (const auto& [key, held] : held_blocks_) {
    bytes += held.header.WireSize() +
             held.txs.size() * tx::Transaction::kWireSize;
  }
  return bytes;
}

void StatelessNodeActor::SendToPrimary(uint16_t kind, Bytes payload,
                                       size_t wire_size,
                                       obs::TraceContext trace) {
  if (storages_.empty()) return;
  const size_t wire = wire_size != 0 ? wire_size : payload.size();
  // Storage-bound protocol traffic rides the failover health model: a
  // deadline fires if the primary stays silent, eventually rotating it.
  if (kind == kMsgRelay || kind == kMsgStateRequest) {
    TrackRequest(kind, payload, wire, trace);
  }
  net::Message m;
  m.from = net_id_;
  m.to = storages_[primary_idx_];
  m.kind = kind;
  m.trace = trace;
  m.wire_size = wire;
  m.payload = std::move(payload);
  system_->network()->Send(std::move(m));
}

// --------------------------------------------------------------------------
// Storage-link failover
// --------------------------------------------------------------------------

void StatelessNodeActor::TrackRequest(uint16_t kind, const Bytes& payload,
                                      size_t wire_size,
                                      obs::TraceContext trace) {
  const uint64_t id = next_req_id_++;
  PendingReq req;
  req.kind = kind;
  req.payload = payload;
  req.wire_size = wire_size;
  req.trace = trace;
  req.round = current_round_;
  req.target_idx = primary_idx_;
  req.sent_at = system_->events()->now();
  if (kind == kMsgRelay) {
    // Remember what the primary must echo back (OC relays fan out to every
    // OC member, the sender included): the echo is the delivery ack.
    auto relay = Relay::Decode(payload);
    if (relay.ok() && relay->target == Relay::kToOrderingCommittee &&
        in_oc_) {
      req.echo_kind = relay->inner_kind;
      req.echo_payload = relay->inner;
    }
  }
  pending_reqs_[id] = std::move(req);
  system_->events()->ScheduleAfter(system_->params().storage_timeout_us,
                                   [this, id] { OnRequestDeadline(id); });
}

void StatelessNodeActor::OnRequestDeadline(uint64_t req_id) {
  auto it = pending_reqs_.find(req_id);
  if (it == pending_reqs_.end()) return;
  PendingReq& req = it->second;
  const Params& p = system_->params();
  // Relays are round-scoped: once the round moved on, the relay is moot.
  if (req.kind == kMsgRelay && req.round < current_round_) {
    pending_reqs_.erase(it);
    return;
  }
  ++req.attempts;
  if (req.attempts > p.storage_retry_limit) {
    pending_reqs_.erase(it);  // Abandon: bounds the event chain.
    return;
  }
  // Health signal: a primary that said nothing at all for a whole deadline
  // window is striking out (a live one keeps pushing round traffic).
  const net::SimTime now = system_->events()->now();
  const bool primary_silent =
      primary_idx_ < heard_at_.size() &&
      heard_at_[primary_idx_] + p.storage_timeout_us <= now;
  if (primary_silent) {
    system_->obs_.failover_timeouts->Increment();
    if (++primary_strikes_ >= p.storage_failover_strikes) RotatePrimary();
  }
  // Retransmit through the next connection with exponential backoff. The
  // request cycles through all m links, so a dead or censoring (alive but
  // relay-dropping) storage node is bypassed even when the two cannot be
  // told apart from here.
  system_->obs_.failover_retransmits->Increment();
  req.target_idx = (req.target_idx + 1) % storages_.size();
  req.sent_at = now;
  net::Message m;
  m.from = net_id_;
  m.to = storages_[req.target_idx];
  m.kind = req.kind;
  m.trace = req.trace;
  m.wire_size = req.wire_size;
  m.payload = req.payload;
  system_->network()->Send(std::move(m));
  const int shift = req.attempts > 6 ? 6 : req.attempts;
  const int64_t delay = std::min<int64_t>(p.storage_timeout_us << shift,
                                          p.storage_backoff_cap_us);
  system_->events()->ScheduleAfter(delay,
                                   [this, req_id] { OnRequestDeadline(req_id); });
}

void StatelessNodeActor::NoteEcho(const net::Message& msg) {
  for (auto it = pending_reqs_.begin(); it != pending_reqs_.end(); ++it) {
    const PendingReq& req = it->second;
    if (req.kind != kMsgRelay || req.echo_kind != msg.kind) continue;
    if (req.echo_payload == msg.payload) {
      pending_reqs_.erase(it);  // Delivered: our broadcast came back.
      return;
    }
  }
}

void StatelessNodeActor::RotatePrimary() {
  primary_strikes_ = 0;
  if (storages_.size() < 2) return;
  const bool leaving_preferred = primary_idx_ == preferred_idx_;
  if (leaving_preferred) ++preferred_failures_;
  primary_idx_ = (primary_idx_ + 1) % storages_.size();
  system_->obs_.failover_rotations->Increment();
  obs::Tracer* tracer = system_->tracer();
  if (tracer->enabled()) {
    tracer->Instant(tracer->FaultContext(), "primary_rotation", TraceName());
  }
  // Start probing the preferred primary for readoption — but only on its
  // first failure (likely a crash). A preferred that was readopted and
  // struck out again is live-but-useless; probing it would oscillate.
  if (primary_idx_ != preferred_idx_ && !probe_chain_active_ &&
      preferred_failures_ <= 1) {
    probe_chain_active_ = true;
    probes_left_ = system_->params().storage_probe_limit;
    system_->events()->ScheduleAfter(system_->params().storage_probe_us,
                                     [this] { SendProbe(); });
  }
}

void StatelessNodeActor::SendProbe() {
  if (primary_idx_ == preferred_idx_ || probes_left_ <= 0) {
    probe_chain_active_ = false;
    probe_inflight_ = false;
    return;
  }
  --probes_left_;
  probe_inflight_ = true;
  SendResync(storages_[preferred_idx_]);
  system_->events()->ScheduleAfter(system_->params().storage_probe_us,
                                   [this] { SendProbe(); });
}

void StatelessNodeActor::SendResync(net::NodeId target) {
  ResyncRequest req;
  req.round = current_round_;
  net::Message m;
  m.from = net_id_;
  m.to = target;
  m.kind = kMsgResync;
  m.payload = req.Encode();
  m.wire_size = m.payload.size();
  system_->network()->Send(std::move(m));
}

void StatelessNodeActor::NoteHeardFrom(net::NodeId from) {
  for (size_t i = 0; i < storages_.size(); ++i) {
    if (storages_[i] != from) continue;
    heard_at_[i] = system_->events()->now();
    if (i == primary_idx_) primary_strikes_ = 0;
    // Readoption: only a probe answer (not incidental traffic like TxBlock
    // pushes) moves the node back to its preferred primary.
    if (probe_inflight_ && i == preferred_idx_ &&
        primary_idx_ != preferred_idx_) {
      primary_idx_ = preferred_idx_;
      primary_strikes_ = 0;
      probe_inflight_ = false;
      probe_chain_active_ = false;
      probes_left_ = 0;
      system_->obs_.failover_readoptions->Increment();
      obs::Tracer* tracer = system_->tracer();
      if (tracer->enabled()) {
        tracer->Instant(tracer->FaultContext(), "primary_readoption",
                        TraceName());
      }
    }
    return;
  }
}

void StatelessNodeActor::OnWatchdog() {
  const Params& p = system_->params();
  const net::SimTime now = system_->events()->now();
  const net::SimTime due = last_new_round_at_ + p.storage_watchdog_us;
  if (now < due) {
    // A fresh round arrived meanwhile; sleep until the pushed-out deadline.
    system_->events()->ScheduleAfter(due - now, [this] { OnWatchdog(); });
    return;
  }
  if (resync_budget_ <= 0) {
    watchdog_armed_ = false;  // Chain dies; a fresh round re-arms it.
    return;
  }
  --resync_budget_;
  // Rotate only when the current primary is either demonstrably silent or
  // was already given a resync this stall and produced nothing. If a
  // per-request strike rotation just moved us onto a live storage node,
  // resync it first — rotating blindly here can bounce straight back onto
  // the dead one (the two rotation sources alternate in lockstep).
  const bool primary_silent =
      primary_idx_ < heard_at_.size() &&
      heard_at_[primary_idx_] + p.storage_timeout_us <= now;
  if (primary_silent || watchdog_resynced_idx_ == static_cast<int>(primary_idx_)) {
    RotatePrimary();
  }
  watchdog_resynced_idx_ = static_cast<int>(primary_idx_);
  system_->obs_.failover_resyncs->Increment();
  SendResync(storages_[primary_idx_]);
  system_->events()->ScheduleAfter(p.storage_watchdog_us,
                                   [this] { OnWatchdog(); });
}

void StatelessNodeActor::SendToAllStorages(uint16_t kind, const Bytes& payload,
                                           size_t wire_size,
                                           obs::TraceContext trace) {
  for (net::NodeId sid : storages_) {
    net::Message m;
    m.from = net_id_;
    m.to = sid;
    m.kind = kind;
    m.trace = trace;
    m.payload = payload;
    m.wire_size = wire_size != 0 ? wire_size : payload.size();
    system_->network()->Send(std::move(m));
  }
}

void StatelessNodeActor::BroadcastToOc(uint16_t kind, const Bytes& payload,
                                       obs::TraceContext trace) {
  Relay relay;
  relay.target = Relay::kToOrderingCommittee;
  relay.round = current_round_;
  relay.inner_kind = kind;
  relay.inner = payload;
  relay.trace = trace;  // Restored onto the forwarded message by storage.
  Bytes enc = relay.Encode();
  // The optional 16-byte trace tail is observability metadata, not protocol
  // traffic: bill the modeled wire at the untraced encoding size so enabling
  // tracing never perturbs bandwidth or timing.
  const size_t wire = enc.size() - (trace.active() ? 16 : 0);
  SendToPrimary(kMsgRelay, std::move(enc), wire, trace);
}

void StatelessNodeActor::HandleMessage(const net::Message& msg) {
  if (strategy_ == AdvStrategy::kSilent) {
    // The named `silent` strategy (the legacy Byzantine-silent model):
    // every protocol message dies here unanswered. Counter-only — one
    // trace instant per dropped message would flood the span buffer.
    system_->adversary()->NoteAction(strategy_, "silent_drop", TraceName(),
                                     /*trace=*/false);
    return;
  }
  NoteHeardFrom(msg.from);  // Any traffic counts as a liveness signal.
  if (!pending_reqs_.empty()) NoteEcho(msg);
  switch (msg.kind) {
    case kMsgNewRound: {
      auto block = tx::ProposalBlock::Decode(msg.payload);
      if (block.ok()) OnNewRound(*block, block->round + 1);
      break;
    }
    case kMsgTxBlock:
      OnTxBlock(msg);
      break;
    case kMsgExecRequest:
      OnExecRequest(msg);
      break;
    case kMsgStateResponse:
      OnStateResponse(msg);
      break;
    case kMsgWitnessBundle:
      OnWitnessBundle(msg);
      break;
    case kMsgProposal:
      OnProposal(msg);
      break;
    case kMsgVote:
      OnVote(msg);
      break;
    case kMsgDecisionCert:
      OnDecisionCert(msg);
      break;
    case kMsgExecResult:
      OnExecResult(msg);
      break;
    case kMsgBodyChunk:
      OnBodyChunk(msg);
      break;
    case kMsgAggWitness:
      OnAggWitness(msg);
      break;
    case kMsgAggExecResult:
      OnAggExecResult(msg);
      break;
    case kMsgVoteCert:
      OnVoteCert(msg);
      break;
    case kMsgRelayAck:
      OnRelayAck(msg);
      break;
    default:
      break;
  }
}

void StatelessNodeActor::OnNewRound(const tx::ProposalBlock& prev_block,
                                    uint64_t round) {
  if (round < current_round_) {
    // Strictly behind our tip: a stale (or deliberately stale) reply —
    // e.g. a stale-replying storage node answering a resync with genesis.
    system_->obs_.rejected_stale_round->Increment();
    return;
  }
  if (round == current_round_) return;  // Duplicate delivery.
  current_round_ = round;
  last_block_ = prev_block;
  prev_hash_ = prev_block.Hash();

  // Round watchdog: a fresh round refills the resync budget and pushes the
  // stall deadline out; the (single) watchdog chain is armed lazily here.
  last_new_round_at_ = system_->events()->now();
  resync_budget_ = system_->params().storage_resync_budget;
  watchdog_resynced_idx_ = -1;  // New stall, fresh "who did we ask" slate.
  if (!watchdog_armed_) {
    watchdog_armed_ = true;
    system_->events()->ScheduleAfter(system_->params().storage_watchdog_us,
                                     [this] { OnWatchdog(); });
  }

  // Prune witnessed blocks past their execution round (storage hygiene that
  // keeps the footprint ~constant, Fig 9a).
  for (auto it = held_blocks_.begin(); it != held_blocks_.end();) {
    if (it->second.witnessed_round + 2 < round) {
      it = held_blocks_.erase(it);
    } else {
      ++it;
    }
  }

  // Tree-dissemination scratch is per-round; prune with the pipeline depth.
  for (auto it = chunk_state_.begin(); it != chunk_state_.end();) {
    if (it->second.header.round_created + 2 < round) {
      it = chunk_state_.erase(it);
    } else {
      ++it;
    }
  }
  while (!witness_agg_.empty() &&
         witness_agg_.begin()->first.first + 4 < round) {
    witness_agg_.erase(witness_agg_.begin());
  }
  while (!exec_agg_.empty() && exec_agg_.begin()->first.first + 4 < round) {
    exec_agg_.erase(exec_agg_.begin());
  }

  if (in_oc_) {
    // Fresh consensus instance; the coordinator persists (the OC outlives
    // ECs, §IV-C2).
    ba_.reset();
    pending_votes_.clear();
    proposed_this_round_ = false;
    decided_hash_.reset();
    decided_cert_.reset();
    proposals_seen_.clear();
    // Bound memory: bundles/results older than the pipeline depth are dead.
    while (!bundles_.empty() && bundles_.begin()->first + 4 < round) {
      bundles_.erase(bundles_.begin());
    }
    while (!exec_results_.empty() &&
           exec_results_.begin()->first.first + 4 < round) {
      exec_results_.erase(exec_results_.begin());
    }
    // Tree mode: a new round re-elects the vote relay, so the degradation
    // latch resets; leader-side relay bookkeeping ages out with the
    // pipeline depth.
    vote_relay_direct_ = false;
    while (!vote_agg_.empty() &&
           std::get<0>(vote_agg_.begin()->first) + 4 < round) {
      vote_agg_.erase(vote_agg_.begin());
    }
    while (!agg_seen_.empty() &&
           std::get<0>(agg_seen_.begin()->first) + 4 < round) {
      agg_seen_.erase(agg_seen_.begin());
    }
    if (net_id_ == system_->leader_net_id_) {
      // Normal path: propose when the witness bundle arrives
      // (OnWitnessBundle); this deadline is the fallback that keeps
      // liveness when no bundle shows up (empty round).
      system_->events()->ScheduleAfter(
          2 * system_->params().phase_interval_us,
          [this, round] {
            if (current_round_ == round) MaybePropose();
          });
    }
    return;
  }

  // Churn: a node whose session expired misses this round (it is
  // rejoining) and returns with a fresh session next round. EC lifecycles
  // are short, so Porygon absorbs this gracefully (Fig 8d).
  if (system_->options().mean_session_s > 0) {
    if (session_end_ == net::kSimTimeNever) {
      session_end_ = system_->DrawSessionEnd();
    }
    if (session_end_ <= system_->events()->now()) {
      assignment_.reset();
      session_end_ = system_->DrawSessionEnd();
      return;
    }
  }

  // Cohort rotation (Fig 4): an EC formed at round r witnesses at r,
  // cross-batch witnesses at r+1, and executes at r+2 — so a node joins a
  // *new* EC only every third round. Without this, each node would carry
  // witness and execution traffic simultaneously, halving its usable
  // bandwidth versus the paper's pipeline.
  if (static_cast<uint64_t>(index_ % 3) != round % 3) {
    return;  // Serving an earlier cohort (executing/cross-batch) or idle.
  }

  // Execution-committee sortition for this round, with the shard drawn
  // from the VRF output (§IV-B3).
  assignment_ = Sortition::Assign(system_->provider(), keys_.private_key,
                                  round, prev_hash_, 0.0, 1.0,
                                  system_->params().shard_bits);
  RoleAnnounce announce;
  announce.round = round;
  announce.role = static_cast<uint8_t>(assignment_->role);
  announce.shard = assignment_->shard;
  announce.sortition = assignment_->sortition;
  announce.node_key = keys_.public_key;
  announce.proof = assignment_->proof;
  announce.node_id = net_id_;
  SendToAllStorages(kMsgRoleAnnounce, announce.Encode());
}

// --------------------------------------------------------------------------
// Epoch reconfiguration (called by PorygonSystem::ReconfigureEpoch)
// --------------------------------------------------------------------------

void StatelessNodeActor::RetireFromOc() {
  // Every OC message handler guards on in_oc_, so in-flight committee
  // traffic addressed to this node is shed harmlessly after the flip.
  in_oc_ = false;
  ba_.reset();
  pending_votes_.clear();
  proposed_this_round_ = false;
  pending_proposal_ = tx::ProposalBlock{};
  proposals_seen_.clear();
  decided_hash_.reset();
  decided_cert_.reset();
  bundles_.clear();
  exec_results_.clear();
  vote_agg_.clear();
  agg_seen_.clear();
  vote_relay_direct_ = false;
  coordinator_.reset();
  // EC-side state (held_blocks_, exec_task_, assignment_) survives: a
  // drafted-out member may still owe an earlier cohort its execution.
}

void StatelessNodeActor::JoinOc(
    std::unique_ptr<CrossShardCoordinator> handoff) {
  in_oc_ = true;
  ba_.reset();
  pending_votes_.clear();
  proposed_this_round_ = false;
  pending_proposal_ = tx::ProposalBlock{};
  proposals_seen_.clear();
  decided_hash_.reset();
  decided_cert_.reset();
  vote_relay_direct_ = false;
  if (handoff != nullptr) {
    coordinator_ = std::move(handoff);
  } else {
    coordinator_ = std::make_unique<CrossShardCoordinator>(
        system_->params().shard_bits,
        system_->params().cross_shard_retry_rounds);
  }
  // Re-bind observability to this owner (a handed-off coordinator still
  // traces under the outgoing leader's name otherwise).
  coordinator_->EnableTracing(system_->tracer(), TraceName());
  coordinator_->set_rejected_counter(system_->obs_.rejected_unlocked_update);
}

void StatelessNodeActor::AdoptOcHandoff(
    const std::map<uint64_t, std::map<std::string, WitnessedBlock>>& bundles,
    const std::map<std::pair<uint64_t, uint32_t>, PendingExec>& results) {
  // emplace keeps this node's own copies on conflict: a continuing member
  // promoted to leader already holds identical content by OC broadcast.
  for (const auto& [round, blocks] : bundles) {
    auto& mine = bundles_[round];
    for (const auto& [id, block] : blocks) mine.emplace(id, block);
  }
  for (const auto& [key, pending] : results) {
    exec_results_.emplace(key, pending);
  }
}

// --------------------------------------------------------------------------
// Execution-committee paths
// --------------------------------------------------------------------------

void StatelessNodeActor::OnTxBlock(const net::Message& msg) {
  auto block = tx::TransactionBlock::Decode(msg.payload);
  if (!block.ok() || !assignment_.has_value()) return;
  if (block->header.shard != assignment_->shard) return;
  WitnessBody(std::move(*block), current_round_, msg.trace);
}

// Shared witness tail for both body transports: the full-body push
// (OnTxBlock) and the erasure-coded chunk path (OnBodyChunk) converge here
// once a complete body is in hand.
void StatelessNodeActor::WitnessBody(tx::TransactionBlock block,
                                     uint64_t round,
                                     obs::TraceContext trace) {
  if (!assignment_.has_value()) return;

  // Data availability check (Witness Phase, §IV-C1(a)): a header whose body
  // we cannot download, or whose body does not match, is never witnessed.
  if (block.transactions.size() != block.header.tx_count) return;
  if (!block.BodyMatchesHeader()) return;

  std::string key = IdKey(block.header.Id());
  if (held_blocks_.count(key) == 0) {
    HeldBlock held;
    held.header = block.header;
    held.txs = block.transactions;
    held.witnessed_round = round;
    held_blocks_[key] = std::move(held);
  }

  if (system_->tracer()->enabled() && trace.active()) {
    // One witness mark per EC member in the round lane the block rode in on.
    system_->tracer()->Instant(trace, "witness", TraceName());
  }

  if (strategy_ == AdvStrategy::kForgeWitness) {
    // Forged uploads instead of an honest proof: a garbage signature over
    // the real block plus a proof for a block id that does not exist.
    // Storage-side verification rejects both (core.rejected counters);
    // Tw is still reached because the corrupted fraction is within α.
    // The block stays held above so execution still works later.
    AdversaryController* adv = system_->adversary();
    adv->NoteAction(strategy_, "forge_witness", TraceName());
    WitnessUpload bad;
    bad.round = round;
    bad.shard = assignment_->shard;
    bad.proof.block_id = block.header.Id();
    bad.proof.witness = keys_.public_key;
    bad.proof.signature =
        adv->ForgedSignature("witness_sig", round,
                             static_cast<uint64_t>(index_));
    SendToAllStorages(kMsgWitnessUpload, bad.Encode());
    WitnessUpload ghost;
    ghost.round = round;
    ghost.shard = assignment_->shard;
    ghost.proof.block_id = adv->ForgedValue(
        "ghost_block", round, static_cast<uint64_t>(index_));
    ghost.proof.witness = keys_.public_key;
    ghost.proof.signature = system_->provider()->Sign(
        keys_.private_key, ToBytes("porygon.ghost"));
    SendToAllStorages(kMsgWitnessUpload, ghost.Encode());
    return;
  }

  tx::WitnessProof proof;
  proof.block_id = block.header.Id();
  proof.witness = keys_.public_key;
  proof.signature = system_->provider()->Sign(
      keys_.private_key, WitnessSigningBytes(block.header));

  WitnessUpload up;
  up.round = round;
  up.shard = assignment_->shard;
  up.proof = proof;
  // Redundant upload to all m connected storage nodes: one honest one
  // suffices (Lemma 1).
  SendToAllStorages(kMsgWitnessUpload, up.Encode());
}

void StatelessNodeActor::OnBodyChunk(const net::Message& msg) {
  if (!system_->tree_mode()) return;
  auto chunk = BodyChunk::Decode(msg.payload);
  if (!chunk.ok() || !assignment_.has_value()) return;
  if (chunk->shard != assignment_->shard) return;
  if (chunk->k < 2 || chunk->n < chunk->k || chunk->index >= chunk->n) return;

  std::string key = IdKey(chunk->header.Id());
  if (held_blocks_.count(key) > 0) return;  // Already witnessed in full.
  ChunkState& st = chunk_state_[key];
  if (st.done) return;
  if (st.chunks.empty()) {
    st.header = chunk->header;
    st.k = chunk->k;
    st.n = chunk->n;
    st.chunks.assign(chunk->n, std::nullopt);
  }
  if (chunk->k != st.k || chunk->n != st.n) return;
  if (!chunk->payload.empty() && !st.chunks[chunk->index].has_value()) {
    st.chunks[chunk->index] = chunk->payload;
    ++st.have;
  }

  // Seed chunks (storage-sent) carry the member roster; our own seed is
  // forwarded once to the next k members on the ring. That caps every
  // member's uplink at ~one body while giving each member k+1 arrivals —
  // a one-chunk loss margin over the k needed to reconstruct.
  if (!st.forwarded && chunk->index < chunk->peers.size() &&
      chunk->peers[chunk->index] == net_id_ && !chunk->payload.empty()) {
    st.forwarded = true;
    BodyChunk fwd = *chunk;
    fwd.peers.clear();  // Forwarded hops never re-forward; drop the roster.
    Bytes enc = fwd.Encode();
    const size_t wire = fwd.WireSize();
    for (uint16_t i = 1; i <= st.k; ++i) {
      net::NodeId peer =
          chunk->peers[(chunk->index + i) % chunk->peers.size()];
      if (peer == net_id_) continue;
      net::Message m;
      m.from = net_id_;
      m.to = peer;
      m.kind = kMsgBodyChunk;
      m.trace = msg.trace;
      m.payload = enc;
      m.wire_size = wire;
      system_->network()->Send(std::move(m));
    }
  }

  if (st.have < static_cast<size_t>(st.k)) return;
  auto body = erasure::Decode(st.chunks, st.k, st.n);
  if (!body.ok()) return;
  auto block = tx::TransactionBlock::Decode(*body);
  if (!block.ok() || block->header.Id() != st.header.Id()) return;
  st.done = true;
  WitnessBody(std::move(*block), current_round_, msg.trace);
}

void StatelessNodeActor::OnExecRequest(const net::Message& msg) {
  auto req = ExecRequest::Decode(msg.payload);
  if (!req.ok()) return;
  if (exec_task_.has_value() && exec_task_->started_round == current_round_) {
    return;  // Already executing this round.
  }

  ExecTask task;
  task.request = std::move(*req);
  task.started_round = current_round_;
  if (system_->tracer()->enabled() && msg.trace.active()) {
    task.trace_span =
        system_->tracer()->BeginSpan(msg.trace, "exec", TraceName());
  }
  exec_task_ = std::move(task);

  // Collect every account the batch touches (the pre-recorded access lists)
  // plus the accounts of the OC's update list U. Fresh accounts need
  // absence proofs, so everything is requested.
  std::set<state::AccountId> accounts;
  for (const auto& id : exec_task_->request.block_ids) {
    auto held = held_blocks_.find(IdKey(id));
    if (held == held_blocks_.end()) continue;
    for (const auto& t : held->second.txs) {
      accounts.insert(t.from);
      accounts.insert(t.to);
    }
  }
  for (const auto& u : exec_task_->request.updates) {
    accounts.insert(u.account);
  }
  if (accounts.empty()) {
    RunExecution();  // Nothing to download; still report (empty) results.
    return;
  }

  StateRequest sreq;
  sreq.round = exec_task_->request.round;
  sreq.shard = exec_task_->request.shard;
  sreq.accounts.assign(accounts.begin(), accounts.end());
  exec_task_->state_requested = true;
  exec_task_->state_accounts = sreq.accounts;
  SendToPrimary(kMsgStateRequest, sreq.Encode(), 0, msg.trace);
}

void StatelessNodeActor::OnStateResponse(const net::Message& msg) {
  auto resp = StateResponse::Decode(msg.payload);
  if (!resp.ok()) return;
  // The answer settles every outstanding state request (the failover layer
  // only ever has this round's in flight).
  for (auto it = pending_reqs_.begin(); it != pending_reqs_.end();) {
    if (it->second.kind == kMsgStateRequest) {
      it = pending_reqs_.erase(it);
    } else {
      ++it;
    }
  }
  if (!exec_task_.has_value()) return;
  if (resp->round != exec_task_->request.round) return;
  if (system_->options().faithful_execution && !VerifyStateResponse(*resp)) {
    // Storage-reply cross-check failed: some entry's value does not match
    // its Merkle proof against the committed roots. Never execute on a
    // tampered snapshot — count it, and re-request from the next
    // connection (bounded by the connection count, so a β-fraction of
    // tampering storage nodes is walked past within one exec phase).
    system_->obs_.rejected_bad_state_proof->Increment();
    obs::Tracer* tracer = system_->tracer();
    if (tracer->enabled()) {
      tracer->Instant(tracer->AdversaryContext(), "bad_state_proof",
                      TraceName());
    }
    if (storages_.empty() ||
        ++exec_task_->state_retries >= static_cast<int>(storages_.size())) {
      return;  // Every connection answered dishonestly; give up this round.
    }
    StateRequest sreq;
    sreq.round = exec_task_->request.round;
    sreq.shard = exec_task_->request.shard;
    sreq.accounts = exec_task_->state_accounts;
    net::Message m;
    m.from = net_id_;
    m.to = storages_[(primary_idx_ + exec_task_->state_retries) %
                     storages_.size()];
    m.kind = kMsgStateRequest;
    m.payload = sreq.Encode();
    m.wire_size = m.payload.size();
    system_->network()->Send(std::move(m));
    return;
  }
  exec_task_->state = std::move(*resp);
  RunExecution();
}

bool StatelessNodeActor::VerifyStateResponse(const StateResponse& resp) const {
  const ExecRequest& req = exec_task_->request;
  if (resp.proofs.size() < resp.entries.size()) return false;
  // Throwaway PartialState: AddOwnAccount/AddForeignAccount fail iff the
  // claimed (present, value) does not verify against the committed root
  // for the account's shard — exactly the tamper check we need.
  state::PartialState check(system_->params().shard_bits, req.shard,
                            req.shard_root);
  for (size_t i = 0; i < resp.entries.size(); ++i) {
    const auto& e = resp.entries[i];
    auto proof = state::MerkleProof::Decode(resp.proofs[i]);
    if (!proof.ok()) return false;
    const uint32_t shard_of =
        state::ShardOfAccount(e.account, system_->params().shard_bits);
    Status st;
    if (shard_of == req.shard) {
      st = check.AddOwnAccount(e.account, e.present, e.value, *proof);
    } else if (shard_of < req.all_roots.size()) {
      st = check.AddForeignAccount(e.account, e.present, e.value, *proof,
                                   req.all_roots[shard_of]);
    } else {
      return false;
    }
    if (!st.ok()) return false;
  }
  return true;
}

void StatelessNodeActor::RunExecution() {
  if (!exec_task_.has_value()) return;
  const ExecRequest& req = exec_task_->request;

  ExecResultMsg result;
  result.exec_round = req.round;
  result.shard = req.shard;
  // Rank within the shard's ESC decides who ships the full S set; two full
  // senders give redundancy while attestations keep the OC downlink flat.
  // Tree mode leans on the aggregation relay for attestation redundancy, so
  // a single full sender suffices there.
  int rank = 0;
  for (net::NodeId m : req.members) {
    if (m == net_id_) break;
    ++rank;
  }
  const bool tree = system_->tree_mode();
  result.full = tree ? rank == 0 : rank < 2;

  const bool faithful = system_->options().faithful_execution;
  bool computed = false;

  if (!faithful) {
    // Fast path: adopt the deterministic result computed once for this
    // (round, shard) — identical to what local execution would produce.
    auto cached = system_->exec_cache_.find(req.round);
    if (cached != system_->exec_cache_.end() &&
        req.shard < cached->second.roots.size()) {
      result.new_root = cached->second.roots[req.shard];
      result.s_set = cached->second.s_sets[req.shard];
      result.intra_applied = cached->second.intra_applied[req.shard];
      result.cross_pre_executed = cached->second.cross_pre[req.shard];
      computed = true;
      system_->obs_.exec_cache_hits->Increment();
    } else {
      system_->obs_.exec_cache_misses->Increment();
    }
  }

  if (!computed) {
    // Faithful path: rebuild a partial shard subtree from proofs, verify,
    // and execute locally (true stateless execution).
    state::PartialState partial(system_->params().shard_bits, req.shard,
                                req.shard_root);
    // Implicit (lazily funded) accounts are genesis config every node
    // knows; mirroring the declaration keeps faithful execution
    // byte-identical to the canonical fast path.
    partial.SetImplicitAccounts(system_->canonical_state().implicit_max_id(),
                                system_->canonical_state().implicit_balance());
    if (exec_task_->state.has_value()) {
      const StateResponse& sr = *exec_task_->state;
      for (size_t i = 0; i < sr.entries.size(); ++i) {
        const auto& e = sr.entries[i];
        if (i >= sr.proofs.size()) break;
        auto proof = state::MerkleProof::Decode(sr.proofs[i]);
        if (!proof.ok()) continue;
        uint32_t shard_of =
            state::ShardOfAccount(e.account, system_->params().shard_bits);
        if (shard_of == req.shard) {
          (void)partial.AddOwnAccount(e.account, e.present, e.value, *proof);
        } else if (shard_of < req.all_roots.size()) {
          (void)partial.AddForeignAccount(e.account, e.present, e.value,
                                          *proof, req.all_roots[shard_of]);
        }
      }
    }

    ExecutionInput input;
    input.shard = req.shard;
    input.updates = req.updates;
    std::set<std::string> discarded;
    for (const auto& id : req.discarded) discarded.insert(IdKey(id));
    for (const auto& id : req.block_ids) {
      auto held = held_blocks_.find(IdKey(id));
      if (held == held_blocks_.end()) continue;
      for (const auto& t : held->second.txs) {
        if (discarded.count(IdKey(t.Id())) > 0) continue;
        if (t.IsCrossShard(system_->params().shard_bits)) {
          input.cross_shard.push_back(t);
        } else {
          input.intra_shard.push_back(t);
        }
      }
    }
    ExecutionResult r = ShardExecutor::Execute(&partial, input);
    result.new_root = r.shard_root;
    result.s_set = r.cross_updates;
    result.intra_applied = r.intra_applied;
    result.cross_pre_executed = r.cross_pre_executed;
  }

  if (strategy_ == AdvStrategy::kTamperExec) {
    // Report a forged post-state root. Index-salted so no two tamperers
    // agree on the same wrong root — forged results can never gather the
    // execution threshold, so the OC aggregates only the honest result.
    result.new_root = system_->adversary()->ForgedValue(
        "exec_root", req.round, req.shard, static_cast<uint64_t>(index_));
    result.s_set.clear();
    system_->adversary()->NoteAction(strategy_, "tamper_exec", TraceName());
  }

  result.s_hash = ExecResultMsg::HashSSet(result.s_set);
  if (!result.full) result.s_set.clear();
  result.signer = keys_.public_key;
  result.signature =
      system_->provider()->Sign(keys_.private_key, result.SigningBytes());
  obs::TraceContext lane;
  if (exec_task_->trace_span != 0) {
    lane = system_->tracer()->RoundContext(req.round);
    system_->tracer()->EndSpan(exec_task_->trace_span);
  }
  if (!tree || result.full) {
    BroadcastToOc(kMsgExecResult, result.Encode(), lane);
  } else {
    // Attestations ride the relay tree: one elected ESC member merges the
    // sibling signatures into a single compact message for the whole OC.
    net::NodeId relay =
        net::Dissemination::AggregatorFor(req.members, req.round, 1);
    if (relay == net_id_) {
      CollectExecAttestation(result);
    } else if (relay == net::kInvalidNode ||
               system_->network()->IsCrashed(relay)) {
      // No viable relay: degrade to the legacy direct broadcast.
      BroadcastToOc(kMsgExecResult, result.Encode(), lane);
    } else {
      net::Message m;
      m.from = net_id_;
      m.to = relay;
      m.kind = kMsgExecResult;
      m.trace = lane;
      m.payload = result.Encode();
      m.wire_size = m.payload.size();
      system_->network()->Send(std::move(m));
    }
  }
  exec_task_.reset();
}

// Relay-side attestation pool: flushed as one AggregatedExecResult to every
// OC member once enough distinct signers agree on a (root, s_hash) key.
void StatelessNodeActor::CollectExecAttestation(const ExecResultMsg& result) {
  auto& agg = exec_agg_[{result.exec_round, result.shard}];
  Encoder key_enc;
  key_enc.PutFixed(ByteView(result.new_root.data(), 32));
  key_enc.PutFixed(ByteView(result.s_hash.data(), 32));
  std::string key(reinterpret_cast<const char*>(key_enc.buffer().data()),
                  key_enc.buffer().size());
  if (agg.flushed_keys.count(key) > 0) return;
  auto& list = agg.by_key[key];
  for (const auto& r : list) {
    if (r.signer == result.signer) return;  // One attestation per member.
  }
  list.push_back(result);
  // Together with the rank-0 full broadcast this meets the execution
  // threshold exactly; waiting for more signatures only adds latency.
  const size_t target = static_cast<size_t>(
      std::max(1, system_->params().execution_threshold - 1));
  if (list.size() < target) return;
  agg.flushed_keys.insert(key);
  AggregatedExecResult out;
  out.exec_round = result.exec_round;
  out.shard = result.shard;
  out.new_root = result.new_root;
  out.s_hash = result.s_hash;
  out.intra_applied = result.intra_applied;
  out.cross_pre_executed = result.cross_pre_executed;
  out.has_payload = false;  // Rank 0's full broadcast carries the S data.
  out.aggregator = net_id_;
  for (const auto& r : list) {
    out.signers.push_back(r.signer);
    out.signatures.push_back(r.signature);
  }
  Bytes enc = out.Encode();
  obs::TraceContext lane;
  if (system_->tracer()->enabled()) {
    lane = system_->tracer()->RoundContext(result.exec_round);
  }
  for (net::NodeId oc : system_->oc_net_ids_) {
    net::Message m;
    m.from = net_id_;
    m.to = oc;
    m.kind = kMsgAggExecResult;
    m.trace = lane;
    m.payload = enc;
    m.wire_size = out.WireSize();
    system_->network()->Send(std::move(m));
  }
}

// --------------------------------------------------------------------------
// Ordering-committee paths
// --------------------------------------------------------------------------

void StatelessNodeActor::OnWitnessBundle(const net::Message& msg) {
  if (!in_oc_) return;
  auto bundle = WitnessBundle::Decode(msg.payload);
  if (!bundle.ok()) return;
  auto& merged = bundles_[bundle->batch_round];
  for (auto& block : bundle->blocks) {
    if (block.header.shard >=
        static_cast<uint32_t>(system_->params().shard_count())) {
      system_->obs_.rejected_bad_shard->Increment();
      continue;  // Out-of-range shard would index OOB downstream.
    }
    std::string key = IdKey(block.header.Id());
    auto it = merged.find(key);
    if (it == merged.end()) {
      merged[key] = std::move(block);
    } else {
      // Union the proofs (cross-batch witnesses may arrive via different
      // storage nodes).
      std::set<crypto::PublicKey> seen;
      for (const auto& p : it->second.proofs) seen.insert(p.witness);
      for (const auto& p : block.proofs) {
        if (seen.insert(p.witness).second) it->second.proofs.push_back(p);
      }
    }
  }
  // The leader proposes as soon as last round's witnessed blocks are in
  // hand (its primary ships the converged set once per round).
  if (net_id_ == system_->leader_net_id_ &&
      bundle->batch_round + 1 == current_round_) {
    MaybePropose();
  }
}

void StatelessNodeActor::OnAggWitness(const net::Message& msg) {
  if (!system_->tree_mode()) return;
  auto agg = AggregatedWitness::Decode(msg.payload);
  if (!agg.ok()) return;
  if (agg->shard >=
      static_cast<uint32_t>(system_->params().shard_count())) {
    system_->obs_.rejected_bad_shard->Increment();
    return;
  }

  if (in_oc_) {
    if (net_id_ != system_->leader_net_id_) return;
    // Leader side. Equivocation detection is content-hash based: one
    // aggregator, one aggregate per (batch, shard). First-wins mirrors the
    // BA* vote rule, so a tampered second copy becomes evidence, never
    // state.
    const crypto::Hash256 h = crypto::Sha256::Hash(msg.payload);
    auto key = std::make_tuple(agg->batch_round, agg->shard, msg.from);
    auto seen = agg_seen_.find(key);
    if (seen != agg_seen_.end()) {
      if (seen->second != h) {
        system_->adversary()->NoteEvidence("relay_equivocation",
                                           TraceName());
      }
      return;
    }
    agg_seen_.emplace(key, h);
    auto& merged = bundles_[agg->batch_round];
    for (auto& block : agg->blocks) {
      if (block.header.shard != agg->shard) {
        system_->obs_.rejected_bad_shard->Increment();
        continue;  // A relay must not smuggle foreign-shard blocks.
      }
      std::string id = IdKey(block.header.Id());
      auto it = merged.find(id);
      if (it == merged.end()) {
        merged[id] = std::move(block);
      } else {
        std::set<crypto::PublicKey> witnesses;
        for (const auto& p : it->second.proofs) witnesses.insert(p.witness);
        for (const auto& p : block.proofs) {
          if (witnesses.insert(p.witness).second) {
            it->second.proofs.push_back(p);
          }
        }
      }
    }
    // Per-shard aggregates arrive independently; propose once every shard
    // reported. (The round-start fallback deadline covers missing shards.)
    if (agg->batch_round + 1 == current_round_) {
      std::set<uint32_t> shards_seen;
      for (auto it = agg_seen_.lower_bound(std::make_tuple(
               agg->batch_round, uint32_t{0}, net::NodeId{0}));
           it != agg_seen_.end() &&
           std::get<0>(it->first) == agg->batch_round;
           ++it) {
        shards_seen.insert(std::get<1>(it->first));
      }
      if (shards_seen.size() ==
          static_cast<size_t>(system_->params().shard_count())) {
        MaybePropose();
      }
    }
    return;
  }

  // Relay duty: merge the per-storage sub-bundles for our shard. Flush to
  // the leader once every storage reported, or when the deadline fires —
  // whichever comes first.
  const auto agg_key = std::make_pair(agg->batch_round, agg->shard);
  auto& wa = witness_agg_[agg_key];
  if (wa.flushed) return;
  wa.senders.insert(msg.from);
  for (auto& block : agg->blocks) {
    if (block.header.shard != agg->shard) {
      system_->obs_.rejected_bad_shard->Increment();
      continue;
    }
    std::string id = IdKey(block.header.Id());
    auto it = wa.blocks.find(id);
    if (it == wa.blocks.end()) {
      wa.blocks[id] = std::move(block);
    } else {
      std::set<crypto::PublicKey> witnesses;
      for (const auto& p : it->second.proofs) witnesses.insert(p.witness);
      for (const auto& p : block.proofs) {
        if (witnesses.insert(p.witness).second) {
          it->second.proofs.push_back(p);
        }
      }
    }
  }
  if (!wa.deadline_armed) {
    wa.deadline_armed = true;
    system_->events()->ScheduleAfter(
        system_->params().phase_interval_us / 2, [this, agg_key] {
          FlushWitnessAgg(agg_key.first, agg_key.second);
        });
  }
  if (wa.senders.size() >=
      static_cast<size_t>(system_->num_storage_nodes())) {
    FlushWitnessAgg(agg->batch_round, agg->shard);
  }
}

void StatelessNodeActor::FlushWitnessAgg(uint64_t batch_round,
                                         uint32_t shard) {
  auto it = witness_agg_.find({batch_round, shard});
  if (it == witness_agg_.end() || it->second.flushed) return;
  it->second.flushed = true;
  if (it->second.blocks.empty()) return;
  AggregatedWitness out;
  out.batch_round = batch_round;
  out.shard = shard;
  out.aggregator = net_id_;
  for (auto& [id, wb] : it->second.blocks) out.blocks.push_back(wb);
  obs::TraceContext lane;
  if (system_->tracer()->enabled()) {
    lane = system_->tracer()->RoundContext(batch_round);
  }
  auto ship = [&](const AggregatedWitness& aw) {
    net::Message m;
    m.from = net_id_;
    m.to = system_->leader_net_id_;
    m.kind = kMsgAggWitness;
    m.trace = lane;
    m.payload = aw.Encode();
    m.wire_size = aw.WireSize();
    system_->network()->Send(std::move(m));
  };
  ship(out);
  if (strategy_ == AdvStrategy::kEquivocate && out.blocks.size() > 1) {
    // A Byzantine relay equivocates on the aggregate: a second, conflicting
    // digest right behind the honest one. The leader's content-hash check
    // turns it into relay_equivocation evidence; first-wins keeps the
    // honest copy authoritative.
    AggregatedWitness tampered = out;
    tampered.blocks.pop_back();
    system_->adversary()->NoteAction(strategy_, "relay_equivocate",
                                     TraceName());
    ship(tampered);
  }
}

void StatelessNodeActor::OnExecResult(const net::Message& msg) {
  // In tree mode the elected ESC relay — a non-OC node — receives its
  // siblings' attestations here and pools them instead of voting.
  const bool relay_collect = system_->tree_mode() && !in_oc_;
  if (!in_oc_ && !relay_collect) return;
  auto result = ExecResultMsg::Decode(msg.payload);
  if (!result.ok()) return;
  if (result->shard >=
      static_cast<uint32_t>(system_->params().shard_count())) {
    system_->obs_.rejected_bad_shard->Increment();
    return;
  }
  // Identity check before the (costlier) signature check: a result signed
  // by a key outside the stateless-node registry is an outsider forgery.
  if (system_->stateless_keys_.count(result->signer) == 0) {
    system_->obs_.rejected_unknown_signer->Increment();
    return;
  }
  // Routed through the batch entry point so the pool covers exec-result
  // verification too (each message arrives as its own event, so batches are
  // singletons here; results match per-item Verify exactly).
  system_->obs_.runtime_verify_tasks->Increment();
  if (system_->provider()
          ->VerifyBatch({{result->signer, result->SigningBytes(),
                          result->signature}})
          .front() == 0) {
    system_->obs_.rejected_bad_exec_sig->Increment();
    return;
  }
  // A full result whose S set does not hash to its own s_hash is
  // internally inconsistent: drop it before it can vote.
  if (result->full &&
      ExecResultMsg::HashSSet(result->s_set) != result->s_hash) {
    system_->obs_.rejected_s_hash_mismatch->Increment();
    return;
  }
  if (relay_collect) {
    CollectExecAttestation(*result);
    return;
  }
  auto& pending =
      exec_results_[{result->exec_round, result->shard}];
  if (!pending.voters.insert(result->signer).second) return;
  if (net_id_ == system_->leader_net_id_) {
    system_->NoteExecPhaseEnd(result->exec_round);
  }

  // Result key: (root, s_hash); identical execution -> identical key. Full
  // payloads (from the shard's lowest-ranked members) carry the S data.
  Encoder key_enc;
  key_enc.PutFixed(ByteView(result->new_root.data(), 32));
  key_enc.PutFixed(ByteView(result->s_hash.data(), 32));
  std::string key(reinterpret_cast<const char*>(key_enc.buffer().data()),
                  key_enc.buffer().size());
  pending.result_votes[key] += 1;
  // s_hash consistency was verified on entry, so every full result can
  // serve as the payload for its key.
  if (result->full) pending.payloads.emplace(key, *result);
}

void StatelessNodeActor::OnAggExecResult(const net::Message& msg) {
  if (!in_oc_ || !system_->tree_mode()) return;
  auto agg = AggregatedExecResult::Decode(msg.payload);
  if (!agg.ok()) return;
  if (agg->shard >=
      static_cast<uint32_t>(system_->params().shard_count())) {
    system_->obs_.rejected_bad_shard->Increment();
    return;
  }
  if (agg->signers.empty() ||
      agg->signers.size() != agg->signatures.size()) {
    return;
  }
  for (const auto& signer : agg->signers) {
    if (system_->stateless_keys_.count(signer) == 0) {
      system_->obs_.rejected_unknown_signer->Increment();
      return;
    }
  }
  if (agg->has_payload &&
      ExecResultMsg::HashSSet(agg->s_set) != agg->s_hash) {
    system_->obs_.rejected_s_hash_mismatch->Increment();
    return;
  }
  // One batch verification over the shared member signing bytes: the
  // aggregate is exactly the relay's list of individual attestations, so
  // each signature still verifies against its signer.
  Bytes signing = agg->MemberSigningBytes();
  std::vector<crypto::CryptoProvider::VerifyJob> jobs;
  jobs.reserve(agg->signers.size());
  for (size_t i = 0; i < agg->signers.size(); ++i) {
    jobs.push_back({agg->signers[i], signing, agg->signatures[i]});
  }
  system_->obs_.runtime_verify_tasks->Add(jobs.size());
  const std::vector<uint8_t> ok = system_->provider()->VerifyBatch(jobs);

  auto& pending = exec_results_[{agg->exec_round, agg->shard}];
  Encoder key_enc;
  key_enc.PutFixed(ByteView(agg->new_root.data(), 32));
  key_enc.PutFixed(ByteView(agg->s_hash.data(), 32));
  std::string key(reinterpret_cast<const char*>(key_enc.buffer().data()),
                  key_enc.buffer().size());
  int accepted = 0;
  for (size_t i = 0; i < agg->signers.size(); ++i) {
    if (ok[i] == 0) {
      system_->obs_.rejected_bad_exec_sig->Increment();
      continue;
    }
    if (!pending.voters.insert(agg->signers[i]).second) continue;
    pending.result_votes[key] += 1;
    ++accepted;
  }
  if (accepted == 0) return;
  if (agg->has_payload && pending.payloads.count(key) == 0) {
    ExecResultMsg payload;
    payload.exec_round = agg->exec_round;
    payload.shard = agg->shard;
    payload.new_root = agg->new_root;
    payload.s_hash = agg->s_hash;
    payload.full = true;
    payload.s_set = agg->s_set;
    payload.intra_applied = agg->intra_applied;
    payload.cross_pre_executed = agg->cross_pre_executed;
    pending.payloads.emplace(key, std::move(payload));
  }
  if (net_id_ == system_->leader_net_id_) {
    system_->NoteExecPhaseEnd(agg->exec_round);
  }
}

void StatelessNodeActor::MaybePropose() {
  if (!in_oc_ || proposed_this_round_ || decided_hash_.has_value()) return;
  proposed_this_round_ = true;
  const Params& p = system_->params();
  const uint64_t r = current_round_;

  tx::ProposalBlock proposal;
  proposal.height = last_block_.height + 1;
  proposal.prev_hash = prev_hash_;
  proposal.round = r;
  proposal.leader = keys_.public_key;
  proposal.shard_tx_blocks.assign(p.shard_count(), {});
  proposal.shard_updates.assign(p.shard_count(), {});
  proposal.ordering_threshold = p.ordering_fraction;
  proposal.execution_threshold = p.execution_fraction;

  // --- Ordering Phase: list batch r-1 blocks with enough witness proofs.
  std::vector<tx::Transaction> round_txs;
  auto bundle = bundles_.find(r - 1);
  if (bundle != bundles_.end()) {
    // Verify every distinct witness signature of the bundle in one batch
    // (the round's biggest verification fan-out), then count valid
    // witnesses per block. Dedup-then-verify semantics and block order are
    // those of the former serial loop.
    std::vector<crypto::CryptoProvider::VerifyJob> jobs;
    struct BlockJobs {
      const WitnessedBlock* wb;
      size_t begin;
      size_t count;
    };
    std::vector<BlockJobs> per_block;
    for (const auto& [key, wb] : bundle->second) {
      Bytes signing = WitnessSigningBytes(wb.header);
      std::set<crypto::PublicKey> seen;
      const size_t begin = jobs.size();
      for (const auto& proof : wb.proofs) {
        if (!seen.insert(proof.witness).second) continue;
        jobs.push_back({proof.witness, signing, proof.signature});
      }
      per_block.push_back({&wb, begin, jobs.size() - begin});
    }
    system_->obs_.runtime_verify_tasks->Add(jobs.size());
    const uint64_t wall_before = system_->task_pool()->wall_us();
    const std::vector<uint8_t> ok = system_->provider()->VerifyBatch(jobs);
    system_->obs_.runtime_verify_wall_us->Add(static_cast<double>(
        system_->task_pool()->wall_us() - wall_before));

    std::vector<const WitnessedBlock*> ordered;
    for (const BlockJobs& bj : per_block) {
      size_t valid = 0;
      for (size_t i = bj.begin; i < bj.begin + bj.count; ++i) {
        valid += ok[i];
      }
      if (valid >= static_cast<size_t>(p.witness_threshold)) {
        ordered.push_back(bj.wb);
      }
    }
    // Deterministic order (map iteration is already id-sorted).
    for (const WitnessedBlock* wb : ordered) {
      proposal.shard_tx_blocks[wb->header.shard].push_back(wb->header.Id());
      for (const auto& a : wb->accesses) round_txs.push_back(FromAccess(a));
    }
  }

  // --- Cross-shard conflict filtering + locking (§IV-D2).
  auto filtered = coordinator_->FilterAndLock(r, round_txs);
  proposal.discarded = filtered.discarded;
  if (system_->tracer()->enabled()) {
    // Sampled transactions close their "ordering" span here (listed in the
    // round-r proposal) or terminate with a "discarded" span.
    const std::string name = TraceName();
    for (const auto& t : filtered.accepted_intra) {
      system_->TraceTxOrdered(t.Id(), r, /*accepted=*/true, name);
    }
    for (const auto& t : filtered.accepted_cross) {
      system_->TraceTxOrdered(t.Id(), r, /*accepted=*/true, name);
    }
    for (const auto& id : filtered.discarded) {
      system_->TraceTxOrdered(id, r, /*accepted=*/false, name);
    }
  }

  // --- Aggregate execution results of exec round r-2 (T and S).
  proposal.shard_roots = last_block_.shard_roots;
  if (proposal.shard_roots.empty()) {
    proposal.shard_roots.assign(p.shard_count(), crypto::ZeroHash());
    for (int d = 0; d < p.shard_count(); ++d) {
      proposal.shard_roots[d] = last_block_.shard_roots.empty()
                                    ? system_->genesis_.shard_roots[d]
                                    : last_block_.shard_roots[d];
    }
  }
  std::vector<std::vector<tx::StateUpdate>> s_sets;
  std::vector<tx::StateUpdate> old_values;
  for (int d = 0; d < p.shard_count(); ++d) {
    auto pending = exec_results_.find({r - 2, static_cast<uint32_t>(d)});
    bool accepted = false;
    if (pending != exec_results_.end()) {
      if (pending->second.result_votes.size() > 1) {
        // Two distinct (root, s_hash) keys for the same (round, shard):
        // someone executed-and-signed a divergent result. Evidence, not
        // fatal — the vote count below picks the honest majority.
        system_->adversary()->NoteEvidence("divergent_exec_result",
                                           TraceName());
      }
      // Most-voted key reaching the execution threshold wins. A key is
      // usable only when its S data is in hand: either a full payload
      // arrived, or its s_hash half commits to the empty S set (nothing to
      // carry). Map order breaks exact ties deterministically.
      const crypto::Hash256 empty_s_hash = ExecResultMsg::HashSSet({});
      const std::string* best_key = nullptr;
      int best_votes = 0;
      for (const auto& [key, votes] : pending->second.result_votes) {
        if (votes < p.execution_threshold) continue;
        const bool has_payload = pending->second.payloads.count(key) > 0;
        const bool empty_s =
            key.size() == 64 &&
            std::memcmp(key.data() + 32, empty_s_hash.data(), 32) == 0;
        if (!has_payload && !empty_s) continue;
        if (votes > best_votes) {
          best_votes = votes;
          best_key = &key;
        }
      }
      if (best_key != nullptr) {
        std::memcpy(proposal.shard_roots[d].data(), best_key->data(), 32);
        auto payload = pending->second.payloads.find(*best_key);
        if (payload != pending->second.payloads.end() &&
            !payload->second.s_set.empty()) {
          s_sets.push_back(payload->second.s_set);
        }
        accepted = true;
      }
    }
    // Success/failure feedback for in-flight multi-shard updates.
    bool had_pending =
        r >= 4 && !coordinator_->PendingUpdatesFor(d, r).empty();
    if (had_pending) {
      auto outcome = coordinator_->OnShardUpdateResult(r - 4, d, accepted);
      if (outcome.rolled_back) {
        for (int d2 = 0; d2 < p.shard_count(); ++d2) {
          for (const auto& u : outcome.compensation[d2]) {
            proposal.shard_updates[d2].push_back(u);
          }
        }
      }
    }
  }

  // --- Build the update list U_r from the S sets (Single-Shard Execution
  // results route to owning shards for Multi-Shard Update).
  if (!s_sets.empty()) {
    auto update_lists = coordinator_->BuildUpdateList(r - 2, s_sets,
                                                      old_values);
    for (int d = 0; d < p.shard_count(); ++d) {
      for (const auto& u : update_lists[d]) {
        proposal.shard_updates[d].push_back(u);
      }
    }
  }
  // Re-send still-pending updates from earlier rounds until success.
  for (int d = 0; d < p.shard_count(); ++d) {
    for (const auto& u : coordinator_->PendingUpdatesFor(d, r)) {
      bool already = false;
      for (const auto& existing : proposal.shard_updates[d]) {
        if (existing.account == u.account) {
          already = true;
          break;
        }
      }
      if (!already) proposal.shard_updates[d].push_back(u);
    }
  }

  proposal.state_root =
      state::ShardedState::AggregateRoots(proposal.shard_roots);

  pending_proposal_ = proposal;
  Bytes enc = proposal.Encode();
  proposals_seen_[IdKey(proposal.Hash())] = proposal;
  obs::TraceContext lane;
  if (system_->tracer()->enabled()) lane = system_->tracer()->RoundContext(r);
  BroadcastToOc(kMsgProposal, enc, lane);
  StartConsensus(proposal);
}

void StatelessNodeActor::StartConsensus(const tx::ProposalBlock& proposal) {
  crypto::Hash256 hash = proposal.Hash();
  if (!ba_) {
    ba_ = std::make_unique<consensus::BaStar>(
        system_->provider(), keys_, system_->oc_keys_,
        [this](const consensus::Vote& v) {
          obs::Tracer* tracer = system_->tracer();
          obs::TraceContext lane;
          if (tracer->enabled()) {
            lane = tracer->RoundContext(v.instance);
            tracer->Instant(lane, "vote", TraceName());
          }
          RouteVote(v, lane);
          if (strategy_ == AdvStrategy::kEquivocate) {
            // Classic equivocation: a second, conflicting, *properly
            // signed* vote for a forged value right behind the honest one.
            // First-vote-wins keeps honest counting intact; the conflict
            // becomes signed evidence at every honest member. The value is
            // index-salted so equivocators never agree with each other and
            // forged values can never gather a quorum.
            AdversaryController* adv = system_->adversary();
            consensus::Vote forged = v;
            forged.value = adv->ForgedValue(
                "equivocate", v.instance,
                static_cast<uint64_t>(v.step) * 2 + v.kind,
                static_cast<uint64_t>(index_));
            forged.voter = keys_.public_key;
            forged.signature = system_->provider()->Sign(
                keys_.private_key, forged.SigningBytes());
            adv->NoteAction(strategy_, "equivocate_vote", TraceName());
            RouteVote(forged, lane);
          }
        },
        [this](const consensus::DecisionCert& cert) { OnDecision(cert); });
    ba_->set_instruments(system_->obs_.consensus);
    ba_->set_evidence_sink(
        [this](const consensus::EquivocationEvidence& ev) {
          system_->adversary()->NoteEvidence("equivocation", TraceName());
          system_->RecordEquivocationEvidence(ev);
        });
    ba_->set_backoff(system_->params().phase_interval_us,
                     system_->params().consensus_backoff_cap_us);
    if (system_->tracer()->enabled()) {
      ba_->set_trace(system_->tracer(),
                     system_->tracer()->RoundContext(current_round_),
                     TraceName());
    }
    ba_->Propose(current_round_, hash);
    // Replay buffered early votes as one batch (signatures verify on the
    // pool; counting order is the buffer order, as before).
    ba_->OnVotes(pending_votes_);
    pending_votes_.clear();
    // Timeout driver: re-drive while the round is open. Undecided, each
    // firing re-steps BA* — and the leader re-broadcasts its proposal: a
    // member whose copy was lost can buffer votes but never join the
    // instance, and a small committee with an equivocator may be unable
    // to decide one member short. Decided, each firing re-publishes the
    // decision cert (and, at the leader, the commit) until the round
    // actually advances — any single hand-off or commit message can be
    // lost or withheld. The driver function holds itself only weakly —
    // each scheduled event keeps a strong reference, so the chain dies
    // with the last pending event instead of leaking through a
    // shared_ptr cycle.
    auto schedule_timeout = std::make_shared<std::function<void(int)>>();
    *schedule_timeout = [this, wst = std::weak_ptr<std::function<void(int)>>(
                                   schedule_timeout),
                         round = current_round_](int tries) {
      if (tries <= 0 || !ba_ || current_round_ != round) return;
      std::shared_ptr<std::function<void(int)>> st = wst.lock();
      if (!st) return;
      // Capped exponential backoff: the delay doubles with the retry step
      // (min(phase_interval << step, consensus_backoff_cap_us)).
      system_->events()->ScheduleAfter(
          ba_->NextTimeoutDelay(), [this, st, tries, round] {
            if (!ba_ || current_round_ != round) return;
            if (ba_->decided()) {
              PublishDecision();
            } else {
              // A firing timeout in tree mode means the vote relay is not
              // delivering quorums: latch back to direct broadcast for the
              // rest of the instance.
              if (system_->tree_mode()) vote_relay_direct_ = true;
              if (net_id_ == system_->leader_net_id_) {
                obs::TraceContext lane;
                if (system_->tracer()->enabled()) {
                  lane = system_->tracer()->RoundContext(round);
                }
                BroadcastToOc(kMsgProposal, pending_proposal_.Encode(),
                              lane);
              }
              ba_->OnTimeout();
            }
            (*st)(tries - 1);
          });
    };
    (*schedule_timeout)(12);
  }
}

void StatelessNodeActor::OnProposal(const net::Message& msg) {
  if (!in_oc_) return;
  auto proposal = tx::ProposalBlock::Decode(msg.payload);
  if (!proposal.ok()) return;
  if (proposal->round != current_round_) return;
  // Structural validation; leader must extend our tip.
  if (proposal->prev_hash != prev_hash_) return;
  if (proposal->height != last_block_.height + 1) return;
  proposals_seen_[IdKey(proposal->Hash())] = *proposal;
  StartConsensus(*proposal);
}

void StatelessNodeActor::OnVote(const net::Message& msg) {
  if (!in_oc_) return;
  auto vote = consensus::Vote::Decode(msg.payload);
  if (!vote.ok()) return;
  if (system_->tree_mode() && VoteRelayFor(vote->instance) == net_id_) {
    // Relay duty rides alongside normal counting: pool the vote toward a
    // compact certificate for the rest of the committee.
    CollectVote(*vote);
  }
  if (!ba_) {
    // Buffer votes that outrun the leader's proposal on a faster route.
    if (vote->instance == current_round_) pending_votes_.push_back(*vote);
    return;
  }
  ba_->OnVote(*vote);
}

void StatelessNodeActor::OnDecisionCert(const net::Message& msg) {
  if (!in_oc_ || !ba_ || ba_->decided()) return;
  auto cert = consensus::DecisionCert::Decode(msg.payload);
  if (!cert.ok()) return;
  // AdoptCert verifies the quorum signatures and, on success, fires the
  // decision callback — so OnDecision/PublishDecision run exactly as if we
  // had assembled the quorum ourselves (the leader publishes the commit).
  ba_->AdoptCert(*cert);
}

// Tree-mode vote transport. Every OC member sends its votes to one elected
// relay (rotating per instance, never the leader), which answers with a
// CompactVoteCert carrying a whole quorum at once — collapsing the O(n^2)
// vote mesh into O(n). Any sign of a dead relay degrades to the legacy
// direct broadcast.
net::NodeId StatelessNodeActor::VoteRelayFor(uint64_t instance) const {
  const auto& oc = system_->oc_net_ids_;
  if (oc.size() < 3) return net::kInvalidNode;
  const size_t idx = static_cast<size_t>(instance % oc.size());
  net::NodeId relay = oc[idx];
  if (relay == system_->leader_net_id_) relay = oc[(idx + 1) % oc.size()];
  return relay;
}

void StatelessNodeActor::RouteVote(const consensus::Vote& v,
                                   obs::TraceContext lane) {
  Bytes enc = v.Encode();
  if (!system_->tree_mode() || vote_relay_direct_) {
    BroadcastToOc(kMsgVote, enc, lane);
    return;
  }
  net::NodeId relay = VoteRelayFor(v.instance);
  if (relay == net::kInvalidNode || system_->network()->IsCrashed(relay)) {
    BroadcastToOc(kMsgVote, enc, lane);
    return;
  }
  if (relay == net_id_) {
    CollectVote(v);  // Self-elected: pool locally, nothing on the wire.
    return;
  }
  net::Message m;
  m.from = net_id_;
  m.to = relay;
  m.kind = kMsgVote;
  m.trace = lane;
  m.wire_size = enc.size();
  m.payload = std::move(enc);
  system_->network()->Send(std::move(m));
}

void StatelessNodeActor::CollectVote(const consensus::Vote& v) {
  std::string value_key(reinterpret_cast<const char*>(v.value.data()),
                        v.value.size());
  auto& agg = vote_agg_[{v.instance, v.step, v.kind, value_key}];
  if (agg.emitted) return;
  if (!agg.voters.insert(v.voter).second) return;
  agg.votes.push_back(v);
  // Same quorum rule as BA* (2f+1 of the committee): one cert carries the
  // whole threshold, so a member counts a full quorum from one message.
  const size_t quorum = system_->oc_keys_.size() * 2 / 3 + 1;
  if (agg.votes.size() < quorum) return;
  agg.emitted = true;
  CompactVoteCert cert;
  cert.instance = v.instance;
  cert.step = v.step;
  cert.kind = v.kind;
  cert.value = v.value;
  // Bitmap over the canonical committee order; signatures in ascending
  // set-bit order so receivers can zip them back to their voters.
  std::vector<std::pair<size_t, crypto::Signature>> indexed;
  for (const auto& vote : agg.votes) {
    for (size_t i = 0; i < system_->oc_keys_.size(); ++i) {
      if (system_->oc_keys_[i] == vote.voter) {
        indexed.push_back({i, vote.signature});
        break;
      }
    }
  }
  std::sort(indexed.begin(), indexed.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  for (const auto& [bit, sig] : indexed) {
    cert.bitmap |= uint64_t{1} << bit;
    cert.signatures.push_back(sig);
  }
  Bytes enc = cert.Encode();
  obs::TraceContext lane;
  if (system_->tracer()->enabled()) {
    lane = system_->tracer()->RoundContext(v.instance);
  }
  // The relay received (and already counted) every individual vote, so the
  // cert only goes out — never back into our own BA* instance.
  for (net::NodeId oc : system_->oc_net_ids_) {
    if (oc == net_id_) continue;
    net::Message m;
    m.from = net_id_;
    m.to = oc;
    m.kind = kMsgVoteCert;
    m.trace = lane;
    m.payload = enc;
    m.wire_size = cert.WireSize();
    system_->network()->Send(std::move(m));
  }
}

void StatelessNodeActor::OnVoteCert(const net::Message& msg) {
  if (!in_oc_ || !system_->tree_mode()) return;
  auto cert = CompactVoteCert::Decode(msg.payload);
  if (!cert.ok()) return;
  std::vector<consensus::Vote> votes = cert->ToVotes(system_->oc_keys_);
  if (votes.empty()) return;
  if (!ba_) {
    // Same buffering rule as individual votes that outrun the proposal.
    if (cert->instance == current_round_) {
      pending_votes_.insert(pending_votes_.end(), votes.begin(),
                            votes.end());
    }
    return;
  }
  ba_->OnVotes(votes);
}

void StatelessNodeActor::OnRelayAck(const net::Message& msg) {
  auto ack = RelayAck::Decode(msg.payload);
  if (!ack.ok()) return;
  // Tree mode suppresses the broadcast self-echo; this ack replaces it as
  // the delivery signal, named by payload digest. Settle the failover
  // tracker so no retransmit chain keeps running for a delivered relay.
  for (auto it = pending_reqs_.begin(); it != pending_reqs_.end(); ++it) {
    if (it->second.kind != kMsgRelay) continue;
    if (crypto::Sha256::Hash(it->second.payload) == ack->digest) {
      pending_reqs_.erase(it);
      return;
    }
  }
}

void StatelessNodeActor::OnDecision(const consensus::DecisionCert& cert) {
  decided_hash_ = cert.value;
  decided_cert_ = cert;
  system_->RecordOrderingDecision(cert.instance);
  PublishDecision();
}

void StatelessNodeActor::PublishDecision() {
  if (!decided_cert_.has_value()) return;
  const consensus::DecisionCert& cert = *decided_cert_;
  // Decisions are transferable: broadcast the deciding certificate to the
  // committee as one self-certifying unit. A decided member stops voting,
  // so when the other members' copies of the cert votes were lost or
  // withheld, a lone partial decision would otherwise strand the rest of
  // the instance — including a leader that still owes storage the commit —
  // forever. Shipping the cert whole (instead of replaying its votes
  // through the tally) matters under equivocation: a member that counted
  // the equivocator's salted cert vote first has burned that (step, cert)
  // slot and could never re-assemble the quorum vote-by-vote. The timeout
  // driver calls back in here while the round stays open, so the hand-off
  // (and the leader's commit below) survives any one loss.
  {
    obs::TraceContext lane;
    if (system_->tracer()->enabled()) {
      lane = system_->tracer()->RoundContext(cert.instance);
    }
    BroadcastToOc(kMsgDecisionCert, cert.Encode(), lane);
  }
  // The leader publishes the committed block (with its certificate) to its
  // connected storage nodes; gossip spreads it.
  if (net_id_ != system_->leader_net_id_) return;
  auto it = proposals_seen_.find(IdKey(cert.value));
  if (it == proposals_seen_.end()) return;
  Bytes enc = it->second.Encode();
  obs::TraceContext lane;
  if (system_->tracer()->enabled()) {
    lane = system_->tracer()->RoundContext(cert.instance);
  }
  if (system_->tree_mode()) {
    // Storage gossip converges from any live entry point (OnCommit
    // forwards to peers); two distinct connections give crash redundancy
    // at a fraction of the m-way fan-out.
    const size_t fanout = std::min<size_t>(2, storages_.size());
    for (size_t i = 0; i < fanout; ++i) {
      net::Message m;
      m.from = net_id_;
      m.to = storages_[i];
      m.kind = kMsgCommit;
      m.trace = lane;
      m.payload = enc;
      m.wire_size = enc.size() + cert.WireSize();
      system_->network()->Send(std::move(m));
    }
  } else {
    SendToAllStorages(kMsgCommit, enc, enc.size() + cert.WireSize(), lane);
  }
}

}  // namespace porygon::core
