#ifndef PORYGON_CORE_COORDINATOR_H_
#define PORYGON_CORE_COORDINATOR_H_

#include <cstdint>
#include <map>
#include <optional>
#include <unordered_map>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "state/account.h"
#include "tx/blocks.h"
#include "tx/transaction.h"

namespace porygon::core {

/// The Ordering Committee's cross-shard coordination state machine
/// (§IV-D2). Pure logic, driven per round:
///
///   1. `FilterAndLock` at ordering time: discard transactions conflicting
///      with in-flight cross-shard transactions or with earlier-accepted
///      transactions of the same round (across shards); lock the accounts
///      of accepted cross-shard transactions.
///   2. `BuildUpdateList` after Single-Shard Execution: route each updated
///      key-value pair to the shard that owns it, producing the list U for
///      the next proposal block; remember pre-images for rollback.
///   3. `OnShardUpdateResult` after Multi-Shard Update: successful shards
///      release their locks; failed shards are retried with the same
///      updates for up to `retry_rounds` rounds, after which the whole
///      batch rolls back via compensating updates to the old values.
class CrossShardCoordinator {
 public:
  CrossShardCoordinator(int shard_bits, int retry_rounds);

  /// Optional distributed tracing. When armed, each cross-shard batch
  /// contributes two round-lane spans attributed to `node` (the OC leader):
  /// "sse" from lock acquisition (FilterAndLock) to S-set aggregation
  /// (BuildUpdateList), then "msu" until the batch resolves in
  /// OnShardUpdateResult (all shards applied, or rollback — the latter also
  /// emits an "msu_rollback" instant).
  void EnableTracing(obs::Tracer* tracer, std::string node) {
    tracer_ = tracer;
    trace_node_ = std::move(node);
  }

  /// Counter incremented for every S-set update dropped by BuildUpdateList
  /// because its account was never locked by the batch (a forged or
  /// replayed cross-shard write). Optional; null disables counting.
  void set_rejected_counter(obs::Counter* counter) {
    rejected_unlocked_ = counter;
  }

  struct FilterResult {
    std::vector<tx::Transaction> accepted_intra;
    std::vector<tx::Transaction> accepted_cross;
    /// Discarded for conflicts; still recorded in their blocks for
    /// integrity, with their ids noted in the proposal.
    std::vector<tx::TxId> discarded;
  };

  /// Splits and filters one round's witnessed transactions.
  FilterResult FilterAndLock(uint64_t round,
                             const std::vector<tx::Transaction>& txs);

  /// Is this account currently locked by an in-flight cross-shard batch?
  bool IsLocked(state::AccountId account) const {
    return locks_.count(account) > 0;
  }
  size_t LockedCount() const { return locks_.size(); }

  /// Consumes the S sets returned by every shard's Single-Shard Execution
  /// for batch `round`, storing pre-images (`old_values`, captured by the
  /// OC from the pre-round state) and returning U: per-shard update lists.
  std::vector<std::vector<tx::StateUpdate>> BuildUpdateList(
      uint64_t round, const std::vector<std::vector<tx::StateUpdate>>& s_sets,
      const std::vector<tx::StateUpdate>& old_values);

  /// Reports whether shard `shard` applied batch `round`'s updates
  /// (returned enough consistent roots). Returns, if the batch is now fully
  /// resolved, either:
  ///   - success: all shards applied → locks released, empty vector
  ///   - rollback: retries exhausted → compensating per-shard update lists
  ///     that every shard must apply to restore old values.
  struct UpdateOutcome {
    bool resolved = false;
    bool rolled_back = false;
    /// Non-empty only when rolled_back: compensating updates per shard.
    std::vector<std::vector<tx::StateUpdate>> compensation;
  };
  UpdateOutcome OnShardUpdateResult(uint64_t round, uint32_t shard,
                                    bool success);

  /// Pending (unresolved) update lists for `shard`, re-sent by the OC until
  /// success ("the OC will continually require the following ESCs of the
  /// same shard to update these states until success"). Only batches whose
  /// feedback round has passed are returned (`current_round` >= lock round
  /// + 4): re-sending earlier would re-apply stale absolute values on top
  /// of newer intra-shard writes — a lost-update/minting hazard caught by
  /// the fault-injection tests.
  std::vector<tx::StateUpdate> PendingUpdatesFor(uint32_t shard,
                                                 uint64_t current_round) const;

  int shard_count() const { return 1 << shard_bits_; }

 private:
  struct InFlightBatch {
    uint64_t round = 0;
    std::vector<std::vector<tx::StateUpdate>> updates;     // Per shard.
    std::vector<tx::StateUpdate> old_values;                // Pre-images.
    std::vector<bool> shard_done;
    std::vector<state::AccountId> locked_accounts;
    int failed_rounds = 0;
    uint64_t sse_span = 0;  // Open tracing spans (0 = none).
    uint64_t msu_span = 0;
  };

  void ReleaseLocks(const InFlightBatch& batch);
  bool tracing() const { return tracer_ != nullptr && tracer_->enabled(); }

  int shard_bits_;
  int retry_rounds_;
  obs::Counter* rejected_unlocked_ = nullptr;
  obs::Tracer* tracer_ = nullptr;
  std::string trace_node_;
  /// account -> round of the batch locking it.
  std::unordered_map<state::AccountId, uint64_t> locks_;
  /// batch round -> in-flight state.
  std::map<uint64_t, InFlightBatch> in_flight_;
};

}  // namespace porygon::core

#endif  // PORYGON_CORE_COORDINATOR_H_
