#ifndef PORYGON_CORE_PIPELINE_H_
#define PORYGON_CORE_PIPELINE_H_

#include <cstdint>
#include <vector>

namespace porygon::core {

/// Phases of committing one batch of transactions (§IV-C1). An EC handles
/// Witness + Execution; the OC handles Ordering + Commit.
enum class Phase {
  kWitness,
  kOrdering,
  kExecution,
  kCommit,
};

const char* PhaseName(Phase phase);

/// Pure schedule arithmetic for the Fig 4 / Fig 6 pipeline. An Execution
/// Committee formed in round r:
///   round r     : Witness batch r            (W_r)
///   round r + 1 : Cross-Batch Witness r+1    (W_{r+1}, §IV-C2)
///   round r + 2 : Execute batch r            (E_r)
/// and then expires. The OC, each round r, orders batch r-1, aggregates
/// execution results of batch r-3, and commits.
class PipelineSchedule {
 public:
  explicit PipelineSchedule(int ec_lifetime_rounds = 3)
      : lifetime_(ec_lifetime_rounds) {}

  int ec_lifetime() const { return lifetime_; }

  /// Round in which the EC formed at `formed_round` executes its batch.
  uint64_t ExecutionRound(uint64_t formed_round) const {
    return formed_round + 2;
  }

  /// True iff the EC formed at `formed_round` is still alive in `round`.
  bool IsAlive(uint64_t formed_round, uint64_t round) const {
    return round >= formed_round &&
           round < formed_round + static_cast<uint64_t>(lifetime_);
  }

  /// Number of concurrently live ECs (pipeline width); 3 in the paper.
  int ConcurrentCommittees() const { return lifetime_; }

  /// Batches witnessed by the EC formed at `formed_round` (its own round's
  /// batch plus the cross-batch round).
  std::vector<uint64_t> WitnessBatches(uint64_t formed_round) const {
    return {formed_round, formed_round + 1};
  }

  /// Commit round of an intra-shard transaction witnessed in round i
  /// (i + 3, §IV-D2: "intra-shard transactions witnessed in round i are
  /// finally committed in round (i+3)").
  uint64_t IntraShardCommitRound(uint64_t witnessed_round) const {
    return witnessed_round + 3;
  }

  /// Commit round of a cross-shard transaction witnessed in round i (i + 5).
  uint64_t CrossShardCommitRound(uint64_t witnessed_round) const {
    return witnessed_round + 5;
  }

 private:
  int lifetime_;
};

}  // namespace porygon::core

#endif  // PORYGON_CORE_PIPELINE_H_
