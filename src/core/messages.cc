#include "core/messages.h"

#include <cstring>

#include "common/codec.h"
#include "common/wire.h"
#include "crypto/sha256.h"

namespace porygon::core {

namespace {
void PutHash(Encoder* enc, const crypto::Hash256& h) {
  enc->PutFixed(ByteView(h.data(), h.size()));
}
Result<crypto::Hash256> GetHash(Decoder* dec) {
  PORYGON_ASSIGN_OR_RETURN(Bytes raw, dec->GetFixed(32));
  crypto::Hash256 h;
  std::memcpy(h.data(), raw.data(), 32);
  return h;
}
void PutKey(Encoder* enc, const crypto::PublicKey& k) {
  enc->PutFixed(ByteView(k.data(), k.size()));
}
Result<crypto::PublicKey> GetKey(Decoder* dec) {
  PORYGON_ASSIGN_OR_RETURN(Bytes raw, dec->GetFixed(32));
  crypto::PublicKey k;
  std::memcpy(k.data(), raw.data(), 32);
  return k;
}
void PutSig(Encoder* enc, const crypto::Signature& s) {
  enc->PutFixed(ByteView(s.data(), s.size()));
}
Result<crypto::Signature> GetSig(Decoder* dec) {
  PORYGON_ASSIGN_OR_RETURN(Bytes raw, dec->GetFixed(64));
  crypto::Signature s;
  std::memcpy(s.data(), raw.data(), 64);
  return s;
}
// State updates are varint-coded: typical entries (20-bit accounts, sub-2^32
// balances, tiny nonces) cost ~8 bytes instead of 24 — these lists dominate
// the exec-result fan-in to the OC and the update lists in proposal blocks.
void PutUpdate(Encoder* enc, const tx::StateUpdate& u) {
  enc->PutVarint(u.account);
  enc->PutVarint(u.value.balance);
  enc->PutVarint(u.value.nonce);
}
Result<tx::StateUpdate> GetUpdate(Decoder* dec) {
  tx::StateUpdate u;
  PORYGON_ASSIGN_OR_RETURN(u.account, dec->GetVarint());
  PORYGON_ASSIGN_OR_RETURN(u.value.balance, dec->GetVarint());
  PORYGON_ASSIGN_OR_RETURN(u.value.nonce, dec->GetVarint());
  return u;
}
}  // namespace

int PhaseOfKind(uint16_t kind) {
  switch (kind) {
    case kMsgTxBlock:
    case kMsgWitnessUpload:
      return 0;  // Witness.
    case kMsgWitnessBundle:
    case kMsgProposal:
    case kMsgVote:
      return 1;  // Ordering.
    case kMsgExecRequest:
    case kMsgStateRequest:
    case kMsgStateResponse:
    case kMsgExecResult:
      return 2;  // Execution.
    case kMsgCommit:
    case kMsgNewRound:
      return 3;  // Commit.
    default:
      return -1;
  }
}

const char* MsgKindName(uint16_t kind) {
  switch (kind) {
    case kMsgSubmitTx: return "submit_tx";
    case kMsgTxBlock: return "tx_block";
    case kMsgWitnessUpload: return "witness_upload";
    case kMsgWitnessBundle: return "witness_bundle";
    case kMsgRelay: return "relay";
    case kMsgProposal: return "proposal";
    case kMsgVote: return "vote";
    case kMsgExecRequest: return "exec_request";
    case kMsgStateRequest: return "state_request";
    case kMsgStateResponse: return "state_response";
    case kMsgExecResult: return "exec_result";
    case kMsgCommit: return "commit";
    case kMsgNewRound: return "new_round";
    case kMsgRoleAnnounce: return "role_announce";
    case kMsgGossip: return "gossip";
    case kMsgResync: return "resync";
    default: return "unknown";
  }
}

const char* PhaseLabelName(int phase) {
  switch (phase) {
    case 0: return "witness";
    case 1: return "ordering";
    case 2: return "execution";
    case 3: return "commit";
    default: return "other";
  }
}

Bytes RoleAnnounce::Encode() const {
  return wire::Writer()
      .U64(round)
      .U8(role)
      .U32(shard)
      .F64(sortition)
      .Array(node_key)
      .Array(proof.proof)
      .Array(proof.output)
      .U32(node_id)
      .Take();
}

Result<RoleAnnounce> RoleAnnounce::Decode(ByteView data) {
  RoleAnnounce a;
  wire::Reader r(data);
  r.U64(&a.round)
      .U8(&a.role)
      .U32(&a.shard)
      .F64(&a.sortition)
      .Array(&a.node_key)
      .Array(&a.proof.proof)
      .Array(&a.proof.output)
      .U32(&a.node_id);
  PORYGON_RETURN_IF_ERROR(r.Finish("announce"));
  return a;
}

Bytes ResyncRequest::Encode() const { return wire::Writer().U64(round).Take(); }

Result<ResyncRequest> ResyncRequest::Decode(ByteView data) {
  ResyncRequest req;
  wire::Reader r(data);
  r.U64(&req.round);
  PORYGON_RETURN_IF_ERROR(r.Finish("resync"));
  return req;
}

Bytes WitnessUpload::Encode() const {
  return wire::Writer()
      .U64(round)
      .U32(shard)
      .Raw(proof.Encode())
      .Take();
}

Result<WitnessUpload> WitnessUpload::Decode(ByteView data) {
  WitnessUpload w;
  Bytes rest;
  wire::Reader r(data);
  r.U64(&w.round).U32(&w.shard).Rest(&rest);
  PORYGON_RETURN_IF_ERROR(r.status());
  PORYGON_ASSIGN_OR_RETURN(w.proof, tx::WitnessProof::Decode(rest));
  return w;
}

size_t WitnessedBlock::WireSize() const {
  // Access summaries ship compressed (~6 B per transaction amortized:
  // delta-coded varint account pairs for intra-shard transactions, fuller
  // ~16 B entries only for the cross-shard ones the OC's conflict detection
  // inspects, per §IV-D2 "the OC will download states that CTx will
  // access"). The in-memory payload carries the uncompressed struct for
  // implementation convenience; the bandwidth model charges the wire
  // encoding.
  return header.WireSize() + proofs.size() * tx::WitnessProof::kWireSize +
         accesses.size() * 6;
}

Bytes WitnessedBlock::Encode() const {
  Encoder enc;
  enc.PutBytes(header.Encode());
  enc.PutVarint(proofs.size());
  for (const auto& p : proofs) enc.PutFixed(p.Encode());
  enc.PutVarint(accesses.size());
  for (const auto& a : accesses) {
    PutHash(&enc, a.id);
    enc.PutU64(a.from);
    enc.PutU64(a.to);
    enc.PutU64(a.amount);
    enc.PutU64(a.nonce);
    enc.PutU64(a.submitted_at);
  }
  return enc.TakeBuffer();
}

Result<WitnessedBlock> WitnessedBlock::Decode(ByteView data) {
  Decoder dec(data);
  WitnessedBlock b;
  PORYGON_ASSIGN_OR_RETURN(Bytes header_raw, dec.GetBytes());
  PORYGON_ASSIGN_OR_RETURN(b.header,
                           tx::TransactionBlockHeader::Decode(header_raw));
  PORYGON_ASSIGN_OR_RETURN(uint64_t n_proofs, dec.GetVarint());
  for (uint64_t i = 0; i < n_proofs; ++i) {
    PORYGON_ASSIGN_OR_RETURN(Bytes raw, dec.GetFixed(32 + 32 + 64));
    PORYGON_ASSIGN_OR_RETURN(auto proof, tx::WitnessProof::Decode(raw));
    b.proofs.push_back(std::move(proof));
  }
  PORYGON_ASSIGN_OR_RETURN(uint64_t n_access, dec.GetVarint());
  for (uint64_t i = 0; i < n_access; ++i) {
    TxAccess a;
    PORYGON_ASSIGN_OR_RETURN(a.id, GetHash(&dec));
    PORYGON_ASSIGN_OR_RETURN(a.from, dec.GetU64());
    PORYGON_ASSIGN_OR_RETURN(a.to, dec.GetU64());
    PORYGON_ASSIGN_OR_RETURN(a.amount, dec.GetU64());
    PORYGON_ASSIGN_OR_RETURN(a.nonce, dec.GetU64());
    PORYGON_ASSIGN_OR_RETURN(a.submitted_at, dec.GetU64());
    b.accesses.push_back(a);
  }
  if (!dec.Done()) return Status::Corruption("trailing witnessed-block bytes");
  return b;
}

size_t WitnessBundle::WireSize() const {
  size_t total = 8;
  for (const auto& b : blocks) total += b.WireSize();
  return total;
}

Bytes WitnessBundle::Encode() const {
  Encoder enc;
  enc.PutU64(batch_round);
  enc.PutVarint(blocks.size());
  for (const auto& b : blocks) enc.PutBytes(b.Encode());
  return enc.TakeBuffer();
}

Result<WitnessBundle> WitnessBundle::Decode(ByteView data) {
  Decoder dec(data);
  WitnessBundle w;
  PORYGON_ASSIGN_OR_RETURN(w.batch_round, dec.GetU64());
  PORYGON_ASSIGN_OR_RETURN(uint64_t n, dec.GetVarint());
  for (uint64_t i = 0; i < n; ++i) {
    PORYGON_ASSIGN_OR_RETURN(Bytes raw, dec.GetBytes());
    PORYGON_ASSIGN_OR_RETURN(auto block, WitnessedBlock::Decode(raw));
    w.blocks.push_back(std::move(block));
  }
  if (!dec.Done()) return Status::Corruption("trailing bundle bytes");
  return w;
}

Bytes ExecRequest::Encode() const {
  Encoder enc;
  enc.PutU64(round);
  enc.PutU32(shard);
  enc.PutVarint(block_ids.size());
  for (const auto& id : block_ids) PutHash(&enc, id);
  enc.PutVarint(updates.size());
  for (const auto& u : updates) PutUpdate(&enc, u);
  enc.PutVarint(discarded.size());
  for (const auto& id : discarded) PutHash(&enc, id);
  PutHash(&enc, shard_root);
  enc.PutVarint(all_roots.size());
  for (const auto& root : all_roots) PutHash(&enc, root);
  enc.PutVarint(members.size());
  for (auto m : members) enc.PutU32(m);
  return enc.TakeBuffer();
}

Result<ExecRequest> ExecRequest::Decode(ByteView data) {
  Decoder dec(data);
  ExecRequest r;
  PORYGON_ASSIGN_OR_RETURN(r.round, dec.GetU64());
  PORYGON_ASSIGN_OR_RETURN(r.shard, dec.GetU32());
  PORYGON_ASSIGN_OR_RETURN(uint64_t n_blocks, dec.GetVarint());
  for (uint64_t i = 0; i < n_blocks; ++i) {
    PORYGON_ASSIGN_OR_RETURN(auto id, GetHash(&dec));
    r.block_ids.push_back(id);
  }
  PORYGON_ASSIGN_OR_RETURN(uint64_t n_updates, dec.GetVarint());
  for (uint64_t i = 0; i < n_updates; ++i) {
    PORYGON_ASSIGN_OR_RETURN(auto u, GetUpdate(&dec));
    r.updates.push_back(u);
  }
  PORYGON_ASSIGN_OR_RETURN(uint64_t n_disc, dec.GetVarint());
  for (uint64_t i = 0; i < n_disc; ++i) {
    PORYGON_ASSIGN_OR_RETURN(auto id, GetHash(&dec));
    r.discarded.push_back(id);
  }
  PORYGON_ASSIGN_OR_RETURN(r.shard_root, GetHash(&dec));
  PORYGON_ASSIGN_OR_RETURN(uint64_t n_roots, dec.GetVarint());
  r.all_roots.resize(n_roots);
  for (auto& root : r.all_roots) {
    PORYGON_ASSIGN_OR_RETURN(root, GetHash(&dec));
  }
  PORYGON_ASSIGN_OR_RETURN(uint64_t n_members, dec.GetVarint());
  r.members.resize(n_members);
  for (auto& m : r.members) {
    PORYGON_ASSIGN_OR_RETURN(m, dec.GetU32());
  }
  if (!dec.Done()) return Status::Corruption("trailing exec-request bytes");
  return r;
}

Bytes StateRequest::Encode() const {
  Encoder enc;
  enc.PutU64(round);
  enc.PutU32(shard);
  enc.PutVarint(accounts.size());
  for (auto a : accounts) enc.PutU64(a);
  return enc.TakeBuffer();
}

Result<StateRequest> StateRequest::Decode(ByteView data) {
  Decoder dec(data);
  StateRequest r;
  PORYGON_ASSIGN_OR_RETURN(r.round, dec.GetU64());
  PORYGON_ASSIGN_OR_RETURN(r.shard, dec.GetU32());
  PORYGON_ASSIGN_OR_RETURN(uint64_t n, dec.GetVarint());
  for (uint64_t i = 0; i < n; ++i) {
    PORYGON_ASSIGN_OR_RETURN(uint64_t a, dec.GetU64());
    r.accounts.push_back(a);
  }
  if (!dec.Done()) return Status::Corruption("trailing state-request bytes");
  return r;
}

size_t StateResponse::WireSize() const {
  return 12 + entries.size() * 17 + proof_bytes;
}

Bytes StateResponse::Encode() const {
  Encoder enc;
  enc.PutU64(round);
  enc.PutU32(shard);
  enc.PutVarint(entries.size());
  for (const auto& e : entries) {
    enc.PutU64(e.account);
    enc.PutBool(e.present);
    enc.PutU64(e.value.balance);
    enc.PutU64(e.value.nonce);
  }
  enc.PutU64(proof_bytes);
  enc.PutVarint(proofs.size());
  for (const auto& p : proofs) enc.PutBytes(p);
  return enc.TakeBuffer();
}

Result<StateResponse> StateResponse::Decode(ByteView data) {
  Decoder dec(data);
  StateResponse r;
  PORYGON_ASSIGN_OR_RETURN(r.round, dec.GetU64());
  PORYGON_ASSIGN_OR_RETURN(r.shard, dec.GetU32());
  PORYGON_ASSIGN_OR_RETURN(uint64_t n, dec.GetVarint());
  for (uint64_t i = 0; i < n; ++i) {
    Entry e;
    PORYGON_ASSIGN_OR_RETURN(e.account, dec.GetU64());
    PORYGON_ASSIGN_OR_RETURN(e.present, dec.GetBool());
    PORYGON_ASSIGN_OR_RETURN(e.value.balance, dec.GetU64());
    PORYGON_ASSIGN_OR_RETURN(e.value.nonce, dec.GetU64());
    r.entries.push_back(e);
  }
  PORYGON_ASSIGN_OR_RETURN(r.proof_bytes, dec.GetU64());
  PORYGON_ASSIGN_OR_RETURN(uint64_t n_proofs, dec.GetVarint());
  for (uint64_t i = 0; i < n_proofs; ++i) {
    PORYGON_ASSIGN_OR_RETURN(Bytes p, dec.GetBytes());
    r.proofs.push_back(std::move(p));
  }
  if (!dec.Done()) return Status::Corruption("trailing state-response bytes");
  return r;
}

crypto::Hash256 ExecResultMsg::HashSSet(
    const std::vector<tx::StateUpdate>& s) {
  Encoder enc;
  enc.PutVarint(s.size());
  for (const auto& u : s) PutUpdate(&enc, u);
  return crypto::Sha256::Hash(enc.buffer());
}

Bytes ExecResultMsg::SigningBytes() const {
  Encoder enc;
  enc.PutString("porygon.exec-result");
  enc.PutU64(exec_round);
  enc.PutU32(shard);
  PutHash(&enc, new_root);
  PutHash(&enc, s_hash);
  enc.PutU32(intra_applied);
  enc.PutU32(cross_pre_executed);
  return enc.TakeBuffer();
}

Bytes ExecResultMsg::Encode() const {
  Encoder enc;
  enc.PutU64(exec_round);
  enc.PutU32(shard);
  PutHash(&enc, new_root);
  PutHash(&enc, s_hash);
  enc.PutBool(full);
  if (full) {
    enc.PutVarint(s_set.size());
    for (const auto& u : s_set) PutUpdate(&enc, u);
  }
  enc.PutU32(intra_applied);
  enc.PutU32(cross_pre_executed);
  PutKey(&enc, signer);
  PutSig(&enc, signature);
  return enc.TakeBuffer();
}

Result<ExecResultMsg> ExecResultMsg::Decode(ByteView data) {
  Decoder dec(data);
  ExecResultMsg m;
  PORYGON_ASSIGN_OR_RETURN(m.exec_round, dec.GetU64());
  PORYGON_ASSIGN_OR_RETURN(m.shard, dec.GetU32());
  PORYGON_ASSIGN_OR_RETURN(m.new_root, GetHash(&dec));
  PORYGON_ASSIGN_OR_RETURN(m.s_hash, GetHash(&dec));
  PORYGON_ASSIGN_OR_RETURN(m.full, dec.GetBool());
  if (m.full) {
    PORYGON_ASSIGN_OR_RETURN(uint64_t n, dec.GetVarint());
    for (uint64_t i = 0; i < n; ++i) {
      PORYGON_ASSIGN_OR_RETURN(auto u, GetUpdate(&dec));
      m.s_set.push_back(u);
    }
  }
  PORYGON_ASSIGN_OR_RETURN(m.intra_applied, dec.GetU32());
  PORYGON_ASSIGN_OR_RETURN(m.cross_pre_executed, dec.GetU32());
  PORYGON_ASSIGN_OR_RETURN(m.signer, GetKey(&dec));
  PORYGON_ASSIGN_OR_RETURN(m.signature, GetSig(&dec));
  if (!dec.Done()) return Status::Corruption("trailing exec-result bytes");
  return m;
}

Bytes Relay::Encode() const {
  Encoder enc;
  enc.PutU8(target);
  enc.PutU64(round);
  enc.PutU32(shard);
  enc.PutU32(dest);
  enc.PutU16(inner_kind);
  enc.PutBytes(inner);
  if (trace.trace_id != 0) {
    enc.PutU64(trace.trace_id);
    enc.PutU64(trace.parent_span);
  }
  return enc.TakeBuffer();
}

Result<Relay> Relay::Decode(ByteView data) {
  Decoder dec(data);
  Relay r;
  PORYGON_ASSIGN_OR_RETURN(r.target, dec.GetU8());
  PORYGON_ASSIGN_OR_RETURN(r.round, dec.GetU64());
  PORYGON_ASSIGN_OR_RETURN(r.shard, dec.GetU32());
  PORYGON_ASSIGN_OR_RETURN(r.dest, dec.GetU32());
  PORYGON_ASSIGN_OR_RETURN(r.inner_kind, dec.GetU16());
  PORYGON_ASSIGN_OR_RETURN(r.inner, dec.GetBytes());
  if (!dec.Done()) {
    PORYGON_ASSIGN_OR_RETURN(r.trace.trace_id, dec.GetU64());
    PORYGON_ASSIGN_OR_RETURN(r.trace.parent_span, dec.GetU64());
  }
  if (!dec.Done()) return Status::Corruption("trailing relay bytes");
  return r;
}

}  // namespace porygon::core
