#include "core/messages.h"

#include <cstring>

#include "common/codec.h"
#include "common/wire.h"
#include "crypto/sha256.h"

namespace porygon::core {

namespace {
void PutHash(Encoder* enc, const crypto::Hash256& h) {
  enc->PutFixed(ByteView(h.data(), h.size()));
}
Result<crypto::Hash256> GetHash(Decoder* dec) {
  PORYGON_ASSIGN_OR_RETURN(Bytes raw, dec->GetFixed(32));
  crypto::Hash256 h;
  std::memcpy(h.data(), raw.data(), 32);
  return h;
}
void PutKey(Encoder* enc, const crypto::PublicKey& k) {
  enc->PutFixed(ByteView(k.data(), k.size()));
}
Result<crypto::PublicKey> GetKey(Decoder* dec) {
  PORYGON_ASSIGN_OR_RETURN(Bytes raw, dec->GetFixed(32));
  crypto::PublicKey k;
  std::memcpy(k.data(), raw.data(), 32);
  return k;
}
void PutSig(Encoder* enc, const crypto::Signature& s) {
  enc->PutFixed(ByteView(s.data(), s.size()));
}
Result<crypto::Signature> GetSig(Decoder* dec) {
  PORYGON_ASSIGN_OR_RETURN(Bytes raw, dec->GetFixed(64));
  crypto::Signature s;
  std::memcpy(s.data(), raw.data(), 64);
  return s;
}
// State updates are varint-coded: typical entries (20-bit accounts, sub-2^32
// balances, tiny nonces) cost ~8 bytes instead of 24 — these lists dominate
// the exec-result fan-in to the OC and the update lists in proposal blocks.
void PutUpdate(Encoder* enc, const tx::StateUpdate& u) {
  enc->PutVarint(u.account);
  enc->PutVarint(u.value.balance);
  enc->PutVarint(u.value.nonce);
}
Result<tx::StateUpdate> GetUpdate(Decoder* dec) {
  tx::StateUpdate u;
  PORYGON_ASSIGN_OR_RETURN(u.account, dec->GetVarint());
  PORYGON_ASSIGN_OR_RETURN(u.value.balance, dec->GetVarint());
  PORYGON_ASSIGN_OR_RETURN(u.value.nonce, dec->GetVarint());
  return u;
}
// wire::Writer/Reader twins of PutUpdate/GetUpdate for the ported codecs.
void WriteUpdate(wire::Writer* w, const tx::StateUpdate& u) {
  w->Varint(u.account).Varint(u.value.balance).Varint(u.value.nonce);
}
void ReadUpdate(wire::Reader* r, tx::StateUpdate* u) {
  r->Varint(&u->account).Varint(&u->value.balance).Varint(&u->value.nonce);
}
}  // namespace

int PhaseOfKind(uint16_t kind) {
  switch (kind) {
    case kMsgTxBlock:
    case kMsgWitnessUpload:
    case kMsgBodyChunk:
      return 0;  // Witness.
    case kMsgWitnessBundle:
    case kMsgProposal:
    case kMsgVote:
    case kMsgAggWitness:
    case kMsgVoteCert:
    case kMsgDecisionCert:
      return 1;  // Ordering.
    case kMsgExecRequest:
    case kMsgStateRequest:
    case kMsgStateResponse:
    case kMsgExecResult:
    case kMsgAggExecResult:
      return 2;  // Execution.
    case kMsgCommit:
    case kMsgNewRound:
      return 3;  // Commit.
    default:
      return -1;
  }
}

const char* MsgKindName(uint16_t kind) {
  switch (kind) {
    case kMsgSubmitTx: return "submit_tx";
    case kMsgTxBlock: return "tx_block";
    case kMsgWitnessUpload: return "witness_upload";
    case kMsgWitnessBundle: return "witness_bundle";
    case kMsgRelay: return "relay";
    case kMsgProposal: return "proposal";
    case kMsgVote: return "vote";
    case kMsgExecRequest: return "exec_request";
    case kMsgStateRequest: return "state_request";
    case kMsgStateResponse: return "state_response";
    case kMsgExecResult: return "exec_result";
    case kMsgCommit: return "commit";
    case kMsgNewRound: return "new_round";
    case kMsgRoleAnnounce: return "role_announce";
    case kMsgGossip: return "gossip";
    case kMsgResync: return "resync";
    case kMsgBodyChunk: return "body_chunk";
    case kMsgAggWitness: return "agg_witness";
    case kMsgAggExecResult: return "agg_exec_result";
    case kMsgVoteCert: return "vote_cert";
    case kMsgRelayAck: return "relay_ack";
    case kMsgDecisionCert: return "decision_cert";
    default: return "unknown";
  }
}

const char* PhaseLabelName(int phase) {
  switch (phase) {
    case 0: return "witness";
    case 1: return "ordering";
    case 2: return "execution";
    case 3: return "commit";
    default: return "other";
  }
}

Bytes RoleAnnounce::Encode() const {
  return wire::Writer()
      .U64(round)
      .U8(role)
      .U32(shard)
      .F64(sortition)
      .Array(node_key)
      .Array(proof.proof)
      .Array(proof.output)
      .U32(node_id)
      .Take();
}

Result<RoleAnnounce> RoleAnnounce::Decode(ByteView data) {
  RoleAnnounce a;
  wire::Reader r(data);
  r.U64(&a.round)
      .U8(&a.role)
      .U32(&a.shard)
      .F64(&a.sortition)
      .Array(&a.node_key)
      .Array(&a.proof.proof)
      .Array(&a.proof.output)
      .U32(&a.node_id);
  PORYGON_RETURN_IF_ERROR(r.Finish("announce"));
  return a;
}

Bytes ResyncRequest::Encode() const { return wire::Writer().U64(round).Take(); }

Result<ResyncRequest> ResyncRequest::Decode(ByteView data) {
  ResyncRequest req;
  wire::Reader r(data);
  r.U64(&req.round);
  PORYGON_RETURN_IF_ERROR(r.Finish("resync"));
  return req;
}

Bytes WitnessUpload::Encode() const {
  return wire::Writer()
      .U64(round)
      .U32(shard)
      .Raw(proof.Encode())
      .Take();
}

Result<WitnessUpload> WitnessUpload::Decode(ByteView data) {
  WitnessUpload w;
  ByteView rest;
  wire::Reader r(data);
  r.U64(&w.round).U32(&w.shard).RestView(&rest);
  PORYGON_RETURN_IF_ERROR(r.status());
  PORYGON_ASSIGN_OR_RETURN(w.proof, tx::WitnessProof::Decode(rest));
  return w;
}

size_t WitnessedBlock::WireSize() const {
  // Access summaries ship compressed (~6 B per transaction amortized:
  // delta-coded varint account pairs for intra-shard transactions, fuller
  // ~16 B entries only for the cross-shard ones the OC's conflict detection
  // inspects, per §IV-D2 "the OC will download states that CTx will
  // access"). The in-memory payload carries the uncompressed struct for
  // implementation convenience; the bandwidth model charges the wire
  // encoding.
  return header.WireSize() + proofs.size() * tx::WitnessProof::kWireSize +
         accesses.size() * 6;
}

Bytes WitnessedBlock::Encode() const {
  wire::Writer w;
  w.Blob(header.Encode()).Varint(proofs.size());
  for (const auto& p : proofs) w.Raw(p.Encode());
  w.Varint(accesses.size());
  for (const auto& a : accesses) {
    w.Array(a.id)
        .U64(a.from)
        .U64(a.to)
        .U64(a.amount)
        .U64(a.nonce)
        .U64(a.submitted_at);
  }
  return w.Take();
}

Result<WitnessedBlock> WitnessedBlock::Decode(ByteView data) {
  WitnessedBlock b;
  wire::Reader r(data);
  ByteView header_raw;
  uint64_t n_proofs = 0;
  r.BlobView(&header_raw).Varint(&n_proofs);
  PORYGON_RETURN_IF_ERROR(r.status());
  PORYGON_ASSIGN_OR_RETURN(b.header,
                           tx::TransactionBlockHeader::Decode(header_raw));
  b.proofs.reserve(n_proofs);
  for (uint64_t i = 0; i < n_proofs; ++i) {
    ByteView raw;
    r.FixedView(tx::WitnessProof::kWireSize, &raw);
    PORYGON_RETURN_IF_ERROR(r.status());
    PORYGON_ASSIGN_OR_RETURN(auto proof, tx::WitnessProof::Decode(raw));
    b.proofs.push_back(std::move(proof));
  }
  uint64_t n_access = 0;
  r.Varint(&n_access);
  for (uint64_t i = 0; i < n_access; ++i) {
    TxAccess a;
    r.Array(&a.id)
        .U64(&a.from)
        .U64(&a.to)
        .U64(&a.amount)
        .U64(&a.nonce)
        .U64(&a.submitted_at);
    if (!r.status().ok()) break;
    b.accesses.push_back(a);
  }
  PORYGON_RETURN_IF_ERROR(r.Finish("witnessed-block"));
  return b;
}

size_t WitnessBundle::WireSize() const {
  size_t total = 8;
  for (const auto& b : blocks) total += b.WireSize();
  return total;
}

Bytes WitnessBundle::Encode() const {
  wire::Writer w;
  w.U64(batch_round).Varint(blocks.size());
  for (const auto& b : blocks) w.Blob(b.Encode());
  return w.Take();
}

Result<WitnessBundle> WitnessBundle::Decode(ByteView data) {
  WitnessBundle w;
  wire::Reader r(data);
  uint64_t n = 0;
  r.U64(&w.batch_round).Varint(&n);
  w.blocks.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    ByteView raw;
    r.BlobView(&raw);
    PORYGON_RETURN_IF_ERROR(r.status());
    PORYGON_ASSIGN_OR_RETURN(auto block, WitnessedBlock::Decode(raw));
    w.blocks.push_back(std::move(block));
  }
  PORYGON_RETURN_IF_ERROR(r.Finish("bundle"));
  return w;
}

Bytes ExecRequest::Encode() const {
  Encoder enc;
  enc.PutU64(round);
  enc.PutU32(shard);
  enc.PutVarint(block_ids.size());
  for (const auto& id : block_ids) PutHash(&enc, id);
  enc.PutVarint(updates.size());
  for (const auto& u : updates) PutUpdate(&enc, u);
  enc.PutVarint(discarded.size());
  for (const auto& id : discarded) PutHash(&enc, id);
  PutHash(&enc, shard_root);
  enc.PutVarint(all_roots.size());
  for (const auto& root : all_roots) PutHash(&enc, root);
  enc.PutVarint(members.size());
  for (auto m : members) enc.PutU32(m);
  return enc.TakeBuffer();
}

Result<ExecRequest> ExecRequest::Decode(ByteView data) {
  Decoder dec(data);
  ExecRequest r;
  PORYGON_ASSIGN_OR_RETURN(r.round, dec.GetU64());
  PORYGON_ASSIGN_OR_RETURN(r.shard, dec.GetU32());
  PORYGON_ASSIGN_OR_RETURN(uint64_t n_blocks, dec.GetVarint());
  for (uint64_t i = 0; i < n_blocks; ++i) {
    PORYGON_ASSIGN_OR_RETURN(auto id, GetHash(&dec));
    r.block_ids.push_back(id);
  }
  PORYGON_ASSIGN_OR_RETURN(uint64_t n_updates, dec.GetVarint());
  for (uint64_t i = 0; i < n_updates; ++i) {
    PORYGON_ASSIGN_OR_RETURN(auto u, GetUpdate(&dec));
    r.updates.push_back(u);
  }
  PORYGON_ASSIGN_OR_RETURN(uint64_t n_disc, dec.GetVarint());
  for (uint64_t i = 0; i < n_disc; ++i) {
    PORYGON_ASSIGN_OR_RETURN(auto id, GetHash(&dec));
    r.discarded.push_back(id);
  }
  PORYGON_ASSIGN_OR_RETURN(r.shard_root, GetHash(&dec));
  PORYGON_ASSIGN_OR_RETURN(uint64_t n_roots, dec.GetVarint());
  r.all_roots.resize(n_roots);
  for (auto& root : r.all_roots) {
    PORYGON_ASSIGN_OR_RETURN(root, GetHash(&dec));
  }
  PORYGON_ASSIGN_OR_RETURN(uint64_t n_members, dec.GetVarint());
  r.members.resize(n_members);
  for (auto& m : r.members) {
    PORYGON_ASSIGN_OR_RETURN(m, dec.GetU32());
  }
  if (!dec.Done()) return Status::Corruption("trailing exec-request bytes");
  return r;
}

Bytes StateRequest::Encode() const {
  Encoder enc;
  enc.PutU64(round);
  enc.PutU32(shard);
  enc.PutVarint(accounts.size());
  for (auto a : accounts) enc.PutU64(a);
  return enc.TakeBuffer();
}

Result<StateRequest> StateRequest::Decode(ByteView data) {
  Decoder dec(data);
  StateRequest r;
  PORYGON_ASSIGN_OR_RETURN(r.round, dec.GetU64());
  PORYGON_ASSIGN_OR_RETURN(r.shard, dec.GetU32());
  PORYGON_ASSIGN_OR_RETURN(uint64_t n, dec.GetVarint());
  for (uint64_t i = 0; i < n; ++i) {
    PORYGON_ASSIGN_OR_RETURN(uint64_t a, dec.GetU64());
    r.accounts.push_back(a);
  }
  if (!dec.Done()) return Status::Corruption("trailing state-request bytes");
  return r;
}

size_t StateResponse::WireSize() const {
  return 12 + entries.size() * 17 + proof_bytes;
}

Bytes StateResponse::Encode() const {
  Encoder enc;
  enc.PutU64(round);
  enc.PutU32(shard);
  enc.PutVarint(entries.size());
  for (const auto& e : entries) {
    enc.PutU64(e.account);
    enc.PutBool(e.present);
    enc.PutU64(e.value.balance);
    enc.PutU64(e.value.nonce);
  }
  enc.PutU64(proof_bytes);
  enc.PutVarint(proofs.size());
  for (const auto& p : proofs) enc.PutBytes(p);
  return enc.TakeBuffer();
}

Result<StateResponse> StateResponse::Decode(ByteView data) {
  Decoder dec(data);
  StateResponse r;
  PORYGON_ASSIGN_OR_RETURN(r.round, dec.GetU64());
  PORYGON_ASSIGN_OR_RETURN(r.shard, dec.GetU32());
  PORYGON_ASSIGN_OR_RETURN(uint64_t n, dec.GetVarint());
  for (uint64_t i = 0; i < n; ++i) {
    Entry e;
    PORYGON_ASSIGN_OR_RETURN(e.account, dec.GetU64());
    PORYGON_ASSIGN_OR_RETURN(e.present, dec.GetBool());
    PORYGON_ASSIGN_OR_RETURN(e.value.balance, dec.GetU64());
    PORYGON_ASSIGN_OR_RETURN(e.value.nonce, dec.GetU64());
    r.entries.push_back(e);
  }
  PORYGON_ASSIGN_OR_RETURN(r.proof_bytes, dec.GetU64());
  PORYGON_ASSIGN_OR_RETURN(uint64_t n_proofs, dec.GetVarint());
  for (uint64_t i = 0; i < n_proofs; ++i) {
    PORYGON_ASSIGN_OR_RETURN(Bytes p, dec.GetBytes());
    r.proofs.push_back(std::move(p));
  }
  if (!dec.Done()) return Status::Corruption("trailing state-response bytes");
  return r;
}

crypto::Hash256 ExecResultMsg::HashSSet(
    const std::vector<tx::StateUpdate>& s) {
  Encoder enc;
  enc.PutVarint(s.size());
  for (const auto& u : s) PutUpdate(&enc, u);
  return crypto::Sha256::Hash(enc.buffer());
}

Bytes ExecResultMsg::SigningBytes() const {
  return wire::Writer()
      .Str("porygon.exec-result")
      .U64(exec_round)
      .U32(shard)
      .Array(new_root)
      .Array(s_hash)
      .U32(intra_applied)
      .U32(cross_pre_executed)
      .Take();
}

Bytes ExecResultMsg::Encode() const {
  wire::Writer w;
  w.U64(exec_round)
      .U32(shard)
      .Array(new_root)
      .Array(s_hash)
      .Bool(full);
  if (full) {
    w.Varint(s_set.size());
    for (const auto& u : s_set) WriteUpdate(&w, u);
  }
  w.U32(intra_applied)
      .U32(cross_pre_executed)
      .Array(signer)
      .Array(signature);
  return w.Take();
}

Result<ExecResultMsg> ExecResultMsg::Decode(ByteView data) {
  ExecResultMsg m;
  wire::Reader r(data);
  r.U64(&m.exec_round)
      .U32(&m.shard)
      .Array(&m.new_root)
      .Array(&m.s_hash)
      .Bool(&m.full);
  if (m.full && r.status().ok()) {
    uint64_t n = 0;
    r.Varint(&n);
    m.s_set.reserve(n);
    for (uint64_t i = 0; i < n; ++i) {
      tx::StateUpdate u;
      ReadUpdate(&r, &u);
      if (!r.status().ok()) break;
      m.s_set.push_back(u);
    }
  }
  r.U32(&m.intra_applied)
      .U32(&m.cross_pre_executed)
      .Array(&m.signer)
      .Array(&m.signature);
  PORYGON_RETURN_IF_ERROR(r.Finish("exec-result"));
  return m;
}

Bytes Relay::Encode() const {
  Encoder enc;
  enc.PutU8(target);
  enc.PutU64(round);
  enc.PutU32(shard);
  enc.PutU32(dest);
  enc.PutU16(inner_kind);
  enc.PutBytes(inner);
  if (trace.trace_id != 0) {
    enc.PutU64(trace.trace_id);
    enc.PutU64(trace.parent_span);
  }
  return enc.TakeBuffer();
}

Result<Relay> Relay::Decode(ByteView data) {
  Decoder dec(data);
  Relay r;
  PORYGON_ASSIGN_OR_RETURN(r.target, dec.GetU8());
  PORYGON_ASSIGN_OR_RETURN(r.round, dec.GetU64());
  PORYGON_ASSIGN_OR_RETURN(r.shard, dec.GetU32());
  PORYGON_ASSIGN_OR_RETURN(r.dest, dec.GetU32());
  PORYGON_ASSIGN_OR_RETURN(r.inner_kind, dec.GetU16());
  PORYGON_ASSIGN_OR_RETURN(r.inner, dec.GetBytes());
  if (!dec.Done()) {
    PORYGON_ASSIGN_OR_RETURN(r.trace.trace_id, dec.GetU64());
    PORYGON_ASSIGN_OR_RETURN(r.trace.parent_span, dec.GetU64());
  }
  if (!dec.Done()) return Status::Corruption("trailing relay bytes");
  return r;
}

size_t BodyChunk::WireSize() const {
  // Fixed fields + member roster + the chunk payload itself.
  return 22 + header.WireSize() + 4 * peers.size() + payload.size();
}

Bytes BodyChunk::Encode() const {
  wire::Writer w;
  w.U64(round)
      .U32(shard)
      .Blob(header.Encode())
      .U16(index)
      .U16(k)
      .U16(n)
      .Varint(peers.size());
  for (net::NodeId p : peers) w.U32(p);
  w.Blob(payload);
  return w.Take();
}

Result<BodyChunk> BodyChunk::Decode(ByteView data) {
  BodyChunk c;
  wire::Reader r(data);
  ByteView header_raw;
  r.U64(&c.round).U32(&c.shard).BlobView(&header_raw);
  PORYGON_RETURN_IF_ERROR(r.status());
  PORYGON_ASSIGN_OR_RETURN(c.header,
                           tx::TransactionBlockHeader::Decode(header_raw));
  uint64_t n_peers = 0;
  r.U16(&c.index).U16(&c.k).U16(&c.n).Varint(&n_peers);
  if (r.status().ok()) c.peers.reserve(n_peers);
  for (uint64_t i = 0; i < n_peers; ++i) {
    net::NodeId p = net::kInvalidNode;
    r.U32(&p);
    if (!r.status().ok()) break;
    c.peers.push_back(p);
  }
  r.Blob(&c.payload);
  PORYGON_RETURN_IF_ERROR(r.Finish("body-chunk"));
  return c;
}

size_t AggregatedWitness::WireSize() const {
  // Same compressed-access model as WitnessBundle: the aggregate replaces m
  // per-storage bundles with one deduplicated copy, so it must be charged
  // with the identical per-block cost model.
  size_t total = 16;
  for (const auto& b : blocks) total += b.WireSize();
  return total;
}

Bytes AggregatedWitness::Encode() const {
  wire::Writer w;
  w.U64(batch_round).U32(shard).U32(aggregator).Varint(blocks.size());
  for (const auto& b : blocks) w.Blob(b.Encode());
  return w.Take();
}

Result<AggregatedWitness> AggregatedWitness::Decode(ByteView data) {
  AggregatedWitness a;
  wire::Reader r(data);
  uint64_t n = 0;
  r.U64(&a.batch_round).U32(&a.shard).U32(&a.aggregator).Varint(&n);
  a.blocks.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    ByteView raw;
    r.BlobView(&raw);
    PORYGON_RETURN_IF_ERROR(r.status());
    PORYGON_ASSIGN_OR_RETURN(auto block, WitnessedBlock::Decode(raw));
    a.blocks.push_back(std::move(block));
  }
  PORYGON_RETURN_IF_ERROR(r.Finish("agg-witness"));
  return a;
}

Bytes AggregatedExecResult::MemberSigningBytes() const {
  ExecResultMsg m;
  m.exec_round = exec_round;
  m.shard = shard;
  m.new_root = new_root;
  m.s_hash = s_hash;
  m.intra_applied = intra_applied;
  m.cross_pre_executed = cross_pre_executed;
  return m.SigningBytes();
}

size_t AggregatedExecResult::WireSize() const {
  // Fixed fields + varint-coded S set (modeled at the same ~8 B/update as
  // the exec-result path) + one 96-byte attestation pair per member.
  return 90 + (has_payload ? 8 * s_set.size() : 0) + 96 * signers.size();
}

Bytes AggregatedExecResult::Encode() const {
  wire::Writer w;
  w.U64(exec_round)
      .U32(shard)
      .Array(new_root)
      .Array(s_hash)
      .U32(intra_applied)
      .U32(cross_pre_executed)
      .Bool(has_payload);
  if (has_payload) {
    w.Varint(s_set.size());
    for (const auto& u : s_set) WriteUpdate(&w, u);
  }
  w.U32(aggregator).Varint(signers.size());
  for (size_t i = 0; i < signers.size(); ++i) {
    w.Array(signers[i]).Array(signatures[i]);
  }
  return w.Take();
}

Result<AggregatedExecResult> AggregatedExecResult::Decode(ByteView data) {
  AggregatedExecResult a;
  wire::Reader r(data);
  r.U64(&a.exec_round)
      .U32(&a.shard)
      .Array(&a.new_root)
      .Array(&a.s_hash)
      .U32(&a.intra_applied)
      .U32(&a.cross_pre_executed)
      .Bool(&a.has_payload);
  if (a.has_payload && r.status().ok()) {
    uint64_t n = 0;
    r.Varint(&n);
    a.s_set.reserve(n);
    for (uint64_t i = 0; i < n; ++i) {
      tx::StateUpdate u;
      ReadUpdate(&r, &u);
      if (!r.status().ok()) break;
      a.s_set.push_back(u);
    }
  }
  uint64_t n_signers = 0;
  r.U32(&a.aggregator).Varint(&n_signers);
  if (r.status().ok()) {
    a.signers.reserve(n_signers);
    a.signatures.reserve(n_signers);
  }
  for (uint64_t i = 0; i < n_signers; ++i) {
    crypto::PublicKey key{};
    crypto::Signature sig{};
    r.Array(&key).Array(&sig);
    if (!r.status().ok()) break;
    a.signers.push_back(key);
    a.signatures.push_back(sig);
  }
  PORYGON_RETURN_IF_ERROR(r.Finish("agg-exec-result"));
  return a;
}

std::vector<consensus::Vote> CompactVoteCert::ToVotes(
    const std::vector<crypto::PublicKey>& committee) const {
  std::vector<consensus::Vote> votes;
  size_t sig_idx = 0;
  for (size_t i = 0; i < 64; ++i) {
    if (!(bitmap & (uint64_t{1} << i))) continue;
    // A bit past the committee or beyond the signature list makes the whole
    // cert malformed — return nothing rather than a partial vote set.
    if (i >= committee.size() || sig_idx >= signatures.size()) return {};
    consensus::Vote v;
    v.instance = instance;
    v.step = step;
    v.kind = kind;
    v.value = value;
    v.voter = committee[i];
    v.signature = signatures[sig_idx++];
    votes.push_back(v);
  }
  if (sig_idx != signatures.size()) return {};  // Unclaimed signatures.
  return votes;
}

size_t CompactVoteCert::WireSize() const {
  return 54 + 64 * signatures.size();
}

Bytes CompactVoteCert::Encode() const {
  wire::Writer w;
  w.U64(instance)
      .U32(step)
      .U8(kind)
      .Array(value)
      .U64(bitmap)
      .Varint(signatures.size());
  for (const auto& s : signatures) w.Array(s);
  return w.Take();
}

Result<CompactVoteCert> CompactVoteCert::Decode(ByteView data) {
  CompactVoteCert c;
  wire::Reader r(data);
  uint64_t n = 0;
  r.U64(&c.instance)
      .U32(&c.step)
      .U8(&c.kind)
      .Array(&c.value)
      .U64(&c.bitmap)
      .Varint(&n);
  if (r.status().ok()) c.signatures.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    crypto::Signature sig{};
    r.Array(&sig);
    if (!r.status().ok()) break;
    c.signatures.push_back(sig);
  }
  PORYGON_RETURN_IF_ERROR(r.Finish("vote-cert"));
  return c;
}

Bytes RelayAck::Encode() const {
  return wire::Writer().U64(round).Array(digest).Take();
}

Result<RelayAck> RelayAck::Decode(ByteView data) {
  RelayAck a;
  wire::Reader r(data);
  r.U64(&a.round).Array(&a.digest);
  PORYGON_RETURN_IF_ERROR(r.Finish("relay-ack"));
  return a;
}

}  // namespace porygon::core
