#include "core/pipeline.h"

namespace porygon::core {

const char* PhaseName(Phase phase) {
  switch (phase) {
    case Phase::kWitness:
      return "Witness";
    case Phase::kOrdering:
      return "Ordering";
    case Phase::kExecution:
      return "Execution";
    case Phase::kCommit:
      return "Commit";
  }
  return "?";
}

}  // namespace porygon::core
