#include "common/crc32.h"

namespace porygon {

namespace {
constexpr uint32_t kPoly = 0x82F63B78;  // Reflected CRC-32C polynomial.

struct Table {
  uint32_t t[256];
  Table() {
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? (kPoly ^ (c >> 1)) : (c >> 1);
      }
      t[i] = c;
    }
  }
};

const uint32_t* CrcTable() {
  static const Table kTable;
  return kTable.t;
}
}  // namespace

uint32_t Crc32cExtend(uint32_t crc, ByteView data) {
  const uint32_t* table = CrcTable();
  crc = ~crc;
  for (uint8_t b : data) {
    crc = table[(crc ^ b) & 0xFF] ^ (crc >> 8);
  }
  return ~crc;
}

uint32_t Crc32c(ByteView data) { return Crc32cExtend(0, data); }

uint32_t Crc32cMask(uint32_t crc) {
  return ((crc >> 15) | (crc << 17)) + 0xa282ead8u;
}

uint32_t Crc32cUnmask(uint32_t masked) {
  uint32_t rot = masked - 0xa282ead8u;
  return (rot >> 17) | (rot << 15);
}

}  // namespace porygon
