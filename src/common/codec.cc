#include "common/codec.h"

namespace porygon {

void Encoder::PutU16(uint16_t v) {
  buf_.push_back(static_cast<uint8_t>(v));
  buf_.push_back(static_cast<uint8_t>(v >> 8));
}

void Encoder::PutU32(uint32_t v) {
  size_t n = buf_.size();
  buf_.resize(n + 4);
  StoreLittleEndian32(buf_.data() + n, v);
}

void Encoder::PutU64(uint64_t v) {
  size_t n = buf_.size();
  buf_.resize(n + 8);
  StoreLittleEndian64(buf_.data() + n, v);
}

void Encoder::PutVarint(uint64_t v) {
  while (v >= 0x80) {
    buf_.push_back(static_cast<uint8_t>(v) | 0x80);
    v >>= 7;
  }
  buf_.push_back(static_cast<uint8_t>(v));
}

void Encoder::PutBytes(ByteView data) {
  PutVarint(data.size());
  buf_.insert(buf_.end(), data.begin(), data.end());
}

void Encoder::PutFixed(ByteView data) {
  buf_.insert(buf_.end(), data.begin(), data.end());
}

Result<uint8_t> Decoder::GetU8() {
  if (data_.size() < 1) return Status::Corruption("truncated u8");
  uint8_t v = data_[0];
  data_.RemovePrefix(1);
  return v;
}

Result<uint16_t> Decoder::GetU16() {
  if (data_.size() < 2) return Status::Corruption("truncated u16");
  uint16_t v = static_cast<uint16_t>(data_[0]) |
               static_cast<uint16_t>(data_[1]) << 8;
  data_.RemovePrefix(2);
  return v;
}

Result<uint32_t> Decoder::GetU32() {
  if (data_.size() < 4) return Status::Corruption("truncated u32");
  uint32_t v = LoadLittleEndian32(data_.data());
  data_.RemovePrefix(4);
  return v;
}

Result<uint64_t> Decoder::GetU64() {
  if (data_.size() < 8) return Status::Corruption("truncated u64");
  uint64_t v = LoadLittleEndian64(data_.data());
  data_.RemovePrefix(8);
  return v;
}

Result<uint64_t> Decoder::GetVarint() {
  uint64_t v = 0;
  int shift = 0;
  for (size_t i = 0; i < data_.size(); ++i) {
    uint8_t b = data_[i];
    if (shift >= 64 || (shift == 63 && (b & 0x7F) > 1)) {
      return Status::Corruption("varint overflow");
    }
    v |= uint64_t{static_cast<uint8_t>(b & 0x7F)} << shift;
    if ((b & 0x80) == 0) {
      data_.RemovePrefix(i + 1);
      return v;
    }
    shift += 7;
  }
  return Status::Corruption("truncated varint");
}

Result<Bytes> Decoder::GetBytes() {
  PORYGON_ASSIGN_OR_RETURN(uint64_t n, GetVarint());
  return GetFixed(n);
}

Result<Bytes> Decoder::GetFixed(size_t n) {
  if (data_.size() < n) return Status::Corruption("truncated byte block");
  Bytes out(data_.data(), data_.data() + n);
  data_.RemovePrefix(n);
  return out;
}

Result<ByteView> Decoder::GetBytesView() {
  PORYGON_ASSIGN_OR_RETURN(uint64_t n, GetVarint());
  return GetFixedView(n);
}

Result<ByteView> Decoder::GetFixedView(size_t n) {
  if (data_.size() < n) return Status::Corruption("truncated byte block");
  ByteView out(data_.data(), n);
  data_.RemovePrefix(n);
  return out;
}

Result<std::string> Decoder::GetString() {
  PORYGON_ASSIGN_OR_RETURN(Bytes b, GetBytes());
  return std::string(b.begin(), b.end());
}

Result<bool> Decoder::GetBool() {
  PORYGON_ASSIGN_OR_RETURN(uint8_t v, GetU8());
  if (v > 1) return Status::Corruption("invalid bool");
  return v == 1;
}

size_t VarintLength(uint64_t v) {
  size_t n = 1;
  while (v >= 0x80) {
    v >>= 7;
    ++n;
  }
  return n;
}

}  // namespace porygon
