#ifndef PORYGON_COMMON_BYTES_H_
#define PORYGON_COMMON_BYTES_H_

#include <array>
#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace porygon {

/// Raw byte buffer used throughout the library for wire formats and keys.
using Bytes = std::vector<uint8_t>;

/// Non-owning view of a byte range (analogous to rocksdb::Slice).
class ByteView {
 public:
  constexpr ByteView() : data_(nullptr), size_(0) {}
  constexpr ByteView(const uint8_t* data, size_t size)
      : data_(data), size_(size) {}
  ByteView(const Bytes& b) : data_(b.data()), size_(b.size()) {}  // NOLINT
  ByteView(std::string_view s)  // NOLINT
      : data_(reinterpret_cast<const uint8_t*>(s.data())), size_(s.size()) {}
  template <size_t N>
  ByteView(const std::array<uint8_t, N>& a)  // NOLINT
      : data_(a.data()), size_(N) {}

  const uint8_t* data() const { return data_; }
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  const uint8_t* begin() const { return data_; }
  const uint8_t* end() const { return data_ + size_; }
  uint8_t operator[](size_t i) const { return data_[i]; }

  /// Drops the first `n` bytes from the view.
  void RemovePrefix(size_t n) {
    data_ += n;
    size_ -= n;
  }

  Bytes ToBytes() const { return Bytes(data_, data_ + size_); }
  std::string ToString() const {
    return std::string(reinterpret_cast<const char*>(data_), size_);
  }

  /// Lexicographic three-way comparison.
  int Compare(ByteView other) const;

 private:
  const uint8_t* data_;
  size_t size_;
};

bool operator==(ByteView a, ByteView b);
inline bool operator!=(ByteView a, ByteView b) { return !(a == b); }
inline bool operator<(ByteView a, ByteView b) { return a.Compare(b) < 0; }

/// Encodes `data` as lowercase hex.
std::string HexEncode(ByteView data);

/// Decodes a hex string (case-insensitive). Fails on odd length or non-hex
/// characters.
Result<Bytes> HexDecode(std::string_view hex);

/// Converts an arbitrary string to bytes (no copy avoidance; convenience for
/// tests and examples).
inline Bytes ToBytes(std::string_view s) {
  return Bytes(s.begin(), s.end());
}

/// Fixed-width big-endian load/store helpers (used by hash functions and the
/// SSTable format).
inline uint32_t LoadBigEndian32(const uint8_t* p) {
  return (uint32_t{p[0]} << 24) | (uint32_t{p[1]} << 16) |
         (uint32_t{p[2]} << 8) | uint32_t{p[3]};
}
inline uint64_t LoadBigEndian64(const uint8_t* p) {
  return (uint64_t{LoadBigEndian32(p)} << 32) | LoadBigEndian32(p + 4);
}
inline void StoreBigEndian32(uint8_t* p, uint32_t v) {
  p[0] = static_cast<uint8_t>(v >> 24);
  p[1] = static_cast<uint8_t>(v >> 16);
  p[2] = static_cast<uint8_t>(v >> 8);
  p[3] = static_cast<uint8_t>(v);
}
inline void StoreBigEndian64(uint8_t* p, uint64_t v) {
  StoreBigEndian32(p, static_cast<uint32_t>(v >> 32));
  StoreBigEndian32(p + 4, static_cast<uint32_t>(v));
}
inline uint32_t LoadLittleEndian32(const uint8_t* p) {
  return uint32_t{p[0]} | (uint32_t{p[1]} << 8) | (uint32_t{p[2]} << 16) |
         (uint32_t{p[3]} << 24);
}
inline uint64_t LoadLittleEndian64(const uint8_t* p) {
  return uint64_t{LoadLittleEndian32(p)} |
         (uint64_t{LoadLittleEndian32(p + 4)} << 32);
}
inline void StoreLittleEndian32(uint8_t* p, uint32_t v) {
  p[0] = static_cast<uint8_t>(v);
  p[1] = static_cast<uint8_t>(v >> 8);
  p[2] = static_cast<uint8_t>(v >> 16);
  p[3] = static_cast<uint8_t>(v >> 24);
}
inline void StoreLittleEndian64(uint8_t* p, uint64_t v) {
  StoreLittleEndian32(p, static_cast<uint32_t>(v));
  StoreLittleEndian32(p + 4, static_cast<uint32_t>(v >> 32));
}

}  // namespace porygon

#endif  // PORYGON_COMMON_BYTES_H_
