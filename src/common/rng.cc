#include "common/rng.h"

#include <cmath>

namespace porygon {

namespace {
uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(&sm);
}

uint64_t Rng::NextU64() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::NextBelow(uint64_t bound) {
  // Lemire's method: multiply-shift with rejection in the biased zone.
  uint64_t x = NextU64();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  uint64_t low = static_cast<uint64_t>(m);
  if (low < bound) {
    uint64_t threshold = -bound % bound;
    while (low < threshold) {
      x = NextU64();
      m = static_cast<__uint128_t>(x) * bound;
      low = static_cast<uint64_t>(m);
    }
  }
  return static_cast<uint64_t>(m >> 64);
}

uint64_t Rng::NextInRange(uint64_t lo, uint64_t hi) {
  return lo + NextBelow(hi - lo + 1);
}

double Rng::NextDouble() {
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

bool Rng::NextBernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

double Rng::NextExponential(double mean) {
  double u = NextDouble();
  // Guard against log(0).
  if (u <= 0.0) u = 0x1.0p-53;
  return -mean * std::log(u);
}

double Rng::NextGaussian(double mean, double stddev) {
  double u1 = NextDouble();
  double u2 = NextDouble();
  if (u1 <= 0.0) u1 = 0x1.0p-53;
  double z = std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
  return mean + stddev * z;
}

Bytes Rng::NextBytes(size_t n) {
  Bytes out(n);
  size_t i = 0;
  while (i + 8 <= n) {
    uint64_t v = NextU64();
    for (int k = 0; k < 8; ++k) out[i + k] = static_cast<uint8_t>(v >> (8 * k));
    i += 8;
  }
  if (i < n) {
    uint64_t v = NextU64();
    for (; i < n; ++i) {
      out[i] = static_cast<uint8_t>(v);
      v >>= 8;
    }
  }
  return out;
}

uint64_t Rng::NextZipf(uint64_t n, double s) {
  if (n <= 1 || s <= 0.0) return NextBelow(n == 0 ? 1 : n);
  // Rejection-inversion sampling (Hormann & Derflinger 1996). The helpers
  // expm1(x)/x and log1p(x)/x stay well-conditioned through s == 1, where
  // the integral H degenerates to the log form.
  auto helper_expm1 = [](double x) -> double {
    return std::abs(x) > 1e-8 ? std::expm1(x) / x : 1.0 + x * 0.5;
  };
  auto helper_log1p = [](double x) -> double {
    return std::abs(x) > 1e-8 ? std::log1p(x) / x : 1.0 - x * 0.5;
  };
  // H(x) = ((x^(1-s)) - 1) / (1 - s), continuous at s == 1 (-> ln x).
  auto h_integral = [&](double x) -> double {
    const double log_x = std::log(x);
    return helper_expm1((1.0 - s) * log_x) * log_x;
  };
  // H^{-1}(x) = exp(log1p(t)/(1-s)) with t = x*(1-s).
  auto h_integral_inverse = [&](double x) -> double {
    double t = x * (1.0 - s);
    if (t < -1.0) t = -1.0;
    return std::exp(helper_log1p(t) * x);
  };
  auto h = [s](double x) { return std::exp(-s * std::log(x)); };

  const double h_x1 = h_integral(1.5) - 1.0;
  const double h_n = h_integral(static_cast<double>(n) + 0.5);
  const double threshold = 2.0 - h_integral_inverse(h_integral(2.5) - h(2.0));
  while (true) {
    double u = h_n + NextDouble() * (h_x1 - h_n);
    double x = h_integral_inverse(u);
    double kd = std::floor(x + 0.5);
    if (kd < 1.0) kd = 1.0;
    if (kd > static_cast<double>(n)) kd = static_cast<double>(n);
    if (kd - x <= threshold || u >= h_integral(kd + 0.5) - h(kd)) {
      return static_cast<uint64_t>(kd) - 1;
    }
  }
}

Rng Rng::Fork() { return Rng(NextU64()); }

}  // namespace porygon
