#include "common/rng.h"

#include <cmath>

namespace porygon {

namespace {
uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(&sm);
}

uint64_t Rng::NextU64() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::NextBelow(uint64_t bound) {
  // Lemire's method: multiply-shift with rejection in the biased zone.
  uint64_t x = NextU64();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  uint64_t low = static_cast<uint64_t>(m);
  if (low < bound) {
    uint64_t threshold = -bound % bound;
    while (low < threshold) {
      x = NextU64();
      m = static_cast<__uint128_t>(x) * bound;
      low = static_cast<uint64_t>(m);
    }
  }
  return static_cast<uint64_t>(m >> 64);
}

uint64_t Rng::NextInRange(uint64_t lo, uint64_t hi) {
  return lo + NextBelow(hi - lo + 1);
}

double Rng::NextDouble() {
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

bool Rng::NextBernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

double Rng::NextExponential(double mean) {
  double u = NextDouble();
  // Guard against log(0).
  if (u <= 0.0) u = 0x1.0p-53;
  return -mean * std::log(u);
}

double Rng::NextGaussian(double mean, double stddev) {
  double u1 = NextDouble();
  double u2 = NextDouble();
  if (u1 <= 0.0) u1 = 0x1.0p-53;
  double z = std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
  return mean + stddev * z;
}

Bytes Rng::NextBytes(size_t n) {
  Bytes out(n);
  size_t i = 0;
  while (i + 8 <= n) {
    uint64_t v = NextU64();
    for (int k = 0; k < 8; ++k) out[i + k] = static_cast<uint8_t>(v >> (8 * k));
    i += 8;
  }
  if (i < n) {
    uint64_t v = NextU64();
    for (; i < n; ++i) {
      out[i] = static_cast<uint8_t>(v);
      v >>= 8;
    }
  }
  return out;
}

uint64_t Rng::NextZipf(uint64_t n, double s) {
  if (n <= 1 || s <= 0.0) return NextBelow(n == 0 ? 1 : n);
  // Rejection-inversion sampling (Hormann & Derflinger). For s == 1 the
  // integral H uses the log form.
  auto h_integral = [s](double x) -> double {
    const double log_x = std::log(x);
    if (std::abs(s - 1.0) < 1e-12) return log_x;
    return std::exp((1.0 - s) * log_x) / (1.0 - s);
  };
  auto h_integral_inverse = [s](double x) -> double {
    if (std::abs(s - 1.0) < 1e-12) return std::exp(x);
    double t = x * (1.0 - s);
    if (t < -1.0) t = -1.0;
    return std::exp(std::log1p(t) / (1.0 - s));
  };
  auto h = [s](double x) { return std::exp(-s * std::log(x)); };

  const double h_x1 = h_integral(1.5) - 1.0;
  const double h_n = h_integral(static_cast<double>(n) + 0.5);
  const double inv_s = 1.0 / (1.0 - s) * (std::abs(s - 1.0) < 1e-12 ? 0 : 1);
  (void)inv_s;
  while (true) {
    double u = h_n + NextDouble() * (h_x1 - h_n);
    double x = h_integral_inverse(u);
    uint64_t k = static_cast<uint64_t>(x + 0.5);
    if (k < 1) k = 1;
    if (k > n) k = n;
    double kd = static_cast<double>(k);
    if (kd - x <= 0.5 ||
        u >= h_integral(kd + 0.5) - h(kd)) {
      return k - 1;
    }
  }
}

Rng Rng::Fork() { return Rng(NextU64()); }

}  // namespace porygon
