#ifndef PORYGON_COMMON_LOG_H_
#define PORYGON_COMMON_LOG_H_

#include <sstream>
#include <string>

namespace porygon {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Minimal leveled logger writing to stderr. Simulations of 100k nodes emit a
/// lot of events, so the default level is Warn; benches and examples raise it
/// explicitly where narration helps.
class Logger {
 public:
  static LogLevel level();
  static void set_level(LogLevel level);
  static void Write(LogLevel level, const std::string& msg);
};

namespace log_internal {
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { Logger::Write(level_, stream_.str()); }
  template <typename T>
  LogLine& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};
}  // namespace log_internal

#define PORYGON_LOG(severity)                                        \
  if (::porygon::LogLevel::severity < ::porygon::Logger::level())    \
    ;                                                                \
  else                                                               \
    ::porygon::log_internal::LogLine(::porygon::LogLevel::severity)

}  // namespace porygon

#endif  // PORYGON_COMMON_LOG_H_
