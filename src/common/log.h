#ifndef PORYGON_COMMON_LOG_H_
#define PORYGON_COMMON_LOG_H_

#include <functional>
#include <sstream>
#include <string>

namespace porygon {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Minimal leveled logger writing to stderr. Simulations of 100k nodes emit a
/// lot of events, so the default level is Warn; benches and examples raise it
/// explicitly where narration helps.
///
/// A simulation installs a clock (sim seconds) via SetClock so every line is
/// stamped with the virtual time it was emitted at — the only way log output
/// can be correlated with the discrete-event schedule. PORYGON_LOG_NODE
/// additionally tags the line with the emitting node.
class Logger {
 public:
  /// Returns the current time in (simulated) seconds.
  using Clock = std::function<double()>;

  static LogLevel level();
  static void set_level(LogLevel level);

  /// Installs (or, with nullptr, removes) the clock stamping log lines.
  /// Whoever installs a clock must remove it before the clock's backing
  /// state dies (PorygonSystem does this in its destructor). Installation is
  /// not synchronized: install before concurrent logging starts.
  static void SetClock(Clock clock);

  static void Write(LogLevel level, const std::string& msg) {
    Write(level, std::string(), msg);
  }
  /// `node` tags the emitting actor ("storage0", "stateless42"); empty means
  /// no tag.
  static void Write(LogLevel level, const std::string& node,
                    const std::string& msg);
};

namespace log_internal {
class LogLine {
 public:
  explicit LogLine(LogLevel level, std::string node = {})
      : level_(level), node_(std::move(node)) {}
  ~LogLine() { Logger::Write(level_, node_, stream_.str()); }
  template <typename T>
  LogLine& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::string node_;
  std::ostringstream stream_;
};
}  // namespace log_internal

#define PORYGON_LOG(severity)                                        \
  if (::porygon::LogLevel::severity < ::porygon::Logger::level())    \
    ;                                                                \
  else                                                               \
    ::porygon::log_internal::LogLine(::porygon::LogLevel::severity)

#define PORYGON_LOG_NODE(severity, node)                             \
  if (::porygon::LogLevel::severity < ::porygon::Logger::level())    \
    ;                                                                \
  else                                                               \
    ::porygon::log_internal::LogLine(::porygon::LogLevel::severity, (node))

}  // namespace porygon

#endif  // PORYGON_COMMON_LOG_H_
