#ifndef PORYGON_COMMON_RNG_H_
#define PORYGON_COMMON_RNG_H_

#include <cstdint>

#include "common/bytes.h"

namespace porygon {

/// Deterministic xoshiro256** PRNG. Every stochastic component of the system
/// (workload generation, network jitter, adversary placement, key generation
/// in tests) draws from an explicitly seeded Rng so that experiments are
/// reproducible bit-for-bit. Not cryptographically secure; protocol-level
/// randomness uses the VRF instead.
class Rng {
 public:
  /// Seeds the state via SplitMix64 so that nearby seeds give unrelated
  /// streams.
  explicit Rng(uint64_t seed);

  /// Uniform 64-bit value.
  uint64_t NextU64();

  /// Uniform in [0, bound) with Lemire rejection to avoid modulo bias.
  /// `bound` must be nonzero.
  uint64_t NextBelow(uint64_t bound);

  /// Uniform in [lo, hi] inclusive. Requires lo <= hi.
  uint64_t NextInRange(uint64_t lo, uint64_t hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// True with probability `p` (clamped to [0,1]).
  bool NextBernoulli(double p);

  /// Exponentially distributed value with the given mean (for Poisson
  /// arrivals in the open-loop workload generator).
  double NextExponential(double mean);

  /// Gaussian via Box-Muller (for latency jitter).
  double NextGaussian(double mean, double stddev);

  /// Fills `n` random bytes.
  Bytes NextBytes(size_t n);

  /// Zipf-distributed rank in [0, n) with exponent `s` (s=0 is uniform).
  /// Uses rejection-inversion; suitable for hot-account workloads.
  uint64_t NextZipf(uint64_t n, double s);

  /// Derives an independent child generator (e.g. one per simulated node).
  Rng Fork();

 private:
  uint64_t s_[4];
};

}  // namespace porygon

#endif  // PORYGON_COMMON_RNG_H_
