#include "common/status.h"

namespace porygon {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kCorruption:
      return "Corruption";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kUnavailable:
      return "Unavailable";
    case StatusCode::kTimeout:
      return "Timeout";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kPermissionDenied:
      return "PermissionDenied";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeName(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace porygon
