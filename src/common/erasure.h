#ifndef PORYGON_COMMON_ERASURE_H_
#define PORYGON_COMMON_ERASURE_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "common/bytes.h"
#include "common/status.h"

namespace porygon::erasure {

/// Systematic Reed-Solomon-style erasure coding over GF(2^8).
///
/// Encode() splits a payload into `k` equal-size data chunks (the payload is
/// length-prefixed and zero-padded so the split is exact) and derives `n - k`
/// parity chunks from a Cauchy-style generator matrix. Any `k` of the `n`
/// chunks reconstruct the payload exactly; fewer than `k` cannot.
///
/// Everything is integer/table arithmetic over GF(2^8) — no floats — so
/// encode/decode are bit-exact across platforms and thread counts, which the
/// simulator's determinism contract requires. Chunks are plain byte vectors;
/// the caller owns framing (chunk index, k, n) on the wire.

/// Chunk indices are GF(2^8) evaluation points, so n is capped at 255.
inline constexpr int kMaxChunks = 255;

/// Size of each chunk for a payload of `payload_size` bytes split k ways
/// (includes the 8-byte length prefix, rounded up to a multiple of k).
size_t ChunkSize(size_t payload_size, int k);

/// Splits `payload` into n chunks (first k systematic, rest parity).
/// Returns kInvalidArgument unless 1 <= k <= n <= 255.
Result<std::vector<Bytes>> Encode(ByteView payload, int k, int n);

/// Reconstructs the payload from any k available chunks. `chunks[i]` holds
/// chunk i or nullopt if missing; the vector has n entries. Returns
/// kInvalidArgument on malformed input (wrong counts, unequal sizes) and
/// kFailedPrecondition when fewer than k chunks are present or the length
/// prefix is inconsistent (corruption the caller should treat as a Byzantine
/// chunk set).
Result<Bytes> Decode(const std::vector<std::optional<Bytes>>& chunks, int k,
                     int n);

}  // namespace porygon::erasure

#endif  // PORYGON_COMMON_ERASURE_H_
