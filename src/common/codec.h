#ifndef PORYGON_COMMON_CODEC_H_
#define PORYGON_COMMON_CODEC_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "common/bytes.h"
#include "common/status.h"

namespace porygon {

/// Append-only binary encoder. All multi-byte integers are little-endian;
/// variable-size payloads are length-prefixed with a varint. This is the wire
/// format for every message, block, and proof in the system, so encoded sizes
/// feed directly into the bandwidth model of the network simulator.
class Encoder {
 public:
  Encoder() = default;

  void PutU8(uint8_t v) { buf_.push_back(v); }
  void PutU16(uint16_t v);
  void PutU32(uint32_t v);
  void PutU64(uint64_t v);
  /// LEB128 unsigned varint.
  void PutVarint(uint64_t v);
  /// Length-prefixed byte string.
  void PutBytes(ByteView data);
  /// Fixed-width byte block, no length prefix (e.g. 32-byte hashes).
  void PutFixed(ByteView data);
  void PutString(std::string_view s) { PutBytes(ByteView(s)); }
  void PutBool(bool v) { PutU8(v ? 1 : 0); }

  const Bytes& buffer() const { return buf_; }
  Bytes TakeBuffer() { return std::move(buf_); }
  size_t size() const { return buf_.size(); }

 private:
  Bytes buf_;
};

/// Streaming decoder over a byte view. Every accessor validates bounds and
/// returns Corruption on truncated input.
class Decoder {
 public:
  explicit Decoder(ByteView data) : data_(data) {}

  Result<uint8_t> GetU8();
  Result<uint16_t> GetU16();
  Result<uint32_t> GetU32();
  Result<uint64_t> GetU64();
  Result<uint64_t> GetVarint();
  /// Reads a length-prefixed byte string.
  Result<Bytes> GetBytes();
  /// Reads exactly `n` raw bytes.
  Result<Bytes> GetFixed(size_t n);
  /// Borrowed-buffer variants: the returned view aliases the input buffer
  /// (valid only while it lives), so relay/forward paths can re-encode or
  /// hash nested payloads without copying them first.
  Result<ByteView> GetBytesView();
  Result<ByteView> GetFixedView(size_t n);
  Result<std::string> GetString();
  Result<bool> GetBool();

  /// Number of bytes not yet consumed.
  size_t remaining() const { return data_.size(); }
  bool Done() const { return data_.empty(); }

 private:
  ByteView data_;
};

/// Varint-encoded size of `v`, for size accounting without encoding.
size_t VarintLength(uint64_t v);

}  // namespace porygon

#endif  // PORYGON_COMMON_CODEC_H_
