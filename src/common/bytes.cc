#include "common/bytes.h"

#include <algorithm>

namespace porygon {

int ByteView::Compare(ByteView other) const {
  const size_t min_len = std::min(size_, other.size_);
  int r = min_len == 0 ? 0 : std::memcmp(data_, other.data_, min_len);
  if (r != 0) return r < 0 ? -1 : 1;
  if (size_ < other.size_) return -1;
  if (size_ > other.size_) return 1;
  return 0;
}

bool operator==(ByteView a, ByteView b) {
  return a.size() == b.size() &&
         (a.size() == 0 || std::memcmp(a.data(), b.data(), a.size()) == 0);
}

namespace {
constexpr char kHexDigits[] = "0123456789abcdef";

int HexValue(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}
}  // namespace

std::string HexEncode(ByteView data) {
  std::string out;
  out.reserve(data.size() * 2);
  for (uint8_t b : data) {
    out.push_back(kHexDigits[b >> 4]);
    out.push_back(kHexDigits[b & 0xF]);
  }
  return out;
}

Result<Bytes> HexDecode(std::string_view hex) {
  if (hex.size() % 2 != 0) {
    return Status::InvalidArgument("hex string has odd length");
  }
  Bytes out;
  out.reserve(hex.size() / 2);
  for (size_t i = 0; i < hex.size(); i += 2) {
    int hi = HexValue(hex[i]);
    int lo = HexValue(hex[i + 1]);
    if (hi < 0 || lo < 0) {
      return Status::InvalidArgument("non-hex character in input");
    }
    out.push_back(static_cast<uint8_t>((hi << 4) | lo));
  }
  return out;
}

}  // namespace porygon
