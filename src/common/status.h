#ifndef PORYGON_COMMON_STATUS_H_
#define PORYGON_COMMON_STATUS_H_

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace porygon {

/// Error categories used across the library. Mirrors the coarse-grained
/// status codes of embedded storage engines: a small closed set that callers
/// can branch on, with a free-form message for humans.
enum class StatusCode {
  kOk = 0,
  kNotFound,
  kInvalidArgument,
  kCorruption,
  kAlreadyExists,
  kFailedPrecondition,
  kUnavailable,
  kTimeout,
  kInternal,
  kPermissionDenied,
};

/// Returns a stable human-readable name for `code` (e.g. "NotFound").
const char* StatusCodeName(StatusCode code);

/// Value-semantics error type. All fallible library operations return a
/// `Status` (or a `Result<T>`); the library never throws.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  static Status Ok() { return Status(); }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status Timeout(std::string msg) {
    return Status(StatusCode::kTimeout, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status PermissionDenied(std::string msg) {
    return Status(StatusCode::kPermissionDenied, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsInvalidArgument() const {
    return code_ == StatusCode::kInvalidArgument;
  }
  bool IsCorruption() const { return code_ == StatusCode::kCorruption; }
  bool IsAlreadyExists() const { return code_ == StatusCode::kAlreadyExists; }
  bool IsFailedPrecondition() const {
    return code_ == StatusCode::kFailedPrecondition;
  }
  bool IsUnavailable() const { return code_ == StatusCode::kUnavailable; }
  bool IsTimeout() const { return code_ == StatusCode::kTimeout; }
  bool IsInternal() const { return code_ == StatusCode::kInternal; }
  bool IsPermissionDenied() const {
    return code_ == StatusCode::kPermissionDenied;
  }

  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  Status(StatusCode code, std::string msg)
      : code_(code), message_(std::move(msg)) {}

  StatusCode code_;
  std::string message_;
};

/// Either a value of type `T` or an error `Status`. Accessing the value of an
/// error result aborts in debug builds; callers must check `ok()` first.
template <typename T>
class Result {
 public:
  /// Implicit from value: allows `return value;` from Result-returning code.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit from error status: allows `return Status::NotFound(...);`.
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "Result(Status) requires a non-OK status");
  }

  Result(const Result&) = default;
  Result& operator=(const Result&) = default;
  Result(Result&&) = default;
  Result& operator=(Result&&) = default;

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::optional<T> value_;
  Status status_;
};

/// Propagates a non-OK status from an expression to the caller.
#define PORYGON_RETURN_IF_ERROR(expr)            \
  do {                                           \
    ::porygon::Status _st = (expr);              \
    if (!_st.ok()) return _st;                   \
  } while (0)

/// Evaluates a Result-returning expression; on error returns the status, on
/// success moves the value into `lhs`.
#define PORYGON_ASSIGN_OR_RETURN(lhs, expr)      \
  auto PORYGON_CONCAT_(res_, __LINE__) = (expr); \
  if (!PORYGON_CONCAT_(res_, __LINE__).ok())     \
    return PORYGON_CONCAT_(res_, __LINE__).status(); \
  lhs = std::move(PORYGON_CONCAT_(res_, __LINE__)).value()

#define PORYGON_CONCAT_INNER_(a, b) a##b
#define PORYGON_CONCAT_(a, b) PORYGON_CONCAT_INNER_(a, b)

}  // namespace porygon

#endif  // PORYGON_COMMON_STATUS_H_
