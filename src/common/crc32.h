#ifndef PORYGON_COMMON_CRC32_H_
#define PORYGON_COMMON_CRC32_H_

#include <cstdint>

#include "common/bytes.h"

namespace porygon {

/// CRC-32C (Castagnoli), table-driven. Guards WAL records and SSTable
/// footers against torn writes and corruption.
uint32_t Crc32c(ByteView data);

/// Extends a running CRC with more data (init with `Crc32c({})`-style 0).
uint32_t Crc32cExtend(uint32_t crc, ByteView data);

/// Masked CRC (as in LevelDB) so that CRCs stored alongside CRC-covered data
/// do not produce degenerate values.
uint32_t Crc32cMask(uint32_t crc);
uint32_t Crc32cUnmask(uint32_t masked);

}  // namespace porygon

#endif  // PORYGON_COMMON_CRC32_H_
