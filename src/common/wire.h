#ifndef PORYGON_COMMON_WIRE_H_
#define PORYGON_COMMON_WIRE_H_

#include <array>
#include <cstdint>
#include <cstring>
#include <string>

#include "common/bytes.h"
#include "common/codec.h"
#include "common/status.h"

namespace porygon::wire {

/// Chainable wrapper over Encoder for message structs. Every field kind the
/// message layer repeats by hand — fixed-width byte arrays (hashes, keys,
/// signatures), doubles as IEEE-754 bit patterns, varints — is one call:
///
///   return wire::Writer()
///       .U64(round).U8(role).Array(node_key).F64(sortition).Take();
class Writer {
 public:
  Writer& U8(uint8_t v) { enc_.PutU8(v); return *this; }
  Writer& U16(uint16_t v) { enc_.PutU16(v); return *this; }
  Writer& U32(uint32_t v) { enc_.PutU32(v); return *this; }
  Writer& U64(uint64_t v) { enc_.PutU64(v); return *this; }
  Writer& Varint(uint64_t v) { enc_.PutVarint(v); return *this; }
  Writer& Bool(bool v) { enc_.PutBool(v); return *this; }

  /// IEEE-754 bits as a little-endian u64 (exact round-trip).
  Writer& F64(double v) {
    uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    enc_.PutU64(bits);
    return *this;
  }

  /// Fixed-width byte array, no length prefix (Hash256, PublicKey, ...).
  template <size_t N>
  Writer& Array(const std::array<uint8_t, N>& a) {
    enc_.PutFixed(ByteView(a.data(), N));
    return *this;
  }

  /// Length-prefixed byte string.
  Writer& Blob(ByteView data) { enc_.PutBytes(data); return *this; }
  Writer& Str(std::string_view s) { enc_.PutString(s); return *this; }
  /// Raw bytes, no length prefix (pre-encoded trailers).
  Writer& Raw(ByteView data) { enc_.PutFixed(data); return *this; }

  Bytes Take() { return enc_.TakeBuffer(); }
  size_t size() const { return enc_.size(); }

 private:
  Encoder enc_;
};

/// Chainable wrapper over Decoder. Each accessor fills an out-param; the
/// first failure is recorded and turns the remaining calls into no-ops, so
/// a whole struct decodes as one chain with a single check at the end:
///
///   RoleAnnounce a;
///   wire::Reader r(data);
///   r.U64(&a.round).U8(&a.role).Array(&a.node_key);
///   PORYGON_RETURN_IF_ERROR(r.Finish());
///
/// Finish() also rejects trailing bytes, the usual `!dec.Done()` epilogue.
class Reader {
 public:
  explicit Reader(ByteView data) : dec_(data) {}

  Reader& U8(uint8_t* out) { return Apply(out, dec_.GetU8()); }
  Reader& U16(uint16_t* out) { return Apply(out, dec_.GetU16()); }
  Reader& U32(uint32_t* out) { return Apply(out, dec_.GetU32()); }
  Reader& U64(uint64_t* out) { return Apply(out, dec_.GetU64()); }
  Reader& Varint(uint64_t* out) { return Apply(out, dec_.GetVarint()); }
  Reader& Bool(bool* out) { return Apply(out, dec_.GetBool()); }

  Reader& F64(double* out) {
    if (!status_.ok()) return *this;
    auto bits = dec_.GetU64();
    if (!bits.ok()) {
      status_ = bits.status();
      return *this;
    }
    uint64_t v = bits.value();
    std::memcpy(out, &v, sizeof(v));
    return *this;
  }

  template <size_t N>
  Reader& Array(std::array<uint8_t, N>* out) {
    if (!status_.ok()) return *this;
    auto raw = dec_.GetFixed(N);
    if (!raw.ok()) {
      status_ = raw.status();
      return *this;
    }
    std::memcpy(out->data(), raw.value().data(), N);
    return *this;
  }

  Reader& Blob(Bytes* out) { return Apply(out, dec_.GetBytes()); }
  Reader& Str(std::string* out) { return Apply(out, dec_.GetString()); }

  /// Borrowed-buffer variant of Blob: the view aliases the Reader's input,
  /// so nested payloads (relay-forwarded bodies, bundled sub-messages) can
  /// be decoded or re-hashed without an intermediate copy.
  Reader& BlobView(ByteView* out) { return Apply(out, dec_.GetBytesView()); }

  /// Borrowed-buffer variant of a fixed-width field (no length prefix).
  Reader& FixedView(size_t n, ByteView* out) {
    return Apply(out, dec_.GetFixedView(n));
  }

  /// Consumes every remaining byte (pre-encoded trailers).
  Reader& Rest(Bytes* out) { return Apply(out, dec_.GetFixed(dec_.remaining())); }
  /// Borrowed-buffer variant of Rest.
  Reader& RestView(ByteView* out) {
    return Apply(out, dec_.GetFixedView(dec_.remaining()));
  }

  /// Escape hatch to the underlying Decoder for streamed sub-decodes
  /// (e.g. Transaction::DecodeFrom in block bodies).
  Decoder* decoder() { return &dec_; }

  /// The first decode error, or Corruption when input remains unconsumed.
  /// `what` names the message for the trailing-bytes diagnostic.
  Status Finish(std::string_view what = "message") {
    PORYGON_RETURN_IF_ERROR(status_);
    if (!dec_.Done()) {
      return Status::Corruption("trailing " + std::string(what) + " bytes");
    }
    return Status::Ok();
  }

  const Status& status() const { return status_; }
  size_t remaining() const { return dec_.remaining(); }

 private:
  template <typename T, typename R>
  Reader& Apply(T* out, R&& result) {
    if (!status_.ok()) return *this;
    if (!result.ok()) {
      status_ = result.status();
    } else {
      *out = std::move(result).value();
    }
    return *this;
  }

  Decoder dec_;
  Status status_ = Status::Ok();
};

}  // namespace porygon::wire

#endif  // PORYGON_COMMON_WIRE_H_
