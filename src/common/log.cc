#include "common/log.h"

#include <atomic>
#include <cstdio>

namespace porygon {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kWarn};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}
}  // namespace

LogLevel Logger::level() { return g_level.load(std::memory_order_relaxed); }

void Logger::set_level(LogLevel level) {
  g_level.store(level, std::memory_order_relaxed);
}

void Logger::Write(LogLevel level, const std::string& msg) {
  std::fprintf(stderr, "[%s] %s\n", LevelName(level), msg.c_str());
}

}  // namespace porygon
