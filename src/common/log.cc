#include "common/log.h"

#include <atomic>
#include <cstdio>
#include <utility>

namespace porygon {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kWarn};

Logger::Clock& GlobalClock() {
  static Logger::Clock clock;
  return clock;
}

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}
}  // namespace

LogLevel Logger::level() { return g_level.load(std::memory_order_relaxed); }

void Logger::set_level(LogLevel level) {
  g_level.store(level, std::memory_order_relaxed);
}

void Logger::SetClock(Clock clock) { GlobalClock() = std::move(clock); }

void Logger::Write(LogLevel level, const std::string& node,
                   const std::string& msg) {
  char stamp[40];
  stamp[0] = '\0';
  if (const Clock& clock = GlobalClock()) {
    std::snprintf(stamp, sizeof(stamp), "[t=%.6fs] ", clock());
  }
  if (node.empty()) {
    std::fprintf(stderr, "%s[%s] %s\n", stamp, LevelName(level), msg.c_str());
  } else {
    std::fprintf(stderr, "%s[%s] [%s] %s\n", stamp, LevelName(level),
                 node.c_str(), msg.c_str());
  }
}

}  // namespace porygon
