#include "common/erasure.h"

#include <array>
#include <cstring>

namespace porygon::erasure {
namespace {

// GF(2^8) with the primitive polynomial x^8+x^4+x^3+x^2+1 (0x11d),
// generator 2. Tables are built once at static-init time from pure integer
// arithmetic, so the field is identical on every platform.
struct Gf256 {
  std::array<uint8_t, 256> log{};
  std::array<uint8_t, 512> exp{};

  Gf256() {
    uint16_t x = 1;
    for (int i = 0; i < 255; ++i) {
      exp[i] = static_cast<uint8_t>(x);
      log[x] = static_cast<uint8_t>(i);
      x <<= 1;
      if (x & 0x100) x ^= 0x11d;
    }
    for (int i = 255; i < 512; ++i) exp[i] = exp[i - 255];
    log[0] = 0;  // log(0) is undefined; Mul/Inv guard zero explicitly.
  }

  uint8_t Mul(uint8_t a, uint8_t b) const {
    if (a == 0 || b == 0) return 0;
    return exp[log[a] + log[b]];
  }

  // a != 0 is a caller invariant (Cauchy denominators are nonzero and
  // pivots are checked before inversion).
  uint8_t Inv(uint8_t a) const { return exp[255 - log[a]]; }
};

const Gf256& Field() {
  static const Gf256 gf;
  return gf;
}

// Cauchy generator coefficient for parity row r, data column j:
// 1 / (x_r ^ y_j) with x_r = k + r and y_j = j. The x and y index sets are
// disjoint, so the denominator is never zero, and every square submatrix of
// [I ; C] is invertible — the property that makes any k of n chunks enough.
uint8_t CauchyCoef(const Gf256& gf, int k, int r, int j) {
  return gf.Inv(static_cast<uint8_t>((k + r) ^ j));
}

}  // namespace

size_t ChunkSize(size_t payload_size, int k) {
  size_t framed = payload_size + 8;
  return (framed + static_cast<size_t>(k) - 1) / static_cast<size_t>(k);
}

Result<std::vector<Bytes>> Encode(ByteView payload, int k, int n) {
  if (k < 1 || n < k || n > kMaxChunks) {
    return Status::InvalidArgument("erasure: need 1 <= k <= n <= 255");
  }
  const Gf256& gf = Field();
  const size_t chunk = ChunkSize(payload.size(), k);

  // Frame: 8-byte LE length prefix, payload, zero pad to k * chunk.
  Bytes framed(static_cast<size_t>(k) * chunk, 0);
  StoreLittleEndian64(framed.data(), payload.size());
  if (!payload.empty()) {
    std::memcpy(framed.data() + 8, payload.data(), payload.size());
  }

  std::vector<Bytes> out;
  out.reserve(static_cast<size_t>(n));
  for (int i = 0; i < k; ++i) {
    out.emplace_back(framed.begin() + static_cast<long>(i) * chunk,
                     framed.begin() + static_cast<long>(i + 1) * chunk);
  }
  for (int r = 0; r < n - k; ++r) {
    Bytes parity(chunk, 0);
    for (int j = 0; j < k; ++j) {
      const uint8_t c = CauchyCoef(gf, k, r, j);
      const uint8_t* src = framed.data() + static_cast<size_t>(j) * chunk;
      for (size_t b = 0; b < chunk; ++b) parity[b] ^= gf.Mul(c, src[b]);
    }
    out.push_back(std::move(parity));
  }
  return out;
}

Result<Bytes> Decode(const std::vector<std::optional<Bytes>>& chunks, int k,
                     int n) {
  if (k < 1 || n < k || n > kMaxChunks) {
    return Status::InvalidArgument("erasure: need 1 <= k <= n <= 255");
  }
  if (static_cast<int>(chunks.size()) != n) {
    return Status::InvalidArgument("erasure: chunk vector must have n entries");
  }
  const Gf256& gf = Field();

  // Collect the first k available chunks (lowest indices win — any k work).
  std::vector<int> have;
  size_t chunk = 0;
  for (int i = 0; i < n && static_cast<int>(have.size()) < k; ++i) {
    if (!chunks[static_cast<size_t>(i)].has_value()) continue;
    const Bytes& c = *chunks[static_cast<size_t>(i)];
    if (have.empty()) {
      chunk = c.size();
      if (chunk == 0) {
        return Status::InvalidArgument("erasure: empty chunk");
      }
    } else if (c.size() != chunk) {
      return Status::InvalidArgument("erasure: unequal chunk sizes");
    }
    have.push_back(i);
  }
  if (static_cast<int>(have.size()) < k) {
    return Status::FailedPrecondition("erasure: fewer than k chunks present");
  }

  // Row for chunk index i over the k data chunks: identity row when i < k,
  // Cauchy row when i >= k. Solve M * data = avail via Gauss-Jordan,
  // augmenting with the identity to recover M^-1.
  std::vector<std::vector<uint8_t>> m(
      static_cast<size_t>(k), std::vector<uint8_t>(2 * static_cast<size_t>(k)));
  for (int row = 0; row < k; ++row) {
    const int idx = have[static_cast<size_t>(row)];
    if (idx < k) {
      m[static_cast<size_t>(row)][static_cast<size_t>(idx)] = 1;
    } else {
      for (int j = 0; j < k; ++j) {
        m[static_cast<size_t>(row)][static_cast<size_t>(j)] =
            CauchyCoef(gf, k, idx - k, j);
      }
    }
    m[static_cast<size_t>(row)][static_cast<size_t>(k + row)] = 1;
  }
  for (int col = 0; col < k; ++col) {
    int pivot = -1;
    for (int row = col; row < k; ++row) {
      if (m[static_cast<size_t>(row)][static_cast<size_t>(col)] != 0) {
        pivot = row;
        break;
      }
    }
    if (pivot < 0) {
      return Status::FailedPrecondition("erasure: singular decode matrix");
    }
    std::swap(m[static_cast<size_t>(col)], m[static_cast<size_t>(pivot)]);
    auto& prow = m[static_cast<size_t>(col)];
    const uint8_t inv = gf.Inv(prow[static_cast<size_t>(col)]);
    for (auto& v : prow) v = gf.Mul(v, inv);
    for (int row = 0; row < k; ++row) {
      if (row == col) continue;
      auto& target = m[static_cast<size_t>(row)];
      const uint8_t f = target[static_cast<size_t>(col)];
      if (f == 0) continue;
      for (size_t j = 0; j < target.size(); ++j) {
        target[j] ^= gf.Mul(f, prow[j]);
      }
    }
  }

  // data[d] = sum over rows of inv[d][row] * avail[row].
  Bytes framed(static_cast<size_t>(k) * chunk, 0);
  for (int d = 0; d < k; ++d) {
    uint8_t* dst = framed.data() + static_cast<size_t>(d) * chunk;
    for (int row = 0; row < k; ++row) {
      const uint8_t c =
          m[static_cast<size_t>(d)][static_cast<size_t>(k + row)];
      if (c == 0) continue;
      const Bytes& src = *chunks[static_cast<size_t>(have[static_cast<size_t>(row)])];
      for (size_t b = 0; b < chunk; ++b) dst[b] ^= gf.Mul(c, src[b]);
    }
  }

  if (framed.size() < 8) {
    return Status::FailedPrecondition("erasure: short frame");
  }
  const uint64_t len = LoadLittleEndian64(framed.data());
  if (len > framed.size() - 8) {
    return Status::FailedPrecondition("erasure: corrupt length prefix");
  }
  return Bytes(framed.begin() + 8, framed.begin() + 8 + static_cast<long>(len));
}

}  // namespace porygon::erasure
