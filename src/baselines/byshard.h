#ifndef PORYGON_BASELINES_BYSHARD_H_
#define PORYGON_BASELINES_BYSHARD_H_

#include <deque>
#include <map>
#include <memory>
#include <vector>

#include "common/rng.h"
#include "core/params.h"
#include "crypto/provider.h"
#include "net/network.h"
#include "state/sharded_state.h"
#include "storage/db.h"
#include "storage/env.h"
#include "tx/txpool.h"

namespace porygon::baselines {

/// Reimplementation of the ByShard-style sharded full-node blockchain the
/// paper compares against: every node stores its shard's ever-growing chain
/// and state ("lightweight ByShard": node bandwidth/memory matched to
/// Porygon's stateless nodes). Each shard runs a Tendermint-style BFT
/// (propose/prevote/precommit — structurally our BaStar) over its own
/// mempool; cross-shard transactions use a distributed two-phase protocol
/// with the *sender shard* as coordinator (§VI "Comparisons").
struct ByshardOptions {
  int shard_bits = 1;
  int nodes_per_shard = 10;
  size_t block_tx_limit = 1000;
  double node_bps = 1e6;
  int64_t latency_us = 500;
  int64_t consensus_interval_us = 2'000'000;
  int64_t phase_interval_us = 1'700'000;
  uint64_t seed = 1;

  int shard_count() const { return 1 << shard_bits; }
};

struct ByshardMetrics {
  uint64_t committed_intra_txs = 0;
  uint64_t committed_cross_txs = 0;
  uint64_t committed_blocks = 0;
  std::vector<double> block_latencies_s;
  std::vector<double> user_latencies_s;

  double Tps(double duration_s) const {
    return duration_s > 0
               ? (committed_intra_txs + committed_cross_txs) / duration_s
               : 0;
  }
};

/// Event-driven ByShard run. Shards progress independently (inter-block
/// parallelism); rounds within a shard chain propose -> vote -> execute ->
/// commit with bandwidth-charged block replication to every shard member.
class ByshardSystem {
 public:
  explicit ByshardSystem(const ByshardOptions& options);
  ~ByshardSystem();

  void CreateAccounts(uint64_t count, uint64_t balance);
  bool SubmitTransaction(tx::Transaction t);
  void Run(int rounds_per_shard,
           net::SimTime max_sim_time = net::kSimTimeNever);

  const ByshardMetrics& metrics() const { return metrics_; }
  const state::ShardedState& state() const { return *state_; }
  double sim_seconds() const { return net::ToSeconds(events_.now()); }
  net::SimNetwork* network() { return network_.get(); }

  /// Bytes stored by one full node of `shard` (blocks + state) — the
  /// growing line of Fig 9a.
  uint64_t NodeStorageBytes(uint32_t shard) const;
  /// Mean per-node traffic per committed block (Fig 9b comparison).
  double MeanNodeTrafficPerRound() const;

 private:
  struct Shard {
    std::vector<net::NodeId> members;
    std::unique_ptr<storage::MemEnv> env;   // One representative node's disk.
    std::unique_ptr<storage::Db> db;
    uint64_t height = 0;
    net::SimTime last_commit = 0;
    int rounds_done = 0;
    bool idle = false;  // No round scheduled (target reached).
    // Cross-shard credits forwarded to this shard (second phase). Deltas,
    // not absolute values: multiple in-flight credits to one account and
    // concurrent local activity must compose.
    std::deque<std::pair<state::AccountId, uint64_t>> incoming_credits;
    std::deque<tx::Transaction> incoming_commits;  // For latency metrics.
  };

  void StartShardRound(uint32_t shard);
  void CommitShardBlock(uint32_t shard, tx::TransactionBlock block);

  ByshardOptions options_;
  Rng rng_;
  net::EventQueue events_;
  std::unique_ptr<net::SimNetwork> network_;
  std::unique_ptr<crypto::CryptoProvider> provider_;
  std::unique_ptr<state::ShardedState> state_;
  tx::TxPool pool_;

  std::vector<Shard> shards_;
  int target_rounds_per_shard_ = 0;
  bool started_ = false;

  ByshardMetrics metrics_;
  uint64_t next_account_hint_ = 1;
};

}  // namespace porygon::baselines

#endif  // PORYGON_BASELINES_BYSHARD_H_
