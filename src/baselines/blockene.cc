#include "baselines/blockene.h"

#include <set>

#include "core/execution.h"

namespace porygon::baselines {

namespace {
// Message kinds local to the Blockene simulation (traffic accounting only).
constexpr uint16_t kBkTxBlock = 101;
constexpr uint16_t kBkVote = 102;
constexpr uint16_t kBkState = 103;
constexpr uint16_t kBkRoot = 104;
constexpr uint16_t kBkCommit = 105;
}  // namespace

BlockeneSystem::BlockeneSystem(const BlockeneOptions& options)
    : options_(options), rng_(options.seed), pool_(/*shard_bits=*/0) {
  network_ = std::make_unique<net::SimNetwork>(&events_, rng_.Fork());
  network_->SetLatency(options_.latency_us, 100);
  provider_ = std::make_unique<crypto::FastProvider>();
  state_ = std::make_unique<state::ShardedState>(0);

  for (int i = 0; i < options_.num_storage_nodes; ++i) {
    storage_ids_.push_back(
        network_->AddNode({options_.storage_bps, options_.storage_bps}));
  }
  for (int i = 0; i < options_.num_stateless_nodes; ++i) {
    Member m;
    m.keys = provider_->GenerateKeyPair(&rng_);
    m.net_id =
        network_->AddNode({options_.stateless_bps, options_.stateless_bps});
    if (options_.mean_session_s > 0) {
      m.session_end = net::FromSeconds(
          rng_.NextExponential(options_.mean_session_s));
    }
    nodes_.push_back(std::move(m));
  }
}

BlockeneSystem::~BlockeneSystem() = default;

void BlockeneSystem::CreateAccounts(uint64_t count, uint64_t balance) {
  for (uint64_t i = 0; i < count; ++i) {
    state_->PutAccount(next_account_hint_ + i, {balance, 0});
  }
  next_account_hint_ += count;
}

bool BlockeneSystem::SubmitTransaction(tx::Transaction t) {
  t.submitted_at = static_cast<uint64_t>(events_.now());
  return pool_.Add(t);
}

void BlockeneSystem::ElectCommittee() {
  committee_.clear();
  // Uniform sample from nodes currently in the network; a re-joining node
  // gets a fresh session.
  std::set<int> chosen;
  while (static_cast<int>(chosen.size()) <
         std::min(options_.committee_size, options_.num_stateless_nodes)) {
    int candidate = static_cast<int>(rng_.NextBelow(nodes_.size()));
    chosen.insert(candidate);
  }
  for (int i : chosen) {
    if (options_.mean_session_s > 0 &&
        nodes_[i].session_end <= events_.now()) {
      nodes_[i].session_end =
          events_.now() +
          net::FromSeconds(rng_.NextExponential(options_.mean_session_s));
    }
    committee_.push_back(i);
  }
  tenure_rounds_left_ = options_.committee_tenure_rounds;
}

size_t BlockeneSystem::ActiveCommitteeCount() const {
  size_t active = 0;
  for (int i : committee_) {
    if (nodes_[i].session_end > events_.now()) ++active;
  }
  return active;
}

void BlockeneSystem::Run(int rounds, net::SimTime max_sim_time) {
  if (!started_) {
    started_ = true;
    last_commit_time_ = events_.now();
    ElectCommittee();
    events_.ScheduleAfter(options_.reconfig_interval_us,
                          [this] { StartRound(); });
  }
  target_rounds_ = static_cast<int>(metrics_.committed_blocks) + rounds;
  if (idle_) {
    idle_ = false;
    events_.ScheduleAfter(options_.reconfig_interval_us,
                          [this] { StartRound(); });
  }
  while (static_cast<int>(metrics_.committed_blocks) < target_rounds_ &&
         events_.now() <= max_sim_time) {
    if (!events_.RunNext()) break;
  }
}

void BlockeneSystem::StartRound() {
  ++round_;
  if (tenure_rounds_left_ <= 0) ElectCommittee();
  --tenure_rounds_left_;

  // Churn check: a committee below the BA quorum cannot make progress and
  // the round yields an empty block; the tenure design means Blockene keeps
  // stalling until the scheduled re-election (§VI-B / Fig 8d). We re-elect
  // immediately after a failed round to keep liveness, which is generous to
  // the baseline.
  if (options_.mean_session_s > 0) {
    size_t quorum = committee_.size() * 2 / 3 + 1;
    if (ActiveCommitteeCount() < quorum) {
      ElectCommittee();
      FinishRound(/*empty=*/true);
      return;
    }
  }

  current_block_ = pool_.PackBlock(0, options_.block_tx_limit, 0, round_);
  if (current_block_.transactions.empty()) {
    FinishRound(/*empty=*/true);
    return;
  }
  PhaseDownload();
}

void BlockeneSystem::PhaseDownload() {
  // Every committee member downloads the complete block from a storage
  // node (sequential transaction processing, Characteristic 1).
  downloads_pending_ = 0;
  size_t wire = current_block_.WireSize();
  for (int i : committee_) {
    if (nodes_[i].session_end <= events_.now()) continue;
    net::Message m;
    m.from = storage_ids_[i % storage_ids_.size()];
    m.to = nodes_[i].net_id;
    m.kind = kBkTxBlock;
    m.wire_size = wire;
    ++downloads_pending_;
    network_->SetHandler(nodes_[i].net_id, [this](const net::Message&) {
      if (downloads_pending_ > 0 && --downloads_pending_ == 0) PhaseOrder();
    });
    network_->Send(std::move(m));
  }
  if (downloads_pending_ == 0) FinishRound(true);
}

void BlockeneSystem::PhaseOrder() {
  // BA* among the committee; votes route through storage nodes (two hops).
  // Cost model: each member broadcasts 2 vote rounds to all members.
  size_t vote_wire = 150;
  size_t members = committee_.size();
  for (int i : committee_) {
    if (nodes_[i].session_end <= events_.now()) continue;
    for (int j : committee_) {
      if (i == j) continue;
      net::Message up;
      up.from = nodes_[i].net_id;
      up.to = storage_ids_[0];
      up.kind = kBkVote;
      up.wire_size = 2 * vote_wire;  // Soft + cert.
      network_->Send(std::move(up));
      net::Message down;
      down.from = storage_ids_[0];
      down.to = nodes_[j].net_id;
      down.kind = kBkVote;
      down.wire_size = 2 * vote_wire;
      network_->Send(std::move(down));
    }
  }
  (void)members;
  // Ordering settles within the phase budget.
  events_.ScheduleAfter(options_.phase_interval_us,
                        [this] { PhaseExecuteAndCommit(); });
}

void BlockeneSystem::PhaseExecuteAndCommit() {
  // Members download states + proofs for every account the block touches,
  // execute deterministically, and exchange signed roots.
  std::set<state::AccountId> accounts;
  for (const auto& t : current_block_.transactions) {
    accounts.insert(t.from);
    accounts.insert(t.to);
  }
  size_t state_wire =
      accounts.size() * (17 + options_.state_proof_bytes_per_account);
  for (int i : committee_) {
    if (nodes_[i].session_end <= events_.now()) continue;
    net::Message m;
    m.from = storage_ids_[i % storage_ids_.size()];
    m.to = nodes_[i].net_id;
    m.kind = kBkState;
    m.wire_size = state_wire;
    network_->SetHandler(nodes_[i].net_id, [](const net::Message&) {});
    network_->Send(std::move(m));
    // Signed root to all other members (via storage).
    net::Message root;
    root.from = nodes_[i].net_id;
    root.to = storage_ids_[0];
    root.kind = kBkRoot;
    root.wire_size = 96 * committee_.size();
    network_->Send(std::move(root));
  }

  // Execute once (all honest members produce the identical result).
  core::ExecutionInput input;
  input.shard = 0;
  input.intra_shard = current_block_.transactions;
  core::ExecutionResult r = core::ShardExecutor::Execute(state_.get(), input);

  // Commit after the execution + commit phases elapse.
  events_.ScheduleAfter(2 * options_.phase_interval_us, [this, r] {
    metrics_.committed_txs += r.intra_applied;
    double now_s = net::ToSeconds(events_.now());
    for (const auto& t : current_block_.transactions) {
      metrics_.user_latencies_s.push_back(
          now_s -
          net::ToSeconds(static_cast<net::SimTime>(t.submitted_at)));
    }
    FinishRound(/*empty=*/false);
  });
}

void BlockeneSystem::FinishRound(bool empty) {
  ++metrics_.committed_blocks;
  if (empty) ++metrics_.empty_rounds;
  net::SimTime now = events_.now();
  metrics_.block_latencies_s.push_back(
      net::ToSeconds(now - last_commit_time_));
  last_commit_time_ = now;
  if (static_cast<int>(metrics_.committed_blocks) < target_rounds_) {
    events_.ScheduleAfter(options_.reconfig_interval_us,
                          [this] { StartRound(); });
  } else {
    idle_ = true;
  }
}

double BlockeneSystem::MeanMemberTrafficPerRound() const {
  double total = 0;
  for (const auto& m : nodes_) {
    const auto& stats = network_->StatsFor(m.net_id);
    total += static_cast<double>(stats.bytes_sent + stats.bytes_received);
  }
  uint64_t rounds =
      metrics_.committed_blocks > 0 ? metrics_.committed_blocks : 1;
  return total / options_.committee_size / rounds;
}

}  // namespace porygon::baselines
