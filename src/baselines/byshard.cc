#include "baselines/byshard.h"

#include <map>
#include <set>

#include "core/execution.h"

namespace porygon::baselines {

namespace {
constexpr uint16_t kBsBlock = 201;      // Block replication within a shard.
constexpr uint16_t kBsVote = 202;       // Prevote/precommit traffic.
constexpr uint16_t kBsCrossMsg = 203;   // Two-phase cross-shard messages.
}  // namespace

ByshardSystem::ByshardSystem(const ByshardOptions& options)
    : options_(options),
      rng_(options.seed),
      pool_(options.shard_bits) {
  network_ = std::make_unique<net::SimNetwork>(&events_, rng_.Fork());
  network_->SetLatency(options_.latency_us, 100);
  provider_ = std::make_unique<crypto::FastProvider>();
  state_ = std::make_unique<state::ShardedState>(options_.shard_bits);

  shards_.resize(options_.shard_count());
  for (auto& shard : shards_) {
    for (int i = 0; i < options_.nodes_per_shard; ++i) {
      shard.members.push_back(
          network_->AddNode({options_.node_bps, options_.node_bps}));
      network_->SetHandler(shard.members.back(), [](const net::Message&) {});
    }
    shard.env = std::make_unique<storage::MemEnv>();
    shard.db = std::move(storage::Db::Open(shard.env.get(), "db")).value();
  }
}

ByshardSystem::~ByshardSystem() = default;

void ByshardSystem::CreateAccounts(uint64_t count, uint64_t balance) {
  for (uint64_t i = 0; i < count; ++i) {
    state_->PutAccount(next_account_hint_ + i, {balance, 0});
  }
  next_account_hint_ += count;
}

bool ByshardSystem::SubmitTransaction(tx::Transaction t) {
  t.submitted_at = static_cast<uint64_t>(events_.now());
  return pool_.Add(t);
}

void ByshardSystem::Run(int rounds_per_shard, net::SimTime max_sim_time) {
  if (!started_) {
    started_ = true;
    for (auto& shard : shards_) shard.last_commit = events_.now();
    for (uint32_t d = 0; d < shards_.size(); ++d) {
      events_.ScheduleAfter(options_.consensus_interval_us,
                            [this, d] { StartShardRound(d); });
    }
  }
  target_rounds_per_shard_ += rounds_per_shard;
  for (uint32_t d = 0; d < shards_.size(); ++d) {
    if (shards_[d].idle &&
        shards_[d].rounds_done < target_rounds_per_shard_) {
      shards_[d].idle = false;
      events_.ScheduleAfter(options_.consensus_interval_us,
                            [this, d] { StartShardRound(d); });
    }
  }
  auto all_done = [this] {
    for (const auto& shard : shards_) {
      if (shard.rounds_done < target_rounds_per_shard_) return false;
    }
    return true;
  };
  while (!all_done() && events_.now() <= max_sim_time) {
    if (!events_.RunNext()) break;
  }
}

void ByshardSystem::StartShardRound(uint32_t d) {
  Shard& shard = shards_[d];
  tx::TransactionBlock block =
      pool_.PackBlock(d, options_.block_tx_limit, d, shard.height + 1);

  // Leader replicates the full block to every shard member (full nodes
  // must hold complete block contents), then two vote rounds.
  size_t wire = block.WireSize();
  for (size_t i = 1; i < shard.members.size(); ++i) {
    net::Message m;
    m.from = shard.members[0];
    m.to = shard.members[i];
    m.kind = kBsBlock;
    m.wire_size = wire;
    network_->Send(std::move(m));
    // Prevote + precommit from each member to each member (charged once
    // per pair-direction with both rounds folded in).
    net::Message v;
    v.from = shard.members[i];
    v.to = shard.members[0];
    v.kind = kBsVote;
    v.wire_size = 300 * shard.members.size();
    network_->Send(std::move(v));
  }

  // Consensus + execution take the phase budget; then commit.
  events_.ScheduleAfter(options_.phase_interval_us,
                        [this, d, block = std::move(block)]() mutable {
                          CommitShardBlock(d, std::move(block));
                        });
}

void ByshardSystem::CommitShardBlock(uint32_t d, tx::TransactionBlock block) {
  Shard& shard = shards_[d];
  const double now_s = net::ToSeconds(events_.now());

  // Apply queued cross-shard credits from other shards (second phase of the
  // two-phase protocol).
  {
    std::map<state::AccountId, state::Account> merged;
    while (!shard.incoming_credits.empty()) {
      auto [account, amount] = shard.incoming_credits.front();
      shard.incoming_credits.pop_front();
      auto it = merged.find(account);
      state::Account value =
          it != merged.end() ? it->second : state_->GetOrDefault(account);
      value.balance += amount;
      merged[account] = value;
    }
    std::vector<std::pair<state::AccountId, state::Account>> writes(
        merged.begin(), merged.end());
    if (!writes.empty()) state_->PutAccountBatch(d, writes);
    while (!shard.incoming_commits.empty()) {
      const tx::Transaction& t = shard.incoming_commits.front();
      ++metrics_.committed_cross_txs;
      metrics_.user_latencies_s.push_back(
          now_s - net::ToSeconds(static_cast<net::SimTime>(t.submitted_at)));
      shard.incoming_commits.pop_front();
    }
  }

  // Split the block: intra-shard transactions execute locally; cross-shard
  // transactions run the first phase here (sender shard coordinates) and
  // forward updates to the receiver shard.
  core::ExecutionInput input;
  input.shard = d;
  std::vector<tx::Transaction> cross;
  for (const auto& t : block.transactions) {
    if (t.IsCrossShard(options_.shard_bits)) {
      cross.push_back(t);
    } else {
      input.intra_shard.push_back(t);
    }
  }
  core::ExecutionResult r = core::ShardExecutor::Execute(state_.get(), input);
  metrics_.committed_intra_txs += r.intra_applied;
  for (const auto& t : input.intra_shard) {
    metrics_.user_latencies_s.push_back(
        now_s - net::ToSeconds(static_cast<net::SimTime>(t.submitted_at)));
  }

  // First phase for cross-shard transactions: debit sender locally, send
  // the credit to the receiver's shard (messages charged member-to-member).
  {
    std::vector<std::pair<state::AccountId, state::Account>> debits;
    for (const auto& t : cross) {
      state::Account sender = state_->GetOrDefault(t.from);
      if (t.nonce != sender.nonce || sender.balance < t.amount) continue;
      sender.balance -= t.amount;
      sender.nonce += 1;
      debits.emplace_back(t.from, sender);

      uint32_t to_shard = state_->ShardOf(t.to);
      shards_[to_shard].incoming_credits.emplace_back(t.to, t.amount);
      shards_[to_shard].incoming_commits.push_back(t);

      // Coordinator shard members forward the sub-transaction to the
      // remote shard (prepare + commit messages).
      net::Message m;
      m.from = shard.members[0];
      m.to = shards_[to_shard].members[0];
      m.kind = kBsCrossMsg;
      m.wire_size = 2 * (tx::Transaction::kWireSize + 96);
      network_->Send(std::move(m));
    }
    if (!debits.empty()) state_->PutAccountBatch(d, debits);
  }

  // Full nodes persist the complete block (Fig 9a growth).
  Bytes encoded = block.Encode();
  (void)shard.db->Put(ToBytes("block/" + std::to_string(shard.height + 1)),
                      encoded);

  ++shard.height;
  ++shard.rounds_done;
  ++metrics_.committed_blocks;
  metrics_.block_latencies_s.push_back(
      net::ToSeconds(events_.now() - shard.last_commit));
  shard.last_commit = events_.now();

  if (shard.rounds_done < target_rounds_per_shard_) {
    events_.ScheduleAfter(options_.consensus_interval_us,
                          [this, d] { StartShardRound(d); });
  } else {
    shard.idle = true;
  }
}

uint64_t ByshardSystem::NodeStorageBytes(uint32_t shard) const {
  // Blocks on disk plus the in-memory state of the shard (approximated by
  // 16 bytes per account + Merkle overhead).
  return shards_[shard].env->TotalBytes() +
         state_->ShardAccountCount(shard) * 48;
}

double ByshardSystem::MeanNodeTrafficPerRound() const {
  double total = 0;
  size_t members = 0;
  for (const auto& shard : shards_) {
    for (net::NodeId id : shard.members) {
      const auto& stats = network_->StatsFor(id);
      total += static_cast<double>(stats.bytes_sent + stats.bytes_received);
      ++members;
    }
  }
  uint64_t rounds =
      metrics_.committed_blocks > 0 ? metrics_.committed_blocks : 1;
  return members > 0 ? total / members / rounds * shards_.size() : 0;
}

}  // namespace porygon::baselines
