#ifndef PORYGON_BASELINES_BLOCKENE_H_
#define PORYGON_BASELINES_BLOCKENE_H_

#include <memory>
#include <vector>

#include "common/rng.h"
#include "consensus/ba_star.h"
#include "core/params.h"
#include "crypto/provider.h"
#include "net/network.h"
#include "state/sharded_state.h"
#include "tx/txpool.h"

namespace porygon::baselines {

/// Reimplementation of the Blockene-style 1D stateless blockchain the paper
/// compares against (§VI "Comparisons"): storage-consensus separation only.
/// One committee of stateless Citizens processes every phase of every block
/// *sequentially* — download (witness), order (BA*), execute, commit — and
/// the committee is re-elected only every `committee_tenure_rounds` blocks
/// (50 in the paper). No pipelining, no sharding: the two characteristics
/// (§II-A) that cap its throughput around 1 kTPS.
struct BlockeneOptions {
  int num_storage_nodes = 2;
  int num_stateless_nodes = 100;
  int committee_size = 10;
  /// Blocks a committee serves before re-election (paper: 50).
  int committee_tenure_rounds = 50;
  size_t block_tx_limit = 2000;
  double stateless_bps = 1e6;
  double storage_bps = 100e6;
  int64_t latency_us = 500;
  int64_t reconfig_interval_us = 2'000'000;
  int64_t phase_interval_us = 1'700'000;
  size_t state_proof_bytes_per_account = 128;
  /// Mean node session length in seconds (0 = nodes never leave). Models
  /// the Fig 8d churn experiment: members that left stop responding, and a
  /// committee below quorum commits empty blocks until re-election.
  double mean_session_s = 0;
  uint64_t seed = 1;
};

struct BlockeneMetrics {
  uint64_t committed_txs = 0;
  uint64_t committed_blocks = 0;
  uint64_t empty_rounds = 0;
  std::vector<double> block_latencies_s;
  std::vector<double> user_latencies_s;

  double Tps(double duration_s) const {
    return duration_s > 0 ? committed_txs / duration_s : 0;
  }
};

/// Event-driven Blockene run: the round state machine chains the four
/// phases with real bandwidth-charged messages over the simulated network.
class BlockeneSystem {
 public:
  explicit BlockeneSystem(const BlockeneOptions& options);
  ~BlockeneSystem();

  void CreateAccounts(uint64_t count, uint64_t balance);
  bool SubmitTransaction(tx::Transaction t);
  void Run(int rounds, net::SimTime max_sim_time = net::kSimTimeNever);

  const BlockeneMetrics& metrics() const { return metrics_; }
  const state::ShardedState& state() const { return *state_; }
  double sim_seconds() const { return net::ToSeconds(events_.now()); }
  net::SimNetwork* network() { return network_.get(); }
  /// Per-member traffic per round (bytes), for the resource comparison.
  double MeanMemberTrafficPerRound() const;

 private:
  struct Member {
    crypto::KeyPair keys;
    net::NodeId net_id;
    net::SimTime session_end = net::kSimTimeNever;
  };

  void ElectCommittee();
  void StartRound();
  void PhaseDownload();
  void PhaseOrder();
  void PhaseExecuteAndCommit();
  void FinishRound(bool empty);
  size_t ActiveCommitteeCount() const;

  BlockeneOptions options_;
  Rng rng_;
  net::EventQueue events_;
  std::unique_ptr<net::SimNetwork> network_;
  std::unique_ptr<crypto::CryptoProvider> provider_;
  std::unique_ptr<state::ShardedState> state_;
  tx::TxPool pool_;

  std::vector<Member> nodes_;
  std::vector<net::NodeId> storage_ids_;
  std::vector<int> committee_;          // Indices into nodes_.
  int tenure_rounds_left_ = 0;

  uint64_t round_ = 0;
  int target_rounds_ = 0;
  net::SimTime last_commit_time_ = 0;
  tx::TransactionBlock current_block_;
  size_t downloads_pending_ = 0;
  bool started_ = false;
  bool idle_ = false;  // No round scheduled (target reached).

  BlockeneMetrics metrics_;
  uint64_t next_account_hint_ = 1;
};

}  // namespace porygon::baselines

#endif  // PORYGON_BASELINES_BLOCKENE_H_
