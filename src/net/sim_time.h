#ifndef PORYGON_NET_SIM_TIME_H_
#define PORYGON_NET_SIM_TIME_H_

#include <cstdint>

namespace porygon::net {

/// Virtual time in microseconds. Integer microseconds keep the event queue
/// deterministic across platforms (no floating-point tie ambiguity).
using SimTime = int64_t;

constexpr SimTime kSimTimeNever = INT64_MAX;

constexpr SimTime FromSeconds(double s) {
  return static_cast<SimTime>(s * 1e6);
}
constexpr SimTime FromMillis(double ms) {
  return static_cast<SimTime>(ms * 1e3);
}
constexpr double ToSeconds(SimTime t) { return static_cast<double>(t) * 1e-6; }
constexpr double ToMillis(SimTime t) { return static_cast<double>(t) * 1e-3; }

}  // namespace porygon::net

#endif  // PORYGON_NET_SIM_TIME_H_
