#ifndef PORYGON_NET_EVENT_QUEUE_H_
#define PORYGON_NET_EVENT_QUEUE_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "net/sim_time.h"
#include "obs/metrics.h"

namespace porygon::net {

/// Deterministic discrete-event scheduler. Events at equal times fire in
/// scheduling order (a monotone sequence number breaks ties), so a run is a
/// pure function of its inputs.
class EventQueue {
 public:
  EventQueue() = default;
  EventQueue(const EventQueue&) = delete;
  EventQueue& operator=(const EventQueue&) = delete;

  /// Current virtual time.
  SimTime now() const { return now_; }

  /// Mirrors scheduler activity into `registry`: the sim.event_queue_depth
  /// gauge (pending events after every push/pop), the
  /// sim.event_queue_depth_hwm gauge (deepest the queue has been since the
  /// last ResetDepthHighWatermark — the round driver resets it per round),
  /// and the sim.events_drained counter (events executed). Passing nullptr
  /// disables mirroring.
  void EnableMetrics(obs::MetricsRegistry* registry);

  /// Deepest the queue has been since the last reset (tracked with or
  /// without metrics mirroring).
  size_t depth_high_watermark() const { return depth_hwm_; }
  /// Re-bases the high-watermark to the current depth (windowed gauges).
  void ResetDepthHighWatermark();

  /// Schedules `fn` to run at absolute time `t` (clamped to now).
  void ScheduleAt(SimTime t, std::function<void()> fn);

  /// Schedules `fn` to run `delay` after now.
  void ScheduleAfter(SimTime delay, std::function<void()> fn);

  /// Runs the earliest pending event; returns false if the queue is empty.
  bool RunNext();

  /// Runs events until the queue is empty or virtual time would exceed
  /// `deadline`. Returns the number of events executed.
  size_t RunUntil(SimTime deadline);

  /// Runs until empty, with a safety cap on event count (runaway guard).
  size_t RunUntilIdle(size_t max_events = SIZE_MAX);

  size_t pending() const { return queue_.size(); }

 private:
  struct Event {
    SimTime time;
    uint64_t sequence;
    std::function<void()> fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.sequence > b.sequence;
    }
  };

  SimTime now_ = 0;
  uint64_t next_sequence_ = 0;
  size_t depth_hwm_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  obs::Gauge* depth_gauge_ = nullptr;
  obs::Gauge* depth_hwm_gauge_ = nullptr;
  obs::Counter* drained_counter_ = nullptr;
};

}  // namespace porygon::net

#endif  // PORYGON_NET_EVENT_QUEUE_H_
