#ifndef PORYGON_NET_TOPOLOGY_H_
#define PORYGON_NET_TOPOLOGY_H_

#include <vector>

#include "net/network.h"

namespace porygon::net {

/// Declarative deployment shape shared by the system constructor and the
/// bench drivers: how many nodes of each class ride on which links. One
/// builder replaces the node/link setup block every driver used to copy.
///
/// Node id order is part of the contract: storage nodes are materialized
/// first, then stateless nodes — the id arithmetic the rest of the stack
/// (committee election, gossip peers, failover rotation) assumes.
class Topology {
 public:
  /// The paper's standard scaled deployment: `1 << shard_bits` shards at
  /// `nodes_per_shard` stateless nodes each over two storage nodes, with
  /// the default home-connection (1 MB/s) and datacenter (100 MB/s) links.
  static Topology Scaled(int shard_bits, int nodes_per_shard = 10);

  Topology& WithStorage(int count, double bps);
  Topology& WithStateless(int count, double bps);

  int storage_nodes() const { return storage_nodes_; }
  int stateless_nodes() const { return stateless_nodes_; }
  double storage_bps() const { return storage_link_.uplink_bps; }
  double stateless_bps() const { return stateless_link_.uplink_bps; }

  /// Ids of the nodes one Materialize call created, by class.
  struct Built {
    std::vector<NodeId> storage_ids;
    std::vector<NodeId> stateless_ids;
  };

  /// Adds every node to `net` (storage first, then stateless) with its
  /// class's symmetric link and role label, and returns the ids.
  Built Materialize(SimNetwork* net) const;

 private:
  int storage_nodes_ = 2;
  int stateless_nodes_ = 100;
  LinkSpec storage_link_{100e6, 100e6};
  LinkSpec stateless_link_{1e6, 1e6};
};

}  // namespace porygon::net

#endif  // PORYGON_NET_TOPOLOGY_H_
