#include "net/fault.h"

#include <cstdlib>

namespace porygon::net {

namespace {

std::vector<std::string> SplitOn(const std::string& s, char sep) {
  std::vector<std::string> parts;
  size_t start = 0;
  while (start <= s.size()) {
    size_t pos = s.find(sep, start);
    if (pos == std::string::npos) {
      parts.push_back(s.substr(start));
      break;
    }
    parts.push_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return parts;
}

bool ParseDouble(const std::string& s, double* out) {
  if (s.empty()) return false;
  char* end = nullptr;
  *out = std::strtod(s.c_str(), &end);
  return end != nullptr && *end == '\0';
}

bool ParseU64(const std::string& s, uint64_t* out) {
  if (s.empty()) return false;
  char* end = nullptr;
  *out = std::strtoull(s.c_str(), &end, 10);
  return end != nullptr && *end == '\0';
}

}  // namespace

Result<FaultPlan> FaultPlan::Parse(const std::string& spec) {
  FaultPlan plan;
  // A single wildcard link fault accumulates the loss/dup/jitter clauses.
  LinkFault all;
  bool have_all = false;
  for (const std::string& clause : SplitOn(spec, ',')) {
    if (clause.empty()) continue;
    std::vector<std::string> f = SplitOn(clause, ':');
    const std::string& key = f[0];
    auto bad = [&] {
      return Status::InvalidArgument("bad fault clause: " + clause);
    };
    if (key == "loss" && f.size() == 2) {
      if (!ParseDouble(f[1], &all.loss)) return bad();
      have_all = true;
    } else if (key == "dup" && f.size() == 2) {
      if (!ParseDouble(f[1], &all.duplicate)) return bad();
      have_all = true;
    } else if (key == "jitter" && f.size() == 2) {
      uint64_t us = 0;
      if (!ParseU64(f[1], &us)) return bad();
      all.extra_delay_max = static_cast<SimTime>(us);
      have_all = true;
    } else if ((key == "crash" || key == "recover") && f.size() == 3) {
      uint64_t node = 0;
      double at_s = 0;
      if (!ParseU64(f[1], &node) || !ParseDouble(f[2], &at_s) || at_s < 0) {
        return bad();
      }
      CrashEvent ev;
      ev.node = static_cast<NodeId>(node);
      ev.at = FromSeconds(at_s);
      ev.recover = key == "recover";
      plan.crashes.push_back(ev);
    } else if (key == "seed" && f.size() == 2) {
      if (!ParseU64(f[1], &plan.seed)) return bad();
    } else {
      return bad();
    }
  }
  if (have_all) plan.link_faults.push_back(all);
  return plan;
}

FaultInjector::FaultInjector(FaultPlan plan, SimNetwork* network,
                             obs::MetricsRegistry* registry,
                             obs::Tracer* tracer, CrashHandler on_crash)
    : plan_(std::move(plan)),
      network_(network),
      tracer_(tracer),
      on_crash_(std::move(on_crash)),
      loss_rng_(plan_.seed ^ 0x10551055u),
      dup_rng_(plan_.seed ^ 0xd0b1d0b1u),
      delay_rng_(plan_.seed ^ 0xde1aede1u) {
  if (registry != nullptr) {
    loss_counter_ =
        registry->GetCounter("net.fault.injected", {{"type", "loss"}});
    dup_counter_ =
        registry->GetCounter("net.fault.injected", {{"type", "duplicate"}});
    delay_counter_ =
        registry->GetCounter("net.fault.injected", {{"type", "delay"}});
    partition_counter_ =
        registry->GetCounter("net.fault.injected", {{"type", "partition"}});
    crash_counter_ =
        registry->GetCounter("net.fault.events", {{"type", "crash"}});
    recover_counter_ =
        registry->GetCounter("net.fault.events", {{"type", "recover"}});
  }
  network_->SetFaultHook(
      [this](const Message& msg) { return Decide(msg); });
  for (const FaultPlan::CrashEvent& ev : plan_.crashes) {
    network_->events()->ScheduleAt(ev.at, [this, ev] {
      EmitFault(ev.recover ? "recover" : "crash",
                ev.recover ? recover_counter_ : crash_counter_);
      if (on_crash_) on_crash_(ev.node, !ev.recover);
    });
  }
}

FaultInjector::~FaultInjector() {
  if (network_ != nullptr) network_->SetFaultHook(nullptr);
}

bool FaultInjector::Partitioned(NodeId a, NodeId b, SimTime now) const {
  auto contains = [](const std::vector<NodeId>& group, NodeId id) {
    for (NodeId n : group) {
      if (n == id) return true;
    }
    return false;
  };
  for (const FaultPlan::Partition& p : plan_.partitions) {
    if (now < p.start || now >= p.end) continue;
    if ((contains(p.group_a, a) && contains(p.group_b, b)) ||
        (contains(p.group_a, b) && contains(p.group_b, a))) {
      return true;
    }
  }
  return false;
}

void FaultInjector::EmitFault(const char* type, obs::Counter* counter) {
  if (counter != nullptr) counter->Increment();
  if (tracer_ != nullptr && tracer_->enabled()) {
    tracer_->Instant(tracer_->FaultContext(), type, "fault_injector");
  }
}

FaultDecision FaultInjector::Decide(const Message& msg) {
  FaultDecision decision;
  const SimTime now = network_->now();
  if (Partitioned(msg.from, msg.to, now)) {
    ++injected_drops_;
    EmitFault("partition", partition_counter_);
    decision.drop = true;
    return decision;
  }
  for (const FaultPlan::LinkFault& lf : plan_.link_faults) {
    if (now < lf.start || now >= lf.end) continue;
    if (lf.from != kInvalidNode && lf.from != msg.from) continue;
    if (lf.to != kInvalidNode && lf.to != msg.to) continue;
    if (lf.loss > 0 && loss_rng_.NextBernoulli(lf.loss)) {
      ++injected_drops_;
      EmitFault("loss", loss_counter_);
      decision.drop = true;
      return decision;
    }
    if (lf.duplicate > 0 && dup_rng_.NextBernoulli(lf.duplicate)) {
      ++injected_duplicates_;
      EmitFault("duplicate", dup_counter_);
      decision.duplicate = true;
    }
    if (lf.extra_delay_max > 0) {
      decision.extra_delay = static_cast<SimTime>(delay_rng_.NextBelow(
          static_cast<uint64_t>(lf.extra_delay_max) + 1));
      if (decision.extra_delay > 0) {
        ++injected_delays_;
        EmitFault("delay", delay_counter_);
      }
    }
    break;  // First matching active entry applies.
  }
  return decision;
}

}  // namespace porygon::net
