#include "net/dissemination.h"

#include <cstdio>
#include <cstdlib>

#include "common/erasure.h"

namespace porygon::net {

namespace {

std::vector<std::string> SplitOn(const std::string& s, char sep) {
  std::vector<std::string> parts;
  size_t start = 0;
  while (start <= s.size()) {
    size_t pos = s.find(sep, start);
    if (pos == std::string::npos) {
      parts.push_back(s.substr(start));
      break;
    }
    parts.push_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return parts;
}

bool ParseInt(const std::string& s, int* out) {
  if (s.empty()) return false;
  char* end = nullptr;
  long v = std::strtol(s.c_str(), &end, 10);
  if (end == nullptr || *end != '\0') return false;
  *out = static_cast<int>(v);
  return true;
}

}  // namespace

const char* DisseminationModeName(DisseminationMode mode) {
  switch (mode) {
    case DisseminationMode::kDirect: return "direct";
    case DisseminationMode::kTree: return "tree";
  }
  return "direct";
}

Result<DisseminationSpec> DisseminationSpec::Parse(const std::string& spec) {
  DisseminationSpec out;
  bool saw_mode = false;
  for (const std::string& clause : SplitOn(spec, ',')) {
    if (clause.empty()) continue;
    auto bad = [&] {
      return Status::InvalidArgument("bad dissemination clause: " + clause);
    };
    if (!saw_mode) {
      // The first clause names the mode, like the workload grammar's model
      // head clause.
      if (clause == "direct") out.mode = DisseminationMode::kDirect;
      else if (clause == "tree") out.mode = DisseminationMode::kTree;
      else return bad();
      saw_mode = true;
      continue;
    }
    if (!out.tree()) return bad();
    std::vector<std::string> f = SplitOn(clause, ':');
    const std::string& key = f[0];
    if (key == "chunks" && f.size() == 2) {
      std::vector<std::string> kn = SplitOn(f[1], '/');
      if (kn.size() != 2 || !ParseInt(kn[0], &out.chunk_k) ||
          !ParseInt(kn[1], &out.chunk_n)) {
        return bad();
      }
    } else if (key == "strikes" && f.size() == 2) {
      if (!ParseInt(f[1], &out.relay_strikes)) return bad();
    } else {
      return bad();
    }
  }
  if (!saw_mode) {
    return Status::InvalidArgument(
        "dissemination spec needs a mode head clause (direct|tree)");
  }
  PORYGON_RETURN_IF_ERROR(out.Validate());
  return out;
}

std::string DisseminationSpec::ToString() const {
  std::string s = DisseminationModeName(mode);
  if (tree()) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), ",chunks:%d/%d,strikes:%d", chunk_k,
                  chunk_n, relay_strikes);
    s += buf;
  }
  return s;
}

Status DisseminationSpec::Validate() const {
  if (!tree()) return Status::Ok();
  if (chunk_k < 2 || chunk_n <= chunk_k || chunk_n > erasure::kMaxChunks) {
    return Status::InvalidArgument(
        "dissemination: chunks need 2 <= k < n <= 255");
  }
  if (relay_strikes < 1) {
    return Status::InvalidArgument("dissemination: strikes must be >= 1");
  }
  return Status::Ok();
}

bool operator==(const DisseminationSpec& a, const DisseminationSpec& b) {
  return a.mode == b.mode && a.chunk_k == b.chunk_k &&
         a.chunk_n == b.chunk_n && a.relay_strikes == b.relay_strikes;
}

int Dissemination::AggregatorIndex(size_t members, uint64_t round,
                                   uint64_t stripe) {
  if (members < 2) return -1;  // Aggregating for one receiver saves nothing.
  return static_cast<int>((round + stripe) % members);
}

NodeId Dissemination::AggregatorFor(const std::vector<NodeId>& members,
                                    uint64_t round, uint64_t stripe) {
  int idx = AggregatorIndex(members.size(), round, stripe);
  return idx < 0 ? kInvalidNode : members[static_cast<size_t>(idx)];
}

}  // namespace porygon::net
