#ifndef PORYGON_NET_FAULT_H_
#define PORYGON_NET_FAULT_H_

#include <functional>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "net/network.h"
#include "net/sim_time.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace porygon::net {

/// Declarative description of the faults one run injects. A plan is data:
/// it can be built programmatically (tests), parsed from a CLI spec
/// (examples), logged, and replayed. All probabilities are evaluated
/// against the plan's own deterministic RNG streams, so two runs with the
/// same seed and the same plan inject byte-identical fault schedules.
struct FaultPlan {
  /// Per-link message corruption. `from`/`to` equal to kInvalidNode act as
  /// wildcards, so a single entry can cover every link. The first matching
  /// active entry applies; later entries are ignored for that message.
  struct LinkFault {
    NodeId from = kInvalidNode;  ///< Sender filter (kInvalidNode = any).
    NodeId to = kInvalidNode;    ///< Receiver filter (kInvalidNode = any).
    double loss = 0.0;           ///< P(message silently dropped).
    double duplicate = 0.0;      ///< P(message delivered twice).
    SimTime extra_delay_max = 0; ///< Uniform extra latency in [0, max] µs.
    SimTime start = 0;           ///< Active window (sim time, inclusive).
    SimTime end = kSimTimeNever;
  };

  /// Bidirectional partition: while active, traffic between any node in
  /// `group_a` and any node in `group_b` is dropped (both directions).
  struct Partition {
    std::vector<NodeId> group_a;
    std::vector<NodeId> group_b;
    SimTime start = 0;
    SimTime end = kSimTimeNever;
  };

  /// Scheduled crash (`recover == false`) or recovery (`recover == true`)
  /// of one node at an absolute sim time.
  struct CrashEvent {
    NodeId node = kInvalidNode;
    SimTime at = 0;
    bool recover = false;
  };

  std::vector<LinkFault> link_faults;
  std::vector<Partition> partitions;
  std::vector<CrashEvent> crashes;
  /// Seed for the plan's private RNG streams (independent of the system
  /// seed: changing the fault seed never perturbs protocol randomness).
  uint64_t seed = 0x0fau;

  bool empty() const {
    return link_faults.empty() && partitions.empty() && crashes.empty();
  }

  /// Parses a CLI spec of comma-separated clauses:
  ///
  ///   loss:<p>            all-link loss probability
  ///   dup:<p>             all-link duplication probability
  ///   jitter:<us>         all-link extra delay, uniform in [0, us]
  ///   crash:<node>:<at_s> crash node at `at_s` seconds
  ///   recover:<node>:<at_s> recover node at `at_s` seconds
  ///   seed:<n>            fault RNG seed
  ///
  /// e.g. "loss:0.05,dup:0.01,crash:0:6,recover:0:20". Node ids are raw
  /// SimNetwork ids (storage nodes occupy the lowest ids in a
  /// PorygonSystem). Returns kInvalidArgument naming the bad clause.
  static Result<FaultPlan> Parse(const std::string& spec);
};

/// Executes a FaultPlan against a SimNetwork: installs the network's fault
/// hook (loss / duplication / extra delay / partitions) and schedules the
/// plan's crash and recovery events on the network's event queue. Every
/// injected fault increments a labelled `net.fault.*` counter and, when
/// tracing is on, emits an instant into the tracer's fault lane — so a
/// fault experiment can attribute exactly which injections happened when.
///
/// Deterministic: each fault type draws from its own forked RNG stream
/// derived from FaultPlan::seed, and the hook is only consulted on the
/// (deterministic) message sequence, so same seed + same plan => identical
/// injections, byte-identical metrics and trace exports.
class FaultInjector {
 public:
  /// Crash/recover callback: `crashed` is the new state. The embedding
  /// system maps the node id onto whatever actor-level crash semantics it
  /// has (e.g. PorygonSystem routes storage ids through its rejoin path).
  using CrashHandler = std::function<void(NodeId node, bool crashed)>;

  /// Installs the hook on `network` and schedules crash events. `registry`
  /// and `tracer` may be null (metrics/trace emission disabled). The
  /// injector must outlive the network's use of the hook.
  FaultInjector(FaultPlan plan, SimNetwork* network,
                obs::MetricsRegistry* registry, obs::Tracer* tracer,
                CrashHandler on_crash);
  ~FaultInjector();

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  const FaultPlan& plan() const { return plan_; }
  uint64_t injected_drops() const { return injected_drops_; }
  uint64_t injected_duplicates() const { return injected_duplicates_; }
  uint64_t injected_delays() const { return injected_delays_; }

 private:
  FaultDecision Decide(const Message& msg);
  bool Partitioned(NodeId a, NodeId b, SimTime now) const;
  void EmitFault(const char* type, obs::Counter* counter);

  FaultPlan plan_;
  SimNetwork* network_;
  obs::Tracer* tracer_;
  CrashHandler on_crash_;

  // One independent stream per fault type: a loss draw never shifts the
  // duplication or delay sequence.
  Rng loss_rng_;
  Rng dup_rng_;
  Rng delay_rng_;

  uint64_t injected_drops_ = 0;
  uint64_t injected_duplicates_ = 0;
  uint64_t injected_delays_ = 0;

  obs::Counter* loss_counter_ = nullptr;
  obs::Counter* dup_counter_ = nullptr;
  obs::Counter* delay_counter_ = nullptr;
  obs::Counter* partition_counter_ = nullptr;
  obs::Counter* crash_counter_ = nullptr;
  obs::Counter* recover_counter_ = nullptr;
};

}  // namespace porygon::net

#endif  // PORYGON_NET_FAULT_H_
