#include "net/event_queue.h"

#include <utility>

namespace porygon::net {

void EventQueue::EnableMetrics(obs::MetricsRegistry* registry) {
  if (registry == nullptr) {
    depth_gauge_ = nullptr;
    depth_hwm_gauge_ = nullptr;
    drained_counter_ = nullptr;
    return;
  }
  depth_gauge_ = registry->GetGauge("sim.event_queue_depth");
  depth_hwm_gauge_ = registry->GetGauge("sim.event_queue_depth_hwm");
  drained_counter_ = registry->GetCounter("sim.events_drained");
  depth_gauge_->Set(static_cast<double>(queue_.size()));
  depth_hwm_gauge_->Set(static_cast<double>(depth_hwm_));
}

void EventQueue::ResetDepthHighWatermark() {
  depth_hwm_ = queue_.size();
  if (depth_hwm_gauge_ != nullptr) {
    depth_hwm_gauge_->Set(static_cast<double>(depth_hwm_));
  }
}

void EventQueue::ScheduleAt(SimTime t, std::function<void()> fn) {
  if (t < now_) t = now_;
  queue_.push(Event{t, next_sequence_++, std::move(fn)});
  if (queue_.size() > depth_hwm_) {
    depth_hwm_ = queue_.size();
    if (depth_hwm_gauge_ != nullptr) {
      depth_hwm_gauge_->Set(static_cast<double>(depth_hwm_));
    }
  }
  if (depth_gauge_ != nullptr) {
    depth_gauge_->Set(static_cast<double>(queue_.size()));
  }
}

void EventQueue::ScheduleAfter(SimTime delay, std::function<void()> fn) {
  ScheduleAt(now_ + delay, std::move(fn));
}

bool EventQueue::RunNext() {
  if (queue_.empty()) return false;
  // priority_queue::top() is const; moving the closure out requires a copy
  // here, which is acceptable for simulation workloads.
  Event ev = queue_.top();
  queue_.pop();
  now_ = ev.time;
  if (drained_counter_ != nullptr) {
    drained_counter_->Increment();
    depth_gauge_->Set(static_cast<double>(queue_.size()));
  }
  ev.fn();
  return true;
}

size_t EventQueue::RunUntil(SimTime deadline) {
  size_t executed = 0;
  while (!queue_.empty() && queue_.top().time <= deadline) {
    RunNext();
    ++executed;
  }
  if (now_ < deadline) now_ = deadline;
  return executed;
}

size_t EventQueue::RunUntilIdle(size_t max_events) {
  size_t executed = 0;
  while (executed < max_events && RunNext()) ++executed;
  return executed;
}

}  // namespace porygon::net
