#include "net/event_queue.h"

#include <utility>

namespace porygon::net {

void EventQueue::ScheduleAt(SimTime t, std::function<void()> fn) {
  if (t < now_) t = now_;
  queue_.push(Event{t, next_sequence_++, std::move(fn)});
}

void EventQueue::ScheduleAfter(SimTime delay, std::function<void()> fn) {
  ScheduleAt(now_ + delay, std::move(fn));
}

bool EventQueue::RunNext() {
  if (queue_.empty()) return false;
  // priority_queue::top() is const; moving the closure out requires a copy
  // here, which is acceptable for simulation workloads.
  Event ev = queue_.top();
  queue_.pop();
  now_ = ev.time;
  ev.fn();
  return true;
}

size_t EventQueue::RunUntil(SimTime deadline) {
  size_t executed = 0;
  while (!queue_.empty() && queue_.top().time <= deadline) {
    RunNext();
    ++executed;
  }
  if (now_ < deadline) now_ = deadline;
  return executed;
}

size_t EventQueue::RunUntilIdle(size_t max_events) {
  size_t executed = 0;
  while (executed < max_events && RunNext()) ++executed;
  return executed;
}

}  // namespace porygon::net
