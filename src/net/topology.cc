#include "net/topology.h"

namespace porygon::net {

Topology Topology::Scaled(int shard_bits, int nodes_per_shard) {
  Topology t;
  t.storage_nodes_ = 2;
  t.stateless_nodes_ = (1 << shard_bits) * nodes_per_shard;
  return t;
}

Topology& Topology::WithStorage(int count, double bps) {
  storage_nodes_ = count;
  storage_link_ = {bps, bps};
  return *this;
}

Topology& Topology::WithStateless(int count, double bps) {
  stateless_nodes_ = count;
  stateless_link_ = {bps, bps};
  return *this;
}

Topology::Built Topology::Materialize(SimNetwork* net) const {
  Built built;
  built.storage_ids.reserve(static_cast<size_t>(storage_nodes_));
  for (int i = 0; i < storage_nodes_; ++i) {
    built.storage_ids.push_back(net->AddNode(storage_link_, "storage"));
  }
  built.stateless_ids.reserve(static_cast<size_t>(stateless_nodes_));
  for (int i = 0; i < stateless_nodes_; ++i) {
    built.stateless_ids.push_back(net->AddNode(stateless_link_, "stateless"));
  }
  return built;
}

}  // namespace porygon::net
