#ifndef PORYGON_NET_NETWORK_H_
#define PORYGON_NET_NETWORK_H_

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/bytes.h"
#include "common/rng.h"
#include "net/event_queue.h"
#include "net/sim_time.h"

namespace porygon::net {

/// Dense node identifier within one simulated network.
using NodeId = uint32_t;
constexpr NodeId kInvalidNode = UINT32_MAX;

/// A protocol message in flight. `wire_size` is what the bandwidth model
/// charges; it may exceed payload.size() when the simulation elides content
/// (e.g. a 2,000-transaction block whose bytes we do not materialize).
struct Message {
  NodeId from = kInvalidNode;
  NodeId to = kInvalidNode;
  uint16_t kind = 0;        ///< Protocol message type (per-protocol enum).
  Bytes payload;            ///< Decoded by the receiving actor.
  size_t wire_size = 0;     ///< Bytes charged to links (>= payload size).
};

/// Per-node link capacity in bytes/second. The paper provisions stateless
/// nodes with 1 MB/s, matching resource-limited mobile devices.
struct LinkSpec {
  double uplink_bps = 1e6;
  double downlink_bps = 1e6;
};

/// Byte counters per node, segmented by message kind so experiments can
/// attribute traffic to protocol phases (Fig 9b).
struct TrafficStats {
  uint64_t bytes_sent = 0;
  uint64_t bytes_received = 0;
  std::unordered_map<uint16_t, uint64_t> sent_by_kind;
  std::unordered_map<uint16_t, uint64_t> received_by_kind;
};

/// Point-to-point message fabric with store-and-forward timing:
///
///   depart  = max(now, sender uplink free) + wire_size / uplink_bps
///   arrive  = depart + latency(+jitter)
///   deliver = max(arrive, receiver downlink free) + wire_size / downlink_bps
///
/// Each node registers a handler; delivery invokes it at the computed time.
/// Crashed nodes neither send nor receive. A drop filter lets adversarial
/// actors (malicious storage nodes) censor traffic.
class SimNetwork {
 public:
  using Handler = std::function<void(const Message&)>;
  /// Returns true if the message must be silently dropped.
  using DropFilter = std::function<bool(const Message&)>;

  SimNetwork(EventQueue* events, Rng rng);

  /// Registers a node and returns its id.
  NodeId AddNode(const LinkSpec& link);

  void SetHandler(NodeId node, Handler handler);
  void SetDropFilter(DropFilter filter) { drop_filter_ = std::move(filter); }

  /// Base one-way propagation delay and uniform jitter added on top.
  void SetLatency(SimTime base, SimTime jitter) {
    latency_base_ = base;
    latency_jitter_ = jitter;
  }

  /// Sends `msg` (from/to filled by caller); timing per the class comment.
  void Send(Message msg);

  /// Marks a node offline (drops traffic both ways) — churn experiments.
  void SetCrashed(NodeId node, bool crashed);
  bool IsCrashed(NodeId node) const { return nodes_[node].crashed; }

  const TrafficStats& StatsFor(NodeId node) const {
    return nodes_[node].stats;
  }
  size_t node_count() const { return nodes_.size(); }
  EventQueue* events() { return events_; }
  SimTime now() const { return events_->now(); }

  uint64_t messages_delivered() const { return messages_delivered_; }
  uint64_t messages_dropped() const { return messages_dropped_; }

 private:
  struct NodeState {
    LinkSpec link;
    Handler handler;
    bool crashed = false;
    SimTime uplink_free_at = 0;
    SimTime downlink_free_at = 0;
    TrafficStats stats;
  };

  EventQueue* events_;
  Rng rng_;
  std::vector<NodeState> nodes_;
  DropFilter drop_filter_;
  SimTime latency_base_ = FromMillis(0.5);  // Paper: 0.5 ms node<->storage.
  SimTime latency_jitter_ = 0;
  uint64_t messages_delivered_ = 0;
  uint64_t messages_dropped_ = 0;
};

}  // namespace porygon::net

#endif  // PORYGON_NET_NETWORK_H_
