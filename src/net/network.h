#ifndef PORYGON_NET_NETWORK_H_
#define PORYGON_NET_NETWORK_H_

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/bytes.h"
#include "common/rng.h"
#include "net/event_queue.h"
#include "net/sim_time.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace porygon::net {

/// Dense node identifier within one simulated network.
using NodeId = uint32_t;
constexpr NodeId kInvalidNode = UINT32_MAX;

/// A protocol message in flight. `wire_size` is what the bandwidth model
/// charges; it may exceed payload.size() when the simulation elides content
/// (e.g. a 2,000-transaction block whose bytes we do not materialize).
struct Message {
  NodeId from = kInvalidNode;
  NodeId to = kInvalidNode;
  uint16_t kind = 0;        ///< Protocol message type (per-protocol enum).
  Bytes payload;            ///< Decoded by the receiving actor.
  size_t wire_size = 0;     ///< Bytes charged to links (>= payload size).
  /// Distributed-tracing context carried with the message (the simulated
  /// analogue of a trace header). Not charged to the bandwidth model — the
  /// Relay wire tail that materializes it on storage hops is subtracted
  /// from the charged size at the sender — so enabling trace sampling
  /// leaves every departure/delivery time byte-identical (pinned by
  /// CriticalPathTest.TraceSamplingLeavesTimingByteIdentical). An inactive
  /// context (the default) means the message is untraced.
  obs::TraceContext trace;
};

/// Per-node link capacity in bytes/second. The paper provisions stateless
/// nodes with 1 MB/s, matching resource-limited mobile devices.
struct LinkSpec {
  double uplink_bps = 1e6;
  double downlink_bps = 1e6;
};

/// Byte counters per node, segmented by message kind so experiments can
/// attribute traffic to protocol phases (Fig 9b).
struct TrafficStats {
  uint64_t bytes_sent = 0;
  uint64_t bytes_received = 0;
  std::unordered_map<uint16_t, uint64_t> sent_by_kind;
  std::unordered_map<uint16_t, uint64_t> received_by_kind;

  /// By-kind counters with keys sorted ascending. unordered_map iteration
  /// order is hash- and libc-dependent, so anything that serializes or
  /// aggregates these maps must go through the sorted views to stay
  /// byte-identical across platforms and runs.
  std::vector<std::pair<uint16_t, uint64_t>> SortedSentByKind() const;
  std::vector<std::pair<uint16_t, uint64_t>> SortedReceivedByKind() const;
};

/// Cumulative per-node link ledger: bytes moved, plus *queueing delay*
/// (time a transmission waited for `uplink_free_at` / `downlink_free_at`)
/// accounted separately from *busy time* (the serialization time the link
/// spent actually transmitting). All integer sim-time microseconds, so
/// window deltas are byte-deterministic for any thread count. Uplink
/// entries are charged when the send is admitted; downlink entries when
/// the message reserves the receiver's downlink (arrival), whether or not
/// the final delivery still finds the receiver alive — the ledger tracks
/// link occupancy, not application receipt (TrafficStats tracks the
/// latter, at delivery).
struct LinkActivity {
  uint64_t bytes_up = 0;
  uint64_t bytes_down = 0;
  uint64_t msgs_up = 0;
  uint64_t msgs_down = 0;
  SimTime queue_up_us = 0;   ///< Total time sends waited on a busy uplink.
  SimTime queue_down_us = 0; ///< Total time arrivals waited on the downlink.
  SimTime busy_up_us = 0;    ///< Total uplink transmission (serialization).
  SimTime busy_down_us = 0;  ///< Total downlink transmission.
};

/// What a fault hook decided for one message (see SimNetwork::SetFaultHook):
/// drop it, deliver it twice, and/or add extra one-way delay. Defaults mean
/// "no fault".
struct FaultDecision {
  bool drop = false;
  bool duplicate = false;
  SimTime extra_delay = 0;
};

/// Point-to-point message fabric with store-and-forward timing:
///
///   depart  = max(now, sender uplink free) + wire_size / uplink_bps
///   arrive  = depart + latency(+jitter)
///   deliver = max(arrive, receiver downlink free) + wire_size / downlink_bps
///
/// Each node registers a handler; delivery invokes it at the computed time.
/// Crashed nodes neither send nor receive. A drop filter lets adversarial
/// actors (malicious storage nodes) censor traffic.
class SimNetwork {
 public:
  using Handler = std::function<void(const Message&)>;
  /// Returns true if the message must be silently dropped.
  using DropFilter = std::function<bool(const Message&)>;
  /// Consulted per send (after crash/filter checks) by a fault injector.
  using FaultHook = std::function<FaultDecision(const Message&)>;

  SimNetwork(EventQueue* events, Rng rng);

  /// Registers a node and returns its id. `node_class` groups nodes for
  /// metrics breakdowns (e.g. "storage" vs "stateless"); it is a label on
  /// the exported series, not part of routing. The node's *role* (the
  /// finer-grained label the bandwidth ledger aggregates by) defaults to
  /// the class; refine it with SetNodeRole.
  NodeId AddNode(const LinkSpec& link, const std::string& node_class = "node");

  /// Refines a node's role label (e.g. "oc_leader" within class
  /// "stateless"). Roles drive the per-role counter series and the
  /// in-flight high-watermark gauges; call before any traffic flows so
  /// every byte of a series is attributed to one role.
  void SetNodeRole(NodeId node, const std::string& role);
  const std::string& RoleName(NodeId node) const {
    return roles_[nodes_[node].role_idx];
  }

  /// Mirrors traffic accounting into `registry` as net.sent_bytes /
  /// net.recv_bytes / net.sent_messages / net.recv_messages counters
  /// labelled {class, role, kind, phase}, queueing-vs-transmission
  /// counters (net.uplink_queue_us / net.uplink_busy_us /
  /// net.downlink_queue_us / net.downlink_busy_us, same labels),
  /// net.queue_delay_seconds histograms labelled {dir}, per-role
  /// net.inflight_hwm gauges, plus net.dropped_messages labelled by
  /// {reason} (sender_crashed, receiver_crashed, drop_filter,
  /// fault_injected). The
  /// `kind_name` / `phase_name` callbacks translate raw message kinds to
  /// stable label values so the export is protocol-aware without the net
  /// layer knowing any protocol enum. Passing nullptr disables mirroring.
  void EnableMetrics(obs::MetricsRegistry* registry,
                     std::function<std::string(uint16_t)> kind_name = {},
                     std::function<std::string(uint16_t)> phase_name = {});

  void SetHandler(NodeId node, Handler handler);
  void SetDropFilter(DropFilter filter) { drop_filter_ = std::move(filter); }
  /// Installs (or clears) the fault-injection hook. At most one is active;
  /// a FaultInjector (net/fault.h) installs itself here.
  void SetFaultHook(FaultHook hook) { fault_hook_ = std::move(hook); }

  /// Base one-way propagation delay and uniform jitter added on top.
  void SetLatency(SimTime base, SimTime jitter) {
    latency_base_ = base;
    latency_jitter_ = jitter;
  }

  /// Sends `msg` (from/to filled by caller); timing per the class comment.
  void Send(Message msg);

  /// Marks a node offline (drops traffic both ways) — churn experiments.
  void SetCrashed(NodeId node, bool crashed);
  bool IsCrashed(NodeId node) const { return nodes_[node].crashed; }

  const TrafficStats& StatsFor(NodeId node) const {
    return nodes_[node].stats;
  }
  /// Cumulative link ledger for one node; window readers (the per-round
  /// critical-path analyzer) snapshot this and difference snapshots.
  const LinkActivity& ActivityFor(NodeId node) const {
    return nodes_[node].activity;
  }
  size_t node_count() const { return nodes_.size(); }
  EventQueue* events() { return events_; }
  SimTime now() const { return events_->now(); }

  uint64_t messages_delivered() const { return messages_delivered_; }
  uint64_t messages_dropped() const { return messages_dropped_; }

  /// In-flight messages currently bound for nodes of `role` (sent, not yet
  /// delivered or dropped) and the high-watermark since the last reset.
  uint64_t InflightFor(const std::string& role) const;
  uint64_t InflightHwmFor(const std::string& role) const;
  /// Re-bases every role's in-flight high-watermark to the current
  /// in-flight level (round-windowed gauges: the round driver calls this
  /// at each round start) and refreshes the net.inflight_hwm gauges.
  void ResetInflightHighWatermarks();

 private:
  struct NodeState {
    LinkSpec link;
    Handler handler;
    bool crashed = false;
    SimTime uplink_free_at = 0;
    SimTime downlink_free_at = 0;
    TrafficStats stats;
    LinkActivity activity;
    uint32_t class_idx = 0;
    uint32_t role_idx = 0;
  };

  /// Registry counters for one (node role, message kind) pair, resolved
  /// once and cached so the per-message cost is a map probe + increments.
  struct KindCounters {
    obs::Counter* sent_bytes = nullptr;
    obs::Counter* recv_bytes = nullptr;
    obs::Counter* sent_messages = nullptr;
    obs::Counter* recv_messages = nullptr;
    obs::Counter* uplink_queue_us = nullptr;
    obs::Counter* uplink_busy_us = nullptr;
    obs::Counter* downlink_queue_us = nullptr;
    obs::Counter* downlink_busy_us = nullptr;
  };

  KindCounters& CountersFor(const NodeState& node, uint16_t kind);
  uint32_t InternRole(const std::string& role);
  /// Gauge for one role's in-flight high-watermark, cached per role.
  obs::Gauge* InflightGauge(uint32_t role_idx);
  void NoteInflight(uint32_t role_idx, int64_t delta);

  /// One-copy transmission (uplink/latency/downlink modeling); `Send` calls
  /// it once, or twice when the fault hook asked for duplication.
  void Transmit(Message msg, SimTime extra_delay);
  /// Counts one drop: the aggregate plus the reason-labelled counter.
  void Drop(obs::Counter* reason_counter);

  EventQueue* events_;
  Rng rng_;
  std::vector<NodeState> nodes_;
  std::vector<std::string> classes_;
  std::vector<std::string> roles_;
  std::vector<uint64_t> inflight_;      // Per role, currently in flight.
  std::vector<uint64_t> inflight_hwm_;  // Per role, since last reset.
  std::vector<obs::Gauge*> inflight_gauges_;  // Per role (lazy, nullable).
  DropFilter drop_filter_;
  FaultHook fault_hook_;
  SimTime latency_base_ = FromMillis(0.5);  // Paper: 0.5 ms node<->storage.
  SimTime latency_jitter_ = 0;
  uint64_t messages_delivered_ = 0;
  uint64_t messages_dropped_ = 0;

  obs::MetricsRegistry* metrics_ = nullptr;
  std::function<std::string(uint16_t)> kind_name_;
  std::function<std::string(uint16_t)> phase_name_;
  // net.dropped_messages is labelled by reason so fault experiments can
  // attribute loss; messages_dropped() stays the cross-reason aggregate.
  obs::Counter* dropped_sender_crashed_ = nullptr;
  obs::Counter* dropped_receiver_crashed_ = nullptr;
  obs::Counter* dropped_filter_ = nullptr;
  obs::Counter* dropped_fault_ = nullptr;
  obs::Counter* delivered_counter_ = nullptr;
  obs::Histogram* queue_up_hist_ = nullptr;
  obs::Histogram* queue_down_hist_ = nullptr;
  std::unordered_map<uint32_t, KindCounters> counter_cache_;
};

}  // namespace porygon::net

#endif  // PORYGON_NET_NETWORK_H_
