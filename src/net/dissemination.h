#ifndef PORYGON_NET_DISSEMINATION_H_
#define PORYGON_NET_DISSEMINATION_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "net/network.h"

namespace porygon::net {

/// How fan-in/fan-out message flows are shaped. kDirect is the legacy
/// leader-centric star (every sender talks to every receiver); kTree routes
/// high-volume flows through per-shard aggregation relays and erasure-coded
/// chunk meshes so no single link carries the whole fan-in.
enum class DisseminationMode : uint8_t {
  kDirect = 0,
  kTree = 1,
};

/// Stable lowercase name used in the `--dissemination=` grammar
/// ("direct" / "tree").
const char* DisseminationModeName(DisseminationMode mode);

/// Declarative description of the run's dissemination strategy. Like
/// AdversarySpec / FaultPlan, a spec is pure data: parsed from a CLI
/// string, built programmatically in tests, stamped into bench envelopes,
/// and replayed. It introduces no randomness at all — relay election and
/// chunk placement are arithmetic over (round, shard, index) — so `direct`
/// runs stay byte-identical to builds that predate the abstraction.
struct DisseminationSpec {
  DisseminationMode mode = DisseminationMode::kDirect;
  /// Erasure-coding geometry for tree-mode body propagation: bodies are
  /// split into `chunk_k` data chunks plus `chunk_n - chunk_k` parity
  /// chunks; any chunk_k of chunk_n reconstruct (common/erasure.h).
  int chunk_k = 4;
  int chunk_n = 6;
  /// Consecutive rounds a relay may fail to deliver before the senders
  /// stop routing through it and fall back to direct fan-out (rides the
  /// strike bookkeeping introduced by the storage-failover machinery).
  int relay_strikes = 2;

  bool tree() const { return mode == DisseminationMode::kTree; }

  /// Parses a CLI spec: a mode head clause followed by optional
  /// comma-separated parameter clauses, mirroring `--faults=` /
  /// `--adversary=`:
  ///
  ///   direct                     legacy star (default; no parameters)
  ///   tree                       relay trees + erasure-coded bodies
  ///   chunks:<k>/<n>             erasure geometry (default 4/6)
  ///   strikes:<n>                relay strikes before direct fallback
  ///
  /// e.g. "tree" or "tree,chunks:3/5,strikes:1". Returns kInvalidArgument
  /// naming the bad clause (parameter clauses on "direct" are rejected —
  /// direct has nothing to configure, and silently ignoring them would
  /// mask typos).
  static Result<DisseminationSpec> Parse(const std::string& spec);

  /// Canonical round-trippable form (Parse(ToString()) == *this).
  std::string ToString() const;

  /// Range checks (2 <= k < n <= 255, strikes >= 1); surfaced through
  /// SystemOptions::Validate.
  Status Validate() const;
};

bool operator==(const DisseminationSpec& a, const DisseminationSpec& b);
inline bool operator!=(const DisseminationSpec& a, const DisseminationSpec& b) {
  return !(a == b);
}

/// Strategy object handed to the actors. Stateless aside from the spec:
/// every election is a pure function of (committee, round, stripe), so any
/// two honest nodes with the same round registry agree on the relay set
/// without extra messages, and rotation-by-round bounds how long a
/// Byzantine relay can sit on a path even before strikes kick in.
class Dissemination {
 public:
  explicit Dissemination(DisseminationSpec spec) : spec_(spec) {}

  const DisseminationSpec& spec() const { return spec_; }
  bool tree() const { return spec_.tree(); }

  /// Index into `members` of the aggregation relay for (round, stripe);
  /// stripe distinguishes co-resident flows (witness vs exec vs vote) so
  /// they do not all pile onto one member. Returns -1 when members is
  /// empty or aggregation cannot help (fewer than 2 members).
  static int AggregatorIndex(size_t members, uint64_t round, uint64_t stripe);

  /// Convenience: the elected relay NodeId, or kInvalidNode.
  static NodeId AggregatorFor(const std::vector<NodeId>& members,
                              uint64_t round, uint64_t stripe);

 private:
  DisseminationSpec spec_;
};

}  // namespace porygon::net

#endif  // PORYGON_NET_DISSEMINATION_H_
