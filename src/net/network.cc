#include "net/network.h"

#include <algorithm>
#include <cassert>

namespace porygon::net {

namespace {
std::vector<std::pair<uint16_t, uint64_t>> SortedByKind(
    const std::unordered_map<uint16_t, uint64_t>& by_kind) {
  std::vector<std::pair<uint16_t, uint64_t>> out(by_kind.begin(),
                                                 by_kind.end());
  std::sort(out.begin(), out.end());
  return out;
}

// Queue-delay buckets: sub-millisecond (uncontended links) through tens of
// seconds (a saturated 1 MB/s downlink absorbing a fan-in burst).
std::vector<double> QueueDelayBuckets() {
  return {1e-4, 3e-4, 1e-3, 3e-3, 1e-2, 3e-2, 0.1, 0.3, 1, 3, 10, 30};
}
}  // namespace

std::vector<std::pair<uint16_t, uint64_t>> TrafficStats::SortedSentByKind()
    const {
  return SortedByKind(sent_by_kind);
}

std::vector<std::pair<uint16_t, uint64_t>> TrafficStats::SortedReceivedByKind()
    const {
  return SortedByKind(received_by_kind);
}

SimNetwork::SimNetwork(EventQueue* events, Rng rng)
    : events_(events), rng_(rng) {}

NodeId SimNetwork::AddNode(const LinkSpec& link,
                           const std::string& node_class) {
  NodeState state;
  state.link = link;
  auto cls = std::find(classes_.begin(), classes_.end(), node_class);
  if (cls == classes_.end()) {
    classes_.push_back(node_class);
    state.class_idx = static_cast<uint32_t>(classes_.size() - 1);
  } else {
    state.class_idx = static_cast<uint32_t>(cls - classes_.begin());
  }
  state.role_idx = InternRole(node_class);
  nodes_.push_back(std::move(state));
  return static_cast<NodeId>(nodes_.size() - 1);
}

uint32_t SimNetwork::InternRole(const std::string& role) {
  auto it = std::find(roles_.begin(), roles_.end(), role);
  if (it != roles_.end()) return static_cast<uint32_t>(it - roles_.begin());
  roles_.push_back(role);
  inflight_.push_back(0);
  inflight_hwm_.push_back(0);
  inflight_gauges_.push_back(nullptr);
  return static_cast<uint32_t>(roles_.size() - 1);
}

void SimNetwork::SetNodeRole(NodeId node, const std::string& role) {
  assert(node < nodes_.size());
  nodes_[node].role_idx = InternRole(role);
}

void SimNetwork::EnableMetrics(obs::MetricsRegistry* registry,
                               std::function<std::string(uint16_t)> kind_name,
                               std::function<std::string(uint16_t)> phase_name) {
  metrics_ = registry;
  kind_name_ = std::move(kind_name);
  phase_name_ = std::move(phase_name);
  counter_cache_.clear();
  std::fill(inflight_gauges_.begin(), inflight_gauges_.end(), nullptr);
  if (metrics_ != nullptr) {
    dropped_sender_crashed_ = metrics_->GetCounter(
        "net.dropped_messages", {{"reason", "sender_crashed"}});
    dropped_receiver_crashed_ = metrics_->GetCounter(
        "net.dropped_messages", {{"reason", "receiver_crashed"}});
    dropped_filter_ = metrics_->GetCounter("net.dropped_messages",
                                           {{"reason", "drop_filter"}});
    dropped_fault_ = metrics_->GetCounter("net.dropped_messages",
                                          {{"reason", "fault_injected"}});
    delivered_counter_ = metrics_->GetCounter("net.delivered_messages");
    queue_up_hist_ = metrics_->GetHistogram(
        "net.queue_delay_seconds", QueueDelayBuckets(), {{"dir", "up"}});
    queue_down_hist_ = metrics_->GetHistogram(
        "net.queue_delay_seconds", QueueDelayBuckets(), {{"dir", "down"}});
  } else {
    dropped_sender_crashed_ = nullptr;
    dropped_receiver_crashed_ = nullptr;
    dropped_filter_ = nullptr;
    dropped_fault_ = nullptr;
    delivered_counter_ = nullptr;
    queue_up_hist_ = nullptr;
    queue_down_hist_ = nullptr;
  }
}

void SimNetwork::Drop(obs::Counter* reason_counter) {
  ++messages_dropped_;
  if (reason_counter != nullptr) reason_counter->Increment();
}

SimNetwork::KindCounters& SimNetwork::CountersFor(const NodeState& node,
                                                  uint16_t kind) {
  const uint32_t key = (node.role_idx << 16) | kind;
  auto it = counter_cache_.find(key);
  if (it != counter_cache_.end()) return it->second;

  obs::Labels labels{{"class", classes_[node.class_idx]},
                     {"role", roles_[node.role_idx]},
                     {"kind", kind_name_ ? kind_name_(kind)
                                         : std::to_string(kind)}};
  if (phase_name_) labels.emplace_back("phase", phase_name_(kind));
  KindCounters counters;
  counters.sent_bytes = metrics_->GetCounter("net.sent_bytes", labels);
  counters.recv_bytes = metrics_->GetCounter("net.recv_bytes", labels);
  counters.sent_messages = metrics_->GetCounter("net.sent_messages", labels);
  counters.recv_messages = metrics_->GetCounter("net.recv_messages", labels);
  counters.uplink_queue_us =
      metrics_->GetCounter("net.uplink_queue_us", labels);
  counters.uplink_busy_us = metrics_->GetCounter("net.uplink_busy_us", labels);
  counters.downlink_queue_us =
      metrics_->GetCounter("net.downlink_queue_us", labels);
  counters.downlink_busy_us =
      metrics_->GetCounter("net.downlink_busy_us", labels);
  return counter_cache_.emplace(key, counters).first->second;
}

obs::Gauge* SimNetwork::InflightGauge(uint32_t role_idx) {
  if (metrics_ == nullptr) return nullptr;
  if (inflight_gauges_[role_idx] == nullptr) {
    inflight_gauges_[role_idx] = metrics_->GetGauge(
        "net.inflight_hwm", {{"role", roles_[role_idx]}});
  }
  return inflight_gauges_[role_idx];
}

void SimNetwork::NoteInflight(uint32_t role_idx, int64_t delta) {
  inflight_[role_idx] += delta;
  if (inflight_[role_idx] > inflight_hwm_[role_idx]) {
    inflight_hwm_[role_idx] = inflight_[role_idx];
    if (obs::Gauge* g = InflightGauge(role_idx); g != nullptr) {
      g->Set(static_cast<double>(inflight_hwm_[role_idx]));
    }
  }
}

uint64_t SimNetwork::InflightFor(const std::string& role) const {
  auto it = std::find(roles_.begin(), roles_.end(), role);
  return it == roles_.end() ? 0 : inflight_[it - roles_.begin()];
}

uint64_t SimNetwork::InflightHwmFor(const std::string& role) const {
  auto it = std::find(roles_.begin(), roles_.end(), role);
  return it == roles_.end() ? 0 : inflight_hwm_[it - roles_.begin()];
}

void SimNetwork::ResetInflightHighWatermarks() {
  for (uint32_t r = 0; r < roles_.size(); ++r) {
    inflight_hwm_[r] = inflight_[r];
    if (obs::Gauge* g = InflightGauge(r); g != nullptr) {
      g->Set(static_cast<double>(inflight_hwm_[r]));
    }
  }
}

void SimNetwork::SetHandler(NodeId node, Handler handler) {
  assert(node < nodes_.size());
  nodes_[node].handler = std::move(handler);
}

void SimNetwork::SetCrashed(NodeId node, bool crashed) {
  assert(node < nodes_.size());
  nodes_[node].crashed = crashed;
}

void SimNetwork::Send(Message msg) {
  assert(msg.from < nodes_.size() && msg.to < nodes_.size());
  if (nodes_[msg.from].crashed) {
    Drop(dropped_sender_crashed_);
    return;
  }
  if (nodes_[msg.to].crashed) {
    Drop(dropped_receiver_crashed_);
    return;
  }
  if (drop_filter_ && drop_filter_(msg)) {
    Drop(dropped_filter_);
    return;
  }
  FaultDecision fault;
  if (fault_hook_) fault = fault_hook_(msg);
  if (fault.drop) {
    Drop(dropped_fault_);
    return;
  }
  // wire_size is authoritative: payloads may carry uncompressed in-memory
  // structs whose wire encoding (what the bandwidth model charges) is
  // smaller. Callers that do not set wire_size get the payload size via
  // their send helpers.
  if (msg.wire_size == 0) msg.wire_size = msg.payload.size();

  if (fault.duplicate) Transmit(msg, fault.extra_delay);
  Transmit(std::move(msg), fault.extra_delay);
}

void SimNetwork::Transmit(Message msg, SimTime extra_delay) {
  NodeState& sender = nodes_[msg.from];
  sender.stats.bytes_sent += msg.wire_size;
  sender.stats.sent_by_kind[msg.kind] += msg.wire_size;

  const SimTime now = events_->now();
  const double up_bps = std::max(sender.link.uplink_bps, 1.0);
  const SimTime tx = static_cast<SimTime>(msg.wire_size / up_bps * 1e6);
  // Queueing delay (waiting for the uplink) is accounted separately from
  // the transmission (serialization) time `tx` — the ledger the per-round
  // critical-path analyzer differences to tell "the link is slow" apart
  // from "the link is oversubscribed".
  const SimTime queue_up =
      sender.uplink_free_at > now ? sender.uplink_free_at - now : 0;
  const SimTime depart = std::max(now, sender.uplink_free_at) + tx;
  sender.uplink_free_at = depart;

  sender.activity.bytes_up += msg.wire_size;
  ++sender.activity.msgs_up;
  sender.activity.queue_up_us += queue_up;
  sender.activity.busy_up_us += tx;
  if (metrics_ != nullptr) {
    KindCounters& counters = CountersFor(sender, msg.kind);
    counters.sent_bytes->Add(msg.wire_size);
    counters.sent_messages->Increment();
    counters.uplink_queue_us->Add(static_cast<uint64_t>(queue_up));
    counters.uplink_busy_us->Add(static_cast<uint64_t>(tx));
    queue_up_hist_->Observe(ToSeconds(queue_up));
  }

  SimTime latency = latency_base_ + extra_delay;
  if (latency_jitter_ > 0) {
    latency += static_cast<SimTime>(
        rng_.NextBelow(static_cast<uint64_t>(latency_jitter_) + 1));
  }
  const SimTime arrive = depart + latency;

  // The receiver's role is fixed at send time so the in-flight increment
  // and its matching decrement always hit the same role bucket.
  const uint32_t to_role = nodes_[msg.to].role_idx;
  NoteInflight(to_role, +1);

  events_->ScheduleAt(arrive, [this, to_role,
                               msg = std::move(msg)]() mutable {
    NodeState& receiver = nodes_[msg.to];
    if (receiver.crashed) {
      NoteInflight(to_role, -1);
      Drop(dropped_receiver_crashed_);
      return;
    }
    const SimTime now = events_->now();
    const double down_bps = std::max(receiver.link.downlink_bps, 1.0);
    const SimTime rx = static_cast<SimTime>(msg.wire_size / down_bps * 1e6);
    const SimTime queue_down =
        receiver.downlink_free_at > now ? receiver.downlink_free_at - now : 0;
    const SimTime deliver = std::max(now, receiver.downlink_free_at) + rx;
    receiver.downlink_free_at = deliver;

    // Ledger entries at link-reservation time (the downlink is occupied
    // from here even if the receiver crashes before the handler runs).
    receiver.activity.bytes_down += msg.wire_size;
    ++receiver.activity.msgs_down;
    receiver.activity.queue_down_us += queue_down;
    receiver.activity.busy_down_us += rx;
    if (metrics_ != nullptr) {
      KindCounters& counters = CountersFor(receiver, msg.kind);
      counters.downlink_queue_us->Add(static_cast<uint64_t>(queue_down));
      counters.downlink_busy_us->Add(static_cast<uint64_t>(rx));
      queue_down_hist_->Observe(ToSeconds(queue_down));
    }

    events_->ScheduleAt(deliver, [this, to_role, msg = std::move(msg)]() {
      NodeState& receiver = nodes_[msg.to];
      NoteInflight(to_role, -1);
      if (receiver.crashed || !receiver.handler) {
        Drop(dropped_receiver_crashed_);
        return;
      }
      receiver.stats.bytes_received += msg.wire_size;
      receiver.stats.received_by_kind[msg.kind] += msg.wire_size;
      if (metrics_ != nullptr) {
        KindCounters& counters = CountersFor(receiver, msg.kind);
        counters.recv_bytes->Add(msg.wire_size);
        counters.recv_messages->Increment();
      }
      ++messages_delivered_;
      if (delivered_counter_ != nullptr) delivered_counter_->Increment();
      receiver.handler(msg);
    });
  });
}

}  // namespace porygon::net
