#include "net/network.h"

#include <algorithm>
#include <cassert>

namespace porygon::net {

namespace {
std::vector<std::pair<uint16_t, uint64_t>> SortedByKind(
    const std::unordered_map<uint16_t, uint64_t>& by_kind) {
  std::vector<std::pair<uint16_t, uint64_t>> out(by_kind.begin(),
                                                 by_kind.end());
  std::sort(out.begin(), out.end());
  return out;
}
}  // namespace

std::vector<std::pair<uint16_t, uint64_t>> TrafficStats::SortedSentByKind()
    const {
  return SortedByKind(sent_by_kind);
}

std::vector<std::pair<uint16_t, uint64_t>> TrafficStats::SortedReceivedByKind()
    const {
  return SortedByKind(received_by_kind);
}

SimNetwork::SimNetwork(EventQueue* events, Rng rng)
    : events_(events), rng_(rng) {}

NodeId SimNetwork::AddNode(const LinkSpec& link,
                           const std::string& node_class) {
  NodeState state;
  state.link = link;
  auto cls = std::find(classes_.begin(), classes_.end(), node_class);
  if (cls == classes_.end()) {
    classes_.push_back(node_class);
    state.class_idx = static_cast<uint32_t>(classes_.size() - 1);
  } else {
    state.class_idx = static_cast<uint32_t>(cls - classes_.begin());
  }
  nodes_.push_back(std::move(state));
  return static_cast<NodeId>(nodes_.size() - 1);
}

void SimNetwork::EnableMetrics(obs::MetricsRegistry* registry,
                               std::function<std::string(uint16_t)> kind_name,
                               std::function<std::string(uint16_t)> phase_name) {
  metrics_ = registry;
  kind_name_ = std::move(kind_name);
  phase_name_ = std::move(phase_name);
  counter_cache_.clear();
  if (metrics_ != nullptr) {
    dropped_sender_crashed_ = metrics_->GetCounter(
        "net.dropped_messages", {{"reason", "sender_crashed"}});
    dropped_receiver_crashed_ = metrics_->GetCounter(
        "net.dropped_messages", {{"reason", "receiver_crashed"}});
    dropped_filter_ = metrics_->GetCounter("net.dropped_messages",
                                           {{"reason", "drop_filter"}});
    dropped_fault_ = metrics_->GetCounter("net.dropped_messages",
                                          {{"reason", "fault_injected"}});
    delivered_counter_ = metrics_->GetCounter("net.delivered_messages");
  } else {
    dropped_sender_crashed_ = nullptr;
    dropped_receiver_crashed_ = nullptr;
    dropped_filter_ = nullptr;
    dropped_fault_ = nullptr;
    delivered_counter_ = nullptr;
  }
}

void SimNetwork::Drop(obs::Counter* reason_counter) {
  ++messages_dropped_;
  if (reason_counter != nullptr) reason_counter->Increment();
}

SimNetwork::KindCounters& SimNetwork::CountersFor(uint32_t class_idx,
                                                  uint16_t kind) {
  const uint32_t key = (class_idx << 16) | kind;
  auto it = counter_cache_.find(key);
  if (it != counter_cache_.end()) return it->second;

  obs::Labels labels{{"class", classes_[class_idx]},
                     {"kind", kind_name_ ? kind_name_(kind)
                                         : std::to_string(kind)}};
  if (phase_name_) labels.emplace_back("phase", phase_name_(kind));
  KindCounters counters;
  counters.sent_bytes = metrics_->GetCounter("net.sent_bytes", labels);
  counters.recv_bytes = metrics_->GetCounter("net.recv_bytes", labels);
  counters.sent_messages = metrics_->GetCounter("net.sent_messages", labels);
  counters.recv_messages = metrics_->GetCounter("net.recv_messages", labels);
  return counter_cache_.emplace(key, counters).first->second;
}

void SimNetwork::SetHandler(NodeId node, Handler handler) {
  assert(node < nodes_.size());
  nodes_[node].handler = std::move(handler);
}

void SimNetwork::SetCrashed(NodeId node, bool crashed) {
  assert(node < nodes_.size());
  nodes_[node].crashed = crashed;
}

void SimNetwork::Send(Message msg) {
  assert(msg.from < nodes_.size() && msg.to < nodes_.size());
  if (nodes_[msg.from].crashed) {
    Drop(dropped_sender_crashed_);
    return;
  }
  if (nodes_[msg.to].crashed) {
    Drop(dropped_receiver_crashed_);
    return;
  }
  if (drop_filter_ && drop_filter_(msg)) {
    Drop(dropped_filter_);
    return;
  }
  FaultDecision fault;
  if (fault_hook_) fault = fault_hook_(msg);
  if (fault.drop) {
    Drop(dropped_fault_);
    return;
  }
  // wire_size is authoritative: payloads may carry uncompressed in-memory
  // structs whose wire encoding (what the bandwidth model charges) is
  // smaller. Callers that do not set wire_size get the payload size via
  // their send helpers.
  if (msg.wire_size == 0) msg.wire_size = msg.payload.size();

  if (fault.duplicate) Transmit(msg, fault.extra_delay);
  Transmit(std::move(msg), fault.extra_delay);
}

void SimNetwork::Transmit(Message msg, SimTime extra_delay) {
  NodeState& sender = nodes_[msg.from];
  sender.stats.bytes_sent += msg.wire_size;
  sender.stats.sent_by_kind[msg.kind] += msg.wire_size;
  if (metrics_ != nullptr) {
    KindCounters& counters = CountersFor(sender.class_idx, msg.kind);
    counters.sent_bytes->Add(msg.wire_size);
    counters.sent_messages->Increment();
  }

  const SimTime now = events_->now();
  const double up_bps = std::max(sender.link.uplink_bps, 1.0);
  const SimTime tx = static_cast<SimTime>(msg.wire_size / up_bps * 1e6);
  const SimTime depart = std::max(now, sender.uplink_free_at) + tx;
  sender.uplink_free_at = depart;

  SimTime latency = latency_base_ + extra_delay;
  if (latency_jitter_ > 0) {
    latency += static_cast<SimTime>(
        rng_.NextBelow(static_cast<uint64_t>(latency_jitter_) + 1));
  }
  const SimTime arrive = depart + latency;

  events_->ScheduleAt(arrive, [this, msg = std::move(msg)]() mutable {
    NodeState& receiver = nodes_[msg.to];
    if (receiver.crashed) {
      Drop(dropped_receiver_crashed_);
      return;
    }
    const double down_bps = std::max(receiver.link.downlink_bps, 1.0);
    const SimTime rx = static_cast<SimTime>(msg.wire_size / down_bps * 1e6);
    const SimTime deliver =
        std::max(events_->now(), receiver.downlink_free_at) + rx;
    receiver.downlink_free_at = deliver;

    events_->ScheduleAt(deliver, [this, msg = std::move(msg)]() {
      NodeState& receiver = nodes_[msg.to];
      if (receiver.crashed || !receiver.handler) {
        Drop(dropped_receiver_crashed_);
        return;
      }
      receiver.stats.bytes_received += msg.wire_size;
      receiver.stats.received_by_kind[msg.kind] += msg.wire_size;
      if (metrics_ != nullptr) {
        KindCounters& counters = CountersFor(receiver.class_idx, msg.kind);
        counters.recv_bytes->Add(msg.wire_size);
        counters.recv_messages->Increment();
      }
      ++messages_delivered_;
      if (delivered_counter_ != nullptr) delivered_counter_->Increment();
      receiver.handler(msg);
    });
  });
}

}  // namespace porygon::net
