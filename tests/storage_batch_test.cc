// Atomic WriteBatch tests, including crash-atomicity via torn-WAL
// injection, plus parameterized property sweeps over engine tuning knobs.

#include <gtest/gtest.h>

#include <map>

#include "common/rng.h"
#include "storage/db.h"
#include "storage/env.h"

namespace porygon::storage {
namespace {

TEST(WriteBatchTest, AppliesAllOperations) {
  MemEnv env;
  auto db = Db::Open(&env, "db");
  ASSERT_TRUE((*db)->Put(ToBytes("victim"), ToBytes("old")).ok());

  Db::WriteBatch batch;
  batch.Put(ToBytes("a"), ToBytes("1"));
  batch.Put(ToBytes("b"), ToBytes("2"));
  batch.Delete(ToBytes("victim"));
  EXPECT_EQ(batch.size(), 3u);
  ASSERT_TRUE((*db)->Write(batch).ok());

  EXPECT_EQ(*(*db)->Get(ToBytes("a")), ToBytes("1"));
  EXPECT_EQ(*(*db)->Get(ToBytes("b")), ToBytes("2"));
  EXPECT_FALSE((*db)->Get(ToBytes("victim")).ok());
}

TEST(WriteBatchTest, EmptyBatchIsNoop) {
  MemEnv env;
  auto db = Db::Open(&env, "db");
  Db::WriteBatch batch;
  ASSERT_TRUE((*db)->Write(batch).ok());
  EXPECT_EQ((*db)->GetStats().sequence, 0u);
}

TEST(WriteBatchTest, SurvivesRecovery) {
  MemEnv env;
  {
    auto db = Db::Open(&env, "db");
    Db::WriteBatch batch;
    for (int i = 0; i < 20; ++i) {
      batch.Put(ToBytes("k" + std::to_string(i)),
                ToBytes("v" + std::to_string(i)));
    }
    ASSERT_TRUE((*db)->Write(batch).ok());
    // No flush: recovery must come from the single WAL batch record.
  }
  auto db = Db::Open(&env, "db");
  ASSERT_TRUE(db.ok());
  for (int i = 0; i < 20; ++i) {
    auto v = (*db)->Get(ToBytes("k" + std::to_string(i)));
    ASSERT_TRUE(v.ok()) << i;
    EXPECT_EQ(*v, ToBytes("v" + std::to_string(i)));
  }
}

TEST(WriteBatchTest, TornBatchRecoversAtomically) {
  // A batch whose WAL record is torn mid-write must disappear entirely on
  // recovery — no partial application.
  MemEnv env;
  {
    auto db = Db::Open(&env, "db");
    ASSERT_TRUE((*db)->Put(ToBytes("before"), ToBytes("safe")).ok());
    Db::WriteBatch batch;
    batch.Put(ToBytes("x"), ToBytes("1"));
    batch.Put(ToBytes("y"), ToBytes("2"));
    ASSERT_TRUE((*db)->Write(batch).ok());
  }
  // Tear the tail of the WAL (inside the batch record).
  auto wal = env.ReadFile("db/wal.log");
  ASSERT_TRUE(wal.ok());
  Bytes torn(*wal);
  torn.resize(torn.size() - 5);
  auto f = env.NewWritableFile("db/wal.log");
  ASSERT_TRUE((*f)->Append(torn).ok());

  auto db = Db::Open(&env, "db");
  ASSERT_TRUE(db.ok());
  EXPECT_EQ(*(*db)->Get(ToBytes("before")), ToBytes("safe"));
  // Neither half of the batch survived.
  EXPECT_FALSE((*db)->Get(ToBytes("x")).ok());
  EXPECT_FALSE((*db)->Get(ToBytes("y")).ok());
}

TEST(WriteBatchTest, SequencesInterleaveWithSingleWrites) {
  MemEnv env;
  auto db = Db::Open(&env, "db");
  ASSERT_TRUE((*db)->Put(ToBytes("k"), ToBytes("first")).ok());
  Db::WriteBatch batch;
  batch.Put(ToBytes("k"), ToBytes("second"));
  ASSERT_TRUE((*db)->Write(batch).ok());
  ASSERT_TRUE((*db)->Put(ToBytes("k"), ToBytes("third")).ok());
  EXPECT_EQ(*(*db)->Get(ToBytes("k")), ToBytes("third"));
  ASSERT_TRUE((*db)->Flush().ok());
  ASSERT_TRUE((*db)->CompactAll().ok());
  EXPECT_EQ(*(*db)->Get(ToBytes("k")), ToBytes("third"));
}

// --- Parameterized engine sweeps ---------------------------------------------

struct EngineConfig {
  size_t write_buffer;
  int l0_trigger;
};

class DbTuningSweep : public ::testing::TestWithParam<EngineConfig> {};

TEST_P(DbTuningSweep, CorrectUnderAnyTuning) {
  // Property: tuning knobs change performance, never results.
  MemEnv env;
  DbOptions options;
  options.write_buffer_size = GetParam().write_buffer;
  options.l0_compaction_trigger = GetParam().l0_trigger;
  auto db = Db::Open(&env, "db", options);
  Rng rng(GetParam().write_buffer ^ GetParam().l0_trigger);
  std::map<std::string, std::string> reference;
  for (int op = 0; op < 1500; ++op) {
    std::string key = "k" + std::to_string(rng.NextBelow(80));
    if (rng.NextBernoulli(0.3)) {
      ASSERT_TRUE((*db)->Delete(ToBytes(key)).ok());
      reference.erase(key);
    } else {
      std::string value = "v" + std::to_string(op);
      ASSERT_TRUE((*db)->Put(ToBytes(key), ToBytes(value)).ok());
      reference[key] = value;
    }
  }
  std::map<std::string, std::string> scanned;
  ASSERT_TRUE((*db)
                  ->Scan(ByteView(), ByteView(),
                         [&](ByteView k, ByteView v) {
                           scanned[k.ToString()] = v.ToString();
                         })
                  .ok());
  EXPECT_EQ(scanned, reference);
}

INSTANTIATE_TEST_SUITE_P(
    Tunings, DbTuningSweep,
    ::testing::Values(EngineConfig{1 << 12, 2},   // Tiny buffer, eager merge.
                      EngineConfig{1 << 14, 4},
                      EngineConfig{1 << 16, 8},
                      EngineConfig{1 << 22, 2}),  // Everything in memtable.
    [](const ::testing::TestParamInfo<EngineConfig>& info) {
      return "buf" + std::to_string(info.param.write_buffer) + "_l0x" +
             std::to_string(info.param.l0_trigger);
    });

}  // namespace
}  // namespace porygon::storage
