// Tests for SHA-256 and SHA-512 against FIPS 180-4 / NIST example vectors.

#include <gtest/gtest.h>

#include <string>

#include "common/bytes.h"
#include "crypto/sha256.h"
#include "crypto/sha512.h"

namespace porygon::crypto {
namespace {

TEST(Sha256Test, EmptyInput) {
  EXPECT_EQ(HashToHex(Sha256::Hash(ByteView(std::string_view("")))),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256Test, Abc) {
  EXPECT_EQ(HashToHex(Sha256::Hash(ByteView(std::string_view("abc")))),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256Test, TwoBlockMessage) {
  const std::string msg =
      "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq";
  EXPECT_EQ(HashToHex(Sha256::Hash(ByteView(std::string_view(msg)))),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256Test, MillionA) {
  Sha256 h;
  std::string chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) h.Update(ByteView(std::string_view(chunk)));
  EXPECT_EQ(HashToHex(h.Finish()),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256Test, IncrementalMatchesOneShot) {
  std::string msg =
      "The quick brown fox jumps over the lazy dog, repeatedly, to cross "
      "block boundaries at odd offsets. 0123456789.";
  auto oneshot = Sha256::Hash(ByteView(std::string_view(msg)));
  for (size_t split = 0; split <= msg.size(); split += 7) {
    Sha256 h;
    h.Update(ByteView(std::string_view(msg).substr(0, split)));
    h.Update(ByteView(std::string_view(msg).substr(split)));
    EXPECT_EQ(h.Finish(), oneshot) << "split at " << split;
  }
}

TEST(Sha256Test, HashPairMatchesConcatenation) {
  Bytes a = ToBytes("left-subtree");
  Bytes b = ToBytes("right-subtree");
  Bytes ab = a;
  ab.insert(ab.end(), b.begin(), b.end());
  EXPECT_EQ(Sha256::HashPair(a, b), Sha256::Hash(ab));
}

TEST(Sha256Test, PrefixU64IsBigEndian) {
  Hash256 h;
  h.fill(0);
  h[0] = 0x01;
  h[7] = 0xff;
  EXPECT_EQ(HashPrefixU64(h), 0x01000000000000ffULL);
}

TEST(Sha512Test, EmptyInput) {
  auto d = Sha512::Hash(ByteView(std::string_view("")));
  EXPECT_EQ(HexEncode(ByteView(d.data(), d.size())),
            "cf83e1357eefb8bdf1542850d66d8007d620e4050b5715dc83f4a921d36ce9ce"
            "47d0d13c5d85f2b0ff8318d2877eec2f63b931bd47417a81a538327af927da3e");
}

TEST(Sha512Test, Abc) {
  auto d = Sha512::Hash(ByteView(std::string_view("abc")));
  EXPECT_EQ(HexEncode(ByteView(d.data(), d.size())),
            "ddaf35a193617abacc417349ae20413112e6fa4e89a97ea20a9eeee64b55d39a"
            "2192992a274fc1a836ba3c23a3feebbd454d4423643ce80e2a9ac94fa54ca49f");
}

TEST(Sha512Test, TwoBlockMessage) {
  const std::string msg =
      "abcdefghbcdefghicdefghijdefghijkefghijklfghijklmghijklmnhijklmno"
      "ijklmnopjklmnopqklmnopqrlmnopqrsmnopqrstnopqrstu";
  auto d = Sha512::Hash(ByteView(std::string_view(msg)));
  EXPECT_EQ(HexEncode(ByteView(d.data(), d.size())),
            "8e959b75dae313da8cf4f72814fc143f8f7779c6eb9f7fa17299aeadb6889018"
            "501d289e4900f7e4331b99dec4b5433ac7d329eeb6dd26545e96e55b874be909");
}

TEST(Sha512Test, IncrementalMatchesOneShot) {
  std::string msg(300, 'x');
  for (size_t i = 0; i < msg.size(); ++i) msg[i] = static_cast<char>(i * 7);
  auto oneshot = Sha512::Hash(ByteView(std::string_view(msg)));
  Sha512 h;
  h.Update(ByteView(std::string_view(msg).substr(0, 129)));
  h.Update(ByteView(std::string_view(msg).substr(129)));
  EXPECT_EQ(h.Finish(), oneshot);
}

}  // namespace
}  // namespace porygon::crypto
