// Committee-formation (sortition) tests: self-selection, verification,
// shard assignment, and the empirical Lemma-1-style composition property.

#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <vector>

#include "common/rng.h"
#include "core/committee.h"
#include "crypto/provider.h"

namespace porygon::core {
namespace {

using crypto::FastProvider;
using crypto::Hash256;
using crypto::KeyPair;

class SortitionTest : public ::testing::Test {
 protected:
  Hash256 PrevHash(uint64_t x) {
    Hash256 h{};
    h[0] = static_cast<uint8_t>(x);
    return h;
  }

  FastProvider provider_;
  Rng rng_{2024};
};

TEST_F(SortitionTest, AssignmentIsDeterministicPerRound) {
  KeyPair kp = provider_.GenerateKeyPair(&rng_);
  auto a1 = Sortition::Assign(&provider_, kp.private_key, 5, PrevHash(1),
                              0.1, 0.6, 2);
  auto a2 = Sortition::Assign(&provider_, kp.private_key, 5, PrevHash(1),
                              0.1, 0.6, 2);
  EXPECT_EQ(a1.role, a2.role);
  EXPECT_EQ(a1.shard, a2.shard);
  EXPECT_EQ(a1.sortition, a2.sortition);
}

TEST_F(SortitionTest, DifferentRoundsReshuffle) {
  // Over many rounds a node's sortition value varies across [0,1).
  KeyPair kp = provider_.GenerateKeyPair(&rng_);
  double min_v = 1.0, max_v = 0.0;
  for (uint64_t r = 0; r < 200; ++r) {
    auto a = Sortition::Assign(&provider_, kp.private_key, r, PrevHash(0),
                               0.1, 0.6, 2);
    min_v = std::min(min_v, a.sortition);
    max_v = std::max(max_v, a.sortition);
  }
  EXPECT_LT(min_v, 0.2);
  EXPECT_GT(max_v, 0.8);
}

TEST_F(SortitionTest, VerificationAcceptsHonestAndRejectsForged) {
  KeyPair kp = provider_.GenerateKeyPair(&rng_);
  auto a = Sortition::Assign(&provider_, kp.private_key, 9, PrevHash(3),
                             0.2, 0.7, 3);
  EXPECT_TRUE(Sortition::Verify(&provider_, kp.public_key, 9, PrevHash(3),
                                0.2, 0.7, 3, a));

  // Claiming a different role fails.
  Assignment forged = a;
  forged.role = (a.role == Role::kOrdering) ? Role::kExecution
                                            : Role::kOrdering;
  EXPECT_FALSE(Sortition::Verify(&provider_, kp.public_key, 9, PrevHash(3),
                                 0.2, 0.7, 3, forged));

  // Claiming another node's proof fails.
  KeyPair other = provider_.GenerateKeyPair(&rng_);
  EXPECT_FALSE(Sortition::Verify(&provider_, other.public_key, 9, PrevHash(3),
                                 0.2, 0.7, 3, a));

  // A proof for a different round fails.
  EXPECT_FALSE(Sortition::Verify(&provider_, kp.public_key, 10, PrevHash(3),
                                 0.2, 0.7, 3, a));
}

TEST_F(SortitionTest, CommitteeSizesMatchThresholds) {
  // With ordering fraction p over n nodes, the OC has ~p*n members —
  // the binomial concentration Lemma 1 relies on.
  const int n = 3000;
  const double ord = 0.05, exec = 0.55;
  std::vector<KeyPair> keys;
  keys.reserve(n);
  for (int i = 0; i < n; ++i) keys.push_back(provider_.GenerateKeyPair(&rng_));

  int oc = 0, ec = 0, idle = 0;
  for (const auto& kp : keys) {
    auto a = Sortition::Assign(&provider_, kp.private_key, 1, PrevHash(7),
                               ord, exec, 2);
    switch (a.role) {
      case Role::kOrdering:
        ++oc;
        break;
      case Role::kExecution:
        ++ec;
        break;
      case Role::kIdle:
        ++idle;
        break;
    }
  }
  EXPECT_NEAR(oc, n * ord, 4 * std::sqrt(n * ord * (1 - ord)));
  EXPECT_NEAR(ec, n * exec, 4 * std::sqrt(n * exec * (1 - exec)));
  EXPECT_EQ(oc + ec + idle, n);
}

TEST_F(SortitionTest, ShardsAreBalanced) {
  const int n = 4000;
  const int shard_bits = 2;
  std::map<uint32_t, int> per_shard;
  for (int i = 0; i < n; ++i) {
    KeyPair kp = provider_.GenerateKeyPair(&rng_);
    auto a = Sortition::Assign(&provider_, kp.private_key, 2, PrevHash(9),
                               0.0, 1.0, shard_bits);
    ASSERT_EQ(a.role, Role::kExecution);
    ASSERT_LT(a.shard, 4u);
    per_shard[a.shard]++;
  }
  for (const auto& [shard, count] : per_shard) {
    EXPECT_NEAR(count, n / 4.0, 4 * std::sqrt(n * 0.25 * 0.75)) << shard;
  }
}

TEST_F(SortitionTest, LeaderIsLowestSortitionAndUnpredictable) {
  // The OC member with the smallest sortition value leads; changing the
  // previous block hash changes the leader (grinding resistance comes from
  // the VRF).
  const int n = 50;
  std::vector<KeyPair> keys;
  for (int i = 0; i < n; ++i) keys.push_back(provider_.GenerateKeyPair(&rng_));

  auto leader_for = [&](const Hash256& prev) {
    int best = -1;
    double best_v = 2.0;
    for (int i = 0; i < n; ++i) {
      auto a = Sortition::Assign(&provider_, keys[i].private_key, 4, prev,
                                 1.0, 0.0, 0);
      if (a.sortition < best_v) {
        best_v = a.sortition;
        best = i;
      }
    }
    return best;
  };
  // Not a hard guarantee per pair, but across several prev-hashes the
  // leader must change at least once.
  int first = leader_for(PrevHash(0));
  bool changed = false;
  for (uint64_t h = 1; h < 8 && !changed; ++h) {
    changed = leader_for(PrevHash(h)) != first;
  }
  EXPECT_TRUE(changed);
}

}  // namespace
}  // namespace porygon::core
