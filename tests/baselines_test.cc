// Baseline-system tests: Blockene (1D stateless) and ByShard (sharded full
// nodes) commit transactions correctly and expose the qualitative gaps the
// paper measures (no pipelining => lower throughput; full nodes => growing
// storage).

#include <gtest/gtest.h>

#include <map>

#include "baselines/blockene.h"
#include "baselines/byshard.h"
#include "simulation/model.h"
#include "workload/generator.h"

namespace porygon::baselines {
namespace {

tx::Transaction Transfer(uint64_t from, uint64_t to, uint64_t amount,
                         uint64_t nonce) {
  tx::Transaction t;
  t.from = from;
  t.to = to;
  t.amount = amount;
  t.nonce = nonce;
  return t;
}

TEST(BlockeneTest, CommitsTransactionsSequentially) {
  BlockeneOptions opt;
  opt.num_stateless_nodes = 20;
  opt.committee_size = 5;
  opt.block_tx_limit = 100;
  BlockeneSystem sys(opt);
  sys.CreateAccounts(50, 1'000);
  for (uint64_t i = 1; i <= 30; ++i) {
    ASSERT_TRUE(sys.SubmitTransaction(Transfer(i, i % 50 + 1, 3, 0)));
  }
  sys.Run(5);
  EXPECT_EQ(sys.metrics().committed_txs, 30u);
  EXPECT_GE(sys.metrics().committed_blocks, 1u);

  uint64_t total = 0;
  for (uint64_t id = 1; id <= 50; ++id) {
    total += sys.state().GetOrDefault(id).balance;
  }
  EXPECT_EQ(total, 50u * 1'000u);
}

TEST(BlockeneTest, RoundsAreLongBecausePhasesSerialize) {
  BlockeneOptions opt;
  opt.num_stateless_nodes = 20;
  opt.committee_size = 5;
  opt.block_tx_limit = 2000;
  BlockeneSystem sys(opt);
  sys.CreateAccounts(3000, 1'000);
  workload::WorkloadGenerator gen({.num_accounts = 3000, .shard_bits = 0});
  for (const auto& t : gen.Batch(6000)) sys.SubmitTransaction(t);
  sys.Run(3);
  // Round >= reconfig (2s) + download + order + execute + commit phases.
  double mean_block =
      BlockeneMetrics{}.Tps(1) == 0  // Silence unused-warning pattern.
          ? 0
          : 0;
  (void)mean_block;
  ASSERT_FALSE(sys.metrics().block_latencies_s.empty());
  double mean = 0;
  for (double v : sys.metrics().block_latencies_s) mean += v;
  mean /= sys.metrics().block_latencies_s.size();
  EXPECT_GT(mean, 5.0);  // Sequential phases: > 5 s per block.
}

TEST(BlockeneTest, ChurnCausesEmptyRounds) {
  BlockeneOptions opt;
  opt.num_stateless_nodes = 30;
  opt.committee_size = 10;
  opt.block_tx_limit = 50;
  opt.mean_session_s = 5.0;  // Much shorter than the 50-round tenure.
  BlockeneSystem sys(opt);
  sys.CreateAccounts(100, 1'000);
  workload::WorkloadGenerator gen({.num_accounts = 100, .shard_bits = 0});
  for (const auto& t : gen.Batch(2000)) sys.SubmitTransaction(t);
  sys.Run(12);
  EXPECT_GT(sys.metrics().empty_rounds, 0u);
}

TEST(ByshardTest, CommitsIntraAndCrossShard) {
  ByshardOptions opt;
  opt.shard_bits = 1;
  opt.nodes_per_shard = 4;
  opt.block_tx_limit = 100;
  ByshardSystem sys(opt);
  sys.CreateAccounts(40, 1'000);

  // 2->4 intra (both even), 1->4 cross.
  ASSERT_TRUE(sys.SubmitTransaction(Transfer(2, 4, 10, 0)));
  ASSERT_TRUE(sys.SubmitTransaction(Transfer(1, 4, 5, 0)));
  sys.Run(4);

  EXPECT_EQ(sys.metrics().committed_intra_txs, 1u);
  EXPECT_EQ(sys.metrics().committed_cross_txs, 1u);
  EXPECT_EQ(sys.state().GetOrDefault(2).balance, 990u);
  EXPECT_EQ(sys.state().GetOrDefault(4).balance, 1015u);
  EXPECT_EQ(sys.state().GetOrDefault(1).balance, 995u);
}

TEST(ByshardTest, BalanceConservedUnderMixedLoad) {
  ByshardOptions opt;
  opt.shard_bits = 2;
  opt.nodes_per_shard = 4;
  opt.block_tx_limit = 200;
  ByshardSystem sys(opt);
  sys.CreateAccounts(100, 500);
  workload::WorkloadGenerator gen(
      {.num_accounts = 100, .shard_bits = 2, .seed = 9});
  for (const auto& t : gen.Batch(300)) sys.SubmitTransaction(t);
  sys.Run(6);
  uint64_t total = 0;
  for (uint64_t id = 1; id <= 100; ++id) {
    total += sys.state().GetOrDefault(id).balance;
  }
  EXPECT_EQ(total, 100u * 500u);
  EXPECT_GT(sys.metrics().committed_intra_txs +
                sys.metrics().committed_cross_txs,
            0u);
}

TEST(ByshardTest, FullNodeStorageGrowsWithHeight) {
  ByshardOptions opt;
  opt.shard_bits = 1;
  opt.nodes_per_shard = 4;
  opt.block_tx_limit = 500;
  ByshardSystem sys(opt);
  sys.CreateAccounts(2000, 1'000);
  workload::WorkloadGenerator gen(
      {.num_accounts = 2000, .shard_bits = 1, .seed = 4});
  for (const auto& t : gen.Batch(3000)) sys.SubmitTransaction(t);
  sys.Run(3);
  uint64_t early = sys.NodeStorageBytes(0);
  for (const auto& t : gen.Batch(3000)) sys.SubmitTransaction(t);
  sys.Run(3);
  uint64_t later = sys.NodeStorageBytes(0);
  EXPECT_GT(later, early);  // Chains grow; Porygon's stateless nodes don't.
}

}  // namespace
}  // namespace porygon::baselines

namespace porygon::workload {
namespace {

TEST(WorkloadTest, NoncesAreConsecutivePerSender) {
  WorkloadGenerator gen({.num_accounts = 10, .shard_bits = 1, .seed = 2});
  std::map<uint64_t, uint64_t> next_nonce;
  for (const auto& t : gen.Batch(500)) {
    EXPECT_EQ(t.nonce, next_nonce[t.from]++);
    EXPECT_NE(t.from, t.to);
    EXPECT_GE(t.from, 1u);
    EXPECT_LE(t.from, 10u);
  }
}

TEST(WorkloadTest, CrossShardRatioIsRespected) {
  WorkloadOptions opt;
  opt.num_accounts = 10'000;
  opt.shard_bits = 2;
  opt.seed = 3;
  for (double ratio : {0.0, 0.3, 0.7, 1.0}) {
    opt.cross_shard_ratio = ratio;
    WorkloadGenerator gen(opt);
    int cross = 0;
    const int n = 4000;
    for (const auto& t : gen.Batch(n)) {
      if (t.IsCrossShard(2)) ++cross;
    }
    EXPECT_NEAR(static_cast<double>(cross) / n, ratio, 0.05) << ratio;
  }
}

TEST(WorkloadTest, ZipfSkewsSenders) {
  WorkloadOptions opt;
  opt.num_accounts = 1000;
  opt.zipf_s = 1.1;
  opt.seed = 5;
  WorkloadGenerator gen(opt);
  std::map<uint64_t, int> counts;
  for (const auto& t : gen.Batch(5000)) counts[t.from]++;
  // The most popular sender appears far more often than the mean (5).
  int max_count = 0;
  for (const auto& [id, c] : counts) max_count = std::max(max_count, c);
  EXPECT_GT(max_count, 100);
}

}  // namespace
}  // namespace porygon::workload

namespace porygon::sim {
namespace {

TEST(ModelTest, ThroughputScalesWithShards) {
  ModelConfig cfg;
  cfg.shards = 10;
  double tps10 = EstimatePorygon(cfg).tps;
  cfg.shards = 50;
  double tps50 = EstimatePorygon(cfg).tps;
  EXPECT_GT(tps50, 3.0 * tps10);  // Near-linear scaling (Fig 7b).
  EXPECT_LT(tps50, 5.5 * tps10);
}

TEST(ModelTest, PipeliningImprovesThroughput) {
  ModelConfig cfg;
  cfg.shards = 1;
  cfg.sharding = false;
  cfg.pipelining = false;
  double without = EstimatePorygon(cfg).tps;
  cfg.pipelining = true;
  double with = EstimatePorygon(cfg).tps;
  EXPECT_GT(with, without);  // Fig 7c/7d second bar.
}

TEST(ModelTest, CrossShardRatioDegradesGracefully) {
  ModelConfig cfg;
  cfg.shards = 10;
  cfg.cross_shard_ratio = 0.5;
  auto lo = EstimatePorygon(cfg);
  cfg.cross_shard_ratio = 1.0;
  auto hi = EstimatePorygon(cfg);
  // Table I: ~4% throughput drop, slight latency increase.
  EXPECT_LT(hi.tps, lo.tps);
  EXPECT_GT(hi.tps, 0.9 * lo.tps);
  EXPECT_GT(hi.block_latency_s, lo.block_latency_s);
  EXPECT_LT(hi.block_latency_s, lo.block_latency_s + 1.0);
}

TEST(ModelTest, PorygonBeatsBaselinesAtScale) {
  ModelConfig cfg;
  cfg.shards = 10;
  double porygon = EstimatePorygon(cfg).tps;
  double blockene = EstimateBlockene(cfg).tps;
  // ByShard at prototype scale: 10 full nodes per shard, 1,000-tx blocks
  // (§VI: "Blocks in both systems contain about 1,000 transactions").
  ModelConfig bys = cfg;
  bys.nodes_per_shard = 10;
  bys.txs_per_block = 1000;
  double byshard = EstimateByshard(bys).tps;
  EXPECT_GT(porygon, 2.0 * byshard);    // Paper: ~2.3x sharding systems.
  EXPECT_GT(porygon, 10.0 * blockene);  // Paper: ~20x stateless systems.
  EXPECT_GT(byshard, blockene);
}

TEST(ModelTest, OfferedLoadCapsThroughput) {
  ModelConfig cfg;
  cfg.shards = 10;
  cfg.offered_tps = 1000;
  EXPECT_DOUBLE_EQ(EstimatePorygon(cfg).tps, 1000);
}

}  // namespace
}  // namespace porygon::sim
