// Wire-format round-trip tests for every protocol message, plus the
// phase-accounting map (Fig 9b's buckets).

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/messages.h"
#include "crypto/provider.h"

namespace porygon::core {
namespace {

crypto::Hash256 H(uint8_t tag) {
  crypto::Hash256 h{};
  h[0] = tag;
  return h;
}

TEST(MessagesTest, RoleAnnounceRoundTrip) {
  crypto::FastProvider provider;
  Rng rng(1);
  auto kp = provider.GenerateKeyPair(&rng);
  RoleAnnounce a;
  a.round = 42;
  a.role = static_cast<uint8_t>(Role::kExecution);
  a.shard = 3;
  a.sortition = 0.125;
  a.node_key = kp.public_key;
  a.proof = provider.Prove(kp.private_key, ToBytes("seed"));
  a.node_id = 17;

  auto d = RoleAnnounce::Decode(a.Encode());
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d->round, 42u);
  EXPECT_EQ(d->shard, 3u);
  EXPECT_EQ(d->sortition, 0.125);
  EXPECT_EQ(d->node_key, kp.public_key);
  EXPECT_EQ(d->proof.output, a.proof.output);
  EXPECT_EQ(d->node_id, 17u);
}

TEST(MessagesTest, WitnessUploadRoundTrip) {
  WitnessUpload w;
  w.round = 5;
  w.shard = 2;
  w.proof.block_id = H(1);
  w.proof.witness.fill(0xAA);
  w.proof.signature.fill(0xBB);
  auto d = WitnessUpload::Decode(w.Encode());
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d->round, 5u);
  EXPECT_EQ(d->proof.block_id, H(1));
  EXPECT_EQ(d->proof.signature, w.proof.signature);
}

TEST(MessagesTest, WitnessBundleRoundTripAndWireSize) {
  WitnessBundle bundle;
  bundle.batch_round = 9;
  WitnessedBlock wb;
  wb.header.shard = 1;
  wb.header.tx_count = 2;
  tx::WitnessProof proof;
  proof.block_id = H(2);
  wb.proofs.push_back(proof);
  wb.accesses.push_back({H(3), 10, 20, 5, 0, 1000});
  wb.accesses.push_back({H(4), 11, 21, 6, 1, 1001});
  bundle.blocks.push_back(wb);

  auto d = WitnessBundle::Decode(bundle.Encode());
  ASSERT_TRUE(d.ok());
  ASSERT_EQ(d->blocks.size(), 1u);
  EXPECT_EQ(d->blocks[0].accesses.size(), 2u);
  EXPECT_EQ(d->blocks[0].accesses[1].to, 21u);

  // Wire size charges the compressed encoding (6 B/access), far below the
  // in-memory payload.
  EXPECT_LT(bundle.WireSize(), bundle.Encode().size());
}

TEST(MessagesTest, ExecRequestRoundTrip) {
  ExecRequest req;
  req.round = 7;
  req.shard = 1;
  req.block_ids = {H(5), H(6)};
  req.updates = {{100, {2000, 3}}};
  req.discarded = {H(7)};
  req.shard_root = H(8);
  req.all_roots = {H(9), H(10)};
  req.members = {4, 8, 15};

  auto d = ExecRequest::Decode(req.Encode());
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d->block_ids.size(), 2u);
  EXPECT_EQ(d->updates[0].account, 100u);
  EXPECT_EQ(d->updates[0].value.balance, 2000u);
  EXPECT_EQ(d->discarded[0], H(7));
  EXPECT_EQ(d->all_roots[1], H(10));
  EXPECT_EQ(d->members, (std::vector<net::NodeId>{4, 8, 15}));
}

TEST(MessagesTest, StateRequestResponseRoundTrip) {
  StateRequest req;
  req.round = 3;
  req.shard = 0;
  req.accounts = {1, 2, 3};
  auto dreq = StateRequest::Decode(req.Encode());
  ASSERT_TRUE(dreq.ok());
  EXPECT_EQ(dreq->accounts, req.accounts);

  StateResponse resp;
  resp.round = 3;
  resp.shard = 0;
  resp.entries = {{1, true, {500, 2}}, {2, false, {}}};
  resp.proof_bytes = 256;
  resp.proofs = {ToBytes("proof-one"), ToBytes("proof-two")};
  auto dresp = StateResponse::Decode(resp.Encode());
  ASSERT_TRUE(dresp.ok());
  EXPECT_EQ(dresp->entries.size(), 2u);
  EXPECT_TRUE(dresp->entries[0].present);
  EXPECT_FALSE(dresp->entries[1].present);
  EXPECT_EQ(dresp->proof_bytes, 256u);
  EXPECT_EQ(dresp->proofs[1], ToBytes("proof-two"));
}

TEST(MessagesTest, ExecResultAttestationOmitsPayload) {
  crypto::FastProvider provider;
  Rng rng(2);
  auto kp = provider.GenerateKeyPair(&rng);

  ExecResultMsg full;
  full.exec_round = 4;
  full.shard = 1;
  full.new_root = H(11);
  full.s_set = {{7, {70, 1}}, {8, {80, 0}}};
  full.s_hash = ExecResultMsg::HashSSet(full.s_set);
  full.full = true;
  full.signer = kp.public_key;
  full.signature = provider.Sign(kp.private_key, full.SigningBytes());

  ExecResultMsg attest = full;
  attest.full = false;
  attest.s_set.clear();

  // Attestations are much smaller but sign the same content.
  EXPECT_LT(attest.Encode().size(), full.Encode().size());
  EXPECT_EQ(attest.SigningBytes(), full.SigningBytes());

  auto dfull = ExecResultMsg::Decode(full.Encode());
  ASSERT_TRUE(dfull.ok());
  EXPECT_EQ(dfull->s_set.size(), 2u);
  EXPECT_EQ(ExecResultMsg::HashSSet(dfull->s_set), dfull->s_hash);

  auto dattest = ExecResultMsg::Decode(attest.Encode());
  ASSERT_TRUE(dattest.ok());
  EXPECT_TRUE(dattest->s_set.empty());
  EXPECT_EQ(dattest->s_hash, full.s_hash);
}

TEST(MessagesTest, RelayRoundTrip) {
  Relay r;
  r.target = Relay::kToShardCommittee;
  r.round = 12;
  r.shard = 3;
  r.dest = 77;
  r.inner_kind = kMsgExecResult;
  r.inner = ToBytes("inner-bytes");
  auto d = Relay::Decode(r.Encode());
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d->target, Relay::kToShardCommittee);
  EXPECT_EQ(d->round, 12u);
  EXPECT_EQ(d->inner_kind, kMsgExecResult);
  EXPECT_EQ(d->inner, ToBytes("inner-bytes"));
}

TEST(MessagesTest, PhaseMapCoversProtocolKinds) {
  EXPECT_EQ(PhaseOfKind(kMsgTxBlock), 0);
  EXPECT_EQ(PhaseOfKind(kMsgWitnessUpload), 0);
  EXPECT_EQ(PhaseOfKind(kMsgWitnessBundle), 1);
  EXPECT_EQ(PhaseOfKind(kMsgVote), 1);
  EXPECT_EQ(PhaseOfKind(kMsgStateResponse), 2);
  EXPECT_EQ(PhaseOfKind(kMsgExecResult), 2);
  EXPECT_EQ(PhaseOfKind(kMsgCommit), 3);
  EXPECT_EQ(PhaseOfKind(kMsgNewRound), 3);
  EXPECT_EQ(PhaseOfKind(kMsgSubmitTx), -1);
  EXPECT_EQ(PhaseOfKind(kMsgGossip), -1);
}

TEST(MessagesTest, CorruptInputsRejected) {
  EXPECT_FALSE(RoleAnnounce::Decode(ToBytes("short")).ok());
  EXPECT_FALSE(WitnessBundle::Decode(ToBytes("x")).ok());
  EXPECT_FALSE(ExecRequest::Decode(ToBytes("")).ok());
  EXPECT_FALSE(ExecResultMsg::Decode(ToBytes("??")).ok());
  EXPECT_FALSE(Relay::Decode(ToBytes("")).ok());
}

}  // namespace
}  // namespace porygon::core
