// Epoch-based committee reconfiguration (§III-B's periodic re-formation):
// every SystemOptions::epoch_length rounds the OC is re-drawn by VRF
// sortition over the committed tip, adversary placement is re-dealt, the
// coordinator's locked S-sets migrate to the new leader, and the members
// re-announce over the network. These tests pin down rotation, determinism
// across seeds and thread counts, adversary bounds at every epoch, and
// crash recovery straddling a boundary.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "core/adversary.h"
#include "core/system.h"
#include "net/fault.h"
#include "workload/soak.h"

namespace porygon::core {
namespace {

SystemOptions Opts() {
  SystemOptions opt;
  opt.params.shard_bits = 1;
  opt.params.witness_threshold = 2;
  opt.params.execution_threshold = 2;
  opt.params.block_tx_limit = 50;
  opt.params.storage_connections = 2;
  opt.num_storage_nodes = 2;
  opt.num_stateless_nodes = 26;
  opt.oc_size = 4;
  opt.seed = 7;
  return opt;
}

tx::Transaction Transfer(uint64_t from, uint64_t to, uint64_t amount,
                         uint64_t nonce) {
  tx::Transaction t;
  t.from = from;
  t.to = to;
  t.amount = amount;
  t.nonce = nonce;
  return t;
}

/// A deployment with `epoch_length` run for `rounds` rounds under a mixed
/// intra/cross workload (same shape as the adversary suite's driver).
std::unique_ptr<PorygonSystem> RunWithEpochs(uint64_t epoch_length,
                                             int rounds,
                                             const std::string& adversary = "",
                                             int threads = 0,
                                             bool trace = false) {
  SystemOptions opt = Opts();
  opt.epoch_length = epoch_length;
  opt.worker_threads = threads;
  opt.trace.enabled = trace;
  if (!adversary.empty()) {
    auto spec = AdversarySpec::Parse(adversary);
    EXPECT_TRUE(spec.ok()) << adversary;
    opt.adversary = *spec;
  }
  auto sys = std::make_unique<PorygonSystem>(opt);
  sys->CreateAccounts(120, 10'000);
  for (uint64_t f = 1; f <= 12; ++f) {
    sys->SubmitTransaction(Transfer(f, f + 20, 1, 0));
    sys->SubmitTransaction(Transfer(f + 40, f + 101, 2, 0));
  }
  sys->Run(rounds, net::FromSeconds(60.0 * rounds));
  return sys;
}

std::set<int> OcMembers(PorygonSystem& sys) {
  std::set<int> members;
  for (int i = 0; i < sys.num_stateless_nodes(); ++i) {
    if (sys.stateless_node(i)->in_oc()) members.insert(i);
  }
  return members;
}

uint64_t Epochs(const PorygonSystem& sys) {
  const auto* c = sys.metrics_registry().FindCounter("core.epochs", {});
  return c == nullptr ? 0 : c->value();
}

TEST(EpochTest, ValidateRejectsEpochLengthOne) {
  SystemOptions opt = Opts();
  opt.epoch_length = 1;
  EXPECT_TRUE(opt.Validate().IsInvalidArgument());
  opt.epoch_length = 0;
  EXPECT_TRUE(opt.Validate().ok());
  opt.epoch_length = 2;
  EXPECT_TRUE(opt.Validate().ok());
}

TEST(EpochTest, CommitteeRotatesAtEpochBoundaries) {
  SystemOptions opt = Opts();
  PorygonSystem genesis_probe(opt);  // Epoch-free baseline membership.
  const std::set<int> genesis_oc = OcMembers(genesis_probe);

  auto sys = RunWithEpochs(/*epoch_length=*/4, /*rounds=*/12);
  // Boundaries at rounds 4 and 8 reconfigure during the run; the round-12
  // boundary fires at the final StartRound.
  EXPECT_EQ(Epochs(*sys), 3u);
  // Liveness across the churn: every round still closed, nothing diverged.
  EXPECT_EQ(sys->metrics().committed_blocks(), 12u);
  EXPECT_EQ(sys->metrics().replay_mismatches(), 0u);
  // Membership is a fresh VRF draw over the round-12 tip — with 26
  // candidates and a 4-seat committee the draw virtually never reproduces
  // the genesis committee (and this seed's doesn't).
  EXPECT_EQ(OcMembers(*sys).size(), 4u);
  EXPECT_NE(OcMembers(*sys), genesis_oc);
  // The epoch re-announces registered with the storage layer.
  EXPECT_EQ(sys->RegisteredOcMembers(12), 4u);
  // Every OC member still agrees on one consistent chain.
  workload::InvariantChecker checker;
  EXPECT_TRUE(checker.CheckChainIntegrity(*sys).ok());
  EXPECT_TRUE(checker.CheckBoundedCommitGap(*sys).ok());
}

TEST(EpochTest, SameSeedSameEpochsReplayByteIdentically) {
  auto a = RunWithEpochs(4, 12, "", 0, /*trace=*/true);
  auto b = RunWithEpochs(4, 12, "", 0, /*trace=*/true);
  EXPECT_EQ(a->canonical_state().GlobalRoot(),
            b->canonical_state().GlobalRoot());
  EXPECT_EQ(a->metrics().ToJson(), b->metrics().ToJson());
  EXPECT_EQ(a->metrics().ToCsv(), b->metrics().ToCsv());
  EXPECT_EQ(a->tracer()->ExportChromeJson(), b->tracer()->ExportChromeJson());
}

TEST(EpochThreadInvarianceTest, EpochExportsAreThreadInvariant) {
  unsetenv("PORYGON_THREADS");
  auto serial = RunWithEpochs(4, 12, "", /*threads=*/0, /*trace=*/true);
  auto one = RunWithEpochs(4, 12, "", /*threads=*/1, /*trace=*/true);
  auto pooled = RunWithEpochs(4, 12, "", /*threads=*/4, /*trace=*/true);
  EXPECT_EQ(serial->canonical_state().GlobalRoot(),
            one->canonical_state().GlobalRoot());
  EXPECT_EQ(serial->canonical_state().GlobalRoot(),
            pooled->canonical_state().GlobalRoot());
  EXPECT_EQ(serial->metrics().ToJson(), one->metrics().ToJson());
  EXPECT_EQ(serial->metrics().ToJson(), pooled->metrics().ToJson());
  EXPECT_EQ(serial->tracer()->ExportChromeJson(),
            pooled->tracer()->ExportChromeJson());
}

TEST(EpochAdversaryTest, PlacementIsRedrawnWithinBoundsEachEpoch) {
  // Unit level: PlaceStateless across epoch ordinals must respect the α
  // budget every time, keep the leader exempt, and actually re-deal.
  AdversarySpec spec;
  spec.stateless = AdvStrategy::kEquivocate;
  spec.alpha = 0.25;
  spec.seed = 9;
  AdversaryController adversary(spec, nullptr, nullptr);

  const int n = 26;
  std::vector<int> order(n);
  for (int i = 0; i < n; ++i) order[i] = i;  // Identity sortition order.
  const int oc_size = 4;
  const int leader = order[0];

  std::vector<std::vector<AdvStrategy>> placements;
  for (uint64_t epoch = 0; epoch < 6; ++epoch) {
    auto placed = adversary.PlaceStateless(order, oc_size, leader, epoch);
    int corrupted = 0;
    for (int i = 0; i < n; ++i) {
      if (placed[static_cast<size_t>(i)] != AdvStrategy::kHonest) ++corrupted;
    }
    EXPECT_LE(corrupted, static_cast<int>(n * spec.alpha)) << epoch;
    EXPECT_GT(corrupted, 0) << epoch;
    EXPECT_EQ(placed[static_cast<size_t>(leader)], AdvStrategy::kHonest)
        << "leader corrupted in epoch " << epoch;
    placements.push_back(std::move(placed));
  }
  // Same epoch ordinal -> identical deal (determinism for replay)...
  EXPECT_EQ(adversary.PlaceStateless(order, oc_size, leader, 3),
            placements[3]);
  // ...but across epochs the non-OC remainder moves: at least one pair of
  // consecutive epochs must differ (all six identical would mean the epoch
  // ordinal never reached the placement stream).
  bool any_differ = false;
  for (size_t e = 1; e < placements.size(); ++e) {
    if (placements[e] != placements[e - 1]) any_differ = true;
  }
  EXPECT_TRUE(any_differ);
}

TEST(EpochAdversaryTest, AdversarialEpochRunMatchesCleanRun) {
  // System level: with epoch churn AND an α = 1/4 equivocator re-dealt at
  // every boundary, honest nodes still commit the clean run's exact chain.
  auto clean = RunWithEpochs(4, 12);
  auto adv = RunWithEpochs(4, 12, "stateless:equivocate,alpha:0.25,seed:11");
  EXPECT_EQ(Epochs(*adv), 3u);
  EXPECT_GT(adv->adversary()->actions(), 0u);
  workload::InvariantChecker checker;
  EXPECT_TRUE(checker.CheckSameChain(*adv, *clean).ok());
  EXPECT_TRUE(checker
                  .CheckRootsMatch(adv->canonical_state().GlobalRoot(),
                                   clean->canonical_state().GlobalRoot(),
                                   adv->metrics().committed_blocks())
                  .ok());
  EXPECT_TRUE(checker.CheckEvidenceOnlyAgainstMalicious(*adv).ok());
  for (const std::string& v : checker.violations()) ADD_FAILURE() << v;
}

TEST(EpochTest, StorageCrashStraddlingEpochBoundaryRecovers) {
  // A storage node crashes before an epoch boundary and recovers after it:
  // the reconfigured committee keeps closing rounds through the outage and
  // the node rejoins cleanly on the new committee's chain.
  SystemOptions opt = Opts();
  opt.epoch_length = 4;
  PorygonSystem sys(opt);
  sys.CreateAccounts(100, 10'000);
  for (uint64_t f = 1; f <= 10; ++f) {
    sys.SubmitTransaction(Transfer(f, f + 20, 1, 0));
  }
  sys.Run(2);  // Two rounds in; boundary at round 4 is ahead.

  net::FaultPlan plan;
  const net::SimTime now = sys.events()->now();
  const net::NodeId victim = sys.storage_node(0)->net_id();
  plan.crashes.push_back({victim, now + net::FromMillis(500), false});
  plan.crashes.push_back({victim, now + net::FromSeconds(20), true});
  ASSERT_TRUE(sys.InjectFaults(plan).ok());
  sys.Run(10, net::FromSeconds(600));

  EXPECT_EQ(sys.metrics().committed_blocks(), 12u);
  EXPECT_GE(Epochs(sys), 2u);  // Boundaries passed while crashed/recovered.
  const auto* rejoins =
      sys.metrics_registry()->FindCounter("core.storage_rejoins", {});
  ASSERT_NE(rejoins, nullptr);
  EXPECT_EQ(rejoins->value(), 1u);
  workload::InvariantChecker checker;
  EXPECT_TRUE(checker.CheckChainIntegrity(sys).ok());
  EXPECT_TRUE(checker.CheckNoReplayMismatches(sys).ok());
  EXPECT_TRUE(checker.CheckBoundedCommitGap(sys).ok());
  for (const std::string& v : checker.violations()) ADD_FAILURE() << v;
}

}  // namespace
}  // namespace porygon::core
