// Additional system-level coverage: churn, phase-traffic accounting,
// adversarial combinations, committee-formation messages, and the
// large-scale model's phase outputs.

#include <gtest/gtest.h>

#include "baselines/blockene.h"
#include "core/system.h"
#include "simulation/model.h"
#include "workload/generator.h"

namespace porygon::core {
namespace {

SystemOptions BaseOptions() {
  SystemOptions opt;
  opt.params.shard_bits = 1;
  opt.params.witness_threshold = 2;
  opt.params.execution_threshold = 2;
  opt.params.block_tx_limit = 50;
  opt.params.storage_connections = 2;
  opt.num_storage_nodes = 2;
  opt.num_stateless_nodes = 26;
  opt.oc_size = 4;
  opt.blocks_per_shard_round = 2;
  opt.seed = 7;
  return opt;
}

void SubmitUniform(PorygonSystem* sys, workload::WorkloadGenerator* gen,
                   size_t n) {
  for (const auto& t : gen->Batch(n)) sys->SubmitTransaction(t);
}

TEST(SystemChurnTest, SurvivesShortSessions) {
  SystemOptions opt = BaseOptions();
  opt.num_stateless_nodes = 40;
  opt.mean_session_s = 20.0;  // Much shorter than the run.
  PorygonSystem sys(opt);
  sys.CreateAccounts(10'000, 100'000);
  workload::WorkloadGenerator gen(
      {.num_accounts = 10'000, .shard_bits = 1, .seed = 3});
  for (int r = 0; r < 12; ++r) {
    SubmitUniform(&sys, &gen, 200);
    sys.Run(1);
  }
  // Progress despite constant churn (EC lifecycles are 3 rounds).
  EXPECT_GT(sys.metrics().committed_intra_txs() +
                sys.metrics().committed_cross_txs(),
            100u);
  EXPECT_EQ(sys.metrics().replay_mismatches(), 0u);
}

TEST(SystemTest, PhaseTrafficAccountingCoversAllPhases) {
  PorygonSystem sys(BaseOptions());
  sys.CreateAccounts(10'000, 100'000);
  workload::WorkloadGenerator gen(
      {.num_accounts = 10'000, .shard_bits = 1, .seed = 2});
  for (int r = 0; r < 10; ++r) {
    SubmitUniform(&sys, &gen, 150);
    sys.Run(1);
  }
  auto phases = sys.StatelessPhaseTraffic();
  // Witness (0), Ordering (1), Execution (2), Commit (3) all carry bytes.
  for (int p = 0; p < 4; ++p) {
    EXPECT_GT(phases[p], 0.0) << "phase " << p;
  }
  // Witness and execution dominate ordering for stateless nodes at this
  // scale (bulk data phases).
  EXPECT_GT(phases[0] + phases[2], phases[1]);
}

TEST(SystemTest, MaliciousStorageAndStatelessCombined) {
  SystemOptions opt = BaseOptions();
  opt.num_storage_nodes = 4;
  opt.num_stateless_nodes = 40;
  opt.malicious_storage_fraction = 0.25;    // 1 of 4 withholds bodies.
  opt.malicious_stateless_fraction = 0.15;  // Silent minority.
  PorygonSystem sys(opt);
  sys.CreateAccounts(10'000, 100'000);
  workload::WorkloadGenerator gen(
      {.num_accounts = 10'000, .shard_bits = 1, .seed = 11});
  for (int r = 0; r < 12; ++r) {
    SubmitUniform(&sys, &gen, 200);
    sys.Run(1);
  }
  EXPECT_GT(sys.metrics().committed_intra_txs() +
                sys.metrics().committed_cross_txs(),
            0u);
  EXPECT_EQ(sys.metrics().replay_mismatches(), 0u);
}

TEST(SystemTest, ChainExtendsByHashLinks) {
  PorygonSystem sys(BaseOptions());
  sys.CreateAccounts(100, 1'000);
  sys.Run(6);
  const auto& chain = sys.chain();
  ASSERT_GE(chain.size(), 6u);
  for (size_t i = 1; i < chain.size(); ++i) {
    EXPECT_EQ(chain[i].prev_hash, chain[i - 1].Hash()) << i;
    EXPECT_EQ(chain[i].height, i);
    EXPECT_EQ(chain[i].round, i);
  }
}

TEST(SystemTest, CommittedStateRootMatchesAggregatedShardRoots) {
  PorygonSystem sys(BaseOptions());
  sys.CreateAccounts(1'000, 10'000);
  workload::WorkloadGenerator gen(
      {.num_accounts = 1'000, .shard_bits = 1, .seed = 13});
  for (int r = 0; r < 8; ++r) {
    SubmitUniform(&sys, &gen, 100);
    sys.Run(1);
  }
  for (const auto& block : sys.chain()) {
    if (block.shard_roots.empty()) continue;
    EXPECT_EQ(block.state_root,
              state::ShardedState::AggregateRoots(block.shard_roots));
  }
}

TEST(SystemTest, DiscardedTransactionsAreAccountedNotCommitted) {
  PorygonSystem sys(BaseOptions());
  sys.CreateAccounts(100, 10'000);
  // Two cross-shard transfers touching the same receiver in one round: one
  // must be conflict-discarded (§IV-D2).
  tx::Transaction a;
  a.from = 2;
  a.to = 5;
  a.amount = 10;
  a.nonce = 0;
  tx::Transaction b;
  b.from = 4;
  b.to = 5;
  b.amount = 10;
  b.nonce = 0;
  sys.SubmitTransaction(a);
  sys.SubmitTransaction(b);
  sys.Run(10);
  const auto m = sys.metrics();
  EXPECT_EQ(m.committed_cross_txs(), 1u);
  EXPECT_GE(m.discarded_txs(), 1u);
  // Exactly one transfer landed on top of the initial funding.
  EXPECT_EQ(sys.canonical_state().GetOrDefault(5).balance, 10'010u);
}

TEST(SystemTest, SeedsChangeOutcomesDeterministically) {
  auto run = [](uint64_t seed) {
    SystemOptions opt = BaseOptions();
    opt.seed = seed;
    PorygonSystem sys(opt);
    sys.CreateAccounts(100, 1'000);
    sys.Run(4);
    return sys.chain().back().Hash();
  };
  EXPECT_EQ(run(1), run(1));
  EXPECT_NE(run(1), run(2));  // Different keys/topology -> different chain.
}

}  // namespace
}  // namespace porygon::core

namespace porygon::sim {
namespace {

TEST(ModelExtraTest, PhaseBytesArePopulatedAndOrdered) {
  ModelConfig cfg;
  cfg.shards = 10;
  auto r = EstimatePorygon(cfg);
  // Witness moves full blocks; execution moves states; both dwarf commit.
  EXPECT_GT(r.phase_bytes[0], 0.0);
  EXPECT_GT(r.phase_bytes[2], 0.0);
  EXPECT_GT(r.phase_bytes[0], r.phase_bytes[3]);
}

TEST(ModelExtraTest, ByshardLeaderUploadScalesWithShardSize) {
  ModelConfig small;
  small.nodes_per_shard = 10;
  small.txs_per_block = 1000;
  ModelConfig big = small;
  big.nodes_per_shard = 40;
  // Bigger shards = more replication time = lower throughput.
  EXPECT_GT(EstimateByshard(small).tps, EstimateByshard(big).tps);
}

TEST(ModelExtraTest, BlockeneRoundIsSequentialSum) {
  ModelConfig cfg;
  auto blockene = EstimateBlockene(cfg);
  ModelConfig pipelined = cfg;
  pipelined.sharding = false;
  auto porygon_1shard = EstimatePorygon(pipelined);
  // The sequential committee's round exceeds the pipelined round.
  EXPECT_GT(blockene.round_s, porygon_1shard.round_s);
}

}  // namespace
}  // namespace porygon::sim
