// Tests for the common substrate: Status/Result, byte views, hex, the
// binary codec, CRC-32C, the deterministic RNG, and Merkle paths.

#include <gtest/gtest.h>

#include <cmath>

#include "common/bytes.h"
#include "common/codec.h"
#include "common/crc32.h"
#include "common/rng.h"
#include "common/status.h"
#include "crypto/merkle.h"

namespace porygon {
namespace {

TEST(StatusTest, OkAndErrorStates) {
  Status ok = Status::Ok();
  EXPECT_TRUE(ok.ok());
  EXPECT_EQ(ok.ToString(), "OK");

  Status err = Status::NotFound("missing key");
  EXPECT_FALSE(err.ok());
  EXPECT_TRUE(err.IsNotFound());
  EXPECT_EQ(err.ToString(), "NotFound: missing key");
}

TEST(StatusTest, EveryCodeHasConsistentFactoryPredicateAndName) {
  struct Case {
    Status status;
    StatusCode code;
    bool (Status::*predicate)() const;
    const char* name;
  };
  const Case kCases[] = {
      {Status::NotFound("m"), StatusCode::kNotFound, &Status::IsNotFound,
       "NotFound"},
      {Status::InvalidArgument("m"), StatusCode::kInvalidArgument,
       &Status::IsInvalidArgument, "InvalidArgument"},
      {Status::Corruption("m"), StatusCode::kCorruption, &Status::IsCorruption,
       "Corruption"},
      {Status::AlreadyExists("m"), StatusCode::kAlreadyExists,
       &Status::IsAlreadyExists, "AlreadyExists"},
      {Status::FailedPrecondition("m"), StatusCode::kFailedPrecondition,
       &Status::IsFailedPrecondition, "FailedPrecondition"},
      {Status::Unavailable("m"), StatusCode::kUnavailable,
       &Status::IsUnavailable, "Unavailable"},
      {Status::Timeout("m"), StatusCode::kTimeout, &Status::IsTimeout,
       "Timeout"},
      {Status::Internal("m"), StatusCode::kInternal, &Status::IsInternal,
       "Internal"},
      {Status::PermissionDenied("m"), StatusCode::kPermissionDenied,
       &Status::IsPermissionDenied, "PermissionDenied"},
  };
  EXPECT_STREQ(StatusCodeName(StatusCode::kOk), "OK");
  for (const Case& c : kCases) {
    EXPECT_FALSE(c.status.ok()) << c.name;
    EXPECT_EQ(c.status.code(), c.code) << c.name;
    EXPECT_TRUE((c.status.*c.predicate)()) << c.name;
    EXPECT_STREQ(StatusCodeName(c.code), c.name);
    EXPECT_EQ(c.status.ToString(), std::string(c.name) + ": m");
    // Each predicate matches exactly its own code.
    for (const Case& other : kCases) {
      if (other.code == c.code) continue;
      EXPECT_FALSE((other.status.*c.predicate)()) << c.name;
    }
  }
}

TEST(StatusTest, ResultHoldsValueOrError) {
  Result<int> value(42);
  ASSERT_TRUE(value.ok());
  EXPECT_EQ(*value, 42);

  Result<int> error(Status::Corruption("bad"));
  EXPECT_FALSE(error.ok());
  EXPECT_TRUE(error.status().IsCorruption());
}

TEST(BytesTest, ByteViewCompare) {
  Bytes a = ToBytes("abc");
  Bytes b = ToBytes("abd");
  Bytes prefix = ToBytes("ab");
  EXPECT_LT(ByteView(a).Compare(b), 0);
  EXPECT_GT(ByteView(b).Compare(a), 0);
  EXPECT_EQ(ByteView(a).Compare(a), 0);
  EXPECT_GT(ByteView(a).Compare(prefix), 0);  // Longer sorts after.
  EXPECT_TRUE(ByteView(prefix) < ByteView(a));
}

TEST(BytesTest, HexRoundTrip) {
  Bytes data = {0x00, 0x1f, 0xab, 0xff};
  std::string hex = HexEncode(data);
  EXPECT_EQ(hex, "001fabff");
  auto decoded = HexDecode(hex);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, data);
  // Uppercase accepted.
  EXPECT_TRUE(HexDecode("ABCD").ok());
  // Bad inputs rejected.
  EXPECT_FALSE(HexDecode("abc").ok());
  EXPECT_FALSE(HexDecode("zz").ok());
}

TEST(CodecTest, RoundTripAllTypes) {
  Encoder enc;
  enc.PutU8(7);
  enc.PutU16(512);
  enc.PutU32(70000);
  enc.PutU64(1ULL << 40);
  enc.PutVarint(300);
  enc.PutBytes(ToBytes("payload"));
  enc.PutString("text");
  enc.PutBool(true);

  Decoder dec(enc.buffer());
  EXPECT_EQ(*dec.GetU8(), 7);
  EXPECT_EQ(*dec.GetU16(), 512);
  EXPECT_EQ(*dec.GetU32(), 70000u);
  EXPECT_EQ(*dec.GetU64(), 1ULL << 40);
  EXPECT_EQ(*dec.GetVarint(), 300u);
  EXPECT_EQ(*dec.GetBytes(), ToBytes("payload"));
  EXPECT_EQ(*dec.GetString(), "text");
  EXPECT_EQ(*dec.GetBool(), true);
  EXPECT_TRUE(dec.Done());
}

TEST(CodecTest, TruncationDetected) {
  Encoder enc;
  enc.PutU64(1234);
  Bytes data = enc.TakeBuffer();
  data.resize(4);
  Decoder dec(data);
  EXPECT_FALSE(dec.GetU64().ok());
}

TEST(CodecTest, VarintBoundaries) {
  for (uint64_t v : {0ULL, 127ULL, 128ULL, 16383ULL, 16384ULL,
                     ~0ULL}) {
    Encoder enc;
    enc.PutVarint(v);
    EXPECT_EQ(enc.size(), VarintLength(v));
    Decoder dec(enc.buffer());
    EXPECT_EQ(*dec.GetVarint(), v) << v;
  }
}

TEST(CodecTest, MalformedVarintRejected) {
  Bytes overlong(11, 0x80);  // Never terminates within 64 bits.
  Decoder dec(overlong);
  EXPECT_FALSE(dec.GetVarint().ok());
}

TEST(Crc32Test, KnownVector) {
  // CRC-32C("123456789") = 0xE3069283.
  EXPECT_EQ(Crc32c(ToBytes("123456789")), 0xE3069283u);
}

TEST(Crc32Test, ExtendMatchesOneShot) {
  Bytes all = ToBytes("hello world, this is porygon");
  uint32_t oneshot = Crc32c(all);
  uint32_t partial = Crc32cExtend(0, ByteView(all.data(), 5));
  partial = Crc32cExtend(partial, ByteView(all.data() + 5, all.size() - 5));
  // Extend semantics compose over the unmasked value.
  EXPECT_EQ(partial, oneshot);
}

TEST(Crc32Test, MaskRoundTrip) {
  uint32_t crc = Crc32c(ToBytes("data"));
  EXPECT_NE(Crc32cMask(crc), crc);
  EXPECT_EQ(Crc32cUnmask(Crc32cMask(crc)), crc);
}

TEST(RngTest, DeterministicPerSeed) {
  Rng a(5), b(5), c(6);
  EXPECT_EQ(a.NextU64(), b.NextU64());
  Rng a2(5);
  EXPECT_NE(a2.NextU64(), c.NextU64());
}

TEST(RngTest, NextBelowIsInRange) {
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextBelow(17), 17u);
  }
  EXPECT_EQ(rng.NextBelow(1), 0u);
}

TEST(RngTest, DoubleInUnitInterval) {
  Rng rng(2);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    double v = rng.NextDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(RngTest, ExponentialHasRequestedMean) {
  Rng rng(3);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.NextExponential(4.0);
  EXPECT_NEAR(sum / n, 4.0, 0.15);
}

TEST(RngTest, ZipfFavorsLowRanks) {
  Rng rng(4);
  int low = 0;
  const int n = 10000;
  for (int i = 0; i < n; ++i) {
    if (rng.NextZipf(1000, 1.1) < 10) ++low;
  }
  // With s=1.1, the top-10 ranks carry far more than 1% of the mass.
  EXPECT_GT(low, n / 20);
}

TEST(MerklePathTest, PathVerifiesForEveryLeaf) {
  std::vector<crypto::Hash256> leaves;
  for (int i = 0; i < 11; ++i) {  // Odd count exercises self-pairing.
    leaves.push_back(crypto::Sha256::Hash(ToBytes("leaf" + std::to_string(i))));
  }
  auto root = crypto::ComputeMerkleRoot(leaves);
  for (size_t i = 0; i < leaves.size(); ++i) {
    auto path = crypto::ComputeMerklePath(leaves, i);
    EXPECT_TRUE(crypto::VerifyMerklePath(root, leaves[i], i, path)) << i;
    // Wrong index fails.
    EXPECT_FALSE(
        crypto::VerifyMerklePath(root, leaves[i], (i + 1) % leaves.size(),
                                 path));
  }
}

TEST(MerklePathTest, EmptyAndSingleton) {
  EXPECT_EQ(crypto::ComputeMerkleRoot({}), crypto::ZeroHash());
  auto leaf = crypto::Sha256::Hash(ToBytes("only"));
  EXPECT_EQ(crypto::ComputeMerkleRoot({leaf}), leaf);
  EXPECT_TRUE(crypto::VerifyMerklePath(leaf, leaf, 0, {}));
}

}  // namespace
}  // namespace porygon
