// Systematic erasure coding over GF(2^8) (common/erasure): k-of-n
// reconstruction from every chunk subset shape, parity-only recovery,
// corrupt/short chunk handling, geometry validation, and the bit-exact
// determinism the dissemination layer's chunk mesh depends on.

#include <gtest/gtest.h>

#include <optional>
#include <string>
#include <vector>

#include "common/erasure.h"
#include "common/rng.h"

namespace porygon::erasure {
namespace {

Bytes RandomPayload(size_t size, uint64_t seed) {
  Rng rng(seed);
  Bytes out(size);
  for (size_t i = 0; i < size; ++i) {
    out[i] = static_cast<uint8_t>(rng.NextBelow(256));
  }
  return out;
}

std::vector<std::optional<Bytes>> Holes(const std::vector<Bytes>& chunks,
                                        const std::vector<int>& drop) {
  std::vector<std::optional<Bytes>> out(chunks.begin(), chunks.end());
  for (int i : drop) out[i] = std::nullopt;
  return out;
}

TEST(ErasureTest, RoundTripsWithAllChunksPresent) {
  const Bytes payload = RandomPayload(10'000, 1);
  auto chunks = Encode(payload, 4, 6);
  ASSERT_TRUE(chunks.ok()) << chunks.status().message();
  ASSERT_EQ(chunks->size(), 6u);
  for (const Bytes& c : *chunks) {
    EXPECT_EQ(c.size(), ChunkSize(payload.size(), 4));
  }
  auto decoded = Decode(Holes(*chunks, {}), 4, 6);
  ASSERT_TRUE(decoded.ok()) << decoded.status().message();
  EXPECT_EQ(*decoded, payload);
}

TEST(ErasureTest, AnyKOfNSubsetReconstructs) {
  const Bytes payload = RandomPayload(3'333, 2);
  auto chunks = Encode(payload, 3, 5);
  ASSERT_TRUE(chunks.ok());
  // Every way of dropping 2 of the 5 chunks still reconstructs exactly.
  for (int a = 0; a < 5; ++a) {
    for (int b = a + 1; b < 5; ++b) {
      auto decoded = Decode(Holes(*chunks, {a, b}), 3, 5);
      ASSERT_TRUE(decoded.ok()) << "dropped " << a << "," << b << ": "
                                << decoded.status().message();
      EXPECT_EQ(*decoded, payload) << "dropped " << a << "," << b;
    }
  }
}

TEST(ErasureTest, ParityOnlyReconstructs) {
  // All systematic chunks lost; the payload survives on parity alone
  // (k = 2, n = 4: chunks 2 and 3 are parity).
  const Bytes payload = RandomPayload(701, 3);
  auto chunks = Encode(payload, 2, 4);
  ASSERT_TRUE(chunks.ok());
  auto decoded = Decode(Holes(*chunks, {0, 1}), 2, 4);
  ASSERT_TRUE(decoded.ok()) << decoded.status().message();
  EXPECT_EQ(*decoded, payload);
}

TEST(ErasureTest, FewerThanKChunksFailsPrecondition) {
  const Bytes payload = RandomPayload(500, 4);
  auto chunks = Encode(payload, 4, 6);
  ASSERT_TRUE(chunks.ok());
  auto decoded = Decode(Holes(*chunks, {0, 2, 4}), 4, 6);
  EXPECT_TRUE(decoded.status().IsFailedPrecondition());
}

TEST(ErasureTest, CorruptChunkIsDetectedViaLengthPrefix) {
  // Flip bytes in a surviving chunk: reconstruction from a set containing
  // the corruption must not silently return garbage of the right shape.
  // The length prefix is part of the coded payload, so wholesale
  // corruption scrambles it and Decode reports kFailedPrecondition.
  const Bytes payload = RandomPayload(2'048, 5);
  auto chunks = Encode(payload, 3, 5);
  ASSERT_TRUE(chunks.ok());
  std::vector<std::optional<Bytes>> in = Holes(*chunks, {3, 4});
  for (size_t i = 0; i < in[0]->size(); ++i) (*in[0])[i] ^= 0xFF;
  auto decoded = Decode(in, 3, 5);
  if (decoded.ok()) {
    EXPECT_NE(*decoded, payload);  // Never silently "correct".
  } else {
    EXPECT_TRUE(decoded.status().IsFailedPrecondition());
  }
}

TEST(ErasureTest, MalformedInputsAreInvalidArgument) {
  const Bytes payload = RandomPayload(64, 6);
  EXPECT_TRUE(Encode(payload, 0, 4).status().IsInvalidArgument());
  EXPECT_TRUE(Encode(payload, 5, 4).status().IsInvalidArgument());
  EXPECT_TRUE(Encode(payload, 4, 256).status().IsInvalidArgument());

  auto chunks = Encode(payload, 2, 3);
  ASSERT_TRUE(chunks.ok());
  // Wrong vector length for n.
  std::vector<std::optional<Bytes>> two(chunks->begin(), chunks->begin() + 2);
  EXPECT_TRUE(Decode(two, 2, 3).status().IsInvalidArgument());
  // Unequal chunk sizes.
  std::vector<std::optional<Bytes>> uneven = Holes(*chunks, {});
  uneven[1]->push_back(0);
  EXPECT_TRUE(Decode(uneven, 2, 3).status().IsInvalidArgument());
}

TEST(ErasureTest, EmptyAndTinyPayloadsRoundTrip) {
  for (size_t size : {size_t{0}, size_t{1}, size_t{7}}) {
    const Bytes payload = RandomPayload(size, 7 + size);
    auto chunks = Encode(payload, 3, 5);
    ASSERT_TRUE(chunks.ok()) << size;
    auto decoded = Decode(Holes(*chunks, {1, 3}), 3, 5);
    ASSERT_TRUE(decoded.ok()) << size << ": " << decoded.status().message();
    EXPECT_EQ(*decoded, payload) << size;
  }
}

TEST(ErasureTest, EncodingIsDeterministic) {
  // Chunk bytes feed wire digests and the sim's bandwidth model, so
  // encode must be a pure function of (payload, k, n).
  const Bytes payload = RandomPayload(5'000, 8);
  auto a = Encode(payload, 4, 7);
  auto b = Encode(payload, 4, 7);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(*a, *b);
}

}  // namespace
}  // namespace porygon::erasure
