// The chaos-soak harness itself: SoakSpec grammar round-trips, RunSoak
// completes small chaotic runs with zero invariant violations, and —
// crucially — the injected-divergence hook proves the harness catches a
// safety violation and that the stamped replay spec reproduces it exactly.

#include <gtest/gtest.h>

#include <string>

#include "workload/soak.h"

namespace porygon::workload {
namespace {

TEST(SoakSpecTest, ParseToStringRoundTrips) {
  auto parsed = SoakSpec::Parse(
      "rounds:40;epoch:8;seed:9;nodes:30;storages:3;oc:5;shardbits:2;"
      "tps:25.5;gap:45;workload:accounts:1000,cross:0.2;"
      "faults:loss:0.01;adversary:stateless:equivocate;inject:7");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->rounds, 40u);
  EXPECT_EQ(parsed->epoch_length, 8u);
  EXPECT_EQ(parsed->seed, 9u);
  EXPECT_EQ(parsed->num_stateless, 30);
  EXPECT_EQ(parsed->num_storage, 3);
  EXPECT_EQ(parsed->oc_size, 5);
  EXPECT_EQ(parsed->shard_bits, 2);
  EXPECT_DOUBLE_EQ(parsed->offered_tps, 25.5);
  EXPECT_DOUBLE_EQ(parsed->max_commit_gap_s, 45.0);
  // Nested comma-grammar specs embed verbatim past the first ':'.
  EXPECT_EQ(parsed->workload, "accounts:1000,cross:0.2");
  EXPECT_EQ(parsed->faults, "loss:0.01");
  EXPECT_EQ(parsed->adversary, "stateless:equivocate");
  EXPECT_EQ(parsed->inject_divergence_round, 7u);

  auto reparsed = SoakSpec::Parse(parsed->ToString());
  ASSERT_TRUE(reparsed.ok()) << reparsed.status().ToString();
  EXPECT_EQ(reparsed->ToString(), parsed->ToString());
}

TEST(SoakSpecTest, RejectsMalformedClauses) {
  EXPECT_FALSE(SoakSpec::Parse("bogus:1").ok());
  EXPECT_FALSE(SoakSpec::Parse("rounds").ok());
  EXPECT_FALSE(SoakSpec::Parse("rounds:abc").ok());
  EXPECT_FALSE(SoakSpec::Parse("epoch:1").ok());  // 1 fails Validate().
  // Nested specs are validated eagerly, not at deployment time.
  EXPECT_FALSE(SoakSpec::Parse("adversary:nonsense:strategy").ok());
  EXPECT_FALSE(SoakSpec::Parse("faults:bogus:1").ok());
}

SoakSpec SmokeSpec() {
  SoakSpec spec;
  spec.rounds = 16;
  spec.epoch_length = 5;
  spec.seed = 7;
  spec.offered_tps = 30.0;
  return spec;
}

TEST(RunSoakTest, CleanSmokeRunHasZeroViolations) {
  auto report = RunSoak(SmokeSpec());
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(report->ok());
  EXPECT_TRUE(report->replay_spec.empty());
  EXPECT_EQ(report->rounds_completed, 16u);
  EXPECT_EQ(report->epochs_completed, 3u);  // Boundaries at 5, 10, 15.
  EXPECT_GT(report->invariant_checks, 16u * 2);  // Per-round + terminal.
  EXPECT_GT(report->committed_txs, 0u);
}

TEST(RunSoakTest, ChaoticSmokeRunHasZeroViolations) {
  SoakSpec spec = SmokeSpec();
  spec.faults = "loss:0.02,dup:0.02,jitter:300";
  spec.adversary = "stateless:equivocate,storage:withhold";
  auto report = RunSoak(spec);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(report->ok())
      << (report->violations.empty() ? "" : report->violations.front());
  EXPECT_EQ(report->rounds_completed, 16u);
  EXPECT_EQ(report->epochs_completed, 3u);
}

TEST(RunSoakTest, InjectedDivergenceIsCaughtAndReplaySpecReproducesIt) {
  SoakSpec spec = SmokeSpec();
  spec.inject_divergence_round = 9;
  auto report = RunSoak(spec);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  ASSERT_FALSE(report->ok());
  ASSERT_FALSE(report->violations.empty());
  EXPECT_NE(report->violations.front().find("round 9"), std::string::npos)
      << report->violations.front();
  // The stamped replay spec is the failing run, verbatim...
  ASSERT_EQ(report->replay_spec, spec.ToString());
  // ...and feeding it back reproduces the identical first violation.
  auto replay_spec = SoakSpec::Parse(report->replay_spec);
  ASSERT_TRUE(replay_spec.ok()) << replay_spec.status().ToString();
  auto replay = RunSoak(*replay_spec);
  ASSERT_TRUE(replay.ok()) << replay.status().ToString();
  ASSERT_FALSE(replay->violations.empty());
  EXPECT_EQ(replay->violations.front(), report->violations.front());
}

TEST(RunSoakTest, ReportJsonCarriesLivenessStats) {
  auto report = RunSoak(SmokeSpec());
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  const std::string json = report->ToJson();
  EXPECT_NE(json.find("\"rounds_completed\":16"), std::string::npos) << json;
  EXPECT_NE(json.find("\"epochs_completed\":3"), std::string::npos) << json;
  EXPECT_NE(json.find("\"invariant_checks\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"max_commit_gap_s\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"violations\":[]"), std::string::npos) << json;
}

}  // namespace
}  // namespace porygon::workload
