// Unit tests for the observability subsystem: instrument semantics,
// histogram bucket boundaries and percentile interpolation, labelled-series
// lookup, and the JSON/CSV exporters' shape and determinism.

#include <gtest/gtest.h>

#include "obs/export.h"
#include "obs/metrics.h"

namespace porygon::obs {
namespace {

TEST(CounterTest, IncrementsAndAdds) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.Increment();
  c.Add(41);
  EXPECT_EQ(c.value(), 42u);
}

TEST(GaugeTest, SetsAndAdds) {
  Gauge g;
  EXPECT_EQ(g.value(), 0.0);
  g.Set(10.5);
  g.Add(-0.5);
  EXPECT_EQ(g.value(), 10.0);
}

TEST(HistogramTest, CountsSumAndExtremes) {
  Histogram h({1.0, 2.0, 4.0});
  h.Observe(0.5);
  h.Observe(1.5);
  h.Observe(3.0);
  h.Observe(10.0);
  EXPECT_EQ(h.count(), 4u);
  EXPECT_DOUBLE_EQ(h.sum(), 15.0);
  EXPECT_DOUBLE_EQ(h.mean(), 3.75);
  EXPECT_DOUBLE_EQ(h.min(), 0.5);
  EXPECT_DOUBLE_EQ(h.max(), 10.0);
}

TEST(HistogramTest, BucketBoundariesAreInclusiveUpperEdges) {
  Histogram h({1.0, 2.0});
  h.Observe(1.0);  // le=1 bucket (upper edge inclusive).
  h.Observe(1.001);  // le=2 bucket.
  h.Observe(2.5);  // Overflow bucket.
  ASSERT_EQ(h.bucket_counts().size(), 3u);
  EXPECT_EQ(h.bucket_counts()[0], 1u);
  EXPECT_EQ(h.bucket_counts()[1], 1u);
  EXPECT_EQ(h.bucket_counts()[2], 1u);
}

TEST(HistogramTest, PercentilesInterpolateWithinBuckets) {
  Histogram h({1.0, 2.0, 4.0, 8.0});
  for (int i = 0; i < 100; ++i) h.Observe(0.5);
  h.Observe(7.0);
  // p50 falls deep inside the first bucket; p99+ approaches the outlier.
  EXPECT_LE(h.Percentile(50), 1.0);
  EXPECT_GT(h.Percentile(100), 1.0);
  EXPECT_LE(h.Percentile(100), 7.0);

  Histogram empty({1.0});
  EXPECT_EQ(empty.Percentile(50), 0.0);

  HistogramSummary s = h.Summary();
  EXPECT_EQ(s.count, 101u);
  EXPECT_DOUBLE_EQ(s.min, 0.5);
  EXPECT_DOUBLE_EQ(s.max, 7.0);
  EXPECT_LE(s.p50, s.p95);
  EXPECT_LE(s.p95, s.p99);
}

TEST(RegistryTest, LabelledSeriesAreDistinctAndOrderInsensitive) {
  MetricsRegistry reg;
  Counter* a = reg.GetCounter("net.bytes", {{"class", "storage"}});
  Counter* b = reg.GetCounter("net.bytes", {{"class", "stateless"}});
  Counter* plain = reg.GetCounter("net.bytes");
  EXPECT_NE(a, b);
  EXPECT_NE(a, plain);
  // Same series regardless of label order; repeated Get returns the
  // same instrument.
  Counter* c =
      reg.GetCounter("x", {{"k1", "v1"}, {"k2", "v2"}});
  EXPECT_EQ(c, reg.GetCounter("x", {{"k2", "v2"}, {"k1", "v1"}}));
  EXPECT_EQ(a, reg.GetCounter("net.bytes", {{"class", "storage"}}));

  a->Add(7);
  EXPECT_EQ(reg.CounterValue("net.bytes", {{"class", "storage"}}), 7u);
  EXPECT_EQ(reg.CounterValue("net.bytes", {{"class", "stateless"}}), 0u);
  EXPECT_EQ(reg.CounterValue("absent", {}), 0u);

  EXPECT_EQ(reg.FindCounter("net.bytes", {{"class", "storage"}}), a);
  EXPECT_EQ(reg.FindCounter("net.bytes", {{"class", "nope"}}), nullptr);
}

TEST(RegistryTest, VisitationFollowsCanonicalOrder) {
  MetricsRegistry reg;
  reg.GetCounter("b.metric");
  reg.GetCounter("a.metric", {{"z", "1"}});
  reg.GetCounter("a.metric", {{"a", "1"}});
  std::vector<std::string> names;
  reg.VisitCounters([&](const std::string& name, const Labels& labels,
                        const Counter&) {
    std::string key = name;
    for (const auto& [k, v] : labels) key += "|" + k + "=" + v;
    names.push_back(key);
  });
  ASSERT_EQ(names.size(), 3u);
  EXPECT_EQ(names[0], "a.metric|a=1");
  EXPECT_EQ(names[1], "a.metric|z=1");
  EXPECT_EQ(names[2], "b.metric");
}

TEST(PhaseTimerTest, ObservesOnDestructionAndStop) {
  Histogram h({1.0, 10.0});
  double now = 5.0;
  {
    PhaseTimer t(&h, [&now] { return now; });
    now = 7.5;
  }
  EXPECT_EQ(h.count(), 1u);
  EXPECT_DOUBLE_EQ(h.sum(), 2.5);

  PhaseTimer t(&h, [&now] { return now; });
  now = 8.5;
  EXPECT_DOUBLE_EQ(t.Stop(), 1.0);
  EXPECT_FALSE(t.armed());
  EXPECT_EQ(h.count(), 2u);  // Stop observed; destructor must not re-observe.

  PhaseTimer cancelled(&h, [&now] { return now; });
  cancelled.Cancel();
  EXPECT_EQ(h.count(), 2u);

  // Moving transfers the observation to the destination.
  PhaseTimer src(&h, [&now] { return now; });
  PhaseTimer dst = std::move(src);
  EXPECT_FALSE(src.armed());
  EXPECT_TRUE(dst.armed());
  dst.Cancel();
  EXPECT_EQ(h.count(), 2u);
}

TEST(ExportTest, JsonCoversEverySeriesAndIsDeterministic) {
  MetricsRegistry reg;
  reg.GetCounter("net.bytes", {{"class", "storage"}})->Add(128);
  reg.GetGauge("db.l0_tables", {{"node", "0"}})->Set(3);
  Histogram* h = reg.GetHistogram("latency", {0.5, 1.0}, {});
  h->Observe(0.25);
  h->Observe(2.0);

  std::string json = ExportJson(reg);
  EXPECT_NE(json.find("\"net.bytes\""), std::string::npos);
  EXPECT_NE(json.find("\"class\":\"storage\""), std::string::npos);
  EXPECT_NE(json.find("\"value\":128"), std::string::npos);
  EXPECT_NE(json.find("\"db.l0_tables\""), std::string::npos);
  EXPECT_NE(json.find("\"latency\""), std::string::npos);
  EXPECT_NE(json.find("\"p50\""), std::string::npos);
  EXPECT_NE(json.find("\"p99\""), std::string::npos);
  EXPECT_NE(json.find("\"le\":\"inf\""), std::string::npos);
  EXPECT_EQ(json, ExportJson(reg));  // Same registry -> same bytes.

  std::string csv = ExportCsv(reg);
  EXPECT_NE(csv.find("type,name,labels,field,value"), std::string::npos);
  EXPECT_NE(csv.find("counter,net.bytes,class=storage,value,128"),
            std::string::npos);
  EXPECT_NE(csv.find("histogram,latency,,count,2"), std::string::npos);
  EXPECT_EQ(csv, ExportCsv(reg));
}

}  // namespace
}  // namespace porygon::obs
