// Active Byzantine adversary coverage (§III-B): spec grammar, option
// validation at the paper's corruption bounds, and — for every strategy at
// α = 1/4 / β = 1/2 — safety (honest nodes commit the byte-identical chain
// and final GlobalRoot of the adversary-free same-seed run), liveness,
// evidence collection, and export determinism across seeds and threads.

#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "core/adversary.h"
#include "core/coordinator.h"
#include "core/system.h"
#include "net/network.h"
#include "obs/metrics.h"
#include "workload/soak.h"

namespace porygon::core {
namespace {

SystemOptions Opts() {
  SystemOptions opt;
  opt.params.shard_bits = 1;
  opt.params.witness_threshold = 2;
  opt.params.execution_threshold = 2;
  opt.params.block_tx_limit = 50;
  opt.params.storage_connections = 2;
  opt.num_storage_nodes = 2;
  opt.num_stateless_nodes = 26;
  opt.oc_size = 4;
  opt.seed = 7;
  return opt;
}

tx::Transaction Transfer(uint64_t from, uint64_t to, uint64_t amount,
                         uint64_t nonce) {
  tx::Transaction t;
  t.from = from;
  t.to = to;
  t.amount = amount;
  t.nonce = nonce;
  return t;
}

AdversarySpec MustParse(const std::string& spec) {
  auto parsed = AdversarySpec::Parse(spec);
  EXPECT_TRUE(parsed.ok()) << spec << ": " << parsed.status().message();
  return parsed.ok() ? *parsed : AdversarySpec{};
}

/// One deployment under `spec` (empty = honest) with a mixed intra/cross
/// workload, run for 10 rounds.
std::unique_ptr<PorygonSystem> RunAdversarial(const std::string& spec,
                                              bool faithful = false,
                                              bool trace = false,
                                              int threads = 0,
                                              int num_stateless = 26) {
  SystemOptions opt = Opts();
  opt.num_stateless_nodes = num_stateless;
  opt.faithful_execution = faithful;
  opt.trace.enabled = trace;
  opt.worker_threads = threads;
  if (!spec.empty()) opt.adversary = MustParse(spec);
  auto sys = std::make_unique<PorygonSystem>(opt);
  sys->CreateAccounts(120, 10'000);
  for (uint64_t f = 1; f <= 12; ++f) {
    // Same parity = same shard under 1 shard bit; +101 flips it.
    sys->SubmitTransaction(Transfer(f, f + 20, 1, 0));
    sys->SubmitTransaction(Transfer(f + 40, f + 101, 2, 0));
  }
  sys->Run(10, net::FromSeconds(600));
  return sys;
}

/// Safety assertions shared with the chaos-soak harness: the adversarial
/// run must commit the clean run's exact chain and final GlobalRoot,
/// replay cleanly, and hold evidence only against corrupted nodes.
void ExpectSameCommittedState(PorygonSystem& sys, PorygonSystem& clean) {
  workload::InvariantChecker checker;
  EXPECT_TRUE(checker.CheckSameChain(sys, clean).ok());
  EXPECT_TRUE(checker
                  .CheckRootsMatch(sys.canonical_state().GlobalRoot(),
                                   clean.canonical_state().GlobalRoot(),
                                   sys.metrics().committed_blocks())
                  .ok());
  EXPECT_TRUE(checker.CheckNoReplayMismatches(sys).ok());
  EXPECT_TRUE(checker.CheckEvidenceOnlyAgainstMalicious(sys).ok());
  for (const std::string& v : checker.violations()) ADD_FAILURE() << v;
}

uint64_t Rejected(const PorygonSystem& sys, const char* reason) {
  const auto* c = sys.metrics_registry().FindCounter("core.rejected",
                                                     {{"reason", reason}});
  return c == nullptr ? 0 : c->value();
}

uint64_t Evidence(const PorygonSystem& sys, const char* type) {
  const auto* c =
      sys.metrics_registry().FindCounter("adversary.evidence", {{"type", type}});
  return c == nullptr ? 0 : c->value();
}

// --- Spec grammar ---------------------------------------------------------

TEST(AdversarySpecTest, ParsesAndRoundTrips) {
  AdversarySpec spec = MustParse("stateless:equivocate,alpha:0.25,seed:9");
  EXPECT_EQ(spec.stateless, AdvStrategy::kEquivocate);
  EXPECT_EQ(spec.storage, AdvStrategy::kHonest);
  EXPECT_DOUBLE_EQ(spec.alpha, 0.25);
  EXPECT_EQ(spec.seed, 9u);

  AdversarySpec again = MustParse(spec.ToString());
  EXPECT_EQ(again.stateless, spec.stateless);
  EXPECT_EQ(again.storage, spec.storage);
  EXPECT_DOUBLE_EQ(again.alpha, spec.alpha);
  EXPECT_DOUBLE_EQ(again.beta, spec.beta);
  EXPECT_EQ(again.seed, spec.seed);

  AdversarySpec both = MustParse(
      "stateless:tamper-exec,alpha:0.2,storage:stale-reply,beta:0.4");
  EXPECT_EQ(both.stateless, AdvStrategy::kTamperExec);
  EXPECT_EQ(both.storage, AdvStrategy::kStaleReply);
  EXPECT_DOUBLE_EQ(both.beta, 0.4);
  AdversarySpec both_again = MustParse(both.ToString());
  EXPECT_EQ(both_again.storage, AdvStrategy::kStaleReply);
  EXPECT_DOUBLE_EQ(both_again.alpha, 0.2);
}

TEST(AdversarySpecTest, DefaultsToThePapersBounds) {
  AdversarySpec s = MustParse("stateless:silent");
  EXPECT_DOUBLE_EQ(s.alpha, 0.25);
  EXPECT_DOUBLE_EQ(s.beta, 0.0);

  AdversarySpec g = MustParse("storage:censor");
  EXPECT_DOUBLE_EQ(g.beta, 0.5);
  EXPECT_DOUBLE_EQ(g.alpha, 0.0);
  EXPECT_TRUE(AdversarySpec{}.empty());
  EXPECT_FALSE(g.empty());
}

TEST(AdversarySpecTest, RejectsMalformedClauses) {
  for (const char* bad : {
           "stateless:nope",       // Unknown strategy name.
           "stateless:withhold",   // Storage strategy in the stateless slot.
           "storage:equivocate",   // And vice versa.
           "alpha:2",              // Fraction outside [0,1].
           "beta:-0.1",            //
           "seed:xyz",             // Not a number.
           "bogus:1",              // Unknown key.
           "stateless",            // Missing value.
       }) {
    auto parsed = AdversarySpec::Parse(bad);
    ASSERT_FALSE(parsed.ok()) << bad;
    EXPECT_TRUE(parsed.status().IsInvalidArgument()) << bad;
  }
}

// --- Option validation at the paper's bounds (satellite) ------------------

TEST(AdversaryOptionsTest, ValidateEnforcesPaperBounds) {
  {
    SystemOptions opt = Opts();
    opt.malicious_stateless_fraction = 0.3;
    Status st = opt.Validate();
    ASSERT_TRUE(st.IsInvalidArgument());
    EXPECT_NE(st.message().find("alpha"), std::string::npos) << st.message();
  }
  {
    SystemOptions opt = Opts();
    opt.malicious_storage_fraction = 0.6;
    Status st = opt.Validate();
    ASSERT_TRUE(st.IsInvalidArgument());
    EXPECT_NE(st.message().find("beta"), std::string::npos) << st.message();
  }
  {
    // The spec path enforces the same bounds.
    SystemOptions opt = Opts();
    opt.adversary = MustParse("stateless:silent,alpha:0.3");
    EXPECT_TRUE(opt.Validate().IsInvalidArgument());
    opt.adversary = MustParse("storage:censor,beta:0.6");
    EXPECT_TRUE(opt.Validate().IsInvalidArgument());
  }
  {
    // Spec and legacy fractions are mutually exclusive.
    SystemOptions opt = Opts();
    opt.adversary = MustParse("stateless:silent,alpha:0.1");
    opt.malicious_stateless_fraction = 0.1;
    EXPECT_TRUE(opt.Validate().IsInvalidArgument());
  }
  {
    // The bounds themselves are admissible (α = 1/4, β = 1/2).
    SystemOptions opt = Opts();
    opt.malicious_stateless_fraction = 0.25;
    opt.malicious_storage_fraction = 0.5;
    EXPECT_TRUE(opt.Validate().ok()) << opt.Validate().message();
    opt = Opts();
    opt.adversary =
        MustParse("stateless:equivocate,alpha:0.25,storage:censor,beta:0.5");
    EXPECT_TRUE(opt.Validate().ok()) << opt.Validate().message();
  }
}

// --- Network drop filter (satellite) --------------------------------------

TEST(AdversaryNetTest, DropFilterCountsReasonLabelledDrops) {
  PorygonSystem sys(Opts());
  sys.CreateAccounts(40, 10'000);
  uint64_t filtered = 0;
  sys.network()->SetDropFilter([&](const net::Message& msg) {
    if (msg.kind == kMsgWitnessUpload && filtered < 5) {
      ++filtered;
      return true;
    }
    return false;
  });
  for (uint64_t f = 1; f <= 8; ++f) {
    sys.SubmitTransaction(Transfer(f, f + 20, 1, 0));
  }
  sys.Run(4, net::FromSeconds(600));
  EXPECT_EQ(filtered, 5u);
  const auto* dropped = sys.metrics_registry()->FindCounter(
      "net.dropped_messages", {{"reason", "drop_filter"}});
  ASSERT_NE(dropped, nullptr);
  EXPECT_EQ(dropped->value(), filtered);
  EXPECT_EQ(sys.metrics().replay_mismatches(), 0u);
}

// --- Safety: chain identity under every strategy --------------------------

TEST(AdversaryTest, HonestChainSurvivesEveryStrategyAtPaperBounds) {
  // §III-B's safety argument assumes every EC cohort keeps an honest
  // majority (the paper sizes committees so this holds with high
  // probability). 26 nodes split into per-shard cohorts of 3-4, where a
  // corrupted pair can outnumber a lone honest member; 38 keeps cohorts
  // large enough that α = 1/4 leaves an honest majority everywhere.
  constexpr int kNodes = 38;
  auto clean = RunAdversarial("", false, false, 0, kNodes);
  const uint64_t clean_blocks = clean->metrics().committed_blocks();
  ASSERT_EQ(clean_blocks, 10u);
  ASSERT_GT(clean->metrics().committed_txs(), 0u);
  EXPECT_EQ(clean->adversary()->actions(), 0u);

  for (const char* spec : {
           "stateless:silent,alpha:0.25",
           "stateless:equivocate,alpha:0.25",
           "stateless:forge-witness,alpha:0.25",
           "stateless:tamper-exec,alpha:0.25",
           "storage:censor,beta:0.5",
       }) {
    SCOPED_TRACE(spec);
    auto sys = RunAdversarial(spec, false, false, 0, kNodes);
    // Liveness: every round still closes. Safety: the honest nodes commit
    // exactly the clean run's blocks and converge on its final state root.
    EXPECT_EQ(sys->metrics().committed_blocks(), clean_blocks);
    ExpectSameCommittedState(*sys, *clean);
    // The adversary really did act; it just didn't get anywhere.
    EXPECT_GT(sys->adversary()->actions(), 0u);
  }
}

TEST(AdversaryTest, EquivocationLeavesAttributableEvidence) {
  auto sys = RunAdversarial("stateless:equivocate,alpha:0.25");
  ASSERT_GE(sys->equivocation_evidence().size(), 1u);
  EXPECT_GT(Evidence(*sys, "equivocation"), 0u);
  EXPECT_GT(sys->adversary()->evidence(), 0u);

  // The record is self-contained and attributable: both votes are for the
  // same (instance, step, kind), carry different values, and verify under
  // the equivocator's own key — enough to convince a third party.
  const auto& ev = sys->equivocation_evidence().front();
  EXPECT_EQ(ev.first.instance, ev.second.instance);
  EXPECT_EQ(ev.first.step, ev.second.step);
  EXPECT_EQ(ev.first.kind, ev.second.kind);
  EXPECT_EQ(ev.first.voter, ev.second.voter);
  EXPECT_NE(ev.first.value, ev.second.value);
  EXPECT_TRUE(sys->provider()->Verify(ev.first.voter, ev.first.SigningBytes(),
                                      ev.first.signature));
  EXPECT_TRUE(sys->provider()->Verify(ev.second.voter,
                                      ev.second.SigningBytes(),
                                      ev.second.signature));
}

TEST(AdversaryTest, ForgedWitnessUploadsAreRejectedAndCounted) {
  auto sys = RunAdversarial("stateless:forge-witness,alpha:0.25");
  // Garbage signatures over real block ids fail verification; uploads for
  // fabricated ("ghost") block ids never match a stored block.
  EXPECT_GT(Rejected(*sys, "bad_witness_sig"), 0u);
  EXPECT_GT(Rejected(*sys, "unknown_block"), 0u);
  EXPECT_GT(sys->adversary()->actions(), 0u);
}

TEST(AdversaryTest, TamperedExecResultsLeaveDivergenceEvidence) {
  auto sys = RunAdversarial("stateless:tamper-exec,alpha:0.25");
  // Honest OC members see conflicting result keys for the same
  // (round, shard) and record the divergence; the honest supermajority
  // outvotes the tampered root at aggregation.
  EXPECT_GT(Evidence(*sys, "divergent_exec_result"), 0u);
  EXPECT_GT(sys->adversary()->evidence(), 0u);
}

// --- Storage-side strategies ----------------------------------------------

TEST(AdversaryTest, TamperedStateRepliesFailTheProofCrossCheck) {
  // Faithful mode: ESC members rebuild PartialStates from storage replies,
  // cross-checking every entry's Merkle proof against committed roots. A
  // tampering storage node doctors values but cannot forge proofs, so the
  // reply is rejected and re-requested from an honest connection.
  auto clean = RunAdversarial("", /*faithful=*/true);
  auto sys = RunAdversarial("storage:tamper-state,beta:0.5", /*faithful=*/true);
  EXPECT_GT(Rejected(*sys, "bad_state_proof"), 0u);
  EXPECT_GT(sys->adversary()->actions(), 0u);
  EXPECT_EQ(sys->metrics().committed_blocks(),
            clean->metrics().committed_blocks());
  ExpectSameCommittedState(*sys, *clean);
}

TEST(AdversaryTest, StaleResyncRepliesAreRejectedWithoutStalling) {
  SystemOptions opt = Opts();
  opt.adversary = MustParse("storage:stale-reply,beta:0.5");
  // Fire the round watchdog between NewRounds so nodes probe/resync often;
  // every resync answered by the stale storage node replays the genesis
  // tip, which the round-regression guard rejects.
  opt.params.storage_watchdog_us = 900'000;
  PorygonSystem sys(opt);
  sys.CreateAccounts(100, 10'000);
  for (uint64_t f = 1; f <= 10; ++f) {
    sys.SubmitTransaction(Transfer(f, f + 20, 1, 0));
  }
  sys.Run(10, net::FromSeconds(600));
  EXPECT_EQ(sys.metrics().committed_blocks(), 10u);
  EXPECT_GT(sys.metrics().committed_txs(), 0u);
  EXPECT_GT(Rejected(sys, "stale_round"), 0u);
  EXPECT_GT(sys.adversary()->actions(), 0u);
  EXPECT_EQ(sys.metrics().replay_mismatches(), 0u);
}

// --- Cross-shard update hardening -----------------------------------------

TEST(AdversaryCoordinatorTest, UnlockedUpdatesAreDroppedFromUpdateLists) {
  CrossShardCoordinator coord(/*shard_bits=*/1, /*retry_rounds=*/2);
  obs::MetricsRegistry registry;
  obs::Counter* rejected =
      registry.GetCounter("core.rejected", {{"reason", "unlocked_update"}});
  coord.set_rejected_counter(rejected);

  // Lock {2, 5} via one accepted cross-shard transaction.
  auto filtered = coord.FilterAndLock(7, {Transfer(2, 5, 1, 0)});
  ASSERT_EQ(filtered.accepted_cross.size(), 1u);
  ASSERT_TRUE(coord.IsLocked(2));
  ASSERT_TRUE(coord.IsLocked(5));

  // An S set smuggling a write to account 9 (never locked) alongside the
  // legitimate updates: the forged write is dropped, the rest routed.
  tx::StateUpdate good_a;
  good_a.account = 2;
  good_a.value.balance = 99;
  tx::StateUpdate good_b;
  good_b.account = 5;
  good_b.value.balance = 101;
  tx::StateUpdate forged;
  forged.account = 9;
  forged.value.balance = 1'000'000;
  auto lists = coord.BuildUpdateList(7, {{good_a, forged}, {good_b}}, {});
  size_t routed = 0;
  for (const auto& shard : lists) routed += shard.size();
  EXPECT_EQ(routed, 2u);
  EXPECT_EQ(rejected->value(), 1u);

  // With no batch locked at all, every update is a replay: all dropped.
  auto none = coord.BuildUpdateList(8, {{good_a}}, {});
  routed = 0;
  for (const auto& shard : none) routed += shard.size();
  EXPECT_EQ(routed, 0u);
  EXPECT_EQ(rejected->value(), 2u);
}

// --- Determinism ----------------------------------------------------------

TEST(AdversaryTest, SameSeedSameSpecReplaysByteIdentically) {
  const std::string spec =
      "stateless:equivocate,alpha:0.25,storage:censor,beta:0.5,seed:11";
  auto a = RunAdversarial(spec, /*faithful=*/false, /*trace=*/true);
  auto b = RunAdversarial(spec, /*faithful=*/false, /*trace=*/true);
  EXPECT_EQ(a->canonical_state().GlobalRoot(), b->canonical_state().GlobalRoot());
  EXPECT_EQ(a->metrics().ToJson(), b->metrics().ToJson());
  EXPECT_EQ(a->metrics().ToCsv(), b->metrics().ToCsv());
  EXPECT_EQ(a->tracer()->ExportChromeJson(), b->tracer()->ExportChromeJson());
}

TEST(AdversaryThreadInvarianceTest, AdversarialExportsAreThreadInvariant) {
  unsetenv("PORYGON_THREADS");
  const std::string spec = "stateless:tamper-exec,alpha:0.25,seed:11";
  auto serial = RunAdversarial(spec, /*faithful=*/false, /*trace=*/true,
                               /*threads=*/0);
  auto pooled = RunAdversarial(spec, /*faithful=*/false, /*trace=*/true,
                               /*threads=*/4);
  EXPECT_EQ(serial->canonical_state().GlobalRoot(),
            pooled->canonical_state().GlobalRoot());
  EXPECT_EQ(serial->metrics().ToJson(), pooled->metrics().ToJson());
  EXPECT_EQ(serial->tracer()->ExportChromeJson(),
            pooled->tracer()->ExportChromeJson());
}

}  // namespace
}  // namespace porygon::core
