// Cross-shard coordinator tests: conflict filtering, locking, update
// routing, retry, and rollback (§IV-D2).

#include <gtest/gtest.h>

#include "core/coordinator.h"

namespace porygon::core {
namespace {

using tx::StateUpdate;
using tx::Transaction;

Transaction Transfer(uint64_t from, uint64_t to, uint64_t amount = 1,
                     uint64_t nonce = 0) {
  Transaction t;
  t.from = from;
  t.to = to;
  t.amount = amount;
  t.nonce = nonce;
  return t;
}

TEST(CoordinatorTest, SplitsIntraAndCross) {
  CrossShardCoordinator coord(1, 2);  // 2 shards.
  auto r = coord.FilterAndLock(1, {Transfer(2, 4), Transfer(6, 3)});
  // 2->4 same shard (even/even); 6->3 crosses.
  EXPECT_EQ(r.accepted_intra.size(), 1u);
  EXPECT_EQ(r.accepted_cross.size(), 1u);
  EXPECT_TRUE(r.discarded.empty());
}

TEST(CoordinatorTest, CrossShardTakesPriorityOverSameRoundIntra) {
  // An intra tx touching an account claimed by a same-round cross-shard tx
  // is discarded — otherwise the Multi-Shard Update would clobber the
  // intra-shard effect (lost update).
  CrossShardCoordinator coord(1, 2);
  auto r = coord.FilterAndLock(1, {Transfer(2, 4), Transfer(2, 3)});
  EXPECT_EQ(r.accepted_cross.size(), 1u);   // 2->3 wins.
  EXPECT_EQ(r.accepted_intra.size(), 0u);   // 2->4 conflicts on account 2.
  EXPECT_EQ(r.discarded.size(), 1u);
}

TEST(CoordinatorTest, CrossShardAccountsLockUntilCommit) {
  CrossShardCoordinator coord(1, 2);
  auto r1 = coord.FilterAndLock(1, {Transfer(2, 3)});
  ASSERT_EQ(r1.accepted_cross.size(), 1u);
  EXPECT_TRUE(coord.IsLocked(2));
  EXPECT_TRUE(coord.IsLocked(3));

  // A later round's transaction touching a locked account is abandoned.
  auto r2 = coord.FilterAndLock(2, {Transfer(2, 6), Transfer(8, 10)});
  EXPECT_EQ(r2.discarded.size(), 1u);
  EXPECT_EQ(r2.accepted_intra.size(), 1u);  // 8->10 is unrelated.

  // Complete the batch: S sets arrive, updates routed. Locks release as
  // soon as U is built (updates-first execution ordering makes later
  // transactions safe), not only at final commit.
  std::vector<std::vector<StateUpdate>> s_sets = {
      {{2, {900, 1}}, {3, {1100, 0}}}};
  auto u = coord.BuildUpdateList(1, s_sets, {{2, {1000, 0}}, {3, {1000, 0}}});
  ASSERT_EQ(u.size(), 2u);
  ASSERT_EQ(u[0].size(), 1u);  // Account 2 -> shard 0.
  EXPECT_EQ(u[0][0].account, 2u);
  ASSERT_EQ(u[1].size(), 1u);  // Account 3 -> shard 1.
  EXPECT_FALSE(coord.IsLocked(2));
  EXPECT_FALSE(coord.IsLocked(3));

  auto o1 = coord.OnShardUpdateResult(1, 0, true);
  EXPECT_FALSE(o1.resolved);
  auto o2 = coord.OnShardUpdateResult(1, 1, true);
  EXPECT_TRUE(o2.resolved);
  EXPECT_FALSE(o2.rolled_back);
}

TEST(CoordinatorTest, SameRoundCrossShardConflictDiscarded) {
  CrossShardCoordinator coord(1, 2);
  // Both cross-shard, both touch account 3 -> the second is discarded.
  auto r = coord.FilterAndLock(1, {Transfer(2, 3), Transfer(4, 3)});
  EXPECT_EQ(r.accepted_cross.size(), 1u);
  EXPECT_EQ(r.discarded.size(), 1u);
}

TEST(CoordinatorTest, SameRoundIntraShardConflictsAllowed) {
  CrossShardCoordinator coord(1, 2);
  // Two intra-shard txs sharing account 2: the ESC resolves those, not the
  // OC ("conflicts within the same shard and in the same round do not have
  // to be detected by the OC").
  auto r = coord.FilterAndLock(1, {Transfer(2, 4), Transfer(2, 6)});
  EXPECT_EQ(r.accepted_intra.size(), 2u);
  EXPECT_TRUE(r.discarded.empty());
}

TEST(CoordinatorTest, PendingUpdatesResentUntilSuccess) {
  CrossShardCoordinator coord(1, 3);
  coord.FilterAndLock(1, {Transfer(2, 3)});
  std::vector<std::vector<StateUpdate>> s_sets = {
      {{2, {900, 1}}, {3, {1100, 0}}}};
  coord.BuildUpdateList(1, s_sets, {{2, {1000, 0}}, {3, {1000, 0}}});

  // Shard 1 fails once: its updates stay pending.
  auto o = coord.OnShardUpdateResult(1, 1, false);
  EXPECT_FALSE(o.resolved);
  auto pending = coord.PendingUpdatesFor(1, /*current_round=*/5);
  ASSERT_EQ(pending.size(), 1u);
  EXPECT_EQ(pending[0].account, 3u);

  // Shard 0 succeeds; shard 1 finally succeeds.
  coord.OnShardUpdateResult(1, 0, true);
  auto done = coord.OnShardUpdateResult(1, 1, true);
  EXPECT_TRUE(done.resolved);
  EXPECT_TRUE(coord.PendingUpdatesFor(1, /*current_round=*/6).empty());
}

TEST(CoordinatorTest, RollbackAfterRetryBudget) {
  CrossShardCoordinator coord(1, 2);  // 2 retry rounds.
  coord.FilterAndLock(1, {Transfer(2, 3)});
  std::vector<std::vector<StateUpdate>> s_sets = {
      {{2, {900, 1}}, {3, {1100, 0}}}};
  std::vector<StateUpdate> old_values = {{2, {1000, 0}}, {3, {1000, 0}}};
  coord.BuildUpdateList(1, s_sets, old_values);

  coord.OnShardUpdateResult(1, 0, true);
  EXPECT_FALSE(coord.OnShardUpdateResult(1, 1, false).resolved);
  EXPECT_FALSE(coord.OnShardUpdateResult(1, 1, false).resolved);
  // Third failure exceeds the 2-round budget: compensating rollback.
  auto o = coord.OnShardUpdateResult(1, 1, false);
  EXPECT_TRUE(o.resolved);
  EXPECT_TRUE(o.rolled_back);
  ASSERT_EQ(o.compensation.size(), 2u);
  ASSERT_EQ(o.compensation[0].size(), 1u);
  EXPECT_EQ(o.compensation[0][0].account, 2u);
  EXPECT_EQ(o.compensation[0][0].value.balance, 1000u);  // Old value.
  // Locks are released after rollback.
  EXPECT_FALSE(coord.IsLocked(2));
  EXPECT_FALSE(coord.IsLocked(3));
}

TEST(CoordinatorTest, ShardsWithNoUpdatesAreTriviallyDone) {
  CrossShardCoordinator coord(2, 2);  // 4 shards.
  // 1 -> 2: shards 1 and 2 involved; shards 0 and 3 idle.
  coord.FilterAndLock(1, {Transfer(1, 2)});
  std::vector<std::vector<StateUpdate>> s_sets = {
      {{1, {90, 1}}, {2, {110, 0}}}};
  coord.BuildUpdateList(1, s_sets, {{1, {100, 0}}, {2, {100, 0}}});
  // Only the two involved shards need to report.
  coord.OnShardUpdateResult(1, 1, true);
  auto o = coord.OnShardUpdateResult(1, 2, true);
  EXPECT_TRUE(o.resolved);
}

}  // namespace
}  // namespace porygon::core
